package microscope

import (
	"strings"
	"testing"

	"microscope/internal/simtime"
)

func figure2DAG(flowA FiveTuple) *Deployment {
	return NewBuilder(33).
		AddNF(NFSpec{Name: "nat", Kind: "nat", Rate: MPPS(1.0)}).
		AddNF(NFSpec{Name: "vpn", Kind: "vpn", Rate: MPPS(0.6)}).
		Source(func(ft FiveTuple) string {
			if ft == flowA {
				return "vpn"
			}
			return "nat"
		}, "nat", "vpn").
		Connect("nat", nil, "vpn").
		Build()
}

func TestBuilderDAGRouting(t *testing.T) {
	flowA := FiveTuple{SrcIP: IP(9, 9, 9, 9), DstIP: IP(8, 8, 8, 8), SrcPort: 1, DstPort: 2, Proto: 17}
	dep := figure2DAG(flowA)
	wl := NewWorkload(WorkloadConfig{Rate: MPPS(0.3), Duration: 2 * simtime.Millisecond, Flows: 64, Seed: 1})
	wl.InjectFlow(flowA, 0, 50, 20*simtime.Microsecond)
	dep.Replay(wl)
	dep.Run(50 * simtime.Millisecond)

	sawDirect, sawChain := false, false
	for _, p := range dep.Sim().Packets() {
		path := p.Path()
		if p.Flow == flowA {
			if len(path) != 1 || path[0] != "vpn" {
				t.Fatalf("flow A path: %v", path)
			}
			sawDirect = true
		} else {
			if len(path) != 2 || path[0] != "nat" || path[1] != "vpn" {
				t.Fatalf("background path: %v", path)
			}
			sawChain = true
		}
	}
	if !sawDirect || !sawChain {
		t.Fatal("missing traffic classes")
	}
	// Meta edges must describe the DAG for diagnosis.
	st := Reconstruct(dep.Trace())
	ups := st.Trace.Meta.Upstreams("vpn")
	if len(ups) != 2 {
		t.Errorf("vpn upstreams: %v", ups)
	}
}

func TestBuilderDiagnosisWorks(t *testing.T) {
	flowA := FiveTuple{SrcIP: IP(9, 9, 9, 9), DstIP: IP(8, 8, 8, 8), SrcPort: 1, DstPort: 2, Proto: 17}
	dep := figure2DAG(flowA)
	wl := NewWorkload(WorkloadConfig{Rate: MPPS(0.45), Duration: 6 * simtime.Millisecond, Flows: 128, Seed: 2})
	wl.InjectFlow(flowA, 0, 300, 20*simtime.Microsecond)
	dep.InjectInterrupt("nat", Time(2*simtime.Millisecond), 800*simtime.Microsecond)
	dep.Replay(wl)
	dep.Run(100 * simtime.Millisecond)

	st := Reconstruct(dep.Trace())
	// Find a flow-A packet queued at the VPN after the interrupt.
	blamed := 0
	checked := 0
	for i := range st.Journeys {
		j := &st.Journeys[i]
		if !j.HasTuple || j.Tuple != flowA {
			continue
		}
		hop := st.HopAt(j, "vpn")
		if hop == nil || hop.ReadAt == 0 || hop.ArriveAt < Time(2800*simtime.Microsecond) {
			continue
		}
		if hop.ReadAt.Sub(hop.ArriveAt) < 100*simtime.Microsecond {
			continue
		}
		d := DiagnoseOne(st, Victim{
			Journey: i, Comp: "vpn", ArriveAt: hop.ArriveAt,
			QueueDelay: hop.ReadAt.Sub(hop.ArriveAt),
		})
		checked++
		if len(d.Causes) > 0 && d.Causes[0].Comp == "nat" && d.Causes[0].Kind == CulpritLocalProcessing {
			blamed++
		}
		if checked >= 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no flow-A victims found")
	}
	if float64(blamed)/float64(checked) < 0.7 {
		t.Errorf("NAT blamed for only %d of %d cross-path victims", blamed, checked)
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { NewBuilder(1).Build() })
	mustPanic("no source", func() {
		NewBuilder(1).AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).Build()
	})
	mustPanic("zero rate", func() {
		NewBuilder(1).AddNF(NFSpec{Name: "a", Kind: "x"}).Source(nil, "a").Build()
	})
	mustPanic("bad chooser target", func() {
		dep := NewBuilder(1).
			AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
			Source(func(FiveTuple) string { return "nonexistent" }, "a").
			Build()
		wl := NewWorkload(WorkloadConfig{Rate: MPPS(0.1), Duration: simtime.Millisecond, Flows: 4, Seed: 1})
		dep.Replay(wl)
		dep.Run(10 * simtime.Millisecond)
	})
}

func TestBuilderFlowHashDefault(t *testing.T) {
	dep := NewBuilder(5).
		AddNF(NFSpec{Name: "a1", Kind: "a", Rate: MPPS(1)}).
		AddNF(NFSpec{Name: "a2", Kind: "a", Rate: MPPS(1)}).
		Source(nil, "a1", "a2").
		Build()
	wl := NewWorkload(WorkloadConfig{Rate: MPPS(0.4), Duration: 2 * simtime.Millisecond, Flows: 256, Seed: 6})
	dep.Replay(wl)
	dep.Run(20 * simtime.Millisecond)
	seen := map[string]int{}
	for _, p := range dep.Sim().Packets() {
		if len(p.Hops) > 0 {
			seen[p.Hops[0].Node]++
		}
	}
	if seen["a1"] == 0 || seen["a2"] == 0 {
		t.Errorf("flow-hash balancing unused: %v", seen)
	}
}

func TestReportRenderSmoke(t *testing.T) {
	dep := NewChainDeployment(3, ChainNF{Name: "fw1", Kind: "fw", Rate: MPPS(0.5)})
	wl := NewWorkload(WorkloadConfig{Rate: MPPS(0.3), Duration: 3 * simtime.Millisecond, Flows: 64, Seed: 4})
	wl.InjectBurst(Burst{At: Time(simtime.Millisecond), Flow: wl.PickFlow(0), Count: 500})
	dep.Replay(wl)
	dep.Run(50 * simtime.Millisecond)
	rep := Diagnose(dep.Trace())
	out := rep.Render()
	for _, want := range []string{"Microscope report", "victims diagnosed", "Top culprits"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestBuildE exercises the error-returning construction paths: every
// misdeclaration surfaces as an error, a valid graph builds, and the
// panicking wrappers stay equivalent.
func TestBuildE(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"empty", NewBuilder(1)},
		{"no source", NewBuilder(1).AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)})},
		{"zero rate", NewBuilder(1).AddNF(NFSpec{Name: "a", Kind: "x"}).Source(nil, "a")},
		{"unnamed", NewBuilder(1).AddNF(NFSpec{Kind: "x", Rate: MPPS(1)}).Source(nil, "")},
		{"duplicate", NewBuilder(1).
			AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
			AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
			Source(nil, "a")},
		{"source to ghost", NewBuilder(1).
			AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
			Source(nil, "ghost")},
		{"connect to ghost", NewBuilder(1).
			AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
			Source(nil, "a").
			Connect("a", nil, "ghost")},
		{"connect from ghost", NewBuilder(1).
			AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
			Source(nil, "a").
			Connect("ghost", nil, "a")},
	}
	for _, c := range cases {
		if d, err := c.b.BuildE(); err == nil || d != nil {
			t.Errorf("%s: BuildE accepted an invalid graph", c.name)
		}
	}
	d, err := NewBuilder(1).
		AddNF(NFSpec{Name: "a", Kind: "x", Rate: MPPS(1)}).
		Source(nil, "a").
		BuildE()
	if err != nil || d == nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

// TestNewChainDeploymentE covers the chain error paths.
func TestNewChainDeploymentE(t *testing.T) {
	if _, err := NewChainDeploymentE(1); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChainDeploymentE(1, ChainNF{Kind: "fw", Rate: MPPS(1)}); err == nil {
		t.Error("unnamed NF accepted")
	}
	if _, err := NewChainDeploymentE(1, ChainNF{Name: "fw1", Kind: "fw"}); err == nil {
		t.Error("zero-rate NF accepted")
	}
	if _, err := NewChainDeploymentE(1,
		ChainNF{Name: "fw1", Kind: "fw", Rate: MPPS(1)},
		ChainNF{Name: "fw1", Kind: "fw", Rate: MPPS(1)}); err == nil {
		t.Error("duplicate NF accepted")
	}
	d, err := NewChainDeploymentE(1, ChainNF{Name: "fw1", Kind: "fw", Rate: MPPS(1)})
	if err != nil || d == nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewChainDeployment wrapper no longer panics")
		}
	}()
	NewChainDeployment(1)
}
