package microscope

import (
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/patterns"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
)

// DegradationLevel is a rung of the overload degradation ladder: how much
// of the pipeline a run executes when resources are short.
type DegradationLevel = resilience.Level

// Degradation-ladder rungs, re-exported.
const (
	// DegradeFull runs the whole pipeline (the default).
	DegradeFull = resilience.Full
	// DegradeNoPatterns skips the §4.4 pattern aggregation.
	DegradeNoPatterns = resilience.NoPatterns
	// DegradeVictimsOnly stops after victim selection.
	DegradeVictimsOnly = resilience.VictimsOnly
	// DegradeSkipped reports only reconstruction health.
	DegradeSkipped = resilience.Skipped
)

// Registry is the observability registry the toolkit reports into:
// counters, gauges, fixed-bucket latency histograms, and a bounded span
// tracer. Create one with NewRegistry, attach it with WithObserver (or
// DiagnosisConfig-less entry points), and serve or dump it via its
// WritePrometheus / WriteJSON methods. All methods on a nil *Registry are
// no-ops, so "observability disabled" costs a nil check per event.
type Registry = obs.Registry

// Span is one recorded timing span: pipeline runs and stages, per-victim
// diagnoses. Parent is -1 for roots.
type Span = obs.Span

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.New() }

// Option configures a diagnosis entry point (Diagnose, DiagnoseStore,
// DiagnoseOne, Explain, Victims and their Context variants). Two kinds of
// value satisfy it: the With* functional options below, and the legacy
// DiagnosisConfig / Options structs applied wholesale — so pre-options
// call sites like Diagnose(tr, DiagnosisConfig{Workers: 4}) keep
// compiling and behave identically.
type Option interface {
	apply(*Options)
}

// Options is the canonical resolved configuration every facade entry point
// reduces its Option list to. The zero value means "all defaults"; fields
// left zero inherit the documented engine defaults downstream.
type Options struct {
	// VictimPercentile selects latency victims (default 99).
	VictimPercentile float64
	// MaxRecursionDepth caps the §4.3 recursion (default 5).
	MaxRecursionDepth int
	// MaxVictims caps how many victims are diagnosed (0 = all).
	MaxVictims int
	// PatternThreshold is the §4.4 aggregation threshold (default 1%).
	PatternThreshold float64
	// SkipLossVictims disables loss diagnosis.
	SkipLossVictims bool
	// LossVictimsWhenDegraded keeps loss diagnosis active even when the
	// trace health is degraded.
	LossVictimsWhenDegraded bool
	// Workers bounds the parallel fan-out (0 = GOMAXPROCS, 1 = fully
	// sequential). Output is byte-for-byte identical for every value.
	Workers int
	// QueueThreshold is the §7 non-empty-queue extension: a queuing
	// period starts when the queue last held at most this many packets.
	QueueThreshold int
	// SkipPatterns stops the pipeline after per-victim diagnosis.
	SkipPatterns bool
	// Degrade runs the pipeline at a reduced degradation-ladder rung;
	// DegradeFull (zero) is the normal run. Degraded runs stay
	// deterministic for every Workers value.
	Degrade DegradationLevel
	// ContainPanics quarantines a panicking victim (or stage) instead of
	// crashing the process; see WithPanicContainment.
	ContainPanics bool
	// Metrics receives runtime metrics and spans; nil disables
	// observability (beyond the process-wide default, if installed).
	Metrics *Registry
}

// apply merges o into dst wholesale, making Options itself an Option.
func (o Options) apply(dst *Options) { *dst = o }

// apply lets the legacy struct config act as an Option: the struct is the
// whole configuration, exactly as the pre-options API treated it.
func (c DiagnosisConfig) apply(dst *Options) {
	*dst = Options{
		VictimPercentile:        c.VictimPercentile,
		MaxRecursionDepth:       c.MaxRecursionDepth,
		MaxVictims:              c.MaxVictims,
		PatternThreshold:        c.PatternThreshold,
		SkipLossVictims:         c.SkipLossVictims,
		LossVictimsWhenDegraded: c.LossVictimsWhenDegraded,
		Workers:                 c.Workers,
	}
}

// optionFunc adapts a closure to the Option interface.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// WithWorkers bounds the parallel fan-out of every pipeline stage
// (0 = GOMAXPROCS, 1 = fully sequential). Any value produces
// byte-identical reports.
func WithWorkers(n int) Option {
	return optionFunc(func(o *Options) { o.Workers = n })
}

// WithObserver attaches a metrics registry: stage latencies, victim
// counts, memo effectiveness, and spans land in reg. Attaching a registry
// never changes diagnosis output.
func WithObserver(reg *Registry) Option {
	return optionFunc(func(o *Options) { o.Metrics = reg })
}

// WithMaxVictims caps how many victims are diagnosed (0 = all). The cap
// samples evenly across the run rather than truncating.
func WithMaxVictims(n int) Option {
	return optionFunc(func(o *Options) { o.MaxVictims = n })
}

// WithVictimPercentile selects latency victims above this percentile of
// delivered latency (default 99).
func WithVictimPercentile(p float64) Option {
	return optionFunc(func(o *Options) { o.VictimPercentile = p })
}

// WithMaxRecursionDepth caps the §4.3 upstream recursion (default 5).
func WithMaxRecursionDepth(d int) Option {
	return optionFunc(func(o *Options) { o.MaxRecursionDepth = d })
}

// WithPatternThreshold sets the §4.4 significance fraction (default 0.01).
func WithPatternThreshold(th float64) Option {
	return optionFunc(func(o *Options) { o.PatternThreshold = th })
}

// WithQueueThreshold enables the §7 non-empty-queue extension: queuing
// periods start when the queue last held at most n packets.
func WithQueueThreshold(n int) Option {
	return optionFunc(func(o *Options) { o.QueueThreshold = n })
}

// WithoutLossVictims disables loss-victim diagnosis entirely.
func WithoutLossVictims() Option {
	return optionFunc(func(o *Options) { o.SkipLossVictims = true })
}

// WithLossVictimsWhenDegraded keeps loss-victim classification active even
// on a degraded trace (by default a known-damaged trace suppresses it).
func WithLossVictimsWhenDegraded() Option {
	return optionFunc(func(o *Options) { o.LossVictimsWhenDegraded = true })
}

// WithoutPatterns stops the pipeline after per-victim diagnosis, skipping
// the §4.4 aggregation.
func WithoutPatterns() Option {
	return optionFunc(func(o *Options) { o.SkipPatterns = true })
}

// WithDegradation runs the pipeline at a reduced degradation-ladder rung —
// what the online monitor does on its own under overload, exposed here so
// batch callers (and tests) can reproduce a degraded window exactly. The
// report's Degradation field echoes the rung.
func WithDegradation(l DegradationLevel) Option {
	return optionFunc(func(o *Options) { o.Degrade = l })
}

// WithPanicContainment arms crash containment: a panic inside one
// victim's diagnosis quarantines that victim (its Diagnosis keeps the
// Victim, no causes) and a panic inside a stage surfaces as an error with
// the partial report, instead of killing the process. Off by default —
// batch tools prefer a loud crash with a full stack.
func WithPanicContainment() Option {
	return optionFunc(func(o *Options) { o.ContainPanics = true })
}

// resolve folds an Option list into the canonical Options, applying them
// in order (later options win).
func resolve(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt.apply(&o)
	}
	return o
}

// coreConfig converts the resolved options into the diagnosis-engine
// configuration.
func (o *Options) coreConfig() core.Config {
	return core.Config{
		VictimPercentile:        o.VictimPercentile,
		MaxRecursionDepth:       o.MaxRecursionDepth,
		MaxVictims:              o.MaxVictims,
		SkipLossVictims:         o.SkipLossVictims,
		LossVictimsWhenDegraded: o.LossVictimsWhenDegraded,
		QueueThreshold:          o.QueueThreshold,
		Workers:                 o.Workers,
		Obs:                     o.Metrics,
	}
}

// pipelineConfig converts the resolved options into the staged-pipeline
// configuration.
func (o *Options) pipelineConfig() pipeline.Config {
	return pipeline.Config{
		Workers:       o.Workers,
		Diagnosis:     o.coreConfig(),
		Patterns:      patterns.Config{Threshold: o.PatternThreshold, Obs: o.Metrics},
		SkipPatterns:  o.SkipPatterns,
		Degrade:       o.Degrade,
		ContainPanics: o.ContainPanics,
		Obs:           o.Metrics,
	}
}
