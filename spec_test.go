package microscope

import (
	"bytes"
	"math/rand"
	"testing"

	"microscope/internal/resilience"
	"microscope/internal/spec"
)

// randOptions draws a random spec-expressible Options value (Metrics is a
// runtime handle outside the data domain).
func randOptions(rng *rand.Rand) Options {
	return Options{
		VictimPercentile:        float64(rng.Intn(1000)) / 10, // [0,100)
		MaxRecursionDepth:       rng.Intn(10),
		MaxVictims:              rng.Intn(1000),
		PatternThreshold:        float64(rng.Intn(101)) / 100, // [0,1]
		SkipLossVictims:         rng.Intn(2) == 0,
		LossVictimsWhenDegraded: rng.Intn(2) == 0,
		Workers:                 rng.Intn(16),
		QueueThreshold:          rng.Intn(8),
		SkipPatterns:            rng.Intn(2) == 0,
		Degrade:                 DegradationLevel(rng.Intn(4)),
		ContainPanics:           rng.Intn(2) == 0,
	}
}

// randSpec draws a random valid spec exercising every section.
func randSpec(rng *rand.Rand) *PipelineSpec {
	s := SpecFromOptions(randOptions(rng))
	s.Tenant = []string{"", "acme", "beta"}[rng.Intn(3)]
	slide := spec.Duration((rng.Intn(20) + 1) * 10_000_000) // 10–200ms
	s.Stream = spec.StreamSpec{
		Slide:    slide,
		Overlap:  slide / spec.Duration(rng.Intn(4)+2),
		MinScore: float64(rng.Intn(500)),
	}
	if rng.Intn(2) == 0 {
		inc := rng.Intn(2) == 0
		s.Stream.Incremental = &inc
	}
	s.Resilience = spec.ResilienceSpec{
		RingCapacity: rng.Intn(3) * 4096,
		ShedPolicy:   []string{"", "drop-oldest", "reject-new"}[rng.Intn(3)],
		MaxMemBytes:  int64(rng.Intn(2)) << 20,
	}
	if rng.Intn(3) == 0 {
		s.Resilience.Retry = &spec.RetrySpec{MaxAttempts: rng.Intn(5), Seed: rng.Int63n(100)}
	}
	if rng.Intn(2) == 0 {
		s.Topology = &spec.TopologySpec{
			Components: []spec.ComponentSpec{
				{Name: "src", Kind: "source"},
				{Name: "fw", Kind: "fw", PeakRate: float64(rng.Intn(5)+1) * 1e5, Egress: true},
			},
			Edges: []spec.EdgeSpec{{From: "src", To: "fw"}},
		}
	}
	if rng.Intn(2) == 0 {
		s.Hooks = []spec.HookSpec{{
			Name: "h1", Type: "exec", Command: []string{"true"},
			MinScore: float64(rng.Intn(100)),
		}}
	}
	return s
}

// TestSpecOptionsRoundTripProperty is the lossless round-trip contract in
// both directions, over randomized inputs:
//
//	Options → spec → Options is the identity on every Options value, and
//	spec → Options → (merge back) is the identity on resolved specs.
func TestSpecOptionsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		o := randOptions(rng)
		if back := OptionsFromSpec(SpecFromOptions(o)); back != o {
			t.Fatalf("iteration %d: Options drifted through spec:\n got %+v\nwant %+v", i, back, o)
		}

		s := randSpec(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("iteration %d: generator produced an invalid spec: %v", i, err)
		}
		r := s.Resolved()
		merged := MergeOptions(r, OptionsFromSpec(r))
		rb, err := r.Encode()
		if err != nil {
			t.Fatal(err)
		}
		mb, err := merged.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rb, mb) {
			t.Fatalf("iteration %d: resolved spec drifted through Options:\n--- resolved ---\n%s\n--- merged ---\n%s", i, rb, mb)
		}
	}
}

// TestWithSpec: the spec option replaces every spec-expressible field,
// preserves an attached registry, and produces reports byte-identical to
// the equivalent explicit options.
func TestWithSpec(t *testing.T) {
	s := SpecFromOptions(Options{VictimPercentile: 95, MaxVictims: 150, Workers: 4})
	reg := NewRegistry()
	o := resolve([]Option{WithObserver(reg), WithMaxVictims(7), WithSpec(s)})
	if o.Metrics != reg {
		t.Fatal("WithSpec dropped the attached registry")
	}
	if o.MaxVictims != 150 || o.VictimPercentile != 95 || o.Workers != 4 {
		t.Fatalf("WithSpec did not apply the spec wholesale: %+v", o)
	}

	tr := optionsTrace(t)
	specRep := Diagnose(tr, WithSpec(s))
	optRep := Diagnose(tr, WithVictimPercentile(95), WithMaxVictims(150), WithWorkers(4))
	if len(specRep.Diagnoses) == 0 {
		t.Fatal("no victims diagnosed; equivalence check is vacuous")
	}
	if a, b := reportText(specRep), reportText(optRep); a != b {
		t.Fatalf("WithSpec and explicit options reports differ:\n--- spec ---\n%s\n--- options ---\n%s", a, b)
	}
}

// TestParseSpecFacade: the facade re-exports reject invalid documents with
// field-path errors and accept the degraded-rung vocabulary.
func TestParseSpecFacade(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"stages":{"run":"warp"}}`)); err == nil {
		t.Fatal("ParseSpec accepted an unknown rung")
	}
	s, err := ParseSpec([]byte(`{"stages":{"run":"victims-only"},"diagnosis":{"workers":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	o := OptionsFromSpec(s)
	if o.Degrade != resilience.VictimsOnly || o.Workers != 2 {
		t.Fatalf("OptionsFromSpec = %+v", o)
	}
}
