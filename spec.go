package microscope

import (
	"microscope/internal/spec"
)

// PipelineSpec is the declarative, versioned configuration of one
// self-contained diagnosis pipeline: stage selection, engine knobs,
// streaming geometry, resilience, topology, and remediation hooks as
// JSON-serializable data. It is the canonical config form — every CLI
// flag set is expressible as a spec (`msdiag -dump-spec`), the serving
// tier (msserve) accepts nothing else, and WithSpec joins it to the
// functional-options API. See the internal/spec package for the schema.
type PipelineSpec = spec.PipelineSpec

// ParseSpec strictly decodes and validates a JSON pipeline spec. Unknown
// fields and out-of-range knobs are rejected with field-path errors.
func ParseSpec(data []byte) (*PipelineSpec, error) { return spec.Parse(data) }

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*PipelineSpec, error) { return spec.Load(path) }

// WithSpec configures an entry point from a declarative spec: the spec's
// stages and diagnosis sections replace every spec-expressible option,
// exactly as OptionsFromSpec reads them. An attached metrics registry
// (WithObserver) is preserved — a registry is a runtime handle no data
// document can express. Stream, resilience, topology, and hook sections
// are outside the batch entry points' vocabulary and are ignored here;
// the monitor and serving tiers consume them.
func WithSpec(s *PipelineSpec) Option {
	return optionFunc(func(o *Options) {
		reg := o.Metrics
		*o = OptionsFromSpec(s)
		o.Metrics = reg
	})
}

// OptionsFromSpec converts a spec's stage and diagnosis sections to the
// resolved Options. The Metrics field is always nil: a registry is a
// runtime handle, not configuration data.
func OptionsFromSpec(s *PipelineSpec) Options {
	d := s.Diagnosis
	return Options{
		VictimPercentile:        d.VictimPercentile,
		MaxRecursionDepth:       d.MaxRecursionDepth,
		MaxVictims:              d.MaxVictims,
		PatternThreshold:        d.PatternThreshold,
		SkipLossVictims:         d.SkipLossVictims,
		LossVictimsWhenDegraded: d.LossVictimsWhenDegraded,
		Workers:                 d.Workers,
		QueueThreshold:          d.QueueThreshold,
		SkipPatterns:            s.Stages.SkipPatterns,
		Degrade:                 s.Rung(),
		ContainPanics:           s.Stages.ContainPanics,
	}
}

// SpecFromOptions renders Options as a spec document (stages + diagnosis
// sections; stream, resilience, topology, and hooks are not expressible
// as Options and come back zero). The rung is always spelled explicitly,
// so SpecFromOptions(OptionsFromSpec(s)) reproduces s's stage selection
// and OptionsFromSpec(SpecFromOptions(o)) == o for every o (modulo the
// Metrics handle).
func SpecFromOptions(o Options) *PipelineSpec {
	return &PipelineSpec{
		Version: spec.Version,
		Stages: spec.StagesSpec{
			Run:           spec.RungString(o.Degrade),
			SkipPatterns:  o.SkipPatterns,
			ContainPanics: o.ContainPanics,
		},
		Diagnosis: spec.DiagnosisSpec{
			VictimPercentile:        o.VictimPercentile,
			MaxRecursionDepth:       o.MaxRecursionDepth,
			MaxVictims:              o.MaxVictims,
			PatternThreshold:        o.PatternThreshold,
			QueueThreshold:          o.QueueThreshold,
			SkipLossVictims:         o.SkipLossVictims,
			LossVictimsWhenDegraded: o.LossVictimsWhenDegraded,
			Workers:                 o.Workers,
		},
	}
}

// MergeOptions writes o's spec-expressible fields back into a copy of s,
// leaving the sections Options cannot express (stream, resilience,
// topology, hooks, tenant) untouched. This is the inverse direction of
// OptionsFromSpec: for any resolved spec r,
// MergeOptions(r, OptionsFromSpec(r)) encodes byte-identically to r — the
// spec ⇄ Options round-trip is lossless.
func MergeOptions(s *PipelineSpec, o Options) *PipelineSpec {
	out := s.Clone()
	from := SpecFromOptions(o)
	out.Stages = from.Stages
	out.Diagnosis = from.Diagnosis
	if out.Version == 0 {
		out.Version = spec.Version
	}
	return out
}
