package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

func TestMixDistinctFlows(t *testing.T) {
	m := NewMix(MixConfig{Flows: 100, Seed: 1})
	if len(m.Flows) != 100 {
		t.Fatalf("flows: got %d", len(m.Flows))
	}
	seen := make(map[packet.FiveTuple]bool)
	for _, f := range m.Flows {
		if seen[f.Tuple] {
			t.Fatalf("duplicate tuple %v", f.Tuple)
		}
		seen[f.Tuple] = true
	}
}

func TestMixZipfSkew(t *testing.T) {
	m := NewMix(MixConfig{Flows: 1000, Seed: 2, ZipfS: 1.1})
	rng := rand.New(rand.NewSource(3))
	counts := make(map[packet.FiveTuple]int)
	const draws = 100_000
	for i := 0; i < draws; i++ {
		counts[m.Pick(rng)]++
	}
	// The most popular flow dominates, but MaxFlowFrac caps it near 1%
	// of the mass (raw Zipf 1.1 over 1000 flows would put ~13% on it,
	// which no backbone trace exhibits per five-tuple).
	top := counts[m.Flows[0].Tuple]
	if top < draws/200 {
		t.Errorf("rank-1 flow drew only %d of %d", top, draws)
	}
	if top > draws/25 {
		t.Errorf("rank-1 flow drew %d of %d: cap not applied", top, draws)
	}
	// But the tail should still appear.
	distinct := len(counts)
	if distinct < 200 {
		t.Errorf("only %d distinct flows drawn", distinct)
	}
}

func TestMixDeterministic(t *testing.T) {
	a := NewMix(MixConfig{Flows: 64, Seed: 42})
	b := NewMix(MixConfig{Flows: 64, Seed: 42})
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("same seed must give same mix")
		}
	}
	c := NewMix(MixConfig{Flows: 64, Seed: 43})
	same := 0
	for i := range a.Flows {
		if a.Flows[i].Tuple == c.Flows[i].Tuple {
			same++
		}
	}
	if same == len(a.Flows) {
		t.Error("different seeds should differ")
	}
}

func TestMixWebFraction(t *testing.T) {
	m := NewMix(MixConfig{Flows: 2000, Seed: 5, WebFraction: 0.5})
	web := 0
	for _, f := range m.Flows {
		if f.Tuple.DstPort == 80 || f.Tuple.DstPort == 443 {
			web++
		}
	}
	frac := float64(web) / float64(len(m.Flows))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("web fraction: got %v, want ~0.5", frac)
	}
}

func TestGenerateRate(t *testing.T) {
	m := NewMix(MixConfig{Flows: 128, Seed: 1})
	dur := simtime.Duration(10 * simtime.Millisecond)
	s := Generate(m, ScheduleConfig{Rate: simtime.MPPS(0.5), Duration: dur, Seed: 9})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int(simtime.MPPS(0.5).PacketsF(dur))
	if got := s.Len(); got < want*95/100 || got > want*105/100 {
		t.Errorf("packet count: got %d, want ~%d", got, want)
	}
	if s.End() >= simtime.Time(dur) {
		t.Errorf("schedule end %v beyond duration %v", s.End(), dur)
	}
}

func TestGenerateStartOffset(t *testing.T) {
	m := NewMix(MixConfig{Flows: 16, Seed: 1})
	s := Generate(m, ScheduleConfig{
		Rate:     simtime.MPPS(0.1),
		Duration: simtime.Duration(simtime.Millisecond),
		Start:    simtime.Time(5 * simtime.Millisecond),
		Seed:     2,
	})
	if s.Len() == 0 {
		t.Fatal("empty schedule")
	}
	if s.Emissions[0].At < simtime.Time(5*simtime.Millisecond) {
		t.Errorf("first emission at %v, want >= 5ms", s.Emissions[0].At)
	}
}

func TestInjectBurstOrderingAndTruth(t *testing.T) {
	m := NewMix(MixConfig{Flows: 128, Seed: 1})
	s := Generate(m, ScheduleConfig{
		Rate:     simtime.MPPS(0.2),
		Duration: simtime.Duration(2 * simtime.Millisecond),
		Seed:     4,
	})
	before := s.Len()
	flow := m.Flows[0].Tuple
	s.InjectBurst(BurstSpec{ID: 7, At: simtime.Time(simtime.Millisecond), Flow: flow, Count: 100})
	if s.Len() != before+100 {
		t.Fatalf("burst not added: %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	burst := 0
	for _, e := range s.Emissions {
		if e.Burst == 7 {
			burst++
			if e.Flow != flow {
				t.Fatal("burst flow mismatch")
			}
		}
	}
	if burst != 100 {
		t.Errorf("burst emissions: got %d", burst)
	}
}

func TestInjectFlowPacing(t *testing.T) {
	s := &Schedule{}
	flow := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	s.InjectFlow(flow, simtime.Time(100), 5, simtime.Duration(50), 0)
	if s.Len() != 5 {
		t.Fatalf("len: %d", s.Len())
	}
	for i, e := range s.Emissions {
		if e.At != simtime.Time(100+50*i) {
			t.Errorf("emission %d at %v", i, e.At)
		}
		if e.Size != 64 {
			t.Errorf("default size: got %d", e.Size)
		}
		if e.Burst != -1 {
			t.Errorf("injected flow must not be burst-tagged")
		}
	}
}

func TestMerge(t *testing.T) {
	a := &Schedule{Emissions: []Emission{{At: 10, Size: 64}, {At: 30, Size: 64}}}
	b := &Schedule{Emissions: []Emission{{At: 20, Size: 64}}}
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("merged len: %d", a.Len())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	s := &Schedule{Emissions: []Emission{{At: 30, Size: 64}, {At: 10, Size: 64}}}
	if s.Validate() == nil {
		t.Error("disorder not caught")
	}
	s2 := &Schedule{Emissions: []Emission{{At: 10, Size: 0}}}
	if s2.Validate() == nil {
		t.Error("zero size not caught")
	}
}

func TestScheduleAlwaysSortedProperty(t *testing.T) {
	m := NewMix(MixConfig{Flows: 32, Seed: 8})
	f := func(burstAtUs uint16, count uint8) bool {
		s := Generate(m, ScheduleConfig{
			Rate:     simtime.MPPS(0.1),
			Duration: simtime.Duration(simtime.Millisecond),
			Seed:     3,
		})
		s.InjectBurst(BurstSpec{
			ID:    1,
			At:    simtime.Time(simtime.Duration(burstAtUs) * simtime.Microsecond),
			Flow:  m.Flows[0].Tuple,
			Count: int(count),
		})
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGenerateProtocolsAreValid(t *testing.T) {
	m := NewMix(MixConfig{Flows: 500, Seed: 77})
	for _, f := range m.Flows {
		if f.Tuple.Proto != packet.ProtoTCP && f.Tuple.Proto != packet.ProtoUDP {
			t.Fatalf("unexpected proto %d", f.Tuple.Proto)
		}
		if f.Tuple.SrcPort < 1024 {
			t.Fatalf("source port %d below 1024", f.Tuple.SrcPort)
		}
		top := f.Tuple.DstIP >> 24
		if top == 0 || top >= 224 {
			t.Fatalf("reserved destination %s", packet.IPString(f.Tuple.DstIP))
		}
	}
}
