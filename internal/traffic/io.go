package traffic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// Schedule persistence: a compact binary format for replaying the exact
// same workload across runs and machines (what MoonGen does with pcap
// replay), plus a CSV importer so users can feed their own captured traces
// into the simulator.

var schedMagic = [4]byte{'M', 'S', 'W', '1'}

// WriteFile persists the schedule.
func (s *Schedule) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traffic: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.Write(schedMagic[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := w.Write(tmp[:n])
		return err
	}
	if err := putUvarint(uint64(len(s.Emissions))); err != nil {
		return err
	}
	var lastAt simtime.Time
	for i := range s.Emissions {
		e := &s.Emissions[i]
		if e.At < lastAt {
			return errors.New("traffic: schedule not time-ordered")
		}
		if err := putUvarint(uint64(e.At - lastAt)); err != nil {
			return err
		}
		lastAt = e.At
		var buf [19]byte
		binary.LittleEndian.PutUint32(buf[0:], e.Flow.SrcIP)
		binary.LittleEndian.PutUint32(buf[4:], e.Flow.DstIP)
		binary.LittleEndian.PutUint16(buf[8:], e.Flow.SrcPort)
		binary.LittleEndian.PutUint16(buf[10:], e.Flow.DstPort)
		buf[12] = e.Flow.Proto
		binary.LittleEndian.PutUint16(buf[13:], uint16(e.Size))
		binary.LittleEndian.PutUint32(buf[15:], uint32(e.Burst))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadFile loads a schedule written by WriteFile.
func ReadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != schedMagic {
		return nil, errors.New("traffic: bad schedule magic")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	const maxEmissions = 200_000_000
	if n > maxEmissions {
		return nil, fmt.Errorf("traffic: implausible emission count %d", n)
	}
	s := &Schedule{Emissions: make([]Emission, 0, n)}
	var lastAt simtime.Time
	for i := uint64(0); i < n; i++ {
		dt, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("traffic: truncated at emission %d: %w", i, err)
		}
		lastAt = lastAt.Add(simtime.Duration(dt))
		var buf [19]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("traffic: truncated at emission %d: %w", i, err)
		}
		size := int(binary.LittleEndian.Uint16(buf[13:]))
		if size == 0 {
			size = 64
		}
		s.Emissions = append(s.Emissions, Emission{
			At: lastAt,
			Flow: packet.FiveTuple{
				SrcIP:   binary.LittleEndian.Uint32(buf[0:]),
				DstIP:   binary.LittleEndian.Uint32(buf[4:]),
				SrcPort: binary.LittleEndian.Uint16(buf[8:]),
				DstPort: binary.LittleEndian.Uint16(buf[10:]),
				Proto:   buf[12],
			},
			Size:  size,
			Burst: int32(binary.LittleEndian.Uint32(buf[15:])),
		})
	}
	return s, nil
}

// ReadCSV imports a workload from CSV lines of the form
//
//	time_us,src_ip,dst_ip,src_port,dst_port,proto
//
// (header line optional; times are microseconds from trace start; IPs in
// dotted quad). This is the bridge for replaying real captures through the
// simulator.
func ReadCSV(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if lineNo == 1 && !isNumeric(fields[0]) {
			continue // header
		}
		if len(fields) < 6 {
			return nil, fmt.Errorf("traffic: line %d: want 6 fields, got %d", lineNo, len(fields))
		}
		us, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: bad time: %w", lineNo, err)
		}
		src, err := parseIP(fields[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: %w", lineNo, err)
		}
		dst, err := parseIP(fields[2])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: %w", lineNo, err)
		}
		sp, err := parsePort(fields[3])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: %w", lineNo, err)
		}
		dp, err := parsePort(fields[4])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: %w", lineNo, err)
		}
		proto, err := strconv.ParseUint(strings.TrimSpace(fields[5]), 10, 8)
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: bad proto: %w", lineNo, err)
		}
		s.Emissions = append(s.Emissions, Emission{
			At:    simtime.Time(simtime.FromMicros(us)),
			Flow:  packet.FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: uint8(proto)},
			Size:  64,
			Burst: -1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	s.sortByTime()
	return s, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return err == nil
}

func parseIP(s string) (uint32, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IP %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad IP %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

func parsePort(s string) (uint16, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bad port %q", s)
	}
	return uint16(v), nil
}
