// Package traffic synthesizes the workloads the paper evaluates with:
// CAIDA-like traffic replayed by MoonGen at a configurable packet rate with
// 64-byte packets (§6.1), plus injectable microbursts (§6.2).
//
// Real CAIDA traces are not redistributable, so the generator reproduces
// the properties that matter to queue-based diagnosis instead: a heavy-
// tailed (Zipf) flow-size distribution, many concurrent interleaved flows,
// a constant aggregate packet rate with small arrival jitter, and
// five-tuple structure suitable for prefix/port aggregation. Software NF
// performance is dominated by packet rate, not byte rate, which is why the
// paper pins the packet size; we follow suit.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// Emission is one scheduled packet: the traffic source releases a packet of
// flow Flow at time At.
type Emission struct {
	At    simtime.Time
	Flow  packet.FiveTuple
	Size  int
	Burst int32 // burst injection id, -1 for background traffic
}

// FlowSpec is one synthetic flow and its steady-state popularity weight.
type FlowSpec struct {
	Tuple  packet.FiveTuple
	Weight float64
}

// MixConfig controls the synthetic flow population.
type MixConfig struct {
	// Flows is the number of distinct five-tuples (default 4096).
	Flows int
	// ZipfS is the Zipf skew exponent of flow popularity (default 1.1;
	// >1 gives the heavy tail CAIDA mixes exhibit).
	ZipfS float64
	// Seed drives all randomness in the mix.
	Seed int64
	// WebFraction is the fraction of flows whose destination port is a
	// well-known web port (80/443); the firewall in the evaluation
	// topology steers these to the Monitor.
	WebFraction float64
	// MaxFlowFrac caps any single flow's share of the packet mix
	// (default 0.01). Backbone traces are heavy-tailed but no single
	// five-tuple carries a double-digit share of packets; without the
	// cap, flow-level load balancing would overload one NF by luck of
	// the hash, drowning every controlled experiment in natural drops.
	MaxFlowFrac float64
}

func (c *MixConfig) setDefaults() {
	if c.Flows <= 0 {
		c.Flows = 4096
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.WebFraction <= 0 {
		c.WebFraction = 0.25
	}
	if c.MaxFlowFrac <= 0 {
		c.MaxFlowFrac = 0.01
	}
}

// Mix is a weighted population of flows with an alias-free cumulative
// sampler. Build one with NewMix, then sample with Pick.
type Mix struct {
	Flows []FlowSpec
	cum   []float64 // cumulative weights, cum[len-1] == total
}

// NewMix builds a synthetic flow population.
func NewMix(cfg MixConfig) *Mix {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]FlowSpec, cfg.Flows)
	seen := make(map[packet.FiveTuple]bool, cfg.Flows)
	for i := range flows {
		var ft packet.FiveTuple
		for {
			ft = randomTuple(rng, cfg.WebFraction)
			if !seen[ft] {
				seen[ft] = true
				break
			}
		}
		// Zipf popularity by rank: weight(i) = 1/(i+1)^s.
		w := 1.0 / math.Pow(float64(i+1), cfg.ZipfS)
		flows[i] = FlowSpec{Tuple: ft, Weight: w}
	}
	// Clamp the head of the distribution to MaxFlowFrac of the mass.
	// A few iterations converge: clamping shrinks the total, which can
	// push the cap below remaining weights.
	for iter := 0; iter < 4; iter++ {
		var total float64
		for i := range flows {
			total += flows[i].Weight
		}
		limit := cfg.MaxFlowFrac * total
		changed := false
		for i := range flows {
			if flows[i].Weight > limit {
				flows[i].Weight = limit
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	m := &Mix{Flows: flows, cum: make([]float64, len(flows))}
	var total float64
	for i, f := range flows {
		total += f.Weight
		m.cum[i] = total
	}
	return m
}

// Pick samples a flow according to the popularity weights.
func (m *Mix) Pick(rng *rand.Rand) packet.FiveTuple {
	total := m.cum[len(m.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(m.cum, x)
	if i >= len(m.Flows) {
		i = len(m.Flows) - 1
	}
	return m.Flows[i].Tuple
}

// randomTuple draws a plausible five-tuple. Sources come from a handful of
// /16s (as if behind aggregation routers); destinations are spread wide.
func randomTuple(rng *rand.Rand, webFraction float64) packet.FiveTuple {
	srcNets := [...]uint32{
		packet.IPFromOctets(10, 0, 0, 0),
		packet.IPFromOctets(100, 64, 0, 0),
		packet.IPFromOctets(172, 16, 0, 0),
		packet.IPFromOctets(192, 168, 0, 0),
	}
	src := srcNets[rng.Intn(len(srcNets))] | uint32(rng.Intn(1<<16))
	dst := uint32(rng.Intn(1<<30))<<2 | uint32(rng.Intn(4))
	if dst>>24 == 0 || dst>>24 >= 224 { // avoid reserved/multicast
		dst = packet.IPFromOctets(23, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
	}
	proto := packet.ProtoTCP
	if rng.Float64() < 0.2 {
		proto = packet.ProtoUDP
	}
	dport := uint16(1024 + rng.Intn(64512))
	if rng.Float64() < webFraction {
		if rng.Float64() < 0.6 {
			dport = 80
		} else {
			dport = 443
		}
	}
	return packet.FiveTuple{
		SrcIP:   src,
		DstIP:   dst,
		SrcPort: uint16(1024 + rng.Intn(64512)),
		DstPort: dport,
		Proto:   proto,
	}
}

// ScheduleConfig describes a background-traffic schedule.
type ScheduleConfig struct {
	// Rate is the aggregate packet rate (e.g. simtime.MPPS(1.2)).
	Rate simtime.Rate
	// Duration is the length of the schedule.
	Duration simtime.Duration
	// Start offsets the first emission.
	Start simtime.Time
	// JitterFrac perturbs each inter-arrival by ±JitterFrac uniformly
	// (default 0.3), producing the short-term interleaving variance real
	// traces exhibit without changing the mean rate.
	JitterFrac float64
	// PacketSize is the on-wire size (default 64, matching §6.1).
	PacketSize int
	// Seed drives arrival jitter and flow choice.
	Seed int64
}

func (c *ScheduleConfig) setDefaults() {
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.3
	}
	if c.PacketSize <= 0 {
		c.PacketSize = 64
	}
}

// Schedule is a time-ordered list of emissions, the simulator-facing
// equivalent of a replayable MoonGen trace.
type Schedule struct {
	Emissions []Emission
}

// Generate builds a background schedule: packets drawn from the mix at the
// configured constant mean rate with bounded jitter.
func Generate(mix *Mix, cfg ScheduleConfig) *Schedule {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := cfg.Rate.Interval()
	if interval <= 0 {
		return &Schedule{}
	}
	n := int(cfg.Rate.PacketsF(cfg.Duration))
	ems := make([]Emission, 0, n)
	t := cfg.Start
	end := cfg.Start.Add(cfg.Duration)
	for t.Before(end) {
		ems = append(ems, Emission{
			At:    t,
			Flow:  mix.Pick(rng),
			Size:  cfg.PacketSize,
			Burst: -1,
		})
		jitter := 1 + cfg.JitterFrac*(2*rng.Float64()-1)
		step := simtime.Duration(float64(interval) * jitter)
		if step < 1 {
			step = 1
		}
		t = t.Add(step)
	}
	return &Schedule{Emissions: ems}
}

// BurstSpec describes an injected traffic burst: Count packets of flow Flow
// emitted back-to-back starting At with inter-packet Gap (default: 64-byte
// line-rate-ish 100ns).
type BurstSpec struct {
	ID    int32
	At    simtime.Time
	Flow  packet.FiveTuple
	Count int
	Gap   simtime.Duration
	Size  int
}

// InjectBurst merges a burst into the schedule, keeping time order.
func (s *Schedule) InjectBurst(b BurstSpec) {
	if b.Gap <= 0 {
		b.Gap = 100 * simtime.Nanosecond
	}
	if b.Size <= 0 {
		b.Size = 64
	}
	add := make([]Emission, b.Count)
	t := b.At
	for i := range add {
		add[i] = Emission{At: t, Flow: b.Flow, Size: b.Size, Burst: b.ID}
		t = t.Add(b.Gap)
	}
	s.Emissions = append(s.Emissions, add...)
	s.sortByTime()
}

// InjectFlow merges a paced flow (Count packets, fixed Gap) into the
// schedule; used for the §6.2 bug-triggering flows and the "flow A" of the
// §2 examples. Burst id -1 marks it as non-burst ground truth.
func (s *Schedule) InjectFlow(flow packet.FiveTuple, start simtime.Time, count int, gap simtime.Duration, size int) {
	if size <= 0 {
		size = 64
	}
	add := make([]Emission, count)
	t := start
	for i := range add {
		add[i] = Emission{At: t, Flow: flow, Size: size, Burst: -1}
		t = t.Add(gap)
	}
	s.Emissions = append(s.Emissions, add...)
	s.sortByTime()
}

// Merge combines two schedules into one time-ordered schedule.
func (s *Schedule) Merge(other *Schedule) {
	s.Emissions = append(s.Emissions, other.Emissions...)
	s.sortByTime()
}

func (s *Schedule) sortByTime() {
	sort.SliceStable(s.Emissions, func(i, j int) bool {
		return s.Emissions[i].At < s.Emissions[j].At
	})
}

// Len returns the number of scheduled packets.
func (s *Schedule) Len() int { return len(s.Emissions) }

// End returns the time of the last emission, or 0 for an empty schedule.
func (s *Schedule) End() simtime.Time {
	if len(s.Emissions) == 0 {
		return 0
	}
	return s.Emissions[len(s.Emissions)-1].At
}

// Validate checks schedule invariants (time-ordered, sane sizes). It is
// used by tests and by cmd tools before replay.
func (s *Schedule) Validate() error {
	for i := 1; i < len(s.Emissions); i++ {
		if s.Emissions[i].At < s.Emissions[i-1].At {
			return fmt.Errorf("traffic: schedule out of order at index %d", i)
		}
	}
	for i, e := range s.Emissions {
		if e.Size <= 0 {
			return fmt.Errorf("traffic: emission %d has non-positive size", i)
		}
	}
	return nil
}
