package traffic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microscope/internal/simtime"
)

func TestScheduleFileRoundTrip(t *testing.T) {
	m := NewMix(MixConfig{Flows: 64, Seed: 1})
	s := Generate(m, ScheduleConfig{
		Rate: simtime.MPPS(0.2), Duration: 2 * simtime.Millisecond, Seed: 2,
	})
	s.InjectBurst(BurstSpec{ID: 3, At: simtime.Time(simtime.Millisecond), Flow: m.Flows[0].Tuple, Count: 50})
	path := filepath.Join(t.TempDir(), "wl.msw")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len: %d vs %d", got.Len(), s.Len())
	}
	for i := range s.Emissions {
		a, b := s.Emissions[i], got.Emissions[i]
		if a.At != b.At || a.Flow != b.Flow || a.Size != b.Size || a.Burst != b.Burst {
			t.Fatalf("emission %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	os.WriteFile(bad, []byte("XXXX"), 0o644)
	if _, err := ReadFile(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	m := NewMix(MixConfig{Flows: 8, Seed: 1})
	s := Generate(m, ScheduleConfig{Rate: simtime.MPPS(0.1), Duration: simtime.Millisecond, Seed: 2})
	full := filepath.Join(dir, "full")
	if err := s.WriteFile(full); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(full)
	trunc := filepath.Join(dir, "trunc")
	os.WriteFile(trunc, data[:len(data)/2], 0o644)
	if _, err := ReadFile(trunc); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestWriteFileRejectsDisorder(t *testing.T) {
	s := &Schedule{Emissions: []Emission{{At: 10, Size: 64}, {At: 5, Size: 64}}}
	if err := s.WriteFile(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("disorder accepted")
	}
}

func TestReadCSV(t *testing.T) {
	csv := `time_us,src_ip,dst_ip,src_port,dst_port,proto
0,10.0.0.1,23.0.0.2,1234,80,6
2.5,10.0.0.2,23.0.0.3,5678,443,6
1.0,192.168.1.1,8.8.8.8,9999,53,17
`
	s, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len: %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("CSV import must sort: %v", err)
	}
	// Sorted: 0, 1.0, 2.5 µs.
	if s.Emissions[1].At != simtime.Time(simtime.Microsecond) {
		t.Errorf("sort order: %v", s.Emissions[1].At)
	}
	e := s.Emissions[0]
	if e.Flow.SrcPort != 1234 || e.Flow.DstPort != 80 || e.Flow.Proto != 6 {
		t.Errorf("fields: %+v", e.Flow)
	}
	if e.Flow.SrcIP != 10<<24|1 {
		t.Errorf("src ip: %x", e.Flow.SrcIP)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0,10.0.0.1,23.0.0.2,1234,80",        // too few fields
		"x,10.0.0.1,23.0.0.2,1234,80,6\nz,b", // bad later line
		"0,10.0.0,23.0.0.2,1234,80,6",        // bad ip
		"0,10.0.0.1,23.0.0.2,99999,80,6",     // bad port
		"0,10.0.0.1,23.0.0.2,1234,80,300",    // bad proto
		"0,10.0.0.256,23.0.0.2,1234,80,6",    // octet overflow
		"1,10.0.0.1,23.0.0.2,1234,80,6\nbad", // malformed tail
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\n\n0,10.0.0.1,23.0.0.2,1234,80,6\n"
	if _, err := ReadCSV(strings.NewReader(ok)); err != nil {
		t.Errorf("comments rejected: %v", err)
	}
}
