// Incremental entry point: the sliding-window streaming counterpart to
// RunContext. A StreamState retains the tracestore.Stream (sealed epoch
// segments, watermark, eviction) and one long-lived diagnosis engine whose
// sharded memo is carried across windows; RunIncremental advances the
// stream by one window and diagnoses the assembled window store without
// re-reconstructing retained history.
//
// Stage layout of an incremental window run:
//
//	ingest → merge → index → victims → diagnose [→ patterns]
//
// ingest seals the window's new records into grid segments and evicts
// expired ones (O(new records)); merge assembles the fresh window store by
// concatenating sealed segments with the diagnosis index preset from
// per-segment summaries; the remaining stages are the classic tail,
// running over an engine whose memoized upstream decompositions survive
// from the previous window wherever eviction left them valid.
//
// Equivalence contract: for every window, the Result here is byte-
// identical (Fingerprint) to a cold full rebuild of the same window
// (Stream.RebuildWindow + RunStoreContext with a fresh engine), at every
// worker count, under -race, across degradation rungs and chaos faults.
// The degradation ladder, panic containment, and chaos hooks thread
// through unchanged — stages run inside the same containment boundaries.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// StreamState is the retained state of an incremental diagnosis stream:
// the segment store and one long-lived engine. Not goroutine-safe — it
// belongs to the single ingest goroutine (the online monitor's), like the
// Stream it wraps.
type StreamState struct {
	cfg Config
	str *tracestore.Stream
	eng *core.Engine
	reg *obs.Registry

	// prevPanics converts the engine's cumulative containment counter
	// into the per-window delta Result.ContainedPanics reports (matching
	// the fresh-engine-per-run offline semantics).
	prevPanics int64

	gDirty    *obs.Gauge
	gSegments *obs.Gauge
	gBytes    *obs.Gauge
	gCarried  *obs.Gauge
	gHeap     *obs.Gauge
	cEvicted  *obs.Counter
}

// NewStreamState creates the retained stream state for a deployment. The
// window/overlap geometry must match the caller's flush cadence: every
// RunIncremental end must be a multiple of window.
func NewStreamState(meta collector.Meta, window, overlap simtime.Duration, cfg Config) (*StreamState, error) {
	// Normalize exactly the way a per-run pipeline would, so the injected
	// engine sees the same diagnosis config a fresh per-window engine
	// would have.
	rcfg, reg := resolveConfig(cfg)
	str, err := tracestore.NewStream(meta, tracestore.StreamConfig{
		Window:         window,
		Overlap:        overlap,
		QueueThreshold: rcfg.Diagnosis.QueueThreshold,
	})
	if err != nil {
		return nil, err
	}
	ss := &StreamState{
		cfg: rcfg,
		str: str,
		eng: core.NewEngine(rcfg.Diagnosis),
		reg: reg,
	}
	if ss.reg != nil {
		ss.gDirty = ss.reg.Gauge("microscope_stream_dirty_nfs")
		ss.gSegments = ss.reg.Gauge("microscope_stream_retained_segments")
		ss.gBytes = ss.reg.Gauge("microscope_stream_retained_bytes")
		ss.gCarried = ss.reg.Gauge("microscope_stream_memo_carried")
		ss.gHeap = ss.reg.Gauge("microscope_stream_heap_bytes")
		ss.cEvicted = ss.reg.Counter("microscope_stream_evicted_segments_total")
	}
	return ss, nil
}

// Stream exposes the underlying segment stream (watermark, reference
// rebuilds, cumulative stats) — the equivalence suite and the monitor's
// monotone health counters read it.
func (ss *StreamState) Stream() *tracestore.Stream { return ss.str }

// Stats returns the stream's cumulative seal-time accounting. Unlike
// per-window Health, these counters are monotone across watermark resyncs
// and never double-count overlap records.
func (ss *StreamState) Stats() tracestore.StreamStats { return ss.str.Stats() }

// RunIncremental advances the stream to the window ending at end — recs is
// the monitor's pending window slice (retained overlap plus new records;
// already-sealed prefixes are ignored) — and diagnoses the assembled
// window at the given degradation rung. The returned Result matches a cold
// full rebuild of the same window byte for byte.
//
// At resilience.Skipped the window is still ingested and evicted (stream
// state must track the watermark through overload) but nothing is
// diagnosed, mirroring the ladder's contract for the batch path.
func RunIncremental(ctx context.Context, ss *StreamState, end simtime.Time, recs []collector.BatchRecord, degrade resilience.Level) (*Result, error) {
	return ss.RunWindow(ctx, end, recs, degrade)
}

// RunWindow is RunIncremental as a method; see there.
func (ss *StreamState) RunWindow(ctx context.Context, end simtime.Time, recs []collector.BatchRecord, degrade resilience.Level) (*Result, error) {
	cfg := ss.cfg
	cfg.Degrade = degrade
	//mslint:allow nondet spans and stage timings are observability metadata; diagnosis payloads never read them
	r := &run{cfg: cfg, reg: ss.reg, res: &Result{}, began: time.Now()}

	if err := r.stage(ctx, "ingest", func() {
		st := ss.str.Advance(end, recs)
		if ss.reg != nil {
			ss.gDirty.Set(int64(st.DirtyComps))
			ss.gSegments.Set(int64(st.RetainedSegments))
			ss.gBytes.Set(st.RetainedBytes)
			ss.cEvicted.Add(int64(st.EvictedSegments))
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms) //mslint:allow nondet heap gauge is observability metadata, never diagnosis input
			ss.gHeap.Set(int64(ms.HeapAlloc))
		}
	}); err != nil {
		return r.finish(), err
	}
	r.res.Degradation = degrade
	if degrade >= resilience.Skipped {
		// Ingest-only advance (overload skip or gap drain): the stream
		// state moved, but no pipeline ran — mirroring the batch monitor,
		// which never invokes the pipeline for a skipped window.
		return r.finish(), nil
	}
	if ss.reg != nil {
		ss.reg.Counter("microscope_pipeline_runs_total").Inc()
	}

	if err := r.stage(ctx, "merge", func() {
		st, rm := ss.str.Window(end)
		carried := 0
		if rm.First || !rm.Compatible || cfg.Diagnosis.QueueThreshold > 0 {
			// No previous window, an interner shape change (a component
			// evicted wholesale or renamed under corruption), or §7
			// threshold periods — whose timelines are clamped to the
			// moving window start — make carried entries unsound.
			ss.eng.ResetMemo(st)
		} else {
			carried = ss.eng.CarryMemo(st, core.MemoRemap{
				NewStart:     rm.NewStart,
				JourneyShift: rm.JourneyShift,
				ArrivalShift: rm.ArrivalShift,
			})
		}
		ss.gCarried.Set(int64(carried))
		r.res.Store = st
		r.res.Health = st.Health()
		st.RecordObs(r.reg)
	}); err != nil {
		return r.finish(), err
	}

	res, err := r.runStoreWith(ctx, ss.eng)
	// The long-lived engine's containment counter is cumulative; report
	// the per-window delta, matching fresh-engine runs.
	total := ss.eng.ContainedPanics()
	res.ContainedPanics = total - ss.prevPanics
	ss.prevPanics = total
	return res, err
}

// Fingerprint renders every diagnosis-relevant output of a Result in a
// canonical byte-exact form: degradation level, health, victims, causes at
// full float precision, and patterns. Two runs are "byte-identical" (the
// determinism and incremental-equivalence contracts) exactly when their
// fingerprints match. Timings, spans, and scheduling stats are excluded —
// they are observability metadata.
func (res *Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%v victims=%d diagnoses=%d contained=%d relations=%d\n",
		res.Degradation, len(res.Victims), len(res.Diagnoses), res.ContainedPanics, res.Relations)
	fmt.Fprintf(&b, "health %s\n", res.Health.String())
	for _, v := range res.Victims {
		fmt.Fprintf(&b, "victim %d %s %s %d %d\n", v.Journey, v.Comp, v.Kind, v.ArriveAt, v.QueueDelay)
	}
	for i := range res.Diagnoses {
		for _, c := range res.Diagnoses[i].Causes {
			fmt.Fprintf(&b, "  cause %s %s %.17g %d %v\n", c.Comp, c.Kind, c.Score, c.At, c.CulpritJourneys)
		}
	}
	for _, p := range res.Patterns {
		fmt.Fprintf(&b, "pattern %s score=%.17g\n", p.String(), p.Score)
	}
	return b.String()
}
