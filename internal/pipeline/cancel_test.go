package pipeline_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"microscope/internal/core"
	"microscope/internal/pipeline"
	"microscope/internal/simtime"
)

// countdownCtx cancels itself after a fixed number of Err observations — a
// deterministic stand-in for a user cancelling mid-run, with none of the
// timing flakiness of a real timer. Thread-safe, so it also drives the
// parallel worker pool.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdown(allowed int) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(int64(allowed))
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Value(key any) any           { return c.Context.Value(key) }

// TestRunContextCancelMidDiagnose pins the cancellation contract: a
// context cancelled partway through the per-victim fan-out stops the run
// promptly, the error names the diagnose stage and wraps context.Canceled,
// and the partial Result keeps everything completed before the cut —
// victims selected, patterns never attempted.
func TestRunContextCancelMidDiagnose(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 12 * simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	tr := buildTrace(11, dur)
	cfg := pipeline.Config{
		Workers:   1,
		Diagnosis: core.Config{MaxVictims: 200},
	}

	full, err := pipeline.RunContext(context.Background(), tr, cfg)
	if err != nil {
		t.Fatalf("uncancelled run errored: %v", err)
	}
	n := len(full.Victims)
	if n < 4 {
		t.Fatalf("workload produced only %d victims; cancel point would be ambiguous", n)
	}

	// Sequentially (Workers=1) the run checks the context once per stage
	// boundary (reconstruct, index, victims, diagnose = 4) and then once
	// per victim, so allowing 4+n/2 checks cancels deterministically in
	// the middle of the diagnose fan-out.
	res, err := pipeline.RunContext(newCountdown(4+n/2), tr, cfg)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "diagnose") {
		t.Errorf("error %q does not name the diagnose stage", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil Result")
	}
	if len(res.Victims) != n {
		t.Errorf("partial result lost the victim selection: %d vs %d", len(res.Victims), n)
	}
	if res.Patterns != nil || res.Relations != 0 {
		t.Error("patterns stage ran after cancellation")
	}
	// Slots past the cancel point are zero-valued, earlier ones are real.
	if len(res.Diagnoses) != n {
		t.Fatalf("partial diagnoses length %d, want %d", len(res.Diagnoses), n)
	}
	if res.Diagnoses[0].Victim.Comp == "" {
		t.Error("first diagnosis should have completed before the cancel point")
	}
	if last := res.Diagnoses[n-1]; last.Victim.Comp != "" || last.Causes != nil {
		t.Error("last diagnosis slot should be zero-valued after mid-stage cancel")
	}

	// The same cancellation through the parallel pool: exact slots are
	// timing-dependent, but the error contract is identical.
	cfg.Workers = 8
	res, err = pipeline.RunContext(newCountdown(4+n/2), tr, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel cancel: error %v does not wrap context.Canceled", err)
	}
	if res == nil || res.Patterns != nil {
		t.Error("parallel cancel: patterns stage must not run")
	}

	// A context cancelled before the run starts stops at the first stage.
	res, err = pipeline.RunContext(newCountdown(0), tr, cfg)
	if !errors.Is(err, context.Canceled) || !strings.Contains(err.Error(), "reconstruct") {
		t.Errorf("pre-cancelled run: err=%v, want reconstruct-stage cancellation", err)
	}
	if res == nil || res.Store != nil {
		t.Error("pre-cancelled run should return an empty, non-nil Result")
	}
}
