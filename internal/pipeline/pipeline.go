// Package pipeline is the staged diagnosis pipeline every entry point —
// msdiag and msbench offline, mslive's per-window analysis — routes
// through. It makes the stages of a Microscope run explicit and
// independently timed:
//
//	reconstruct → index → victims → diagnose → patterns
//
// Stage 1 rebuilds packet journeys from the collected trace (§5). Stage 2
// builds the shared immutable tracestore.Index: per-NF delay statistics,
// the sorted delivered-latency distribution, and prewarmed queuing-period
// interval indexes, computed once instead of per DiagnoseVictim call.
// Stage 3 selects victims (latency / loss). Stage 4 fans the per-victim
// causal diagnosis (§4.1–§4.3) out over a bounded worker pool, sharing a
// single-flight memo cache for recursive upstream queuing-period
// decompositions. Stage 5 aggregates packet-level relations into ranked
// causal patterns (§4.4), with the per-group AutoFocus calls of both
// phases running on the same pool.
//
// Determinism contract: for a fixed input the pipeline's output is
// byte-for-byte identical for every Workers value, including 1
// (sequential), and attaching an observability registry never changes it —
// metrics and spans are write-only side channels.
//
// Cancellation contract: RunContext/RunStoreContext check the context at
// every stage boundary and inside the stage-4/5 worker fan-outs. A
// cancelled run returns the partial Result built so far together with an
// error wrapping ctx.Err(); stages never started leave their Result fields
// zero.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/patterns"
	"microscope/internal/resilience"
	"microscope/internal/tracestore"
)

// Config tunes a pipeline run.
type Config struct {
	// Workers bounds the fan-out of the parallel stages (0 = GOMAXPROCS,
	// 1 = fully sequential). Any value produces identical output. When
	// nonzero it overrides Diagnosis.Workers and Patterns.Workers.
	Workers int
	// Diagnosis passes through the engine knobs (victim percentile,
	// recursion depth, queue threshold, ...).
	Diagnosis core.Config
	// Patterns tunes the §4.4 aggregation.
	Patterns patterns.Config
	// SkipPatterns stops after stage 4 — the online monitor merges raw
	// causes itself and never needs patterns.
	SkipPatterns bool
	// Degrade runs the pipeline at a reduced level of the overload
	// degradation ladder. resilience.Full (the zero value) is the normal
	// run; NoPatterns stops after diagnosis (like SkipPatterns);
	// VictimsOnly stops after victim selection; Skipped stops right after
	// reconstruction, reporting only store health. Degraded runs are still
	// deterministic: the same level over the same input yields
	// byte-identical output for every Workers value.
	Degrade resilience.Level
	// ContainPanics arms the crash-containment boundaries: a panic inside
	// one victim's diagnosis quarantines that victim, and a panic inside a
	// stage surfaces as a *resilience.PanicError from RunContext instead of
	// killing the process. The partial Result holds everything completed
	// before the crash. Off by default — the offline tools prefer a loud
	// crash with a full stack.
	ContainPanics bool
	// ChaosHook, when non-nil, fires at the start of each stage with scope
	// "stage:<name>" and is forwarded to the diagnosis engine (scope
	// "victim:<i>"). The chaos harness injects deterministic faults through
	// it. Never set in production.
	ChaosHook func(scope string)
	// Obs receives pipeline metrics: per-stage latency histograms, run
	// counts, and the store/diagnosis/pattern instruments of the stages it
	// is propagated into. nil falls back to the process-wide obs.Default()
	// (disabled unless installed). A pipeline-level registry is pushed down
	// into Diagnosis.Obs and Patterns.Obs unless those are already set.
	Obs *obs.Registry
}

// StageTiming is one stage's wall-clock cost.
type StageTiming struct {
	Name    string
	Elapsed time.Duration
}

// Result is the full output of a pipeline run.
type Result struct {
	// Store is the reconstructed trace backing everything downstream.
	Store *tracestore.Store
	// Index is the shared immutable trace index the diagnosis ran over.
	Index *tracestore.Index
	// Victims is the stage-3 selection, in canonical victim order.
	Victims []core.Victim
	// Diagnoses holds per-victim ranked causes, parallel to Victims.
	Diagnoses []core.Diagnosis
	// Relations is how many packet-level causal relations stage 5 fed to
	// AutoFocus (0 when SkipPatterns).
	Relations int
	// Patterns is the ranked causal-pattern report (nil when SkipPatterns).
	Patterns []patterns.Pattern
	// Health qualifies the run: trace damage and reconstruction outcome.
	Health tracestore.Health
	// Degradation echoes the ladder level the run executed at (Config.
	// Degrade): LevelFull unless the caller asked for less.
	Degradation resilience.Level
	// ContainedPanics counts victims quarantined by the worker-task
	// containment boundary during this run (0 unless ContainPanics).
	ContainedPanics int64
	// DiagnoseStats records how the diagnose stage's NF-partitioned
	// fan-out was scheduled (partition counts, resolved workers). Purely
	// observational; the diagnosis output never depends on it.
	DiagnoseStats core.RunStats
	// Stages records per-stage wall-clock timings, in execution order.
	Stages []StageTiming
	// Spans is the run's span tree: a root "pipeline" span (ID 0,
	// Parent -1) with one child per executed stage. It is always
	// populated, registry or not, so callers introspect stage structure
	// without opting into metrics; with a registry attached the same spans
	// are also recorded into its bounded tracer.
	Spans []obs.Span
}

// Run executes the full pipeline on a collected trace.
func Run(tr *collector.Trace, cfg Config) *Result {
	//mslint:allow ctxflow non-ctx convenience wrapper; cancellable path is RunContext
	res, _ := RunContext(context.Background(), tr, cfg)
	return res
}

// RunContext is Run with cooperative cancellation. The returned Result is
// never nil: on cancellation it carries everything completed before the
// stage that observed ctx.Err(), and the error wraps context.Canceled (or
// DeadlineExceeded) for errors.Is.
func RunContext(ctx context.Context, tr *collector.Trace, cfg Config) (*Result, error) {
	r := newRun(cfg)
	if err := r.stage(ctx, "reconstruct", func() {
		st := tracestore.Build(tr)
		st.Reconstruct()
		r.res.Store = st
		r.res.Health = st.Health()
		st.RecordObs(r.reg)
	}); err != nil {
		return r.finish(), err
	}
	return r.runStore(ctx)
}

// RunStore executes stages 2–5 on an already-reconstructed store.
func RunStore(st *tracestore.Store, cfg Config) *Result {
	//mslint:allow ctxflow non-ctx convenience wrapper; cancellable path is RunStoreContext
	res, _ := RunStoreContext(context.Background(), st, cfg)
	return res
}

// RunStoreContext is RunStore with cooperative cancellation; see
// RunContext for the partial-result contract.
func RunStoreContext(ctx context.Context, st *tracestore.Store, cfg Config) (*Result, error) {
	r := newRun(cfg)
	r.res.Store = st
	r.res.Health = st.Health()
	st.RecordObs(r.reg)
	return r.runStore(ctx)
}

// run is one pipeline execution: the resolved config, the observability
// registry (nil = disabled), and the Result under construction.
type run struct {
	cfg   Config
	reg   *obs.Registry
	res   *Result
	began time.Time
}

// resolveConfig normalizes a pipeline config — worker-count and
// containment/chaos fan-out into the stage configs, registry resolution
// and push-down — without side effects, so holders of long-lived state
// (the incremental stream) can resolve once without counting a run.
func resolveConfig(cfg Config) (Config, *obs.Registry) {
	if cfg.Workers != 0 {
		cfg.Diagnosis.Workers = cfg.Workers
		cfg.Patterns.Workers = cfg.Workers
	}
	if cfg.ContainPanics {
		cfg.Diagnosis.ContainPanics = true
	}
	if cfg.ChaosHook != nil {
		cfg.Diagnosis.ChaosHook = cfg.ChaosHook
	}
	reg := obs.Or(cfg.Obs)
	if reg != nil {
		// Push the pipeline's registry into the stages so their internal
		// instruments (diagnosis memo counters, pattern phase timings)
		// land in the same place — without clobbering an explicitly
		// different per-stage registry.
		if cfg.Diagnosis.Obs == nil {
			cfg.Diagnosis.Obs = reg
		}
		if cfg.Patterns.Obs == nil {
			cfg.Patterns.Obs = reg
		}
	}
	return cfg, reg
}

func newRun(cfg Config) *run {
	cfg, reg := resolveConfig(cfg)
	if reg != nil {
		reg.Counter("microscope_pipeline_runs_total").Inc()
	}
	//mslint:allow nondet spans and stage timings are observability metadata; diagnosis payloads never read them
	return &run{cfg: cfg, reg: reg, res: &Result{}, began: time.Now()}
}

// stage runs one named stage unless ctx is already done, recording its
// wall-clock cost as a StageTiming, a child span, and (when a registry is
// attached) a per-stage latency histogram sample. The error, if any, is
// "pipeline canceled during <name> stage" wrapping ctx.Err().
func (r *run) stage(ctx context.Context, name string, fn func()) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("pipeline canceled during %s stage: %w", name, err)
	}
	body := fn
	if r.cfg.ChaosHook != nil {
		// The hook fires inside the containment boundary so injected
		// stage panics exercise the same recovery path as real ones.
		body = func() {
			r.cfg.ChaosHook("stage:" + name)
			fn()
		}
	}
	t := time.Now() //mslint:allow nondet stage timing is observability metadata, not diagnosis output
	var crashed error
	if r.cfg.ContainPanics {
		crashed = resilience.Contain("stage:"+name, body)
	} else {
		body()
	}
	elapsed := time.Since(t) //mslint:allow nondet stage timing is observability metadata, not diagnosis output
	r.res.Stages = append(r.res.Stages, StageTiming{Name: name, Elapsed: elapsed})
	r.res.Spans = append(r.res.Spans, obs.Span{
		ID:     int32(len(r.res.Spans)) + 1,
		Parent: 0,
		Name:   name,
		Kind:   "stage",
		Start:  t,
		Dur:    elapsed,
	})
	if r.reg != nil {
		r.reg.Histogram("microscope_pipeline_stage_ns{stage=\"" + name + "\"}").Observe(elapsed)
	}
	if crashed != nil {
		if r.reg != nil {
			r.reg.Counter("microscope_pipeline_stage_panics_total").Inc()
		}
		return fmt.Errorf("pipeline crashed during %s stage: %w", name, crashed)
	}
	// A cancellation that raced the stage still counts as completing it:
	// the work is done and its outputs are valid. The next stage boundary
	// observes the context.
	return nil
}

// finish closes the root span (and mirrors the tree into the registry's
// tracer) before the Result is handed back.
func (r *run) finish() *Result {
	root := obs.Span{
		ID:     0,
		Parent: -1,
		Name:   "pipeline",
		Kind:   "pipeline",
		Start:  r.began,
		//mslint:allow nondet span duration is observability metadata, not diagnosis output
		Dur: time.Since(r.began),
	}
	r.res.Spans = append([]obs.Span{root}, r.res.Spans...)
	if r.reg != nil {
		tr := r.reg.Tracer()
		// Remap ordinal IDs onto the tracer's global sequence so trees
		// from successive runs stay distinguishable in the ring.
		base := tr.NewID()
		for i := range r.res.Spans {
			s := r.res.Spans[i]
			s.ID += base
			if s.Parent >= 0 {
				s.Parent += base
			}
			tr.Record(s)
			if i < len(r.res.Spans)-1 {
				tr.NewID()
			}
		}
	}
	return r.res
}

// runStore executes stages 2–5 against r.res.Store, honouring the
// degradation ladder: each level peels stages off the tail of the run.
func (r *run) runStore(ctx context.Context) (*Result, error) {
	return r.runStoreWith(ctx, core.NewEngine(r.cfg.Diagnosis))
}

// runStoreWith is runStore with an injected diagnosis engine. The offline
// paths hand it a fresh engine per run; the incremental streaming path
// injects a long-lived engine whose memo is carried across windows.
func (r *run) runStoreWith(ctx context.Context, eng *core.Engine) (*Result, error) {
	r.res.Degradation = r.cfg.Degrade
	if r.cfg.Degrade >= resilience.Skipped {
		return r.finish(), nil
	}
	st := r.res.Store
	if err := r.stage(ctx, "index", func() {
		r.res.Index = st.Index(r.cfg.Diagnosis.QueueThreshold)
	}); err != nil {
		return r.finish(), err
	}
	if err := r.stage(ctx, "victims", func() {
		r.res.Victims = eng.FindVictims(st)
	}); err != nil {
		return r.finish(), err
	}
	if r.cfg.Degrade >= resilience.VictimsOnly {
		return r.finish(), nil
	}
	var stageErr error
	err := r.stage(ctx, "diagnose", func() {
		r.res.Diagnoses, r.res.DiagnoseStats, stageErr = eng.DiagnoseVictimsStats(ctx, st, r.res.Victims)
	})
	r.res.ContainedPanics = eng.ContainedPanics()
	if r.reg != nil {
		r.reg.Gauge("microscope_pipeline_diag_partitions").Set(int64(r.res.DiagnoseStats.Partitions))
		r.reg.Gauge("microscope_pipeline_diag_workers").Set(int64(r.res.DiagnoseStats.Workers))
	}
	if err != nil {
		return r.finish(), err
	}
	if stageErr != nil {
		return r.finish(), fmt.Errorf("pipeline canceled during diagnose stage: %w", stageErr)
	}
	if r.cfg.SkipPatterns || r.cfg.Degrade >= resilience.NoPatterns {
		return r.finish(), nil
	}
	if err := r.stage(ctx, "patterns", func() {
		rels := patterns.RelationsFromDiagnoses(st, r.res.Diagnoses, r.cfg.Patterns)
		r.res.Relations = len(rels)
		r.res.Patterns, stageErr = patterns.AggregateContext(ctx, rels, r.cfg.Patterns)
	}); err != nil {
		return r.finish(), err
	}
	if stageErr != nil {
		return r.finish(), fmt.Errorf("pipeline canceled during patterns stage: %w", stageErr)
	}
	return r.finish(), nil
}
