// Package pipeline is the staged diagnosis pipeline every entry point —
// msdiag and msbench offline, mslive's per-window analysis — routes
// through. It makes the stages of a Microscope run explicit and
// independently timed:
//
//	reconstruct → index → victims → diagnose → patterns
//
// Stage 1 rebuilds packet journeys from the collected trace (§5). Stage 2
// builds the shared immutable tracestore.Index: per-NF delay statistics,
// the sorted delivered-latency distribution, and prewarmed queuing-period
// interval indexes, computed once instead of per DiagnoseVictim call.
// Stage 3 selects victims (latency / loss). Stage 4 fans the per-victim
// causal diagnosis (§4.1–§4.3) out over a bounded worker pool, sharing a
// single-flight memo cache for recursive upstream queuing-period
// decompositions. Stage 5 aggregates packet-level relations into ranked
// causal patterns (§4.4), with the per-group AutoFocus calls of both
// phases running on the same pool.
//
// Determinism contract: for a fixed input the pipeline's output is
// byte-for-byte identical for every Workers value, including 1
// (sequential). Victims are diagnosed independently against the immutable
// index and merged in victim order; memoized values are pure functions of
// their (NF, period) key; every ranking uses a total order.
package pipeline

import (
	"time"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/patterns"
	"microscope/internal/tracestore"
)

// Config tunes a pipeline run.
type Config struct {
	// Workers bounds the fan-out of the parallel stages (0 = GOMAXPROCS,
	// 1 = fully sequential). Any value produces identical output. When
	// nonzero it overrides Diagnosis.Workers and Patterns.Workers.
	Workers int
	// Diagnosis passes through the engine knobs (victim percentile,
	// recursion depth, queue threshold, ...).
	Diagnosis core.Config
	// Patterns tunes the §4.4 aggregation.
	Patterns patterns.Config
	// SkipPatterns stops after stage 4 — the online monitor merges raw
	// causes itself and never needs patterns.
	SkipPatterns bool
}

// StageTiming is one stage's wall-clock cost.
type StageTiming struct {
	Name    string
	Elapsed time.Duration
}

// Result is the full output of a pipeline run.
type Result struct {
	// Store is the reconstructed trace backing everything downstream.
	Store *tracestore.Store
	// Index is the shared immutable trace index the diagnosis ran over.
	Index *tracestore.Index
	// Victims is the stage-3 selection, in canonical victim order.
	Victims []core.Victim
	// Diagnoses holds per-victim ranked causes, parallel to Victims.
	Diagnoses []core.Diagnosis
	// Relations is how many packet-level causal relations stage 5 fed to
	// AutoFocus (0 when SkipPatterns).
	Relations int
	// Patterns is the ranked causal-pattern report (nil when SkipPatterns).
	Patterns []patterns.Pattern
	// Health qualifies the run: trace damage and reconstruction outcome.
	Health tracestore.Health
	// Stages records per-stage wall-clock timings, in execution order.
	Stages []StageTiming
}

// Run executes the full pipeline on a collected trace.
func Run(tr *collector.Trace, cfg Config) *Result {
	t0 := time.Now()
	st := tracestore.Build(tr)
	st.Reconstruct()
	res := runStore(st, cfg)
	res.Stages = append([]StageTiming{{Name: "reconstruct", Elapsed: time.Since(t0) - totalElapsed(res.Stages)}}, res.Stages...)
	return res
}

// RunStore executes stages 2–5 on an already-reconstructed store.
func RunStore(st *tracestore.Store, cfg Config) *Result {
	return runStore(st, cfg)
}

func runStore(st *tracestore.Store, cfg Config) *Result {
	if cfg.Workers != 0 {
		cfg.Diagnosis.Workers = cfg.Workers
		cfg.Patterns.Workers = cfg.Workers
	}
	res := &Result{Store: st, Health: st.Health()}
	stage := func(name string, fn func()) {
		t := time.Now()
		fn()
		res.Stages = append(res.Stages, StageTiming{Name: name, Elapsed: time.Since(t)})
	}

	eng := core.NewEngine(cfg.Diagnosis)
	stage("index", func() {
		res.Index = st.Index(cfg.Diagnosis.QueueThreshold)
	})
	stage("victims", func() {
		res.Victims = eng.FindVictims(st)
	})
	stage("diagnose", func() {
		res.Diagnoses = eng.DiagnoseVictims(st, res.Victims)
	})
	if cfg.SkipPatterns {
		return res
	}
	stage("patterns", func() {
		rels := patterns.RelationsFromDiagnoses(st, res.Diagnoses, cfg.Patterns)
		res.Relations = len(rels)
		res.Patterns = patterns.Aggregate(rels, cfg.Patterns)
	})
	return res
}

func totalElapsed(stages []StageTiming) time.Duration {
	var d time.Duration
	for _, s := range stages {
		d += s.Elapsed
	}
	return d
}
