package pipeline_test

import (
	"fmt"
	"testing"

	"microscope"
	"microscope/internal/simtime"
)

// BenchmarkDiagnosePipeline measures the staged pipeline end to end
// (victims → diagnose → patterns) on the 16-NF evaluation workload at
// several worker counts. The trace is simulated and reconstructed once;
// each iteration runs a full diagnosis with a fresh engine, so the
// single-flight memo cache is measured, not amortized away.
func BenchmarkDiagnosePipeline(b *testing.B) {
	tr := buildTrace(42, 40*simtime.Millisecond)
	st := microscope.Reconstruct(tr)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			victims := 0
			b.ReportAllocs() // bytes/op and allocs/op always, -benchmem or not
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := microscope.DiagnoseStore(st, microscope.DiagnosisConfig{MaxVictims: 300, Workers: w})
				victims = len(rep.Diagnoses)
			}
			b.ReportMetric(float64(victims)*float64(b.N)/b.Elapsed().Seconds(), "victims/s")
		})
	}
	// The same pipeline with a live metrics registry attached: the
	// BENCH_pipeline.json delta between workers=N and observed/workers=N
	// quantifies the enabled-observability cost (the disabled cost is the
	// plain rows staying flat release over release).
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("observed/workers=%d", w), func(b *testing.B) {
			victims := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg := microscope.NewRegistry()
				rep := microscope.DiagnoseStore(st,
					microscope.WithMaxVictims(300),
					microscope.WithWorkers(w),
					microscope.WithObserver(reg))
				victims = len(rep.Diagnoses)
			}
			b.ReportMetric(float64(victims)*float64(b.N)/b.Elapsed().Seconds(), "victims/s")
		})
	}
}
