package pipeline_test

import (
	"context"
	"fmt"
	"testing"

	"microscope"
	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
)

// BenchmarkDiagnosePipeline measures the staged pipeline end to end
// (victims → diagnose → patterns) on the 16-NF evaluation workload at
// several worker counts. The trace is simulated and reconstructed once;
// each iteration runs a full diagnosis with a fresh engine, so the
// single-flight memo cache is measured, not amortized away.
func BenchmarkDiagnosePipeline(b *testing.B) {
	tr := buildTrace(42, 40*simtime.Millisecond)
	st := microscope.Reconstruct(tr)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			victims := 0
			b.ReportAllocs() // bytes/op and allocs/op always, -benchmem or not
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := microscope.DiagnoseStore(st, microscope.WithMaxVictims(300), microscope.WithWorkers(w))
				victims = len(rep.Diagnoses)
			}
			b.ReportMetric(float64(victims)*float64(b.N)/b.Elapsed().Seconds(), "victims/s")
		})
	}
	// The same pipeline with a live metrics registry attached: the
	// BENCH_pipeline.json delta between workers=N and observed/workers=N
	// quantifies the enabled-observability cost (the disabled cost is the
	// plain rows staying flat release over release).
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("observed/workers=%d", w), func(b *testing.B) {
			victims := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg := microscope.NewRegistry()
				rep := microscope.DiagnoseStore(st,
					microscope.WithMaxVictims(300),
					microscope.WithWorkers(w),
					microscope.WithObserver(reg))
				victims = len(rep.Diagnoses)
			}
			b.ReportMetric(float64(victims)*float64(b.N)/b.Elapsed().Seconds(), "victims/s")
		})
	}
}

// BenchmarkStreamingWindows measures the online window loop in its two
// modes over the same sliding-window geometry: a 0.25 ms reporting
// cadence over 5 ms of retained analysis context (span/slide = 20, the
// fast-alert regime the streaming index exists for — overlap spans many
// slides, so the batch path re-reconstructs each record ~20 times while
// the incremental path seals it into its grid segment exactly once).
//
//	mode=full — the pre-streaming monitor path: every flush re-runs the
//	            whole pipeline (sort, Build, Reconstruct, Index, fresh-
//	            engine diagnosis) over the pending window's records.
//	mode=incr — RunIncremental over retained stream state: new records
//	            are sealed into grid segments exactly once, the window
//	            store is assembled by merging sealed segments, and the
//	            diagnosis memo carries across windows.
//
// The windows/s ratio between the two modes is what `make bench-stream`
// gates at >= 3x via benchfmt -min-stream-speedup; retained_bytes records
// the incremental path's steady-state retained footprint.
func BenchmarkStreamingWindows(b *testing.B) {
	const (
		w = simtime.Millisecond / 4
		o = 19 * simtime.Millisecond / 4
	)
	tr := buildTrace(11, 20*simtime.Millisecond)
	var last simtime.Time
	for i := range tr.Records {
		if tr.Records[i].At > last {
			last = tr.Records[i].At
		}
	}
	// Pre-slice the per-window pending buffers (monitor-style: retained
	// overlap + new records) so buffer management is outside both paths.
	type win struct {
		end  simtime.Time
		recs []collector.BatchRecord
	}
	var wins []win
	for end := simtime.Time(w); end <= last+simtime.Time(w); end += simtime.Time(w) {
		lo := end - simtime.Time(w+o)
		var recs []collector.BatchRecord
		for i := range tr.Records {
			if at := tr.Records[i].At; at >= lo && at <= end {
				recs = append(recs, tr.Records[i])
			}
		}
		wins = append(wins, win{end: end, recs: recs})
	}
	// SkipPatterns mirrors the online monitor's own configuration: the
	// monitor merges raw pattern evidence across flushes itself, so the
	// per-window loop stops after diagnosis in both modes.
	cfg := pipeline.Config{Workers: 1, SkipPatterns: true, Diagnosis: core.Config{MaxVictims: 64}}
	ctx := context.Background()

	b.Run("mode=full", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		victims := 0
		for i := 0; i < b.N; i++ {
			for _, wn := range wins {
				res, err := pipeline.RunContext(ctx, &collector.Trace{Meta: tr.Meta, Records: wn.recs}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				victims += len(res.Victims)
			}
		}
		b.ReportMetric(float64(len(wins))*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
		if victims == 0 {
			b.Fatal("no victims diagnosed — workload degenerate")
		}
	})
	b.Run("mode=incr", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		victims := 0
		var retained int64
		for i := 0; i < b.N; i++ {
			ss, err := pipeline.NewStreamState(tr.Meta, w, o, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, wn := range wins {
				res, runErr := ss.RunWindow(ctx, wn.end, wn.recs, resilience.Full)
				if runErr != nil {
					b.Fatal(runErr)
				}
				victims += len(res.Victims)
			}
			retained = ss.Stats().RetainedBytes
		}
		b.ReportMetric(float64(len(wins))*float64(b.N)/b.Elapsed().Seconds(), "windows/s")
		b.ReportMetric(float64(retained), "retained_bytes")
		if victims == 0 {
			b.Fatal("no victims diagnosed — workload degenerate")
		}
	})
}
