//go:build race

package pipeline_test

// raceEnabled lets the heavy simulation-backed tests shrink their workload
// under the race detector, where execution is an order of magnitude slower.
// The race run still exercises the same parallel code paths; the full-size
// determinism sweep runs in the regular (non-race) test pass.
const raceEnabled = true
