package pipeline_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"microscope"
	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// buildTrace runs the 16-NF evaluation topology under bursty load with
// injected interrupts and microbursts — the same problem mix mslive
// streams — and returns the collected trace.
func buildTrace(seed int64, dur simtime.Duration) *collector.Trace {
	col := collector.New(collector.Config{})
	topo := nfsim.BuildEvalTopology(col, nfsim.EvalTopologyConfig{Seed: seed})
	sim := topo.Sim

	mix := traffic.NewMix(traffic.MixConfig{Flows: 1024, Seed: seed + 1})
	sched := traffic.Generate(mix, traffic.ScheduleConfig{
		Rate: simtime.MPPS(1.2), Duration: dur, Seed: seed + 2,
	})
	rng := rand.New(rand.NewSource(seed + 3))
	nfs := topo.AllNFs()
	for at := simtime.Time(5 * simtime.Millisecond); at < simtime.Time(dur); at = at.Add(8*simtime.Millisecond + simtime.Duration(rng.Int63n(int64(6*simtime.Millisecond)))) {
		if rng.Intn(2) == 0 {
			nf := nfs[rng.Intn(len(nfs))]
			d := 400*simtime.Microsecond + simtime.Duration(rng.Int63n(int64(simtime.Millisecond)))
			sim.InjectInterrupt(nf, at, d, "det")
		} else {
			flow := mix.Flows[rng.Intn(len(mix.Flows))].Tuple
			sched.InjectBurst(traffic.BurstSpec{
				ID: int32(at / 1000), At: at, Flow: flow, Count: 600 + rng.Intn(900),
			})
		}
	}
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(dur) + simtime.Time(20*simtime.Millisecond))
	return col.Trace(collector.MetaFor(topo))
}

// fingerprint captures every observable output of a report: the rendered
// text plus a deep dump of all diagnoses, causes (full float precision,
// culprit journey lists) and patterns.
func fingerprint(r *microscope.Report) string {
	var b strings.Builder
	b.WriteString(r.Render())
	for i := range r.Diagnoses {
		d := &r.Diagnoses[i]
		fmt.Fprintf(&b, "victim %d %s %s %d %d causes=%d\n",
			d.Victim.Journey, d.Victim.Comp, d.Victim.Kind, d.Victim.ArriveAt, d.Victim.QueueDelay, len(d.Causes))
		for _, c := range d.Causes {
			fmt.Fprintf(&b, "  cause %s %s %.17g %d %v\n", c.Comp, c.Kind, c.Score, c.At, c.CulpritJourneys)
		}
	}
	for _, p := range r.Patterns {
		fmt.Fprintf(&b, "pattern %s score=%.17g\n", p.String(), p.Score)
	}
	return b.String()
}

// TestPipelineDeterminism is the pipeline's contract test: on the 16-NF
// evaluation workload, a fully sequential run (Workers=1) and a wide
// parallel run (Workers=8) must produce byte-for-byte identical reports —
// rendered output, per-victim causes at full float precision, culprit
// journey lists, and patterns — across several seeds.
func TestPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	// Under the race detector (an order of magnitude slower) the traces
	// shrink but all seeds still run: the contract is per-seed.
	seeds, dur := []int64{1, 7, 42}, 40*simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tr := buildTrace(seed, dur)

			cfg := microscope.DiagnosisConfig{MaxVictims: 300}
			cfg.Workers = 1
			seq := microscope.Diagnose(tr, cfg)
			cfg.Workers = 8
			par := microscope.Diagnose(tr, cfg)

			if len(seq.Diagnoses) == 0 {
				t.Fatalf("workload produced no victims; the determinism check is vacuous")
			}
			fseq, fpar := fingerprint(seq), fingerprint(par)
			if fseq != fpar {
				t.Fatalf("Workers=1 and Workers=8 reports differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", fseq, fpar)
			}
		})
	}
}

// TestPipelineStages checks the staged structure: every stage is present,
// timed, and in order, and SkipPatterns stops after diagnosis.
func TestPipelineStages(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 20 * simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	tr := buildTrace(3, dur)
	rep := microscope.Diagnose(tr, microscope.DiagnosisConfig{MaxVictims: 100})
	want := []string{"reconstruct", "index", "victims", "diagnose", "patterns"}
	if len(rep.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(rep.Stages), len(want), rep.Stages)
	}
	for i, name := range want {
		if rep.Stages[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, rep.Stages[i].Name, name)
		}
		if rep.Stages[i].Elapsed < 0 {
			t.Errorf("stage %q has negative elapsed %v", name, rep.Stages[i].Elapsed)
		}
	}
}

// TestPipelineDeterminismWithObserver pins the observability side of the
// determinism contract: attaching a live metrics registry must not change
// the report — sequential, parallel, and unobserved runs all fingerprint
// identically — while the registry itself fills with the run's metrics and
// spans.
func TestPipelineDeterminismWithObserver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 20 * simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	tr := buildTrace(5, dur)

	plain := microscope.Diagnose(tr, microscope.WithMaxVictims(200))
	regSeq, regPar := microscope.NewRegistry(), microscope.NewRegistry()
	seq := microscope.Diagnose(tr, microscope.WithMaxVictims(200),
		microscope.WithWorkers(1), microscope.WithObserver(regSeq))
	par := microscope.Diagnose(tr, microscope.WithMaxVictims(200),
		microscope.WithWorkers(8), microscope.WithObserver(regPar))

	fp, fs, fpar := fingerprint(plain), fingerprint(seq), fingerprint(par)
	if fs != fp {
		t.Fatal("attaching a registry changed the sequential report")
	}
	if fpar != fp {
		t.Fatal("attaching a registry changed the parallel report")
	}

	// The registry must reflect the run it observed.
	snap := regSeq.TakeSnapshot()
	if got := snap.Counters["microscope_pipeline_runs_total"]; got != 1 {
		t.Errorf("pipeline_runs_total = %d, want 1", got)
	}
	if got := snap.Counters["microscope_diag_victims_total"]; got != int64(len(seq.Diagnoses)) {
		t.Errorf("diag_victims_total = %d, want %d", got, len(seq.Diagnoses))
	}
	if snap.Gauges["microscope_store_journeys"] == 0 {
		t.Error("store_journeys gauge not published")
	}
	if len(snap.Spans) == 0 || snap.SpansTotal == 0 {
		t.Error("no spans recorded into the registry tracer")
	}
	// The report's own span tree mirrors the stages plus the root.
	if len(seq.Spans) != len(seq.Stages)+1 {
		t.Errorf("report has %d spans for %d stages", len(seq.Spans), len(seq.Stages))
	}
	if seq.Spans[0].Name != "pipeline" || seq.Spans[0].Parent != -1 {
		t.Errorf("root span = %+v, want pipeline/-1", seq.Spans[0])
	}
}
