package pipeline_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"microscope"
	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/nfsim"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// buildTrace runs the 16-NF evaluation topology under bursty load with
// injected interrupts and microbursts — the same problem mix mslive
// streams — and returns the collected trace.
func buildTrace(seed int64, dur simtime.Duration) *collector.Trace {
	col := collector.New(collector.Config{})
	topo := nfsim.BuildEvalTopology(col, nfsim.EvalTopologyConfig{Seed: seed})
	sim := topo.Sim

	mix := traffic.NewMix(traffic.MixConfig{Flows: 1024, Seed: seed + 1})
	sched := traffic.Generate(mix, traffic.ScheduleConfig{
		Rate: simtime.MPPS(1.2), Duration: dur, Seed: seed + 2,
	})
	rng := rand.New(rand.NewSource(seed + 3))
	nfs := topo.AllNFs()
	for at := simtime.Time(5 * simtime.Millisecond); at < simtime.Time(dur); at = at.Add(8*simtime.Millisecond + simtime.Duration(rng.Int63n(int64(6*simtime.Millisecond)))) {
		if rng.Intn(2) == 0 {
			nf := nfs[rng.Intn(len(nfs))]
			d := 400*simtime.Microsecond + simtime.Duration(rng.Int63n(int64(simtime.Millisecond)))
			sim.InjectInterrupt(nf, at, d, "det")
		} else {
			flow := mix.Flows[rng.Intn(len(mix.Flows))].Tuple
			sched.InjectBurst(traffic.BurstSpec{
				ID: int32(at / 1000), At: at, Flow: flow, Count: 600 + rng.Intn(900),
			})
		}
	}
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(dur) + simtime.Time(20*simtime.Millisecond))
	return col.Trace(collector.MetaFor(topo))
}

// fingerprint captures every observable output of a report: the rendered
// text plus a deep dump of all diagnoses, causes (full float precision,
// culprit journey lists) and patterns.
func fingerprint(r *microscope.Report) string {
	var b strings.Builder
	b.WriteString(r.Render())
	for i := range r.Diagnoses {
		d := &r.Diagnoses[i]
		fmt.Fprintf(&b, "victim %d %s %s %d %d causes=%d\n",
			d.Victim.Journey, d.Victim.Comp, d.Victim.Kind, d.Victim.ArriveAt, d.Victim.QueueDelay, len(d.Causes))
		for _, c := range d.Causes {
			fmt.Fprintf(&b, "  cause %s %s %.17g %d %v\n", c.Comp, c.Kind, c.Score, c.At, c.CulpritJourneys)
		}
	}
	for _, p := range r.Patterns {
		fmt.Fprintf(&b, "pattern %s score=%.17g\n", p.String(), p.Score)
	}
	return b.String()
}

// TestPipelineDeterminism is the pipeline's contract test: on the 16-NF
// evaluation workload, a fully sequential run (Workers=1) and a wide
// parallel run (Workers=8) must produce byte-for-byte identical reports —
// rendered output, per-victim causes at full float precision, culprit
// journey lists, and patterns — across several seeds.
func TestPipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	// Under the race detector (an order of magnitude slower) the traces
	// shrink but all seeds still run: the contract is per-seed.
	seeds, dur := []int64{1, 7, 42}, 40*simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tr := buildTrace(seed, dur)

			cfg := microscope.Options{MaxVictims: 300}
			cfg.Workers = 1
			seq := microscope.Diagnose(tr, cfg)
			cfg.Workers = 8
			par := microscope.Diagnose(tr, cfg)
			cfg.Workers = 0 // resolve to GOMAXPROCS, whatever this host has
			def := microscope.Diagnose(tr, cfg)

			if len(seq.Diagnoses) == 0 {
				t.Fatalf("workload produced no victims; the determinism check is vacuous")
			}
			fseq, fpar := fingerprint(seq), fingerprint(par)
			if fseq != fpar {
				t.Fatalf("Workers=1 and Workers=8 reports differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", fseq, fpar)
			}
			if fdef := fingerprint(def); fdef != fseq {
				t.Fatalf("Workers=GOMAXPROCS report differs from Workers=1:\n--- sequential ---\n%s\n--- default ---\n%s", fseq, fdef)
			}
		})
	}
}

// resultFingerprint deep-dumps a raw pipeline result the way fingerprint
// does a report: victims, causes at full float precision, and patterns.
func resultFingerprint(r *pipeline.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%v victims=%d diagnoses=%d contained=%d relations=%d\n",
		r.Degradation, len(r.Victims), len(r.Diagnoses), r.ContainedPanics, r.Relations)
	for _, v := range r.Victims {
		fmt.Fprintf(&b, "victim %d %s %s %d %d\n", v.Journey, v.Comp, v.Kind, v.ArriveAt, v.QueueDelay)
	}
	for i := range r.Diagnoses {
		for _, c := range r.Diagnoses[i].Causes {
			fmt.Fprintf(&b, "  cause %s %s %.17g %d %v\n", c.Comp, c.Kind, c.Score, c.At, c.CulpritJourneys)
		}
	}
	for _, p := range r.Patterns {
		fmt.Fprintf(&b, "pattern %s score=%.17g\n", p.String(), p.Score)
	}
	return b.String()
}

// TestPipelineDeterminismDegraded extends the determinism contract to the
// overload path: every degradation-ladder rung, and a run with chaos-
// injected victim panics under containment, must still produce
// byte-identical output at Workers=1 and Workers=8.
func TestPipelineDeterminismDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 20 * simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	tr := buildTrace(9, dur)

	for _, lvl := range []resilience.Level{resilience.NoPatterns, resilience.VictimsOnly, resilience.Skipped} {
		t.Run(lvl.String(), func(t *testing.T) {
			run := func(workers int) *pipeline.Result {
				res, err := pipeline.RunContext(context.Background(), tr, pipeline.Config{
					Workers:   workers,
					Diagnosis: core.Config{MaxVictims: 300},
					Degrade:   lvl,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			seq, par := run(1), run(8)
			if seq.Degradation != lvl {
				t.Errorf("Degradation = %v, want %v", seq.Degradation, lvl)
			}
			if lvl >= resilience.VictimsOnly && len(seq.Diagnoses) != 0 {
				t.Errorf("rung %v still diagnosed %d victims", lvl, len(seq.Diagnoses))
			}
			if lvl == resilience.NoPatterns && (len(seq.Diagnoses) == 0 || seq.Patterns != nil) {
				t.Errorf("no-patterns rung: diagnoses=%d patterns=%v", len(seq.Diagnoses), seq.Patterns)
			}
			fseq, fpar := resultFingerprint(seq), resultFingerprint(par)
			if fseq != fpar {
				t.Fatalf("degraded run differs across worker counts:\n--- sequential ---\n%s\n--- parallel ---\n%s", fseq, fpar)
			}
		})
	}

	t.Run("victim-panics", func(t *testing.T) {
		hook := func(scope string) {
			if scope == "victim:2" || scope == "victim:5" {
				panic("chaos: injected victim panic")
			}
		}
		run := func(workers int) *pipeline.Result {
			res, err := pipeline.RunContext(context.Background(), tr, pipeline.Config{
				Workers:   workers,
				Diagnosis: core.Config{MaxVictims: 300},
				// Patterns dominate the wall clock and play no part in
				// victim-level containment; the rung subtests above cover
				// pattern-stage determinism.
				SkipPatterns:  true,
				ContainPanics: true,
				ChaosHook:     hook,
			})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return res
		}
		seq, par := run(1), run(8)
		if seq.ContainedPanics != 2 {
			t.Fatalf("contained %d panics, want 2", seq.ContainedPanics)
		}
		fseq, fpar := resultFingerprint(seq), resultFingerprint(par)
		if fseq != fpar {
			t.Fatalf("contained-panic run differs across worker counts:\n--- sequential ---\n%s\n--- parallel ---\n%s", fseq, fpar)
		}
	})

	t.Run("facade", func(t *testing.T) {
		// The options surface maps the rung through to the report.
		rep := microscope.Diagnose(tr, microscope.WithMaxVictims(300),
			microscope.WithDegradation(microscope.DegradeNoPatterns),
			microscope.WithPanicContainment())
		if rep.Degradation != microscope.DegradeNoPatterns {
			t.Errorf("report degradation = %v, want no-patterns", rep.Degradation)
		}
		if len(rep.Patterns) != 0 {
			t.Errorf("no-patterns report still has %d patterns", len(rep.Patterns))
		}
	})
}

// TestPipelineStages checks the staged structure: every stage is present,
// timed, and in order, and SkipPatterns stops after diagnosis.
func TestPipelineStages(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 20 * simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	tr := buildTrace(3, dur)
	rep := microscope.Diagnose(tr, microscope.WithMaxVictims(100))
	want := []string{"reconstruct", "index", "victims", "diagnose", "patterns"}
	if len(rep.Stages) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(rep.Stages), len(want), rep.Stages)
	}
	for i, name := range want {
		if rep.Stages[i].Name != name {
			t.Errorf("stage %d = %q, want %q", i, rep.Stages[i].Name, name)
		}
		if rep.Stages[i].Elapsed < 0 {
			t.Errorf("stage %q has negative elapsed %v", name, rep.Stages[i].Elapsed)
		}
	}
}

// TestPipelineDeterminismWithObserver pins the observability side of the
// determinism contract: attaching a live metrics registry must not change
// the report — sequential, parallel, and unobserved runs all fingerprint
// identically — while the registry itself fills with the run's metrics and
// spans.
func TestPipelineDeterminismWithObserver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 20 * simtime.Millisecond
	if raceEnabled {
		dur = 8 * simtime.Millisecond
	}
	tr := buildTrace(5, dur)

	plain := microscope.Diagnose(tr, microscope.WithMaxVictims(200))
	regSeq, regPar := microscope.NewRegistry(), microscope.NewRegistry()
	seq := microscope.Diagnose(tr, microscope.WithMaxVictims(200),
		microscope.WithWorkers(1), microscope.WithObserver(regSeq))
	par := microscope.Diagnose(tr, microscope.WithMaxVictims(200),
		microscope.WithWorkers(8), microscope.WithObserver(regPar))

	fp, fs, fpar := fingerprint(plain), fingerprint(seq), fingerprint(par)
	if fs != fp {
		t.Fatal("attaching a registry changed the sequential report")
	}
	if fpar != fp {
		t.Fatal("attaching a registry changed the parallel report")
	}

	// The registry must reflect the run it observed.
	snap := regSeq.TakeSnapshot()
	if got := snap.Counters["microscope_pipeline_runs_total"]; got != 1 {
		t.Errorf("pipeline_runs_total = %d, want 1", got)
	}
	if got := snap.Counters["microscope_diag_victims_total"]; got != int64(len(seq.Diagnoses)) {
		t.Errorf("diag_victims_total = %d, want %d", got, len(seq.Diagnoses))
	}
	if snap.Gauges["microscope_store_journeys"] == 0 {
		t.Error("store_journeys gauge not published")
	}
	if len(snap.Spans) == 0 || snap.SpansTotal == 0 {
		t.Error("no spans recorded into the registry tracer")
	}
	// The report's own span tree mirrors the stages plus the root.
	if len(seq.Spans) != len(seq.Stages)+1 {
		t.Errorf("report has %d spans for %d stages", len(seq.Spans), len(seq.Stages))
	}
	if seq.Spans[0].Name != "pipeline" || seq.Spans[0].Parent != -1 {
		t.Errorf("root span = %+v, want pipeline/-1", seq.Spans[0])
	}
}
