package pipeline_test

import (
	"context"
	"fmt"
	"testing"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
)

// The incremental-vs-full-rebuild equivalence suite: for every window, the
// incremental path (carried stream state, preset index, carried memo) must
// produce a byte-identical Result fingerprint to a cold rebuild of the
// same window with a fresh engine — across seeds, worker counts, and
// degradation rungs. This is the contract that keeps the streaming path
// honest; it runs under -race via make stream-check.

// slideWindows drives both paths over the trace and compares fingerprints
// per window. rung is applied to both sides.
func slideWindows(t *testing.T, tr *collector.Trace, w, o simtime.Duration, workers int, rung resilience.Level) {
	t.Helper()
	cfg := pipeline.Config{
		Workers:   workers,
		Diagnosis: core.Config{MaxVictims: 200},
	}
	ss, err := pipeline.NewStreamState(tr.Meta, w, o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last simtime.Time
	for _, r := range tr.Records {
		if r.At > last {
			last = r.At
		}
	}
	ctx := context.Background()
	windows := 0
	for end := simtime.Time(w); end <= last+simtime.Time(w); end += simtime.Time(w) {
		// The monitor hands Advance its pending slice (retained overlap +
		// new records); passing the whole prefix is equivalent — sealed
		// records are ignored by watermark.
		var recs []collector.BatchRecord
		for _, r := range tr.Records {
			if r.At <= end {
				recs = append(recs, r)
			}
		}
		inc, err := pipeline.RunIncremental(ctx, ss, end, recs, rung)
		if err != nil {
			t.Fatalf("window %d incremental: %v", end, err)
		}
		if rung >= resilience.Skipped {
			if inc.Degradation != rung {
				t.Fatalf("window %d: degradation %v, want %v", end, inc.Degradation, rung)
			}
			continue
		}
		ref, err := pipeline.RunStoreContext(ctx, ss.Stream().RebuildWindow(), pipeline.Config{
			Workers:   workers,
			Diagnosis: core.Config{MaxVictims: 200},
			Degrade:   rung,
		})
		if err != nil {
			t.Fatalf("window %d reference: %v", end, err)
		}
		fi, fr := inc.Fingerprint(), ref.Fingerprint()
		if fi != fr {
			t.Fatalf("window ending %d: incremental and full-rebuild reports differ\n--- incremental ---\n%s\n--- full rebuild ---\n%s", end, fi, fr)
		}
		windows++
	}
	if rung < resilience.Skipped && windows < 3 {
		t.Fatalf("only %d comparable windows — trace too short for the suite", windows)
	}
}

func TestIncrementalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 30 * simtime.Millisecond
	if raceEnabled {
		dur = 15 * simtime.Millisecond
	}
	for _, seed := range []int64{1, 2, 3} {
		tr := buildTrace(seed, dur)
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				slideWindows(t, tr, 5*simtime.Millisecond, simtime.Millisecond, workers, resilience.Full)
			})
		}
	}
}

// TestIncrementalEquivalenceDegraded extends the contract to the ladder:
// every rung must stay byte-identical to a cold rebuild at that rung, and
// Skipped must still advance the stream.
func TestIncrementalEquivalenceDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 16-NF topology; skipped in -short")
	}
	dur := 20 * simtime.Millisecond
	if raceEnabled {
		dur = 10 * simtime.Millisecond
	}
	tr := buildTrace(7, dur)
	for _, rung := range []resilience.Level{resilience.NoPatterns, resilience.VictimsOnly, resilience.Skipped} {
		t.Run(rung.String(), func(t *testing.T) {
			slideWindows(t, tr, 5*simtime.Millisecond, simtime.Millisecond, 4, rung)
		})
	}
}

// chainMeta is a minimal source→a→b deployment for hand-placed records.
func chainMeta() collector.Meta {
	return collector.Meta{
		Components: []collector.ComponentMeta{
			{Name: "source", Kind: "source"},
			{Name: "a", Kind: "nf", PeakRate: simtime.MPPS(1)},
			{Name: "b", Kind: "nf", PeakRate: simtime.MPPS(1), Egress: true},
		},
		Edges: []collector.Edge{
			{From: "source", To: "a"},
			{From: "a", To: "b"},
		},
		MaxBatch: 32,
	}
}

// packetAt emits one packet's full record chain starting at t: source
// write → a read/write → b read/deliver. ipid distinguishes packets.
func packetAt(t simtime.Time, ipid uint16) []collector.BatchRecord {
	d := simtime.Time(10 * simtime.Microsecond)
	return []collector.BatchRecord{
		{Comp: "source", Queue: "a.in", At: t, IPIDs: []uint16{ipid}, Dir: collector.DirWrite},
		{Comp: "a", At: t + d, IPIDs: []uint16{ipid}, Dir: collector.DirRead},
		{Comp: "a", Queue: "b.in", At: t + 2*d, IPIDs: []uint16{ipid}, Dir: collector.DirWrite},
		{Comp: "b", At: t + 3*d, IPIDs: []uint16{ipid}, Dir: collector.DirRead},
		{Comp: "b", At: t + 4*d, IPIDs: []uint16{ipid}, Dir: collector.DirDeliver},
	}
}

// runEdgeCase drives one hand-built record schedule through both paths
// over the given window ends and asserts per-window fingerprint equality.
func runEdgeCase(t *testing.T, recs []collector.BatchRecord, ends []simtime.Time, w, o simtime.Duration) {
	t.Helper()
	meta := chainMeta()
	cfg := pipeline.Config{Workers: 1, Diagnosis: core.Config{MaxVictims: 50}}
	ss, err := pipeline.NewStreamState(meta, w, o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, end := range ends {
		var pend []collector.BatchRecord
		for _, r := range recs {
			if r.At <= end {
				pend = append(pend, r)
			}
		}
		inc, err := pipeline.RunIncremental(ctx, ss, end, pend, resilience.Full)
		if err != nil {
			t.Fatalf("end=%d incremental: %v", end, err)
		}
		ref, err := pipeline.RunStoreContext(ctx, ss.Stream().RebuildWindow(), cfg)
		if err != nil {
			t.Fatalf("end=%d reference: %v", end, err)
		}
		if fi, fr := inc.Fingerprint(), ref.Fingerprint(); fi != fr {
			t.Fatalf("end=%d: reports differ\n--- incremental ---\n%s\n--- full rebuild ---\n%s", end, fi, fr)
		}
	}
}

// TestStreamEdgeBoundaries: records placed exactly on flush boundaries
// (k·W, belongs to the window it closes) and retain boundaries (k·W−O,
// belongs right), under sliding eviction.
func TestStreamEdgeBoundaries(t *testing.T) {
	w, o := simtime.Duration(simtime.Millisecond), 200*simtime.Microsecond
	W, O := simtime.Time(w), simtime.Time(o)
	var recs []collector.BatchRecord
	ipid := uint16(1)
	var ends []simtime.Time
	for k := simtime.Time(1); k <= 8; k++ {
		recs = append(recs, packetAt(k*W-5*simtime.Time(simtime.Microsecond)*10, ipid)...) // chain ends exactly at k·W
		ipid++
		recs = append(recs, packetAt(k*W-O, ipid)...) // starts exactly on a retain boundary
		ipid++
		recs = append(recs, packetAt(k*W-O-simtime.Time(40*simtime.Microsecond), ipid)...) // straddles the retain boundary
		ipid++
		ends = append(ends, k*W)
	}
	runEdgeCase(t, recs, ends, w, o)
}

// TestStreamWatermarkJump: the flush end leaps several windows forward (a
// watermark resync after a stream gap); eviction must retire everything
// below the new horizon in one step and reports must stay equivalent.
func TestStreamWatermarkJump(t *testing.T) {
	w, o := simtime.Duration(simtime.Millisecond), 200*simtime.Microsecond
	W := simtime.Time(w)
	var recs []collector.BatchRecord
	for k := simtime.Time(0); k < 3; k++ {
		recs = append(recs, packetAt(k*W+W/3, uint16(k+1))...)
	}
	// Gap, then traffic resumes far beyond the horizon.
	for k := simtime.Time(9); k < 12; k++ {
		recs = append(recs, packetAt(k*W+W/3, uint16(k+1))...)
	}
	ends := []simtime.Time{1 * W, 2 * W, 3 * W, 10 * W, 11 * W, 12 * W}
	runEdgeCase(t, recs, ends, w, o)
}

// TestStreamGapLargerThanHorizon: an empty stretch longer than the
// retained horizon empties the stream entirely; the next window must
// reconstruct from scratch without residue.
func TestStreamGapLargerThanHorizon(t *testing.T) {
	w, o := simtime.Duration(simtime.Millisecond), 200*simtime.Microsecond
	W := simtime.Time(w)
	recs := packetAt(W/2, 1)
	recs = append(recs, packetAt(20*W+W/2, 2)...)
	var ends []simtime.Time
	for k := simtime.Time(1); k <= 21; k++ {
		ends = append(ends, k*W)
	}
	meta := chainMeta()
	cfg := pipeline.Config{Workers: 1, Diagnosis: core.Config{MaxVictims: 50}}
	ss, err := pipeline.NewStreamState(meta, w, o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, end := range ends {
		var pend []collector.BatchRecord
		for _, r := range recs {
			if r.At <= end {
				pend = append(pend, r)
			}
		}
		inc, err := pipeline.RunIncremental(ctx, ss, end, pend, resilience.Full)
		if err != nil {
			t.Fatalf("end=%d: %v", end, err)
		}
		ref, err := pipeline.RunStoreContext(ctx, ss.Stream().RebuildWindow(), cfg)
		if err != nil {
			t.Fatalf("end=%d reference: %v", end, err)
		}
		if fi, fr := inc.Fingerprint(), ref.Fingerprint(); fi != fr {
			t.Fatalf("end=%d: reports differ\n%s\n---\n%s", end, fi, fr)
		}
		if end >= 10*W && end < 20*W {
			if st := ss.Stats(); st.RetainedSegments != 0 {
				t.Fatalf("end=%d: %d segments retained across an empty horizon, want 0", end, st.RetainedSegments)
			}
		}
	}
}

// TestStreamSteadyStateBounded: across 300+ windows of steady synthetic
// traffic, retained bytes and segment count must plateau — the eviction
// path must not leak history.
func TestStreamSteadyStateBounded(t *testing.T) {
	w, o := simtime.Duration(simtime.Millisecond), 200*simtime.Microsecond
	W := simtime.Time(w)
	meta := chainMeta()
	cfg := pipeline.Config{Workers: 1, Diagnosis: core.Config{MaxVictims: 50}, SkipPatterns: true}
	ss, err := pipeline.NewStreamState(meta, w, o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var peakEarly, peakLate int64
	const windows = 320
	for k := simtime.Time(1); k <= windows; k++ {
		end := k * W
		var recs []collector.BatchRecord
		for i := 0; i < 4; i++ {
			recs = append(recs, packetAt(end-W+W/8+simtime.Time(i)*W/8, uint16(i+1))...)
		}
		if _, err := pipeline.RunIncremental(ctx, ss, end, recs, resilience.Full); err != nil {
			t.Fatal(err)
		}
		st := ss.Stats()
		if st.RetainedSegments > 8 {
			t.Fatalf("window %d: %d segments retained — eviction is leaking", k, st.RetainedSegments)
		}
		if k <= 20 {
			if st.RetainedBytes > peakEarly {
				peakEarly = st.RetainedBytes
			}
		} else if st.RetainedBytes > peakLate {
			peakLate = st.RetainedBytes
		}
	}
	if peakLate > peakEarly {
		t.Fatalf("retained bytes grew after warm-up: early peak %d, late peak %d", peakEarly, peakLate)
	}
	st := ss.Stats()
	if st.Records == 0 || st.Journeys == 0 {
		t.Fatal("cumulative stream accounting never moved")
	}
}

// TestStreamMonotoneHealth: the stream's cumulative recon counters are
// seal-time totals — they never decrease, including across a watermark
// jump (the online monitor's monotone Unmatched/Quarantined fix).
func TestStreamMonotoneHealth(t *testing.T) {
	w, o := simtime.Duration(simtime.Millisecond), 200*simtime.Microsecond
	W := simtime.Time(w)
	meta := chainMeta()
	ss, err := pipeline.NewStreamState(meta, w, o, pipeline.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// An arrival whose dequeue carries a different IPID leaves an
	// unmatched read (matchQueue needs at least one arrival to engage).
	orphan := func(t0 simtime.Time, id uint16) []collector.BatchRecord {
		return []collector.BatchRecord{
			{Comp: "source", Queue: "a.in", At: t0, IPIDs: []uint16{id}, Dir: collector.DirWrite},
			{Comp: "a", At: t0 + simtime.Time(10*simtime.Microsecond), IPIDs: []uint16{id + 1000}, Dir: collector.DirRead},
		}
	}
	prev := 0
	ends := []simtime.Time{1 * W, 2 * W, 9 * W, 10 * W}
	for i, end := range ends {
		recs := orphan(end-W/2, uint16(i+1))
		if _, err := pipeline.RunIncremental(ctx, ss, end, recs, resilience.Full); err != nil {
			t.Fatal(err)
		}
		um := ss.Stats().Recon.Unmatched
		if um < prev {
			t.Fatalf("cumulative unmatched went backwards: %d -> %d at end=%d", prev, um, end)
		}
		if um == prev {
			t.Fatalf("orphan read at end=%d not counted (still %d)", end, um)
		}
		prev = um
	}
}
