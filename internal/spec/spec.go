// Package spec is the declarative configuration plane: a versioned,
// JSON-serializable PipelineSpec that describes one self-contained
// diagnosis pipeline — stage selection, engine knobs, streaming geometry,
// overload resilience, deployment topology, and remediation hooks — as
// data rather than flags or code.
//
// The spec is the canonical config form going forward. Every flag
// combination of the CLIs is expressible (and reproducible) as a spec
// (`msdiag -dump-spec`), the serving tier (msserve) accepts nothing else,
// and the facade's functional-options API joins it via WithSpec. The
// contract with microscope.Options is a lossless round-trip: converting a
// resolved spec to Options and merging it back reproduces the spec byte
// for byte, and Options→spec→Options is the identity.
//
// Parsing is strict: unknown fields, malformed durations, out-of-range
// knobs, and inconsistent window geometry are rejected with field-path
// errors ("stream.window: ..."), never silently defaulted. Defaulting is
// a separate, explicit step (Resolved) so a stored spec always states the
// configuration it runs with.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"microscope/internal/resilience"
	"microscope/internal/simtime"
)

// Version is the current spec schema version. Parse accepts only this
// version (or 0, which means "current" and is resolved to it).
const Version = 1

// Duration is a JSON-friendly duration: it marshals as a Go duration
// string ("100ms") and unmarshals from either a string or a bare number
// of nanoseconds.
type Duration int64

// D converts a time.Duration.
func D(d time.Duration) Duration { return Duration(d) }

// Std returns the duration as time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Sim returns the duration on the simulated-time axis.
func (d Duration) Sim() simtime.Duration { return simtime.Duration(d) }

// String implements fmt.Stringer.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a string ("120ms").
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "100ms"-style strings or bare nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q", s)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("duration must be a string like \"100ms\" or nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// PipelineSpec describes one self-contained diagnosis pipeline. The zero
// value (plus Version) is a valid spec meaning "all defaults"; Resolved
// makes every default explicit.
type PipelineSpec struct {
	// Version is the schema version (0 = current).
	Version int `json:"version"`
	// Tenant optionally names the deployment the spec configures; the
	// serving tier uses it as the tenant ID when the create request
	// doesn't carry one.
	Tenant string `json:"tenant,omitempty"`
	// Stages selects how much of the pipeline runs.
	Stages StagesSpec `json:"stages"`
	// Diagnosis tunes the §4 engine.
	Diagnosis DiagnosisSpec `json:"diagnosis"`
	// Stream sets the sliding-window geometry and alerting of the online
	// monitor. Ignored by pure batch runs.
	Stream StreamSpec `json:"stream"`
	// Resilience arms the overload defenses (PR-6 ladder and bounds).
	Resilience ResilienceSpec `json:"resilience"`
	// Topology describes the NF graph and peak rates. Required by the
	// serving tier (reconstruction needs it before the first record);
	// batch CLIs read it from the trace instead.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Hooks lists remediation hooks fired on ranked-culprit changes.
	Hooks []HookSpec `json:"hooks,omitempty"`
}

// StagesSpec selects the pipeline stages, mirroring the degradation
// ladder's rungs.
type StagesSpec struct {
	// Run is the rung the pipeline executes at: "full", "no-patterns",
	// "victims-only", or "skipped" (default "full"). Overload may degrade
	// a window further at runtime; Run is the ceiling.
	Run string `json:"run,omitempty"`
	// SkipPatterns stops after per-victim diagnosis (equivalent to
	// Run="no-patterns" for the batch path, kept distinct because the
	// facade exposes both knobs).
	SkipPatterns bool `json:"skip_patterns,omitempty"`
	// ContainPanics quarantines panicking victims/stages instead of
	// crashing; the serving tier forces it on.
	ContainPanics bool `json:"contain_panics,omitempty"`
}

// DiagnosisSpec tunes the diagnosis engine (§4).
type DiagnosisSpec struct {
	// VictimPercentile selects latency victims (default 99).
	VictimPercentile float64 `json:"victim_percentile,omitempty"`
	// MaxRecursionDepth caps the §4.3 recursion (default 5).
	MaxRecursionDepth int `json:"max_recursion_depth,omitempty"`
	// MaxVictims caps diagnosed victims per run/window (0 = all).
	MaxVictims int `json:"max_victims,omitempty"`
	// PatternThreshold is the §4.4 significance fraction (default 0.01).
	PatternThreshold float64 `json:"pattern_threshold,omitempty"`
	// QueueThreshold enables the §7 non-empty-queue extension.
	QueueThreshold int `json:"queue_threshold,omitempty"`
	// SkipLossVictims disables loss diagnosis.
	SkipLossVictims bool `json:"skip_loss_victims,omitempty"`
	// LossVictimsWhenDegraded keeps loss diagnosis on degraded traces.
	LossVictimsWhenDegraded bool `json:"loss_victims_when_degraded,omitempty"`
	// Workers bounds the parallel fan-out (0 = GOMAXPROCS). Output is
	// byte-identical for every value.
	Workers int `json:"workers,omitempty"`
}

// StreamSpec is the sliding-window geometry: slide is the flush cadence,
// overlap the carried tail, window the total analysis span
// (window = slide + overlap). Any two determine the third; specifying all
// three inconsistently is an error.
type StreamSpec struct {
	// Window is the total analysis span per flush (default 120ms).
	Window Duration `json:"window,omitempty"`
	// Slide is the flush cadence (default 100ms).
	Slide Duration `json:"slide,omitempty"`
	// Overlap is the carried tail (default 20ms).
	Overlap Duration `json:"overlap,omitempty"`
	// MinScore is the alert threshold in packets (default 100).
	MinScore float64 `json:"min_score,omitempty"`
	// HoldOff suppresses repeat alerts for the same culprit within this
	// span (default one slide).
	HoldOff Duration `json:"hold_off,omitempty"`
	// MaxLookahead bounds plausible timestamps beyond the watermark
	// (default 4096 slides; negative disables).
	MaxLookahead Duration `json:"max_lookahead,omitempty"`
	// ResyncAfter is the watermark-jump recovery run length (default 8;
	// negative disables).
	ResyncAfter int `json:"resync_after,omitempty"`
	// Incremental routes windows through the retained streaming index
	// (default true). Pointer so "absent" and "explicitly false" differ.
	Incremental *bool `json:"incremental,omitempty"`
}

// ResilienceSpec arms the overload defenses.
type ResilienceSpec struct {
	// RingCapacity bounds the ingest ring in records (0 = unbounded).
	RingCapacity int `json:"ring_capacity,omitempty"`
	// ShedPolicy selects what a full ring sheds: "drop-oldest" (default)
	// or "reject-new".
	ShedPolicy string `json:"shed_policy,omitempty"`
	// WindowDeadline is the wall-clock budget per window (0 = none).
	WindowDeadline Duration `json:"window_deadline,omitempty"`
	// MaxMemBytes is the hard heap watermark (0 = off). The serving tier
	// also treats it as the tenant's memory budget.
	MaxMemBytes int64 `json:"max_mem_bytes,omitempty"`
	// SoftMemBytes is the soft watermark (default MaxMemBytes/2).
	SoftMemBytes int64 `json:"soft_mem_bytes,omitempty"`
	// Ladder overrides the degradation thresholds; nil derives
	// AutoLadder(ring_capacity).
	Ladder *LadderSpec `json:"ladder,omitempty"`
	// Retry shapes the backoff for transient faults (stream sources,
	// remediation hooks).
	Retry *RetrySpec `json:"retry,omitempty"`
}

// LadderSpec sets the deterministic degradation thresholds.
type LadderSpec struct {
	SoftRecords int `json:"soft_records,omitempty"`
	HardRecords int `json:"hard_records,omitempty"`
	MaxRecords  int `json:"max_records,omitempty"`
	SoftBacklog int `json:"soft_backlog,omitempty"`
	HardBacklog int `json:"hard_backlog,omitempty"`
}

// RetrySpec shapes a capped exponential backoff.
type RetrySpec struct {
	MaxAttempts int      `json:"max_attempts,omitempty"`
	Base        Duration `json:"base,omitempty"`
	Max         Duration `json:"max,omitempty"`
	Jitter      float64  `json:"jitter,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
}

// TopologySpec describes the NF deployment: the component graph and
// offline-measured peak rates (§4.1).
type TopologySpec struct {
	Components []ComponentSpec `json:"components"`
	Edges      []EdgeSpec      `json:"edges,omitempty"`
	// MaxBatch is the receive batch limit (default 32).
	MaxBatch int `json:"max_batch,omitempty"`
}

// ComponentSpec is one NF (or the traffic source).
type ComponentSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`
	// PeakRate is r_i in packets/second (0 for the source).
	PeakRate float64 `json:"peak_rate,omitempty"`
	Egress   bool    `json:"egress,omitempty"`
}

// EdgeSpec is a directed traffic link.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// HookSpec is one remediation hook: when a window's ranked culprit set
// changes, the serving tier fires every matching hook.
type HookSpec struct {
	// Name identifies the hook in logs and metrics; unique per spec.
	Name string `json:"name"`
	// Type is "webhook" (POST the alert JSON to URL) or "exec" (run
	// Command with the alert JSON on stdin).
	Type string `json:"type"`
	// URL is the webhook target (webhook hooks only).
	URL string `json:"url,omitempty"`
	// Command is the argv to execute (exec hooks only).
	Command []string `json:"command,omitempty"`
	// MinScore gates the hook: only culprits at or above it fire
	// (0 = the stream's alert threshold already applied).
	MinScore float64 `json:"min_score,omitempty"`
	// Timeout bounds one delivery attempt (default 5s).
	Timeout Duration `json:"timeout,omitempty"`
	// MaxFailures opens the per-hook circuit breaker after this many
	// consecutive failed deliveries (default 5).
	MaxFailures int `json:"max_failures,omitempty"`
	// Cooldown is how long the breaker stays open (default 30s).
	Cooldown Duration `json:"cooldown,omitempty"`
}

// Rung spellings, shared with the CLI flags and the resilience ladder.
const (
	RungFull        = "full"
	RungNoPatterns  = "no-patterns"
	RungVictimsOnly = "victims-only"
	RungSkipped     = "skipped"
)

// ParseRung converts a rung spelling to a degradation level.
func ParseRung(s string) (resilience.Level, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", RungFull:
		return resilience.Full, nil
	case RungNoPatterns, "no_patterns", "nopatterns":
		return resilience.NoPatterns, nil
	case RungVictimsOnly, "victims_only", "victims":
		return resilience.VictimsOnly, nil
	case RungSkipped, "skip":
		return resilience.Skipped, nil
	default:
		return resilience.Full, fmt.Errorf("unknown rung %q (want full, no-patterns, victims-only, or skipped)", s)
	}
}

// RungString renders a degradation level in its canonical spec spelling.
func RungString(l resilience.Level) string {
	switch l {
	case resilience.NoPatterns:
		return RungNoPatterns
	case resilience.VictimsOnly:
		return RungVictimsOnly
	case resilience.Skipped:
		return RungSkipped
	default:
		return RungFull
	}
}

// Parse decodes and validates a spec. Unknown fields are rejected — a
// typo'd knob must fail loudly, not silently run with defaults.
func Parse(data []byte) (*PipelineSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s PipelineSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	// A trailing second document is as wrong as an unknown field.
	if dec.More() {
		return nil, errors.New("spec: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*PipelineSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Encode renders the spec as canonical indented JSON. Two specs are
// equivalent exactly when their resolved encodings are byte-equal.
func (s *PipelineSpec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Clone deep-copies the spec.
func (s *PipelineSpec) Clone() *PipelineSpec {
	c := *s
	if s.Stream.Incremental != nil {
		v := *s.Stream.Incremental
		c.Stream.Incremental = &v
	}
	if s.Resilience.Ladder != nil {
		l := *s.Resilience.Ladder
		c.Resilience.Ladder = &l
	}
	if s.Resilience.Retry != nil {
		r := *s.Resilience.Retry
		c.Resilience.Retry = &r
	}
	if s.Topology != nil {
		t := TopologySpec{
			Components: append([]ComponentSpec(nil), s.Topology.Components...),
			Edges:      append([]EdgeSpec(nil), s.Topology.Edges...),
			MaxBatch:   s.Topology.MaxBatch,
		}
		c.Topology = &t
	}
	if s.Hooks != nil {
		c.Hooks = make([]HookSpec, len(s.Hooks))
		for i, h := range s.Hooks {
			h.Command = append([]string(nil), h.Command...)
			c.Hooks[i] = h
		}
	}
	return &c
}

// fieldError records one validation failure at a JSON field path.
type fieldError struct {
	path string
	msg  string
}

func (e fieldError) Error() string { return e.path + ": " + e.msg }

// errs collects field-path validation failures.
type errs []error

func (v *errs) addf(path, format string, args ...any) {
	*v = append(*v, fieldError{path: path, msg: fmt.Sprintf(format, args...)})
}

// Validate checks every field, returning all failures joined (each line
// prefixed with its JSON field path) or nil.
func (s *PipelineSpec) Validate() error {
	var v errs
	if s.Version != 0 && s.Version != Version {
		v.addf("version", "unsupported version %d (this build speaks %d)", s.Version, Version)
	}
	if _, err := ParseRung(s.Stages.Run); err != nil {
		v.addf("stages.run", "%v", err)
	}

	d := &s.Diagnosis
	if d.VictimPercentile < 0 || d.VictimPercentile >= 100 {
		v.addf("diagnosis.victim_percentile", "must be in [0,100), got %g", d.VictimPercentile)
	}
	if d.MaxRecursionDepth < 0 {
		v.addf("diagnosis.max_recursion_depth", "must be >= 0, got %d", d.MaxRecursionDepth)
	}
	if d.MaxVictims < 0 {
		v.addf("diagnosis.max_victims", "must be >= 0, got %d", d.MaxVictims)
	}
	if d.PatternThreshold < 0 || d.PatternThreshold > 1 {
		v.addf("diagnosis.pattern_threshold", "must be in [0,1], got %g", d.PatternThreshold)
	}
	if d.QueueThreshold < 0 {
		v.addf("diagnosis.queue_threshold", "must be >= 0, got %d", d.QueueThreshold)
	}
	if d.Workers < 0 {
		v.addf("diagnosis.workers", "must be >= 0, got %d", d.Workers)
	}

	st := &s.Stream
	if st.Window < 0 {
		v.addf("stream.window", "must be >= 0, got %v", st.Window)
	}
	if st.Slide < 0 {
		v.addf("stream.slide", "must be >= 0, got %v", st.Slide)
	}
	if st.Overlap < 0 {
		v.addf("stream.overlap", "must be >= 0, got %v", st.Overlap)
	}
	if st.Window > 0 && st.Slide > 0 && st.Overlap > 0 && st.Window != st.Slide+st.Overlap {
		v.addf("stream.window", "inconsistent geometry: window (%v) != slide (%v) + overlap (%v)",
			st.Window, st.Slide, st.Overlap)
	}
	if st.Window > 0 && st.Slide > 0 && st.Overlap == 0 && st.Window < st.Slide {
		v.addf("stream.window", "window (%v) must be >= slide (%v)", st.Window, st.Slide)
	}
	if st.Window > 0 && st.Slide == 0 && st.Overlap > 0 && st.Overlap >= st.Window {
		v.addf("stream.overlap", "overlap (%v) must be < window (%v)", st.Overlap, st.Window)
	}
	if st.MinScore < 0 {
		v.addf("stream.min_score", "must be >= 0, got %g", st.MinScore)
	}
	if st.HoldOff < 0 {
		v.addf("stream.hold_off", "must be >= 0, got %v", st.HoldOff)
	}

	r := &s.Resilience
	if r.RingCapacity < 0 {
		v.addf("resilience.ring_capacity", "must be >= 0, got %d", r.RingCapacity)
	}
	if _, err := resilience.ParseShedPolicy(r.ShedPolicy); err != nil {
		v.addf("resilience.shed_policy", "%v", err)
	}
	if r.WindowDeadline < 0 {
		v.addf("resilience.window_deadline", "must be >= 0, got %v", r.WindowDeadline)
	}
	if r.MaxMemBytes < 0 {
		v.addf("resilience.max_mem_bytes", "must be >= 0, got %d", r.MaxMemBytes)
	}
	if r.SoftMemBytes < 0 {
		v.addf("resilience.soft_mem_bytes", "must be >= 0, got %d", r.SoftMemBytes)
	}
	if r.MaxMemBytes > 0 && r.SoftMemBytes > r.MaxMemBytes {
		v.addf("resilience.soft_mem_bytes", "soft watermark (%d) exceeds max_mem_bytes (%d)",
			r.SoftMemBytes, r.MaxMemBytes)
	}
	if r.Ladder != nil {
		l := r.Ladder
		for _, f := range []struct {
			path string
			val  int
		}{
			{"resilience.ladder.soft_records", l.SoftRecords},
			{"resilience.ladder.hard_records", l.HardRecords},
			{"resilience.ladder.max_records", l.MaxRecords},
			{"resilience.ladder.soft_backlog", l.SoftBacklog},
			{"resilience.ladder.hard_backlog", l.HardBacklog},
		} {
			if f.val < 0 {
				v.addf(f.path, "must be >= 0, got %d", f.val)
			}
		}
	}
	if r.Retry != nil {
		if r.Retry.MaxAttempts < 0 {
			v.addf("resilience.retry.max_attempts", "must be >= 0, got %d", r.Retry.MaxAttempts)
		}
		if r.Retry.Base < 0 {
			v.addf("resilience.retry.base", "must be >= 0, got %v", r.Retry.Base)
		}
		if r.Retry.Max < 0 {
			v.addf("resilience.retry.max", "must be >= 0, got %v", r.Retry.Max)
		}
		if r.Retry.Jitter < 0 || r.Retry.Jitter > 1 {
			v.addf("resilience.retry.jitter", "must be in [0,1], got %g", r.Retry.Jitter)
		}
	}

	if s.Topology != nil {
		t := s.Topology
		if len(t.Components) == 0 {
			v.addf("topology.components", "must list at least one component")
		}
		names := make(map[string]bool, len(t.Components))
		for i, c := range t.Components {
			path := fmt.Sprintf("topology.components[%d]", i)
			if c.Name == "" {
				v.addf(path+".name", "must not be empty")
			} else if names[c.Name] {
				v.addf(path+".name", "duplicate component %q", c.Name)
			}
			names[c.Name] = true
			if c.PeakRate < 0 {
				v.addf(path+".peak_rate", "must be >= 0, got %g", c.PeakRate)
			}
		}
		for i, e := range t.Edges {
			path := fmt.Sprintf("topology.edges[%d]", i)
			if !names[e.From] {
				v.addf(path+".from", "unknown component %q", e.From)
			}
			if !names[e.To] {
				v.addf(path+".to", "unknown component %q", e.To)
			}
		}
		if t.MaxBatch < 0 {
			v.addf("topology.max_batch", "must be >= 0, got %d", t.MaxBatch)
		}
	}

	hookNames := make(map[string]bool, len(s.Hooks))
	for i, h := range s.Hooks {
		path := fmt.Sprintf("hooks[%d]", i)
		if h.Name == "" {
			v.addf(path+".name", "must not be empty")
		} else if hookNames[h.Name] {
			v.addf(path+".name", "duplicate hook %q", h.Name)
		}
		hookNames[h.Name] = true
		switch h.Type {
		case "webhook":
			if h.URL == "" {
				v.addf(path+".url", "webhook hook needs a url")
			}
			if len(h.Command) > 0 {
				v.addf(path+".command", "webhook hook must not set command")
			}
		case "exec":
			if len(h.Command) == 0 {
				v.addf(path+".command", "exec hook needs a command")
			}
			if h.URL != "" {
				v.addf(path+".url", "exec hook must not set url")
			}
		default:
			v.addf(path+".type", "unknown hook type %q (want webhook or exec)", h.Type)
		}
		if h.MinScore < 0 {
			v.addf(path+".min_score", "must be >= 0, got %g", h.MinScore)
		}
		if h.Timeout < 0 {
			v.addf(path+".timeout", "must be >= 0, got %v", h.Timeout)
		}
		if h.MaxFailures < 0 {
			v.addf(path+".max_failures", "must be >= 0, got %d", h.MaxFailures)
		}
		if h.Cooldown < 0 {
			v.addf(path+".cooldown", "must be >= 0, got %v", h.Cooldown)
		}
	}

	if len(v) == 0 {
		return nil
	}
	sort.SliceStable(v, func(i, j int) bool { return v[i].Error() < v[j].Error() })
	return fmt.Errorf("spec: %w", errors.Join(v...))
}

// Default spec knob values, shared with the engine and monitor defaults
// they mirror.
const (
	DefaultVictimPercentile  = 99
	DefaultMaxRecursionDepth = 5
	DefaultPatternThreshold  = 0.01
	DefaultMinScore          = 100
	DefaultStreamMaxVictims  = 200
	DefaultHookTimeout       = 5 * time.Second
	DefaultHookMaxFailures   = 5
	DefaultHookCooldown      = 30 * time.Second
)

// Default streaming geometry (mirrors online.Config's defaults: a 100ms
// flush cadence carrying a 20ms tail).
const (
	DefaultSlide   = Duration(100 * time.Millisecond)
	DefaultOverlap = Duration(20 * time.Millisecond)
)

// Resolved returns a copy with every default made explicit, so the spec
// document states the exact configuration a run uses. Resolved is
// idempotent, and resolved specs are the domain of the Options round-trip
// identity.
func (s *PipelineSpec) Resolved() *PipelineSpec {
	r := s.Clone()
	if r.Version == 0 {
		r.Version = Version
	}
	if r.Stages.Run == "" {
		r.Stages.Run = RungFull
	} else if rung, err := ParseRung(r.Stages.Run); err == nil {
		r.Stages.Run = RungString(rung) // canonical spelling
	}

	d := &r.Diagnosis
	if d.VictimPercentile == 0 {
		d.VictimPercentile = DefaultVictimPercentile
	}
	if d.MaxRecursionDepth == 0 {
		d.MaxRecursionDepth = DefaultMaxRecursionDepth
	}
	if d.PatternThreshold == 0 {
		d.PatternThreshold = DefaultPatternThreshold
	}

	st := &r.Stream
	// Any two of window/slide/overlap determine the third; absent all
	// three, the monitor defaults apply.
	switch {
	case st.Slide > 0 && st.Overlap > 0:
		// window derived (or validated consistent already).
	case st.Window > 0 && st.Slide > 0:
		st.Overlap = st.Window - st.Slide
	case st.Window > 0 && st.Overlap > 0:
		st.Slide = st.Window - st.Overlap
	case st.Slide > 0:
		st.Overlap = DefaultOverlap
	case st.Overlap > 0:
		st.Slide = DefaultSlide
	case st.Window > 0:
		// Window alone: keep the default overlap fraction.
		st.Overlap = DefaultOverlap
		if st.Overlap >= st.Window {
			st.Overlap = st.Window / 5
		}
		st.Slide = st.Window - st.Overlap
	default:
		st.Slide = DefaultSlide
		st.Overlap = DefaultOverlap
	}
	st.Window = st.Slide + st.Overlap
	if st.MinScore == 0 {
		st.MinScore = DefaultMinScore
	}
	if st.HoldOff == 0 {
		st.HoldOff = st.Slide
	}
	if st.MaxLookahead == 0 {
		st.MaxLookahead = 4096 * st.Slide
	}
	if st.ResyncAfter == 0 {
		st.ResyncAfter = 8
	}
	if st.Incremental == nil {
		t := true
		st.Incremental = &t
	}

	re := &r.Resilience
	if re.ShedPolicy == "" {
		re.ShedPolicy = resilience.ShedDropOldest.String()
	} else if p, err := resilience.ParseShedPolicy(re.ShedPolicy); err == nil {
		re.ShedPolicy = p.String()
	}
	if re.MaxMemBytes > 0 && re.SoftMemBytes == 0 {
		re.SoftMemBytes = re.MaxMemBytes / 2
	}
	if re.Ladder == nil && re.RingCapacity > 0 {
		l := resilience.AutoLadder(re.RingCapacity)
		re.Ladder = &LadderSpec{
			SoftRecords: l.SoftRecords,
			HardRecords: l.HardRecords,
			MaxRecords:  l.MaxRecords,
			SoftBacklog: l.SoftBacklog,
			HardBacklog: l.HardBacklog,
		}
	}

	if r.Topology != nil && r.Topology.MaxBatch == 0 {
		r.Topology.MaxBatch = 32
	}

	for i := range r.Hooks {
		h := &r.Hooks[i]
		if h.Timeout == 0 {
			h.Timeout = Duration(DefaultHookTimeout)
		}
		if h.MaxFailures == 0 {
			h.MaxFailures = DefaultHookMaxFailures
		}
		if h.Cooldown == 0 {
			h.Cooldown = Duration(DefaultHookCooldown)
		}
	}
	return r
}
