// Conversions from the declarative spec to the runtime config structs of
// each layer. The spec is the single source; every converter reads the
// same resolved document, so the batch pipeline, the online monitor, and
// the serving tier can never disagree about what a deployment asked for.
package spec

import (
	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/online"
	"microscope/internal/patterns"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
)

// Rung returns the degradation ceiling the stages section selects.
// Invalid spellings (impossible on a validated spec) fall back to Full.
func (s *PipelineSpec) Rung() resilience.Level {
	l, _ := ParseRung(s.Stages.Run)
	return l
}

// CoreConfig converts the diagnosis section to the engine config.
func (s *PipelineSpec) CoreConfig(reg *obs.Registry) core.Config {
	d := s.Diagnosis
	return core.Config{
		VictimPercentile:        d.VictimPercentile,
		MaxRecursionDepth:       d.MaxRecursionDepth,
		MaxVictims:              d.MaxVictims,
		SkipLossVictims:         d.SkipLossVictims,
		LossVictimsWhenDegraded: d.LossVictimsWhenDegraded,
		QueueThreshold:          d.QueueThreshold,
		Workers:                 d.Workers,
		Obs:                     reg,
	}
}

// PipelineConfig converts the spec to the staged-pipeline config.
func (s *PipelineSpec) PipelineConfig(reg *obs.Registry) pipeline.Config {
	return pipeline.Config{
		Workers:       s.Diagnosis.Workers,
		Diagnosis:     s.CoreConfig(reg),
		Patterns:      patterns.Config{Threshold: s.Diagnosis.PatternThreshold, Obs: reg},
		SkipPatterns:  s.Stages.SkipPatterns,
		Degrade:       s.Rung(),
		ContainPanics: s.Stages.ContainPanics,
		Obs:           reg,
	}
}

// RetryPolicy converts the retry section (nil = defaults).
func (s *PipelineSpec) RetryPolicy() resilience.RetryPolicy {
	r := s.Resilience.Retry
	if r == nil {
		return resilience.RetryPolicy{}
	}
	return resilience.RetryPolicy{
		MaxAttempts: r.MaxAttempts,
		Base:        r.Base.Std(),
		Max:         r.Max.Std(),
		Jitter:      r.Jitter,
		Seed:        r.Seed,
	}
}

// ResilienceConfig converts the resilience section to the overload
// defenses. Panic containment follows the stages section — one knob, not
// two.
func (s *PipelineSpec) ResilienceConfig() resilience.Config {
	r := s.Resilience
	policy, _ := resilience.ParseShedPolicy(r.ShedPolicy)
	cfg := resilience.Config{
		RingCapacity:   r.RingCapacity,
		Policy:         policy,
		WindowDeadline: r.WindowDeadline.Std(),
		MemSoftBytes:   r.SoftMemBytes,
		MemHardBytes:   r.MaxMemBytes,
		ContainPanics:  s.Stages.ContainPanics,
		Retry:          s.RetryPolicy(),
	}
	switch {
	case r.Ladder != nil:
		cfg.Ladder = resilience.LadderConfig{
			SoftRecords: r.Ladder.SoftRecords,
			HardRecords: r.Ladder.HardRecords,
			MaxRecords:  r.Ladder.MaxRecords,
			SoftBacklog: r.Ladder.SoftBacklog,
			HardBacklog: r.Ladder.HardBacklog,
		}
	case r.RingCapacity > 0:
		cfg.Ladder = resilience.AutoLadder(r.RingCapacity)
	}
	return cfg
}

// MonitorConfig converts the spec to the online monitor's config. The
// stream section's slide is the monitor's flush cadence (its Window
// field); the spec's window = slide + overlap is the analysis span.
func (s *PipelineSpec) MonitorConfig(reg *obs.Registry) online.Config {
	st := s.Stream
	incremental := true
	if st.Incremental != nil {
		incremental = *st.Incremental
	}
	maxVictims := s.Diagnosis.MaxVictims
	if maxVictims == 0 {
		maxVictims = DefaultStreamMaxVictims
	}
	return online.Config{
		Window:       st.Slide.Sim(),
		Overlap:      st.Overlap.Sim(),
		MaxLookahead: st.MaxLookahead.Sim(),
		ResyncAfter:  st.ResyncAfter,
		MinScore:     st.MinScore,
		MaxVictims:   maxVictims,
		Diagnosis:    s.CoreConfig(reg),
		Workers:      s.Diagnosis.Workers,
		HoldOff:      st.HoldOff.Sim(),
		Obs:          reg,
		Resilience:   s.ResilienceConfig(),
		Incremental:  incremental,
	}
}

// Meta converts the topology section to the collector's deployment
// description, or false when the spec carries none.
func (s *PipelineSpec) Meta() (collector.Meta, bool) {
	if s.Topology == nil {
		return collector.Meta{}, false
	}
	t := s.Topology
	m := collector.Meta{MaxBatch: t.MaxBatch}
	if m.MaxBatch == 0 {
		m.MaxBatch = 32
	}
	for _, c := range t.Components {
		m.Components = append(m.Components, collector.ComponentMeta{
			Name:     c.Name,
			Kind:     c.Kind,
			PeakRate: simtime.Rate(c.PeakRate),
			Egress:   c.Egress,
		})
	}
	for _, e := range t.Edges {
		m.Edges = append(m.Edges, collector.Edge{From: e.From, To: e.To})
	}
	return m, true
}

// FromMeta builds a topology section from a collector deployment
// description (msdiag -dump-spec reads the trace's meta back into spec
// form).
func FromMeta(m collector.Meta) *TopologySpec {
	t := &TopologySpec{MaxBatch: m.MaxBatch}
	for _, c := range m.Components {
		t.Components = append(t.Components, ComponentSpec{
			Name:     c.Name,
			Kind:     c.Kind,
			PeakRate: float64(c.PeakRate),
			Egress:   c.Egress,
		})
	}
	for _, e := range m.Edges {
		t.Edges = append(t.Edges, EdgeSpec{From: e.From, To: e.To})
	}
	return t
}
