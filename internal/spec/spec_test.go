package spec

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"microscope/internal/resilience"
	"microscope/internal/simtime"
)

// TestParseStrict: unknown fields, bad durations, and trailing documents
// are rejected — a typo never silently runs with defaults.
func TestParseStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"version":1,"widnow":"1s"}`, "widnow"},
		{"unknown nested", `{"stream":{"slid":"1s"}}`, "slid"},
		{"bad duration", `{"stream":{"slide":"fast"}}`, "invalid duration"},
		{"duration type", `{"stream":{"slide":true}}`, "duration"},
		{"trailing doc", `{"version":1}{"version":1}`, "trailing"},
		{"bad version", `{"version":7}`, "version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.in))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Parse(%s) err = %v, want containing %q", c.in, err, c.wantErr)
			}
		})
	}
}

// TestValidateFieldPaths: every rejection names the JSON field path of the
// offending knob, and multiple failures are all reported.
func TestValidateFieldPaths(t *testing.T) {
	s := &PipelineSpec{
		Stages:    StagesSpec{Run: "turbo"},
		Diagnosis: DiagnosisSpec{VictimPercentile: 120, Workers: -1},
		Stream:    StreamSpec{Window: D(100 * time.Millisecond), Slide: D(90 * time.Millisecond), Overlap: D(20 * time.Millisecond)},
		Resilience: ResilienceSpec{
			ShedPolicy:   "yolo",
			MaxMemBytes:  10,
			SoftMemBytes: 20,
		},
		Topology: &TopologySpec{
			Components: []ComponentSpec{{Name: "a"}, {Name: "a"}},
			Edges:      []EdgeSpec{{From: "a", To: "ghost"}},
		},
		Hooks: []HookSpec{
			{Name: "", Type: "carrier-pigeon"},
			{Name: "h", Type: "webhook"},
			{Name: "h", Type: "exec"},
		},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted a spec with a dozen errors")
	}
	for _, want := range []string{
		"stages.run",
		"diagnosis.victim_percentile",
		"diagnosis.workers",
		"stream.window",
		"resilience.shed_policy",
		"resilience.soft_mem_bytes",
		"topology.components[1].name",
		"topology.edges[0].to",
		"hooks[0].name",
		"hooks[0].type",
		"hooks[1].url",
		"hooks[2].command",
		"hooks[2].name: duplicate",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing field path %q:\n%v", want, err)
		}
	}
}

// TestResolvedGeometry: any two of window/slide/overlap determine the
// third, and the monitor defaults fill an empty stream section.
func TestResolvedGeometry(t *testing.T) {
	ms := func(n int64) Duration { return D(time.Duration(n) * time.Millisecond) }
	cases := []struct {
		name                 string
		in                   StreamSpec
		slide, overlap, wind Duration
	}{
		{"empty", StreamSpec{}, ms(100), ms(20), ms(120)},
		{"slide+overlap", StreamSpec{Slide: ms(50), Overlap: ms(10)}, ms(50), ms(10), ms(60)},
		{"window+slide", StreamSpec{Window: ms(60), Slide: ms(50)}, ms(50), ms(10), ms(60)},
		{"window+overlap", StreamSpec{Window: ms(60), Overlap: ms(10)}, ms(50), ms(10), ms(60)},
		{"slide only", StreamSpec{Slide: ms(200)}, ms(200), ms(20), ms(220)},
		{"window only", StreamSpec{Window: ms(500)}, ms(480), ms(20), ms(500)},
		{"tiny window only", StreamSpec{Window: ms(10)}, ms(8), ms(2), ms(10)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &PipelineSpec{Stream: c.in}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			r := s.Resolved()
			if r.Stream.Slide != c.slide || r.Stream.Overlap != c.overlap || r.Stream.Window != c.wind {
				t.Fatalf("resolved geometry = slide %v overlap %v window %v, want %v %v %v",
					r.Stream.Slide, r.Stream.Overlap, r.Stream.Window, c.slide, c.overlap, c.wind)
			}
		})
	}
}

// TestResolvedIdempotent: resolving twice changes nothing, and the
// resolved encoding round-trips through Parse byte for byte.
func TestResolvedIdempotent(t *testing.T) {
	s := &PipelineSpec{
		Tenant:     "t1",
		Diagnosis:  DiagnosisSpec{MaxVictims: 50},
		Resilience: ResilienceSpec{RingCapacity: 4096, MaxMemBytes: 1 << 20},
		Topology: &TopologySpec{
			Components: []ComponentSpec{{Name: "src", Kind: "source"}, {Name: "fw", Kind: "fw", PeakRate: 1e6, Egress: true}},
			Edges:      []EdgeSpec{{From: "src", To: "fw"}},
		},
		Hooks: []HookSpec{{Name: "page", Type: "webhook", URL: "http://localhost:0/x"}},
	}
	r1 := s.Resolved()
	r2 := r1.Resolved()
	b1, err := r1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := r2.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("Resolved not idempotent:\n%s\nvs\n%s", b1, b2)
	}
	p, err := Parse(b1)
	if err != nil {
		t.Fatalf("resolved spec failed to re-parse: %v", err)
	}
	b3, _ := p.Encode()
	if !bytes.Equal(b1, b3) {
		t.Fatalf("encode/parse round-trip drifted:\n%s\nvs\n%s", b1, b3)
	}
	// Defaults landed.
	if r1.Stream.Slide != DefaultSlide || r1.Resilience.SoftMemBytes != 1<<19 {
		t.Errorf("defaults not applied: slide=%v soft=%d", r1.Stream.Slide, r1.Resilience.SoftMemBytes)
	}
	if r1.Resilience.Ladder == nil || r1.Resilience.Ladder.SoftRecords != 4096/8 {
		t.Errorf("auto ladder not derived: %+v", r1.Resilience.Ladder)
	}
	if r1.Hooks[0].Timeout != D(DefaultHookTimeout) || r1.Hooks[0].MaxFailures != DefaultHookMaxFailures {
		t.Errorf("hook defaults not applied: %+v", r1.Hooks[0])
	}
}

// TestDurationJSON: both accepted encodings, canonical string output.
func TestDurationJSON(t *testing.T) {
	in := `{"stream":{"slide":"250ms","overlap":5000000}}`
	s, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Stream.Slide != D(250*time.Millisecond) || s.Stream.Overlap != D(5*time.Millisecond) {
		t.Fatalf("parsed durations = %v, %v", s.Stream.Slide, s.Stream.Overlap)
	}
	b, _ := s.Encode()
	if !strings.Contains(string(b), `"slide": "250ms"`) || !strings.Contains(string(b), `"overlap": "5ms"`) {
		t.Fatalf("canonical encoding wrong:\n%s", b)
	}
}

// TestMonitorConfigConversion: a resolved spec's monitor config matches
// the knobs the spec stated, with slide mapped onto the monitor's flush
// cadence.
func TestMonitorConfigConversion(t *testing.T) {
	s := mustParse(t, `{
		"stages": {"run": "no-patterns", "contain_panics": true},
		"diagnosis": {"victim_percentile": 95, "workers": 4, "max_victims": 10},
		"stream": {"slide": "50ms", "overlap": "10ms", "min_score": 7},
		"resilience": {"ring_capacity": 1024, "shed_policy": "reject-new", "window_deadline": "2s"}
	}`).Resolved()
	cfg := s.MonitorConfig(nil)
	if cfg.Window != 50*simtime.Millisecond || cfg.Overlap != 10*simtime.Millisecond {
		t.Errorf("geometry: window=%v overlap=%v", cfg.Window, cfg.Overlap)
	}
	if cfg.MinScore != 7 || cfg.Workers != 4 || cfg.MaxVictims != 10 {
		t.Errorf("knobs: %+v", cfg)
	}
	if cfg.Diagnosis.VictimPercentile != 95 {
		t.Errorf("core percentile = %g", cfg.Diagnosis.VictimPercentile)
	}
	if !cfg.Incremental {
		t.Error("incremental should default on")
	}
	rc := cfg.Resilience
	if rc.RingCapacity != 1024 || rc.Policy != resilience.ShedRejectNew ||
		rc.WindowDeadline != 2*time.Second || !rc.ContainPanics {
		t.Errorf("resilience: %+v", rc)
	}
	if rc.Ladder != resilience.AutoLadder(1024) {
		t.Errorf("ladder = %+v, want auto(1024)", rc.Ladder)
	}
	if s.Rung() != resilience.NoPatterns {
		t.Errorf("rung = %v", s.Rung())
	}
	pc := s.PipelineConfig(nil)
	if pc.Degrade != resilience.NoPatterns || !pc.ContainPanics {
		t.Errorf("pipeline config: %+v", pc)
	}
}

// TestMetaRoundTrip: topology ⇄ collector.Meta is lossless.
func TestMetaRoundTrip(t *testing.T) {
	s := mustParse(t, `{"topology":{
		"components":[
			{"name":"src","kind":"source"},
			{"name":"nat","kind":"nat","peak_rate":2000000},
			{"name":"fw","kind":"fw","peak_rate":1500000,"egress":true}],
		"edges":[{"from":"src","to":"nat"},{"from":"nat","to":"fw"}]}}`)
	m, ok := s.Meta()
	if !ok {
		t.Fatal("Meta() missing")
	}
	if len(m.Components) != 3 || m.MaxBatch != 32 {
		t.Fatalf("meta = %+v", m)
	}
	if m.Components[1].PeakRate != 2e6 || !m.Components[2].Egress {
		t.Fatalf("component fields lost: %+v", m.Components)
	}
	back := FromMeta(m)
	if len(back.Components) != 3 || len(back.Edges) != 2 || back.MaxBatch != 32 {
		t.Fatalf("FromMeta = %+v", back)
	}
	if back.Components[1] != s.Topology.Components[1] {
		t.Fatalf("round-trip drift: %+v vs %+v", back.Components[1], s.Topology.Components[1])
	}
	if _, ok := (&PipelineSpec{}).Meta(); ok {
		t.Fatal("empty spec must not claim a topology")
	}
}

// TestCloneIsolation: mutating a clone never touches the original.
func TestCloneIsolation(t *testing.T) {
	s := mustParse(t, `{
		"stream": {"incremental": false},
		"resilience": {"ladder": {"soft_records": 5}, "retry": {"max_attempts": 2}},
		"topology": {"components": [{"name": "a"}]},
		"hooks": [{"name": "h", "type": "exec", "command": ["true"]}]
	}`)
	c := s.Clone()
	*c.Stream.Incremental = true
	c.Resilience.Ladder.SoftRecords = 99
	c.Resilience.Retry.MaxAttempts = 99
	c.Topology.Components[0].Name = "z"
	c.Hooks[0].Command[0] = "false"
	if *s.Stream.Incremental || s.Resilience.Ladder.SoftRecords != 5 ||
		s.Resilience.Retry.MaxAttempts != 2 || s.Topology.Components[0].Name != "a" ||
		s.Hooks[0].Command[0] != "true" {
		t.Fatalf("clone aliases original: %+v", s)
	}
}

func mustParse(t *testing.T, in string) *PipelineSpec {
	t.Helper()
	s, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	return s
}
