package nfsim

import (
	"fmt"
	"math/rand"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// DefaultMaxBatch is the DPDK receive batch size the paper assumes
// ("the maximum batch size is typically 32 packets", §5).
const DefaultMaxBatch = 32

// Egress is the route target meaning "the packet leaves the NF graph here".
const Egress = -1

// RouteFunc selects the output port index for a packet, or Egress.
type RouteFunc func(p *packet.Packet) int

// SlowPath models an NF bug that processes matching flows at a reduced
// rate, like the Firewall bug of §6.2/§6.4 (0.05 Mpps for trigger flows).
type SlowPath struct {
	Match func(ft packet.FiveTuple) bool
	Rate  simtime.Rate
}

// NFConfig describes one NF instance.
type NFConfig struct {
	// Name uniquely identifies the instance (e.g. "fw2").
	Name string
	// Kind is the NF type (e.g. "nat", "fw", "mon", "vpn"), used by
	// pattern aggregation to group instances of the same type.
	Kind string
	// PeakRate is r_i: the peak processing rate with these settings.
	PeakRate simtime.Rate
	// JitterFrac adds uniform per-packet service-time overhead in
	// [0, JitterFrac] of the base interval, so the achieved rate sits
	// slightly below peak — as in any real deployment.
	JitterFrac float64
	// SpikeProb is the per-packet probability of a fine-timescale
	// service spike (cache miss, minor context switch).
	SpikeProb float64
	// SpikeFactor multiplies the base service time during a spike.
	SpikeFactor float64
	// MaxBatch caps the receive batch (DefaultMaxBatch if 0).
	MaxBatch int
	// QueueCap sizes the input ring (DefaultQueueCap if 0).
	QueueCap int
	// Seed drives per-NF service jitter.
	Seed int64
	// SlowPath, when set, is an injected processing bug.
	SlowPath *SlowPath
	// PerPacketOverhead models runtime instrumentation cost on the
	// critical path (e.g. Microscope's collector, §6.2): it is added to
	// every packet's service time.
	PerPacketOverhead simtime.Duration

	// Optional NF-kind service models. The evaluation NFs are
	// rate-boxes, as the paper's diagnosis requires nothing more; these
	// knobs let library users model the costs their real NFs have.

	// PerByte adds size-proportional work (VPN encryption, DPI).
	PerByte simtime.Duration
	// RuleCount and PerRule model linear rule-table matching
	// (firewalls): every packet pays RuleCount × PerRule.
	RuleCount int
	PerRule   simtime.Duration
	// FlowSetupCost is paid by the first packet of each flow (NAT
	// binding allocation, connection tracking). FlowTableCap bounds the
	// tracked flows; beyond it the oldest entries are evicted, so
	// long-lived traffic re-pays setup under table pressure (default
	// 65536 when FlowSetupCost is set).
	FlowSetupCost simtime.Duration
	FlowTableCap  int

	// RewriteIPID makes the NF assign a fresh IPID to every packet it
	// emits, like NATs or proxies that regenerate the IP header. The
	// paper (§7) notes Microscope cannot track packets across such NFs:
	// journeys truncate there and diagnosis proceeds segment-wise.
	RewriteIPID bool
}

func (c *NFConfig) setDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 1
	}
}

// NFStats exposes per-NF counters for evaluation and for the NetMedic
// baseline's resource monitoring.
type NFStats struct {
	Processed uint64           // packets fully processed
	Batches   uint64           // batches read
	BusyTime  simtime.Duration // cumulative processing time
	StallTime simtime.Duration // cumulative injected-interrupt stall
}

// NF is one simulated network-function instance: a single core polling a
// single input ring and transmitting to one or more output ports.
type NF struct {
	cfg   NFConfig
	sim   *Sim
	in    *Queue
	outs  []*Queue
	route RouteFunc
	rng   *rand.Rand

	baseInterval simtime.Duration

	processing bool         // a batch is in flight; completion re-polls
	wakeQueued bool         // a wake event is already scheduled
	stallUntil simtime.Time // injected interrupt in effect until here

	batchBuf  []*packet.Packet
	pending   []*packet.Packet   // the batch in flight (at most one per NF)
	groupBuf  [][]*packet.Packet // per-port staging, index parallel to outs
	egressBuf []*packet.Packet

	// pollFn / completeFn are bound once so the hot loop schedules
	// events without allocating a closure per batch.
	pollFn     func()
	completeFn func()

	// flowTable implements FlowSetupCost: known flows in a bounded FIFO
	// eviction ring.
	flowTable map[packet.FiveTuple]struct{}
	flowRing  []packet.FiveTuple
	flowNext  int

	// nextIPID implements RewriteIPID.
	nextIPID uint16

	stats NFStats
}

func newNF(sim *Sim, cfg NFConfig) *NF {
	cfg.setDefaults()
	if cfg.PeakRate <= 0 {
		panic(fmt.Sprintf("nfsim: NF %q needs a positive peak rate", cfg.Name))
	}
	nf := &NF{
		cfg:          cfg,
		sim:          sim,
		in:           NewQueue(cfg.Name+".in", cfg.QueueCap),
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		baseInterval: cfg.PeakRate.Interval(),
		batchBuf:     make([]*packet.Packet, 0, cfg.MaxBatch),
	}
	nf.in.owner = cfg.Name
	nf.in.setConsumerWakeup(nf.requestWake)
	nf.pollFn = nf.poll
	nf.completeFn = nf.complete
	if cfg.RewriteIPID {
		// Start the fresh-IPID counter away from the source's (which
		// begins at 0), as independent IP stacks would.
		nf.nextIPID = uint16(0x9e37 + cfg.Seed*31)
	}
	if cfg.FlowSetupCost > 0 {
		capacity := cfg.FlowTableCap
		if capacity <= 0 {
			capacity = 65536
		}
		nf.cfg.FlowTableCap = capacity
		nf.flowTable = make(map[packet.FiveTuple]struct{}, capacity)
		nf.flowRing = make([]packet.FiveTuple, capacity)
	}
	return nf
}

// Name returns the instance name.
func (nf *NF) Name() string { return nf.cfg.Name }

// Kind returns the NF type.
func (nf *NF) Kind() string { return nf.cfg.Kind }

// PeakRate returns r_i.
func (nf *NF) PeakRate() simtime.Rate { return nf.cfg.PeakRate }

// In returns the NF's input queue.
func (nf *NF) In() *Queue { return nf.in }

// Stats returns a copy of the NF's counters.
func (nf *NF) Stats() NFStats { return nf.stats }

// connect wires the NF's output ports and routing function.
func (nf *NF) connect(route RouteFunc, outs []*Queue) {
	nf.route = route
	nf.outs = outs
	nf.groupBuf = make([][]*packet.Packet, len(outs))
	for i := range nf.groupBuf {
		nf.groupBuf[i] = make([]*packet.Packet, 0, nf.cfg.MaxBatch)
	}
	nf.egressBuf = make([]*packet.Packet, 0, nf.cfg.MaxBatch)
}

// setSlowPath installs or replaces the NF's bug at runtime.
func (nf *NF) setSlowPath(sp *SlowPath) { nf.cfg.SlowPath = sp }

// stall pauses the NF until t (injected interrupt). If the NF is mid-batch
// the stall takes effect at the next poll, matching how a kernel interrupt
// preempts a DPDK core between iterations of its run-to-completion loop at
// the granularity we simulate.
func (nf *NF) stall(until simtime.Time) {
	now := nf.sim.eng.Now()
	if until <= now {
		return
	}
	if until > nf.stallUntil {
		if nf.stallUntil > now {
			nf.stats.StallTime += until.Sub(nf.stallUntil)
		} else {
			nf.stats.StallTime += until.Sub(now)
		}
		nf.stallUntil = until
	}
	nf.requestWake()
}

// requestWake schedules a poll if one is not already pending and the NF is
// not mid-batch (the batch-completion event re-polls on its own).
func (nf *NF) requestWake() {
	if nf.processing || nf.wakeQueued {
		return
	}
	nf.wakeQueued = true
	nf.sim.eng.At(nf.sim.eng.Now(), nf.pollFn)
}

// poll is the NF main loop body: honor stalls, read a batch, process it.
func (nf *NF) poll() {
	nf.wakeQueued = false
	if nf.processing {
		return
	}
	now := nf.sim.eng.Now()
	if now < nf.stallUntil {
		nf.wakeQueued = true
		nf.sim.eng.At(nf.stallUntil, nf.pollFn)
		return
	}
	if nf.in.Len() == 0 {
		return // sleep; the queue wakes us on enqueue
	}
	batch := nf.in.DequeueBatch(nf.batchBuf, nf.cfg.MaxBatch)
	nf.batchBuf = batch[:0]
	for _, p := range batch {
		if h := p.LastHop(); h != nil && h.Node == nf.cfg.Name {
			h.DequeueAt = now
		}
	}
	nf.sim.hooks.BatchRead(nf.cfg.Name, now, nf.in, batch)
	nf.stats.Batches++

	var proc simtime.Duration
	for _, p := range batch {
		proc += nf.serviceTime(p)
	}
	done := now.Add(proc)
	nf.processing = true
	nf.stats.BusyTime += proc
	// Stage the batch: only one batch is ever in flight per NF, so a
	// reused buffer replaces a per-batch allocation.
	nf.pending = append(nf.pending[:0], batch...)
	nf.sim.eng.At(done, nf.completeFn)
}

// serviceTime computes one packet's processing time: base interval, uniform
// jitter, rare spikes, and the slow path for bug-matched flows.
func (nf *NF) serviceTime(p *packet.Packet) simtime.Duration {
	base := nf.baseInterval
	if sp := nf.cfg.SlowPath; sp != nil && sp.Match(p.Flow) {
		base = sp.Rate.Interval()
	}
	d := base + nf.cfg.PerPacketOverhead
	if nf.cfg.PerByte > 0 {
		d += simtime.Duration(p.Size) * nf.cfg.PerByte
	}
	if nf.cfg.RuleCount > 0 && nf.cfg.PerRule > 0 {
		d += simtime.Duration(nf.cfg.RuleCount) * nf.cfg.PerRule
	}
	if nf.flowTable != nil {
		if _, known := nf.flowTable[p.Flow]; !known {
			d += nf.cfg.FlowSetupCost
			// Evict the ring slot's previous occupant.
			old := nf.flowRing[nf.flowNext]
			if _, occupied := nf.flowTable[old]; occupied && old != p.Flow {
				delete(nf.flowTable, old)
			}
			nf.flowRing[nf.flowNext] = p.Flow
			nf.flowNext = (nf.flowNext + 1) % len(nf.flowRing)
			nf.flowTable[p.Flow] = struct{}{}
		}
	}
	if nf.cfg.JitterFrac > 0 {
		d += simtime.Duration(float64(base) * nf.cfg.JitterFrac * nf.rng.Float64())
	}
	if nf.cfg.SpikeProb > 0 && nf.rng.Float64() < nf.cfg.SpikeProb {
		d += simtime.Duration(float64(base) * (nf.cfg.SpikeFactor - 1))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// complete transmits the pending batch and immediately re-polls.
func (nf *NF) complete() {
	batch := nf.pending
	now := nf.sim.eng.Now()
	for i := range nf.groupBuf {
		nf.groupBuf[i] = nf.groupBuf[i][:0]
	}
	nf.egressBuf = nf.egressBuf[:0]
	for _, p := range batch {
		if h := p.LastHop(); h != nil && h.Node == nf.cfg.Name {
			h.DepartAt = now
		}
		if nf.cfg.RewriteIPID {
			p.IPID = nf.nextIPID
			nf.nextIPID++
		}
		out := Egress
		if nf.route != nil {
			out = nf.route(p)
		}
		if out == Egress || out < 0 || out >= len(nf.outs) {
			nf.egressBuf = append(nf.egressBuf, p)
			continue
		}
		nf.groupBuf[out] = append(nf.groupBuf[out], p)
	}
	for i, group := range nf.groupBuf {
		if len(group) > 0 {
			nf.sim.transmit(nf.cfg.Name, now, nf.outs[i], group)
		}
	}
	if len(nf.egressBuf) > 0 {
		nf.sim.deliver(nf.cfg.Name, now, nf.egressBuf)
	}
	nf.stats.Processed += uint64(len(batch))
	nf.processing = false
	nf.poll()
}
