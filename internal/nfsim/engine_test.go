package nfsim

import (
	"testing"

	"microscope/internal/simtime"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run(simtime.Time(1000))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order: got %v", order)
	}
	if e.Steps() != 3 {
		t.Errorf("steps: got %d", e.Steps())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties must run in insertion order: got %v", order)
		}
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(100, func() { ran++ })
	e.At(200, func() { ran++ })
	e.Run(150)
	if ran != 1 {
		t.Errorf("events <= until should run: got %d", ran)
	}
	if e.Now() != 100 {
		t.Errorf("now should be last event time: got %v", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending: got %d", e.Pending())
	}
	e.Run(200)
	if ran != 2 {
		t.Errorf("second run: got %d", ran)
	}
}

func TestEngineAdvancesOnIdle(t *testing.T) {
	e := NewEngine()
	e.Run(500)
	if e.Now() != 500 {
		t.Errorf("idle engine should advance clock: got %v", e.Now())
	}
}

func TestEngineEventsCanSchedule(t *testing.T) {
	e := NewEngine()
	var hits []simtime.Time
	var recur func()
	recur = func() {
		hits = append(hits, e.Now())
		if len(hits) < 5 {
			e.After(10, recur)
		}
	}
	e.At(0, recur)
	e.Run(1000)
	if len(hits) != 5 {
		t.Fatalf("hits: got %d", len(hits))
	}
	for i, h := range hits {
		if h != simtime.Time(i*10) {
			t.Errorf("hit %d at %v", i, h)
		}
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(200)
}

func TestEngineAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, func() {
		e.After(-50, func() { ran = true })
	})
	e.Run(200)
	if !ran {
		t.Error("After with negative duration should run at now")
	}
}
