package nfsim

import (
	"testing"
	"testing/quick"

	"microscope/internal/packet"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("t.in", 4)
	for i := 0; i < 3; i++ {
		if !q.Enqueue(&packet.Packet{ID: packet.ID(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	buf := make([]*packet.Packet, 0, 4)
	out := q.DequeueBatch(buf, 2)
	if len(out) != 2 || out[0].ID != 0 || out[1].ID != 1 {
		t.Errorf("dequeue order wrong: %v", out)
	}
	if q.Len() != 1 {
		t.Errorf("len: got %d", q.Len())
	}
}

func TestQueueTailDrop(t *testing.T) {
	q := NewQueue("t.in", 2)
	q.Enqueue(&packet.Packet{ID: 1})
	q.Enqueue(&packet.Packet{ID: 2})
	if q.Enqueue(&packet.Packet{ID: 3}) {
		t.Error("enqueue beyond capacity must fail")
	}
	if q.Drops() != 1 {
		t.Errorf("drops: got %d", q.Drops())
	}
	buf := make([]*packet.Packet, 0, 2)
	out := q.DequeueBatch(buf, 10)
	if len(out) != 2 || out[0].ID != 1 {
		t.Errorf("survivors wrong: %v", out)
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue("t.in", 3)
	buf := make([]*packet.Packet, 0, 3)
	next := packet.ID(0)
	for round := 0; round < 10; round++ {
		q.Enqueue(&packet.Packet{ID: next})
		next++
		q.Enqueue(&packet.Packet{ID: next})
		next++
		out := q.DequeueBatch(buf, 2)
		if len(out) != 2 {
			t.Fatalf("round %d: got %d", round, len(out))
		}
		if out[1].ID != out[0].ID+1 {
			t.Fatalf("round %d: order broken: %v, %v", round, out[0].ID, out[1].ID)
		}
	}
	if q.Enqueued() != 20 || q.Dequeued() != 20 {
		t.Errorf("counters: enq %d deq %d", q.Enqueued(), q.Dequeued())
	}
}

func TestQueueConsumerWakeup(t *testing.T) {
	q := NewQueue("t.in", 4)
	wakes := 0
	q.setConsumerWakeup(func() { wakes++ })
	q.Enqueue(&packet.Packet{}) // empty -> non-empty: wake
	q.Enqueue(&packet.Packet{}) // already non-empty: no wake
	if wakes != 1 {
		t.Errorf("wakes: got %d, want 1", wakes)
	}
	buf := make([]*packet.Packet, 0, 4)
	q.DequeueBatch(buf, 2)
	q.Enqueue(&packet.Packet{})
	if wakes != 2 {
		t.Errorf("wakes after drain: got %d, want 2", wakes)
	}
}

func TestQueueDefaultCap(t *testing.T) {
	q := NewQueue("t.in", 0)
	if q.Cap() != DefaultQueueCap {
		t.Errorf("default cap: got %d", q.Cap())
	}
}

// TestQueueConservation is the conservation invariant from DESIGN.md:
// enqueued == dequeued + drops-not-counted + resident, under arbitrary
// operation sequences.
func TestQueueConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewQueue("t.in", 8)
		buf := make([]*packet.Packet, 0, 8)
		var id packet.ID
		for _, op := range ops {
			if op%3 == 0 {
				out := q.DequeueBatch(buf, int(op%5))
				_ = out
			} else {
				q.Enqueue(&packet.Packet{ID: id})
				id++
			}
		}
		return q.Enqueued() == q.Dequeued()+uint64(q.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
