package nfsim

import (
	"testing"

	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// recordingHooks captures the full batch stream for assertions.
type recordingHooks struct {
	NopHooks
	reads       []batchEvent
	writes      []batchEvent
	delivers    []batchEvent
	drops       []batchEvent
	maxRead     int
	lastDeliver simtime.Time
}

type batchEvent struct {
	who  string
	at   simtime.Time
	n    int
	ids  []packet.ID
	flow []packet.FiveTuple
}

func capture(who string, at simtime.Time, pkts []*packet.Packet) batchEvent {
	ev := batchEvent{who: who, at: at, n: len(pkts)}
	for _, p := range pkts {
		ev.ids = append(ev.ids, p.ID)
		ev.flow = append(ev.flow, p.Flow)
	}
	return ev
}

func (r *recordingHooks) BatchRead(nf string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	r.reads = append(r.reads, capture(nf, at, pkts))
	if len(pkts) > r.maxRead {
		r.maxRead = len(pkts)
	}
}
func (r *recordingHooks) BatchWrite(from string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	r.writes = append(r.writes, capture(from, at, pkts))
}
func (r *recordingHooks) Deliver(nf string, at simtime.Time, pkts []*packet.Packet) {
	r.delivers = append(r.delivers, capture(nf, at, pkts))
	r.lastDeliver = at
}
func (r *recordingHooks) Drop(from string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	r.drops = append(r.drops, capture(from, at, pkts))
}

func (r *recordingHooks) delivered() int {
	n := 0
	for _, d := range r.delivers {
		n += d.n
	}
	return n
}

func cbrSchedule(rate simtime.Rate, dur simtime.Duration, flow packet.FiveTuple) *traffic.Schedule {
	iv := rate.Interval()
	var ems []traffic.Emission
	for t := simtime.Time(0); t < simtime.Time(dur); t = t.Add(iv) {
		ems = append(ems, traffic.Emission{At: t, Flow: flow, Size: 64, Burst: -1})
	}
	return &traffic.Schedule{Emissions: ems}
}

func testFlow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(10, 0, 0, byte(i)),
		DstIP:   packet.IPFromOctets(23, 0, 0, 1),
		SrcPort: uint16(1000 + i),
		DstPort: 9000,
		Proto:   packet.ProtoUDP,
	}
}

func TestSingleNFDeliversEverything(t *testing.T) {
	hooks := &recordingHooks{}
	sim := BuildChain(hooks, 1, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	sched := cbrSchedule(simtime.MPPS(0.5), simtime.Duration(2*simtime.Millisecond), testFlow(1))
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(10 * simtime.Millisecond))

	want := sched.Len()
	if got := hooks.delivered(); got != want {
		t.Errorf("delivered: got %d, want %d", got, want)
	}
	if len(hooks.drops) != 0 {
		t.Errorf("unexpected drops: %d", len(hooks.drops))
	}
	// Underloaded NF should never accumulate full batches.
	if hooks.maxRead > DefaultMaxBatch {
		t.Errorf("batch exceeded max: %d", hooks.maxRead)
	}
}

func TestBatchNeverExceedsMax(t *testing.T) {
	hooks := &recordingHooks{}
	sim := BuildChain(hooks, 1, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.2)})
	// Overload 5x to force full batches.
	sched := cbrSchedule(simtime.MPPS(1), simtime.Duration(1*simtime.Millisecond), testFlow(1))
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(20 * simtime.Millisecond))
	if hooks.maxRead != DefaultMaxBatch {
		t.Errorf("overloaded NF should hit max batch: got %d", hooks.maxRead)
	}
}

func TestOverloadDropsAtQueueCapacity(t *testing.T) {
	hooks := &recordingHooks{}
	sim := New(hooks)
	sim.AddNF(NFConfig{Name: "slow", Kind: "fw", PeakRate: simtime.PPS(50_000), QueueCap: 64, Seed: 1})
	sim.ConnectSource(func(*packet.Packet) int { return 0 }, "slow")
	sim.Connect("slow", func(*packet.Packet) int { return Egress })
	sched := cbrSchedule(simtime.MPPS(1), simtime.Duration(1*simtime.Millisecond), testFlow(2))
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(50 * simtime.Millisecond))

	if len(hooks.drops) == 0 {
		t.Fatal("expected tail drops under 20x overload")
	}
	total := sched.Len()
	dropped := 0
	for _, d := range hooks.drops {
		dropped += d.n
	}
	if got := hooks.delivered() + dropped; got != total {
		t.Errorf("conservation: delivered+dropped = %d, want %d", got, total)
	}
	for _, p := range sim.Packets() {
		if p.Dropped == "" {
			continue
		}
		if p.Dropped != "slow" {
			t.Fatalf("drop location: got %q", p.Dropped)
		}
		if p.LastHop() != nil && p.LastHop().Node == "slow" {
			t.Fatal("dropped packet should not have a hop at the dropping NF")
		}
	}
}

func TestChainPreservesPerFlowOrder(t *testing.T) {
	hooks := &recordingHooks{}
	sim := BuildChain(hooks, 7,
		ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(0.9)},
		ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
		ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.7)},
	)
	sched := cbrSchedule(simtime.MPPS(0.5), simtime.Duration(2*simtime.Millisecond), testFlow(3))
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(20 * simtime.Millisecond))

	var last packet.ID
	first := true
	for _, d := range hooks.delivers {
		for _, id := range d.ids {
			if !first && id <= last {
				t.Fatalf("delivery order broken: %d after %d", id, last)
			}
			last, first = id, false
		}
	}
	if hooks.delivered() != sched.Len() {
		t.Errorf("delivered %d of %d", hooks.delivered(), sched.Len())
	}
	// Every packet should record exactly 3 hops with sane timestamps.
	for _, p := range sim.Packets() {
		if len(p.Hops) != 3 {
			t.Fatalf("hops: got %d", len(p.Hops))
		}
		for i, h := range p.Hops {
			if h.DequeueAt < h.EnqueueAt || h.DepartAt < h.DequeueAt {
				t.Fatalf("hop %d times out of order: %+v", i, h)
			}
			if i > 0 && h.EnqueueAt != p.Hops[i-1].DepartAt {
				t.Fatalf("hop %d enqueue != previous depart", i)
			}
		}
	}
}

func TestInterruptStallsNF(t *testing.T) {
	hooks := &recordingHooks{}
	sim := BuildChain(hooks, 3, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	sched := cbrSchedule(simtime.MPPS(0.5), simtime.Duration(3*simtime.Millisecond), testFlow(4))
	sim.LoadSchedule(sched)
	intStart := simtime.Time(1 * simtime.Millisecond)
	intDur := simtime.Duration(800 * simtime.Microsecond)
	sim.InjectInterrupt("fw1", intStart, intDur, "test")
	sim.Run(simtime.Time(20 * simtime.Millisecond))

	// No batch read may start strictly inside the stall window.
	for _, r := range hooks.reads {
		if r.at > intStart && r.at < intStart.Add(intDur) {
			t.Fatalf("read at %v inside interrupt window", r.at)
		}
	}
	// Some packet must see queueing delay ~ the interrupt length.
	var maxDelay simtime.Duration
	for _, p := range sim.Packets() {
		if d := p.QueueDelayAt("fw1"); d > maxDelay {
			maxDelay = d
		}
	}
	if maxDelay < intDur/2 {
		t.Errorf("max queue delay %v too small for %v interrupt", maxDelay, intDur)
	}
	st := sim.NF("fw1").Stats()
	if st.StallTime < intDur-simtime.Duration(simtime.Microsecond) {
		t.Errorf("stall time %v, want ~%v", st.StallTime, intDur)
	}
	if len(sim.Truth().Interrupts) != 1 {
		t.Error("interrupt not recorded in ground truth")
	}
}

func TestBugSlowsMatchingFlows(t *testing.T) {
	hooks := &recordingHooks{}
	sim := BuildChain(hooks, 5, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	bugFlow := testFlow(9)
	sim.InjectBug("fw1", &SlowPath{
		Match: func(ft packet.FiveTuple) bool { return ft == bugFlow },
		Rate:  simtime.PPS(10_000),
	}, "slow flow 9")

	sched := cbrSchedule(simtime.MPPS(0.3), simtime.Duration(2*simtime.Millisecond), testFlow(1))
	sched.InjectFlow(bugFlow, simtime.Time(500*simtime.Microsecond), 10, simtime.Duration(10*simtime.Microsecond), 64)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(50 * simtime.Millisecond))

	var bugServ, bgServ simtime.Duration
	var bugN, bgN int
	for _, p := range sim.Packets() {
		h := p.HopAt("fw1")
		if h == nil {
			continue
		}
		// Batch-level departure: measure enqueue->depart as a proxy.
		d := h.DepartAt.Sub(h.DequeueAt)
		if p.Flow == bugFlow {
			bugServ += d
			bugN++
		} else {
			bgServ += d
			bgN++
		}
	}
	if bugN == 0 || bgN == 0 {
		t.Fatal("missing packets")
	}
	if bugServ/simtime.Duration(bugN) < 10*bgServ/simtime.Duration(bgN) {
		t.Errorf("bug flow not clearly slower: bug %v vs bg %v",
			bugServ/simtime.Duration(bugN), bgServ/simtime.Duration(bgN))
	}
	if len(sim.Truth().Bugs) != 1 {
		t.Error("bug not in ground truth")
	}
}

func TestFlowHashRouteSplitsTraffic(t *testing.T) {
	route := FlowHashRoute(4)
	counts := make([]int, 4)
	for i := 0; i < 1000; i++ {
		p := &packet.Packet{Flow: testFlow(i)}
		counts[route(p)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("output %d unused", i)
		}
	}
	// Same flow always routes the same way.
	p := &packet.Packet{Flow: testFlow(1)}
	first := route(p)
	for i := 0; i < 10; i++ {
		if route(p) != first {
			t.Fatal("route not deterministic")
		}
	}
}

func TestWebElseRoute(t *testing.T) {
	route := WebElseRoute(80, 443)
	web := &packet.Packet{Flow: packet.FiveTuple{DstPort: 80}}
	tls := &packet.Packet{Flow: packet.FiveTuple{DstPort: 443}}
	other := &packet.Packet{Flow: packet.FiveTuple{DstPort: 9999}}
	if route(web) != 0 || route(tls) != 0 {
		t.Error("web ports should route to 0")
	}
	if route(other) != 1 {
		t.Error("other ports should route to 1")
	}
}

func TestEvalTopologyEndToEnd(t *testing.T) {
	hooks := &recordingHooks{}
	topo := BuildEvalTopology(hooks, EvalTopologyConfig{Seed: 42})
	if len(topo.AllNFs()) != 16 {
		t.Fatalf("16 NFs expected, got %d", len(topo.AllNFs()))
	}
	mix := traffic.NewMix(traffic.MixConfig{Flows: 512, Seed: 7})
	sched := traffic.Generate(mix, traffic.ScheduleConfig{
		Rate:     simtime.MPPS(1.0),
		Duration: simtime.Duration(5 * simtime.Millisecond),
		Seed:     11,
	})
	topo.Sim.LoadSchedule(sched)
	topo.Sim.Run(simtime.Time(100 * simtime.Millisecond))

	delivered := hooks.delivered()
	dropped := 0
	for _, d := range hooks.drops {
		dropped += d.n
	}
	if delivered+dropped != sched.Len() {
		t.Errorf("conservation: %d+%d != %d", delivered, dropped, sched.Len())
	}
	if delivered < sched.Len()*9/10 {
		t.Errorf("too many losses in nominal run: delivered %d of %d", delivered, sched.Len())
	}
	// Deliveries must all come from VPNs.
	for _, d := range hooks.delivers {
		if topo.KindOf(d.who) != "vpn" {
			t.Fatalf("delivery from non-VPN %q", d.who)
		}
	}
	// Every delivered packet's path must be nat->fw->(mon->)?vpn.
	okPaths := 0
	for _, p := range sim0Packets(topo) {
		if p.Dropped != "" {
			continue
		}
		path := p.Path()
		if len(path) < 3 || len(path) > 4 {
			t.Fatalf("path length %d: %v", len(path), path)
		}
		if topo.KindOf(path[0]) != "nat" || topo.KindOf(path[1]) != "fw" || topo.KindOf(path[len(path)-1]) != "vpn" {
			t.Fatalf("bad path: %v", path)
		}
		if len(path) == 4 && topo.KindOf(path[2]) != "mon" {
			t.Fatalf("bad 4-hop path: %v", path)
		}
		if len(path) == 4 && p.Flow.DstPort != 80 && p.Flow.DstPort != 443 {
			t.Fatalf("non-web flow through monitor: %v %v", p.Flow, path)
		}
		okPaths++
	}
	if okPaths == 0 {
		t.Fatal("no delivered packets inspected")
	}
}

func sim0Packets(t *EvalTopology) []*packet.Packet { return t.Sim.Packets() }

func TestQueueSampling(t *testing.T) {
	hooks := &recordingHooks{}
	sim := BuildChain(hooks, 3, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.3)})
	sched := cbrSchedule(simtime.MPPS(0.6), simtime.Duration(1*simtime.Millisecond), testFlow(5))
	sim.LoadSchedule(sched)
	sim.SampleQueues(simtime.Duration(10*simtime.Microsecond), simtime.Time(3*simtime.Millisecond))
	sim.Run(simtime.Time(5 * simtime.Millisecond))
	samples := sim.QueueSamples("fw1")
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var peak int
	for _, s := range samples {
		if s.Len > peak {
			peak = s.Len
		}
	}
	if peak == 0 {
		t.Error("overloaded queue never observed non-empty")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, simtime.Time) {
		hooks := &recordingHooks{}
		topo := BuildEvalTopology(hooks, EvalTopologyConfig{Seed: 99})
		mix := traffic.NewMix(traffic.MixConfig{Flows: 256, Seed: 3})
		sched := traffic.Generate(mix, traffic.ScheduleConfig{
			Rate:     simtime.MPPS(0.8),
			Duration: simtime.Duration(2 * simtime.Millisecond),
			Seed:     5,
		})
		topo.Sim.LoadSchedule(sched)
		topo.Sim.Run(simtime.Time(50 * simtime.Millisecond))
		return hooks.delivered(), hooks.lastDeliver
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
}
