package nfsim

import (
	"microscope/internal/packet"
)

// DefaultQueueCap mirrors the DPDK ring size the paper assumes (§5: "the
// maximum number of packets in a queue in DPDK is 1024").
const DefaultQueueCap = 1024

// Queue is a bounded FIFO packet ring connecting an upstream component to
// one downstream NF. Enqueues beyond capacity tail-drop, exactly like a
// full rte_ring. Queues are single-consumer: each belongs to one NF.
type Queue struct {
	name     string
	owner    string // name of the consuming NF
	capacity int

	buf  []*packet.Packet
	head int
	n    int

	enqueued uint64
	dequeued uint64
	drops    uint64

	// onEnqueue wakes the consuming NF when the queue transitions from
	// empty to non-empty.
	onEnqueue func()
}

// NewQueue creates a queue with the given name and capacity (DefaultQueueCap
// if cap <= 0).
func NewQueue(name string, capacity int) *Queue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	return &Queue{
		name:     name,
		capacity: capacity,
		buf:      make([]*packet.Packet, capacity),
	}
}

// Name returns the queue's identifier (by convention "<nf>.in").
func (q *Queue) Name() string { return q.name }

// Owner returns the name of the NF that consumes this queue.
func (q *Queue) Owner() string { return q.owner }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.capacity }

// Len returns the number of resident packets.
func (q *Queue) Len() int { return q.n }

// Drops returns the cumulative tail-drop count.
func (q *Queue) Drops() uint64 { return q.drops }

// Enqueued returns the cumulative successful enqueue count.
func (q *Queue) Enqueued() uint64 { return q.enqueued }

// Dequeued returns the cumulative dequeue count.
func (q *Queue) Dequeued() uint64 { return q.dequeued }

// Enqueue appends p, returning false (and counting a drop) when full.
func (q *Queue) Enqueue(p *packet.Packet) bool {
	if q.n == q.capacity {
		q.drops++
		return false
	}
	wasEmpty := q.n == 0
	q.buf[(q.head+q.n)%q.capacity] = p
	q.n++
	q.enqueued++
	if wasEmpty && q.onEnqueue != nil {
		q.onEnqueue()
	}
	return true
}

// DequeueBatch removes up to max packets in FIFO order into dst and returns
// the filled prefix of dst. dst must have capacity >= max.
func (q *Queue) DequeueBatch(dst []*packet.Packet, max int) []*packet.Packet {
	if max > q.n {
		max = q.n
	}
	dst = dst[:0]
	for i := 0; i < max; i++ {
		p := q.buf[q.head]
		q.buf[q.head] = nil
		q.head = (q.head + 1) % q.capacity
		dst = append(dst, p)
	}
	q.n -= max
	q.dequeued += uint64(max)
	return dst
}

// setConsumerWakeup registers the wake callback invoked on an
// empty→non-empty transition. Internal: NFs call this when attached.
func (q *Queue) setConsumerWakeup(fn func()) { q.onEnqueue = fn }
