package nfsim

import (
	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// Hooks is the instrumentation surface the simulator exposes. It mirrors
// the two DPDK functions Microscope's collector instruments (§5): the
// receive path (BatchRead) and the transmit path (BatchWrite), plus graph
// egress and drops. The runtime collector implements this interface; tests
// use it to assert on the exact batch stream.
//
// Implementations must not retain the pkts slice: it is reused by the
// caller. Retain copies of the fields you need.
type Hooks interface {
	// BatchRead fires when component nf dequeues a batch from its input
	// queue q at time at. len(pkts) is the batch size; a batch smaller
	// than the NF's MaxBatch means the queue drained (§5).
	BatchRead(nf string, at simtime.Time, q *Queue, pkts []*packet.Packet)

	// BatchWrite fires when component from successfully enqueues a batch
	// onto queue q at time at.
	BatchWrite(from string, at simtime.Time, q *Queue, pkts []*packet.Packet)

	// Deliver fires when packets leave the NF graph at nf (its route
	// returned the egress port). The paper records full five-tuples only
	// here, at the end of the graph.
	Deliver(nf string, at simtime.Time, pkts []*packet.Packet)

	// Drop fires when an enqueue onto q by component from tail-drops.
	Drop(from string, at simtime.Time, q *Queue, pkts []*packet.Packet)
}

// NopHooks is a Hooks implementation that does nothing; embed it to
// implement only part of the interface.
type NopHooks struct{}

// BatchRead implements Hooks.
func (NopHooks) BatchRead(string, simtime.Time, *Queue, []*packet.Packet) {}

// BatchWrite implements Hooks.
func (NopHooks) BatchWrite(string, simtime.Time, *Queue, []*packet.Packet) {}

// Deliver implements Hooks.
func (NopHooks) Deliver(string, simtime.Time, []*packet.Packet) {}

// Drop implements Hooks.
func (NopHooks) Drop(string, simtime.Time, *Queue, []*packet.Packet) {}

// MultiHooks fans events out to several hooks in order.
type MultiHooks []Hooks

// BatchRead implements Hooks.
func (m MultiHooks) BatchRead(nf string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	for _, h := range m {
		h.BatchRead(nf, at, q, pkts)
	}
}

// BatchWrite implements Hooks.
func (m MultiHooks) BatchWrite(from string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	for _, h := range m {
		h.BatchWrite(from, at, q, pkts)
	}
}

// Deliver implements Hooks.
func (m MultiHooks) Deliver(nf string, at simtime.Time, pkts []*packet.Packet) {
	for _, h := range m {
		h.Deliver(nf, at, pkts)
	}
}

// Drop implements Hooks.
func (m MultiHooks) Drop(from string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	for _, h := range m {
		h.Drop(from, at, q, pkts)
	}
}
