package nfsim

import (
	"testing"

	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

func steady(rate simtime.Rate, dur simtime.Duration) *traffic.Schedule {
	iv := rate.Interval()
	var ems []traffic.Emission
	ft := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	for t := simtime.Time(0); t < simtime.Time(dur); t = t.Add(iv) {
		ems = append(ems, traffic.Emission{At: t, Flow: ft, Size: 64, Burst: -1})
	}
	return &traffic.Schedule{Emissions: ems}
}

func TestNFStatsAccounting(t *testing.T) {
	sim := BuildChain(NopHooks{}, 1, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.5)})
	sched := steady(simtime.MPPS(0.25), 4*simtime.Millisecond)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	st := sim.NF("fw1").Stats()
	if st.Processed != uint64(sched.Len()) {
		t.Errorf("processed: %d vs %d", st.Processed, sched.Len())
	}
	if st.Batches == 0 || st.Batches > st.Processed {
		t.Errorf("batches: %d", st.Batches)
	}
	// Busy time ≈ packets / peak rate, with ≤ 5% jitter margin.
	ideal := float64(st.Processed) * float64(simtime.MPPS(0.5).Interval())
	if f := float64(st.BusyTime); f < ideal || f > ideal*1.07 {
		t.Errorf("busy time %v vs ideal %v", st.BusyTime, ideal)
	}
	if st.StallTime != 0 {
		t.Errorf("stall time without interrupts: %v", st.StallTime)
	}
}

func TestPerPacketOverheadSlowsNF(t *testing.T) {
	run := func(overhead simtime.Duration) uint64 {
		sim := New(NopHooks{})
		sim.AddNF(NFConfig{
			Name: "fw1", Kind: "fw", PeakRate: simtime.MPPS(0.5),
			PerPacketOverhead: overhead, Seed: 1,
		})
		sim.ConnectSource(func(*packet.Packet) int { return 0 }, "fw1")
		sim.Connect("fw1", func(*packet.Packet) int { return Egress })
		sim.LoadSchedule(steady(simtime.MPPS(1.0), 10*simtime.Millisecond)) // saturate
		sim.Run(simtime.Time(10 * simtime.Millisecond))
		return sim.NF("fw1").Stats().Processed
	}
	base := run(0)
	inst := run(100 * simtime.Nanosecond) // 5% of the 2us service time
	if inst >= base {
		t.Fatalf("overhead did not reduce throughput: %d vs %d", inst, base)
	}
	degradation := 1 - float64(inst)/float64(base)
	if degradation < 0.03 || degradation > 0.07 {
		t.Errorf("degradation %.3f, want ~0.05", degradation)
	}
}

func TestSpikesExtendServiceTimes(t *testing.T) {
	run := func(spikeProb float64) simtime.Duration {
		sim := New(NopHooks{})
		sim.AddNF(NFConfig{
			Name: "fw1", Kind: "fw", PeakRate: simtime.MPPS(0.5),
			SpikeProb: spikeProb, SpikeFactor: 50, Seed: 7,
		})
		sim.ConnectSource(func(*packet.Packet) int { return 0 }, "fw1")
		sim.Connect("fw1", func(*packet.Packet) int { return Egress })
		sim.LoadSchedule(steady(simtime.MPPS(0.3), 10*simtime.Millisecond))
		sim.Run(simtime.Time(100 * simtime.Millisecond))
		return sim.NF("fw1").Stats().BusyTime
	}
	calm := run(0)
	spiky := run(0.01)
	// 1% spikes at 50x add ~49% busy time.
	if float64(spiky) < float64(calm)*1.2 {
		t.Errorf("spikes had no effect: %v vs %v", spiky, calm)
	}
}

func TestOverlappingInterruptsExtendStall(t *testing.T) {
	sim := BuildChain(NopHooks{}, 1, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.5)})
	sim.LoadSchedule(steady(simtime.MPPS(0.2), 5*simtime.Millisecond))
	// Two overlapping interrupts: [1ms, 2ms] and [1.5ms, 3ms].
	sim.InjectInterrupt("fw1", simtime.Time(simtime.Millisecond), simtime.Duration(simtime.Millisecond), "a")
	sim.InjectInterrupt("fw1", simtime.Time(1500*simtime.Microsecond), simtime.Duration(1500*simtime.Microsecond), "b")
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	st := sim.NF("fw1").Stats()
	want := simtime.Duration(2 * simtime.Millisecond) // union [1ms, 3ms]
	if st.StallTime < want-simtime.Duration(10*simtime.Microsecond) ||
		st.StallTime > want+simtime.Duration(10*simtime.Microsecond) {
		t.Errorf("stall: %v, want ~%v (union, not sum)", st.StallTime, want)
	}
}

func TestEvalTopologyPathOfPredicts(t *testing.T) {
	topo := BuildEvalTopology(NopHooks{}, EvalTopologyConfig{Seed: 3})
	mix := traffic.NewMix(traffic.MixConfig{Flows: 128, Seed: 4})
	sched := traffic.Generate(mix, traffic.ScheduleConfig{
		Rate: simtime.MPPS(0.6), Duration: 2 * simtime.Millisecond, Seed: 5,
	})
	topo.Sim.LoadSchedule(sched)
	topo.Sim.Run(simtime.Time(50 * simtime.Millisecond))
	checked := 0
	for _, p := range topo.Sim.Packets() {
		if p.Dropped != "" {
			continue
		}
		want := topo.PathOf(p.Flow)
		got := p.Path()
		if len(want) != len(got) {
			t.Fatalf("len: %v vs %v", want, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("path: predicted %v actual %v", want, got)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	// NATOf/FirewallOf agree with PathOf.
	ft := mix.Flows[0].Tuple
	path := topo.PathOf(ft)
	if topo.NATOf(ft) != path[0] || topo.FirewallOf(ft) != path[1] {
		t.Error("NATOf/FirewallOf inconsistent with PathOf")
	}
}

func TestTopologyDefaults(t *testing.T) {
	topo := BuildEvalTopology(NopHooks{}, EvalTopologyConfig{Seed: 1})
	if len(topo.NATs) != 4 || len(topo.Firewalls) != 5 || len(topo.Monitors) != 3 || len(topo.VPNs) != 4 {
		t.Errorf("default sizes: %d/%d/%d/%d",
			len(topo.NATs), len(topo.Firewalls), len(topo.Monitors), len(topo.VPNs))
	}
	if topo.KindOf("fw3") != "fw" || topo.KindOf("missing") != "" {
		t.Error("KindOf wrong")
	}
	// Duplicate NF names must panic.
	defer func() {
		if recover() == nil {
			t.Error("duplicate NF should panic")
		}
	}()
	sim := New(NopHooks{})
	sim.AddNF(NFConfig{Name: "x", Kind: "a", PeakRate: simtime.MPPS(1)})
	sim.AddNF(NFConfig{Name: "x", Kind: "a", PeakRate: simtime.MPPS(1)})
}

func TestNFZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero peak rate should panic")
		}
	}()
	sim := New(NopHooks{})
	sim.AddNF(NFConfig{Name: "bad", Kind: "x"})
}

func TestStallDuringIdleDelaysNextBatch(t *testing.T) {
	// Interrupt an idle NF; packets arriving mid-interrupt must wait.
	sim := BuildChain(NopHooks{}, 1, ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	sched := &traffic.Schedule{}
	ft := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	sched.InjectFlow(ft, simtime.Time(1500*simtime.Microsecond), 5, 10*simtime.Microsecond, 64)
	sim.LoadSchedule(sched)
	sim.InjectInterrupt("fw1", simtime.Time(simtime.Millisecond), simtime.Duration(simtime.Millisecond), "idle")
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	p := sim.Packets()[0]
	h := p.HopAt("fw1")
	if h.DequeueAt < simtime.Time(2*simtime.Millisecond) {
		t.Errorf("packet read at %v, inside the interrupt", h.DequeueAt)
	}
}

func TestPerByteCost(t *testing.T) {
	run := func(perByte simtime.Duration, size int) simtime.Duration {
		sim := New(NopHooks{})
		sim.AddNF(NFConfig{Name: "vpn1", Kind: "vpn", PeakRate: simtime.MPPS(0.5), PerByte: perByte, Seed: 1})
		sim.ConnectSource(func(*packet.Packet) int { return 0 }, "vpn1")
		sim.Connect("vpn1", func(*packet.Packet) int { return Egress })
		sched := &traffic.Schedule{}
		ft := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
		sched.InjectFlow(ft, 0, 100, 10*simtime.Microsecond, size)
		sim.LoadSchedule(sched)
		sim.Run(simtime.Time(50 * simtime.Millisecond))
		return sim.NF("vpn1").Stats().BusyTime
	}
	base := run(0, 64)
	small := run(simtime.Nanosecond, 64)   // +64ns per packet
	large := run(simtime.Nanosecond, 1500) // +1500ns per packet
	if small <= base {
		t.Error("per-byte cost had no effect")
	}
	wantDelta := simtime.Duration(100 * (1500 - 64)) // packets * byte diff * 1ns
	gotDelta := large - small
	if gotDelta < wantDelta*9/10 || gotDelta > wantDelta*11/10 {
		t.Errorf("byte-size scaling: got %v, want ~%v", gotDelta, wantDelta)
	}
}

func TestRuleMatchCost(t *testing.T) {
	run := func(rules int) simtime.Duration {
		sim := New(NopHooks{})
		sim.AddNF(NFConfig{
			Name: "fw1", Kind: "fw", PeakRate: simtime.MPPS(0.5),
			RuleCount: rules, PerRule: 2 * simtime.Nanosecond, Seed: 1,
		})
		sim.ConnectSource(func(*packet.Packet) int { return 0 }, "fw1")
		sim.Connect("fw1", func(*packet.Packet) int { return Egress })
		sim.LoadSchedule(steady(simtime.MPPS(0.1), 2*simtime.Millisecond))
		sim.Run(simtime.Time(50 * simtime.Millisecond))
		return sim.NF("fw1").Stats().BusyTime
	}
	// 1000 rules at 2ns each: +2us per packet — doubles the base 2us.
	small, big := run(10), run(1000)
	if float64(big) < float64(small)*1.5 {
		t.Errorf("rule cost did not scale: %v vs %v", small, big)
	}
}

func TestFlowSetupCost(t *testing.T) {
	build := func(tableCap int) (*Sim, *traffic.Schedule) {
		sim := New(NopHooks{})
		sim.AddNF(NFConfig{
			Name: "nat1", Kind: "nat", PeakRate: simtime.MPPS(0.5),
			FlowSetupCost: 10 * simtime.Microsecond, FlowTableCap: tableCap, Seed: 1,
		})
		sim.ConnectSource(func(*packet.Packet) int { return 0 }, "nat1")
		sim.Connect("nat1", func(*packet.Packet) int { return Egress })
		sched := &traffic.Schedule{}
		// 8 flows x 50 packets, interleaved.
		var ems []traffic.Emission
		for i := 0; i < 400; i++ {
			ems = append(ems, traffic.Emission{
				At: simtime.Time(simtime.Duration(i) * 10 * simtime.Microsecond),
				Flow: packet.FiveTuple{
					SrcIP: uint32(i % 8), DstIP: 9, SrcPort: 10, DstPort: 11, Proto: 17,
				},
				Size: 64, Burst: -1,
			})
		}
		sched.Emissions = ems
		return sim, sched
	}
	// Large table: setup paid once per flow (8 x 10us = 80us extra).
	sim, sched := build(1024)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(100 * simtime.Millisecond))
	busyLarge := sim.NF("nat1").Stats().BusyTime

	// Tiny table (4 entries, 8 flows round-robin): constant eviction
	// means nearly every packet re-pays setup.
	sim2, sched2 := build(4)
	sim2.LoadSchedule(sched2)
	sim2.Run(simtime.Time(100 * simtime.Millisecond))
	busySmall := sim2.NF("nat1").Stats().BusyTime

	if busySmall <= busyLarge {
		t.Errorf("table pressure should increase busy time: %v vs %v", busySmall, busyLarge)
	}
	// Expect roughly 400 setups vs 8: ~4ms extra vs 80us extra.
	if float64(busySmall-busyLarge) < float64(2*simtime.Millisecond) {
		t.Errorf("eviction churn too cheap: delta %v", busySmall-busyLarge)
	}
}
