// Package nfsim is a deterministic discrete-event simulator of DPDK-style
// network-function chains: run-to-completion NFs that poll a bounded input
// ring in batches of at most 32 descriptors, process packets at a
// configurable peak rate, and transmit batches to downstream rings.
//
// The simulator stands in for the paper's testbed (Click-DPDK NFs pinned to
// dedicated cores behind SR-IOV NICs). Microscope itself only ever observes
// the batch-level receive/transmit records that the collector hooks emit —
// the same information Table 1 of the paper allows — so the diagnosis
// pipeline exercises identical code paths against this substrate as it
// would against a hardware deployment.
package nfsim

import (
	"container/heap"
	"fmt"

	"microscope/internal/simtime"
)

// event is a scheduled callback. Ties on time are broken by insertion
// sequence, which makes runs bit-for-bit reproducible.
type event struct {
	at  simtime.Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine is the simulation event loop. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    simtime.Time
	seq    uint64
	events eventHeap
	nsteps uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// At schedules fn to run at time t. Scheduling in the past panics: it is
// always a simulator bug, and silent reordering would corrupt causality.
func (e *Engine) At(t simtime.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("nfsim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d simtime.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Run executes events in time order until the queue drains or the next
// event lies beyond until. It returns the time of the last executed event
// (or the current time if none ran).
func (e *Engine) Run(until simtime.Time) simtime.Time {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.nsteps++
		next.fn()
	}
	if e.now < until && len(e.events) == 0 {
		// Advance the clock so successive Run calls observe progress
		// even on an idle system.
		e.now = until
	}
	return e.now
}

// Pending returns the number of queued events (observability for tests).
func (e *Engine) Pending() int { return len(e.events) }
