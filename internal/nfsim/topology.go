package nfsim

import (
	"fmt"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// EvalTopologyConfig parameterizes the paper's 16-NF evaluation topology
// (Figure 10): incoming traffic is load-balanced at flow level across 4
// NATs, each NAT spreads flows across 5 Firewalls, firewalls steer flows
// matching their rule set (web ports by default) to one of 3 Monitors and
// everything else to one of 4 VPNs, and Monitors forward to VPNs. VPNs are
// the graph egress.
type EvalTopologyConfig struct {
	NATs, Firewalls, Monitors, VPNs int

	NATRate, FirewallRate, MonitorRate, VPNRate simtime.Rate

	// JitterFrac / SpikeProb / SpikeFactor apply to every NF, modelling
	// the background fine-timescale noise real deployments exhibit.
	JitterFrac  float64
	SpikeProb   float64
	SpikeFactor float64

	// RulePorts are the firewall rule destination ports steered to the
	// Monitors (default 80, 443).
	RulePorts []uint16

	// QueueCap overrides the ring size (DefaultQueueCap if 0).
	QueueCap int

	// Seed seeds per-NF jitter RNGs (each NF derives its own).
	Seed int64

	// PerPacketOverhead applies instrumentation cost to every NF
	// (used by the §6.2 collector-overhead experiment).
	PerPacketOverhead simtime.Duration
}

// Route salts: each ECMP stage decorrelates its flow-hash choice from the
// previous stage with one of these multipliers.
const (
	natStageSalt = 0x9e3779b97f4a7c15
	fwStageSalt  = 0xbf58476d1ce4e5b9
	monStageSalt = 0x94d049bb133111eb
)

func (c *EvalTopologyConfig) setDefaults() {
	if c.NATs <= 0 {
		c.NATs = 4
	}
	if c.Firewalls <= 0 {
		c.Firewalls = 5
	}
	if c.Monitors <= 0 {
		c.Monitors = 3
	}
	if c.VPNs <= 0 {
		c.VPNs = 4
	}
	if c.NATRate <= 0 {
		c.NATRate = simtime.MPPS(0.5)
	}
	if c.FirewallRate <= 0 {
		c.FirewallRate = simtime.MPPS(0.4)
	}
	if c.MonitorRate <= 0 {
		c.MonitorRate = simtime.MPPS(0.35)
	}
	if c.VPNRate <= 0 {
		c.VPNRate = simtime.MPPS(0.45)
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.08
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.0005
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 25
	}
	if len(c.RulePorts) == 0 {
		c.RulePorts = []uint16{80, 443}
	}
}

// EvalTopology is the built 16-NF chain plus its name lists.
type EvalTopology struct {
	Sim       *Sim
	NATs      []string
	Firewalls []string
	Monitors  []string
	VPNs      []string
	Config    EvalTopologyConfig
}

// AllNFs returns every instance name, NATs first.
func (t *EvalTopology) AllNFs() []string {
	out := make([]string, 0, len(t.NATs)+len(t.Firewalls)+len(t.Monitors)+len(t.VPNs))
	out = append(out, t.NATs...)
	out = append(out, t.Firewalls...)
	out = append(out, t.Monitors...)
	out = append(out, t.VPNs...)
	return out
}

// KindOf maps an instance name to its NF type, or "" for unknown names
// ("source" included).
func (t *EvalTopology) KindOf(name string) string {
	if nf := t.Sim.NF(name); nf != nil {
		return nf.Kind()
	}
	return ""
}

// BuildEvalTopology constructs the Figure 10 topology on a fresh Sim with
// the given hooks.
func BuildEvalTopology(hooks Hooks, cfg EvalTopologyConfig) *EvalTopology {
	cfg.setDefaults()
	sim := New(hooks)
	t := &EvalTopology{Sim: sim, Config: cfg}

	add := func(kind string, i int, rate simtime.Rate) string {
		name := fmt.Sprintf("%s%d", kind, i+1)
		sim.AddNF(NFConfig{
			Name:              name,
			Kind:              kind,
			PeakRate:          rate,
			JitterFrac:        cfg.JitterFrac,
			SpikeProb:         cfg.SpikeProb,
			SpikeFactor:       cfg.SpikeFactor,
			QueueCap:          cfg.QueueCap,
			Seed:              cfg.Seed + int64(len(sim.nfOrder))*7919,
			PerPacketOverhead: cfg.PerPacketOverhead,
		})
		return name
	}
	for i := 0; i < cfg.NATs; i++ {
		t.NATs = append(t.NATs, add("nat", i, cfg.NATRate))
	}
	for i := 0; i < cfg.Firewalls; i++ {
		t.Firewalls = append(t.Firewalls, add("fw", i, cfg.FirewallRate))
	}
	for i := 0; i < cfg.Monitors; i++ {
		t.Monitors = append(t.Monitors, add("mon", i, cfg.MonitorRate))
	}
	for i := 0; i < cfg.VPNs; i++ {
		t.VPNs = append(t.VPNs, add("vpn", i, cfg.VPNRate))
	}

	// Source load-balances flows across NATs.
	sim.ConnectSource(FlowHashRoute(cfg.NATs), t.NATs...)

	// NATs spread flows across firewalls. Salt the hash so a flow's NAT
	// choice and firewall choice are independent, as separate ECMP
	// stages would be.
	nFW := uint64(cfg.Firewalls)
	natRoute := func(p *packet.Packet) int {
		return int((p.Flow.Hash() * natStageSalt) % nFW)
	}
	for _, n := range t.NATs {
		sim.Connect(n, natRoute, t.Firewalls...)
	}

	// Firewalls: rule-matched flows to a Monitor, others to a VPN.
	ruleSet := make(map[uint16]bool, len(cfg.RulePorts))
	for _, p := range cfg.RulePorts {
		ruleSet[p] = true
	}
	nMon := uint64(cfg.Monitors)
	nVPN := uint64(cfg.VPNs)
	fwDown := append(append([]string{}, t.Monitors...), t.VPNs...)
	fwRoute := func(p *packet.Packet) int {
		h := p.Flow.Hash() * fwStageSalt
		if ruleSet[p.Flow.DstPort] {
			return int(h % nMon)
		}
		return cfg.Monitors + int(h%nVPN)
	}
	for _, f := range t.Firewalls {
		sim.Connect(f, fwRoute, fwDown...)
	}

	// Monitors forward everything to a VPN.
	monRoute := func(p *packet.Packet) int {
		return int((p.Flow.Hash() * monStageSalt) % nVPN)
	}
	for _, m := range t.Monitors {
		sim.Connect(m, monRoute, t.VPNs...)
	}

	// VPNs are egress.
	for _, v := range t.VPNs {
		sim.Connect(v, func(*packet.Packet) int { return Egress })
	}
	return t
}

// NATOf returns which NAT instance the flow is load-balanced to.
func (t *EvalTopology) NATOf(ft packet.FiveTuple) string {
	return t.NATs[ft.Hash()%uint64(len(t.NATs))]
}

// FirewallOf returns which firewall instance the flow traverses.
func (t *EvalTopology) FirewallOf(ft packet.FiveTuple) string {
	return t.Firewalls[(ft.Hash()*natStageSalt)%uint64(len(t.Firewalls))]
}

// PathOf returns the full component path a flow takes through the
// evaluation topology (NAT, firewall, optional monitor, VPN).
func (t *EvalTopology) PathOf(ft packet.FiveTuple) []string {
	out := []string{t.NATOf(ft), t.FirewallOf(ft)}
	h := ft.Hash() * fwStageSalt
	web := false
	for _, p := range t.Config.RulePorts {
		if p == ft.DstPort {
			web = true
			break
		}
	}
	if web {
		out = append(out, t.Monitors[h%uint64(len(t.Monitors))])
		h = ft.Hash() * monStageSalt
	}
	out = append(out, t.VPNs[h%uint64(len(t.VPNs))])
	return out
}

// ChainSpec describes one NF in a simple linear chain.
type ChainSpec struct {
	Name string
	Kind string
	Rate simtime.Rate
}

// BuildChain constructs a linear chain source → nf1 → nf2 → ... → egress,
// used by the motivation examples (§1, §2) and many tests.
func BuildChain(hooks Hooks, seed int64, specs ...ChainSpec) *Sim {
	sim := New(hooks)
	for i, sp := range specs {
		sim.AddNF(NFConfig{
			Name:       sp.Name,
			Kind:       sp.Kind,
			PeakRate:   sp.Rate,
			JitterFrac: 0.05,
			Seed:       seed + int64(i)*104729,
		})
	}
	sim.ConnectSource(func(*packet.Packet) int { return 0 }, specs[0].Name)
	for i := 0; i < len(specs)-1; i++ {
		sim.Connect(specs[i].Name, func(*packet.Packet) int { return 0 }, specs[i+1].Name)
	}
	sim.Connect(specs[len(specs)-1].Name, func(*packet.Packet) int { return Egress })
	return sim
}
