package nfsim

import (
	"fmt"
	"sort"

	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// SourceName is the component name of the traffic source. The paper treats
// traffic sources as first-class culprit candidates; so do we.
const SourceName = "source"

// Interrupt is a ground-truth record of an injected CPU interrupt.
type Interrupt struct {
	NF    string
	At    simtime.Time
	Dur   simtime.Duration
	Label string
}

// Bug is a ground-truth record of an injected NF processing bug.
type Bug struct {
	NF    string
	Label string
}

// Burst is a ground-truth record of an injected traffic burst.
type Burst struct {
	ID    int32
	Flow  packet.FiveTuple
	At    simtime.Time
	Count int
}

// GroundTruth accumulates every injected problem. The evaluation harness
// scores diagnosis output against this; the diagnosis pipeline never sees
// it.
type GroundTruth struct {
	Interrupts []Interrupt
	Bugs       []Bug
	Bursts     []Burst
}

// QueueSample is one ground-truth queue-length observation, used to render
// the motivation figures (1b, 2c).
type QueueSample struct {
	At  simtime.Time
	Len int
}

// Sim owns an engine, a source, and a DAG of NFs, and retains ground truth
// for evaluation: every packet created, every injected problem.
type Sim struct {
	eng   *Engine
	hooks Hooks
	truth GroundTruth

	nfs      map[string]*NF
	nfOrder  []string
	srcRoute RouteFunc
	srcOuts  []*Queue

	nextID     packet.ID
	nextIPID   uint16
	packets    []*packet.Packet
	keepAll    bool
	samplers   map[string][]QueueSample
	sampleStep simtime.Duration

	// hot-path scratch buffers (hooks must not retain slices)
	okBuf, dropBuf []*packet.Packet
	emitGroups     [][]*packet.Packet
}

// New creates an empty simulation with the given instrumentation hooks
// (use NopHooks{} for none).
func New(hooks Hooks) *Sim {
	if hooks == nil {
		hooks = NopHooks{}
	}
	return &Sim{
		eng:     NewEngine(),
		hooks:   hooks,
		nfs:     make(map[string]*NF),
		keepAll: true,
	}
}

// Engine exposes the event engine (for tests and samplers).
func (s *Sim) Engine() *Engine { return s.eng }

// Truth returns the accumulated ground truth.
func (s *Sim) Truth() *GroundTruth { return &s.truth }

// Packets returns every packet the source created, in creation order.
func (s *Sim) Packets() []*packet.Packet { return s.packets }

// AddNF registers an NF instance.
func (s *Sim) AddNF(cfg NFConfig) *NF {
	if _, dup := s.nfs[cfg.Name]; dup {
		panic(fmt.Sprintf("nfsim: duplicate NF name %q", cfg.Name))
	}
	nf := newNF(s, cfg)
	s.nfs[cfg.Name] = nf
	s.nfOrder = append(s.nfOrder, cfg.Name)
	return nf
}

// NF returns the named instance, or nil.
func (s *Sim) NF(name string) *NF { return s.nfs[name] }

// NFNames returns instance names in registration order.
func (s *Sim) NFNames() []string {
	out := make([]string, len(s.nfOrder))
	copy(out, s.nfOrder)
	return out
}

// Connect wires an NF's outputs: route selects among the input queues of
// the named downstream NFs (or returns Egress).
func (s *Sim) Connect(name string, route RouteFunc, downstream ...string) {
	nf := s.nfs[name]
	if nf == nil {
		panic(fmt.Sprintf("nfsim: Connect: unknown NF %q", name))
	}
	outs := make([]*Queue, len(downstream))
	for i, d := range downstream {
		dn := s.nfs[d]
		if dn == nil {
			panic(fmt.Sprintf("nfsim: Connect: unknown downstream NF %q", d))
		}
		outs[i] = dn.In()
	}
	nf.connect(route, outs)
}

// ConnectSource wires the traffic source: route selects among the input
// queues of the named NFs for each emitted packet.
func (s *Sim) ConnectSource(route RouteFunc, downstream ...string) {
	outs := make([]*Queue, len(downstream))
	for i, d := range downstream {
		dn := s.nfs[d]
		if dn == nil {
			panic(fmt.Sprintf("nfsim: ConnectSource: unknown NF %q", d))
		}
		outs[i] = dn.In()
	}
	s.srcRoute = route
	s.srcOuts = outs
}

// InjectInterrupt schedules a CPU interrupt: the named NF stalls for dur
// starting at t. Recorded as ground truth.
func (s *Sim) InjectInterrupt(name string, at simtime.Time, dur simtime.Duration, label string) {
	nf := s.nfs[name]
	if nf == nil {
		panic(fmt.Sprintf("nfsim: InjectInterrupt: unknown NF %q", name))
	}
	s.truth.Interrupts = append(s.truth.Interrupts, Interrupt{NF: name, At: at, Dur: dur, Label: label})
	s.eng.At(at, func() { nf.stall(at.Add(dur)) })
}

// InjectBug installs a slow path on the named NF. Recorded as ground truth.
func (s *Sim) InjectBug(name string, sp *SlowPath, label string) {
	nf := s.nfs[name]
	if nf == nil {
		panic(fmt.Sprintf("nfsim: InjectBug: unknown NF %q", name))
	}
	nf.setSlowPath(sp)
	s.truth.Bugs = append(s.truth.Bugs, Bug{NF: name, Label: label})
}

// LoadSchedule replays a traffic schedule through the source. Burst ground
// truth is extracted from the schedule's burst-tagged emissions.
func (s *Sim) LoadSchedule(sched *traffic.Schedule) {
	if s.srcRoute == nil || len(s.srcOuts) == 0 {
		panic("nfsim: LoadSchedule before ConnectSource")
	}
	bursts := make(map[int32]*Burst)
	for _, em := range sched.Emissions {
		if em.Burst >= 0 {
			b := bursts[em.Burst]
			if b == nil {
				b = &Burst{ID: em.Burst, Flow: em.Flow, At: em.At}
				bursts[em.Burst] = b
			}
			b.Count++
			if em.At < b.At {
				b.At = em.At
			}
		}
	}
	ids := make([]int32, 0, len(bursts))
	for id := range bursts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.truth.Bursts = append(s.truth.Bursts, *bursts[id])
	}
	emissions := sched.Emissions
	if len(emissions) == 0 {
		return
	}
	var replay func(i int)
	replay = func(i int) {
		// Emit every packet scheduled for this instant as one batch per
		// destination queue, like a paced generator draining its tx ring.
		t := emissions[i].At
		j := i
		for j < len(emissions) && emissions[j].At == t {
			j++
		}
		s.emit(emissions[i:j])
		if j < len(emissions) {
			s.eng.At(emissions[j].At, func() { replay(j) })
		}
	}
	s.eng.At(emissions[0].At, func() { replay(0) })
}

// emit creates packets for a group of same-instant emissions and transmits
// them to their routed queues.
func (s *Sim) emit(ems []traffic.Emission) {
	now := s.eng.Now()
	// Group per output queue to produce realistic batch write records.
	if len(s.emitGroups) < len(s.srcOuts) {
		s.emitGroups = make([][]*packet.Packet, len(s.srcOuts))
	}
	groups := s.emitGroups
	for i := range groups {
		groups[i] = groups[i][:0]
	}
	for _, em := range ems {
		p := &packet.Packet{
			ID:        s.nextID,
			Flow:      em.Flow,
			IPID:      s.nextIPID,
			Size:      em.Size,
			CreatedAt: now,
			Hops:      make([]packet.Hop, 0, 4),
			Burst:     em.Burst,
		}
		s.nextID++
		s.nextIPID++ // wraps at 65536 by uint16 arithmetic
		if s.keepAll {
			s.packets = append(s.packets, p)
		}
		out := 0
		if s.srcRoute != nil {
			out = s.srcRoute(p)
		}
		if out < 0 || out >= len(s.srcOuts) {
			out = 0
		}
		groups[out] = append(groups[out], p)
	}
	for out := range groups[:len(s.srcOuts)] {
		if len(groups[out]) > 0 {
			s.transmit(SourceName, now, s.srcOuts[out], groups[out])
		}
	}
}

// transmit enqueues a batch onto q, recording ground-truth hops, write
// records for the enqueued prefix, and drop records for the remainder.
// The ok/drop staging buffers are reused; hooks must not retain them.
func (s *Sim) transmit(from string, at simtime.Time, q *Queue, pkts []*packet.Packet) {
	ok := s.okBuf[:0]
	dropped := s.dropBuf[:0]
	for _, p := range pkts {
		if q.Enqueue(p) {
			p.Hops = append(p.Hops, packet.Hop{Node: q.owner, EnqueueAt: at})
			ok = append(ok, p)
		} else {
			p.Dropped = q.owner
			dropped = append(dropped, p)
		}
	}
	if len(ok) > 0 {
		s.hooks.BatchWrite(from, at, q, ok)
	}
	if len(dropped) > 0 {
		s.hooks.Drop(from, at, q, dropped)
	}
	s.okBuf, s.dropBuf = ok[:0], dropped[:0]
}

// deliver hands packets leaving the graph to the hooks.
func (s *Sim) deliver(nf string, at simtime.Time, pkts []*packet.Packet) {
	s.hooks.Deliver(nf, at, pkts)
}

// SampleQueues records the length of every NF input queue every step, for
// rendering the motivation figures. Call before Run.
func (s *Sim) SampleQueues(step simtime.Duration, until simtime.Time) {
	s.samplers = make(map[string][]QueueSample, len(s.nfs))
	s.sampleStep = step
	var tick func()
	tick = func() {
		now := s.eng.Now()
		for name, nf := range s.nfs {
			s.samplers[name] = append(s.samplers[name], QueueSample{At: now, Len: nf.In().Len()})
		}
		if now.Add(step) <= until {
			s.eng.At(now.Add(step), tick)
		}
	}
	s.eng.At(0, tick)
}

// QueueSamples returns the samples recorded for the named NF's input queue.
func (s *Sim) QueueSamples(name string) []QueueSample {
	if s.samplers == nil {
		return nil
	}
	return s.samplers[name]
}

// Run executes the simulation until the given time.
func (s *Sim) Run(until simtime.Time) { s.eng.Run(until) }

// FlowHashRoute returns a RouteFunc that picks among n outputs by flow
// hash — the flow-level load balancing of §6.1.
func FlowHashRoute(n int) RouteFunc {
	if n <= 0 {
		panic("nfsim: FlowHashRoute needs n > 0")
	}
	un := uint64(n)
	return func(p *packet.Packet) int { return int(p.Flow.Hash() % un) }
}

// WebElseRoute returns the Firewall routing of Figure 10: flows whose
// destination port matches the rule set go to output 0 (the Monitor side),
// everything else to output 1 (the VPN side).
func WebElseRoute(rulePorts ...uint16) RouteFunc {
	set := make(map[uint16]bool, len(rulePorts))
	for _, p := range rulePorts {
		set[p] = true
	}
	return func(p *packet.Packet) int {
		if set[p.Flow.DstPort] {
			return 0
		}
		return 1
	}
}
