package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		n, items, want int
	}{
		{0, 100, maxprocs}, // 0 = GOMAXPROCS
		{-3, 100, maxprocs},
		{4, 100, 4},
		{8, 3, 3}, // clamped to items
		{2, 0, 1}, // never below 1
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.n, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.items, got, c.want)
		}
	}
}

func TestDoCoversEveryItemExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		Do(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestDoZeroItems(t *testing.T) {
	called := false
	Do(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called with zero items")
	}
}

// TestDoSequentialOrder pins the workers<=1 contract: the inline loop visits
// items strictly in order, which the pipeline's determinism baseline
// (Workers=1) relies on.
func TestDoSequentialOrder(t *testing.T) {
	var got []int
	Do(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: got %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d items, want 5", len(got))
	}
}

// TestDoCtxCompletes: with a live context, DoCtx behaves exactly like Do —
// every item runs exactly once and no error is returned.
func TestDoCtxCompletes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 500
		counts := make([]atomic.Int32, n)
		if err := DoCtx(context.Background(), n, workers, func(i int) { counts[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, counts[i].Load())
			}
		}
	}
}

// TestDoCtxCancelSequential: a context cancelled partway through the
// sequential loop stops further items and surfaces the cause.
func TestDoCtxCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := DoCtx(ctx, 100, 1, func(i int) {
		ran++
		if i == 9 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d items, want 10 (claimed items finish, later ones never start)", ran)
	}
}

// TestDoCtxCancelParallel: cancelling mid-flight stops workers from
// claiming new items; in-flight calls complete and DoCtx returns the
// context error.
func TestDoCtxCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := DoCtx(ctx, 10000, 4, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("cancellation did not cut the run short (%d items ran)", n)
	}
}

// TestDoWorkersCtxCoversEveryItem: every index runs exactly once and every
// reported worker id is within [0, resolved workers).
func TestDoWorkersCtxCoversEveryItem(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 500
		counts := make([]atomic.Int32, n)
		var badWorker atomic.Int32
		max := Workers(workers, n)
		if err := DoWorkersCtx(context.Background(), n, workers, func(worker, i int) {
			if worker < 0 || worker >= max {
				badWorker.Store(int32(worker) + 1)
			}
			counts[i].Add(1)
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if w := badWorker.Load(); w != 0 {
			t.Fatalf("workers=%d: worker id %d out of range [0,%d)", workers, w-1, max)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, counts[i].Load())
			}
		}
	}
}

// TestDoWorkersCtxSequential: the workers<=1 path runs in index order on
// worker 0 with one ctx check per item — the semantics the diagnosis
// engine's sequential leg depends on for its cancellation tests.
func TestDoWorkersCtxSequential(t *testing.T) {
	var got []int
	if err := DoWorkersCtx(context.Background(), 5, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("sequential run reported worker %d", worker)
		}
		got = append(got, i)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d items, want 5", len(got))
	}
}

// TestDoWorkersCtxWorkerAffinity: a worker id is stable for the goroutine
// that reports it — two items observed by the same worker id never run
// concurrently. This is the property per-worker arenas rely on.
func TestDoWorkersCtxWorkerAffinity(t *testing.T) {
	const n, workers = 2000, 4
	max := Workers(workers, n)
	busy := make([]atomic.Int32, max)
	var overlap atomic.Int32
	err := DoWorkersCtx(context.Background(), n, workers, func(worker, i int) {
		if busy[worker].Add(1) != 1 {
			overlap.Store(1)
		}
		busy[worker].Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.Load() != 0 {
		t.Fatal("two items ran concurrently under one worker id")
	}
}

// TestDoWorkersCtxCancel: cancellation stops new claims; the error is the
// context's.
func TestDoWorkersCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := DoWorkersCtx(ctx, 10000, 4, func(worker, i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("cancellation did not cut the run short (%d items ran)", n)
	}
}

// TestDoCtxDelegates: DoCtx and DoWorkersCtx agree — same coverage, same
// zero-items behaviour.
func TestDoCtxDelegates(t *testing.T) {
	if err := DoWorkersCtx(context.Background(), 0, 4, func(worker, i int) {
		t.Fatal("ran an item of an empty set")
	}); err != nil {
		t.Fatal(err)
	}
}
