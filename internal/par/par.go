// Package par provides the bounded fan-out primitive the diagnosis
// pipeline's parallel stages share. Work items are claimed from an atomic
// counter so scheduling order never affects which goroutine computes which
// item; callers keep determinism by writing each result into a slot indexed
// by the item, never by completion order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n <= 0 means GOMAXPROCS, and the
// count never exceeds the number of items.
func Workers(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Do runs fn(i) for every i in [0, n) across at most workers goroutines.
// With workers <= 1 it runs inline, byte-for-byte the sequential loop. fn
// must be safe for concurrent invocation with distinct i; Do returns only
// after every call has finished, so results written to slot i of a
// preallocated slice are visible to the caller.
func Do(n, workers int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DoCtx is Do with cooperative cancellation: every worker checks ctx
// before claiming the next item, so a cancelled context stops the fan-out
// promptly — items already claimed finish (fn is never interrupted
// mid-call), unclaimed items are never started. Returns ctx.Err() when the
// run was cut short, nil when every item completed. Results for items that
// never ran are whatever the caller preallocated (zero values), so callers
// that return partial output must say so.
func DoCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
