// Package par provides the bounded fan-out primitives the diagnosis
// pipeline's parallel stages share. Work items are claimed from an atomic
// counter so scheduling order never affects which goroutine computes which
// item; callers keep determinism by writing each result into a slot indexed
// by the item, never by completion order.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n <= 0 means GOMAXPROCS, and the
// count never exceeds the number of items.
func Workers(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Do runs fn(i) for every i in [0, n) across at most workers goroutines.
// With workers <= 1 it runs inline, byte-for-byte the sequential loop. fn
// must be safe for concurrent invocation with distinct i; Do returns only
// after every call has finished, so results written to slot i of a
// preallocated slice are visible to the caller.
func Do(n, workers int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// DoCtx is Do with cooperative cancellation: every worker checks ctx
// before claiming the next item, so a cancelled context stops the fan-out
// promptly — items already claimed finish (fn is never interrupted
// mid-call), unclaimed items are never started. Returns ctx.Err() when the
// run was cut short, nil when every item completed. Results for items that
// never ran are whatever the caller preallocated (zero values), so callers
// that return partial output must say so.
func DoCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return DoWorkersCtx(ctx, n, workers, func(_, i int) { fn(i) })
}

// DoWorkersCtx is DoCtx with worker identity: fn receives (worker, i) where
// worker is a stable index in [0, Workers(workers, n)). A worker processes
// every item it claims on the same goroutine, so callers may keep
// per-worker mutable state (long-lived scratch arenas) indexed by the
// worker id without synchronization. The partitioned diagnosis scheduler
// passes whole victim partitions as items, so a partition is stolen whole
// — never split across workers mid-flight.
//
// Identity must never influence results, only reuse: output for a fixed
// input is required to be byte-identical for every workers value, which
// holds as long as fn(worker, i)'s observable effect depends only on i.
// With workers <= 1 the loop runs inline as worker 0, strictly in item
// order, with the same per-item ctx checks as the parallel path.
func DoWorkersCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
