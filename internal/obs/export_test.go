package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact exposition text for a small registry:
// one counter, one gauge, one plain histogram, and one labelled histogram.
// The format is what a Prometheus scraper parses, so it must not drift.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("microscope_diag_victims_total").Add(42)
	r.Gauge("microscope_store_journeys").Set(7)
	h := r.Histogram("microscope_diag_victim_ns")
	h.Observe(1 * time.Nanosecond)
	h.Observe(3 * time.Nanosecond)
	h.Observe(1000 * time.Nanosecond)
	lh := r.Histogram(`microscope_pipeline_stage_ns{stage="index"}`)
	lh.Observe(5 * time.Nanosecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE microscope_diag_victims_total counter
microscope_diag_victims_total 42
# TYPE microscope_store_journeys gauge
microscope_store_journeys 7
# TYPE microscope_diag_victim_ns histogram
microscope_diag_victim_ns_bucket{le="1"} 1
microscope_diag_victim_ns_bucket{le="2"} 1
microscope_diag_victim_ns_bucket{le="4"} 2
microscope_diag_victim_ns_bucket{le="8"} 2
microscope_diag_victim_ns_bucket{le="16"} 2
microscope_diag_victim_ns_bucket{le="32"} 2
microscope_diag_victim_ns_bucket{le="64"} 2
microscope_diag_victim_ns_bucket{le="128"} 2
microscope_diag_victim_ns_bucket{le="256"} 2
microscope_diag_victim_ns_bucket{le="512"} 2
microscope_diag_victim_ns_bucket{le="1024"} 3
`
	got := b.String()
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\n--- got ---\n%s\n--- want prefix ---\n%s", got, want)
	}
	for _, line := range []string{
		`microscope_diag_victim_ns_bucket{le="+Inf"} 3`,
		"microscope_diag_victim_ns_sum 1004",
		"microscope_diag_victim_ns_count 3",
		`# TYPE microscope_pipeline_stage_ns histogram`,
		`microscope_pipeline_stage_ns_bucket{stage="index",le="8"} 1`,
		`microscope_pipeline_stage_ns_bucket{stage="index",le="+Inf"} 1`,
		`microscope_pipeline_stage_ns_sum{stage="index"} 5`,
		`microscope_pipeline_stage_ns_count{stage="index"} 1`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}

	// Every non-comment line must be "name[{labels}] value".
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
}

// TestJSONSnapshot round-trips the snapshot through encoding/json and
// checks the cumulative bucket counts and span payload survive.
func TestJSONSnapshot(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(5)
	r.Gauge("g").Set(-3)
	h := r.Histogram("h_ns")
	h.Observe(1)
	h.Observe(100)
	r.Tracer().Record(Span{ID: 1, Parent: -1, Name: "pipeline", Kind: "run", Dur: time.Millisecond})

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, b.String())
	}
	if s.Counters["c_total"] != 5 || s.Gauges["g"] != -3 {
		t.Errorf("scalar metrics lost: %+v", s)
	}
	hs := s.Histograms["h_ns"]
	if hs.Count != 2 || hs.SumNS != 101 {
		t.Errorf("histogram summary lost: %+v", hs)
	}
	if len(hs.Buckets) != 2 || hs.Buckets[0].LE != 1 || hs.Buckets[0].Count != 1 || hs.Buckets[1].Count != 2 {
		t.Errorf("cumulative buckets wrong: %+v", hs.Buckets)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "pipeline" || s.SpansTotal != 1 {
		t.Errorf("spans lost: %+v", s.Spans)
	}
}
