package obs

import (
	"runtime"
	"testing"
)

func TestContentionProfilingToggle(t *testing.T) {
	defer DisableContentionProfiling()

	EnableContentionProfiling(0, 0) // zeros take the defaults
	if got := runtime.SetMutexProfileFraction(-1); got != DefaultMutexProfileFraction {
		t.Fatalf("mutex profile fraction = %d, want default %d", got, DefaultMutexProfileFraction)
	}

	EnableContentionProfiling(9, 250_000)
	if got := runtime.SetMutexProfileFraction(-1); got != 9 {
		t.Fatalf("mutex profile fraction = %d, want 9", got)
	}

	DisableContentionProfiling()
	if got := runtime.SetMutexProfileFraction(-1); got != 0 {
		t.Fatalf("mutex profile fraction after disable = %d, want 0", got)
	}
}
