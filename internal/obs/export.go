package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes the registry's metrics in Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets plus _sum and
// _count. Metric names may embed a label set (`name{k="v"}`); the le label
// is merged into it for bucket lines. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters, gauges, hists := r.sortedNames()
	cs := make([]*Counter, len(counters))
	for i, n := range counters {
		cs[i] = r.counters[n]
	}
	gs := make([]*Gauge, len(gauges))
	for i, n := range gauges {
		gs[i] = r.gauges[n]
	}
	hs := make([]*Histogram, len(hists))
	for i, n := range hists {
		hs[i] = r.hists[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	lastType := ""
	typeLine := func(name, typ string) {
		base := baseName(name)
		if base != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
			lastType = base
		}
	}
	for _, c := range cs {
		typeLine(c.name, "counter")
		fmt.Fprintf(&b, "%s %d\n", c.name, c.Value())
	}
	lastType = ""
	for _, g := range gs {
		typeLine(g.name, "gauge")
		fmt.Fprintf(&b, "%s %d\n", g.name, g.Value())
	}
	lastType = ""
	for _, h := range hs {
		typeLine(h.name, "histogram")
		var cum int64
		for i := 0; i < HistBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			// Skip all-zero leading buckets after the first to keep the
			// exposition small, but always emit a bucket once counts
			// begin and always emit the final bound.
			if cum == 0 && i < HistBuckets-1 {
				continue
			}
			fmt.Fprintf(&b, "%s %d\n", withLabel(h.name, "_bucket", fmt.Sprintf(`le="%d"`, BucketLE(i))), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(h.name, "_bucket", `le="+Inf"`), h.Count())
		fmt.Fprintf(&b, "%s %d\n", suffixName(h.name, "_sum"), h.SumNS())
		fmt.Fprintf(&b, "%s %d\n", suffixName(h.name, "_count"), h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// baseName strips a label suffix: `foo{k="v"}` -> `foo`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixName appends suffix to the metric name, before any label set:
// `foo{k="v"}` + `_sum` -> `foo_sum{k="v"}`.
func suffixName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// withLabel appends suffix to the base name and merges extra into the
// label set: `foo{k="v"}` + `_bucket` + `le="1"` -> `foo_bucket{k="v",le="1"}`.
func withLabel(name, suffix, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:len(name)-1] + "," + extra + "}"
	}
	return name + suffix + "{" + extra + "}"
}

// HistogramSnapshot is one histogram's JSON form. Buckets holds only the
// populated cells as cumulative counts.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumNS   int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram cell: Count observations at or
// below LE nanoseconds.
type BucketCount struct {
	LE    int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// Snapshot is the registry's full JSON-serializable state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []Span                       `json:"spans,omitempty"`
	SpansTotal uint64                       `json:"spans_total,omitempty"`
}

// TakeSnapshot captures every metric and the retained spans. On a nil
// registry it returns an empty snapshot.
func (r *Registry) TakeSnapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters, gauges, hists := r.sortedNames()
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for _, n := range counters {
			s.Counters[n] = r.counters[n].Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for _, n := range gauges {
			s.Gauges[n] = r.gauges[n].Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for _, n := range hists {
			h := r.hists[n]
			hs := HistogramSnapshot{Count: h.Count(), SumNS: h.SumNS()}
			var cum int64
			for i := 0; i < HistBuckets; i++ {
				if v := h.buckets[i].Load(); v > 0 {
					cum += v
					hs.Buckets = append(hs.Buckets, BucketCount{LE: BucketLE(i), Count: cum})
				}
			}
			s.Histograms[n] = hs
		}
	}
	tracer := r.tracer
	r.mu.Unlock()
	s.Spans = tracer.Snapshot()
	s.SpansTotal = tracer.Total()
	return s
}

// WriteJSON writes the snapshot as indented JSON. A nil registry writes an
// empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}
