package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerEndpoints drives the introspection surface the way mslive
// serves it: /metrics must be valid Prometheus text, /healthz must flip to
// 503 when the health callback reports degradation, and /debug/pprof must
// answer.
func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("microscope_monitor_records_total").Add(9)
	degraded := false
	srv := httptest.NewServer(Handler(r, func() (bool, string) {
		if degraded {
			return false, "health: degraded trace"
		}
		return true, "health: clean"
	}))
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE microscope_monitor_records_total counter\nmicroscope_monitor_records_total 9\n") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, body, hdr = get("/metrics.json")
	if code != http.StatusOK || hdr.Get("Content-Type") != "application/json" {
		t.Errorf("/metrics.json status=%d content-type=%q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `"microscope_monitor_records_total": 9`) {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "health: clean") {
		t.Errorf("healthy /healthz = %d %q", code, body)
	}
	degraded = true
	code, body, _ = get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Errorf("degraded /healthz = %d %q", code, body)
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	// nil registry and nil health func still serve.
	srv2 := httptest.NewServer(Handler(nil, nil))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-registry /metrics: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(srv2.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-health /healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}
