// Package obs is Microscope's dependency-free observability plane:
// sharded lock-free counters, gauges, fixed-bucket power-of-two latency
// histograms, and a bounded ring-buffer span tracer, with Prometheus text
// and JSON snapshot exporters.
//
// The design goal is that instrumentation costs nothing when disabled and
// a few atomic operations when enabled. Every handle type (*Counter,
// *Gauge, *Histogram, *Tracer) and *Registry itself is nil-safe: a nil
// receiver makes every method a no-op, so instrumented code never branches
// on "is observability on" — it just calls through a possibly-nil handle.
// Handles are resolved once per run (registration takes a mutex), then the
// hot path is a nil check plus an atomic add.
//
// A process-wide default registry (Default / SetDefault) lets deep call
// sites — the experiments harness, engines created inside library code —
// share one registry without plumbing it through every config. It is nil
// until SetDefault is called, which is the disabled state.
package obs

import (
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// defaultReg is the process-wide registry; nil means disabled.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when observability is
// globally disabled (the initial state).
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r as the process-wide registry. Passing nil disables
// global observability again.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Or resolves an explicitly configured registry against the process-wide
// default: cfg wins when non-nil, else Default() (which may be nil).
func Or(cfg *Registry) *Registry {
	if cfg != nil {
		return cfg
	}
	return Default()
}

// Registry owns a namespace of metrics plus one span tracer. Metric
// registration (Counter/Gauge/Histogram by name) is mutex-guarded and
// idempotent; the returned handles are lock-free. A nil *Registry is the
// disabled registry: every method returns a nil handle whose methods are
// no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
	// labels, when non-empty, is a rendered Prometheus label list (e.g.
	// `tenant="acme"`) merged into every metric name at registration —
	// the per-tenant dimension the serving tier multiplexes on.
	labels string
}

// New creates an empty registry with a default-capacity span tracer.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(DefaultSpanCap),
	}
}

// NewLabeled creates a registry that stamps every metric registered
// through it with the given label pairs (key, value, key, value, ...).
// Instrumented code keeps using plain metric names; a labeled registry
// turns `microscope_monitor_records_total` into
// `microscope_monitor_records_total{tenant="acme"}`, and names that
// already carry labels get the pairs merged in front. This is how one
// process hosting many tenants keeps their series apart without threading
// a label argument through every instrument site.
func NewLabeled(kv ...string) *Registry {
	r := New()
	r.labels = renderLabels(kv)
	return r
}

// Labels returns the registry's rendered label list ("" when unlabeled or
// nil).
func (r *Registry) Labels() string {
	if r == nil {
		return ""
	}
	return r.labels
}

// renderLabels formats pairs as a Prometheus label list body. Values are
// escaped per the exposition format (backslash, quote, newline). An odd
// trailing key is ignored.
func renderLabels(kv []string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	return b.String()
}

// decorate merges the registry's labels into a metric name. Called with
// the registration mutex NOT required (pure function of the name).
func (r *Registry) decorate(name string) string {
	if r.labels == "" {
		return name
	}
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i+1] + r.labels + "," + name[i+1:]
	}
	return name + "{" + r.labels + "}"
}

// Counter returns the named counter, registering it on first use. Names
// may carry a Prometheus label suffix, e.g.
// `microscope_pipeline_stage_ns{stage="index"}`; the label set is treated
// as part of the identity. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = r.decorate(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = newCounter(name)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.decorate(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	name = r.decorate(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's span tracer, or nil on a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// counterNames returns registered counter names, sorted.
func (r *Registry) sortedNames() (counters, gauges, hists []string) {
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// cell is one cache-line-padded counter shard. The padding keeps
// concurrent writers on different shards from false-sharing one line.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. Adds hash to one
// of GOMAXPROCS-scaled shards so concurrent writers rarely contend on the
// same cache line; Value sums the shards. A nil *Counter is a no-op.
type Counter struct {
	name   string
	mask   uint32
	shards []cell
}

func newCounter(name string) *Counter {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return &Counter{name: name, mask: uint32(n - 1), shards: make([]cell, n)}
}

// shardIdx derives a shard hint from the address of a stack local: cheap,
// allocation-free, and strongly correlated with the calling goroutine (and
// therefore with the running P), which is all the distribution sharding
// needs.
func shardIdx() uint32 {
	var b byte
	return uint32(uintptr(unsafe.Pointer(&b)) >> 10)
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIdx()&c.mask].v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Name returns the registered name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a settable instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name ("" on nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// HistBuckets is the fixed bucket count: bucket i covers values up to and
// including 2^i nanoseconds, so 40 buckets span 1 ns to ~9 minutes.
// Values beyond the last bound land in an overflow cell reported only
// under le="+Inf".
const HistBuckets = 40

// Histogram is a fixed-bucket power-of-two latency histogram. Observing is
// three atomic adds and zero allocations. A nil *Histogram is a no-op.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	over    atomic.Int64 // observations beyond the last bucket bound
	buckets [HistBuckets]atomic.Int64
}

// bucketOf returns the index of the smallest bucket bound >= n, or
// HistBuckets when n exceeds every bound.
func bucketOf(n int64) int {
	if n <= 1 {
		return 0
	}
	b := bits.Len64(uint64(n - 1)) // smallest b with n <= 1<<b
	if b >= HistBuckets {
		return HistBuckets
	}
	return b
}

// BucketLE returns bucket i's inclusive upper bound in nanoseconds.
func BucketLE(i int) int64 { return 1 << uint(i) }

// Observe records one duration. No-op on a nil histogram; negative
// durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(n)
	if b := bucketOf(n); b < HistBuckets {
		h.buckets[b].Add(1)
	} else {
		h.over.Add(1)
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNS returns the total observed nanoseconds (0 on nil).
func (h *Histogram) SumNS() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name returns the registered name ("" on nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}
