package obs

import "runtime"

// Contention-profiling defaults: sample 1/5 of mutex contention events
// and every blocking event that stalls ≥100µs. Cheap enough for an
// always-on daemon, dense enough that a hot lock shows up in minutes.
const (
	DefaultMutexProfileFraction = 5
	DefaultBlockProfileRateNs   = 100_000
)

// EnableContentionProfiling turns on the runtime's mutex and block
// profilers so the /debug/pprof/mutex and /debug/pprof/block endpoints
// served by Handler carry real samples. mutexFraction is passed to
// runtime.SetMutexProfileFraction (sample 1/n contention events);
// blockRateNs to runtime.SetBlockProfileRate (sample blocking events
// stalling at least that many nanoseconds). Zero or negative values take
// the defaults above. Returns the previous mutex fraction, as the
// runtime reports it.
func EnableContentionProfiling(mutexFraction, blockRateNs int) int {
	if mutexFraction <= 0 {
		mutexFraction = DefaultMutexProfileFraction
	}
	if blockRateNs <= 0 {
		blockRateNs = DefaultBlockProfileRateNs
	}
	prev := runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNs)
	return prev
}

// DisableContentionProfiling switches both profilers back off.
func DisableContentionProfiling() {
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
}
