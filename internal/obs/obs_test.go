package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent is the registry's concurrency contract, run under
// -race by `make race`: parallel increments from many goroutines must sum
// exactly, regardless of which shards the writers land on.
func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("microscope_test_total")
	const goroutines, perG = 16, 20000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// Registration is idempotent: the same name returns the same counter.
	if r.Counter("microscope_test_total") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

// TestGaugeAndHistogramConcurrent exercises the other two metric kinds
// under contention.
func TestGaugeAndHistogramConcurrent(t *testing.T) {
	r := New()
	g := r.Gauge("microscope_test_gauge")
	h := r.Histogram("microscope_test_ns")
	var wg sync.WaitGroup
	const goroutines, perG = 8, 5000
	wg.Add(goroutines)
	for w := 0; w < goroutines; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				g.Add(1)
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if g.Value() != goroutines*perG {
		t.Errorf("gauge = %d, want %d", g.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
}

// TestHistogramBucketBoundaries pins the power-of-two bucket layout:
// every value lands in the smallest bucket whose inclusive bound covers
// it, boundaries included.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {1, 0}, // bucket 0: le=1
		{2, 1},         // le=2
		{3, 2}, {4, 2}, // le=4
		{5, 3}, {8, 3}, // le=8
		{9, 4}, {16, 4}, // le=16
		{1023, 10}, {1024, 10}, // le=1024
		{1025, 11},    // le=2048
		{1 << 30, 30}, // le=2^30 (~1.07s)
		{1<<30 + 1, 31},
		{1 << 39, 39},            // last real bucket
		{1<<39 + 1, HistBuckets}, // overflow
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.bucket)
		}
		if c.bucket < HistBuckets && c.ns > BucketLE(c.bucket) {
			t.Errorf("value %d exceeds its bucket bound %d", c.ns, BucketLE(c.bucket))
		}
	}

	// Overflow observations appear in count/sum but only the +Inf bucket.
	var h Histogram
	h.Observe(time.Duration(1<<39+1) * time.Nanosecond)
	if h.Count() != 1 || h.over.Load() != 1 {
		t.Errorf("overflow bookkeeping: count=%d over=%d", h.Count(), h.over.Load())
	}
	// Negative durations clamp to zero instead of corrupting the sum.
	h.Observe(-time.Second)
	if h.SumNS() != 1<<39+1 {
		t.Errorf("negative observation changed sum: %d", h.SumNS())
	}
}

// TestTracerRing checks the bounded ring: the newest spans win, oldest
// first in snapshots, and the total keeps counting past the capacity.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Span{ID: int32(i), Parent: -1, Name: "s", Kind: "stage"})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, s := range got {
		if want := int32(3 + i); s.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d (oldest-first)", i, s.ID, want)
		}
	}
	if tr.Total() != 7 {
		t.Errorf("total = %d, want 7", tr.Total())
	}
	if a, b := tr.NewID(), tr.NewID(); b != a+1 {
		t.Errorf("NewID not monotonic: %d then %d", a, b)
	}
}

// TestNilSafety is the disabled-observability contract: every method on a
// nil registry, handle, or tracer is a no-op and never panics.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	tr := r.Tracer()
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Add(1)
	c.Inc()
	g.Set(3)
	g.Add(1)
	h.Observe(time.Second)
	tr.Record(Span{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.SumNS() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if tr.Snapshot() != nil || tr.Total() != 0 || tr.NewID() != 0 {
		t.Fatal("nil tracer must read as empty")
	}
	if c.Name() != "" || g.Name() != "" || h.Name() != "" {
		t.Fatal("nil handles must have empty names")
	}
	if s := r.TakeSnapshot(); len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Fatal(err)
	}
	if Or(nil) != Default() {
		t.Fatal("Or(nil) must fall back to the default registry")
	}
	reg := New()
	if Or(reg) != reg {
		t.Fatal("Or must prefer the explicit registry")
	}
}

// TestDefaultRegistry checks the process-wide default switch.
func TestDefaultRegistry(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	reg := New()
	SetDefault(reg)
	if Default() != reg {
		t.Fatal("SetDefault did not install the registry")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not disable the default")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkObsDisabled measures the disabled hot path: a nil counter add,
// a nil histogram observe, and a nil tracer record — the per-event cost of
// instrumentation when no registry is attached. This is the `make
// obs-smoke` overhead criterion.
func BenchmarkObsDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("x")
	tr := r.Tracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(1)
		tr.Record(Span{})
	}
}

// BenchmarkObsCounter measures the enabled counter hot path.
func BenchmarkObsCounter(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

// BenchmarkObsHistogram measures the enabled histogram hot path.
func BenchmarkObsHistogram(b *testing.B) {
	h := New().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// TestLabeledRegistry checks the per-tenant label dimension: a labeled
// registry decorates every metric name with its label pairs, merging into
// existing label sets, and the exposition formats stay well-formed.
func TestLabeledRegistry(t *testing.T) {
	r := NewLabeled("tenant", "acme")
	if got := r.Labels(); got != `tenant="acme"` {
		t.Fatalf("Labels() = %q", got)
	}
	r.Counter("microscope_monitor_records_total").Add(3)
	r.Gauge(`microscope_pipeline_stage_ns{stage="index"}`).Set(7)
	r.Histogram("microscope_window_ns").Observe(time.Microsecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`microscope_monitor_records_total{tenant="acme"} 3`,
		`microscope_pipeline_stage_ns{tenant="acme",stage="index"} 7`,
		`microscope_window_ns_count{tenant="acme"} 1`,
		`microscope_window_ns_bucket{tenant="acme",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Same plain name, two labeled registries: independent series.
	r2 := NewLabeled("tenant", "beta")
	r2.Counter("microscope_monitor_records_total").Add(5)
	if v := r.Counter("microscope_monitor_records_total").Value(); v != 3 {
		t.Errorf("label bleed: acme counter = %d, want 3", v)
	}

	// Label values are escaped, not trusted.
	re := NewLabeled("tenant", `ev"il\`+"\n")
	re.Counter("x").Inc()
	var eb strings.Builder
	if err := re.WritePrometheus(&eb); err != nil {
		t.Fatal(err)
	}
	if want := `x{tenant="ev\"il\\\n"} 1`; !strings.Contains(eb.String(), want) {
		t.Errorf("escaping: got %q, want contains %q", eb.String(), want)
	}

	// An unlabeled registry is unchanged.
	if New().Labels() != "" || (*Registry)(nil).Labels() != "" {
		t.Error("unlabeled/nil registry must report empty labels")
	}
}
