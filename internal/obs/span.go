package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCap is the default tracer ring capacity. The tracer keeps the
// most recent spans; the pipeline's stage tree plus a generous tail of
// per-victim spans fit comfortably.
const DefaultSpanCap = 4096

// Span is one timed operation: a pipeline stage, a per-victim diagnosis, an
// AutoFocus phase, or a monitor window. Spans form trees through Parent
// (an ID within the same producer; -1 marks a root).
type Span struct {
	// ID identifies the span within its producer's run.
	ID int32 `json:"id"`
	// Parent is the enclosing span's ID, -1 for roots.
	Parent int32 `json:"parent"`
	// Name names the operation ("diagnose", a component, a phase).
	Name string `json:"name"`
	// Kind classifies it: "run", "stage", "victim", "phase", "window".
	Kind string `json:"kind"`
	// Start is the wall-clock begin time.
	Start time.Time `json:"start"`
	// Dur is the elapsed time.
	Dur time.Duration `json:"dur_ns"`
}

// Tracer is a bounded ring buffer of spans: recording never allocates and
// never grows; the oldest spans are overwritten once the ring is full. A
// nil *Tracer is a no-op.
type Tracer struct {
	nextID atomic.Int32

	mu    sync.Mutex
	buf   []Span
	total uint64 // spans ever recorded
}

// NewTracer creates a tracer holding at most capacity spans (a
// non-positive capacity selects DefaultSpanCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// NewID allocates a fresh span ID (0 on a nil tracer).
func (t *Tracer) NewID() int32 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Record stores one finished span, overwriting the oldest when full.
// No-op on a nil tracer.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[int(t.total)%cap(t.buf)] = s
	}
	t.total++
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first (nil on a nil tracer).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	// Full ring: the slot the next write would take is the oldest span.
	head := int(t.total) % cap(t.buf)
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// Total returns how many spans were ever recorded, including overwritten
// ones (0 on a nil tracer).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
