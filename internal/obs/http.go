package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// HealthFunc reports liveness for /healthz: ok=false yields a 503 so
// orchestrators see trace-quality degradation, and detail is the body
// either way (e.g. a tracestore.Health one-liner).
type HealthFunc func() (ok bool, detail string)

// Handler serves the runtime introspection surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the JSON snapshot (metrics + retained spans)
//	/healthz       200/503 per the supplied HealthFunc
//	/debug/pprof/  the standard Go profiling endpoints
//
// r may be nil (endpoints serve empty metrics) and health may be nil
// (healthz always reports ok).
func Handler(r *Registry, health HealthFunc) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, detail := true, "ok"
		if health != nil {
			ok, detail = health()
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, detail)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
