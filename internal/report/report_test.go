package report

import (
	"strings"
	"testing"
)

func TestSeriesAddRender(t *testing.T) {
	s := &Series{Name: "queue", XLabel: "t", YLabel: "len"}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("len: %d", s.Len())
	}
	out := s.Render()
	if !strings.Contains(out, "# queue") || !strings.Contains(out, "10") {
		t.Errorf("render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // two header lines + two points
		t.Errorf("lines: %d", len(lines))
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := &Series{}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	d := s.Downsample(3)
	// indices 0, 3, 6, 9.
	if d.Len() != 4 {
		t.Fatalf("downsampled: %d", d.Len())
	}
	if d.X[3] != 9 {
		t.Errorf("last point: %v", d.X[3])
	}
	// k=1 and empty return the same series.
	if s.Downsample(1) != s {
		t.Error("k=1 should be identity")
	}
	empty := &Series{}
	if empty.Downsample(5).Len() != 0 {
		t.Error("empty downsample")
	}
	// Last point always included even when not on stride.
	s2 := &Series{}
	for i := 0; i < 11; i++ {
		s2.Add(float64(i), 0)
	}
	d2 := s2.Downsample(3) // 0,3,6,9 + last(10)
	if d2.Len() != 5 || d2.X[4] != 10 {
		t.Errorf("stride tail: %v", d2.X)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		Title: "Demo",
		Cols:  []string{"name", "value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("muchlongername", "2")
	out := tbl.Render()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	// Aligned: "value" column starts at the same offset in both rows.
	off1 := strings.Index(lines[3], "1")
	off2 := strings.Index(lines[4], "2")
	if off1 != off2 {
		t.Errorf("misaligned: %d vs %d\n%s", off1, off2, out)
	}
}

func TestPctAndF(t *testing.T) {
	if Pct(0.897) != "89.7%" {
		t.Errorf("Pct: %q", Pct(0.897))
	}
	if F(0.000123456) != "0.000123" {
		t.Errorf("F: %q", F(0.000123456))
	}
}
