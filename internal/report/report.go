// Package report renders experiment output as the text tables and series
// the paper's figures and tables contain. The benchmarks and the msbench
// tool print these; EXPERIMENTS.md records them.
package report

import (
	"fmt"
	"strings"
)

// Series is one plottable line: the rows/series of a paper figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Render prints the series as two aligned columns.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# %-14s %s\n", s.Name, s.XLabel, s.YLabel)
	for i := range s.X {
		fmt.Fprintf(&b, "%-16.6g %.6g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Downsample returns a copy keeping every k-th point (k>=1), always
// including the last point. It keeps rendered output readable for dense
// time series.
func (s *Series) Downsample(k int) *Series {
	if k <= 1 || s.Len() == 0 {
		return s
	}
	out := &Series{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
	for i := 0; i < s.Len(); i += k {
		out.Add(s.X[i], s.Y[i])
	}
	if last := s.Len() - 1; last%k != 0 {
		out.Add(s.X[last], s.Y[last])
	}
	return out
}

// Table is a titled grid.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction as "12.3%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.3g", v) }
