package online

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/leakcheck"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// monitoredRun simulates a chain and returns the trace plus meta.
func monitoredRun(t *testing.T, interruptsAt []simtime.Time) *collector.Trace {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 5,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
	)
	iv := simtime.MPPS(0.4).Interval()
	var ems []traffic.Emission
	i := 0
	for tt := simtime.Time(0); tt < simtime.Time(500*simtime.Millisecond); tt = tt.Add(iv) {
		ems = append(ems, traffic.Emission{
			At: tt,
			Flow: packet.FiveTuple{
				SrcIP: packet.IPFromOctets(10, 0, 0, byte(i%50)), DstIP: packet.IPFromOctets(23, 0, 0, 1),
				SrcPort: uint16(1024 + i%50), DstPort: 80, Proto: packet.ProtoTCP,
			},
			Size: 64, Burst: -1,
		})
		i++
	}
	sim.LoadSchedule(&traffic.Schedule{Emissions: ems})
	for _, at := range interruptsAt {
		sim.InjectInterrupt("fw1", at, 900*simtime.Microsecond, "mon")
	}
	sim.Run(simtime.Time(600 * simtime.Millisecond))
	return col.Trace(collector.MetaForChain(sim, []string{"nat1", "fw1"}))
}

func TestMonitorAlertsOnInterrupts(t *testing.T) {
	leakcheck.Check(t)
	tr := monitoredRun(t, []simtime.Time{
		simtime.Time(150 * simtime.Millisecond),
		simtime.Time(400 * simtime.Millisecond),
	})
	m := New(tr.Meta, Config{})
	// Feed in chunks like a drain loop would.
	var alerts []Alert
	const chunk = 5000
	for i := 0; i < len(tr.Records); i += chunk {
		end := i + chunk
		if end > len(tr.Records) {
			end = len(tr.Records)
		}
		alerts = append(alerts, m.Feed(tr.Records[i:end])...)
	}
	alerts = append(alerts, m.Flush()...)

	fw := 0
	for _, a := range alerts {
		if a.Comp == "fw1" && a.Kind == core.CulpritLocalProcessing {
			fw++
		}
		if a.Score <= 0 || a.Victims <= 0 {
			t.Errorf("degenerate alert: %v", a)
		}
	}
	if fw < 2 {
		t.Errorf("expected alerts for both interrupts, got %d fw1 alerts: %v", fw, alerts)
	}
	// Hold-off keeps each episode to one alert.
	if fw > 4 {
		t.Errorf("episodes over-alerted: %d: %v", fw, alerts)
	}
	st := m.Stats()
	if st.Windows < 4 || st.Records != len(tr.Records) {
		t.Errorf("stats: %+v", st)
	}
}

func TestMonitorQuietStream(t *testing.T) {
	tr := monitoredRun(t, nil)
	m := New(tr.Meta, Config{})
	alerts := m.Feed(tr.Records)
	alerts = append(alerts, m.Flush()...)
	if len(alerts) != 0 {
		t.Errorf("quiet stream raised %d alerts: %v", len(alerts), alerts)
	}
}

func TestMonitorAlertString(t *testing.T) {
	a := Alert{WindowEnd: 100, Comp: "fw1", Kind: core.CulpritLocalProcessing, Score: 42, Victims: 3, Onset: 50}
	s := a.String()
	for _, want := range []string{"fw1", "processing", "42", "victims=3"} {
		if !contains(s, want) {
			t.Errorf("alert string missing %q: %s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestMonitorEmptyFlush(t *testing.T) {
	m := New(collector.Meta{MaxBatch: 32}, Config{})
	if got := m.Flush(); got != nil {
		t.Errorf("empty flush: %v", got)
	}
}

// TestMonitorToleratesLateRecords shuffles bounded lateness into the feed:
// the monitor must re-sort analysable records, drop only those behind an
// already-diagnosed window, and still alert on the real interrupt.
func TestMonitorToleratesLateRecords(t *testing.T) {
	tr := monitoredRun(t, []simtime.Time{simtime.Time(150 * simtime.Millisecond)})
	// Swap adjacent records to simulate cross-core drain interleaving.
	recs := append([]collector.BatchRecord(nil), tr.Records...)
	for i := 1; i < len(recs); i += 7 {
		recs[i-1], recs[i] = recs[i], recs[i-1]
	}
	m := New(tr.Meta, Config{})
	var alerts []Alert
	const chunk = 5000
	for i := 0; i < len(recs); i += chunk {
		end := i + chunk
		if end > len(recs) {
			end = len(recs)
		}
		alerts = append(alerts, m.Feed(recs[i:end])...)
	}
	alerts = append(alerts, m.Flush()...)
	if m.Stats().LateAccepted == 0 {
		t.Fatalf("no late records re-sorted: %+v", m.Stats())
	}
	found := false
	for _, a := range alerts {
		if a.Comp == "fw1" && a.Kind == core.CulpritLocalProcessing {
			found = true
			if a.Health.Records == 0 {
				t.Fatalf("alert carries empty health: %+v", a.Health)
			}
		}
	}
	if !found {
		t.Fatalf("interrupt not alerted under late delivery: %v", alerts)
	}
}

// TestWindowBoundaryRecord: a record timestamped exactly at a window end
// belongs to the window it closes (flushWindow's cut predicate is
// At > end), so Feed must buffer it before flushing — never flush the
// window out from under it and strand it in the next one.
func TestWindowBoundaryRecord(t *testing.T) {
	w := simtime.Duration(100 * simtime.Microsecond)
	m := New(collector.Meta{MaxBatch: 32}, Config{Window: w, Overlap: 1})
	m.Feed([]collector.BatchRecord{
		{Comp: "nf1", At: simtime.Time(w) / 2, Dir: collector.DirRead, IPIDs: []uint16{1}},
		{Comp: "nf1", At: simtime.Time(w), Dir: collector.DirRead, IPIDs: []uint16{2}},
	})
	if st := m.Stats(); st.Windows != 0 {
		t.Fatalf("boundary record flushed its own window early: %+v", st)
	}
	// The first record strictly past the boundary closes the window, with
	// the boundary record inside it.
	m.Feed([]collector.BatchRecord{
		{Comp: "nf1", At: simtime.Time(w) + 1, Dir: collector.DirRead, IPIDs: []uint16{3}},
	})
	if st := m.Stats(); st.Windows != 1 {
		t.Fatalf("strictly-later record did not close the window: %+v", st)
	}
	if h, ok := m.Health(); !ok || h.Records != 2 {
		t.Fatalf("closing window analysed %d records (ok=%v), want 2 — boundary record excluded", h.Records, ok)
	}
}

// TestWatermarkResyncAfterGap: a stream gap longer than MaxLookahead must
// not poison the monitor forever. The guard drops the first beyond-horizon
// records — indistinguishable from corruption — but once ResyncAfter
// mutually-consistent timestamps arrive in a row, the watermark jumps
// forward and the stream flows again. Lone corrupt timestamps still die at
// the guard, and any in-horizon record resets the run.
func TestWatermarkResyncAfterGap(t *testing.T) {
	w := simtime.Duration(100 * simtime.Microsecond)
	m := New(collector.Meta{MaxBatch: 32}, Config{
		Window:       w,
		Overlap:      w / 5,
		MaxLookahead: 4 * w,
		ResyncAfter:  5,
		Resilience:   resilience.Config{ContainPanics: true},
	})
	rec := func(i int, at simtime.Time) collector.BatchRecord {
		return collector.BatchRecord{Comp: "nf1", At: at, Dir: collector.DirRead, IPIDs: []uint16{uint16(i)}}
	}
	var recs []collector.BatchRecord
	for i := 0; i < 20; i++ {
		recs = append(recs, rec(i, simtime.Time(i)*simtime.Time(w)/10))
	}
	m.Feed(recs)
	if st := m.Stats(); st.ImplausibleDropped != 0 {
		t.Fatalf("clean prefix tripped the plausibility guard: %+v", st)
	}
	// A lone corrupt far-future timestamp is dropped, no resync...
	m.Feed([]collector.BatchRecord{rec(100, simtime.Time(99*w))})
	if st := m.Stats(); st.ImplausibleDropped != 1 || st.WatermarkResyncs != 0 {
		t.Fatalf("lone corrupt timestamp not dropped cleanly: %+v", st)
	}
	// ...and the next in-horizon record resets the consistency run, so the
	// lone corruption cannot count toward the resumed stream's run below
	// even though it happens to land near it.
	m.Feed([]collector.BatchRecord{rec(101, simtime.Time(2*w)+1)})
	// The stream resumes 100 windows out — far beyond MaxLookahead. The
	// first ResyncAfter-1 resumed records are still dropped; the run's
	// completing record is accepted, the watermark jumps, and everything
	// after flows normally.
	gap := simtime.Time(100 * w)
	var resumed []collector.BatchRecord
	for i := 0; i < 10; i++ {
		resumed = append(resumed, rec(200+i, gap+simtime.Time(i)*simtime.Time(w)/10))
	}
	before := m.Stats().Records
	m.Feed(resumed)
	st := m.Stats()
	if st.WatermarkResyncs != 1 {
		t.Fatalf("gap did not resync the watermark: %+v", st)
	}
	// 1 lone corrupt + the 4 run records before the resync completed.
	if st.ImplausibleDropped != 5 {
		t.Fatalf("implausible drops = %d, want 5: %+v", st.ImplausibleDropped, st)
	}
	if got := st.Records - before; got != 6 {
		t.Fatalf("post-gap records accepted = %d, want 6 — the stream is still poisoned: %+v", got, st)
	}
}

// TestMonitorIncremental: the incremental monitor must detect the same
// interrupt episodes the batch monitor does over the same feed, while the
// streaming index tracks every flush (including gaps) and its seal-time
// health counters stay monotone.
func TestMonitorIncremental(t *testing.T) {
	leakcheck.Check(t)
	tr := monitoredRun(t, []simtime.Time{
		simtime.Time(150 * simtime.Millisecond),
		simtime.Time(400 * simtime.Millisecond),
	})
	run := func(incremental bool) ([]Alert, Stats) {
		m := New(tr.Meta, Config{Incremental: incremental})
		var alerts []Alert
		const chunk = 5000
		for i := 0; i < len(tr.Records); i += chunk {
			end := i + chunk
			if end > len(tr.Records) {
				end = len(tr.Records)
			}
			alerts = append(alerts, m.Feed(tr.Records[i:end])...)
		}
		alerts = append(alerts, m.Flush()...)
		if incremental {
			st, ok := m.StreamStats()
			if !ok {
				t.Fatal("incremental monitor has no stream stats")
			}
			if st.Records == 0 || st.SealedSegments == 0 {
				t.Fatalf("stream never ingested: %+v", st)
			}
			if st.RetainedSegments > 8 {
				t.Fatalf("eviction not keeping pace: %+v", st)
			}
		} else if _, ok := m.StreamStats(); ok {
			t.Fatal("batch monitor reports stream stats")
		}
		return alerts, m.Stats()
	}
	countFW := func(alerts []Alert) int {
		n := 0
		for _, a := range alerts {
			if a.Comp == "fw1" && a.Kind == core.CulpritLocalProcessing {
				n++
			}
		}
		return n
	}
	ba, bs := run(false)
	ia, is := run(true)
	if got, want := countFW(ia), countFW(ba); got != want {
		t.Errorf("incremental found %d fw1 episodes, batch found %d\nincremental: %v\nbatch: %v", got, want, ia, ba)
	}
	if is.Windows != bs.Windows || is.Records != bs.Records {
		t.Errorf("ingest accounting diverged: incremental %+v, batch %+v", is, bs)
	}
	// The batch path re-reconstructs the overlap every window and inflates
	// unmatched counts; the stream seals each record once, so its total
	// can only be lower or equal.
	if is.Unmatched > bs.Unmatched {
		t.Errorf("seal-once unmatched %d exceeds batch double-counted %d", is.Unmatched, bs.Unmatched)
	}
}

// TestMonitorIncrementalMonotoneCounters: Unmatched/Quarantined come from
// the stream's seal-time totals in incremental mode, so they stay monotone
// across watermark resyncs (the batch path's per-window += could replay
// overlap damage after a resync jump).
func TestMonitorIncrementalMonotoneCounters(t *testing.T) {
	w := simtime.Duration(100 * simtime.Microsecond)
	m := New(collector.Meta{
		Components: []collector.ComponentMeta{
			{Name: "src", Kind: "source"},
			{Name: "nf1", Kind: "nf", PeakRate: simtime.MPPS(1), Egress: true},
		},
		Edges:    []collector.Edge{{From: "src", To: "nf1"}},
		MaxBatch: 32,
	}, Config{
		Window:       w,
		Overlap:      w / 5,
		MaxLookahead: 4 * w,
		ResyncAfter:  2,
		Incremental:  true,
	})
	// Each burst leaves one unmatched read (dequeue IPID matches no
	// arrival), straddling flush boundaries via the overlap.
	burst := func(at simtime.Time, id uint16) []collector.BatchRecord {
		return []collector.BatchRecord{
			{Comp: "src", Queue: "nf1.in", At: at, IPIDs: []uint16{id}, Dir: collector.DirWrite},
			{Comp: "nf1", At: at + 10, IPIDs: []uint16{id + 1000}, Dir: collector.DirRead},
		}
	}
	prev := 0
	check := func() {
		um := m.Stats().Unmatched
		if um < prev {
			t.Fatalf("Unmatched went backwards: %d -> %d", prev, um)
		}
		prev = um
	}
	for i := 0; i < 6; i++ {
		m.Feed(burst(simtime.Time(i)*simtime.Time(w)+simtime.Time(w)/2, uint16(i+1)))
		check()
	}
	// Resync jump: the stream gap exceeds MaxLookahead; after ResyncAfter
	// consistent records the watermark leaps. Counters must not replay.
	far := simtime.Time(200 * w)
	m.Feed(burst(far, 50))
	m.Feed(burst(far+simtime.Time(w)/4, 51))
	m.Feed(burst(far+simtime.Time(w), 52))
	m.Feed(burst(far+2*simtime.Time(w), 53))
	check()
	if m.Stats().WatermarkResyncs == 0 {
		t.Fatalf("gap did not resync: %+v", m.Stats())
	}
	m.Flush()
	check()
	if prev == 0 {
		t.Fatal("no unmatched reads ever counted — the probe is inert")
	}
}

// TestMonitorDropsAncientRecords: a record behind the last diagnosed window
// must be dropped and counted, never analysed twice or crash the sort.
func TestMonitorDropsAncientRecords(t *testing.T) {
	tr := monitoredRun(t, nil)
	m := New(tr.Meta, Config{})
	m.Feed(tr.Records)
	if m.Stats().Windows == 0 {
		t.Fatal("no windows flushed")
	}
	before := m.Stats().Records
	m.Feed([]collector.BatchRecord{{Comp: "nat1", At: 1, Dir: collector.DirRead, IPIDs: []uint16{1}}})
	st := m.Stats()
	if st.LateDropped != 1 {
		t.Fatalf("ancient record not dropped: %+v", st)
	}
	if st.Records != before {
		t.Fatal("dropped record still counted as fed")
	}
}
