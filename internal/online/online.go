// Package online runs Microscope continuously: the collector's record
// stream is consumed in windows, each window is reconstructed and diagnosed
// like a small offline trace, and significant culprits surface as alerts.
// The paper's tool is offline (§5); this is the thin incremental shell an
// operator deploys so that "run Microscope over the timeframe" (§4.4)
// happens on its own.
package online

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// Config tunes the monitor.
type Config struct {
	// Window is the analysis chunk length (default 100 ms).
	Window simtime.Duration
	// Overlap is carried from the previous window so queuing periods
	// that straddle the boundary stay intact (default 20 ms).
	Overlap simtime.Duration
	// MaxLookahead bounds how far beyond the current watermark a record's
	// timestamp may plausibly land: anything further is a corrupt
	// timestamp (a truncated or bit-flipped record that survived decode
	// resync) and is dropped and counted, because advancing the watermark
	// to it would fast-forward the flush boundary and silently discard
	// every genuine record behind it as late. Default 4096 windows;
	// negative disables the guard. See ResyncAfter for how the monitor
	// recovers when the stream itself genuinely jumps past the horizon.
	MaxLookahead simtime.Duration
	// ResyncAfter is the recovery path for the MaxLookahead guard: after
	// this many consecutive beyond-horizon records whose timestamps are
	// mutually consistent (each within MaxLookahead of the previous one),
	// the monitor concludes the stream — not the watermark — is right (a
	// real gap, e.g. a collector outage longer than MaxLookahead), accepts
	// the record, and jumps the watermark forward. Corrupt timestamps are
	// independent bit-patterns and practically never form a consistent
	// run, so the guard still catches them. Default 8; negative disables
	// resync (beyond-horizon records are then dropped forever, the
	// pre-resync behaviour).
	ResyncAfter int
	// MinScore is the alert threshold on a window's merged culprit
	// score, in packets (default 100).
	MinScore float64
	// MaxVictims caps diagnosis work per window (default 200).
	MaxVictims int
	// Diagnosis passes through engine knobs (victim percentile etc.).
	Diagnosis core.Config
	// Workers bounds each window's per-victim diagnosis fan-out
	// (0 = GOMAXPROCS, 1 = sequential); alerts are identical for any
	// value. Overrides Diagnosis.Workers when nonzero.
	Workers int
	// HoldOff suppresses repeated alerts for the same <comp, kind> with
	// onsets within this duration of an already-alerted onset
	// (default: one Window).
	HoldOff simtime.Duration
	// Obs receives monitor metrics: ingest and alert counters plus
	// watermark gauges, and is pushed into the per-window pipelines.
	// nil falls back to the process default registry.
	Obs *obs.Registry
	// Resilience arms the overload defenses: bounded ingest with a shed
	// policy, the degradation ladder, the per-window deadline and memory
	// watermarks, and panic containment. The zero value keeps the
	// pre-resilience behaviour (unbounded buffering, full diagnosis,
	// panics propagate).
	Resilience resilience.Config
	// OnWindow, when non-nil, observes every successfully diagnosed
	// window: the flush boundary and the full pipeline Result, before
	// alert merging. Called synchronously from the feed goroutine — the
	// serving tier captures per-window reports (and their fingerprints)
	// here. Skipped and quarantined windows never fire it; they produce
	// no Result.
	OnWindow func(end simtime.Time, res *pipeline.Result)
	// ChaosHook, when non-nil, fires with scope "window:<n>" before each
	// window's analysis and is forwarded into the per-window pipeline
	// (scopes "stage:<name>" and "victim:<i>"). The chaos harness injects
	// deterministic faults through it; never set in production.
	ChaosHook func(scope string)
	// Incremental routes window analysis through the retained streaming
	// index (pipeline.StreamState): records are sealed into epoch segments
	// once, expired segments are evicted wholesale, and the diagnosis memo
	// is carried across windows. Every window's report is byte-identical
	// to a cold segment-wise rebuild of the same window (DESIGN.md §11);
	// the win is not re-reconstructing the overlap every window.
	Incremental bool
}

func (c *Config) setDefaults() {
	if c.Window == 0 {
		c.Window = 100 * simtime.Millisecond
	}
	if c.Overlap == 0 {
		c.Overlap = 20 * simtime.Millisecond
	}
	if c.MaxLookahead == 0 {
		c.MaxLookahead = 4096 * c.Window
	}
	if c.ResyncAfter == 0 {
		c.ResyncAfter = 8
	}
	if c.MinScore == 0 {
		c.MinScore = 100
	}
	if c.MaxVictims == 0 {
		c.MaxVictims = 200
	}
	if c.HoldOff == 0 {
		c.HoldOff = c.Window
	}
}

// Alert is one significant culprit surfaced by a window's diagnosis.
type Alert struct {
	// WindowEnd is the analysis boundary that produced the alert.
	WindowEnd simtime.Time
	// Comp / Kind identify the culprit.
	Comp string
	Kind core.CulpritKind
	// Score is the merged blame across the window's victims.
	Score float64
	// Victims is how many diagnosed victims implicated this culprit.
	Victims int
	// Onset is the earliest culprit behaviour time.
	Onset simtime.Time
	// Health is the trace-quality summary of the window that raised the
	// alert: an operator reads confidence next to the conclusion.
	Health tracestore.Health
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	return fmt.Sprintf("[%v] %s/%s score=%.0f victims=%d onset=%v",
		a.WindowEnd, a.Comp, a.Kind, a.Score, a.Victims, a.Onset)
}

// Monitor consumes records incrementally. Not safe for concurrent use; a
// collector drain loop feeds it from one goroutine.
type Monitor struct {
	cfg  Config
	meta collector.Meta
	// pcfg is the per-window pipeline configuration: each window runs the
	// shared staged pipeline with patterns skipped (the monitor merges raw
	// causes itself).
	pcfg pipeline.Config

	// stream is the retained incremental index (nil in batch mode). It is
	// advanced on every flush — including skipped rungs and empty windows —
	// so its watermark and eviction horizon track the monitor's.
	stream *pipeline.StreamState

	// pending is the bounded ingest ring (unbounded when RingCapacity=0).
	pending *resilience.Ring[collector.BatchRecord]
	// winScratch is the reusable window-extraction buffer: records
	// [0, cut) are copied out of the ring here before analysis.
	winScratch []collector.BatchRecord
	// mem samples the heap against the configured watermarks.
	mem       *resilience.MemWatcher
	nextFlush simtime.Time
	// flushedTo is the end of the last diagnosed window; records older
	// than this are too late to analyse.
	flushedTo simtime.Time
	// lastAlert remembers alerted onsets per culprit for hold-off.
	lastAlert map[alertKey]simtime.Time
	// lastHealth is the most recent diagnosed window's trace-quality
	// summary, served by Health() to liveness endpoints.
	lastHealth    tracestore.Health
	hasHealth     bool
	lastWatermark simtime.Time
	// implausibleAt / implausibleRun track the current run of
	// beyond-horizon timestamps for ResyncAfter: implausibleAt is the most
	// recent one, implausibleRun how many mutually-consistent ones in a
	// row. Any accepted in-horizon record resets the run.
	implausibleAt  simtime.Time
	implausibleRun int
	// lastDegradation is the ladder rung the most recent window ran at.
	lastDegradation resilience.Level

	stats Stats

	// Observability handles, resolved once at New (nil = disabled).
	obsRecords       *obs.Counter
	obsWindows       *obs.Counter
	obsVictims       *obs.Counter
	obsAlerts        *obs.Counter
	obsLateAccepted  *obs.Counter
	obsLateDropped   *obs.Counter
	obsWatermark     *obs.Gauge
	obsLag           *obs.Gauge
	obsPending       *obs.Gauge
	obsRecordsShed   *obs.Counter
	obsWindowsShed   *obs.Counter
	obsSkipped       *obs.Counter
	obsQuarantined   *obs.Counter
	obsDeadline      *obs.Counter
	obsDegradation   *obs.Gauge
	obsOccupancy     *obs.Gauge
	obsRetries       *obs.Counter
	obsChunksDropped *obs.Counter
	obsImplausible   *obs.Counter
	obsResyncs       *obs.Counter
}

type alertKey struct {
	comp string
	kind core.CulpritKind
}

// Stats counts monitor activity.
type Stats struct {
	Windows, Records, Victims, Alerts int
	// LateAccepted counts records that arrived out of time order but
	// still inside the open window and were re-sorted into place.
	LateAccepted int
	// LateDropped counts records that arrived after their window was
	// already diagnosed and had to be discarded.
	LateDropped int
	// Unmatched and Quarantined accumulate per-window reconstruction
	// damage across the monitor's lifetime.
	Unmatched, Quarantined int
	// RecordsShed counts records discarded by the bounded-ingest shed
	// policy (rejected arrivals under ShedRejectNew, or arrivals whose
	// window was dropped under ShedDropOldest).
	RecordsShed int
	// WindowsShed counts whole un-diagnosed windows abandoned by
	// ShedDropOldest to make room for fresher records.
	WindowsShed int
	// Degraded counts windows the ladder ran below Full.
	Degraded int
	// WindowsSkipped counts windows the ladder skipped outright
	// (including deadline-exceeded windows).
	WindowsSkipped int
	// WindowsQuarantined counts windows abandoned whole by panic
	// containment: the stream lived on, the window's output was discarded.
	WindowsQuarantined int
	// DeadlineExceeded counts windows cut off by the wall-clock budget.
	DeadlineExceeded int
	// ContainedPanics counts victims quarantined inside otherwise-healthy
	// windows by the worker-task containment boundary.
	ContainedPanics int
	// SourceRetries counts backoff-and-retry passes FeedSource made
	// against a transiently failing record source.
	SourceRetries int
	// ChunksDropped counts source chunks abandoned after the retry
	// budget ran out.
	ChunksDropped int
	// ImplausibleDropped counts records discarded by the watermark
	// plausibility guard: a timestamp more than MaxLookahead beyond the
	// watermark is corruption, not the future, and must not be allowed to
	// fast-forward the stream (which would lazily discard everything that
	// follows as late).
	ImplausibleDropped int
	// WatermarkResyncs counts the times the guard's recovery path fired:
	// ResyncAfter mutually-consistent beyond-horizon timestamps in a row
	// proved a genuine stream gap, and the watermark jumped forward to
	// follow the stream instead of dropping it forever.
	WatermarkResyncs int
}

// New creates a monitor for a deployment described by meta.
func New(meta collector.Meta, cfg Config) *Monitor {
	cfg.setDefaults()
	dcfg := cfg.Diagnosis
	dcfg.MaxVictims = cfg.MaxVictims
	if cfg.Workers != 0 {
		dcfg.Workers = cfg.Workers
	}
	m := &Monitor{
		cfg:  cfg,
		meta: meta,
		pcfg: pipeline.Config{
			Diagnosis:     dcfg,
			SkipPatterns:  true,
			Obs:           cfg.Obs,
			ContainPanics: cfg.Resilience.ContainPanics,
			ChaosHook:     cfg.ChaosHook,
		},
		pending:   resilience.NewRing[collector.BatchRecord](cfg.Resilience.RingCapacity),
		lastAlert: make(map[alertKey]simtime.Time),
		nextFlush: simtime.Time(cfg.Window),
	}
	if cfg.Incremental {
		ss, err := pipeline.NewStreamState(meta, cfg.Window, cfg.Overlap, m.pcfg)
		if err != nil {
			// Geometry the stream grid cannot express (nonpositive window,
			// negative overlap); a misconfiguration, not a runtime condition.
			panic("online: incremental mode: " + err.Error())
		}
		m.stream = ss
	}
	reg := obs.Or(cfg.Obs)
	if cfg.Resilience.MemSoftBytes > 0 || cfg.Resilience.MemHardBytes > 0 {
		m.mem = &resilience.MemWatcher{
			SoftBytes: cfg.Resilience.MemSoftBytes,
			HardBytes: cfg.Resilience.MemHardBytes,
		}
		if reg != nil {
			m.mem.Gauge = reg.Gauge("microscope_resilience_heap_bytes")
		}
	}
	if reg != nil {
		m.obsRecords = reg.Counter("microscope_monitor_records_total")
		m.obsWindows = reg.Counter("microscope_monitor_windows_total")
		m.obsVictims = reg.Counter("microscope_monitor_victims_total")
		m.obsAlerts = reg.Counter("microscope_monitor_alerts_total")
		m.obsLateAccepted = reg.Counter("microscope_monitor_late_accepted_total")
		m.obsLateDropped = reg.Counter("microscope_monitor_late_dropped_total")
		m.obsWatermark = reg.Gauge("microscope_monitor_watermark_ns")
		m.obsLag = reg.Gauge("microscope_monitor_lag_ns")
		m.obsPending = reg.Gauge("microscope_monitor_pending_records")
		m.obsRecordsShed = reg.Counter("microscope_resilience_records_shed_total")
		m.obsWindowsShed = reg.Counter("microscope_resilience_windows_shed_total")
		m.obsSkipped = reg.Counter("microscope_resilience_windows_skipped_total")
		m.obsQuarantined = reg.Counter("microscope_resilience_windows_quarantined_total")
		m.obsDeadline = reg.Counter("microscope_resilience_deadline_exceeded_total")
		m.obsDegradation = reg.Gauge("microscope_resilience_degradation_level")
		m.obsOccupancy = reg.Gauge("microscope_resilience_ring_occupancy_permille")
		m.obsRetries = reg.Counter("microscope_resilience_source_retries_total")
		m.obsChunksDropped = reg.Counter("microscope_resilience_chunks_dropped_total")
		m.obsImplausible = reg.Counter("microscope_resilience_implausible_records_total")
		m.obsResyncs = reg.Counter("microscope_resilience_watermark_resyncs_total")
	}
	return m
}

// Stats returns activity counters.
func (m *Monitor) Stats() Stats { return m.stats }

// LastDegradation returns the ladder rung the most recent window ran at
// (Full before the first window).
func (m *Monitor) LastDegradation() resilience.Level { return m.lastDegradation }

// Backlog returns how many buffered records await diagnosis.
func (m *Monitor) Backlog() int { return m.pending.Len() }

// Health returns the trace-quality summary of the most recently diagnosed
// window. ok is false until the first window has been analysed — liveness
// endpoints report "warming up" rather than a zero-valued healthy Health.
func (m *Monitor) Health() (h tracestore.Health, ok bool) {
	return m.lastHealth, m.hasHealth
}

// Feed appends records and diagnoses any windows they complete, returning
// the alerts raised. Records should arrive roughly in time order; bounded
// lateness is tolerated (late records are sorted into the open window), but
// a record older than an already-diagnosed window is dropped and counted.
// When the ingest ring is full the configured shed policy decides what
// gives: the arrival (ShedRejectNew) or the oldest un-diagnosed window
// (ShedDropOldest).
func (m *Monitor) Feed(recs []collector.BatchRecord) []Alert {
	var out []Alert
	for _, r := range recs {
		if r.At < m.flushedTo {
			m.stats.LateDropped++
			m.obsLateDropped.Inc()
			continue
		}
		if m.cfg.MaxLookahead > 0 && m.lastWatermark > 0 &&
			r.At > m.lastWatermark.Add(m.cfg.MaxLookahead) {
			if !m.noteImplausible(r.At) {
				m.stats.ImplausibleDropped++
				m.obsImplausible.Inc()
				continue
			}
			// Resync: the run proved a genuine stream gap. Fall through
			// and accept the record; the watermark jumps with it below.
		} else if m.implausibleRun != 0 {
			// An in-horizon record breaks any beyond-horizon run: corrupt
			// timestamps interleaved with live data never accumulate into
			// a spurious resync.
			m.implausibleRun = 0
		}
		if r.At > m.lastWatermark {
			m.lastWatermark = r.At
			m.obsWatermark.Set(int64(r.At))
			// Lag: how far the newest record runs ahead of the last
			// diagnosed boundary — bounded backlog under steady state.
			m.obsLag.Set(int64(r.At.Sub(m.flushedTo)))
		}
		// Flush every window this record's timestamp closes before
		// buffering it. Flushing first (rather than after the insert, as a
		// purely unbounded consumer could) matters for bounded rings: the
		// flush retains only the overlap tail, so a boundary-crossing
		// record still drains the ring even when arrivals are being shed.
		// Strictly greater: flushWindow's cut predicate (At > end) closes
		// a window *including* records timestamped exactly at its end, so
		// an At == nextFlush arrival must be buffered first and flushed
		// with the window it belongs to — matching offline assignment.
		for r.At > m.nextFlush {
			out = append(out, m.flushWindow()...)
		}
		if m.pending.Full() {
			if m.cfg.Resilience.Policy == resilience.ShedRejectNew {
				m.stats.RecordsShed++
				m.obsRecordsShed.Inc()
				continue
			}
			// ShedDropOldest: abandon whole un-diagnosed windows until
			// there is room. Each shed advances the flush boundary, so the
			// loop strictly progresses; if the arrival's own window is
			// shed from under it, the arrival is shed with it.
			for m.pending.Full() {
				m.shedOldestWindow()
			}
			if r.At < m.flushedTo {
				m.stats.RecordsShed++
				m.obsRecordsShed.Inc()
				continue
			}
		}
		m.stats.Records++
		m.obsRecords.Inc()
		if n := m.pending.Len(); n > 0 && r.At < m.pending.At(n-1).At {
			// Late but still analysable: insert in time order.
			i := m.pending.Search(func(p collector.BatchRecord) bool { return p.At > r.At })
			m.pending.Insert(i, r)
			m.stats.LateAccepted++
			m.obsLateAccepted.Inc()
		} else {
			m.pending.Append(r)
		}
		m.obsOccupancy.Set(int64(m.pending.Occupancy() * 1000))
	}
	return out
}

// noteImplausible books one beyond-horizon timestamp and decides whether
// it completes a resync run. A corrupt timestamp is an independent
// bit-pattern that almost never lands near another one, but a genuine
// stream gap (collector outage, transport stall longer than MaxLookahead)
// resumes with timestamps that are mutually consistent. After ResyncAfter
// consecutive beyond-horizon records each within MaxLookahead of the
// previous one — bounded reordering in the resumed stream is tolerated by
// comparing absolute distance — the stream wins: the caller accepts the
// record and the watermark jumps forward with it. The run's earlier
// records were already dropped and counted; only the completing record is
// recovered, and the stream flows again from there.
func (m *Monitor) noteImplausible(at simtime.Time) (resync bool) {
	if m.cfg.ResyncAfter < 0 {
		return false
	}
	d := at.Sub(m.implausibleAt)
	if d < 0 {
		d = -d
	}
	if m.implausibleRun == 0 || d > m.cfg.MaxLookahead {
		m.implausibleRun = 1
	} else {
		m.implausibleRun++
	}
	m.implausibleAt = at
	if m.implausibleRun < m.cfg.ResyncAfter {
		return false
	}
	m.implausibleRun = 0
	m.stats.WatermarkResyncs++
	m.obsResyncs.Inc()
	return true
}

// shedOldestWindow abandons the oldest un-diagnosed window: its records
// are discarded, the flush boundary advances as if it had been analysed,
// and nothing downstream ever sees it. Fresh data wins, history loses.
func (m *Monitor) shedOldestWindow() {
	end := m.nextFlush
	cut := m.pending.Search(func(p collector.BatchRecord) bool { return p.At > end })
	m.pending.DropFront(cut)
	m.flushedTo = end
	m.nextFlush = end.Add(m.cfg.Window)
	if cut > 0 {
		// Boundary advances past empty stretches don't count as shed
		// windows — nothing was lost there.
		m.stats.WindowsShed++
		m.obsWindowsShed.Inc()
		m.stats.RecordsShed += cut
		m.obsRecordsShed.Add(int64(cut))
	}
}

// Flush diagnoses whatever remains (end of stream).
func (m *Monitor) Flush() []Alert {
	if m.pending.Len() == 0 {
		return nil
	}
	return m.flushWindow()
}

// flushWindow diagnoses records up to nextFlush and retains the overlap
// tail for the next window. Under pressure it runs the window at the rung
// the degradation ladder picks; a window that overruns its deadline or
// panics is abandoned whole — counted, never half-reported — and the
// stream lives on.
func (m *Monitor) flushWindow() []Alert {
	end := m.nextFlush
	m.nextFlush = end.Add(m.cfg.Window)
	m.flushedTo = end
	m.stats.Windows++
	m.obsWindows.Inc()

	// Records in the window (all pending up to end).
	cut := m.pending.Search(func(p collector.BatchRecord) bool { return p.At > end })
	if cut == 0 {
		// Nothing new and no retained overlap records: the incremental
		// index still has to see the boundary so eviction keeps pace with
		// the watermark (a stream gap must drain retained segments).
		m.advanceStream(end, nil)
		return nil
	}

	// Pick the ladder rung from deterministic pressure signals: the
	// window's own record count and the whole-window backlog queued behind
	// it. The heap watermark (memSteps) is a machine-local safety net,
	// usually 0 and off by default.
	backlog := 0
	if m.cfg.Window > 0 && m.lastWatermark > end {
		backlog = int(m.lastWatermark.Sub(end) / m.cfg.Window)
	}
	memSteps := 0
	if m.mem != nil {
		memSteps = m.mem.Steps()
	}
	level := m.cfg.Resilience.Ladder.Decide(cut, backlog, memSteps)
	m.setDegradation(level)
	if level > resilience.Full {
		m.stats.Degraded++
	}
	if level >= resilience.Skipped {
		m.stats.WindowsSkipped++
		m.obsSkipped.Inc()
		// A skipped window is still ingested: the streaming index's
		// watermark must track the flush boundary through overload or the
		// next diagnosed window would mis-assign the skipped records.
		if m.stream != nil {
			m.winScratch = m.pending.CopyRange(m.winScratch[:0], 0, cut)
			m.advanceStream(end, m.winScratch)
		}
		m.retainOverlap(end)
		return nil
	}

	// Extract the window into the reusable scratch buffer; nothing that
	// survives this call aliases it.
	m.winScratch = m.pending.CopyRange(m.winScratch[:0], 0, cut)
	tr := &collector.Trace{Meta: m.meta, Records: m.winScratch}
	pcfg := m.pcfg
	pcfg.Degrade = level
	//mslint:allow ctxflow push-driven monitor owns its window deadline; no caller ctx exists on the feed path
	ctx := context.Background()
	cancel := func() {}
	if d := m.cfg.Resilience.WindowDeadline; d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	var res *pipeline.Result
	var runErr error
	analyse := func() {
		if m.cfg.ChaosHook != nil {
			m.cfg.ChaosHook("window:" + strconv.Itoa(m.stats.Windows-1))
		}
		if m.stream != nil {
			res, runErr = m.stream.RunWindow(ctx, end, m.winScratch, level)
		} else {
			res, runErr = pipeline.RunContext(ctx, tr, pcfg)
		}
	}
	if m.cfg.Resilience.ContainPanics {
		// Window-granularity containment: a panic anywhere in the
		// analysis — including the hook itself — quarantines this window.
		if perr := resilience.Contain("window", analyse); perr != nil {
			runErr = perr
		}
	} else {
		analyse()
	}
	cancel()
	if runErr != nil {
		m.quarantineOrSkip(runErr)
		m.retainOverlap(end)
		return nil
	}
	m.stats.ContainedPanics += int(res.ContainedPanics)
	health := res.Health
	m.lastHealth, m.hasHealth = health, true
	if m.stream != nil {
		// Seal-time totals from the stream: each record is reconstructed
		// exactly once, so the counters are monotone across watermark
		// resyncs and never double-count the overlap region (the batch
		// path re-reconstructs it every window and inflates both).
		sst := m.stream.Stats()
		m.stats.Unmatched = sst.Recon.Unmatched
		m.stats.Quarantined = sst.Recon.Quarantined
	} else {
		m.stats.Unmatched += health.Recon.Unmatched
		m.stats.Quarantined += health.Recon.Quarantined
	}
	diags := res.Diagnoses
	m.stats.Victims += len(diags)
	m.obsVictims.Add(int64(len(diags)))
	if m.cfg.OnWindow != nil {
		m.cfg.OnWindow(end, res)
	}

	// Merge culprits across the window's victims.
	type acc struct {
		score   float64
		victims int
		onset   simtime.Time
	}
	merged := make(map[alertKey]*acc)
	for i := range diags {
		seen := make(map[alertKey]bool)
		for _, c := range diags[i].Causes {
			k := alertKey{c.Comp, c.Kind}
			a := merged[k]
			if a == nil {
				a = &acc{onset: c.At}
				merged[k] = a
			}
			a.score += c.Score
			if c.At < a.onset {
				a.onset = c.At
			}
			if !seen[k] {
				a.victims++
				seen[k] = true
			}
		}
	}
	keys := make([]alertKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if merged[keys[i]].score != merged[keys[j]].score {
			return merged[keys[i]].score > merged[keys[j]].score
		}
		if keys[i].comp != keys[j].comp {
			return keys[i].comp < keys[j].comp
		}
		return keys[i].kind < keys[j].kind
	})
	var out []Alert
	for _, k := range keys {
		a := merged[k]
		if a.score < m.cfg.MinScore {
			continue
		}
		if last, ok := m.lastAlert[k]; ok {
			d := a.onset.Sub(last)
			if d < 0 {
				d = -d
			}
			if d < m.cfg.HoldOff {
				continue // the same episode, already alerted
			}
		}
		m.lastAlert[k] = a.onset
		out = append(out, Alert{
			WindowEnd: end,
			Comp:      k.comp,
			Kind:      k.kind,
			Score:     a.score,
			Victims:   a.victims,
			Onset:     a.onset,
			Health:    health,
		})
		m.stats.Alerts++
		m.obsAlerts.Inc()
	}

	m.retainOverlap(end)
	return out
}

// advanceStream runs an ingest-only advance of the incremental index (no
// diagnosis): the Skipped rung seals recs into grid segments and evicts
// the expired horizon, keeping the stream's watermark on the monitor's
// flush boundary. No-op in batch mode. A contained ingest panic
// quarantines the stream's view of the window; the already-counted skip
// stands.
func (m *Monitor) advanceStream(end simtime.Time, recs []collector.BatchRecord) {
	if m.stream == nil {
		return
	}
	//mslint:allow ctxflow push-driven monitor has no caller ctx; window deadlines are applied inside RunWindow
	if _, err := m.stream.RunWindow(context.Background(), end, recs, resilience.Skipped); err != nil {
		if resilience.IsPanic(err) {
			m.stats.WindowsQuarantined++
			m.obsQuarantined.Inc()
		}
	}
}

// StreamStats returns the incremental index's cumulative seal-time
// accounting; ok is false in batch mode.
func (m *Monitor) StreamStats() (st tracestore.StreamStats, ok bool) {
	if m.stream == nil {
		return tracestore.StreamStats{}, false
	}
	return m.stream.Stats(), true
}

// retainOverlap drops buffered records before the overlap tail of the
// window ending at end, keeping boundary-straddling queuing periods
// intact for the next window.
func (m *Monitor) retainOverlap(end simtime.Time) {
	keepFrom := end.Add(-m.cfg.Overlap)
	start := m.pending.Search(func(p collector.BatchRecord) bool { return p.At >= keepFrom })
	m.pending.DropFront(start)
	m.obsPending.Set(int64(m.pending.Len()))
	m.obsOccupancy.Set(int64(m.pending.Occupancy() * 1000))
}

// setDegradation records the rung the current window runs at.
func (m *Monitor) setDegradation(l resilience.Level) {
	m.lastDegradation = l
	m.obsDegradation.Set(int64(l))
}

// quarantineOrSkip books a window that produced no usable output: a
// contained panic quarantines it, a blown deadline (or outer
// cancellation) skips it. Either way the window's partial output is
// discarded — half a diagnosis would break the determinism contract —
// and the stream continues.
func (m *Monitor) quarantineOrSkip(err error) {
	if resilience.IsPanic(err) {
		m.stats.WindowsQuarantined++
		m.obsQuarantined.Inc()
		m.setDegradation(resilience.Skipped)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		m.stats.DeadlineExceeded++
		m.obsDeadline.Inc()
	}
	m.stats.WindowsSkipped++
	m.obsSkipped.Inc()
	m.setDegradation(resilience.Skipped)
}
