// Package online runs Microscope continuously: the collector's record
// stream is consumed in windows, each window is reconstructed and diagnosed
// like a small offline trace, and significant culprits surface as alerts.
// The paper's tool is offline (§5); this is the thin incremental shell an
// operator deploys so that "run Microscope over the timeframe" (§4.4)
// happens on its own.
package online

import (
	"fmt"
	"sort"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/pipeline"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// Config tunes the monitor.
type Config struct {
	// Window is the analysis chunk length (default 100 ms).
	Window simtime.Duration
	// Overlap is carried from the previous window so queuing periods
	// that straddle the boundary stay intact (default 20 ms).
	Overlap simtime.Duration
	// MinScore is the alert threshold on a window's merged culprit
	// score, in packets (default 100).
	MinScore float64
	// MaxVictims caps diagnosis work per window (default 200).
	MaxVictims int
	// Diagnosis passes through engine knobs (victim percentile etc.).
	Diagnosis core.Config
	// Workers bounds each window's per-victim diagnosis fan-out
	// (0 = GOMAXPROCS, 1 = sequential); alerts are identical for any
	// value. Overrides Diagnosis.Workers when nonzero.
	Workers int
	// HoldOff suppresses repeated alerts for the same <comp, kind> with
	// onsets within this duration of an already-alerted onset
	// (default: one Window).
	HoldOff simtime.Duration
	// Obs receives monitor metrics: ingest and alert counters plus
	// watermark gauges, and is pushed into the per-window pipelines.
	// nil falls back to the process default registry.
	Obs *obs.Registry
}

func (c *Config) setDefaults() {
	if c.Window == 0 {
		c.Window = 100 * simtime.Millisecond
	}
	if c.Overlap == 0 {
		c.Overlap = 20 * simtime.Millisecond
	}
	if c.MinScore == 0 {
		c.MinScore = 100
	}
	if c.MaxVictims == 0 {
		c.MaxVictims = 200
	}
	if c.HoldOff == 0 {
		c.HoldOff = c.Window
	}
}

// Alert is one significant culprit surfaced by a window's diagnosis.
type Alert struct {
	// WindowEnd is the analysis boundary that produced the alert.
	WindowEnd simtime.Time
	// Comp / Kind identify the culprit.
	Comp string
	Kind core.CulpritKind
	// Score is the merged blame across the window's victims.
	Score float64
	// Victims is how many diagnosed victims implicated this culprit.
	Victims int
	// Onset is the earliest culprit behaviour time.
	Onset simtime.Time
	// Health is the trace-quality summary of the window that raised the
	// alert: an operator reads confidence next to the conclusion.
	Health tracestore.Health
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	return fmt.Sprintf("[%v] %s/%s score=%.0f victims=%d onset=%v",
		a.WindowEnd, a.Comp, a.Kind, a.Score, a.Victims, a.Onset)
}

// Monitor consumes records incrementally. Not safe for concurrent use; a
// collector drain loop feeds it from one goroutine.
type Monitor struct {
	cfg  Config
	meta collector.Meta
	// pcfg is the per-window pipeline configuration: each window runs the
	// shared staged pipeline with patterns skipped (the monitor merges raw
	// causes itself).
	pcfg pipeline.Config

	pending   []collector.BatchRecord
	nextFlush simtime.Time
	// flushedTo is the end of the last diagnosed window; records older
	// than this are too late to analyse.
	flushedTo simtime.Time
	// lastAlert remembers alerted onsets per culprit for hold-off.
	lastAlert map[alertKey]simtime.Time
	// lastHealth is the most recent diagnosed window's trace-quality
	// summary, served by Health() to liveness endpoints.
	lastHealth    tracestore.Health
	hasHealth     bool
	lastWatermark simtime.Time

	stats Stats

	// Observability handles, resolved once at New (nil = disabled).
	obsRecords      *obs.Counter
	obsWindows      *obs.Counter
	obsVictims      *obs.Counter
	obsAlerts       *obs.Counter
	obsLateAccepted *obs.Counter
	obsLateDropped  *obs.Counter
	obsWatermark    *obs.Gauge
	obsLag          *obs.Gauge
	obsPending      *obs.Gauge
}

type alertKey struct {
	comp string
	kind core.CulpritKind
}

// Stats counts monitor activity.
type Stats struct {
	Windows, Records, Victims, Alerts int
	// LateAccepted counts records that arrived out of time order but
	// still inside the open window and were re-sorted into place.
	LateAccepted int
	// LateDropped counts records that arrived after their window was
	// already diagnosed and had to be discarded.
	LateDropped int
	// Unmatched and Quarantined accumulate per-window reconstruction
	// damage across the monitor's lifetime.
	Unmatched, Quarantined int
}

// New creates a monitor for a deployment described by meta.
func New(meta collector.Meta, cfg Config) *Monitor {
	cfg.setDefaults()
	dcfg := cfg.Diagnosis
	dcfg.MaxVictims = cfg.MaxVictims
	if cfg.Workers != 0 {
		dcfg.Workers = cfg.Workers
	}
	m := &Monitor{
		cfg:       cfg,
		meta:      meta,
		pcfg:      pipeline.Config{Diagnosis: dcfg, SkipPatterns: true, Obs: cfg.Obs},
		lastAlert: make(map[alertKey]simtime.Time),
		nextFlush: simtime.Time(cfg.Window),
	}
	if reg := obs.Or(cfg.Obs); reg != nil {
		m.obsRecords = reg.Counter("microscope_monitor_records_total")
		m.obsWindows = reg.Counter("microscope_monitor_windows_total")
		m.obsVictims = reg.Counter("microscope_monitor_victims_total")
		m.obsAlerts = reg.Counter("microscope_monitor_alerts_total")
		m.obsLateAccepted = reg.Counter("microscope_monitor_late_accepted_total")
		m.obsLateDropped = reg.Counter("microscope_monitor_late_dropped_total")
		m.obsWatermark = reg.Gauge("microscope_monitor_watermark_ns")
		m.obsLag = reg.Gauge("microscope_monitor_lag_ns")
		m.obsPending = reg.Gauge("microscope_monitor_pending_records")
	}
	return m
}

// Stats returns activity counters.
func (m *Monitor) Stats() Stats { return m.stats }

// Health returns the trace-quality summary of the most recently diagnosed
// window. ok is false until the first window has been analysed — liveness
// endpoints report "warming up" rather than a zero-valued healthy Health.
func (m *Monitor) Health() (h tracestore.Health, ok bool) {
	return m.lastHealth, m.hasHealth
}

// Feed appends records and diagnoses any windows they complete, returning
// the alerts raised. Records should arrive roughly in time order; bounded
// lateness is tolerated (late records are sorted into the open window), but
// a record older than an already-diagnosed window is dropped and counted.
func (m *Monitor) Feed(recs []collector.BatchRecord) []Alert {
	var out []Alert
	for _, r := range recs {
		if r.At < m.flushedTo {
			m.stats.LateDropped++
			m.obsLateDropped.Inc()
			continue
		}
		m.stats.Records++
		m.obsRecords.Inc()
		if r.At > m.lastWatermark {
			m.lastWatermark = r.At
			m.obsWatermark.Set(int64(r.At))
			// Lag: how far the newest record runs ahead of the last
			// diagnosed boundary — bounded backlog under steady state.
			m.obsLag.Set(int64(r.At.Sub(m.flushedTo)))
		}
		if n := len(m.pending); n > 0 && r.At < m.pending[n-1].At {
			// Late but still analysable: insert in time order.
			i := sort.Search(n, func(i int) bool { return m.pending[i].At > r.At })
			m.pending = append(m.pending, collector.BatchRecord{})
			copy(m.pending[i+1:], m.pending[i:])
			m.pending[i] = r
			m.stats.LateAccepted++
			m.obsLateAccepted.Inc()
		} else {
			m.pending = append(m.pending, r)
		}
		for r.At >= m.nextFlush {
			out = append(out, m.flushWindow()...)
		}
	}
	return out
}

// Flush diagnoses whatever remains (end of stream).
func (m *Monitor) Flush() []Alert {
	if len(m.pending) == 0 {
		return nil
	}
	return m.flushWindow()
}

// flushWindow diagnoses records up to nextFlush and retains the overlap
// tail for the next window.
func (m *Monitor) flushWindow() []Alert {
	end := m.nextFlush
	m.nextFlush = end.Add(m.cfg.Window)
	m.flushedTo = end
	m.stats.Windows++
	m.obsWindows.Inc()

	// Records in the window (all pending up to end).
	cut := sort.Search(len(m.pending), func(i int) bool { return m.pending[i].At > end })
	window := m.pending[:cut]
	if len(window) == 0 {
		return nil
	}
	tr := &collector.Trace{Meta: m.meta, Records: window}
	res := pipeline.Run(tr, m.pcfg)
	health := res.Health
	m.lastHealth, m.hasHealth = health, true
	m.stats.Unmatched += health.Recon.Unmatched
	m.stats.Quarantined += health.Recon.Quarantined
	diags := res.Diagnoses
	m.stats.Victims += len(diags)
	m.obsVictims.Add(int64(len(diags)))

	// Merge culprits across the window's victims.
	type acc struct {
		score   float64
		victims int
		onset   simtime.Time
	}
	merged := make(map[alertKey]*acc)
	for i := range diags {
		seen := make(map[alertKey]bool)
		for _, c := range diags[i].Causes {
			k := alertKey{c.Comp, c.Kind}
			a := merged[k]
			if a == nil {
				a = &acc{onset: c.At}
				merged[k] = a
			}
			a.score += c.Score
			if c.At < a.onset {
				a.onset = c.At
			}
			if !seen[k] {
				a.victims++
				seen[k] = true
			}
		}
	}
	keys := make([]alertKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if merged[keys[i]].score != merged[keys[j]].score {
			return merged[keys[i]].score > merged[keys[j]].score
		}
		if keys[i].comp != keys[j].comp {
			return keys[i].comp < keys[j].comp
		}
		return keys[i].kind < keys[j].kind
	})
	var out []Alert
	for _, k := range keys {
		a := merged[k]
		if a.score < m.cfg.MinScore {
			continue
		}
		if last, ok := m.lastAlert[k]; ok {
			d := a.onset.Sub(last)
			if d < 0 {
				d = -d
			}
			if d < m.cfg.HoldOff {
				continue // the same episode, already alerted
			}
		}
		m.lastAlert[k] = a.onset
		out = append(out, Alert{
			WindowEnd: end,
			Comp:      k.comp,
			Kind:      k.kind,
			Score:     a.score,
			Victims:   a.victims,
			Onset:     a.onset,
			Health:    health,
		})
		m.stats.Alerts++
		m.obsAlerts.Inc()
	}

	// Retain the overlap tail.
	keepFrom := end.Add(-m.cfg.Overlap)
	start := sort.Search(len(m.pending), func(i int) bool { return m.pending[i].At >= keepFrom })
	m.pending = append(m.pending[:0], m.pending[start:]...)
	m.obsPending.Set(int64(len(m.pending)))
	return out
}
