package online

// The drain loop between a deployment's record transport and the monitor.
// A real shim hands the monitor chunks of records pulled off a wire or a
// shared-memory segment; both fail in boring, transient ways — a torn
// read mid-frame, a stalled producer, a segment whose header got cut.
// FeedSource wraps that loop with the resilience retry policy so a
// hiccup backs off and re-attempts instead of tearing the daemon down,
// and a chunk that stays bad is counted and skipped, never fatal.

import (
	"context"
	"errors"
	"io"
	"time"

	"microscope/internal/collector"
	"microscope/internal/resilience"
)

// RecordSource yields successive chunks of batch records from wherever
// the deployment's shim delivers them. Next returns io.EOF at end of
// stream. Errors wrapped with resilience.Transient are retried by
// FeedSource under the monitor's RetryPolicy; any other error stops the
// drain loop. A source should make progress across calls even while
// failing (re-fetch or internally skip the bad chunk) — a source that
// fails in place forever is cut off when the retry budget of each pass
// is exhausted one chunk-drop at a time.
type RecordSource interface {
	Next() ([]collector.BatchRecord, error)
}

// FeedSource drains src into m until io.EOF, context cancellation, or a
// permanent source error, invoking onAlert (nil = discard) for every
// alert the monitor raises, including those from the final Flush.
// Transient source errors retry with the monitor's capped
// exponential-backoff policy; a chunk still failing when the attempt
// budget runs out is dropped — counted in Stats.ChunksDropped — and the
// loop moves on. The returned error is nil on EOF.
func FeedSource(ctx context.Context, m *Monitor, src RecordSource, onAlert func(Alert)) error {
	emit := func(alerts []Alert) {
		if onAlert == nil {
			return
		}
		for _, a := range alerts {
			onAlert(a)
		}
	}
	for {
		var recs []collector.BatchRecord
		err := m.cfg.Resilience.Retry.Run(ctx, "source.next", func() error {
			var e error
			recs, e = src.Next()
			return e
		}, func(int, time.Duration) {
			m.stats.SourceRetries++
			m.obsRetries.Inc()
		})
		switch {
		case err == nil:
			emit(m.Feed(recs))
		case errors.Is(err, io.EOF):
			emit(m.Flush())
			return nil
		case resilience.IsTransient(err):
			// The retry budget ran out while the fault was still live:
			// this chunk is lost, the stream is not.
			m.stats.ChunksDropped++
			m.obsChunksDropped.Inc()
		default:
			return err
		}
	}
}

// EncodedSource is a RecordSource over a sequence of encoder segments —
// the shape a file- or socket-backed transport delivers. Each Next
// decodes one segment tolerantly (collector.DecodeStream): corrupt
// frames inside a segment are resynced past and accounted in Decode, and
// a segment with no usable header at all is consumed and reported as a
// transient error, so FeedSource backs off and the stream continues with
// the next segment.
type EncodedSource struct {
	// Segments are the encoded chunks, in stream order.
	Segments [][]byte
	// Fault, when non-nil, runs before each read with the upcoming
	// segment index; returning an error injects a source fault without
	// consuming the segment (the chaos harness's stall/hiccup hook).
	Fault func(seg int) error
	// Decode accumulates tolerant-decode damage across segments.
	Decode collector.DecodeStats

	pos int
}

// Next implements RecordSource.
func (s *EncodedSource) Next() ([]collector.BatchRecord, error) {
	if s.pos >= len(s.Segments) {
		return nil, io.EOF
	}
	if s.Fault != nil {
		if err := s.Fault(s.pos); err != nil {
			return nil, err
		}
	}
	seg := s.Segments[s.pos]
	s.pos++
	recs, st, err := collector.DecodeStream(seg)
	s.Decode.Records += st.Records
	s.Decode.Skipped += st.Skipped
	s.Decode.Resyncs += st.Resyncs
	s.Decode.Resorted += st.Resorted
	s.Decode.BytesSkipped += st.BytesSkipped
	if err != nil {
		// No usable header: the whole segment is gone. The position
		// already advanced, so the retry that follows reads the next
		// segment rather than spinning on this one.
		s.Decode.Skipped++
		s.Decode.BytesSkipped += len(seg)
		return nil, resilience.Transient(err)
	}
	return recs, nil
}
