package core

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"microscope/internal/obs"
	"microscope/internal/par"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// Engine runs Microscope diagnosis over a reconstructed trace store. It is
// safe for concurrent use; per-victim diagnoses fan out over a bounded
// worker pool (Config.Workers) with NF-partitioned scheduling and share one
// sharded memoized view of the trace.
type Engine struct {
	cfg Config

	// mu guards the per-store memo below (see memo.go).
	mu        sync.Mutex
	memoStore *tracestore.Store
	memo      *diagMemo

	// panics counts victims quarantined by the ContainPanics boundary.
	panics atomic.Int64
}

// NewEngine creates a diagnosis engine.
func NewEngine(cfg Config) *Engine {
	cfg.setDefaults()
	return &Engine{cfg: cfg}
}

// diagnoser is per-run state: the engine config bound to one store's
// immutable index and memo. Its methods are safe to call from many
// goroutines at once.
type diagnoser struct {
	cfg  Config
	st   *tracestore.Store
	idx  *tracestore.Index
	memo *diagMemo
	// src is the interned traffic source (NoComp when the trace has none).
	src tracestore.CompID

	// Observability handles, all nil (zero-cost no-ops) when neither the
	// config nor the process default carries a registry.
	victims       *obs.Counter
	victimNS      *obs.Histogram
	victimPanics  *obs.Counter
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	memoReused    *obs.Counter
	scratchNew    *obs.Counter
	scratchReused *obs.Counter
	tracer        *obs.Tracer
}

// newDiagnoser binds the engine to a store: the shared index is built (or
// fetched) once, so repeated single-victim calls stop being O(trace) each.
func (e *Engine) newDiagnoser(st *tracestore.Store) *diagnoser {
	d := &diagnoser{
		cfg:  e.cfg,
		st:   st,
		idx:  st.Index(e.cfg.QueueThreshold),
		memo: e.memoFor(st),
		src:  st.SourceID(),
	}
	if reg := obs.Or(e.cfg.Obs); reg != nil {
		d.victims = reg.Counter("microscope_diag_victims_total")
		d.victimNS = reg.Histogram("microscope_diag_victim_ns")
		d.victimPanics = reg.Counter("microscope_diag_victim_panics_total")
		d.memoHits = reg.Counter("microscope_diag_memo_hits_total")
		d.memoMisses = reg.Counter("microscope_diag_memo_misses_total")
		d.memoReused = reg.Counter("microscope_stream_memo_reused_hits_total")
		d.scratchNew = reg.Counter("microscope_diag_scratch_new_total")
		d.scratchReused = reg.Counter("microscope_diag_scratch_reused_total")
		d.tracer = reg.Tracer()
	}
	return d
}

// acquireArena takes a worker arena for the length of a run (or a one-shot
// call) and records whether the pool recycled a warm one.
func (d *diagnoser) acquireArena() *workerArena {
	a, reused := getArena()
	if reused {
		d.scratchReused.Add(1)
	} else {
		d.scratchNew.Add(1)
	}
	return a
}

// Diagnose selects victims and produces a ranked diagnosis for each,
// fanning the per-victim causal analyses out over the worker pool. Results
// are merged in victim order, so the output is byte-identical for any
// worker count.
func (e *Engine) Diagnose(st *tracestore.Store) []Diagnosis {
	d := e.newDiagnoser(st)
	//mslint:allow ctxflow non-ctx convenience wrapper; cancellable path is DiagnoseVictimsContext
	out, _, _ := e.diagnosePartitioned(context.Background(), d, d.findVictims())
	return out
}

// DiagnoseVictims diagnoses an externally chosen victim list (the paper's
// "operators define the victim packets" mode) with the same parallel
// fan-out as Diagnose. Output order matches the input victim order.
func (e *Engine) DiagnoseVictims(st *tracestore.Store, victims []Victim) []Diagnosis {
	//mslint:allow ctxflow non-ctx convenience wrapper; cancellable path is DiagnoseVictimsContext
	out, _, _ := e.diagnosePartitioned(context.Background(), e.newDiagnoser(st), victims)
	return out
}

// DiagnoseVictimsContext is DiagnoseVictims with cooperative cancellation:
// a cancelled context stops the per-victim fan-out promptly and returns
// ctx's error alongside the partial output — slots for victims never
// diagnosed are zero-valued Diagnoses.
func (e *Engine) DiagnoseVictimsContext(ctx context.Context, st *tracestore.Store, victims []Victim) ([]Diagnosis, error) {
	out, _, err := e.diagnosePartitioned(ctx, e.newDiagnoser(st), victims)
	return out, err
}

// RunStats describes how one diagnosis fan-out was scheduled: the victim
// partitions built from the deployment graph and the worker count that ran
// them. Purely observational — the numbers never influence output.
type RunStats struct {
	// Partitions is how many NF-subgraph partitions the victims formed
	// (after oversized partitions were split for load balance).
	Partitions int
	// LargestPartition is the victim count of the biggest partition.
	LargestPartition int
	// Workers is the resolved worker count that executed the run.
	Workers int
}

// DiagnoseVictimsStats is DiagnoseVictimsContext plus the scheduling stats
// of the run, for pipeline observability.
func (e *Engine) DiagnoseVictimsStats(ctx context.Context, st *tracestore.Store, victims []Victim) ([]Diagnosis, RunStats, error) {
	return e.diagnosePartitioned(ctx, e.newDiagnoser(st), victims)
}

// victimPartition is one schedulable unit of a diagnosis run: victims (by
// index into the run's victim slice) whose diagnoses walk the same NF
// subgraph, stolen whole by one worker.
type victimPartition struct {
	comp    tracestore.CompID
	victims []int32
}

// maxPartitionFactor bounds partition size at roughly
// len(victims)/(workers*maxPartitionFactor): with a single overloaded NF
// producing most victims, one monolithic partition would serialize the run,
// so oversized partitions split into consecutive chunks — enough per worker
// to balance load, big enough that stealing stays per-partition, not
// per-victim.
const maxPartitionFactor = 4

// minPartitionChunk keeps split chunks from degenerating into per-victim
// stealing on small runs.
const minPartitionChunk = 32

// partitionVictims groups victim indices by victim NF — the upstream
// closure of the victim's NF is the region of the memo and index its
// diagnosis touches, so same-NF victims revisit the same keys and belong on
// the same worker. Partitions are ordered deterministically for LPT
// scheduling: descending victim count, then descending upstream-closure
// size (the per-victim cost proxy), then ascending CompID, then chunk
// order. Victim order within a partition is ascending, preserving the
// sequential walk inside each subgraph.
func (d *diagnoser) partitionVictims(victims []Victim, workers int) []victimPartition {
	nc := d.st.NumComps()
	// perComp[nc] buckets victims at components the store never interned
	// (defensive: externally supplied victim lists).
	perComp := make([][]int32, nc+1)
	for i := range victims {
		c := d.st.CompIDOf(victims[i].Comp)
		slot := nc
		if c >= 0 && int(c) < nc {
			slot = int(c)
		}
		perComp[slot] = append(perComp[slot], int32(i))
	}
	chunkCap := len(victims)
	if workers > 1 {
		chunkCap = (len(victims) + workers*maxPartitionFactor - 1) / (workers * maxPartitionFactor)
		if chunkCap < minPartitionChunk {
			chunkCap = minPartitionChunk
		}
	}
	parts := make([]victimPartition, 0, nc/2)
	for slot, vs := range perComp {
		if len(vs) == 0 {
			continue
		}
		comp := tracestore.CompID(slot)
		if slot == nc {
			comp = tracestore.NoComp
		}
		for off := 0; off < len(vs); off += chunkCap {
			end := off + chunkCap
			if end > len(vs) {
				end = len(vs)
			}
			parts = append(parts, victimPartition{comp: comp, victims: vs[off:end]})
		}
	}
	sort.SliceStable(parts, func(i, j int) bool {
		if len(parts[i].victims) != len(parts[j].victims) {
			return len(parts[i].victims) > len(parts[j].victims)
		}
		ci, cj := d.idx.ClosureSizeID(parts[i].comp), d.idx.ClosureSizeID(parts[j].comp)
		if ci != cj {
			return ci > cj
		}
		if parts[i].comp != parts[j].comp {
			return parts[i].comp < parts[j].comp
		}
		// Same comp: chunks of one NF keep their ascending victim order.
		return parts[i].victims[0] < parts[j].victims[0]
	})
	return parts
}

// diagnosePartitioned is the diagnosis fan-out: victims grouped into
// NF-subgraph partitions, partitions stolen whole by workers, each worker
// reusing one long-lived scratch arena for its entire share of the run, and
// per-partition result batches merged into victim order once at the end.
// Output is byte-identical for every worker count: each victim's diagnosis
// is a pure function of the victim over the immutable index and memo, and
// the merge writes by victim index regardless of which worker computed it.
func (e *Engine) diagnosePartitioned(ctx context.Context, d *diagnoser, victims []Victim) ([]Diagnosis, RunStats, error) {
	out := make([]Diagnosis, len(victims))
	if len(victims) == 0 {
		return out, RunStats{}, ctx.Err()
	}
	workers := par.Workers(e.cfg.Workers, len(victims))
	if workers <= 1 {
		// Sequential: plain victim-order walk with one arena. Same
		// cancellation granularity (one ctx check per victim) as the
		// parallel path, and the old per-victim fan-out before it.
		a := d.acquireArena()
		defer putArena(a)
		stats := RunStats{Partitions: 1, LargestPartition: len(victims), Workers: 1}
		err := par.DoCtx(ctx, len(victims), 1, e.victimTask(d, victims, out, a))
		return out, stats, err
	}

	parts := d.partitionVictims(victims, workers)
	stats := RunStats{Partitions: len(parts), Workers: par.Workers(workers, len(parts))}
	for i := range parts {
		if n := len(parts[i].victims); n > stats.LargestPartition {
			stats.LargestPartition = n
		}
	}
	// One long-lived arena per worker for the whole run — acquired (and
	// returned) here rather than per victim, so the scratch population is
	// bounded by the worker count instead of churning through the pool
	// once per victim.
	arenas := make([]*workerArena, stats.Workers)
	for w := range arenas {
		arenas[w] = d.acquireArena()
	}
	defer func() {
		for _, a := range arenas {
			putArena(a)
		}
	}()

	batches := make([][]Diagnosis, len(parts))
	err := par.DoWorkersCtx(ctx, len(parts), stats.Workers, func(worker, pi int) {
		a := arenas[worker]
		p := parts[pi]
		batch := make([]Diagnosis, len(p.victims))
		for k, vi := range p.victims {
			if ctx.Err() != nil {
				// Prompt cancellation even inside a stolen partition;
				// unfilled batch slots merge as zero values (the partial-
				// output contract).
				break
			}
			batch[k] = e.diagnoseContained(d, victims, int(vi), a)
		}
		batches[pi] = batch
	})
	// Batched slot merge: one pass in partition order, after every worker
	// has quiesced — workers never write the shared output slice, so they
	// cannot false-share output cache lines while diagnosing.
	for pi := range parts {
		if batches[pi] == nil {
			continue
		}
		for k, vi := range parts[pi].victims {
			out[vi] = batches[pi][k]
		}
	}
	return out, stats, err
}

// diagnoseOne runs one victim's diagnosis (by index, so the chaos hook and
// containment quarantine stay keyed on the victim, not the worker or
// partition) against a caller-owned arena.
func (e *Engine) diagnoseOne(d *diagnoser, victims []Victim, i int, a *workerArena) Diagnosis {
	if e.cfg.ChaosHook != nil {
		e.cfg.ChaosHook("victim:" + strconv.Itoa(i))
	}
	return d.diagnoseVictim(victims[i], a)
}

// victimTask builds the per-victim work function the sequential fan-out
// runs: diagnose victim i into out[i] against the shared arena.
func (e *Engine) victimTask(d *diagnoser, victims []Victim, out []Diagnosis, a *workerArena) func(i int) {
	return func(i int) { out[i] = e.diagnoseContained(d, victims, i, a) }
}

// diagnoseContained wraps diagnoseOne in the crash-containment boundary
// when ContainPanics is set: a panic quarantines that one victim — its slot
// keeps the Victim with no causes — and the rest of the run never notices.
// Quarantine is deterministic: whether a given victim panics depends only
// on the victim, not on worker scheduling. The worker's arena stays safe
// across a contained panic because every victim's diagnosis begins by
// resetting it.
func (e *Engine) diagnoseContained(d *diagnoser, victims []Victim, i int, a *workerArena) Diagnosis {
	if !e.cfg.ContainPanics {
		return e.diagnoseOne(d, victims, i, a)
	}
	var diag Diagnosis
	if err := resilience.Contain("victim", func() { diag = e.diagnoseOne(d, victims, i, a) }); err != nil {
		diag = Diagnosis{Victim: victims[i]}
		e.panics.Add(1)
		d.victimPanics.Add(1)
	}
	return diag
}

// ContainedPanics returns how many victims this engine quarantined via the
// ContainPanics boundary over its lifetime.
func (e *Engine) ContainedPanics() int64 { return e.panics.Load() }

// FindVictims exposes victim selection on its own (used by tests and by the
// evaluation harness).
func (e *Engine) FindVictims(st *tracestore.Store) []Victim {
	return e.newDiagnoser(st).findVictims()
}

// DiagnoseVictim diagnoses a single victim.
func (e *Engine) DiagnoseVictim(st *tracestore.Store, v Victim) Diagnosis {
	d := e.newDiagnoser(st)
	a := d.acquireArena()
	defer putArena(a)
	return d.diagnoseVictim(v, a)
}

// findVictims implements the victim selection of §4: delivered packets
// beyond the latency percentile, and packets whose records vanish (losses).
// For each victim we pick the NFs on its path whose local queueing delay is
// abnormal — more than k standard deviations beyond that NF's typical delay
// (NetMedic-style recent-history test, §4.1).
func (d *diagnoser) findVictims() []Victim {
	js := d.st.Journeys
	if len(js) == 0 {
		return nil
	}
	// Per-NF queue-delay statistics, the latency threshold, and the trace
	// end come from the shared immutable index instead of an O(trace)
	// rescan per call.
	threshold := d.idx.LatencyPercentile(d.cfg.VictimPercentile)
	traceEnd := d.idx.TraceEnd()

	// Degraded trace health means vanished records are more likely
	// telemetry loss than packet loss; classifying them as loss victims
	// would blame phantom drops, so suppress that class unless forced.
	lossOK := !d.cfg.SkipLossVictims
	if lossOK && !d.cfg.LossVictimsWhenDegraded && d.st.Health().Degraded() {
		lossOK = false
	}

	var victims []Victim
	for i := range js {
		j := &js[i]
		switch {
		case j.Delivered && float64(j.Latency()) >= threshold && threshold > 0:
			victims = d.victimHops(victims, i, j, VictimLatency)
		case !j.Delivered && lossOK && !j.Quarantined:
			// Ignore packets merely in flight at trace end.
			lastSeen := j.EmittedAt
			for h := range j.Hops {
				if t := j.Hops[h].ReadAt; t > lastSeen {
					lastSeen = t
				}
				if t := j.Hops[h].DepartAt; t > lastSeen {
					lastSeen = t
				}
			}
			if traceEnd.Sub(lastSeen) < d.cfg.TraceEndSlack {
				continue
			}
			// A drop happens at the enqueue onto the NEXT queue:
			// the packet's records end at the last NF that read
			// it. Diagnose at the downstream queue it most
			// plausibly died in — the fullest one at that moment.
			if len(j.Hops) == 0 {
				continue
			}
			last := j.Hops[len(j.Hops)-1]
			comp, at := last.Comp, last.ArriveAt
			if last.ReadAt != 0 {
				best, bestLen := tracestore.NoComp, -1
				for _, dn := range d.st.DownstreamsID(last.Comp) {
					if l := d.st.QueueLenAtID(dn, lastSeen); l > bestLen {
						best, bestLen = dn, l
					}
				}
				if best != tracestore.NoComp {
					comp, at = best, lastSeen
				}
			}
			victims = append(victims, Victim{
				Journey:    i,
				Comp:       d.st.CompName(comp),
				ArriveAt:   at,
				QueueDelay: lastSeen.Sub(last.ArriveAt),
				Kind:       VictimLoss,
				Tuple:      j.Tuple,
				HasTuple:   j.HasTuple,
			})
		}
	}
	// Apply the victim cap by even sampling across the whole run rather
	// than truncating: a prefix cut would bias diagnosis toward the
	// earliest problems and silently drop later ones.
	if d.cfg.MaxVictims > 0 && len(victims) > d.cfg.MaxVictims {
		sampled := make([]Victim, 0, d.cfg.MaxVictims)
		step := float64(len(victims)) / float64(d.cfg.MaxVictims)
		for k := 0; k < d.cfg.MaxVictims; k++ {
			sampled = append(sampled, victims[int(float64(k)*step)])
		}
		victims = sampled
	}
	return victims
}

// victimHops appends the abnormal hops of a latency victim to out.
func (d *diagnoser) victimHops(out []Victim, idx int, j *tracestore.Journey, kind VictimKind) []Victim {
	n := len(out)
	var maxHop *tracestore.JourneyHop
	var maxDelay simtime.Duration = -1
	for h := range j.Hops {
		hop := &j.Hops[h]
		if hop.ReadAt == 0 {
			continue
		}
		delay := hop.ReadAt.Sub(hop.ArriveAt)
		if delay > maxDelay {
			maxDelay = delay
			maxHop = hop
		}
		w := d.idx.DelayStatsID(hop.Comp)
		if w != nil && w.Abnormal(float64(delay), d.cfg.AbnormalStdDevs, 32) {
			out = append(out, Victim{
				Journey:    idx,
				Comp:       d.st.CompName(hop.Comp),
				ArriveAt:   hop.ArriveAt,
				QueueDelay: delay,
				Kind:       kind,
				Tuple:      j.Tuple,
				HasTuple:   j.HasTuple,
			})
		}
	}
	// Fall back to the dominant hop so every victim is diagnosable.
	if len(out) == n && maxHop != nil {
		out = append(out, Victim{
			Journey:    idx,
			Comp:       d.st.CompName(maxHop.Comp),
			ArriveAt:   maxHop.ArriveAt,
			QueueDelay: maxDelay,
			Kind:       kind,
			Tuple:      j.Tuple,
			HasTuple:   j.HasTuple,
		})
	}
	return out
}

// causeKey merges recursion branches blaming the same culprit.
type causeKey struct {
	comp tracestore.CompID
	kind CulpritKind
}

// slot returns the key's index into the scratch slot tables: CompIDs are
// dense and CulpritKind has two values, so (comp, kind) flattens to
// comp*2+kind.
func (k causeKey) slot() int { return int(k.comp)*2 + int(k.kind) }

// maxCulpritJourneys bounds the per-cause journey union.
const maxCulpritJourneys = 4096

// causeAcc is one accumulating cause inside the scratch: the Cause fields
// minus the string conversion, with a reusable journey buffer.
type causeAcc struct {
	key      causeKey
	score    float64
	at       simtime.Time
	journeys []int
}

// victimScratch is the per-victim cause accumulator of a worker arena. The
// recursion writes into it, diagnoseVictim copies the surviving causes out
// (they escape into the report), and the arena is reused for the worker's
// next victim — steady-state diagnosis allocates only what it returns.
//
// Lookup is a generation-stamped slot array indexed by causeKey.slot()
// instead of a map: reset between victims is amortized O(1) (bump the
// generation; stale stamps become invisible), where clearing a map is O(its
// population) per victim.
type victimScratch struct {
	gen     uint32
	slotGen []uint32 // generation at which slot was last written
	slots   []int32  // slot -> index into accs, valid iff slotGen matches gen
	accs    []causeAcc
}

// reset retires all accumulated causes in O(1): the generation bump makes
// every slot stamp stale. Retired causeAcc slots keep their journey buffer
// capacity for reuse. Generation 0 is never live (a zeroed stamp must not
// look current), so the counter skips it on wrap.
func (sc *victimScratch) reset() {
	sc.accs = sc.accs[:0]
	sc.gen++
	if sc.gen == 0 { // wrapped: stale stamps could alias the new generation
		clear(sc.slotGen)
		sc.gen = 1
	}
}

// grow ensures the slot tables cover index si.
func (sc *victimScratch) grow(si int) {
	n := len(sc.slotGen)
	if n == 0 {
		n = 64
	}
	for n <= si {
		n *= 2
	}
	slotGen := make([]uint32, n)
	copy(slotGen, sc.slotGen)
	slots := make([]int32, n)
	copy(slots, sc.slots)
	sc.slotGen, sc.slots = slotGen, slots
}

// get returns the live accumulator for k, or nil. Test hook and add helper.
func (sc *victimScratch) get(k causeKey) *causeAcc {
	if sc.gen == 0 {
		return nil
	}
	si := k.slot()
	if si < 0 || si >= len(sc.slotGen) || sc.slotGen[si] != sc.gen {
		return nil
	}
	return &sc.accs[sc.slots[si]]
}

// add merges a cause into the accumulator, keeping the earliest onset and
// unioning culprit journeys (bounded).
func (sc *victimScratch) add(k causeKey, score float64, at simtime.Time, journeys []int) {
	if score <= 0 {
		return
	}
	if sc.gen == 0 {
		// Zero-value scratch: a generation of 0 would make every zeroed
		// stamp look live, so start the first generation lazily.
		sc.reset()
	}
	si := k.slot()
	if si < 0 {
		return
	}
	if si >= len(sc.slotGen) {
		sc.grow(si)
	}
	if sc.slotGen[si] == sc.gen {
		a := &sc.accs[sc.slots[si]]
		a.score += score
		if at < a.at {
			a.at = at
		}
		if len(a.journeys) < maxCulpritJourneys {
			a.journeys = append(a.journeys, journeys...)
		}
		return
	}
	// Reuse a retired slot (and its journey buffer) when one is free.
	var a *causeAcc
	if n := len(sc.accs); n < cap(sc.accs) {
		sc.accs = sc.accs[:n+1]
		a = &sc.accs[n]
		a.journeys = a.journeys[:0]
	} else {
		sc.accs = append(sc.accs, causeAcc{})
		a = &sc.accs[len(sc.accs)-1]
	}
	a.key, a.score, a.at = k, score, at
	a.journeys = append(a.journeys, journeys...)
	sc.slots[si] = int32(len(sc.accs) - 1)
	sc.slotGen[si] = sc.gen
}

// workerArena is one worker's long-lived scratch for an entire diagnosis
// run: the per-victim cause accumulator plus the §4.2 path-walk buffers.
// Each worker of the partitioned fan-out owns one arena for its whole run
// instead of round-tripping a sync.Pool per victim, so the scratch
// population — and with it the run's bytes/op — is bounded by the worker
// count, not the victim count.
type workerArena struct {
	sc victimScratch
	cs collectScratch
	// used marks an arena that has been through the pool before, for the
	// scratch-recycle-rate metrics.
	used bool
}

var arenaPool = sync.Pool{New: func() any { return new(workerArena) }}

// getArena takes an arena from the pool and reports whether it is a warm
// recycle. Ownership transfers to the caller for the length of a run;
// putArena returns it.
func getArena() (a *workerArena, reused bool) {
	//mslint:allow poolreset ownership transfers to the caller for a whole run; every victim resets sc before use and putArena returns the arena
	a = arenaPool.Get().(*workerArena)
	reused = a.used
	a.used = true
	return a, reused
}

func putArena(a *workerArena) { arenaPool.Put(a) }

// diagnoseVictim runs §4.1–§4.3 for one victim against the caller's arena.
func (d *diagnoser) diagnoseVictim(v Victim, a *workerArena) Diagnosis {
	// Wall-clock cost is only read when a registry is live; the disabled
	// path must not pay for time.Now.
	var began time.Time
	if d.victimNS != nil { //mslint:allow obssafe nil check guards the expensive time.Now below, not a method call
		began = time.Now() //mslint:allow nondet per-victim latency sample for obs histograms, never in the Diagnosis
	}
	sc := &a.sc
	sc.reset()
	d.diagnoseAt(d.st.CompIDOf(v.Comp), v.ArriveAt, 1.0, 0, a)

	causes := make([]Cause, 0, len(sc.accs))
	for i := range sc.accs {
		acc := &sc.accs[i]
		if acc.score < d.cfg.MinScore {
			continue
		}
		var js []int
		if len(acc.journeys) > 0 {
			js = append(make([]int, 0, len(acc.journeys)), acc.journeys...)
		}
		causes = append(causes, Cause{
			Comp:            d.st.CompName(acc.key.comp),
			Kind:            acc.key.kind,
			Score:           acc.score,
			At:              acc.at,
			CulpritJourneys: js,
		})
	}
	d.victims.Add(1)
	if d.victimNS != nil { //mslint:allow obssafe nil check guards the expensive time.Since below, not a method call
		elapsed := time.Since(began) //mslint:allow nondet per-victim latency sample for obs histograms, never in the Diagnosis
		d.victimNS.Observe(elapsed)
		d.tracer.Record(obs.Span{
			ID: d.tracer.NewID(), Parent: -1,
			Name: v.Comp, Kind: "victim",
			Start: began, Dur: elapsed,
		})
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Score != causes[j].Score {
			return causes[i].Score > causes[j].Score
		}
		if causes[i].Comp != causes[j].Comp {
			return causes[i].Comp < causes[j].Comp
		}
		return causes[i].Kind < causes[j].Kind
	})
	return Diagnosis{Victim: v, Causes: causes}
}

// diagnoseAt analyses the queuing period at comp ending at t, scaling all
// scores by weight (recursive shares), and accumulates causes into the
// arena's scratch.
func (d *diagnoser) diagnoseAt(comp tracestore.CompID, t simtime.Time, weight float64, depth int, a *workerArena) {
	if depth > d.cfg.MaxRecursionDepth || weight <= 0 {
		return
	}
	qp := d.st.QueuingPeriodThresholdID(comp, t, d.cfg.QueueThreshold)
	if qp == nil || qp.NIn == 0 {
		return
	}
	r := d.st.PeakRateID(comp)
	if r <= 0 {
		return
	}
	ls := localDiagnose(qp, r)
	totalQ := ls.Si + ls.Sp
	if totalQ <= 0 {
		return
	}

	if ls.Sp > 0 {
		// Local slow processing at comp. Culprit packets are the
		// period's arrivals: the packets the NF was slow on (§6.4
		// uses these to surface bug-triggering flows).
		a.sc.add(causeKey{comp, CulpritLocalProcessing}, weight*ls.Sp, qp.Start, d.periodJourneys(comp, qp))
	}
	if ls.Si > 0 {
		// Upstream pressure: split across the source and upstream NFs
		// by timespan analysis, then recurse into reducing NFs (§4.3).
		budget := weight * ls.Si
		for _, pr := range d.propagate(comp, qp, budget, a) {
			d.attribute(pr, depth, a)
		}
	}
}

// attribute folds one propagated share into the accumulator: source shares
// become traffic causes, upstream shares either recurse (Figure 7 split) or
// land as local processing at the squeezing NF.
func (d *diagnoser) attribute(pr propagated, depth int, a *workerArena) {
	if pr.comp == d.src {
		a.sc.add(causeKey{pr.comp, CulpritSourceTraffic}, pr.score, d.firstEmit(pr.path), pr.path.journeys)
		return
	}
	// Recurse into the NF that squeezed the timespan: its own queuing
	// period when the subset's first packet arrived explains whether the
	// squeeze was local processing or its own input (Figure 7).
	anchor := pr.path.lastArrive[pr.compIdx]
	sub := d.splitAtNF(pr.comp, anchor, pr.score)
	if sub == nil {
		// No queuing there — attribute the squeeze to local behaviour
		// at that NF (e.g. an interrupt that buffered packets arrives
		// as pure processing).
		a.sc.add(causeKey{pr.comp, CulpritLocalProcessing}, pr.score, anchor, pr.path.journeys)
		return
	}
	if sub.localShare > 0 {
		a.sc.add(causeKey{pr.comp, CulpritLocalProcessing}, sub.localShare, sub.qp.Start, d.periodJourneys(pr.comp, sub.qp))
	}
	if sub.inputShare > 0 {
		d.diagnoseAtPeriod(pr.comp, sub.qp, sub.inputShare/maxf(sub.ls.Si, 1e-9), depth+1, a)
	}
}

// nfSplit is the Figure 7 decomposition of a recursive share at an NF.
type nfSplit struct {
	qp         *tracestore.QueuingPeriod
	ls         LocalScores
	localShare float64
	inputShare float64
}

// splitAtNF decomposes score at an upstream NF into local-processing and
// input components, proportional to that NF's own Sp and Si over the
// queuing period anchored at the PreSet subset's first arrival. The
// period and its scores are memoized per (NF, anchor); only the linear
// score scaling happens per call.
func (d *diagnoser) splitAtNF(comp tracestore.CompID, anchor simtime.Time, score float64) *nfSplit {
	sr := d.memo.split.do(periodKey{comp: comp, end: anchor}, d.memoHits, d.memoMisses, d.memoReused, func() *splitResult {
		qp := d.st.QueuingPeriodThresholdID(comp, anchor, d.cfg.QueueThreshold)
		if qp == nil || qp.NIn == 0 {
			return nil
		}
		r := d.st.PeakRateID(comp)
		if r <= 0 {
			return nil
		}
		ls := localDiagnose(qp, r)
		total := ls.Si + ls.Sp
		if total <= 0 {
			return nil
		}
		return &splitResult{qp: qp, ls: ls, total: total}
	})
	if sr == nil {
		return nil
	}
	return &nfSplit{
		qp:         sr.qp,
		ls:         sr.ls,
		localShare: score * sr.ls.Sp / sr.total,
		inputShare: score * sr.ls.Si / sr.total,
	}
}

// diagnoseAtPeriod recurses the §4.2 propagation over an already-computed
// queuing period, with scores scaled so the propagated budget equals
// weightFrac * Si(qp).
func (d *diagnoser) diagnoseAtPeriod(comp tracestore.CompID, qp *tracestore.QueuingPeriod, weightFrac float64, depth int, a *workerArena) {
	if depth > d.cfg.MaxRecursionDepth || weightFrac <= 0 {
		return
	}
	r := d.st.PeakRateID(comp)
	if r <= 0 {
		return
	}
	ls := localDiagnose(qp, r)
	if ls.Si <= 0 {
		return
	}
	budget := weightFrac * ls.Si
	for _, pr := range d.propagate(comp, qp, budget, a) {
		d.attribute(pr, depth, a)
	}
}

// periodJourneys lists the journeys of a queuing period's arrivals,
// memoized per (NF, period). Callers treat the result as read-only.
func (d *diagnoser) periodJourneys(comp tracestore.CompID, qp *tracestore.QueuingPeriod) []int {
	return d.memo.periodJ.do(periodKey{comp: comp, start: qp.Start, end: qp.End}, d.memoHits, d.memoMisses, d.memoReused, func() []int {
		v := d.st.ViewID(comp)
		if v == nil {
			return nil
		}
		var out []int
		for ai := qp.ArrivalFirst; ai <= qp.ArrivalLast && ai < len(v.Arrivals); ai++ {
			if j := v.Arrivals[ai].Journey; j >= 0 {
				out = append(out, j)
			}
		}
		return out
	})
}

// firstEmit returns the earliest emission time of a path subset.
func (d *diagnoser) firstEmit(p *pathStats) simtime.Time {
	if len(p.firstArrive) > 0 && p.firstArrive[0] != simtime.Never {
		return p.firstArrive[0]
	}
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
