package core

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"microscope/internal/obs"
	"microscope/internal/par"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// Engine runs Microscope diagnosis over a reconstructed trace store. It is
// safe for concurrent use; per-victim diagnoses fan out over a bounded
// worker pool (Config.Workers) and share one memoized view of the trace.
type Engine struct {
	cfg Config

	// mu guards the per-store memo below (see memo.go).
	mu        sync.Mutex
	memoStore *tracestore.Store
	memo      *diagMemo

	// panics counts victims quarantined by the ContainPanics boundary.
	panics atomic.Int64
}

// NewEngine creates a diagnosis engine.
func NewEngine(cfg Config) *Engine {
	cfg.setDefaults()
	return &Engine{cfg: cfg}
}

// diagnoser is per-run state: the engine config bound to one store's
// immutable index and memo. Its methods are safe to call from many
// goroutines at once.
type diagnoser struct {
	cfg  Config
	st   *tracestore.Store
	idx  *tracestore.Index
	memo *diagMemo
	// src is the interned traffic source (NoComp when the trace has none).
	src tracestore.CompID

	// Observability handles, all nil (zero-cost no-ops) when neither the
	// config nor the process default carries a registry.
	victims       *obs.Counter
	victimNS      *obs.Histogram
	victimPanics  *obs.Counter
	memoHits      *obs.Counter
	memoMisses    *obs.Counter
	scratchNew    *obs.Counter
	scratchReused *obs.Counter
	tracer        *obs.Tracer
}

// newDiagnoser binds the engine to a store: the shared index is built (or
// fetched) once, so repeated single-victim calls stop being O(trace) each.
func (e *Engine) newDiagnoser(st *tracestore.Store) *diagnoser {
	d := &diagnoser{
		cfg:  e.cfg,
		st:   st,
		idx:  st.Index(e.cfg.QueueThreshold),
		memo: e.memoFor(st),
		src:  st.SourceID(),
	}
	if reg := obs.Or(e.cfg.Obs); reg != nil {
		d.victims = reg.Counter("microscope_diag_victims_total")
		d.victimNS = reg.Histogram("microscope_diag_victim_ns")
		d.victimPanics = reg.Counter("microscope_diag_victim_panics_total")
		d.memoHits = reg.Counter("microscope_diag_memo_hits_total")
		d.memoMisses = reg.Counter("microscope_diag_memo_misses_total")
		d.scratchNew = reg.Counter("microscope_diag_scratch_new_total")
		d.scratchReused = reg.Counter("microscope_diag_scratch_reused_total")
		d.tracer = reg.Tracer()
	}
	return d
}

// Diagnose selects victims and produces a ranked diagnosis for each,
// fanning the per-victim causal analyses out over the worker pool. Results
// are merged in victim order, so the output is byte-identical for any
// worker count.
func (e *Engine) Diagnose(st *tracestore.Store) []Diagnosis {
	d := e.newDiagnoser(st)
	return e.diagnoseAll(d, d.findVictims())
}

// DiagnoseVictims diagnoses an externally chosen victim list (the paper's
// "operators define the victim packets" mode) with the same parallel
// fan-out as Diagnose. Output order matches the input victim order.
func (e *Engine) DiagnoseVictims(st *tracestore.Store, victims []Victim) []Diagnosis {
	return e.diagnoseAll(e.newDiagnoser(st), victims)
}

// DiagnoseVictimsContext is DiagnoseVictims with cooperative cancellation:
// a cancelled context stops the per-victim fan-out promptly and returns
// ctx's error alongside the partial output — slots for victims never
// diagnosed are zero-valued Diagnoses.
func (e *Engine) DiagnoseVictimsContext(ctx context.Context, st *tracestore.Store, victims []Victim) ([]Diagnosis, error) {
	d := e.newDiagnoser(st)
	out := make([]Diagnosis, len(victims))
	err := par.DoCtx(ctx, len(victims), e.cfg.Workers, e.victimTask(d, victims, out))
	return out, err
}

func (e *Engine) diagnoseAll(d *diagnoser, victims []Victim) []Diagnosis {
	out := make([]Diagnosis, len(victims))
	par.Do(len(victims), e.cfg.Workers, e.victimTask(d, victims, out))
	return out
}

// victimTask builds the per-victim work function the fan-out runs. With
// ContainPanics set, each task is a crash-containment boundary: a panic
// quarantines that one victim — its slot keeps the Victim with no causes,
// its pooled scratch is simply never returned — and the other workers
// never notice. Quarantine is deterministic: whether a given victim
// panics depends only on the victim, not on worker scheduling.
func (e *Engine) victimTask(d *diagnoser, victims []Victim, out []Diagnosis) func(i int) {
	plain := func(i int) {
		if e.cfg.ChaosHook != nil {
			e.cfg.ChaosHook("victim:" + strconv.Itoa(i))
		}
		out[i] = d.diagnoseVictim(victims[i])
	}
	if !e.cfg.ContainPanics {
		return plain
	}
	return func(i int) {
		if err := resilience.Contain("victim", func() { plain(i) }); err != nil {
			out[i] = Diagnosis{Victim: victims[i]}
			e.panics.Add(1)
			d.victimPanics.Inc()
		}
	}
}

// ContainedPanics returns how many victims this engine quarantined via the
// ContainPanics boundary over its lifetime.
func (e *Engine) ContainedPanics() int64 { return e.panics.Load() }

// FindVictims exposes victim selection on its own (used by tests and by the
// evaluation harness).
func (e *Engine) FindVictims(st *tracestore.Store) []Victim {
	return e.newDiagnoser(st).findVictims()
}

// DiagnoseVictim diagnoses a single victim.
func (e *Engine) DiagnoseVictim(st *tracestore.Store, v Victim) Diagnosis {
	return e.newDiagnoser(st).diagnoseVictim(v)
}

// findVictims implements the victim selection of §4: delivered packets
// beyond the latency percentile, and packets whose records vanish (losses).
// For each victim we pick the NFs on its path whose local queueing delay is
// abnormal — more than k standard deviations beyond that NF's typical delay
// (NetMedic-style recent-history test, §4.1).
func (d *diagnoser) findVictims() []Victim {
	js := d.st.Journeys
	if len(js) == 0 {
		return nil
	}
	// Per-NF queue-delay statistics, the latency threshold, and the trace
	// end come from the shared immutable index instead of an O(trace)
	// rescan per call.
	threshold := d.idx.LatencyPercentile(d.cfg.VictimPercentile)
	traceEnd := d.idx.TraceEnd()

	// Degraded trace health means vanished records are more likely
	// telemetry loss than packet loss; classifying them as loss victims
	// would blame phantom drops, so suppress that class unless forced.
	lossOK := !d.cfg.SkipLossVictims
	if lossOK && !d.cfg.LossVictimsWhenDegraded && d.st.Health().Degraded() {
		lossOK = false
	}

	var victims []Victim
	for i := range js {
		j := &js[i]
		switch {
		case j.Delivered && float64(j.Latency()) >= threshold && threshold > 0:
			victims = d.victimHops(victims, i, j, VictimLatency)
		case !j.Delivered && lossOK && !j.Quarantined:
			// Ignore packets merely in flight at trace end.
			lastSeen := j.EmittedAt
			for h := range j.Hops {
				if t := j.Hops[h].ReadAt; t > lastSeen {
					lastSeen = t
				}
				if t := j.Hops[h].DepartAt; t > lastSeen {
					lastSeen = t
				}
			}
			if traceEnd.Sub(lastSeen) < d.cfg.TraceEndSlack {
				continue
			}
			// A drop happens at the enqueue onto the NEXT queue:
			// the packet's records end at the last NF that read
			// it. Diagnose at the downstream queue it most
			// plausibly died in — the fullest one at that moment.
			if len(j.Hops) == 0 {
				continue
			}
			last := j.Hops[len(j.Hops)-1]
			comp, at := last.Comp, last.ArriveAt
			if last.ReadAt != 0 {
				best, bestLen := tracestore.NoComp, -1
				for _, dn := range d.st.DownstreamsID(last.Comp) {
					if l := d.st.QueueLenAtID(dn, lastSeen); l > bestLen {
						best, bestLen = dn, l
					}
				}
				if best != tracestore.NoComp {
					comp, at = best, lastSeen
				}
			}
			victims = append(victims, Victim{
				Journey:    i,
				Comp:       d.st.CompName(comp),
				ArriveAt:   at,
				QueueDelay: lastSeen.Sub(last.ArriveAt),
				Kind:       VictimLoss,
				Tuple:      j.Tuple,
				HasTuple:   j.HasTuple,
			})
		}
	}
	// Apply the victim cap by even sampling across the whole run rather
	// than truncating: a prefix cut would bias diagnosis toward the
	// earliest problems and silently drop later ones.
	if d.cfg.MaxVictims > 0 && len(victims) > d.cfg.MaxVictims {
		sampled := make([]Victim, 0, d.cfg.MaxVictims)
		step := float64(len(victims)) / float64(d.cfg.MaxVictims)
		for k := 0; k < d.cfg.MaxVictims; k++ {
			sampled = append(sampled, victims[int(float64(k)*step)])
		}
		victims = sampled
	}
	return victims
}

// victimHops appends the abnormal hops of a latency victim to out.
func (d *diagnoser) victimHops(out []Victim, idx int, j *tracestore.Journey, kind VictimKind) []Victim {
	n := len(out)
	var maxHop *tracestore.JourneyHop
	var maxDelay simtime.Duration = -1
	for h := range j.Hops {
		hop := &j.Hops[h]
		if hop.ReadAt == 0 {
			continue
		}
		delay := hop.ReadAt.Sub(hop.ArriveAt)
		if delay > maxDelay {
			maxDelay = delay
			maxHop = hop
		}
		w := d.idx.DelayStatsID(hop.Comp)
		if w != nil && w.Abnormal(float64(delay), d.cfg.AbnormalStdDevs, 32) {
			out = append(out, Victim{
				Journey:    idx,
				Comp:       d.st.CompName(hop.Comp),
				ArriveAt:   hop.ArriveAt,
				QueueDelay: delay,
				Kind:       kind,
				Tuple:      j.Tuple,
				HasTuple:   j.HasTuple,
			})
		}
	}
	// Fall back to the dominant hop so every victim is diagnosable.
	if len(out) == n && maxHop != nil {
		out = append(out, Victim{
			Journey:    idx,
			Comp:       d.st.CompName(maxHop.Comp),
			ArriveAt:   maxHop.ArriveAt,
			QueueDelay: maxDelay,
			Kind:       kind,
			Tuple:      j.Tuple,
			HasTuple:   j.HasTuple,
		})
	}
	return out
}

// causeKey merges recursion branches blaming the same culprit.
type causeKey struct {
	comp tracestore.CompID
	kind CulpritKind
}

// maxCulpritJourneys bounds the per-cause journey union.
const maxCulpritJourneys = 4096

// causeAcc is one accumulating cause inside the scratch: the Cause fields
// minus the string conversion, with a reusable journey buffer.
type causeAcc struct {
	key      causeKey
	score    float64
	at       simtime.Time
	journeys []int
}

// victimScratch is the pooled per-victim accumulator. The recursion writes
// into it, diagnoseVictim copies the surviving causes out (they escape into
// the report), and the buffers go back to the pool — steady-state diagnosis
// allocates only what it returns.
type victimScratch struct {
	idx  map[causeKey]int32
	accs []causeAcc
	// used distinguishes a pool recycle from a fresh allocation for the
	// scratch-recycle-rate metrics.
	used bool
}

var victimPool = sync.Pool{New: func() any {
	return &victimScratch{idx: make(map[causeKey]int32)}
}}

// add merges a cause into the accumulator, keeping the earliest onset and
// unioning culprit journeys (bounded).
func (sc *victimScratch) add(k causeKey, score float64, at simtime.Time, journeys []int) {
	if score <= 0 {
		return
	}
	if i, ok := sc.idx[k]; ok {
		a := &sc.accs[i]
		a.score += score
		if at < a.at {
			a.at = at
		}
		if len(a.journeys) < maxCulpritJourneys {
			a.journeys = append(a.journeys, journeys...)
		}
		return
	}
	// Reuse a retired slot (and its journey buffer) when one is free.
	var a *causeAcc
	if n := len(sc.accs); n < cap(sc.accs) {
		sc.accs = sc.accs[:n+1]
		a = &sc.accs[n]
		a.journeys = a.journeys[:0]
	} else {
		sc.accs = append(sc.accs, causeAcc{})
		a = &sc.accs[len(sc.accs)-1]
	}
	a.key, a.score, a.at = k, score, at
	a.journeys = append(a.journeys, journeys...)
	sc.idx[k] = int32(len(sc.accs) - 1)
}

func (sc *victimScratch) reset() {
	clear(sc.idx)
	sc.accs = sc.accs[:0]
}

// diagnoseVictim runs §4.1–§4.3 for one victim.
func (d *diagnoser) diagnoseVictim(v Victim) Diagnosis {
	// Wall-clock cost is only read when a registry is live; the disabled
	// path must not pay for time.Now.
	var began time.Time
	if d.victimNS != nil { //mslint:allow obssafe nil check guards the expensive time.Now below, not a method call
		began = time.Now() //mslint:allow nondet per-victim latency sample for obs histograms, never in the Diagnosis
	}
	sc := victimPool.Get().(*victimScratch)
	if sc.used {
		d.scratchReused.Add(1)
	} else {
		sc.used = true
		d.scratchNew.Add(1)
	}
	d.diagnoseAt(d.st.CompIDOf(v.Comp), v.ArriveAt, 1.0, 0, sc)

	causes := make([]Cause, 0, len(sc.accs))
	for i := range sc.accs {
		a := &sc.accs[i]
		if a.score < d.cfg.MinScore {
			continue
		}
		var js []int
		if len(a.journeys) > 0 {
			js = append(make([]int, 0, len(a.journeys)), a.journeys...)
		}
		causes = append(causes, Cause{
			Comp:            d.st.CompName(a.key.comp),
			Kind:            a.key.kind,
			Score:           a.score,
			At:              a.at,
			CulpritJourneys: js,
		})
	}
	sc.reset()
	victimPool.Put(sc)
	d.victims.Add(1)
	if d.victimNS != nil { //mslint:allow obssafe nil check guards the expensive time.Since below, not a method call
		elapsed := time.Since(began) //mslint:allow nondet per-victim latency sample for obs histograms, never in the Diagnosis
		d.victimNS.Observe(elapsed)
		d.tracer.Record(obs.Span{
			ID: d.tracer.NewID(), Parent: -1,
			Name: v.Comp, Kind: "victim",
			Start: began, Dur: elapsed,
		})
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].Score != causes[j].Score {
			return causes[i].Score > causes[j].Score
		}
		if causes[i].Comp != causes[j].Comp {
			return causes[i].Comp < causes[j].Comp
		}
		return causes[i].Kind < causes[j].Kind
	})
	return Diagnosis{Victim: v, Causes: causes}
}

// diagnoseAt analyses the queuing period at comp ending at t, scaling all
// scores by weight (recursive shares), and accumulates causes.
func (d *diagnoser) diagnoseAt(comp tracestore.CompID, t simtime.Time, weight float64, depth int, sc *victimScratch) {
	if depth > d.cfg.MaxRecursionDepth || weight <= 0 {
		return
	}
	qp := d.st.QueuingPeriodThresholdID(comp, t, d.cfg.QueueThreshold)
	if qp == nil || qp.NIn == 0 {
		return
	}
	r := d.st.PeakRateID(comp)
	if r <= 0 {
		return
	}
	ls := localDiagnose(qp, r)
	totalQ := ls.Si + ls.Sp
	if totalQ <= 0 {
		return
	}

	if ls.Sp > 0 {
		// Local slow processing at comp. Culprit packets are the
		// period's arrivals: the packets the NF was slow on (§6.4
		// uses these to surface bug-triggering flows).
		sc.add(causeKey{comp, CulpritLocalProcessing}, weight*ls.Sp, qp.Start, d.periodJourneys(comp, qp))
	}
	if ls.Si > 0 {
		// Upstream pressure: split across the source and upstream NFs
		// by timespan analysis, then recurse into reducing NFs (§4.3).
		budget := weight * ls.Si
		for _, pr := range d.propagate(comp, qp, budget) {
			d.attribute(pr, depth, sc)
		}
	}
}

// attribute folds one propagated share into the accumulator: source shares
// become traffic causes, upstream shares either recurse (Figure 7 split) or
// land as local processing at the squeezing NF.
func (d *diagnoser) attribute(pr propagated, depth int, sc *victimScratch) {
	if pr.comp == d.src {
		sc.add(causeKey{pr.comp, CulpritSourceTraffic}, pr.score, d.firstEmit(pr.path), pr.path.journeys)
		return
	}
	// Recurse into the NF that squeezed the timespan: its own queuing
	// period when the subset's first packet arrived explains whether the
	// squeeze was local processing or its own input (Figure 7).
	anchor := pr.path.lastArrive[pr.compIdx]
	sub := d.splitAtNF(pr.comp, anchor, pr.score)
	if sub == nil {
		// No queuing there — attribute the squeeze to local behaviour
		// at that NF (e.g. an interrupt that buffered packets arrives
		// as pure processing).
		sc.add(causeKey{pr.comp, CulpritLocalProcessing}, pr.score, anchor, pr.path.journeys)
		return
	}
	if sub.localShare > 0 {
		sc.add(causeKey{pr.comp, CulpritLocalProcessing}, sub.localShare, sub.qp.Start, d.periodJourneys(pr.comp, sub.qp))
	}
	if sub.inputShare > 0 {
		d.diagnoseAtPeriod(pr.comp, sub.qp, sub.inputShare/maxf(sub.ls.Si, 1e-9), depth+1, sc)
	}
}

// nfSplit is the Figure 7 decomposition of a recursive share at an NF.
type nfSplit struct {
	qp         *tracestore.QueuingPeriod
	ls         LocalScores
	localShare float64
	inputShare float64
}

// splitAtNF decomposes score at an upstream NF into local-processing and
// input components, proportional to that NF's own Sp and Si over the
// queuing period anchored at the PreSet subset's first arrival. The
// period and its scores are memoized per (NF, anchor); only the linear
// score scaling happens per call.
func (d *diagnoser) splitAtNF(comp tracestore.CompID, anchor simtime.Time, score float64) *nfSplit {
	sr := d.memo.split.do(periodKey{comp: comp, end: anchor}, d.memoHits, d.memoMisses, func() *splitResult {
		qp := d.st.QueuingPeriodThresholdID(comp, anchor, d.cfg.QueueThreshold)
		if qp == nil || qp.NIn == 0 {
			return nil
		}
		r := d.st.PeakRateID(comp)
		if r <= 0 {
			return nil
		}
		ls := localDiagnose(qp, r)
		total := ls.Si + ls.Sp
		if total <= 0 {
			return nil
		}
		return &splitResult{qp: qp, ls: ls, total: total}
	})
	if sr == nil {
		return nil
	}
	return &nfSplit{
		qp:         sr.qp,
		ls:         sr.ls,
		localShare: score * sr.ls.Sp / sr.total,
		inputShare: score * sr.ls.Si / sr.total,
	}
}

// diagnoseAtPeriod recurses the §4.2 propagation over an already-computed
// queuing period, with scores scaled so the propagated budget equals
// weightFrac * Si(qp).
func (d *diagnoser) diagnoseAtPeriod(comp tracestore.CompID, qp *tracestore.QueuingPeriod, weightFrac float64, depth int, sc *victimScratch) {
	if depth > d.cfg.MaxRecursionDepth || weightFrac <= 0 {
		return
	}
	r := d.st.PeakRateID(comp)
	if r <= 0 {
		return
	}
	ls := localDiagnose(qp, r)
	if ls.Si <= 0 {
		return
	}
	budget := weightFrac * ls.Si
	for _, pr := range d.propagate(comp, qp, budget) {
		d.attribute(pr, depth, sc)
	}
}

// periodJourneys lists the journeys of a queuing period's arrivals,
// memoized per (NF, period). Callers treat the result as read-only.
func (d *diagnoser) periodJourneys(comp tracestore.CompID, qp *tracestore.QueuingPeriod) []int {
	return d.memo.periodJ.do(periodKey{comp: comp, start: qp.Start, end: qp.End}, d.memoHits, d.memoMisses, func() []int {
		v := d.st.ViewID(comp)
		if v == nil {
			return nil
		}
		var out []int
		for ai := qp.ArrivalFirst; ai <= qp.ArrivalLast && ai < len(v.Arrivals); ai++ {
			if j := v.Arrivals[ai].Journey; j >= 0 {
				out = append(out, j)
			}
		}
		return out
	})
}

// firstEmit returns the earliest emission time of a path subset.
func (d *diagnoser) firstEmit(p *pathStats) simtime.Time {
	if len(p.firstArrive) > 0 && p.firstArrive[0] != simtime.Never {
		return p.firstArrive[0]
	}
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
