package core

import (
	"sync"

	"microscope/internal/obs"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// The §4.3 recursion revisits the same upstream queuing periods for many
// victims: every victim of one overload episode walks into the same
// (NF, period) nodes upstream. This file memoizes the budget-independent
// part of each node — the timespan decomposition, the Figure 7 Si/Sp split,
// and the period's culprit journeys — keyed by (NF, period), with
// single-flight semantics so concurrent workers hitting the same node
// compute it once and everyone else blocks for the result instead of
// duplicating the work.
//
// Determinism: every cached value is a pure function of its key over the
// immutable trace index, so the cache's contents never depend on which
// worker populated them or in what order. The budget scaling applied at use
// sites reproduces the pre-memoization arithmetic expression for expression,
// keeping scores bit-identical across worker counts.

// periodKey identifies a queuing period at a component. For a fixed store
// and queue threshold, (comp, start, end) uniquely determines the period.
// The component is its interned CompID, so hashing a key never touches a
// string.
type periodKey struct {
	comp       tracestore.CompID
	start, end simtime.Time
}

// flight is a single-flight memo table: do(k, fn) returns fn()'s value for
// k, computing it at most once; concurrent callers of the same key wait for
// the first computation instead of repeating it.
type flight[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	// ok distinguishes a completed computation from one whose fn panicked
	// mid-flight (the panic is contained further up; see below). The write
	// happens before close(done), so waiters reading after <-done see it.
	ok bool
}

// do returns fn()'s value for k, computing it at most once. hits/misses
// are nil-safe observability counters (memo effectiveness is the pipeline's
// main cache-health signal).
//
// Panic safety: when fn panics, the flight is unpoisoned — the key is
// removed so later callers recompute, and waiters already blocked on the
// flight are released and compute fn themselves instead of trusting a
// half-built value. The panic itself keeps unwinding to the per-victim
// containment boundary (resilience.Contain); do never swallows it.
func (f *flight[K, V]) do(k K, hits, misses *obs.Counter, fn func() V) V {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[K]*flightCall[V])
	}
	if c, ok := f.m[k]; ok {
		f.mu.Unlock()
		hits.Add(1)
		<-c.done
		if c.ok {
			return c.val
		}
		// The first flight panicked before producing a value; fall through
		// to an independent computation in this caller's own containment
		// scope.
		return fn()
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.m[k] = c
	f.mu.Unlock()
	misses.Add(1)
	defer func() {
		if !c.ok {
			f.mu.Lock()
			delete(f.m, k)
			f.mu.Unlock()
			close(c.done)
		}
	}()
	c.val = fn()
	c.ok = true
	close(c.done)
	return c.val
}

// propPath is the budget-independent timespan decomposition of one upstream
// path of a queuing period: everything propagate needs except the score
// scaling.
type propPath struct {
	path     *pathStats
	weight   float64 // n / total PreSet packets
	shares   []simtime.Duration
	srcShare simtime.Duration
	sum      simtime.Duration
}

// splitResult is the memoized Figure 7 decomposition at an upstream NF:
// the queuing period anchored at a PreSet last-arrival plus its local
// scores. nil period means "no queuing there". The local/input shares are
// linear in the caller's score, so only the ratio inputs are cached.
type splitResult struct {
	qp    *tracestore.QueuingPeriod
	ls    LocalScores
	total float64
}

// diagMemo is the per-(store, threshold) diagnosis cache.
type diagMemo struct {
	prop    flight[periodKey, []propPath]
	split   flight[periodKey, *splitResult]
	periodJ flight[periodKey, []int]
}

// memoFor returns the engine's diagnosis cache for st, creating it when the
// engine sees st for the first time. Engines are typically bound to one
// store for their lifetime (the experiments' rank-scoring loops, the
// pipeline); a store switch just drops the old cache.
func (e *Engine) memoFor(st *tracestore.Store) *diagMemo {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memoStore != st || e.memo == nil {
		e.memoStore = st
		e.memo = &diagMemo{}
	}
	return e.memo
}
