package core

import (
	"sync"

	"microscope/internal/obs"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// The §4.3 recursion revisits the same upstream queuing periods for many
// victims: every victim of one overload episode walks into the same
// (NF, period) nodes upstream. This file memoizes the budget-independent
// part of each node — the timespan decomposition, the Figure 7 Si/Sp split,
// and the period's culprit journeys — keyed by (NF, period), with
// single-flight semantics so concurrent workers hitting the same node
// compute it once and everyone else blocks for the result instead of
// duplicating the work.
//
// The memo is sharded: keys hash onto power-of-two shards, each with its
// own lock, so workers touching different regions of the deployment graph
// never serialize on one global mutex. The NF-partitioned scheduler
// (diagnose.go) assigns victims of one NF subgraph to one worker, which
// makes a worker's keys mostly shard-local and cross-worker collisions
// rare; when they do collide, only the colliding shard is contended, not
// the whole table.
//
// Determinism: every cached value is a pure function of its key over the
// immutable trace index, so the cache's contents never depend on which
// worker populated them or in what order. The budget scaling applied at use
// sites reproduces the pre-memoization arithmetic expression for expression,
// keeping scores bit-identical across worker counts.

// periodKey identifies a queuing period at a component. For a fixed store
// and queue threshold, (comp, start, end) uniquely determines the period.
// The component is its interned CompID, so hashing a key never touches a
// string.
type periodKey struct {
	comp       tracestore.CompID
	start, end simtime.Time
}

// memoShards is the shard count of every single-flight table. Power of two
// so shard selection is a mask; 64 shards keep the collision probability
// negligible at realistic worker counts (≤ GOMAXPROCS) while costing only
// a few KB per table.
const memoShards = 64

// shardOf mixes a periodKey into its shard index. The three fields are
// folded through distinct 64-bit odd multipliers (splitmix64-style) so
// nearby periods — same comp, adjacent times — spread across shards
// instead of clustering on one.
func shardOf(k periodKey) uint32 {
	h := uint64(uint32(k.comp)) * 0x9E3779B97F4A7C15
	h ^= uint64(k.start) * 0xBF58476D1CE4E5B9
	h ^= uint64(k.end) * 0x94D049BB133111EB
	h ^= h >> 29
	return uint32(h) & (memoShards - 1)
}

// flight is a sharded single-flight memo table keyed by periodKey:
// do(k, fn) returns fn()'s value for k, computing it at most once;
// concurrent callers of the same key wait for the first computation
// instead of repeating it.
type flight[V any] struct {
	shards [memoShards]flightShard[V]
}

// flightShard is one lock domain of the table. The pad spaces shards a
// cache line apart so two workers hitting adjacent shards do not false-
// share the mutex word.
type flightShard[V any] struct {
	mu sync.Mutex
	m  map[periodKey]*flightCall[V]
	_  [64 - 16]byte // pad to one cache line
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	// ok distinguishes a completed computation from one whose fn panicked
	// mid-flight (the panic is contained further up; see below). The write
	// happens before close(done), so waiters reading after <-done see it.
	ok bool
}

// do returns fn()'s value for k, computing it at most once. hits/misses
// are nil-safe observability counters (memo effectiveness is the pipeline's
// main cache-health signal). The shard lock is held only for the map
// lookup/insert — never across fn or the wait — so the critical section is
// a few dozen nanoseconds regardless of how expensive the decomposition is.
//
// Panic safety: when fn panics, the flight is unpoisoned — the key is
// removed so later callers recompute, and waiters already blocked on the
// flight are released and compute fn themselves instead of trusting a
// half-built value. The panic itself keeps unwinding to the per-victim
// containment boundary (resilience.Contain); do never swallows it.
func (f *flight[V]) do(k periodKey, hits, misses *obs.Counter, fn func() V) V {
	sh := &f.shards[shardOf(k)]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[periodKey]*flightCall[V])
	}
	if c, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		hits.Add(1)
		<-c.done
		if c.ok {
			return c.val
		}
		// The first flight panicked before producing a value; fall through
		// to an independent computation in this caller's own containment
		// scope.
		return fn()
	}
	c := &flightCall[V]{done: make(chan struct{})}
	sh.m[k] = c
	sh.mu.Unlock()
	misses.Add(1)
	defer func() {
		if !c.ok {
			sh.mu.Lock()
			delete(sh.m, k)
			sh.mu.Unlock()
			close(c.done)
		}
	}()
	c.val = fn()
	c.ok = true
	close(c.done)
	return c.val
}

// propPath is the budget-independent timespan decomposition of one upstream
// path of a queuing period: everything propagate needs except the score
// scaling.
type propPath struct {
	path     *pathStats
	weight   float64 // n / total PreSet packets
	shares   []simtime.Duration
	srcShare simtime.Duration
	sum      simtime.Duration
}

// splitResult is the memoized Figure 7 decomposition at an upstream NF:
// the queuing period anchored at a PreSet last-arrival plus its local
// scores. nil period means "no queuing there". The local/input shares are
// linear in the caller's score, so only the ratio inputs are cached.
type splitResult struct {
	qp    *tracestore.QueuingPeriod
	ls    LocalScores
	total float64
}

// diagMemo is the per-(store, threshold) diagnosis cache.
type diagMemo struct {
	prop    flight[[]propPath]
	split   flight[*splitResult]
	periodJ flight[[]int]
}

// memoFor returns the engine's diagnosis cache for st, creating it when the
// engine sees st for the first time. Engines are typically bound to one
// store for their lifetime (the experiments' rank-scoring loops, the
// pipeline); a store switch just drops the old cache.
func (e *Engine) memoFor(st *tracestore.Store) *diagMemo {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memoStore != st || e.memo == nil {
		e.memoStore = st
		e.memo = &diagMemo{}
	}
	return e.memo
}
