package core

import (
	"sync"

	"microscope/internal/obs"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// The §4.3 recursion revisits the same upstream queuing periods for many
// victims: every victim of one overload episode walks into the same
// (NF, period) nodes upstream. This file memoizes the budget-independent
// part of each node — the timespan decomposition, the Figure 7 Si/Sp split,
// and the period's culprit journeys — keyed by (NF, period), with
// single-flight semantics so concurrent workers hitting the same node
// compute it once and everyone else blocks for the result instead of
// duplicating the work.
//
// The memo is sharded: keys hash onto power-of-two shards, each its own
// sync.Map, so workers touching different regions of the deployment graph
// never serialize on one global mutex — and a *completed* entry is served
// by a single atomic load from the sync.Map's read-only map, no lock at
// all. The mutex inside each sync.Map is only taken on the miss path
// (insertion), which happens once per key for the life of the window.
//
// Determinism: every cached value is a pure function of its key over the
// immutable trace index, so the cache's contents never depend on which
// worker populated them or in what order. The budget scaling applied at use
// sites reproduces the pre-memoization arithmetic expression for expression,
// keeping scores bit-identical across worker counts.
//
// Cross-window carry: the streaming path keeps the memo alive across
// sliding windows. Between two windows (single-threaded — the previous
// window's workers have all joined), Engine.CarryMemo walks the tables,
// evicts entries whose periods reach into evicted history, and remaps the
// survivors' journey/arrival indices onto the new window's merged store.
// Survivors are stamped carried, so the reused-hit counter can report how
// much work the carry actually saved.

// periodKey identifies a queuing period at a component. For a fixed store
// and queue threshold, (comp, start, end) uniquely determines the period.
// The component is its interned CompID, so hashing a key never touches a
// string.
type periodKey struct {
	comp       tracestore.CompID
	start, end simtime.Time
}

// memoShards is the shard count of every single-flight table. Power of two
// so shard selection is a mask; 64 shards keep the collision probability
// negligible at realistic worker counts (≤ GOMAXPROCS) while costing only
// a few KB per table.
const memoShards = 64

// shardOf mixes a periodKey into its shard index. The three fields are
// folded through distinct 64-bit odd multipliers (splitmix64-style) so
// nearby periods — same comp, adjacent times — spread across shards
// instead of clustering on one.
func shardOf(k periodKey) uint32 {
	h := uint64(uint32(k.comp)) * 0x9E3779B97F4A7C15
	h ^= uint64(k.start) * 0xBF58476D1CE4E5B9
	h ^= uint64(k.end) * 0x94D049BB133111EB
	h ^= h >> 29
	return uint32(h) & (memoShards - 1)
}

// flight is a sharded single-flight memo table keyed by periodKey:
// do(k, fn) returns fn()'s value for k, computing it at most once;
// concurrent callers of the same key wait for the first computation
// instead of repeating it.
type flight[V any] struct {
	shards [memoShards]flightShard[V]
}

// flightShard is one shard: a sync.Map of periodKey → *flightCall[V].
// sync.Map fits this workload exactly — per-key write-once, then read-many:
// after an entry is promoted to the read map, hits cost one atomic load.
type flightShard[V any] struct {
	m sync.Map
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	// ok distinguishes a completed computation from one whose fn panicked
	// mid-flight (the panic is contained further up; see below). The write
	// happens before close(done), so waiters reading after <-done see it.
	ok bool
	// carried marks an entry rebound from a previous window by CarryMemo.
	// Written only between window runs (single-threaded), read during
	// runs — the monitor goroutine starts the window's workers after the
	// rebind, which orders the write before every read.
	carried bool
}

// do returns fn()'s value for k, computing it at most once. hits/misses/
// reused are nil-safe observability counters (memo effectiveness is the
// pipeline's main cache-health signal; reused counts hits on entries
// carried over from a previous window). The fast path for a completed
// entry is a lock-free sync.Map load; the per-shard mutex inside sync.Map
// is only touched on first insertion of a key.
//
// Panic safety: when fn panics, the flight is unpoisoned — the key is
// removed so later callers recompute, and waiters already blocked on the
// flight are released and compute fn themselves instead of trusting a
// half-built value. The panic itself keeps unwinding to the per-victim
// containment boundary (resilience.Contain); do never swallows it.
func (f *flight[V]) do(k periodKey, hits, misses, reused *obs.Counter, fn func() V) V {
	sh := &f.shards[shardOf(k)]
	if v, ok := sh.m.Load(k); ok {
		return f.await(v.(*flightCall[V]), hits, reused, fn)
	}
	c := &flightCall[V]{done: make(chan struct{})}
	if prev, loaded := sh.m.LoadOrStore(k, c); loaded {
		return f.await(prev.(*flightCall[V]), hits, reused, fn)
	}
	misses.Add(1)
	defer func() {
		if !c.ok {
			// fn panicked: unpoison. CompareAndDelete (not Delete) so a
			// racing re-insertion under the same key is never clobbered.
			sh.m.CompareAndDelete(k, c)
			close(c.done)
		}
	}()
	c.val = fn()
	c.ok = true
	close(c.done)
	return c.val
}

// await joins an existing flight: count the hit, wait for the value, and
// fall back to an independent computation if the flight died mid-air.
func (f *flight[V]) await(c *flightCall[V], hits, reused *obs.Counter, fn func() V) V {
	hits.Add(1)
	if c.carried {
		reused.Add(1)
	}
	<-c.done
	if c.ok {
		return c.val
	}
	return fn()
}

// rebind walks every completed entry, applying keep: entries it rejects
// are deleted, survivors get their (possibly remapped) value written back
// in place and are stamped carried. In-flight or poisoned entries are
// dropped. Returns the survivor count. Must only be called between window
// runs — it mutates cached values without synchronization beyond the
// caller's single-threadedness.
func (f *flight[V]) rebind(keep func(k periodKey, v V) (V, bool)) int {
	kept := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.m.Range(func(key, value any) bool {
			c := value.(*flightCall[V])
			if !c.ok {
				sh.m.Delete(key)
				return true
			}
			nv, ok := keep(key.(periodKey), c.val)
			if !ok {
				sh.m.Delete(key)
				return true
			}
			c.val = nv
			c.carried = true
			kept++
			return true
		})
	}
	return kept
}

// propPath is the budget-independent timespan decomposition of one upstream
// path of a queuing period: everything propagate needs except the score
// scaling.
type propPath struct {
	path     *pathStats
	weight   float64 // n / total PreSet packets
	shares   []simtime.Duration
	srcShare simtime.Duration
	sum      simtime.Duration
}

// splitResult is the memoized Figure 7 decomposition at an upstream NF:
// the queuing period anchored at a PreSet last-arrival plus its local
// scores. nil period means "no queuing there". The local/input shares are
// linear in the caller's score, so only the ratio inputs are cached.
type splitResult struct {
	qp    *tracestore.QueuingPeriod
	ls    LocalScores
	total float64
}

// diagMemo is the per-(store, threshold) diagnosis cache.
type diagMemo struct {
	prop    flight[[]propPath]
	split   flight[*splitResult]
	periodJ flight[[]int]
}

// memoFor returns the engine's diagnosis cache for st, creating it when the
// engine sees st for the first time. Engines are typically bound to one
// store for their lifetime (the experiments' rank-scoring loops, the
// pipeline); a store switch just drops the old cache — unless the caller
// re-bound it explicitly with CarryMemo (the streaming path).
func (e *Engine) memoFor(st *tracestore.Store) *diagMemo {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.memoStore != st || e.memo == nil {
		e.memoStore = st
		e.memo = &diagMemo{}
	}
	return e.memo
}

// MemoRemap describes how the previous window's merged store maps onto the
// new one, so cached journey/arrival indices can be shifted instead of
// recomputed. The shifts are uniform because eviction only ever removes
// whole segments from the *front* of the window: every evicted journey and
// arrival precedes every retained one in the merged arrays.
type MemoRemap struct {
	// NewStart is the new window's data start. Cached entries whose
	// period starts before it may reference evicted history and must go.
	NewStart simtime.Time
	// JourneyShift is how many journeys were evicted since the previous
	// window.
	JourneyShift int
	// ArrivalShift[comp], indexed by previous-window CompID (valid for
	// the new window too — CarryMemo requires the interner be a prefix),
	// is how many arrivals at comp were evicted.
	ArrivalShift []int32
}

// ResetMemo binds the engine to st with a fresh, empty diagnosis cache,
// dropping anything carried. The streaming path calls it when carry is
// unsound: the interner changed shape, or a nonzero queue threshold makes
// cached periods depend on the (moving) window start.
func (e *Engine) ResetMemo(st *tracestore.Store) {
	e.mu.Lock()
	e.memoStore = st
	e.memo = &diagMemo{}
	e.mu.Unlock()
}

// CarryMemo rebinds the engine's diagnosis cache onto the next window's
// merged store: entries whose periods live entirely in retained history
// survive with their journey/arrival indices shifted per rm; the rest are
// evicted. Returns the survivor count. Call only between window runs, and
// only when the previous window's CompIDs remain valid for st (interner
// prefix property) and the queue threshold is zero — otherwise ResetMemo.
//
// Validity argument, per table:
//   - prop/periodJ keys are (comp, period start, period end). A period
//     starting at or after the new data start saw identical arrivals and
//     reads in both windows (eviction removes only whole leading
//     segments), so its decomposition is unchanged up to the uniform
//     index shifts applied here.
//   - split keys are (comp, anchor). A surviving entry's period (when
//     non-nil) must itself start in retained history; a nil entry records
//     "no queuing period at this anchor", which eviction cannot falsify —
//     removing older arrivals never creates a period where none was — so
//     nil entries survive on the anchor check alone.
func (e *Engine) CarryMemo(st *tracestore.Store, rm MemoRemap) int {
	e.mu.Lock()
	memo := e.memo
	prev := e.memoStore
	e.memoStore = st
	if memo == nil {
		memo = &diagMemo{}
		e.memo = memo
	}
	e.mu.Unlock()
	if prev == nil || prev == st {
		return 0
	}
	arrShift := func(comp tracestore.CompID) int {
		if comp >= 0 && int(comp) < len(rm.ArrivalShift) {
			return int(rm.ArrivalShift[comp])
		}
		return 0
	}
	kept := memo.prop.rebind(func(k periodKey, v []propPath) ([]propPath, bool) {
		if k.start < rm.NewStart {
			return nil, false
		}
		for i := range v {
			// Each cached []propPath owns its pathStats (collectPaths
			// allocates fresh per decomposition), so the in-place shift
			// runs exactly once per entry.
			js := v[i].path.journeys
			for j := range js {
				js[j] -= rm.JourneyShift
			}
		}
		return v, true
	})
	kept += memo.split.rebind(func(k periodKey, v *splitResult) (*splitResult, bool) {
		if k.end < rm.NewStart {
			return nil, false
		}
		if v != nil && v.qp != nil {
			if v.qp.Start < rm.NewStart {
				return nil, false
			}
			d := arrShift(v.qp.Comp)
			v.qp.ArrivalFirst -= d
			v.qp.ArrivalLast -= d
		}
		return v, true
	})
	kept += memo.periodJ.rebind(func(k periodKey, v []int) ([]int, bool) {
		if k.start < rm.NewStart {
			return nil, false
		}
		for i := range v {
			v[i] -= rm.JourneyShift
		}
		return v, true
	})
	return kept
}
