package core

import (
	"math"
	"testing"
	"testing/quick"

	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

func period(tStart, tEnd simtime.Time, ni, np int) *tracestore.QueuingPeriod {
	return &tracestore.QueuingPeriod{
		Comp:  0,
		Start: tStart,
		End:   tEnd,
		NIn:   ni,
		NProc: np,
	}
}

func TestLocalScoresHighInput(t *testing.T) {
	// 1 Mpps NF, 100us period: expected = 100 packets.
	// 150 arrived, 95 processed: Si = 50, Sp = 5.
	qp := period(0, simtime.Time(100*simtime.Microsecond), 150, 95)
	ls := localDiagnose(qp, simtime.MPPS(1))
	if math.Abs(ls.Si-50) > 0.5 {
		t.Errorf("Si: got %v, want ~50", ls.Si)
	}
	if math.Abs(ls.Sp-5) > 0.5 {
		t.Errorf("Sp: got %v, want ~5", ls.Sp)
	}
}

func TestLocalScoresSlowProcessing(t *testing.T) {
	// 80 arrived (< expected 100), only 20 processed: pure local issue.
	qp := period(0, simtime.Time(100*simtime.Microsecond), 80, 20)
	ls := localDiagnose(qp, simtime.MPPS(1))
	if ls.Si != 0 {
		t.Errorf("Si: got %v, want 0", ls.Si)
	}
	if ls.Sp != 60 {
		t.Errorf("Sp: got %v, want 60", ls.Sp)
	}
}

func TestLocalScoresClampNegativeSp(t *testing.T) {
	// NF processed more than "expected" (jitter in our favour): Sp must
	// clamp at 0 with the sum folded into Si.
	qp := period(0, simtime.Time(100*simtime.Microsecond), 150, 110)
	ls := localDiagnose(qp, simtime.MPPS(1))
	if ls.Sp != 0 {
		t.Errorf("Sp: got %v, want 0", ls.Sp)
	}
	if math.Abs(ls.Si-40) > 0.5 {
		t.Errorf("Si: got %v, want ~40 (sum preserved)", ls.Si)
	}
}

// TestScoreSumInvariant is the paper's §4.1 invariant: Si + Sp = n_i - n_p
// (the queue length), whenever the queue is actually building.
func TestScoreSumInvariant(t *testing.T) {
	f := func(niRaw, npRaw uint16, usRaw uint8) bool {
		ni := int(niRaw%2000) + 1
		np := int(npRaw) % ni // processed <= arrived
		us := int(usRaw%200) + 1
		qp := period(0, simtime.Time(simtime.Duration(us)*simtime.Microsecond), ni, np)
		ls := localDiagnose(qp, simtime.MPPS(0.5))
		sum := ls.Si + ls.Sp
		want := float64(ni - np)
		// Clamping may shave the sum only when Sp went negative.
		return sum <= want+1e-9 && sum >= 0 && ls.Si >= 0 && ls.Sp >= 0 &&
			(math.Abs(sum-want) < 1e-9 || ls.Sp == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueLen(t *testing.T) {
	qp := period(0, simtime.Time(simtime.Microsecond), 10, 4)
	ls := localDiagnose(qp, simtime.MPPS(1))
	if ls.QueueLen() != 6 {
		t.Errorf("QueueLen: got %d", ls.QueueLen())
	}
}

// TestTimespanSharesWorkedExample reproduces the paper's Figure 6 example:
// source -> A (interrupt squeezes) -> B (slower, expands) -> C (queue
// squeezes) -> f. Shares must be:
//
//	source: Texp - Tsource
//	A:      Tsource - TB   (B's expansion debits A)
//	B:      0
//	C:      TB - TC
func TestTimespanSharesWorkedExample(t *testing.T) {
	texp := simtime.Duration(1000)
	p := &pathStats{
		comps:    []tracestore.CompID{0, 1, 2, 3}, // source, A, B, C
		spans:    []simtime.Duration{800, 400, 600, 300},
		lastSpan: 300, // arrival span at f equals C's departure span
	}
	nf, src := timespanShares(texp, p)
	if src != 200 { // Texp - Tsource
		t.Errorf("source share: got %v, want 200", src)
	}
	if nf[0] != 200 { // Tsource - TB = 800 - 600
		t.Errorf("A share: got %v, want 200", nf[0])
	}
	if nf[1] != 0 {
		t.Errorf("B share: got %v, want 0", nf[1])
	}
	if nf[2] != 300 { // TB - TC = 600 - 300
		t.Errorf("C share: got %v, want 300", nf[2])
	}
	sum := src + nf[0] + nf[1] + nf[2]
	if sum != texp-p.lastSpan {
		t.Errorf("share sum: got %v, want Texp - Tlast = %v", sum, texp-p.lastSpan)
	}
}

func TestTimespanSharesNoReduction(t *testing.T) {
	// The span only grew on the way (source 900 -> A 1100) and the
	// arrival span exceeds Texp: nobody squeezed anything.
	p := &pathStats{
		comps:    []tracestore.CompID{0, 1}, // source, A
		spans:    []simtime.Duration{900, 1100},
		lastSpan: 1100,
	}
	nf, src := timespanShares(1000, p)
	if src != 0 || nf[0] != 0 {
		t.Errorf("shares: src %v nf %v, want zeros", src, nf)
	}
}

func TestTimespanSharesSourceOnly(t *testing.T) {
	// Direct source -> f path (no NFs): the whole reduction is the
	// source's burstiness.
	p := &pathStats{
		comps:    []tracestore.CompID{0}, // source only
		spans:    []simtime.Duration{300},
		lastSpan: 300,
	}
	nf, src := timespanShares(1000, p)
	if len(nf) != 0 {
		t.Fatalf("nf shares: %v", nf)
	}
	if src != 700 {
		t.Errorf("source share: got %v, want 700", src)
	}
}

// TestTimespanSharesProperties: shares are non-negative and sum to
// max(Texp, spans...) - lastSpan.
func TestTimespanSharesProperties(t *testing.T) {
	f := func(spansRaw []uint16, lastRaw, texpRaw uint16) bool {
		if len(spansRaw) == 0 || len(spansRaw) > 8 {
			return true
		}
		comps := make([]tracestore.CompID, len(spansRaw))
		spans := make([]simtime.Duration, len(spansRaw))
		for i := range spansRaw {
			comps[i] = tracestore.CompID(i)
			spans[i] = simtime.Duration(spansRaw[i])
		}
		last := simtime.Duration(lastRaw)
		texp := simtime.Duration(texpRaw)
		p := &pathStats{comps: comps, spans: spans, lastSpan: last}
		nf, src := timespanShares(texp, p)
		var sum simtime.Duration = src
		if src < 0 {
			return false
		}
		for _, s := range nf {
			if s < 0 {
				return false
			}
			sum += s
		}
		// Exact invariant of the backward level pass: the shares sum
		// to (highest level reached) - lastSpan, where the levels are
		// lastSpan, the input spans spans[0..k-1], and Texp.
		want := texp
		if last > want {
			want = last
		}
		for i := 0; i < len(spans)-1; i++ {
			if spans[i] > want {
				want = spans[i]
			}
		}
		return sum == want-last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
