package core

import (
	"strings"
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

func TestExplainPropagatedVictim(t *testing.T) {
	// The Figure 2 shape: interrupt at the nat, victim queued at the vpn.
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 33,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1.0)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.6)},
	)
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(5*simtime.Millisecond), 7)
	sim.LoadSchedule(sched)
	sim.InjectInterrupt("nat1", simtime.Time(simtime.Millisecond), 800*simtime.Microsecond, "x")
	sim.Run(simtime.Time(100 * simtime.Millisecond))
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"nat1", "vpn1"})))
	st.Reconstruct()

	// Find a vpn-queued victim after the interrupt.
	var victim *Victim
	for i := range st.Journeys {
		j := &st.Journeys[i]
		h := st.HopAt(j, "vpn1")
		if h == nil || h.ReadAt == 0 || h.ArriveAt < simtime.Time(1900*simtime.Microsecond) {
			continue
		}
		if d := h.ReadAt.Sub(h.ArriveAt); d > 100*simtime.Microsecond {
			victim = &Victim{Journey: i, Comp: "vpn1", ArriveAt: h.ArriveAt, QueueDelay: d}
			break
		}
	}
	if victim == nil {
		t.Fatal("no vpn victim")
	}
	eng := NewEngine(Config{})
	ex := eng.Explain(st, *victim)
	if ex.Root == nil {
		t.Fatal("no root node")
	}
	if ex.Root.Comp != "vpn1" || ex.Root.Si <= 0 {
		t.Errorf("root: %+v", ex.Root)
	}
	// The vpn's input pressure must be attributed to nat1, and the
	// recursion must descend into nat1's own queuing period showing its
	// Sp (the interrupt).
	natShare := false
	for _, s := range ex.Root.Shares {
		if s.Comp == "nat1" && s.Score > 0 {
			natShare = true
		}
	}
	if !natShare {
		t.Error("no nat1 share at the root")
	}
	natChild := false
	for _, c := range ex.Root.Children {
		if c.Comp == "nat1" && c.Sp > 0 {
			natChild = true
		}
	}
	if !natChild {
		t.Error("recursion did not surface nat1's local Sp")
	}

	out := ex.Render()
	for _, want := range []string{"queuing period at vpn1", "queuing period at nat1", "input pressure from nat1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The rendered scores must be consistent with DiagnoseVictim's.
	d := eng.DiagnoseVictim(st, *victim)
	if len(d.Causes) == 0 || d.Causes[0].Comp != "nat1" {
		t.Errorf("diagnosis disagrees with explanation: %+v", d.Causes)
	}
}

func TestExplainNoQueue(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 3, nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	sched := cbr(simtime.MPPS(0.05), simtime.Duration(simtime.Millisecond), 3)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"fw1"})))
	st.Reconstruct()

	eng := NewEngine(Config{})
	ex := eng.Explain(st, Victim{Comp: "nowhere", ArriveAt: 100})
	if ex.Root != nil {
		t.Error("unknown comp should yield nil root")
	}
	if !strings.Contains(ex.Render(), "not queue-induced") {
		t.Error("render should explain the empty tree")
	}
	// Use a traffic generator reference so the import stays needed even
	// if cbr moves.
	_ = traffic.Emission{}
}
