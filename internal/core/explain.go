package core

import (
	"fmt"
	"strings"

	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// Explanation is the human-readable form of one victim's diagnosis: the
// recursion tree of Figure 7 rendered as nested queuing-period analyses,
// so an operator can audit *why* each culprit received its score rather
// than trusting a bare ranking.
type Explanation struct {
	Victim Victim
	Root   *ExplainNode
}

// ExplainNode is one queuing-period analysis in the recursion tree.
type ExplainNode struct {
	// Comp is the component whose queuing period this node analyses.
	Comp string
	// Anchor is the time the period ends (victim arrival at the root,
	// PreSet last-arrival at recursive nodes).
	Anchor simtime.Time
	// Period bounds and the §4.1 decomposition.
	Start      simtime.Time
	T          simtime.Duration
	NIn, NProc int
	Si, Sp     float64
	// Weight is the share of the victim's blame flowing through this
	// node (1.0 at the root).
	Weight float64
	// Shares lists the §4.2 timespan attribution of Si.
	Shares []ExplainShare
	// Children are the recursive analyses of upstream NFs.
	Children []*ExplainNode
}

// ExplainShare is one timespan-analysis attribution.
type ExplainShare struct {
	Comp  string
	Score float64
	// PathKey identifies the upstream path of the PreSet subset.
	PathKey string
	Packets int
}

// Explain reproduces the diagnosis of one victim while recording every
// intermediate quantity. It mirrors DiagnoseVictim's recursion exactly.
func (e *Engine) Explain(st *tracestore.Store, v Victim) *Explanation {
	d := e.newDiagnoser(st)
	a := d.acquireArena()
	defer putArena(a)
	ex := &Explanation{Victim: v}
	ex.Root = d.explainAt(st.CompIDOf(v.Comp), v.ArriveAt, 1.0, 0, a)
	return ex
}

func (d *diagnoser) explainAt(comp tracestore.CompID, t simtime.Time, weight float64, depth int, a *workerArena) *ExplainNode {
	// Unlike the scoring recursion, the explanation keeps zero-weight
	// nodes: a culprit whose blame is purely local (Sp) still deserves
	// its queuing-period line in the tree.
	if depth > d.cfg.MaxRecursionDepth || weight < 0 {
		return nil
	}
	qp := d.st.QueuingPeriodThresholdID(comp, t, d.cfg.QueueThreshold)
	if qp == nil || qp.NIn == 0 {
		return nil
	}
	r := d.st.PeakRateID(comp)
	if r <= 0 {
		return nil
	}
	ls := localDiagnose(qp, r)
	node := &ExplainNode{
		Comp:   d.st.CompName(comp),
		Anchor: t,
		Start:  qp.Start,
		T:      qp.T(),
		NIn:    qp.NIn,
		NProc:  qp.NProc,
		Si:     ls.Si,
		Sp:     ls.Sp,
		Weight: weight,
	}
	if ls.Si <= 0 {
		return node
	}
	budget := weight * ls.Si
	for _, pr := range d.propagate(comp, qp, budget, a) {
		node.Shares = append(node.Shares, ExplainShare{
			Comp:    d.st.CompName(pr.comp),
			Score:   pr.score,
			PathKey: d.pathLabel(pr.path),
			Packets: pr.path.n,
		})
		if pr.comp == d.src {
			continue
		}
		anchor := pr.path.lastArrive[pr.compIdx]
		sub := d.splitAtNF(pr.comp, anchor, pr.score)
		if sub == nil {
			continue
		}
		childWeight := 0.0
		if sub.inputShare > 0 {
			childWeight = sub.inputShare / maxf(sub.ls.Si, 1e-9)
		}
		if child := d.explainAt(pr.comp, anchor, childWeight, depth+1, a); child != nil {
			node.Children = append(node.Children, child)
		}
	}
	return node
}

// Render prints the tree with indentation, one queuing period per line
// plus its attribution shares.
func (ex *Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "victim: %s at %s (t=%v, queue delay %v)\n",
		ex.Victim.Kind, ex.Victim.Comp, ex.Victim.ArriveAt, ex.Victim.QueueDelay)
	if ex.Root == nil {
		b.WriteString("  no queuing period found — the delay is not queue-induced\n")
		return b.String()
	}
	renderNode(&b, ex.Root, 1)
	return b.String()
}

func renderNode(b *strings.Builder, n *ExplainNode, depth int) {
	pad := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%squeuing period at %s: [%v .. %v] (T=%v) n_i=%d n_p=%d -> Si=%.1f Sp=%.1f (weight %.2f)\n",
		pad, n.Comp, n.Start, n.Anchor, n.T, n.NIn, n.NProc, n.Si, n.Sp, n.Weight)
	for _, s := range n.Shares {
		fmt.Fprintf(b, "%s  input pressure from %-8s score=%.1f via %s (%d packets)\n",
			pad, s.Comp, s.Score, s.PathKey, s.Packets)
	}
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}
