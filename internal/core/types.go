// Package core implements Microscope's offline diagnosis (paper §4): victim
// selection, queuing-period local diagnosis (§4.1), propagation diagnosis
// via timespan analysis across chains and DAGs (§4.2), recursive diagnosis
// of PreSet packets (§4.3), and emission of packet-level causal relations
// ready for pattern aggregation (§4.4).
//
// The engine consumes only the reconstructed trace store — batch
// timestamps, batch sizes, IPIDs, egress five-tuples, deployment topology,
// and offline-measured peak rates. It never sees simulator ground truth.
package core

import (
	"fmt"

	"microscope/internal/obs"
	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// CulpritKind classifies a root cause.
type CulpritKind uint8

const (
	// CulpritSourceTraffic blames input traffic from the source (e.g. a
	// burst): positive S_i attributed to the traffic source.
	CulpritSourceTraffic CulpritKind = iota
	// CulpritLocalProcessing blames slow processing at an NF (interrupt,
	// bug, cache behaviour): positive S_p at that NF.
	CulpritLocalProcessing
)

// String implements fmt.Stringer.
func (k CulpritKind) String() string {
	switch k {
	case CulpritSourceTraffic:
		return "traffic"
	case CulpritLocalProcessing:
		return "processing"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// VictimKind classifies what the victim suffered.
type VictimKind uint8

const (
	// VictimLatency marks packets beyond the latency threshold.
	VictimLatency VictimKind = iota
	// VictimLoss marks packets whose records vanish mid-graph.
	VictimLoss
	// VictimThroughput marks packets of flows whose delivery rate dipped
	// below their own recent history.
	VictimThroughput
)

// String implements fmt.Stringer.
func (k VictimKind) String() string {
	switch k {
	case VictimLoss:
		return "loss"
	case VictimThroughput:
		return "throughput"
	default:
		return "latency"
	}
}

// Victim is a packet/NF pair selected for diagnosis.
type Victim struct {
	// Journey indexes the store's journeys.
	Journey int
	// Comp is the NF where the victim's local performance was abnormal.
	Comp string
	// ArriveAt is when the victim entered Comp's queue.
	ArriveAt simtime.Time
	// QueueDelay is the time spent in Comp's queue.
	QueueDelay simtime.Duration
	// Kind is the symptom.
	Kind VictimKind
	// Tuple is the victim's flow when known (delivered packets).
	Tuple    packet.FiveTuple
	HasTuple bool
}

// Cause is one ranked root cause for a victim.
type Cause struct {
	// Comp is the culprit component ("source" for traffic culprits).
	Comp string
	// Kind classifies the culprit.
	Kind CulpritKind
	// Score quantifies the culprit's contribution, in packets (the
	// S_i / S_p units of §4.1).
	Score float64
	// At is when the culprit behaviour began (queuing-period start for
	// processing culprits, first culprit-packet emission for traffic
	// culprits). Victim.ArriveAt - At is the Figure 15 time gap.
	At simtime.Time
	// CulpritJourneys are the journeys of the packets implicated by this
	// cause (PreSet packets at the culprit), for pattern aggregation.
	CulpritJourneys []int
}

// Diagnosis is the per-victim output: causes ranked by descending score.
type Diagnosis struct {
	Victim Victim
	Causes []Cause
}

// RankOf returns the 1-based rank of the first cause matching the
// predicate, or 0 if absent. Used by the evaluation to score accuracy.
func (d *Diagnosis) RankOf(match func(Cause) bool) int {
	for i, c := range d.Causes {
		if match(c) {
			return i + 1
		}
	}
	return 0
}

// Config tunes the diagnosis.
type Config struct {
	// VictimPercentile selects latency victims above this percentile of
	// delivered latency (default 99).
	VictimPercentile float64
	// AbnormalStdDevs is k in the §4.1 abnormality test (default 1).
	AbnormalStdDevs float64
	// MaxRecursionDepth caps §4.3 recursion (default 5, the paper's
	// observed maximum on the 16-NF topology).
	MaxRecursionDepth int
	// MinScore prunes causes below this many packets (default 1).
	MinScore float64
	// MaxVictims caps how many victims are diagnosed, 0 = no cap.
	MaxVictims int
	// LossVictims enables diagnosis of lost packets (default true via
	// setDefaults; set SkipLossVictims to disable).
	SkipLossVictims bool
	// TraceEndSlack: journeys truncated within this duration of the last
	// record are treated as in-flight, not lost (default 2ms).
	TraceEndSlack simtime.Duration
	// LossVictimsWhenDegraded keeps loss-victim classification active
	// even when the store's health is degraded. By default a
	// known-damaged trace suppresses loss victims: a journey whose
	// records vanish because the *trace* lost records is
	// indistinguishable from a real drop, and a lossy trace would flood
	// the diagnosis with phantom losses.
	LossVictimsWhenDegraded bool
	// QueueThreshold is the §7 extension: a queuing period starts when
	// the queue last held at most this many packets, instead of zero.
	// Use it when NF queues rarely empty (sustained moderate overload);
	// the default 0 is the paper's base definition.
	QueueThreshold int
	// Workers bounds the per-victim diagnosis fan-out (0 = GOMAXPROCS,
	// 1 = fully sequential). Any value produces byte-identical output:
	// victims are diagnosed independently against the immutable trace
	// index and merged in victim order.
	Workers int
	// ContainPanics is the worker-task crash-containment boundary: a panic
	// inside one victim's diagnosis quarantines that victim (its Diagnosis
	// carries the Victim and no causes) instead of killing the process.
	// Contained panics are counted (Engine.ContainedPanics and the
	// microscope_diag_victim_panics_total counter). Off by default: the
	// offline tools prefer a loud crash.
	ContainPanics bool
	// ChaosHook, when non-nil, runs before each victim's diagnosis with
	// scope "victim:<index>" — the chaos harness injects worker-task
	// panics and stalls through it. Hook decisions keyed on the index are
	// identical for every worker count, keeping chaos runs deterministic.
	// Never set in production.
	ChaosHook func(scope string)
	// Obs receives diagnosis metrics (victims diagnosed, memo hit/miss,
	// scratch-pool recycling, per-victim latency spans). nil falls back to
	// the process-wide obs.Default(), which is nil — disabled — unless
	// installed; a disabled registry costs a nil check per event.
	Obs *obs.Registry
}

func (c *Config) setDefaults() {
	if c.VictimPercentile == 0 {
		c.VictimPercentile = 99
	}
	if c.AbnormalStdDevs == 0 {
		c.AbnormalStdDevs = 1
	}
	if c.MaxRecursionDepth == 0 {
		c.MaxRecursionDepth = 5
	}
	if c.MinScore == 0 {
		c.MinScore = 1
	}
	if c.TraceEndSlack == 0 {
		c.TraceEndSlack = 2 * simtime.Millisecond
	}
}
