package core

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

func flow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(10, 0, byte(i>>8), byte(i)),
		DstIP:   packet.IPFromOctets(23, 9, 8, 7),
		SrcPort: uint16(1024 + i%60000),
		DstPort: 4433,
		Proto:   packet.ProtoUDP,
	}
}

func cbr(rate simtime.Rate, dur simtime.Duration, nflows int) *traffic.Schedule {
	iv := rate.Interval()
	var ems []traffic.Emission
	i := 0
	for t := simtime.Time(0); t < simtime.Time(dur); t = t.Add(iv) {
		ems = append(ems, traffic.Emission{At: t, Flow: flow(i % nflows), Size: 64, Burst: -1})
		i++
	}
	return &traffic.Schedule{Emissions: ems}
}

// buildStore runs a chain sim with the collector and reconstructs.
func buildStore(sim *nfsim.Sim, col *collector.Collector, names []string, until simtime.Time) *tracestore.Store {
	sim.Run(until)
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, names)))
	st.Reconstruct()
	return st
}

// topCause returns the top-ranked cause of a diagnosis, or nil.
func topCause(d *Diagnosis) *Cause {
	if len(d.Causes) == 0 {
		return nil
	}
	return &d.Causes[0]
}

// TestDiagnoseBurstVictims: a traffic burst overloads a firewall; latency
// victims must blame source traffic first (Figure 1 / §6.2 bursts).
func TestDiagnoseBurstVictims(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 21,
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.5)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.6)},
	)
	sched := cbr(simtime.MPPS(0.25), simtime.Duration(5*simtime.Millisecond), 17)
	sched.InjectBurst(traffic.BurstSpec{
		ID: 1, At: simtime.Time(simtime.Millisecond), Flow: flow(3), Count: 800,
	})
	sim.LoadSchedule(sched)
	st := buildStore(sim, col, []string{"fw1", "vpn1"}, simtime.Time(100*simtime.Millisecond))

	eng := NewEngine(Config{})
	diags := eng.Diagnose(st)
	if len(diags) == 0 {
		t.Fatal("no victims diagnosed")
	}
	rank1 := 0
	for i := range diags {
		d := &diags[i]
		if len(d.Causes) == 0 {
			continue
		}
		if d.Causes[0].Comp == collector.SourceName && d.Causes[0].Kind == CulpritSourceTraffic {
			rank1++
		}
	}
	if frac := float64(rank1) / float64(len(diags)); frac < 0.8 {
		t.Errorf("burst blamed first for only %.2f of %d victims", frac, len(diags))
	}
	// Culprit journeys should include burst packets.
	d := diags[0]
	foundBurst := false
	for _, c := range d.Causes {
		if c.Comp != collector.SourceName {
			continue
		}
		for _, jIdx := range c.CulpritJourneys {
			// Burst emissions came back-to-back at 1ms.
			if st.Journeys[jIdx].EmittedAt >= simtime.Time(simtime.Millisecond) &&
				st.Journeys[jIdx].EmittedAt < simtime.Time(1200*simtime.Microsecond) {
				foundBurst = true
			}
		}
	}
	if !foundBurst {
		t.Error("culprit journeys never include burst packets")
	}
}

// TestDiagnoseInterruptPropagation reproduces the §2 example-2 scenario: an
// interrupt at the NAT stalls traffic, then releases a burst that builds
// the VPN queue. Victims AT THE VPN must blame the NAT's local processing,
// even though the interrupt never overlaps them in time.
func TestDiagnoseInterruptPropagation(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 33,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1.0)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.6)},
	)
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(6*simtime.Millisecond), 13)
	sim.LoadSchedule(sched)
	intStart := simtime.Time(simtime.Millisecond)
	intDur := simtime.Duration(800 * simtime.Microsecond)
	sim.InjectInterrupt("nat1", intStart, intDur, "int")
	st := buildStore(sim, col, []string{"nat1", "vpn1"}, simtime.Time(100*simtime.Millisecond))

	eng := NewEngine(Config{})
	// Pick victims queued at the VPN strictly AFTER the interrupt ended:
	// packets whose only problem is the post-interrupt burst from the
	// NAT — they never overlap the interrupt in time.
	vpnVictims, natBlamed := 0, 0
	for i := range st.Journeys {
		j := &st.Journeys[i]
		h := st.HopAt(j, "vpn1")
		if h == nil || h.ReadAt == 0 || h.ArriveAt < intStart.Add(intDur) {
			continue
		}
		delay := h.ReadAt.Sub(h.ArriveAt)
		if delay < 50*simtime.Microsecond {
			continue
		}
		vpnVictims++
		d := eng.DiagnoseVictim(st, Victim{
			Journey: i, Comp: "vpn1", ArriveAt: h.ArriveAt,
			QueueDelay: delay, Kind: VictimLatency,
		})
		if len(d.Causes) > 0 && d.Causes[0].Comp == "nat1" && d.Causes[0].Kind == CulpritLocalProcessing {
			natBlamed++
		}
		if vpnVictims >= 100 {
			break
		}
	}
	if vpnVictims == 0 {
		t.Fatal("no VPN-queued packets after interrupt — impact did not propagate")
	}
	if frac := float64(natBlamed) / float64(vpnVictims); frac < 0.7 {
		t.Errorf("NAT blamed first for only %.2f of %d VPN victims", frac, vpnVictims)
	}
}

// TestDiagnoseInterruptAtVictimNF: victims queued at the stalled NF itself
// must blame that NF's local processing.
func TestDiagnoseInterruptAtVictimNF(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 13,
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
	)
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(5*simtime.Millisecond), 7)
	sim.LoadSchedule(sched)
	sim.InjectInterrupt("fw1", simtime.Time(simtime.Millisecond), simtime.Duration(700*simtime.Microsecond), "int")
	st := buildStore(sim, col, []string{"fw1"}, simtime.Time(100*simtime.Millisecond))

	eng := NewEngine(Config{})
	diags := eng.Diagnose(st)
	blamed, total := 0, 0
	for i := range diags {
		d := &diags[i]
		if len(d.Causes) == 0 {
			continue
		}
		total++
		if d.Causes[0].Comp == "fw1" && d.Causes[0].Kind == CulpritLocalProcessing {
			blamed++
		}
	}
	if total == 0 {
		t.Fatal("no diagnosable victims")
	}
	if frac := float64(blamed) / float64(total); frac < 0.8 {
		t.Errorf("fw1 blamed first for only %.2f of %d victims", frac, total)
	}
}

// TestDiagnoseBugFlows: a slow-path bug at the firewall delays everything
// behind the trigger flows; victims must blame fw1 local processing and the
// culprit journeys must contain the trigger flow (the §6.4 use case).
func TestDiagnoseBugFlows(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 29,
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.8)},
	)
	trigger := packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(100, 0, 0, 1),
		DstIP:   packet.IPFromOctets(32, 0, 0, 1),
		SrcPort: 2004,
		DstPort: 6004,
		Proto:   packet.ProtoTCP,
	}
	sim.InjectBug("fw1", &nfsim.SlowPath{
		Match: func(ft packet.FiveTuple) bool { return ft == trigger },
		Rate:  simtime.PPS(20_000),
	}, "bug")
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(5*simtime.Millisecond), 11)
	sched.InjectFlow(trigger, simtime.Time(simtime.Millisecond), 60, simtime.Duration(5*simtime.Microsecond), 64)
	sim.LoadSchedule(sched)
	st := buildStore(sim, col, []string{"fw1", "vpn1"}, simtime.Time(200*simtime.Millisecond))

	eng := NewEngine(Config{})
	diags := eng.Diagnose(st)
	fwBlamed, total, triggerSeen := 0, 0, false
	for i := range diags {
		d := &diags[i]
		if len(d.Causes) == 0 {
			continue
		}
		total++
		if d.Causes[0].Comp == "fw1" && d.Causes[0].Kind == CulpritLocalProcessing {
			fwBlamed++
			for _, jIdx := range d.Causes[0].CulpritJourneys {
				if st.Journeys[jIdx].HasTuple && st.Journeys[jIdx].Tuple == trigger {
					triggerSeen = true
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no victims")
	}
	if frac := float64(fwBlamed) / float64(total); frac < 0.6 {
		t.Errorf("fw1 processing blamed first for only %.2f of %d victims", frac, total)
	}
	if !triggerSeen {
		t.Error("trigger flow never appears among culprit journeys")
	}
}

// TestDiagnoseQuietSystemHasFewVictims: nominal load should produce a small
// victim set and no huge scores.
func TestDiagnoseQuietSystem(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 41,
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)},
	)
	sched := cbr(simtime.MPPS(0.2), simtime.Duration(3*simtime.Millisecond), 9)
	sim.LoadSchedule(sched)
	st := buildStore(sim, col, []string{"fw1"}, simtime.Time(50*simtime.Millisecond))

	eng := NewEngine(Config{})
	diags := eng.Diagnose(st)
	// 99th percentile always selects ~1% of packets; their causes should
	// be small-scale.
	for i := range diags {
		for _, c := range diags[i].Causes {
			if c.Score > 1000 {
				t.Errorf("implausible score %v on quiet system", c.Score)
			}
		}
	}
}

func TestVictimSelectionLoss(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.New(col)
	sim.AddNF(nfsim.NFConfig{Name: "a", Kind: "nat", PeakRate: simtime.MPPS(1), Seed: 1})
	sim.AddNF(nfsim.NFConfig{Name: "b", Kind: "fw", PeakRate: simtime.PPS(60_000), QueueCap: 64, Seed: 2})
	sim.ConnectSource(func(*packet.Packet) int { return 0 }, "a")
	sim.Connect("a", func(*packet.Packet) int { return 0 }, "b")
	sim.Connect("b", func(*packet.Packet) int { return nfsim.Egress })
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(3*simtime.Millisecond), 9)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(100 * simtime.Millisecond))
	meta := collector.Meta{
		MaxBatch: nfsim.DefaultMaxBatch,
		Components: []collector.ComponentMeta{
			{Name: "source", Kind: "source"},
			{Name: "a", Kind: "nat", PeakRate: simtime.MPPS(1)},
			{Name: "b", Kind: "fw", PeakRate: simtime.PPS(60_000), Egress: true},
		},
		Edges: []collector.Edge{{From: "source", To: "a"}, {From: "a", To: "b"}},
	}
	st := tracestore.Build(col.Trace(meta))
	st.Reconstruct()

	eng := NewEngine(Config{})
	victims := eng.FindVictims(st)
	losses := 0
	for _, v := range victims {
		if v.Kind == VictimLoss {
			losses++
		}
	}
	if losses == 0 {
		t.Fatal("overload produced no loss victims")
	}
	// Diagnosing a loss victim should not panic and should find causes.
	var lossV *Victim
	for i := range victims {
		if victims[i].Kind == VictimLoss {
			lossV = &victims[i]
			break
		}
	}
	d := eng.DiagnoseVictim(st, *lossV)
	if len(d.Causes) == 0 {
		t.Error("loss victim has no causes")
	}
}

func TestRankOf(t *testing.T) {
	d := Diagnosis{Causes: []Cause{
		{Comp: "a", Kind: CulpritLocalProcessing},
		{Comp: "source", Kind: CulpritSourceTraffic},
	}}
	if r := d.RankOf(func(c Cause) bool { return c.Comp == "source" }); r != 2 {
		t.Errorf("rank: got %d", r)
	}
	if r := d.RankOf(func(c Cause) bool { return c.Comp == "zzz" }); r != 0 {
		t.Errorf("missing rank: got %d", r)
	}
}

func TestKindStrings(t *testing.T) {
	if CulpritSourceTraffic.String() != "traffic" || CulpritLocalProcessing.String() != "processing" {
		t.Error("CulpritKind strings")
	}
	if CulpritKind(7).String() == "" {
		t.Error("unknown kind string empty")
	}
	if VictimLatency.String() != "latency" || VictimLoss.String() != "loss" {
		t.Error("VictimKind strings")
	}
}

// TestDiagnosisDeterminism: same input, same output.
func TestDiagnosisDeterminism(t *testing.T) {
	run := func() []Diagnosis {
		col := collector.New(collector.Config{})
		sim := nfsim.BuildChain(col, 21,
			nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.5)},
		)
		sched := cbr(simtime.MPPS(0.3), simtime.Duration(3*simtime.Millisecond), 7)
		sched.InjectBurst(traffic.BurstSpec{ID: 1, At: simtime.Time(simtime.Millisecond), Flow: flow(2), Count: 400})
		sim.LoadSchedule(sched)
		st := buildStore(sim, col, []string{"fw1"}, simtime.Time(50*simtime.Millisecond))
		return NewEngine(Config{}).Diagnose(st)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("victim counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Causes) != len(b[i].Causes) {
			t.Fatalf("cause counts differ at %d", i)
		}
		for j := range a[i].Causes {
			if a[i].Causes[j].Comp != b[i].Causes[j].Comp || a[i].Causes[j].Score != b[i].Causes[j].Score {
				t.Fatalf("cause %d/%d differs", i, j)
			}
		}
	}
}

// TestDegradedHealthSuppressesLossVictims: the same overloaded run that
// yields loss victims on a pristine trace must yield none once the trace is
// marked damaged — telemetry loss masquerades as packet loss, so degraded
// health suppresses the class. Forcing LossVictimsWhenDegraded restores it.
func TestDegradedHealthSuppressesLossVictims(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.New(col)
	sim.AddNF(nfsim.NFConfig{Name: "a", Kind: "nat", PeakRate: simtime.MPPS(1), Seed: 1})
	sim.AddNF(nfsim.NFConfig{Name: "b", Kind: "fw", PeakRate: simtime.PPS(60_000), QueueCap: 64, Seed: 2})
	sim.ConnectSource(func(*packet.Packet) int { return 0 }, "a")
	sim.Connect("a", func(*packet.Packet) int { return 0 }, "b")
	sim.Connect("b", func(*packet.Packet) int { return nfsim.Egress })
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(3*simtime.Millisecond), 9)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(100 * simtime.Millisecond))
	meta := collector.Meta{
		MaxBatch: nfsim.DefaultMaxBatch,
		Components: []collector.ComponentMeta{
			{Name: "source", Kind: "source"},
			{Name: "a", Kind: "nat", PeakRate: simtime.MPPS(1)},
			{Name: "b", Kind: "fw", PeakRate: simtime.PPS(60_000), Egress: true},
		},
		Edges: []collector.Edge{{From: "source", To: "a"}, {From: "a", To: "b"}},
	}
	tr := col.Trace(meta)

	countLoss := func(victims []Victim) int {
		n := 0
		for _, v := range victims {
			if v.Kind == VictimLoss {
				n++
			}
		}
		return n
	}

	clean := tracestore.Build(tr)
	clean.Reconstruct()
	if countLoss(NewEngine(Config{}).FindVictims(clean)) == 0 {
		t.Fatal("pristine trace produced no loss victims")
	}

	damaged := *tr
	damaged.Integrity.DroppedRecords = 50
	dst := tracestore.Build(&damaged)
	dst.Reconstruct()
	if !dst.Health().Degraded() {
		t.Fatalf("marked-damaged store not degraded: %v", dst.Health())
	}
	if n := countLoss(NewEngine(Config{}).FindVictims(dst)); n != 0 {
		t.Fatalf("degraded trace still yields %d loss victims", n)
	}
	forced := NewEngine(Config{LossVictimsWhenDegraded: true})
	if countLoss(forced.FindVictims(dst)) == 0 {
		t.Fatal("forcing LossVictimsWhenDegraded restored nothing")
	}
}
