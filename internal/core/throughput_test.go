package core

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// figure2Store rebuilds the Figure 2 shape: background through nat→vpn,
// probe flow A straight to the vpn, interrupt at the nat.
func figure2Store(t *testing.T) (*tracestore.Store, packet.FiveTuple) {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.New(col)
	sim.AddNF(nfsim.NFConfig{Name: "nat", Kind: "nat", PeakRate: simtime.MPPS(1.0), Seed: 1})
	sim.AddNF(nfsim.NFConfig{Name: "vpn", Kind: "vpn", PeakRate: simtime.MPPS(0.6), Seed: 2})
	fa := packet.FiveTuple{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: 17}
	sim.ConnectSource(func(p *packet.Packet) int {
		if p.Flow == fa {
			return 1
		}
		return 0
	}, "nat", "vpn")
	sim.Connect("nat", func(*packet.Packet) int { return 0 }, "vpn")
	sim.Connect("vpn", func(*packet.Packet) int { return nfsim.Egress })

	dur := simtime.Duration(8 * simtime.Millisecond)
	sched := cbr(simtime.MPPS(0.45), dur, 13)
	sched.InjectFlow(fa, 0, int(simtime.MPPS(0.05).PacketsF(dur)), simtime.MPPS(0.05).Interval(), 64)
	sim.LoadSchedule(sched)
	sim.InjectInterrupt("nat", simtime.Time(2*simtime.Millisecond), 800*simtime.Microsecond, "i")
	sim.Run(simtime.Time(100 * simtime.Millisecond))

	meta := collector.Meta{
		MaxBatch: nfsim.DefaultMaxBatch,
		Components: []collector.ComponentMeta{
			{Name: collector.SourceName, Kind: "source"},
			{Name: "nat", Kind: "nat", PeakRate: simtime.MPPS(1.0)},
			{Name: "vpn", Kind: "vpn", PeakRate: simtime.MPPS(0.6), Egress: true},
		},
		Edges: []collector.Edge{
			{From: collector.SourceName, To: "nat"},
			{From: collector.SourceName, To: "vpn"},
			{From: "nat", To: "vpn"},
		},
	}
	st := tracestore.Build(col.Trace(meta))
	st.Reconstruct()
	return st, fa
}

func TestThroughputVictimsFindFlowADip(t *testing.T) {
	st, fa := figure2Store(t)
	eng := NewEngine(Config{})
	victims := eng.ThroughputVictims(st, ThroughputConfig{})
	if len(victims) == 0 {
		t.Fatal("no throughput victims")
	}
	// Flow A must be among them: its delivery dips during the VPN
	// congestion despite never traversing the NAT.
	found := false
	for _, v := range victims {
		if v.Kind != VictimThroughput {
			t.Fatalf("victim kind: %v", v.Kind)
		}
		if v.HasTuple && v.Tuple == fa {
			found = true
			// And diagnosing it must blame the NAT.
			d := eng.DiagnoseVictim(st, v)
			if len(d.Causes) > 0 && d.Causes[0].Comp == "nat" {
				return
			}
		}
	}
	if !found {
		t.Fatal("flow A never selected as a throughput victim")
	}
	t.Error("flow A selected but NAT never blamed first")
}

func TestThroughputVictimsQuietFlow(t *testing.T) {
	// A steady flow on an underloaded NF: no dips, no victims.
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 5, nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	sched := cbr(simtime.MPPS(0.2), simtime.Duration(5*simtime.Millisecond), 1)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"fw1"})))
	st.Reconstruct()
	victims := NewEngine(Config{}).ThroughputVictims(st, ThroughputConfig{DipStdDevs: 4})
	if len(victims) != 0 {
		t.Errorf("quiet flow produced %d throughput victims", len(victims))
	}
}

func TestThroughputConfigDefaults(t *testing.T) {
	var c ThroughputConfig
	c.setDefaults()
	if c.Window != 100*simtime.Microsecond || c.DipStdDevs != 2 || c.MinPackets != 50 || c.MaxVictims != 200 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestFlowLessTotalOrder(t *testing.T) {
	a := packet.FiveTuple{SrcIP: 1}
	b := packet.FiveTuple{SrcIP: 2}
	if !flowLess(a, b) || flowLess(b, a) || flowLess(a, a) {
		t.Error("flowLess broken")
	}
	c := packet.FiveTuple{SrcIP: 1, DstPort: 5}
	if !flowLess(a, c) {
		t.Error("dst port tiebreak")
	}
}
