package core

import (
	"sort"

	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/stats"
	"microscope/internal/tracestore"
)

// The paper's victim definition covers three symptoms: high latency, LOW
// THROUGHPUT, and losses (§4, §5 "Operators define the victim packets as
// those that encountered latency above a threshold, throughput below a
// threshold, or got lost"). Latency and loss victims come from
// findVictims; this file adds the per-flow throughput view: flows whose
// delivery rate dips below their own recent history (e.g. flow A in
// Figure 2b).

// ThroughputConfig tunes throughput-victim selection.
type ThroughputConfig struct {
	// Window is the rate-measurement bucket (default 100 µs, the
	// granularity of the paper's Figure 2 throughput plots).
	Window simtime.Duration
	// DipStdDevs flags windows more than this many standard deviations
	// below the flow's mean delivery rate (default 2).
	DipStdDevs float64
	// MinPackets skips flows with fewer delivered packets (default 50):
	// sparse flows have no meaningful rate.
	MinPackets int
	// MaxVictims caps the result (default 200).
	MaxVictims int
}

func (c *ThroughputConfig) setDefaults() {
	if c.Window == 0 {
		c.Window = 100 * simtime.Microsecond
	}
	if c.DipStdDevs == 0 {
		c.DipStdDevs = 2
	}
	if c.MinPackets == 0 {
		c.MinPackets = 50
	}
	if c.MaxVictims == 0 {
		c.MaxVictims = 200
	}
}

// ThroughputVictims selects victims from per-flow delivery-rate dips: for
// each flow with enough traffic, delivery counts are bucketed per window;
// windows far below the flow's mean delivery rate mark the flow's packets
// delivered (late) in or nearest after the dip as victims, anchored at the
// hop where they queued longest.
func (e *Engine) ThroughputVictims(st *tracestore.Store, cfg ThroughputConfig) []Victim {
	cfg.setDefaults()

	// Per-flow delivered journeys come pre-sorted from the store's shared
	// flow index (built once, immutable), already in canonical flow order.
	fi := st.FlowIndex()
	var victims []Victim
	for _, ft := range fi.Flows {
		ds := fi.Deliveries[ft]
		if len(ds) < cfg.MinPackets {
			continue
		}
		first, last := ds[0].At, ds[len(ds)-1].At
		if last <= first {
			continue
		}
		nWin := int(last.Sub(first)/cfg.Window) + 1
		if nWin < 8 {
			continue // too short-lived for a rate baseline
		}
		counts := make([]float64, nWin)
		for _, dv := range ds {
			counts[int(dv.At.Sub(first)/cfg.Window)]++
		}
		// Baseline over interior windows (edges are partial).
		interior := counts[1 : nWin-1]
		mean, sd := stats.Mean(interior), stats.StdDev(interior)
		if mean <= 0 {
			continue
		}
		floor := mean - cfg.DipStdDevs*sd
		if floor < 0 {
			floor = 0
		}
		for w := 1; w < nWin-1; w++ {
			if counts[w] >= floor && !(counts[w] == 0 && mean >= 1) {
				continue
			}
			// Dip window: the flow's next delivered packet after the
			// dip carries the evidence (it queued through whatever
			// starved the flow).
			dipEnd := first.Add(simtime.Duration(w+1) * cfg.Window)
			idx := sort.Search(len(ds), func(i int) bool { return ds[i].At >= dipEnd })
			if idx >= len(ds) {
				continue
			}
			j := &st.Journeys[ds[idx].Journey]
			if v, ok := worstHopOf(st, ds[idx].Journey, j); ok {
				v.Kind = VictimThroughput
				victims = append(victims, v)
			}
			if len(victims) >= cfg.MaxVictims {
				return victims
			}
		}
	}
	return victims
}

// worstHopOf builds a Victim at the journey's longest-queuing hop.
func worstHopOf(st *tracestore.Store, idx int, j *tracestore.Journey) (Victim, bool) {
	var best *tracestore.JourneyHop
	var bestDelay simtime.Duration = -1
	for h := range j.Hops {
		hop := &j.Hops[h]
		if hop.ReadAt == 0 {
			continue
		}
		if d := hop.ReadAt.Sub(hop.ArriveAt); d > bestDelay {
			bestDelay = d
			best = hop
		}
	}
	if best == nil {
		return Victim{}, false
	}
	return Victim{
		Journey:    idx,
		Comp:       st.CompName(best.Comp),
		ArriveAt:   best.ArriveAt,
		QueueDelay: bestDelay,
		Tuple:      j.Tuple,
		HasTuple:   j.HasTuple,
	}, true
}

// flowLess is the canonical flow total order (see packet.FiveTuple.Less).
func flowLess(a, b packet.FiveTuple) bool { return a.Less(b) }
