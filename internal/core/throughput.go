package core

import (
	"sort"

	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/stats"
	"microscope/internal/tracestore"
)

// The paper's victim definition covers three symptoms: high latency, LOW
// THROUGHPUT, and losses (§4, §5 "Operators define the victim packets as
// those that encountered latency above a threshold, throughput below a
// threshold, or got lost"). Latency and loss victims come from
// findVictims; this file adds the per-flow throughput view: flows whose
// delivery rate dips below their own recent history (e.g. flow A in
// Figure 2b).

// ThroughputConfig tunes throughput-victim selection.
type ThroughputConfig struct {
	// Window is the rate-measurement bucket (default 100 µs, the
	// granularity of the paper's Figure 2 throughput plots).
	Window simtime.Duration
	// DipStdDevs flags windows more than this many standard deviations
	// below the flow's mean delivery rate (default 2).
	DipStdDevs float64
	// MinPackets skips flows with fewer delivered packets (default 50):
	// sparse flows have no meaningful rate.
	MinPackets int
	// MaxVictims caps the result (default 200).
	MaxVictims int
}

func (c *ThroughputConfig) setDefaults() {
	if c.Window == 0 {
		c.Window = 100 * simtime.Microsecond
	}
	if c.DipStdDevs == 0 {
		c.DipStdDevs = 2
	}
	if c.MinPackets == 0 {
		c.MinPackets = 50
	}
	if c.MaxVictims == 0 {
		c.MaxVictims = 200
	}
}

// ThroughputVictims selects victims from per-flow delivery-rate dips: for
// each flow with enough traffic, delivery counts are bucketed per window;
// windows far below the flow's mean delivery rate mark the flow's packets
// delivered (late) in or nearest after the dip as victims, anchored at the
// hop where they queued longest.
func (e *Engine) ThroughputVictims(st *tracestore.Store, cfg ThroughputConfig) []Victim {
	cfg.setDefaults()

	// Per-flow delivered journeys in delivery order.
	type delivered struct {
		journey int
		at      simtime.Time
	}
	byFlow := make(map[packet.FiveTuple][]delivered)
	var end simtime.Time
	for i := range st.Journeys {
		j := &st.Journeys[i]
		if !j.Delivered || len(j.Hops) == 0 {
			continue
		}
		at := j.Hops[len(j.Hops)-1].DepartAt
		byFlow[j.Tuple] = append(byFlow[j.Tuple], delivered{journey: i, at: at})
		if at > end {
			end = at
		}
	}
	// Deterministic flow order.
	flows := make([]packet.FiveTuple, 0, len(byFlow))
	for ft, ds := range byFlow {
		if len(ds) >= cfg.MinPackets {
			flows = append(flows, ft)
		}
	}
	sort.Slice(flows, func(i, j int) bool { return flowLess(flows[i], flows[j]) })

	var victims []Victim
	for _, ft := range flows {
		ds := byFlow[ft]
		sort.Slice(ds, func(i, j int) bool { return ds[i].at < ds[j].at })
		first, last := ds[0].at, ds[len(ds)-1].at
		if last <= first {
			continue
		}
		nWin := int(last.Sub(first)/cfg.Window) + 1
		if nWin < 8 {
			continue // too short-lived for a rate baseline
		}
		counts := make([]float64, nWin)
		for _, dv := range ds {
			counts[int(dv.at.Sub(first)/cfg.Window)]++
		}
		// Baseline over interior windows (edges are partial).
		interior := counts[1 : nWin-1]
		mean, sd := stats.Mean(interior), stats.StdDev(interior)
		if mean <= 0 {
			continue
		}
		floor := mean - cfg.DipStdDevs*sd
		if floor < 0 {
			floor = 0
		}
		for w := 1; w < nWin-1; w++ {
			if counts[w] >= floor && !(counts[w] == 0 && mean >= 1) {
				continue
			}
			// Dip window: the flow's next delivered packet after the
			// dip carries the evidence (it queued through whatever
			// starved the flow).
			dipEnd := first.Add(simtime.Duration(w+1) * cfg.Window)
			idx := sort.Search(len(ds), func(i int) bool { return ds[i].at >= dipEnd })
			if idx >= len(ds) {
				continue
			}
			j := &st.Journeys[ds[idx].journey]
			if v, ok := worstHopOf(ds[idx].journey, j); ok {
				v.Kind = VictimThroughput
				victims = append(victims, v)
			}
			if len(victims) >= cfg.MaxVictims {
				return victims
			}
		}
	}
	return victims
}

// worstHopOf builds a Victim at the journey's longest-queuing hop.
func worstHopOf(idx int, j *tracestore.Journey) (Victim, bool) {
	var best *tracestore.JourneyHop
	var bestDelay simtime.Duration = -1
	for h := range j.Hops {
		hop := &j.Hops[h]
		if hop.ReadAt == 0 {
			continue
		}
		if d := hop.ReadAt.Sub(hop.ArriveAt); d > bestDelay {
			bestDelay = d
			best = hop
		}
	}
	if best == nil {
		return Victim{}, false
	}
	return Victim{
		Journey:    idx,
		Comp:       best.Comp,
		ArriveAt:   best.ArriveAt,
		QueueDelay: bestDelay,
		Tuple:      j.Tuple,
		HasTuple:   j.HasTuple,
	}, true
}

func flowLess(a, b packet.FiveTuple) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}
