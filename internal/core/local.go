package core

import (
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// LocalScores holds the §4.1 decomposition of a queuing period at an NF.
type LocalScores struct {
	// T is the queuing-period length.
	T simtime.Duration
	// NIn and NProc are n_i(T) and n_p(T).
	NIn, NProc int
	// Expected is r_i * T, the packets the NF could process at peak.
	Expected float64
	// Si is the input workload score (eq. 1): extra input packets beyond
	// peak capacity.
	Si float64
	// Sp is the processing score (eq. 2): packets fewer than peak
	// processing would have handled.
	Sp float64
}

// QueueLen returns n_i - n_p = Si + Sp, the queue length when the victim
// arrived.
func (ls *LocalScores) QueueLen() int { return ls.NIn - ls.NProc }

// localDiagnose computes the §4.1 scores for the queuing period qp at an NF
// with peak rate r.
//
//	Si = n_i(T) - r*T   if n_i(T) > r*T, else 0            (eq. 1)
//	Sp = r*T - n_p(T)   if n_i(T) > r*T, else n_i - n_p    (eq. 2)
//
// which guarantees Si + Sp = n_i - n_p, the queue length.
func localDiagnose(qp *tracestore.QueuingPeriod, r simtime.Rate) LocalScores {
	ls := LocalScores{
		T:     qp.T(),
		NIn:   qp.NIn,
		NProc: qp.NProc,
	}
	ls.Expected = r.PacketsF(ls.T)
	ni := float64(qp.NIn)
	np := float64(qp.NProc)
	if ni > ls.Expected {
		ls.Si = ni - ls.Expected
		ls.Sp = ls.Expected - np
	} else {
		ls.Si = 0
		ls.Sp = ni - np
	}
	// Numerical guards: a slightly-faster-than-peak burst of dequeues
	// can push Sp fractionally negative; clamp while preserving the sum.
	if ls.Sp < 0 {
		ls.Si += ls.Sp
		ls.Sp = 0
		if ls.Si < 0 {
			ls.Si = 0
		}
	}
	return ls
}
