package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"microscope/internal/obs"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// TestFlightComputesOnce: any number of concurrent and sequential do()
// calls for one key run fn exactly once; everyone sees the first value.
func TestFlightComputesOnce(t *testing.T) {
	var f flight[int]
	k := periodKey{comp: 3, start: 10, end: 20}
	var calls atomic.Int32

	const goroutines = 32
	results := make([]int, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g] = f.do(k, nil, nil, nil, func() int {
				return int(calls.Add(1)) * 100
			})
		}(g)
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for g, r := range results {
		if r != 100 {
			t.Fatalf("goroutine %d saw %d, want 100", g, r)
		}
	}
	// A later call is a pure cache hit.
	if v := f.do(k, nil, nil, nil, func() int { t.Fatal("recomputed"); return 0 }); v != 100 {
		t.Fatalf("cached value = %d", v)
	}
}

// TestFlightDistinctKeys: different keys compute independently, even when
// they land on the same shard.
func TestFlightDistinctKeys(t *testing.T) {
	var f flight[int]
	k1 := periodKey{comp: 1, start: 1, end: 2}
	// Scan for a second key on the same shard as k1 — shard collision must
	// not conflate keys.
	k2 := periodKey{comp: 2, start: 1, end: 2}
	for s := int64(0); shardOf(k2) != shardOf(k1); s++ {
		k2.start = simtime.Time(s)
	}
	v1 := f.do(k1, nil, nil, nil, func() int { return 11 })
	v2 := f.do(k2, nil, nil, nil, func() int { return 22 })
	if v1 != 11 || v2 != 22 {
		t.Fatalf("colliding-shard keys conflated: %d %d", v1, v2)
	}
}

// TestFlightSlowComputationDoesNotBlockShard: the shard lock is not held
// across fn, so a slow computation on one key never blocks another key —
// even one hashing to the same shard.
func TestFlightSlowComputationDoesNotBlockShard(t *testing.T) {
	var f flight[int]
	k1 := periodKey{comp: 1, start: 1, end: 2}
	k2 := periodKey{comp: 2, start: 1, end: 2}
	for s := int64(0); shardOf(k2) != shardOf(k1); s++ {
		k2.start = simtime.Time(s)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.do(k1, nil, nil, nil, func() int {
			close(entered)
			<-release
			return 1
		})
	}()
	<-entered
	// k1's fn is in flight and parked. k2 on the same shard must proceed.
	if v := f.do(k2, nil, nil, nil, func() int { return 2 }); v != 2 {
		t.Fatalf("same-shard key blocked or conflated: %d", v)
	}
	close(release)
	<-done
}

// TestFlightPanicUnpoisons: a panicking fn leaves no poisoned entry —
// concurrent waiters fall back to their own computation, and later callers
// recompute fresh.
func TestFlightPanicUnpoisons(t *testing.T) {
	var f flight[int]
	k := periodKey{comp: 9, start: 5, end: 6}

	inFlight := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed by flight.do")
			}
			close(panicked)
		}()
		f.do(k, nil, nil, nil, func() int {
			close(inFlight)
			<-release
			panic("chaos")
		})
	}()
	<-inFlight

	// This waiter blocks on the in-flight call, sees it die, and computes
	// its own value.
	waiterDone := make(chan int, 1)
	go func() {
		waiterDone <- f.do(k, nil, nil, nil, func() int { return 42 })
	}()
	close(release)
	<-panicked
	if v := <-waiterDone; v != 42 {
		t.Fatalf("waiter after panic got %d, want its own 42", v)
	}
	// The key is unpoisoned: a later caller computes fresh (or reuses the
	// waiter's committed value — both are sound; what it must not do is
	// hang or observe the panicked flight).
	v := f.do(k, nil, nil, nil, func() int { return 7 })
	if v != 42 && v != 7 {
		t.Fatalf("post-panic value = %d", v)
	}
}

// TestFlightReadContention: completed entries are served through the
// sync.Map read-only fast path — no shard lock on the hit path. The test
// hammers a small hot set from many goroutines while cold keys stream in
// on the side, and checks every read is correct and every call is
// accounted as exactly one hit or miss.
func TestFlightReadContention(t *testing.T) {
	var f flight[int]
	reg := obs.New()
	hits, misses := reg.Counter("t_hits"), reg.Counter("t_misses")

	// Seed the hot set; each value encodes its key.
	const hot = 8
	for i := 0; i < hot; i++ {
		k := periodKey{comp: tracestore.CompID(i), start: 1, end: 2}
		f.do(k, hits, misses, nil, func() int { return 1000 + i })
	}

	const goroutines = 16
	const reads = 2000
	var wg sync.WaitGroup
	var bad atomic.Int32
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < reads; i++ {
				ki := (g + i) % hot
				k := periodKey{comp: tracestore.CompID(ki), start: 1, end: 2}
				if v := f.do(k, hits, misses, nil, func() int { return -1 }); v != 1000+ki {
					bad.Add(1)
				}
				if i%64 == 0 {
					// A cold insert on the side must not disturb hot reads.
					ck := periodKey{comp: tracestore.CompID(100 + g), start: simtime.Time(i), end: simtime.Time(i + 1)}
					f.do(ck, hits, misses, nil, func() int { return 0 })
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d contended reads returned wrong values", n)
	}
	total := hits.Value() + misses.Value()
	want := int64(hot + goroutines*(reads+(reads+63)/64))
	if total != want {
		t.Fatalf("hit/miss accounting lost calls: %d + %d = %d, want %d",
			hits.Value(), misses.Value(), total, want)
	}
}

// TestFlightRebind: rebind keeps entries the callback accepts (remapping
// their values and marking them carried, so later hits count as reused),
// evicts the rest, and drops never-completed entries unconditionally.
func TestFlightRebind(t *testing.T) {
	var f flight[int]
	for i := 0; i < 10; i++ {
		k := periodKey{comp: 1, start: simtime.Time(i), end: simtime.Time(i + 1)}
		f.do(k, nil, nil, nil, func() int { return i })
	}
	kept := f.rebind(func(k periodKey, v int) (int, bool) {
		if k.start < 5 {
			return 0, false
		}
		return v + 100, true
	})
	if kept != 5 {
		t.Fatalf("rebind kept %d entries, want 5", kept)
	}
	reg := obs.New()
	hits, misses, reused := reg.Counter("t_hits"), reg.Counter("t_misses"), reg.Counter("t_reused")
	for i := 0; i < 10; i++ {
		k := periodKey{comp: 1, start: simtime.Time(i), end: simtime.Time(i + 1)}
		v := f.do(k, hits, misses, reused, func() int { return -i })
		if i < 5 {
			if v != -i {
				t.Fatalf("evicted key %d not recomputed: %d", i, v)
			}
		} else if v != i+100 {
			t.Fatalf("kept key %d lost its remapped value: %d", i, v)
		}
	}
	if hits.Value() != 5 || misses.Value() != 5 {
		t.Fatalf("hits=%d misses=%d, want 5/5", hits.Value(), misses.Value())
	}
	// Every surviving entry was carried across the rebind: its hits count
	// as reused (the microscope_stream_memo_reused_hits_total signal).
	if reused.Value() != 5 {
		t.Fatalf("reused=%d, want 5", reused.Value())
	}
	// A fresh computation after the rebind is not "carried".
	f.do(periodKey{comp: 2, start: 0, end: 1}, hits, misses, reused, func() int { return 1 })
	f.do(periodKey{comp: 2, start: 0, end: 1}, hits, misses, reused, func() int { return 1 })
	if reused.Value() != 5 {
		t.Fatalf("fresh post-rebind entry counted as reused: %d", reused.Value())
	}
}

// TestShardOfSpread: adjacent periods at one component — the common
// workload shape — spread over many shards instead of clustering.
func TestShardOfSpread(t *testing.T) {
	seen := make(map[uint32]bool)
	for i := int64(0); i < 64; i++ {
		k := periodKey{comp: 5, start: simtime.Time(i * 1000), end: simtime.Time(i*1000 + 500)}
		s := shardOf(k)
		if s >= memoShards {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) < memoShards/4 {
		t.Errorf("64 adjacent periods hit only %d shards", len(seen))
	}
}
