package core

import (
	"sync"
	"sync/atomic"

	"microscope/internal/simtime"
	"testing"
)

// TestFlightComputesOnce: any number of concurrent and sequential do()
// calls for one key run fn exactly once; everyone sees the first value.
func TestFlightComputesOnce(t *testing.T) {
	var f flight[int]
	k := periodKey{comp: 3, start: 10, end: 20}
	var calls atomic.Int32

	const goroutines = 32
	results := make([]int, goroutines)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			results[g] = f.do(k, nil, nil, func() int {
				return int(calls.Add(1)) * 100
			})
		}(g)
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for g, r := range results {
		if r != 100 {
			t.Fatalf("goroutine %d saw %d, want 100", g, r)
		}
	}
	// A later call is a pure cache hit.
	if v := f.do(k, nil, nil, func() int { t.Fatal("recomputed"); return 0 }); v != 100 {
		t.Fatalf("cached value = %d", v)
	}
}

// TestFlightDistinctKeys: different keys compute independently, even when
// they land on the same shard.
func TestFlightDistinctKeys(t *testing.T) {
	var f flight[int]
	k1 := periodKey{comp: 1, start: 1, end: 2}
	// Scan for a second key on the same shard as k1 — shard collision must
	// not conflate keys.
	k2 := periodKey{comp: 2, start: 1, end: 2}
	for s := int64(0); shardOf(k2) != shardOf(k1); s++ {
		k2.start = simtime.Time(s)
	}
	v1 := f.do(k1, nil, nil, func() int { return 11 })
	v2 := f.do(k2, nil, nil, func() int { return 22 })
	if v1 != 11 || v2 != 22 {
		t.Fatalf("colliding-shard keys conflated: %d %d", v1, v2)
	}
}

// TestFlightSlowComputationDoesNotBlockShard: the shard lock is not held
// across fn, so a slow computation on one key never blocks another key —
// even one hashing to the same shard.
func TestFlightSlowComputationDoesNotBlockShard(t *testing.T) {
	var f flight[int]
	k1 := periodKey{comp: 1, start: 1, end: 2}
	k2 := periodKey{comp: 2, start: 1, end: 2}
	for s := int64(0); shardOf(k2) != shardOf(k1); s++ {
		k2.start = simtime.Time(s)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.do(k1, nil, nil, func() int {
			close(entered)
			<-release
			return 1
		})
	}()
	<-entered
	// k1's fn is in flight and parked. k2 on the same shard must proceed.
	if v := f.do(k2, nil, nil, func() int { return 2 }); v != 2 {
		t.Fatalf("same-shard key blocked or conflated: %d", v)
	}
	close(release)
	<-done
}

// TestFlightPanicUnpoisons: a panicking fn leaves no poisoned entry —
// concurrent waiters fall back to their own computation, and later callers
// recompute fresh.
func TestFlightPanicUnpoisons(t *testing.T) {
	var f flight[int]
	k := periodKey{comp: 9, start: 5, end: 6}

	inFlight := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed by flight.do")
			}
			close(panicked)
		}()
		f.do(k, nil, nil, func() int {
			close(inFlight)
			<-release
			panic("chaos")
		})
	}()
	<-inFlight

	// This waiter blocks on the in-flight call, sees it die, and computes
	// its own value.
	waiterDone := make(chan int, 1)
	go func() {
		waiterDone <- f.do(k, nil, nil, func() int { return 42 })
	}()
	close(release)
	<-panicked
	if v := <-waiterDone; v != 42 {
		t.Fatalf("waiter after panic got %d, want its own 42", v)
	}
	// The key is unpoisoned: a later caller computes fresh (or reuses the
	// waiter's committed value — both are sound; what it must not do is
	// hang or observe the panicked flight).
	v := f.do(k, nil, nil, func() int { return 7 })
	if v != 42 && v != 7 {
		t.Fatalf("post-panic value = %d", v)
	}
}

// TestShardOfSpread: adjacent periods at one component — the common
// workload shape — spread over many shards instead of clustering.
func TestShardOfSpread(t *testing.T) {
	seen := make(map[uint32]bool)
	for i := int64(0); i < 64; i++ {
		k := periodKey{comp: 5, start: simtime.Time(i * 1000), end: simtime.Time(i*1000 + 500)}
		s := shardOf(k)
		if s >= memoShards {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s] = true
	}
	if len(seen) < memoShards/4 {
		t.Errorf("64 adjacent periods hit only %d shards", len(seen))
	}
}
