package core

import (
	"sort"
	"strings"

	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// pathStats aggregates the PreSet subset that traversed one upstream path.
type pathStats struct {
	// key is the path's interned encoding (big-endian CompID bytes) —
	// an opaque map/sort key, not for display; see diagnoser.pathLabel.
	key   string
	comps []tracestore.CompID // upstream components in order, comps[0] is the source
	// journeys of the subset (journey indices), for culprit reporting.
	journeys []int
	n        int
	// spans[i] is the subset's timespan at comps[i]: the interval between
	// the first and the last packet leaving that component (§4.2). For
	// the source this is the emission span.
	spans []simtime.Duration
	// lastSpan is the subset's arrival timespan at the victim NF.
	lastSpan simtime.Duration
	// firstArrive[i] is when the subset's first packet arrived at
	// comps[i] (source: first emission).
	firstArrive []simtime.Time
	// lastArrive[i] is when the subset's last packet arrived at
	// comps[i]. The §4.3 recursion anchors on it: the queuing period at
	// an upstream NF ending at the subset's last arrival covers both a
	// pre-existing queue (the "grey packets" of Figure 6) and queuing
	// that built up during the subset's own sojourn (an interrupt
	// stalling the NF while the subset waits).
	lastArrive []simtime.Time

	// running bounds used while accumulating packets
	departMin, departMax   []simtime.Time
	arriveFMin, arriveFMax simtime.Time
}

// propagate implements the §4.2 timespan analysis: it splits budget (the
// victim NF's S_i, or a recursive share of it) across the traffic source
// and upstream NFs, by how much each squeezed the PreSet's timespan
// relative to the expected timespan Texp = n_i(T)/r_f.
//
// The chain rule is a backward pass with a rising "effective timespan"
// level: walking from the victim NF toward the source, a hop's share is
// max(0, upstreamSpan - level), then level = max(level, upstreamSpan); the
// virtual hop above the source is Texp. This reproduces the paper's worked
// example exactly: a downstream increase (B) zeroes that hop's share and
// debits the upstream reducer (A) only down to B's span.
type propagated struct {
	comp  tracestore.CompID
	score float64
	// subset describes the PreSet packets flowing through this comp for
	// this share (for recursion and culprit reporting).
	path *pathStats
	// compIdx is the index of comp within path.comps (-1 for source).
	compIdx int
}

func (d *diagnoser) propagate(f tracestore.CompID, qp *tracestore.QueuingPeriod, budget float64, a *workerArena) []propagated {
	// The decomposition is budget-independent; many victims (and the §4.3
	// recursion itself) revisit the same (NF, period), so it is memoized
	// with single-flight semantics and only the linear budget scaling
	// happens per call. The computing caller's arena supplies the walk
	// scratch; the cached value never references it.
	pps := d.memo.prop.do(periodKey{comp: f, start: qp.Start, end: qp.End}, d.memoHits, d.memoMisses, d.memoReused, func() []propPath {
		return d.decomposePeriod(f, qp, &a.cs)
	})
	out := make([]propagated, 0, len(pps))
	for pi := range pps {
		pp := &pps[pi]
		if pp.sum <= 0 {
			// The subset was no burstier than expected: sustained
			// input pressure, attributed to the source.
			out = append(out, propagated{
				comp: d.src, score: budget * pp.weight, path: pp.path, compIdx: -1,
			})
			continue
		}
		if pp.srcShare > 0 {
			out = append(out, propagated{
				comp:    d.src,
				score:   budget * pp.weight * float64(pp.srcShare) / float64(pp.sum),
				path:    pp.path,
				compIdx: -1,
			})
		}
		for i, s := range pp.shares {
			if s <= 0 {
				continue
			}
			out = append(out, propagated{
				comp:    pp.path.comps[i+1], // shares[i] belongs to comps[i+1] (comps[0] is source)
				score:   budget * pp.weight * float64(s) / float64(pp.sum),
				path:    pp.path,
				compIdx: i + 1,
			})
		}
	}
	return out
}

// decomposePeriod computes the budget-independent half of the §4.2
// analysis: the PreSet path subsets of the period with their timespan
// shares. Pure over the immutable index, so safe to cache and share.
func (d *diagnoser) decomposePeriod(f tracestore.CompID, qp *tracestore.QueuingPeriod, cs *collectScratch) []propPath {
	paths := d.collectPaths(f, qp, cs)
	if len(paths) == 0 {
		return nil
	}
	rf := d.st.PeakRateID(f)
	if rf <= 0 {
		return nil
	}
	// Texp is common to every path (§4.2, DAG case): interleaved subsets
	// are expected to span the whole n_i(T)/r_f.
	texp := simtime.Duration(float64(qp.NIn) / rf.PPS() * float64(simtime.Second))

	total := 0
	for _, p := range paths {
		total += p.n
	}
	pps := make([]propPath, 0, len(paths))
	for _, p := range paths {
		shares, srcShare := timespanShares(texp, p)
		var sum simtime.Duration
		for _, s := range shares {
			sum += s
		}
		sum += srcShare
		pps = append(pps, propPath{
			path:     p,
			weight:   float64(p.n) / float64(total),
			shares:   shares,
			srcShare: srcShare,
			sum:      sum,
		})
	}
	return pps
}

// timespanShares runs the backward level pass over one path. comps[0] is
// the source; spans[i] parallels comps. It returns per-NF shares (indexed
// by comps[1:]) and the source share.
func timespanShares(texp simtime.Duration, p *pathStats) (nfShares []simtime.Duration, srcShare simtime.Duration) {
	k := len(p.comps) - 1 // number of NF hops on the path
	nfShares = make([]simtime.Duration, k)
	level := p.lastSpan
	// NF hops from last to first; hop i's input span is spans[i-1]
	// (the span at the previous component).
	for i := k; i >= 1; i-- {
		in := p.spans[i-1]
		if in > level {
			nfShares[i-1] = in - level
			level = in
		}
	}
	// The source's own reduction is measured against Texp.
	if texp > level {
		srcShare = texp - level
	}
	return nfShares, srcShare
}

// collectScratch is the per-arrival workspace of collectPaths: the hop walk
// and the path-key encoding reuse these buffers, so grouping a
// thousand-packet PreSet allocates only when a new path appears. It lives
// inside the worker arena (diagnose.go) and is reused across every
// collectPaths call a worker makes during a run.
type collectScratch struct {
	key     []byte
	comps   []tracestore.CompID
	departs []simtime.Time
	arrives []simtime.Time
}

// collectPaths groups the PreSet(p) arrivals of the queuing period by the
// upstream path their journeys took to f, and computes per-path timespans.
func (d *diagnoser) collectPaths(f tracestore.CompID, qp *tracestore.QueuingPeriod, cs *collectScratch) []*pathStats {
	v := d.st.ViewID(f)
	if v == nil {
		return nil
	}
	//mslint:allow compid the key is a byte-encoded CompID sequence (allocation-free lookup), not a component name
	byKey := make(map[string]*pathStats)
	for ai := qp.ArrivalFirst; ai <= qp.ArrivalLast && ai < len(v.Arrivals); ai++ {
		arr := &v.Arrivals[ai]
		if arr.Journey < 0 || arr.Journey >= len(d.st.Journeys) {
			continue
		}
		j := &d.st.Journeys[arr.Journey]
		// Upstream path: source plus the journey's hops before f.
		cs.comps = append(cs.comps[:0], d.src)
		cs.departs = append(cs.departs[:0], j.EmittedAt)
		cs.arrives = append(cs.arrives[:0], j.EmittedAt)
		for h := range j.Hops {
			if j.Hops[h].Comp == f {
				break
			}
			cs.comps = append(cs.comps, j.Hops[h].Comp)
			cs.departs = append(cs.departs, j.Hops[h].DepartAt)
			cs.arrives = append(cs.arrives, j.Hops[h].ArriveAt)
		}
		cs.key = cs.key[:0]
		for _, c := range cs.comps {
			cs.key = append(cs.key, byte(c>>24), byte(c>>16), byte(c>>8), byte(c))
		}
		// map[string(bytes)] compiles to a no-allocation lookup; the key
		// string is materialized only when a new path appears.
		ps := byKey[string(cs.key)]
		if ps == nil {
			ps = &pathStats{
				key:         string(cs.key),
				comps:       append([]tracestore.CompID(nil), cs.comps...),
				spans:       make([]simtime.Duration, len(cs.comps)),
				firstArrive: make([]simtime.Time, len(cs.comps)),
				lastArrive:  make([]simtime.Time, len(cs.comps)),
			}
			for i := range ps.spans {
				ps.spans[i] = -1 // marks "unset"
			}
			byKey[ps.key] = ps
		}
		ps.n++
		ps.journeys = append(ps.journeys, arr.Journey)
		ps.accumulate(cs.departs, cs.arrives, arr.At)
	}
	out := make([]*pathStats, 0, len(byKey))
	for _, ps := range byKey {
		ps.finish()
		out = append(out, ps)
	}
	// The encoded key orders paths by (CompID sequence, length): a total
	// deterministic order, so every worker sees the same decomposition.
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// pathLabel renders a path's human-readable form ("source>a>b") for
// explain/report output; hot paths carry only the interned key.
func (d *diagnoser) pathLabel(p *pathStats) string {
	var b strings.Builder
	for i, c := range p.comps {
		if i > 0 {
			b.WriteByte('>')
		}
		b.WriteString(d.st.CompName(c))
	}
	return b.String()
}

// accumulate folds one packet's per-hop depart times and its arrival time
// at the victim NF into the path's running bounds.
func (p *pathStats) accumulate(departs, arrives []simtime.Time, arriveAtF simtime.Time) {
	if p.departMin == nil {
		p.departMin = make([]simtime.Time, len(p.comps))
		p.departMax = make([]simtime.Time, len(p.comps))
		for i := range p.departMin {
			p.departMin[i] = simtime.Never
			p.departMax[i] = -1
			p.firstArrive[i] = simtime.Never
			p.lastArrive[i] = -1
		}
		p.arriveFMin = simtime.Never
		p.arriveFMax = -1
	}
	for i := range p.comps {
		if i < len(departs) {
			if departs[i] < p.departMin[i] {
				p.departMin[i] = departs[i]
			}
			if departs[i] > p.departMax[i] {
				p.departMax[i] = departs[i]
			}
			if arrives[i] < p.firstArrive[i] {
				p.firstArrive[i] = arrives[i]
			}
			if arrives[i] > p.lastArrive[i] {
				p.lastArrive[i] = arrives[i]
			}
		}
	}
	if arriveAtF < p.arriveFMin {
		p.arriveFMin = arriveAtF
	}
	if arriveAtF > p.arriveFMax {
		p.arriveFMax = arriveAtF
	}
}

func (p *pathStats) finish() {
	for i := range p.comps {
		if p.departMax[i] >= 0 {
			p.spans[i] = p.departMax[i].Sub(p.departMin[i])
		} else {
			p.spans[i] = 0
		}
	}
	if p.arriveFMax >= 0 {
		p.lastSpan = p.arriveFMax.Sub(p.arriveFMin)
	}
}
