package core

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

// buildDAGStore constructs a two-upstream DAG (a1, a2 → f) where both
// upstreams are interrupted, runs traffic, and reconstructs.
func buildDAGStore(t *testing.T, interruptA1, interruptA2 bool) (*tracestore.Store, *nfsim.Sim) {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.New(col)
	sim.AddNF(nfsim.NFConfig{Name: "a1", Kind: "nat", PeakRate: simtime.MPPS(1.0), Seed: 1})
	sim.AddNF(nfsim.NFConfig{Name: "a2", Kind: "mon", PeakRate: simtime.MPPS(1.0), Seed: 2})
	sim.AddNF(nfsim.NFConfig{Name: "f", Kind: "vpn", PeakRate: simtime.MPPS(0.6), Seed: 3})
	sim.ConnectSource(func(p *packet.Packet) int {
		if p.Flow.DstPort == 5353 {
			return 1
		}
		return 0
	}, "a1", "a2")
	sim.Connect("a1", func(*packet.Packet) int { return 0 }, "f")
	sim.Connect("a2", func(*packet.Packet) int { return 0 }, "f")
	sim.Connect("f", func(*packet.Packet) int { return nfsim.Egress })

	// Heavy stream through a1 (0.35 Mpps), light through a2 (0.07 Mpps):
	// the Figure 3 asymmetry.
	heavy := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	light := packet.FiveTuple{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 5353, Proto: 17}
	sched := &traffic.Schedule{}
	dur := simtime.Duration(6 * simtime.Millisecond)
	sched.InjectFlow(heavy, 0, int(simtime.MPPS(0.35).PacketsF(dur)), simtime.MPPS(0.35).Interval(), 64)
	sched.InjectFlow(light, 0, int(simtime.MPPS(0.07).PacketsF(dur)), simtime.MPPS(0.07).Interval(), 64)
	sim.LoadSchedule(sched)

	at := simtime.Time(simtime.Millisecond)
	if interruptA1 {
		sim.InjectInterrupt("a1", at, 700*simtime.Microsecond, "a1")
	}
	if interruptA2 {
		sim.InjectInterrupt("a2", at, 700*simtime.Microsecond, "a2")
	}
	sim.Run(simtime.Time(100 * simtime.Millisecond))

	meta := collector.Meta{
		MaxBatch: nfsim.DefaultMaxBatch,
		Components: []collector.ComponentMeta{
			{Name: collector.SourceName, Kind: "source"},
			{Name: "a1", Kind: "nat", PeakRate: simtime.MPPS(1.0)},
			{Name: "a2", Kind: "mon", PeakRate: simtime.MPPS(1.0)},
			{Name: "f", Kind: "vpn", PeakRate: simtime.MPPS(0.6), Egress: true},
		},
		Edges: []collector.Edge{
			{From: collector.SourceName, To: "a1"},
			{From: collector.SourceName, To: "a2"},
			{From: "a1", To: "f"},
			{From: "a2", To: "f"},
		},
	}
	st := tracestore.Build(col.Trace(meta))
	st.Reconstruct()
	return st, sim
}

// TestDAGAttributesDominantUpstream is the §2 example 3 / §4.2 DAG case:
// simultaneous interrupts at a heavy and a light upstream must blame the
// heavy one more.
func TestDAGAttributesDominantUpstream(t *testing.T) {
	st, sim := buildDAGStore(t, true, true)
	eng := NewEngine(Config{})
	// Victims queued at f after the interrupts end.
	after := simtime.Time(1700 * simtime.Microsecond)
	scoreA1, scoreA2 := 0.0, 0.0
	checked := 0
	for i := range st.Journeys {
		j := &st.Journeys[i]
		hop := st.HopAt(j, "f")
		if hop == nil || hop.ReadAt == 0 || hop.ArriveAt < after {
			continue
		}
		delay := hop.ReadAt.Sub(hop.ArriveAt)
		if delay < 50*simtime.Microsecond {
			continue
		}
		d := eng.DiagnoseVictim(st, Victim{
			Journey: i, Comp: "f", ArriveAt: hop.ArriveAt, QueueDelay: delay,
		})
		for _, c := range d.Causes {
			switch c.Comp {
			case "a1":
				scoreA1 += c.Score
			case "a2":
				scoreA2 += c.Score
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no victims at f")
	}
	if scoreA1 <= 2*scoreA2 {
		t.Errorf("heavy upstream a1 (%.1f) not clearly above light a2 (%.1f)", scoreA1, scoreA2)
	}
	_ = sim
}

// TestDAGSingleUpstreamBlamed: only a1 interrupted — a2 must get ~nothing.
func TestDAGSingleUpstreamBlamed(t *testing.T) {
	st, _ := buildDAGStore(t, true, false)
	eng := NewEngine(Config{})
	after := simtime.Time(1700 * simtime.Microsecond)
	scoreA1, scoreA2 := 0.0, 0.0
	for i := range st.Journeys {
		j := &st.Journeys[i]
		hop := st.HopAt(j, "f")
		if hop == nil || hop.ReadAt == 0 || hop.ArriveAt < after {
			continue
		}
		if hop.ReadAt.Sub(hop.ArriveAt) < 50*simtime.Microsecond {
			continue
		}
		d := eng.DiagnoseVictim(st, Victim{
			Journey: i, Comp: "f", ArriveAt: hop.ArriveAt,
			QueueDelay: hop.ReadAt.Sub(hop.ArriveAt),
		})
		for _, c := range d.Causes {
			switch c.Comp {
			case "a1":
				scoreA1 += c.Score
			case "a2":
				scoreA2 += c.Score
			}
		}
	}
	if scoreA1 == 0 {
		t.Fatal("a1 never blamed")
	}
	if scoreA2 > scoreA1/5 {
		t.Errorf("innocent a2 blamed too much: a1=%.1f a2=%.1f", scoreA1, scoreA2)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.VictimPercentile != 99 || c.AbnormalStdDevs != 1 || c.MaxRecursionDepth != 5 {
		t.Errorf("defaults: %+v", c)
	}
	if c.MinScore != 1 || c.TraceEndSlack != 2*simtime.Millisecond {
		t.Errorf("defaults: %+v", c)
	}
	if c.QueueThreshold != 0 {
		t.Errorf("queue threshold default: %d", c.QueueThreshold)
	}
}

func TestCulpritJourneyCap(t *testing.T) {
	sc := new(victimScratch)
	many := make([]int, 3000)
	for i := range many {
		many[i] = i
	}
	k := causeKey{comp: 7, kind: CulpritLocalProcessing}
	sc.add(k, 1, 0, many)
	sc.add(k, 1, 0, many)
	sc.add(k, 1, 0, many)
	got := sc.get(k)
	if got == nil || got.score != 3 {
		t.Fatalf("acc: %+v", got)
	}
	if len(got.journeys) > 4096+len(many) {
		t.Errorf("culprit journeys unbounded: %d", len(got.journeys))
	}
}

func TestAddCauseIgnoresNonPositive(t *testing.T) {
	sc := new(victimScratch)
	k := causeKey{comp: 7, kind: CulpritLocalProcessing}
	sc.add(k, 0, 0, nil)
	sc.add(k, -5, 0, nil)
	if len(sc.accs) != 0 || sc.get(k) != nil {
		t.Error("non-positive causes accumulated")
	}
}

func TestAddCauseKeepsEarliestOnset(t *testing.T) {
	sc := new(victimScratch)
	k := causeKey{comp: 7, kind: CulpritLocalProcessing}
	sc.add(k, 1, 500, nil)
	sc.add(k, 1, 100, nil)
	sc.add(k, 1, 900, nil)
	got := sc.get(k)
	if got == nil || got.at != 100 {
		t.Errorf("onset: %+v", got)
	}
}

// TestScratchSlotReuse: reset retires slots but a subsequent add must not
// resurrect stale journeys from the reused buffer.
func TestScratchSlotReuse(t *testing.T) {
	sc := new(victimScratch)
	k := causeKey{comp: 3, kind: CulpritSourceTraffic}
	sc.add(k, 2, 50, []int{1, 2, 3})
	sc.reset()
	if len(sc.accs) != 0 || sc.get(k) != nil {
		t.Fatalf("reset left state: %d accs, live key", len(sc.accs))
	}
	sc.add(k, 1, 9, []int{42})
	got := sc.get(k)
	if got == nil || got.score != 1 || got.at != 9 || len(got.journeys) != 1 || got.journeys[0] != 42 {
		t.Errorf("reused slot carried stale state: %+v", got)
	}
}

// TestScratchGenerationWrap: a full uint32 generation wrap must not let
// pre-wrap stamps alias post-wrap generations.
func TestScratchGenerationWrap(t *testing.T) {
	sc := new(victimScratch)
	k := causeKey{comp: 5, kind: CulpritLocalProcessing}
	sc.add(k, 3, 10, nil)
	sc.gen = ^uint32(0) // force the next reset to wrap
	sc.reset()
	if sc.gen != 1 {
		t.Fatalf("gen after wrap: %d", sc.gen)
	}
	if sc.get(k) != nil {
		t.Fatal("stale slot visible after generation wrap")
	}
	sc.add(k, 1, 2, nil)
	got := sc.get(k)
	if got == nil || got.score != 1 || got.at != 2 {
		t.Errorf("post-wrap acc: %+v", got)
	}
}
