package core

import (
	"context"
	"testing"

	"microscope/internal/obs"
	"microscope/internal/tracestore"
)

// TestArenaPerWorkerNotPerVictim: a parallel diagnosis run acquires exactly
// one scratch arena per worker — not one per victim. The scratch counters
// (new + reused) tally every acquisition, so their sum is the acquisition
// count regardless of pool temperature.
func TestArenaPerWorkerNotPerVictim(t *testing.T) {
	st, _ := buildDAGStore(t, true, false)

	run := func(workers int) (acquisitions int64, victims int) {
		reg := obs.New()
		eng := NewEngine(Config{Workers: workers, Obs: reg})
		vs := eng.FindVictims(st)
		if len(vs) == 0 {
			t.Fatal("no victims")
		}
		eng.DiagnoseVictims(st, vs)
		snap := reg.TakeSnapshot()
		return snap.Counters["microscope_diag_scratch_new_total"] +
			snap.Counters["microscope_diag_scratch_reused_total"], len(vs)
	}

	// FindVictims builds a diagnoser too but never acquires an arena, so
	// the counters reflect DiagnoseVictims alone.
	acq, victims := run(1)
	if acq != 1 {
		t.Errorf("sequential run acquired %d arenas, want 1", acq)
	}
	acq, victims = run(4)
	resolved := int64(4)
	if v := int64(victims); v < resolved {
		resolved = v
	}
	if acq < 1 || acq > resolved {
		t.Errorf("parallel run acquired %d arenas for %d victims, want 1..%d (per worker)",
			acq, victims, resolved)
	}
	if int64(victims) > resolved && acq >= int64(victims) {
		t.Errorf("arena acquisitions (%d) scale with victims (%d), not workers", acq, victims)
	}
}

// TestPartitionVictimsInvariant: the NF partitioner covers every victim
// exactly once, keeps ascending victim order inside each partition, splits
// nothing below the chunk floor, and is deterministic.
func TestPartitionVictimsInvariant(t *testing.T) {
	st, _ := buildDAGStore(t, true, true)
	eng := NewEngine(Config{})
	d := eng.newDiagnoser(st)
	victims := d.findVictims()
	if len(victims) < 2 {
		t.Fatalf("workload too small: %d victims", len(victims))
	}

	for _, workers := range []int{2, 4, 8} {
		parts := d.partitionVictims(victims, workers)
		seen := make([]bool, len(victims))
		for _, p := range parts {
			if len(p.victims) == 0 {
				t.Fatal("empty partition emitted")
			}
			for k, vi := range p.victims {
				if seen[vi] {
					t.Fatalf("victim %d in two partitions", vi)
				}
				seen[vi] = true
				if k > 0 && p.victims[k-1] >= vi {
					t.Fatalf("partition victim order not ascending: %v", p.victims)
				}
				// Partition membership is by victim NF.
				if c := st.CompIDOf(victims[vi].Comp); c != p.comp {
					t.Fatalf("victim at %s landed in partition of comp %d", victims[vi].Comp, p.comp)
				}
			}
		}
		for vi, ok := range seen {
			if !ok {
				t.Fatalf("victim %d never partitioned (workers=%d)", vi, workers)
			}
		}
		// Determinism: same input, same partitioning.
		again := d.partitionVictims(victims, workers)
		if len(again) != len(parts) {
			t.Fatalf("partitioning not deterministic: %d vs %d parts", len(parts), len(again))
		}
		for i := range parts {
			if parts[i].comp != again[i].comp || len(parts[i].victims) != len(again[i].victims) {
				t.Fatalf("partition %d differs across identical calls", i)
			}
		}
		// LPT order: victim counts never increase.
		for i := 1; i < len(parts); i++ {
			if len(parts[i].victims) > len(parts[i-1].victims) {
				t.Fatalf("partitions not ordered by descending size")
			}
		}
	}
}

// TestPartitionVictimsChunksOversized: one hot NF producing every victim
// must still split into enough chunks to keep all workers busy.
func TestPartitionVictimsChunksOversized(t *testing.T) {
	st, _ := buildDAGStore(t, true, false)
	eng := NewEngine(Config{})
	d := eng.newDiagnoser(st)

	// Synthesize 1000 victims all at one NF.
	victims := make([]Victim, 1000)
	for i := range victims {
		victims[i] = Victim{Comp: "f", ArriveAt: 1000, Kind: VictimLatency}
	}
	const workers = 4
	parts := d.partitionVictims(victims, workers)
	if len(parts) < workers {
		t.Fatalf("monolithic hot partition: %d parts for %d workers", len(parts), workers)
	}
	cap := (len(victims) + workers*maxPartitionFactor - 1) / (workers * maxPartitionFactor)
	if cap < minPartitionChunk {
		cap = minPartitionChunk
	}
	total := 0
	for _, p := range parts {
		if len(p.victims) > cap {
			t.Fatalf("chunk of %d exceeds cap %d", len(p.victims), cap)
		}
		total += len(p.victims)
	}
	if total != len(victims) {
		t.Fatalf("chunks cover %d of %d victims", total, len(victims))
	}
}

// TestDiagnoseVictimsStatsReportsScheduling: the stats surface reflects the
// partitioned run and never changes the diagnoses themselves.
func TestDiagnoseVictimsStatsReportsScheduling(t *testing.T) {
	st, _ := buildDAGStore(t, true, false)
	eng := NewEngine(Config{Workers: 4})
	vs := eng.FindVictims(st)
	if len(vs) == 0 {
		t.Fatal("no victims")
	}
	out, stats, err := eng.DiagnoseVictimsStats(context.Background(), st, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vs) {
		t.Fatalf("%d diagnoses for %d victims", len(out), len(vs))
	}
	if stats.Partitions < 1 || stats.LargestPartition < 1 || stats.Workers < 1 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.LargestPartition > len(vs) {
		t.Fatalf("largest partition %d exceeds victim count %d", stats.LargestPartition, len(vs))
	}

	// The sequential engine must produce identical output.
	seqEng := NewEngine(Config{Workers: 1})
	seqOut, seqStats, err := seqEng.DiagnoseVictimsStats(context.Background(), st, vs)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.Workers != 1 || seqStats.Partitions != 1 {
		t.Fatalf("sequential stats: %+v", seqStats)
	}
	if len(seqOut) != len(out) {
		t.Fatal("output length differs across worker counts")
	}
	for i := range out {
		if len(out[i].Causes) != len(seqOut[i].Causes) {
			t.Fatalf("victim %d: cause count differs across worker counts", i)
		}
		for c := range out[i].Causes {
			if out[i].Causes[c].Score != seqOut[i].Causes[c].Score ||
				out[i].Causes[c].Comp != seqOut[i].Causes[c].Comp {
				t.Fatalf("victim %d cause %d differs across worker counts", i, c)
			}
		}
	}
}

// TestPartitionVictimsUnknownComp: victims at components the store never
// interned land in the NoComp bucket instead of being dropped or panicking.
func TestPartitionVictimsUnknownComp(t *testing.T) {
	st, _ := buildDAGStore(t, true, false)
	eng := NewEngine(Config{})
	d := eng.newDiagnoser(st)
	victims := []Victim{
		{Comp: "f", ArriveAt: 1000},
		{Comp: "no-such-nf", ArriveAt: 1000},
	}
	parts := d.partitionVictims(victims, 2)
	total := 0
	sawNoComp := false
	for _, p := range parts {
		total += len(p.victims)
		if p.comp == tracestore.NoComp {
			sawNoComp = true
		}
	}
	if total != 2 {
		t.Fatalf("partitions cover %d of 2 victims", total)
	}
	if !sawNoComp {
		t.Fatal("unknown-comp victim not bucketed under NoComp")
	}
}
