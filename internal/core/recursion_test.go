package core

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

// TestTwoLevelRecursion reproduces the Figure 8 structure: the victim's NF
// (f) is overwhelmed by input from m; m's own queuing period is itself
// input-dominated (a burst from x, released by an interrupt); the recursion
// must descend f → m → x and pin x's local processing.
//
//	source ─→ x ─┐
//	             ├─→ m ─→ f (victims here)
//	source ─→ y ─┘
func TestTwoLevelRecursion(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.New(col)
	sim.AddNF(nfsim.NFConfig{Name: "x", Kind: "nat", PeakRate: simtime.MPPS(1.0), Seed: 1})
	sim.AddNF(nfsim.NFConfig{Name: "y", Kind: "mon", PeakRate: simtime.MPPS(1.0), Seed: 2})
	sim.AddNF(nfsim.NFConfig{Name: "m", Kind: "fw", PeakRate: simtime.MPPS(0.6), Seed: 3})
	sim.AddNF(nfsim.NFConfig{Name: "f", Kind: "vpn", PeakRate: simtime.MPPS(0.5), Seed: 4})
	sim.ConnectSource(func(p *packet.Packet) int {
		if p.Flow.DstPort == 7777 {
			return 0 // cross traffic via x
		}
		return 1 // background via y
	}, "x", "y")
	sim.Connect("x", func(*packet.Packet) int { return 0 }, "m")
	sim.Connect("y", func(*packet.Packet) int { return 0 }, "m")
	sim.Connect("m", func(*packet.Packet) int { return 0 }, "f")
	sim.Connect("f", func(*packet.Packet) int { return nfsim.Egress })

	cross := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 7777, Proto: 17}
	bg := packet.FiveTuple{SrcIP: 4, DstIP: 5, SrcPort: 6, DstPort: 80, Proto: 6}
	s := &traffic.Schedule{}
	dur := simtime.Duration(6 * simtime.Millisecond)
	s.InjectFlow(bg, 0, int(simtime.MPPS(0.35).PacketsF(dur)), simtime.MPPS(0.35).Interval(), 64)
	s.InjectFlow(cross, 0, int(simtime.MPPS(0.1).PacketsF(dur)), simtime.MPPS(0.1).Interval(), 64)
	sim.LoadSchedule(s)
	sim.InjectInterrupt("x", simtime.Time(simtime.Millisecond), simtime.Duration(simtime.Millisecond), "fig8")
	sim.Run(simtime.Time(100 * simtime.Millisecond))

	meta := collector.Meta{
		MaxBatch: nfsim.DefaultMaxBatch,
		Components: []collector.ComponentMeta{
			{Name: collector.SourceName, Kind: "source"},
			{Name: "x", Kind: "nat", PeakRate: simtime.MPPS(1.0)},
			{Name: "y", Kind: "mon", PeakRate: simtime.MPPS(1.0)},
			{Name: "m", Kind: "fw", PeakRate: simtime.MPPS(0.6)},
			{Name: "f", Kind: "vpn", PeakRate: simtime.MPPS(0.5), Egress: true},
		},
		Edges: []collector.Edge{
			{From: collector.SourceName, To: "x"},
			{From: collector.SourceName, To: "y"},
			{From: "x", To: "m"}, {From: "y", To: "m"}, {From: "m", To: "f"},
		},
	}
	st := tracestore.Build(col.Trace(meta))
	st.Reconstruct()

	eng := NewEngine(Config{})
	// Victims: background packets queued at f after the interrupt ended.
	after := simtime.Time(2100 * simtime.Microsecond)
	xBlamed, total := 0, 0
	deepSeen := false
	for i := range st.Journeys {
		j := &st.Journeys[i]
		hop := st.HopAt(j, "f")
		if hop == nil || hop.ReadAt == 0 || hop.ArriveAt < after {
			continue
		}
		delay := hop.ReadAt.Sub(hop.ArriveAt)
		if delay < 60*simtime.Microsecond {
			continue
		}
		v := Victim{Journey: i, Comp: "f", ArriveAt: hop.ArriveAt, QueueDelay: delay}
		d := eng.DiagnoseVictim(st, v)
		if len(d.Causes) == 0 {
			continue
		}
		total++
		for _, c := range d.Causes {
			if c.Comp == "x" && c.Kind == CulpritLocalProcessing {
				xBlamed++
				break
			}
		}
		// The explanation tree must show the two-level descent
		// f -> m -> x at least once: either as a nested node or as an
		// input-pressure share attributed to x inside m's node.
		if !deepSeen {
			ex := eng.Explain(st, v)
			if ex.Root != nil {
				for _, c1 := range ex.Root.Children {
					if c1.Comp != "m" {
						continue
					}
					for _, c2 := range c1.Children {
						if c2.Comp == "x" {
							deepSeen = true
						}
					}
					for _, sh := range c1.Shares {
						if sh.Comp == "x" && sh.Score > 0 {
							deepSeen = true
						}
					}
				}
			}
		}
		if total >= 80 {
			break
		}
	}
	if total == 0 {
		t.Fatal("no victims at f")
	}
	if frac := float64(xBlamed) / float64(total); frac < 0.6 {
		t.Errorf("x implicated for only %.2f of %d two-hop victims", frac, total)
	}
	if !deepSeen {
		t.Error("explanation never showed the f -> m -> x descent")
	}
}
