package core

import "testing"

// TestDiagnoseVictimSteadyStateAllocs guards the pooled-scratch design:
// once the store index and memo tables are warm, diagnosing a victim
// must allocate only the returned Diagnosis (causes slice + journey
// copies), not per-arrival or per-path scratch. The ceiling is generous;
// it exists to catch a regression back to allocation-per-arrival in the
// §4.2 path-grouping walk.
func TestDiagnoseVictimSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement; skipped in -short mode")
	}
	st, _ := buildDAGStore(t, true, false)
	eng := NewEngine(Config{})

	victims := eng.FindVictims(st)
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	v := victims[0]
	eng.DiagnoseVictim(st, v) // warm index, memo, and pools

	avg := testing.AllocsPerRun(20, func() {
		d := eng.DiagnoseVictim(st, v)
		if len(d.Causes) == 0 {
			t.Fatal("no causes")
		}
	})
	// Steady state re-diagnosis is memo-served: the output Diagnosis and
	// its cause/journey copies dominate. 200 is ~an order of magnitude
	// above the observed count and far below the pre-pooling thousands.
	if avg > 200 {
		t.Errorf("DiagnoseVictim steady state allocates %.0f allocs/run, budget 200", avg)
	}
}
