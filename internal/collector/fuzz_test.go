package collector

import (
	"testing"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// fuzzSeedStream builds a small valid MST2 stream covering every record
// shape (reads, writes, delivers with tuples, table definitions).
func fuzzSeedStream() []byte {
	enc := NewEncoder()
	ts := simtime.Time(0)
	for i := 0; i < 8; i++ {
		ts = ts.Add(simtime.Duration(100 + i))
		rec := BatchRecord{
			Comp:  []string{"nat1", "fw1"}[i%2],
			Queue: "fw1.in",
			At:    ts,
			Dir:   Dir(i % 3),
			IPIDs: []uint16{uint16(i), uint16(i * 257)},
		}
		if rec.Dir == DirDeliver {
			rec.Tuples = []packet.FiveTuple{
				{SrcIP: 0x0a000001, DstIP: 0x17000001, SrcPort: 1024, DstPort: 80, Proto: packet.ProtoTCP},
				{SrcIP: 0x0a000002, DstIP: 0x17000002, SrcPort: 1025, DstPort: 443, Proto: packet.ProtoUDP},
			}
		}
		enc.Append(&rec)
	}
	return enc.Bytes()
}

// FuzzDecode drives the tolerant decoder with adversarial input: it must
// never panic, never over-allocate relative to the input size, and always
// report internally consistent stats.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeedStream()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MST2"))
	f.Add([]byte("MST1"))
	f.Add([]byte("nope"))
	// Truncations and single-bit corruptions of the valid stream.
	for _, cut := range []int{4, 5, len(valid) / 2, len(valid) - 1} {
		if cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	for _, pos := range []int{4, 6, len(valid) / 3, len(valid) / 2, len(valid) - 2} {
		mutated := append([]byte(nil), valid...)
		mutated[pos] ^= 0x41
		f.Add(mutated)
	}
	// A stream that is all frame markers (resync stress).
	markers := append([]byte("MST2"), make([]byte, 256)...)
	for i := 4; i < len(markers); i++ {
		markers[i] = frameMarker
	}
	f.Add(markers)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, st, err := DecodeStream(data)
		if err != nil {
			if len(recs) != 0 {
				t.Fatalf("records returned alongside error: %d", len(recs))
			}
			return
		}
		if st.Records != len(recs) {
			t.Fatalf("stats.Records %d != %d decoded", st.Records, len(recs))
		}
		if st.Skipped < 0 || st.Resyncs < 0 || st.BytesSkipped < 0 || st.BytesSkipped > len(data) {
			t.Fatalf("implausible stats: %+v", st)
		}
		// Over-allocation guard: every decoded packet entry was parsed
		// from at least two input bytes, so entries can never exceed
		// half the input.
		entries := 0
		for i := range recs {
			entries += len(recs[i].IPIDs)
			if recs[i].Dir > DirDeliver {
				t.Fatalf("record %d has invalid direction %d", i, recs[i].Dir)
			}
			if recs[i].Dir == DirDeliver && len(recs[i].Tuples) != len(recs[i].IPIDs) {
				t.Fatalf("record %d deliver tuple count mismatch", i)
			}
		}
		if entries > len(data)/2 {
			t.Fatalf("over-allocation: %d entries from %d bytes", entries, len(data))
		}
		// Output must be time-ordered (the decoder resorts).
		for i := 1; i < len(recs); i++ {
			if recs[i].At < recs[i-1].At {
				t.Fatalf("decoded stream out of order at %d", i)
			}
		}
		// Decoding must be deterministic.
		recs2, st2, err2 := DecodeStream(data)
		if err2 != nil || len(recs2) != len(recs) || st2 != st {
			t.Fatalf("nondeterministic decode: %+v vs %+v", st, st2)
		}
	})
}
