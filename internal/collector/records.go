// Package collector implements Microscope's runtime information collection
// (paper §5): instrumentation of the NF receive and transmit paths that
// records, per batch, a timestamp, the batch size, and the IPID of each
// packet — plus full five-tuples only at the egress of the NF graph. The
// records are staged in a shared-memory-style ring drained by a dumper, and
// a compact binary encoding keeps the cost near two bytes per packet.
//
// The collector deliberately observes nothing else: no packet IDs, no
// ground truth, no NF internals. Everything downstream (trace
// reconstruction, diagnosis) works from this record stream alone, exactly
// as the paper's offline component does.
package collector

import (
	"fmt"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// SourceName is the component name of the traffic source in trace records,
// matching nfsim.SourceName.
const SourceName = "source"

// Dir is the direction of a batch operation relative to the component that
// performed it.
type Dir uint8

const (
	// DirRead is a batch dequeue from the component's input queue (the
	// instrumented DPDK receive function).
	DirRead Dir = iota
	// DirWrite is a batch enqueue onto a downstream queue (the
	// instrumented DPDK transmit function).
	DirWrite
	// DirDeliver is a batch leaving the NF graph at an egress NF; these
	// records also carry five-tuples.
	DirDeliver
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case DirRead:
		return "read"
	case DirWrite:
		return "write"
	case DirDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// BatchRecord is one instrumented batch operation.
type BatchRecord struct {
	// Comp is the component that performed the operation ("source" or
	// an NF name).
	Comp string
	// Queue is the queue operated on: the component's own input queue
	// for reads, the destination queue for writes, "" for delivers.
	Queue string
	// At is the batch timestamp.
	At simtime.Time
	// IPIDs holds one entry per packet, in batch order. len(IPIDs) is
	// the batch size.
	IPIDs []uint16
	// Tuples is populated only for DirDeliver records (the paper keeps
	// five-tuples only at the end of the NF graph).
	Tuples []packet.FiveTuple
	// Dir is the operation direction.
	Dir Dir
}

// Size returns the batch size.
func (r *BatchRecord) Size() int { return len(r.IPIDs) }

// Meta describes the deployment to the offline diagnosis: the component
// graph and per-NF peak rates. Operators know their topology and measure
// r_i by offline stress testing (§4.1 footnote); neither is runtime
// information.
type Meta struct {
	// Components lists every component including the traffic source.
	Components []ComponentMeta
	// Edges lists directed links: traffic flows From -> To.
	Edges []Edge
	// MaxBatch is the DPDK receive batch limit (32).
	MaxBatch int
}

// ComponentMeta describes one component.
type ComponentMeta struct {
	Name string
	Kind string // "source", "nat", "fw", ...
	// PeakRate is r_i, the offline-measured peak processing rate.
	// Zero for the source.
	PeakRate simtime.Rate
	// Egress marks NFs at the end of the graph (five-tuples recorded).
	Egress bool
}

// Edge is a directed traffic link between components.
type Edge struct {
	From, To string
}

// Upstreams returns the components that feed the named component.
func (m *Meta) Upstreams(name string) []string {
	var out []string
	for _, e := range m.Edges {
		if e.To == name {
			out = append(out, e.From)
		}
	}
	return out
}

// Downstreams returns the components the named component feeds.
func (m *Meta) Downstreams(name string) []string {
	var out []string
	for _, e := range m.Edges {
		if e.From == name {
			out = append(out, e.To)
		}
	}
	return out
}

// Component returns the metadata for name, or nil.
func (m *Meta) Component(name string) *ComponentMeta {
	for i := range m.Components {
		if m.Components[i].Name == name {
			return &m.Components[i]
		}
	}
	return nil
}

// Integrity accounts for what a trace is known to have lost between
// collection and analysis. A pristine trace is all zeros; consumers use it
// to qualify their confidence (degraded-mode diagnosis).
type Integrity struct {
	// DecodeSkipped is records lost to stream corruption during decode.
	DecodeSkipped int
	// DecodeResyncs is how often the decoder had to hunt for a frame
	// boundary.
	DecodeResyncs int
	// Resorted is records that arrived out of stream order and were
	// re-sorted by timestamp.
	Resorted int
	// DroppedRecords is records known to be lost before decode (ring
	// overruns, injected faults).
	DroppedRecords int
	// TruncatedRecords is records that lost part of their batch.
	TruncatedRecords int
}

// Damaged reports whether the trace is known to be incomplete.
func (g Integrity) Damaged() bool {
	return g.DecodeSkipped > 0 || g.DroppedRecords > 0 || g.TruncatedRecords > 0
}

// LossFrac estimates the fraction of records lost, given the surviving
// record count.
func (g Integrity) LossFrac(surviving int) float64 {
	lost := g.DecodeSkipped + g.DroppedRecords
	if lost == 0 || surviving+lost == 0 {
		return 0
	}
	return float64(lost) / float64(surviving+lost)
}

// Trace is a complete collected run: deployment metadata plus the
// time-ordered record stream.
type Trace struct {
	Meta    Meta
	Records []BatchRecord
	// Integrity records known damage (decode skips, dropped records);
	// zero-valued for pristine traces.
	Integrity Integrity
}

// RecordsOf returns the records of one component, preserving order.
func (t *Trace) RecordsOf(comp string) []BatchRecord {
	var out []BatchRecord
	for i := range t.Records {
		if t.Records[i].Comp == comp {
			out = append(out, t.Records[i])
		}
	}
	return out
}

// Packets returns the total number of per-packet entries across records of
// the given direction (a measure of collection volume).
func (t *Trace) Packets(dir Dir) int {
	n := 0
	for i := range t.Records {
		if t.Records[i].Dir == dir {
			n += len(t.Records[i].IPIDs)
		}
	}
	return n
}
