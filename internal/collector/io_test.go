package collector

import (
	"os"
	"path/filepath"
	"testing"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

func sampleTrace() *Trace {
	return &Trace{
		Meta: Meta{
			MaxBatch: 32,
			Components: []ComponentMeta{
				{Name: "source", Kind: "source"},
				{Name: "fw1", Kind: "fw", PeakRate: simtime.MPPS(0.5)},
				{Name: "vpn1", Kind: "vpn", PeakRate: simtime.MPPS(0.6), Egress: true},
			},
			Edges: []Edge{{From: "source", To: "fw1"}, {From: "fw1", To: "vpn1"}},
		},
		Records: []BatchRecord{
			{Comp: "source", Queue: "fw1.in", At: 100, Dir: DirWrite, IPIDs: []uint16{1, 2}},
			{Comp: "fw1", Queue: "fw1.in", At: 160, Dir: DirRead, IPIDs: []uint16{1, 2}},
			{Comp: "fw1", Queue: "vpn1.in", At: 200, Dir: DirWrite, IPIDs: []uint16{1, 2}},
			{Comp: "vpn1", Queue: "vpn1.in", At: 230, Dir: DirRead, IPIDs: []uint16{1, 2}},
			{Comp: "vpn1", At: 300, Dir: DirDeliver, IPIDs: []uint16{1, 2},
				Tuples: []packet.FiveTuple{tuple(1), tuple(2)}},
		},
	}
}

func TestWriteReadTraceRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	tr := sampleTrace()
	if err := WriteTrace(dir, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.MaxBatch != 32 || len(got.Meta.Components) != 3 || len(got.Meta.Edges) != 2 {
		t.Errorf("meta: %+v", got.Meta)
	}
	c := got.Meta.Component("fw1")
	if c == nil || c.Kind != "fw" || c.PeakRate != simtime.MPPS(0.5) {
		t.Errorf("fw1 meta: %+v", c)
	}
	if !got.Meta.Component("vpn1").Egress {
		t.Error("egress flag lost")
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("records: %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		a, b := tr.Records[i], got.Records[i]
		if a.Comp != b.Comp || a.At != b.At || a.Dir != b.Dir || len(a.IPIDs) != len(b.IPIDs) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if got.Records[4].Tuples[1] != tuple(2) {
		t.Error("tuples lost")
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir accepted")
	}
	// Corrupt meta.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(dir); err == nil {
		t.Error("corrupt meta accepted")
	}
	// Valid meta, missing records.
	if err := os.WriteFile(filepath.Join(dir, metaFile), []byte(`{"max_batch":32}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(dir); err == nil {
		t.Error("missing records accepted")
	}
	// Corrupt records.
	if err := os.WriteFile(filepath.Join(dir, recordsFile), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(dir); err == nil {
		t.Error("corrupt records accepted")
	}
}

func TestWriteTraceCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deep", "nested", "trace")
	if err := WriteTrace(dir, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, recordsFile)); err != nil {
		t.Error("records file missing")
	}
}
