package collector

import (
	"microscope/internal/nfsim"
	"microscope/internal/obs"
	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// Config tunes the collector.
type Config struct {
	// RingBytes sizes the shared-memory staging ring (default 1 MiB).
	// When the encoded stream would overflow the ring, the dumper
	// drains it synchronously — mirroring the paper's standalone dumper
	// keeping up with the collector.
	RingBytes int
	// Obs receives ingest volume counters (batches, packets, encoded
	// bytes). nil falls back to the process default registry.
	Obs *obs.Registry
}

func (c *Config) setDefaults() {
	if c.RingBytes <= 0 {
		c.RingBytes = 1 << 20
	}
}

// Collector implements nfsim.Hooks, staging records through the encoding
// ring and retaining the decoded stream for offline diagnosis.
//
// Per-packet critical-path cost is deliberately tiny: append IPIDs into a
// reused scratch buffer, encode with the compact codec, copy into the ring.
// CostModel documents the equivalent per-packet cost applied to NFs when
// measuring the §6.2 overhead.
type Collector struct {
	cfg  Config
	ring *Ring

	records []BatchRecord
	// scratch buffers reused across hook invocations
	ipids  []uint16
	tuples []packet.FiveTuple

	stats Stats

	// Observability handles, resolved once at New (nil = disabled).
	obsBatches *obs.Counter
	obsPackets *obs.Counter
	obsBytes   *obs.Counter
}

// Stats reports collection volume, used by the overhead evaluation.
type Stats struct {
	Batches      uint64
	PacketsSeen  uint64
	BytesEncoded uint64
}

// BytesPerPacket returns the encoded bytes per collected packet entry.
func (s Stats) BytesPerPacket() float64 {
	if s.PacketsSeen == 0 {
		return 0
	}
	return float64(s.BytesEncoded) / float64(s.PacketsSeen)
}

// New creates a Collector.
func New(cfg Config) *Collector {
	cfg.setDefaults()
	c := &Collector{
		cfg:  cfg,
		ring: NewRing(cfg.RingBytes),
	}
	if reg := obs.Or(cfg.Obs); reg != nil {
		c.obsBatches = reg.Counter("microscope_collector_batches_total")
		c.obsPackets = reg.Counter("microscope_collector_packets_total")
		c.obsBytes = reg.Counter("microscope_collector_bytes_total")
	}
	return c
}

// Stats returns collection counters.
func (c *Collector) Stats() Stats { return c.stats }

// Trace finalizes collection and returns the trace with the given
// deployment metadata attached. The staging ring is drained first (which
// also flushes the encoder's reorder buffer, so flush bytes count toward
// the overhead stats).
func (c *Collector) Trace(meta Meta) *Trace {
	c.stats.BytesEncoded += uint64(c.ring.Drain())
	return &Trace{Meta: meta, Records: c.records}
}

// Records exposes the collected records so far (primarily for tests).
func (c *Collector) Records() []BatchRecord { return c.records }

func (c *Collector) add(comp, queue string, dir Dir, at simtime.Time, pkts []*packet.Packet) {
	c.ipids = c.ipids[:0]
	for _, p := range pkts {
		c.ipids = append(c.ipids, p.IPID)
	}
	rec := BatchRecord{
		Comp:  comp,
		Queue: queue,
		At:    at,
		Dir:   dir,
		IPIDs: append([]uint16(nil), c.ipids...),
	}
	if dir == DirDeliver {
		c.tuples = c.tuples[:0]
		for _, p := range pkts {
			c.tuples = append(c.tuples, p.Flow)
		}
		rec.Tuples = append([]packet.FiveTuple(nil), c.tuples...)
	}
	// Stage through the ring: encode, write, and let the dumper drain.
	n := c.ring.Put(&rec)
	c.stats.Batches++
	c.stats.PacketsSeen += uint64(len(pkts))
	c.stats.BytesEncoded += uint64(n)
	c.obsBatches.Inc()
	c.obsPackets.Add(int64(len(pkts)))
	c.obsBytes.Add(int64(n))
	c.records = append(c.records, rec)
}

// BatchRead implements nfsim.Hooks.
func (c *Collector) BatchRead(nf string, at simtime.Time, q *nfsim.Queue, pkts []*packet.Packet) {
	c.add(nf, q.Name(), DirRead, at, pkts)
}

// BatchWrite implements nfsim.Hooks.
func (c *Collector) BatchWrite(from string, at simtime.Time, q *nfsim.Queue, pkts []*packet.Packet) {
	c.add(from, q.Name(), DirWrite, at, pkts)
}

// Deliver implements nfsim.Hooks.
func (c *Collector) Deliver(nf string, at simtime.Time, pkts []*packet.Packet) {
	c.add(nf, "", DirDeliver, at, pkts)
}

// Drop implements nfsim.Hooks. The collector records nothing for drops:
// the paper's collector cannot observe a tail-drop on a downstream ring,
// and Microscope detects losses as packets whose records vanish.
func (c *Collector) Drop(string, simtime.Time, *nfsim.Queue, []*packet.Packet) {}

// MetaFor builds trace metadata from an evaluation topology. This is
// deployment knowledge (who connects to whom; offline-measured r_i), not
// runtime collection.
func MetaFor(topo *nfsim.EvalTopology) Meta {
	m := Meta{MaxBatch: nfsim.DefaultMaxBatch}
	m.Components = append(m.Components, ComponentMeta{Name: nfsim.SourceName, Kind: "source"})
	for _, name := range topo.AllNFs() {
		nf := topo.Sim.NF(name)
		m.Components = append(m.Components, ComponentMeta{
			Name:     name,
			Kind:     nf.Kind(),
			PeakRate: nf.PeakRate(),
			Egress:   topo.KindOf(name) == "vpn",
		})
	}
	for _, n := range topo.NATs {
		m.Edges = append(m.Edges, Edge{From: nfsim.SourceName, To: n})
	}
	for _, n := range topo.NATs {
		for _, f := range topo.Firewalls {
			m.Edges = append(m.Edges, Edge{From: n, To: f})
		}
	}
	for _, f := range topo.Firewalls {
		for _, mo := range topo.Monitors {
			m.Edges = append(m.Edges, Edge{From: f, To: mo})
		}
		for _, v := range topo.VPNs {
			m.Edges = append(m.Edges, Edge{From: f, To: v})
		}
	}
	for _, mo := range topo.Monitors {
		for _, v := range topo.VPNs {
			m.Edges = append(m.Edges, Edge{From: mo, To: v})
		}
	}
	return m
}

// MetaForChain builds metadata for a linear chain built with
// nfsim.BuildChain: source -> specs[0] -> ... -> specs[last] (egress).
func MetaForChain(sim *nfsim.Sim, names []string) Meta {
	m := Meta{MaxBatch: nfsim.DefaultMaxBatch}
	m.Components = append(m.Components, ComponentMeta{Name: nfsim.SourceName, Kind: "source"})
	prev := nfsim.SourceName
	for i, name := range names {
		nf := sim.NF(name)
		m.Components = append(m.Components, ComponentMeta{
			Name:     name,
			Kind:     nf.Kind(),
			PeakRate: nf.PeakRate(),
			Egress:   i == len(names)-1,
		})
		m.Edges = append(m.Edges, Edge{From: prev, To: name})
		prev = name
	}
	return m
}
