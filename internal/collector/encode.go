package collector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// The compact trace codec. The paper compresses runtime data to about two
// bytes per packet: IPIDs are two bytes each, batch metadata (component,
// direction, timestamp, size) is a handful of varint bytes amortized over up
// to 32 packets, and five-tuples appear only in egress records.
//
// Stream layout (current format, magic "MST2"), all integers varint unless
// noted:
//
//	magic "MST2"
//	repeated frames:
//	  0xA5      — frame marker (1 byte), the resync anchor
//	  plen      — payload length in bytes
//	  payload:
//	    compRef — (id<<1)|isNew; when isNew, len + bytes follow and the
//	              string joins the component table
//	    dir     — 1 byte
//	    queueRef— only for DirWrite; same flagged mechanism (queue table)
//	    at      — absolute timestamp in nanoseconds
//	    n       — batch size
//	    n × ipid  — 2 bytes each, little endian
//	    n × tuple — 13 bytes each, only for DirDeliver
//
// Framing plus absolute timestamps are what make the stream corruption-
// tolerant: a decoder that hits a bad frame skips to the next 0xA5 marker
// that parses, losing only the damaged records, and record times never
// depend on a neighbour that may have been lost. The legacy unframed,
// delta-timestamped "MST1" layout remains decodable.

var (
	magic       = [4]byte{'M', 'S', 'T', '2'}
	magicLegacy = [4]byte{'M', 'S', 'T', '1'}
)

// frameMarker anchors every record frame; resynchronization scans for it.
const frameMarker = 0xA5

// maxFrameBytes bounds a sane payload length: a full 32-packet deliver
// record with fresh table strings stays well under this.
const maxFrameBytes = 1 << 16

// DefaultReorderWindow is how many records the Encoder buffers to absorb
// out-of-order appends (late hook deliveries, cross-core timestamp races).
const DefaultReorderWindow = 32

// EncodeStats counts how the encoder coped with imperfect input.
type EncodeStats struct {
	// Reordered records arrived out of order but were sorted within the
	// reorder window.
	Reordered int
	// Late records arrived too late even for the window and were emitted
	// out of stream order (the decoder re-sorts them).
	Late int
}

// Encoder serializes BatchRecords into the compact stream. Records may
// arrive slightly out of time order: a bounded reorder buffer sorts them
// before encoding instead of panicking (production hosts deliver hook
// callbacks with small timestamp races).
type Encoder struct {
	buf    []byte
	comps  map[string]uint64
	queues map[string]uint64
	lastT  simtime.Time // last encoded timestamp
	n      int
	window int
	// pending is the reorder buffer, kept sorted by At.
	pending []BatchRecord
	stats   EncodeStats
	scratch []byte
}

// NewEncoder returns an Encoder with the magic header written and the
// default reorder window.
func NewEncoder() *Encoder {
	e := &Encoder{
		comps:  make(map[string]uint64),
		queues: make(map[string]uint64),
		window: DefaultReorderWindow,
	}
	e.buf = append(e.buf, magic[:]...)
	return e
}

// SetReorderWindow resizes the reorder buffer (0 disables buffering and
// encodes every record immediately). Call before the first Append.
func (e *Encoder) SetReorderWindow(w int) {
	if w < 0 {
		w = 0
	}
	e.window = w
}

// Stats returns encoding tolerance counters.
func (e *Encoder) Stats() EncodeStats { return e.stats }

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// putRef appends a flagged table reference: known strings encode as
// (id<<1), new strings as (id<<1)|1 followed by len + bytes.
func putRef(dst []byte, table map[string]uint64, s string) []byte {
	id, ok := table[s]
	if !ok {
		id = uint64(len(table))
		table[s] = id
		dst = putUvarint(dst, id<<1|1)
		dst = putUvarint(dst, uint64(len(s)))
		return append(dst, s...)
	}
	return putUvarint(dst, id<<1)
}

// Append stages one record, encoding the oldest buffered record once the
// reorder window is full. It returns the number of bytes written to the
// stream by this call (zero while the record is only buffered).
func (e *Encoder) Append(r *BatchRecord) int {
	e.n++
	if e.window == 0 {
		return e.encodeNow(r)
	}
	// Insert sorted by At; in-order input appends at the tail.
	i := len(e.pending)
	for i > 0 && e.pending[i-1].At > r.At {
		i--
	}
	if i != len(e.pending) {
		e.stats.Reordered++
	}
	e.pending = append(e.pending, BatchRecord{})
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = *r
	if len(e.pending) <= e.window {
		return 0
	}
	head := e.pending[0]
	copy(e.pending, e.pending[1:])
	e.pending = e.pending[:len(e.pending)-1]
	return e.encodeNow(&head)
}

// Flush encodes every buffered record, returning the bytes written.
func (e *Encoder) Flush() int {
	written := 0
	for i := range e.pending {
		written += e.encodeNow(&e.pending[i])
	}
	e.pending = e.pending[:0]
	return written
}

// encodeNow writes one frame. Records older than the last encoded
// timestamp (beyond the reorder window) are still representable — the
// format carries absolute times and the decoder re-sorts — but counted.
func (e *Encoder) encodeNow(r *BatchRecord) int {
	if r.At < e.lastT {
		e.stats.Late++
	} else {
		e.lastT = r.At
	}
	p := e.scratch[:0]
	p = putRef(p, e.comps, r.Comp)
	p = append(p, byte(r.Dir))
	if r.Dir == DirWrite {
		p = putRef(p, e.queues, r.Queue)
	}
	p = putUvarint(p, uint64(r.At))
	p = putUvarint(p, uint64(len(r.IPIDs)))
	for _, id := range r.IPIDs {
		p = append(p, byte(id), byte(id>>8))
	}
	if r.Dir == DirDeliver {
		for _, t := range r.Tuples {
			p = append(p,
				byte(t.SrcIP), byte(t.SrcIP>>8), byte(t.SrcIP>>16), byte(t.SrcIP>>24),
				byte(t.DstIP), byte(t.DstIP>>8), byte(t.DstIP>>16), byte(t.DstIP>>24),
				byte(t.SrcPort), byte(t.SrcPort>>8),
				byte(t.DstPort), byte(t.DstPort>>8),
				t.Proto)
		}
	}
	e.scratch = p
	start := len(e.buf)
	e.buf = append(e.buf, frameMarker)
	e.buf = putUvarint(e.buf, uint64(len(p)))
	e.buf = append(e.buf, p...)
	return len(e.buf) - start
}

// Bytes flushes the reorder buffer and returns the encoded stream so far.
func (e *Encoder) Bytes() []byte {
	e.Flush()
	return e.buf
}

// size reports staged stream bytes without flushing the reorder buffer.
func (e *Encoder) size() int { return len(e.buf) }

// Len returns the number of records appended.
func (e *Encoder) Len() int { return e.n }

// DecodeStats reports how decoding went on a possibly damaged stream.
type DecodeStats struct {
	// Records successfully decoded.
	Records int
	// Skipped frames/records lost to corruption or truncation.
	Skipped int
	// Resyncs counts scans for the next frame marker after a bad frame.
	Resyncs int
	// Resorted counts records that arrived out of stream order and were
	// stably re-sorted by timestamp.
	Resorted int
	// BytesSkipped is how much of the stream was discarded.
	BytesSkipped int
}

// Damaged reports whether the stream lost anything in decoding.
func (s DecodeStats) Damaged() bool { return s.Skipped > 0 }

// Decode parses a stream produced by Encoder back into records, strictly:
// any corruption is returned as an error. Use DecodeStream to salvage the
// intact records of a damaged stream instead.
func Decode(data []byte) ([]BatchRecord, error) {
	recs, st, err := DecodeStream(data)
	if err != nil {
		return nil, err
	}
	if st.Damaged() {
		return nil, fmt.Errorf("collector: stream damaged: %d records skipped (%d resyncs, %d bytes lost)",
			st.Skipped, st.Resyncs, st.BytesSkipped)
	}
	return recs, nil
}

// DecodeStream parses a stream tolerantly: corrupt frames are skipped, the
// decoder resynchronizes on the next frame boundary, and every intact
// record is returned together with accounting of what was lost. The error
// is non-nil only when the stream has no usable header at all.
func DecodeStream(data []byte) ([]BatchRecord, DecodeStats, error) {
	var st DecodeStats
	if len(data) < 4 {
		return nil, st, errors.New("collector: short stream")
	}
	var legacy bool
	switch {
	case data[0] == magic[0] && data[1] == magic[1] && data[2] == magic[2] && data[3] == magic[3]:
	case data[0] == magicLegacy[0] && data[1] == magicLegacy[1] && data[2] == magicLegacy[2] && data[3] == magicLegacy[3]:
		legacy = true
	default:
		return nil, st, errors.New("collector: bad magic")
	}
	if legacy {
		recs := decodeLegacy(data[4:], &st)
		return recs, st, nil
	}

	d := &frameDecoder{}
	var out []BatchRecord
	pos := 4
	for pos < len(data) {
		if data[pos] != frameMarker {
			// Lost framing: scan for the next marker that parses.
			next := d.resync(data, pos)
			st.Resyncs++
			st.Skipped++
			st.BytesSkipped += next - pos
			pos = next
			continue
		}
		rec, end, ok := d.frame(data, pos)
		if !ok {
			next := d.resync(data, pos+1)
			st.Resyncs++
			st.Skipped++
			st.BytesSkipped += next - pos
			pos = next
			continue
		}
		out = append(out, rec)
		pos = end
	}
	st.Records = len(out)
	st.Resorted = resort(out)
	return out, st, nil
}

// frameDecoder carries the string tables across frames.
type frameDecoder struct {
	comps  []string
	queues []string
}

// frame parses one frame starting at the marker byte. It returns the
// decoded record, the position after the frame, and whether the payload
// parsed exactly.
func (d *frameDecoder) frame(data []byte, pos int) (BatchRecord, int, bool) {
	var rec BatchRecord
	p := pos + 1 // skip marker
	plen, n := binary.Uvarint(data[p:])
	if n <= 0 || plen > maxFrameBytes {
		return rec, 0, false
	}
	p += n
	end := p + int(plen)
	if end > len(data) {
		return rec, 0, false
	}
	// Table mutations must not survive a failed parse: stage and commit.
	compsLen, queuesLen := len(d.comps), len(d.queues)
	r, ok := d.payload(data[p:end])
	if !ok {
		d.comps = d.comps[:compsLen]
		d.queues = d.queues[:queuesLen]
		return rec, 0, false
	}
	return r, end, true
}

// payload parses one record body; it must consume the slice exactly.
func (d *frameDecoder) payload(b []byte) (BatchRecord, bool) {
	var rec BatchRecord
	pos := 0
	getUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	getRef := func(table *[]string) (string, bool) {
		v, ok := getUvarint()
		if !ok {
			return "", false
		}
		id := v >> 1
		if v&1 == 0 {
			if id >= uint64(len(*table)) {
				return "", false
			}
			return (*table)[id], true
		}
		if id != uint64(len(*table)) {
			return "", false
		}
		l, ok := getUvarint()
		if !ok || l > uint64(len(b)) || pos+int(l) > len(b) {
			return "", false
		}
		s := string(b[pos : pos+int(l)])
		pos += int(l)
		*table = append(*table, s)
		return s, true
	}

	var ok bool
	if rec.Comp, ok = getRef(&d.comps); !ok {
		return rec, false
	}
	if pos >= len(b) {
		return rec, false
	}
	rec.Dir = Dir(b[pos])
	pos++
	if rec.Dir > DirDeliver {
		return rec, false
	}
	switch rec.Dir {
	case DirWrite:
		if rec.Queue, ok = getRef(&d.queues); !ok {
			return rec, false
		}
	case DirRead:
		rec.Queue = rec.Comp + ".in"
	}
	at, ok := getUvarint()
	if !ok {
		return rec, false
	}
	rec.At = simtime.Time(at)
	n, ok := getUvarint()
	if !ok {
		return rec, false
	}
	need := int(n) * 2
	if rec.Dir == DirDeliver {
		need = int(n) * 15
	}
	if n > maxFrameBytes || pos+need > len(b) {
		return rec, false
	}
	rec.IPIDs = make([]uint16, n)
	for i := range rec.IPIDs {
		rec.IPIDs[i] = uint16(b[pos]) | uint16(b[pos+1])<<8
		pos += 2
	}
	if rec.Dir == DirDeliver {
		if pos+int(n)*13 > len(b) {
			return rec, false
		}
		rec.Tuples = make([]packet.FiveTuple, n)
		for i := range rec.Tuples {
			t := b[pos : pos+13]
			rec.Tuples[i] = packet.FiveTuple{
				SrcIP:   uint32(t[0]) | uint32(t[1])<<8 | uint32(t[2])<<16 | uint32(t[3])<<24,
				DstIP:   uint32(t[4]) | uint32(t[5])<<8 | uint32(t[6])<<16 | uint32(t[7])<<24,
				SrcPort: uint16(t[8]) | uint16(t[9])<<8,
				DstPort: uint16(t[10]) | uint16(t[11])<<8,
				Proto:   t[12],
			}
			pos += 13
		}
	}
	return rec, pos == len(b)
}

// resync finds the next frame marker at or after pos whose frame parses
// against a throwaway copy of the decoder state, or len(data).
func (d *frameDecoder) resync(data []byte, pos int) int {
	for ; pos < len(data); pos++ {
		if data[pos] != frameMarker {
			continue
		}
		trial := frameDecoder{
			comps:  append([]string(nil), d.comps...),
			queues: append([]string(nil), d.queues...),
		}
		if _, _, ok := trial.frame(data, pos); ok {
			return pos
		}
	}
	return len(data)
}

// resort restores time order after late-arrival frames, returning how many
// records were out of order.
func resort(recs []BatchRecord) int {
	out := 0
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			out++
		}
	}
	if out > 0 {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	}
	return out
}

// decodeLegacy parses the unframed MST1 layout (delta timestamps, unflagged
// table refs). Without frame boundaries a parse error is unrecoverable, so
// decoding stops at the first corruption and reports one skip.
func decodeLegacy(data []byte, st *DecodeStats) []BatchRecord {
	pos := 0
	var comps, queues []string
	var lastT simtime.Time
	var out []BatchRecord

	fail := func() []BatchRecord {
		st.Skipped++
		st.BytesSkipped += len(data) - pos
		st.Records = len(out)
		return out
	}
	getUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	getRef := func(table *[]string) (string, bool) {
		id, ok := getUvarint()
		if !ok {
			return "", false
		}
		if id < uint64(len(*table)) {
			return (*table)[id], true
		}
		if id != uint64(len(*table)) {
			return "", false
		}
		l, ok := getUvarint()
		if !ok || l > uint64(len(data)) || pos+int(l) > len(data) {
			return "", false
		}
		s := string(data[pos : pos+int(l)])
		pos += int(l)
		*table = append(*table, s)
		return s, true
	}

	for pos < len(data) {
		var r BatchRecord
		var ok bool
		if r.Comp, ok = getRef(&comps); !ok {
			return fail()
		}
		if pos >= len(data) {
			return fail()
		}
		r.Dir = Dir(data[pos])
		pos++
		if r.Dir > DirDeliver {
			return fail()
		}
		switch r.Dir {
		case DirWrite:
			if r.Queue, ok = getRef(&queues); !ok {
				return fail()
			}
		case DirRead:
			r.Queue = r.Comp + ".in"
		}
		dt, ok := getUvarint()
		if !ok {
			return fail()
		}
		lastT = lastT.Add(simtime.Duration(dt))
		r.At = lastT
		n, ok := getUvarint()
		if !ok {
			return fail()
		}
		if n > uint64(len(data)) || pos+int(n)*2 > len(data) {
			return fail()
		}
		r.IPIDs = make([]uint16, n)
		for i := range r.IPIDs {
			r.IPIDs[i] = uint16(data[pos]) | uint16(data[pos+1])<<8
			pos += 2
		}
		if r.Dir == DirDeliver {
			if pos+int(n)*13 > len(data) {
				return fail()
			}
			r.Tuples = make([]packet.FiveTuple, n)
			for i := range r.Tuples {
				b := data[pos : pos+13]
				r.Tuples[i] = packet.FiveTuple{
					SrcIP:   uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24,
					DstIP:   uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
					SrcPort: uint16(b[8]) | uint16(b[9])<<8,
					DstPort: uint16(b[10]) | uint16(b[11])<<8,
					Proto:   b[12],
				}
				pos += 13
			}
		}
		out = append(out, r)
	}
	st.Records = len(out)
	return out
}

// Ring emulates the shared-memory staging buffer between the collector's
// critical path and the standalone dumper (§5). Put encodes a record into
// the ring; when the ring cannot hold the next record the dumper drains it
// (synchronously here — the simulator is single-threaded by design).
type Ring struct {
	enc       *Encoder
	capBytes  int
	drainMark int
	// Dumped accumulates the flushed stream, i.e. the "on disk" bytes.
	dumped []byte
	drains int
}

// NewRing creates a ring of the given byte capacity.
func NewRing(capBytes int) *Ring {
	if capBytes <= 0 {
		capBytes = 1 << 20
	}
	return &Ring{enc: NewEncoder(), capBytes: capBytes}
}

// Put stages one record, draining first if the ring is near capacity.
// It returns the bytes written to the staging stream by this call (zero
// while the record sits in the encoder's reorder buffer).
func (r *Ring) Put(rec *BatchRecord) int {
	if r.enc.size()-r.drainMark >= r.capBytes {
		r.Drain()
	}
	return r.enc.Append(rec)
}

// Drain flushes the encoder's reorder buffer and the staged bytes to the
// dumped stream, returning how many new bytes the flush encoded.
func (r *Ring) Drain() int {
	flushed := r.enc.Flush()
	b := r.enc.buf
	if len(b) > r.drainMark {
		r.dumped = append(r.dumped, b[r.drainMark:]...)
		r.drainMark = len(b)
		r.drains++
	}
	return flushed
}

// Encoder exposes the ring's encoder (for tolerance counters).
func (r *Ring) Encoder() *Encoder { return r.enc }

// Dumped returns the flushed byte stream. Note the encoder writes one
// contiguous stream; Dumped is its prefix up to the last drain.
func (r *Ring) Dumped() []byte { return r.dumped }

// Drains returns how many dumper flushes occurred.
func (r *Ring) Drains() int { return r.drains }
