package collector

import (
	"encoding/binary"
	"errors"
	"fmt"

	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// The compact trace codec. The paper compresses runtime data to about two
// bytes per packet: IPIDs are two bytes each, batch metadata (component,
// direction, timestamp delta, size) is a handful of varint bytes amortized
// over up to 32 packets, and five-tuples appear only in egress records.
//
// Stream layout, all integers varint unless noted:
//
//	magic "MST1"
//	repeated records:
//	  compRef   — index into the component string table; equal to the
//	              table length it defines a new entry: len + bytes follow
//	  dir       — 1 byte
//	  queueRef  — only for DirWrite; same table mechanism (queue table)
//	  deltaT    — nanoseconds since the previous record (records are
//	              appended in time order, so deltas are non-negative)
//	  n         — batch size
//	  n × ipid  — 2 bytes each, little endian
//	  n × tuple — 13 bytes each, only for DirDeliver

var magic = [4]byte{'M', 'S', 'T', '1'}

// Encoder serializes BatchRecords into the compact stream.
type Encoder struct {
	buf    []byte
	comps  map[string]uint64
	queues map[string]uint64
	lastT  simtime.Time
	n      int
}

// NewEncoder returns an Encoder with the magic header written.
func NewEncoder() *Encoder {
	e := &Encoder{
		comps:  make(map[string]uint64),
		queues: make(map[string]uint64),
	}
	e.buf = append(e.buf, magic[:]...)
	return e
}

func (e *Encoder) putUvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
}

func (e *Encoder) putRef(table map[string]uint64, s string) {
	id, ok := table[s]
	if !ok {
		id = uint64(len(table))
		table[s] = id
		e.putUvarint(id)
		e.putUvarint(uint64(len(s)))
		e.buf = append(e.buf, s...)
		return
	}
	e.putUvarint(id)
}

// Append encodes one record. Records must be appended in non-decreasing
// time order; Append returns the number of bytes the record consumed.
func (e *Encoder) Append(r *BatchRecord) int {
	if r.At < e.lastT {
		panic(fmt.Sprintf("collector: record at %v before previous %v", r.At, e.lastT))
	}
	start := len(e.buf)
	e.putRef(e.comps, r.Comp)
	e.buf = append(e.buf, byte(r.Dir))
	if r.Dir == DirWrite {
		e.putRef(e.queues, r.Queue)
	}
	e.putUvarint(uint64(r.At - e.lastT))
	e.lastT = r.At
	e.putUvarint(uint64(len(r.IPIDs)))
	for _, id := range r.IPIDs {
		e.buf = append(e.buf, byte(id), byte(id>>8))
	}
	if r.Dir == DirDeliver {
		for _, t := range r.Tuples {
			e.buf = append(e.buf,
				byte(t.SrcIP), byte(t.SrcIP>>8), byte(t.SrcIP>>16), byte(t.SrcIP>>24),
				byte(t.DstIP), byte(t.DstIP>>8), byte(t.DstIP>>16), byte(t.DstIP>>24),
				byte(t.SrcPort), byte(t.SrcPort>>8),
				byte(t.DstPort), byte(t.DstPort>>8),
				t.Proto)
		}
	}
	e.n++
	return len(e.buf) - start
}

// Bytes returns the encoded stream so far.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of records encoded.
func (e *Encoder) Len() int { return e.n }

// Decode parses a stream produced by Encoder back into records.
func Decode(data []byte) ([]BatchRecord, error) {
	if len(data) < 4 || data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return nil, errors.New("collector: bad magic")
	}
	pos := 4
	var comps, queues []string
	var lastT simtime.Time
	var out []BatchRecord

	getUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, errors.New("collector: truncated varint")
		}
		pos += n
		return v, nil
	}
	getRef := func(table *[]string) (string, error) {
		id, err := getUvarint()
		if err != nil {
			return "", err
		}
		if id < uint64(len(*table)) {
			return (*table)[id], nil
		}
		if id != uint64(len(*table)) {
			return "", fmt.Errorf("collector: ref %d skips table of %d", id, len(*table))
		}
		l, err := getUvarint()
		if err != nil {
			return "", err
		}
		if pos+int(l) > len(data) {
			return "", errors.New("collector: truncated string")
		}
		s := string(data[pos : pos+int(l)])
		pos += int(l)
		*table = append(*table, s)
		return s, nil
	}

	for pos < len(data) {
		var r BatchRecord
		var err error
		if r.Comp, err = getRef(&comps); err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, errors.New("collector: truncated record")
		}
		r.Dir = Dir(data[pos])
		pos++
		if r.Dir > DirDeliver {
			return nil, fmt.Errorf("collector: bad direction %d", r.Dir)
		}
		switch r.Dir {
		case DirWrite:
			if r.Queue, err = getRef(&queues); err != nil {
				return nil, err
			}
		case DirRead:
			r.Queue = r.Comp + ".in"
		}
		dt, err := getUvarint()
		if err != nil {
			return nil, err
		}
		lastT = lastT.Add(simtime.Duration(dt))
		r.At = lastT
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if pos+int(n)*2 > len(data) {
			return nil, errors.New("collector: truncated ipids")
		}
		r.IPIDs = make([]uint16, n)
		for i := range r.IPIDs {
			r.IPIDs[i] = uint16(data[pos]) | uint16(data[pos+1])<<8
			pos += 2
		}
		if r.Dir == DirDeliver {
			if pos+int(n)*13 > len(data) {
				return nil, errors.New("collector: truncated tuples")
			}
			r.Tuples = make([]packet.FiveTuple, n)
			for i := range r.Tuples {
				b := data[pos : pos+13]
				r.Tuples[i] = packet.FiveTuple{
					SrcIP:   uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24,
					DstIP:   uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
					SrcPort: uint16(b[8]) | uint16(b[9])<<8,
					DstPort: uint16(b[10]) | uint16(b[11])<<8,
					Proto:   b[12],
				}
				pos += 13
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Ring emulates the shared-memory staging buffer between the collector's
// critical path and the standalone dumper (§5). Put encodes a record into
// the ring; when the ring cannot hold the next record the dumper drains it
// (synchronously here — the simulator is single-threaded by design).
type Ring struct {
	enc       *Encoder
	capBytes  int
	drainMark int
	// Dumped accumulates the flushed stream, i.e. the "on disk" bytes.
	dumped []byte
	drains int
}

// NewRing creates a ring of the given byte capacity.
func NewRing(capBytes int) *Ring {
	if capBytes <= 0 {
		capBytes = 1 << 20
	}
	return &Ring{enc: NewEncoder(), capBytes: capBytes}
}

// Put stages one record, draining first if the ring is near capacity.
// It returns the encoded size of the record.
func (r *Ring) Put(rec *BatchRecord) int {
	if len(r.enc.Bytes())-r.drainMark >= r.capBytes {
		r.Drain()
	}
	return r.enc.Append(rec)
}

// Drain flushes staged bytes to the dumped stream.
func (r *Ring) Drain() {
	b := r.enc.Bytes()
	if len(b) > r.drainMark {
		r.dumped = append(r.dumped, b[r.drainMark:]...)
		r.drainMark = len(b)
		r.drains++
	}
}

// Dumped returns the flushed byte stream. Note the encoder writes one
// contiguous stream; Dumped is its prefix up to the last drain.
func (r *Ring) Dumped() []byte { return r.dumped }

// Drains returns how many dumper flushes occurred.
func (r *Ring) Drains() int { return r.drains }
