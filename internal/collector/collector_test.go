package collector

import (
	"math/rand"
	"testing"
	"testing/quick"

	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

func tuple(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(10, 0, byte(i>>8), byte(i)),
		DstIP:   packet.IPFromOctets(23, 1, 2, 3),
		SrcPort: uint16(2000 + i),
		DstPort: 80,
		Proto:   packet.ProtoTCP,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []BatchRecord{
		{Comp: "source", Queue: "nat1.in", At: 100, Dir: DirWrite, IPIDs: []uint16{1, 2, 3}},
		{Comp: "nat1", Queue: "nat1.in", At: 150, Dir: DirRead, IPIDs: []uint16{1, 2, 3}},
		{Comp: "nat1", Queue: "fw1.in", At: 200, Dir: DirWrite, IPIDs: []uint16{1, 2, 3}},
		{Comp: "fw1", Queue: "fw1.in", At: 220, Dir: DirRead, IPIDs: []uint16{1, 2}},
		{Comp: "fw1", At: 300, Dir: DirDeliver, IPIDs: []uint16{1, 2},
			Tuples: []packet.FiveTuple{tuple(1), tuple(2)}},
	}
	enc := NewEncoder()
	for i := range recs {
		enc.Append(&recs[i])
	}
	got, err := Decode(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("record count: got %d", len(got))
	}
	for i := range recs {
		a, b := recs[i], got[i]
		if a.Comp != b.Comp || a.Dir != b.Dir || a.At != b.At {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, a, b)
		}
		if a.Dir != DirDeliver && a.Queue != b.Queue {
			t.Fatalf("record %d queue: %q vs %q", i, a.Queue, b.Queue)
		}
		if len(a.IPIDs) != len(b.IPIDs) {
			t.Fatalf("record %d size", i)
		}
		for j := range a.IPIDs {
			if a.IPIDs[j] != b.IPIDs[j] {
				t.Fatalf("record %d ipid %d", i, j)
			}
		}
		for j := range a.Tuples {
			if a.Tuples[j] != b.Tuples[j] {
				t.Fatalf("record %d tuple %d", i, j)
			}
		}
	}
}

// TestEncodeToleratesTimeRegression is the regression test for the old
// out-of-order panic: Append used to panic on a timestamp earlier than its
// predecessor; the bounded reorder buffer must absorb it and the decoded
// stream must come back in time order.
func TestEncodeToleratesTimeRegression(t *testing.T) {
	enc := NewEncoder()
	enc.Append(&BatchRecord{Comp: "a", At: 100, Dir: DirRead, IPIDs: []uint16{1}})
	enc.Append(&BatchRecord{Comp: "a", At: 50, Dir: DirRead, IPIDs: []uint16{2}}) // panicked before
	enc.Append(&BatchRecord{Comp: "a", At: 150, Dir: DirRead, IPIDs: []uint16{3}})
	got, err := Decode(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("record count: got %d", len(got))
	}
	for i, want := range []simtime.Time{50, 100, 150} {
		if got[i].At != want {
			t.Errorf("record %d at %v, want %v", i, got[i].At, want)
		}
	}
	if enc.Stats().Reordered != 1 {
		t.Errorf("reordered counter: %+v", enc.Stats())
	}
}

// TestEncodeBeyondReorderWindow: a record later than the window can absorb
// is emitted out of stream order, counted as late, and still decodes into a
// time-sorted stream.
func TestEncodeBeyondReorderWindow(t *testing.T) {
	enc := NewEncoder()
	enc.SetReorderWindow(2)
	for _, at := range []simtime.Time{100, 200, 300, 400} {
		enc.Append(&BatchRecord{Comp: "a", At: at, Dir: DirRead, IPIDs: []uint16{1}})
	}
	// 100 and 200 are already encoded; 10 is far too late.
	enc.Append(&BatchRecord{Comp: "a", At: 10, Dir: DirRead, IPIDs: []uint16{9}})
	got, st, err := DecodeStream(enc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("record count: got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("decoded stream out of order at %d", i)
		}
	}
	if got[0].At != 10 || got[0].IPIDs[0] != 9 {
		t.Errorf("late record not resorted to front: %+v", got[0])
	}
	if enc.Stats().Late == 0 {
		t.Errorf("late counter not bumped: %+v", enc.Stats())
	}
	if st.Resorted == 0 {
		t.Errorf("decoder resort not counted: %+v", st)
	}
}

// TestDecodeStreamResyncs: corrupting bytes mid-stream must cost only the
// damaged records; everything before and after decodes, with accurate
// accounting.
func TestDecodeStreamResyncs(t *testing.T) {
	enc := NewEncoder()
	ts := simtime.Time(0)
	const total = 40
	for i := 0; i < total; i++ {
		ts = ts.Add(100)
		enc.Append(&BatchRecord{Comp: "fw1", Queue: "fw1.in", At: ts, Dir: DirRead,
			IPIDs: []uint16{uint16(i), uint16(i + 1), uint16(i + 2)}})
	}
	valid := enc.Bytes()
	// Stomp a byte range in the middle of the stream.
	mutated := append([]byte(nil), valid...)
	mid := len(mutated) / 2
	for i := mid; i < mid+10 && i < len(mutated); i++ {
		mutated[i] = 0xFF
	}
	got, st, err := DecodeStream(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped == 0 || st.Resyncs == 0 {
		t.Fatalf("no damage recorded: %+v", st)
	}
	if len(got) < total-6 {
		t.Fatalf("lost too much: %d of %d records (%+v)", len(got), total, st)
	}
	if len(got)+st.Skipped < total-2 {
		t.Errorf("accounting inconsistent: %d decoded + %d skipped (%+v)", len(got), st.Skipped, st)
	}
	// Strict Decode must refuse the damaged stream.
	if _, err := Decode(mutated); err == nil {
		t.Error("strict Decode accepted damaged stream")
	}
}

// TestDecodeStreamTruncated: a stream cut mid-record returns every record
// before the cut.
func TestDecodeStreamTruncated(t *testing.T) {
	enc := NewEncoder()
	ts := simtime.Time(0)
	for i := 0; i < 10; i++ {
		ts = ts.Add(100)
		enc.Append(&BatchRecord{Comp: "a", At: ts, Dir: DirRead, IPIDs: []uint16{uint16(i)}})
	}
	valid := enc.Bytes()
	got, st, err := DecodeStream(valid[:len(valid)-3])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 || st.Skipped != 1 {
		t.Fatalf("truncated decode: %d records, %+v", len(got), st)
	}
}

// TestDecodeLegacyMST1: traces written by the old unframed encoder remain
// readable.
func TestDecodeLegacyMST1(t *testing.T) {
	// Hand-assemble an MST1 stream: two read records for component "a".
	b := []byte("MST1")
	put := func(v uint64) {
		var tmp [10]byte
		n := 0
		for {
			c := byte(v & 0x7f)
			v >>= 7
			if v != 0 {
				c |= 0x80
			}
			tmp[n] = c
			n++
			if v == 0 {
				break
			}
		}
		b = append(b, tmp[:n]...)
	}
	put(0) // comp ref: new entry 0
	put(1) // len "a"
	b = append(b, 'a')
	b = append(b, byte(DirRead))
	put(100) // deltaT
	put(1)   // n
	b = append(b, 7, 0)
	put(0) // comp ref: existing
	b = append(b, byte(DirRead))
	put(50) // deltaT
	put(1)
	b = append(b, 8, 0)

	got, st, err := DecodeStream(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || st.Skipped != 0 {
		t.Fatalf("legacy decode: %d records, %+v", len(got), st)
	}
	if got[0].Comp != "a" || got[0].At != 100 || got[1].At != 150 {
		t.Errorf("legacy records wrong: %+v", got)
	}
	// Legacy truncation: stop at the damage, keep the prefix.
	got, st, err = DecodeStream(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || st.Skipped != 1 {
		t.Errorf("legacy truncated decode: %d records, %+v", len(got), st)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	enc := NewEncoder()
	enc.Append(&BatchRecord{Comp: "a", At: 1, Dir: DirRead, IPIDs: []uint16{1, 2}})
	b := enc.Bytes()
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(batches []uint8) bool {
		enc := NewEncoder()
		var want []BatchRecord
		ts := simtime.Time(0)
		for i, bn := range batches {
			n := int(bn%32) + 1
			ipids := make([]uint16, n)
			for j := range ipids {
				ipids[j] = uint16(i*37 + j)
			}
			ts = ts.Add(simtime.Duration(bn) + 1)
			r := BatchRecord{
				Comp:  []string{"nat1", "fw1", "source"}[i%3],
				Queue: []string{"x.in", "y.in"}[i%2],
				At:    ts,
				Dir:   Dir(i % 2), // read / write
				IPIDs: ipids,
			}
			enc.Append(&r)
			want = append(want, r)
		}
		got, err := Decode(enc.Bytes())
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Comp != want[i].Comp || got[i].At != want[i].At || got[i].Dir != want[i].Dir {
				return false
			}
			for j := range want[i].IPIDs {
				if got[i].IPIDs[j] != want[i].IPIDs[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBytesPerPacketNearTwo(t *testing.T) {
	// Full batches of 32 should amortize metadata to ~2.2 B/packet.
	enc := NewEncoder()
	rng := rand.New(rand.NewSource(1))
	var pkts int
	ts := simtime.Time(0)
	for i := 0; i < 1000; i++ {
		ipids := make([]uint16, 32)
		for j := range ipids {
			ipids[j] = uint16(rng.Intn(65536))
		}
		ts = ts.Add(simtime.Duration(20 * simtime.Microsecond))
		enc.Append(&BatchRecord{Comp: "fw1", Queue: "fw1.in", At: ts, Dir: DirRead, IPIDs: ipids})
		pkts += 32
	}
	perPacket := float64(len(enc.Bytes())) / float64(pkts)
	if perPacket > 2.5 {
		t.Errorf("bytes/packet: got %.2f, want <= 2.5", perPacket)
	}
}

func TestRingDrains(t *testing.T) {
	r := NewRing(256)
	ts := simtime.Time(0)
	for i := 0; i < 100; i++ {
		ts = ts.Add(10)
		r.Put(&BatchRecord{Comp: "fw1", Queue: "fw1.in", At: ts, Dir: DirRead, IPIDs: []uint16{1, 2, 3, 4}})
	}
	if r.Drains() == 0 {
		t.Error("small ring should have drained")
	}
	r.Drain()
	recs, err := Decode(r.Dumped())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Errorf("dumped records: got %d", len(recs))
	}
}

func TestCollectorOnChain(t *testing.T) {
	col := New(Config{})
	sim := nfsim.BuildChain(col, 11,
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.9)},
	)
	iv := simtime.MPPS(0.4).Interval()
	var ems []traffic.Emission
	for i := 0; i < 400; i++ {
		ems = append(ems, traffic.Emission{
			At: simtime.Time(simtime.Duration(i) * iv), Flow: tuple(i % 7), Size: 64, Burst: -1,
		})
	}
	sim.LoadSchedule(&traffic.Schedule{Emissions: ems})
	sim.Run(simtime.Time(20 * simtime.Millisecond))

	tr := col.Trace(MetaForChain(sim, []string{"fw1", "vpn1"}))

	// Each packet should appear once in: source write, fw1 read, fw1
	// write, vpn1 read, vpn1 deliver.
	if got := tr.Packets(DirDeliver); got != 400 {
		t.Errorf("delivered entries: got %d", got)
	}
	if got := tr.Packets(DirRead); got != 800 { // fw1 + vpn1
		t.Errorf("read entries: got %d", got)
	}
	if got := tr.Packets(DirWrite); got != 800 { // source + fw1
		t.Errorf("write entries: got %d", got)
	}
	// Deliver records carry tuples; others don't.
	for _, r := range tr.Records {
		if r.Dir == DirDeliver && len(r.Tuples) != len(r.IPIDs) {
			t.Fatal("deliver without tuples")
		}
		if r.Dir != DirDeliver && r.Tuples != nil {
			t.Fatal("non-deliver with tuples")
		}
	}
	// Stats should match.
	st := col.Stats()
	if st.PacketsSeen != 400*5 {
		t.Errorf("packets seen: got %d", st.PacketsSeen)
	}
	if st.BytesPerPacket() <= 0 || st.BytesPerPacket() > 20 {
		t.Errorf("bytes/packet out of range: %v", st.BytesPerPacket())
	}
	// Meta sanity.
	if tr.Meta.Component("fw1") == nil || !tr.Meta.Component("vpn1").Egress {
		t.Error("meta wrong")
	}
	if ups := tr.Meta.Upstreams("vpn1"); len(ups) != 1 || ups[0] != "fw1" {
		t.Errorf("upstreams: %v", ups)
	}
	if downs := tr.Meta.Downstreams("source"); len(downs) != 1 || downs[0] != "fw1" {
		t.Errorf("downstreams: %v", downs)
	}
}

func TestRecordsOf(t *testing.T) {
	tr := &Trace{Records: []BatchRecord{
		{Comp: "a", At: 1}, {Comp: "b", At: 2}, {Comp: "a", At: 3},
	}}
	recs := tr.RecordsOf("a")
	if len(recs) != 2 || recs[0].At != 1 || recs[1].At != 3 {
		t.Errorf("RecordsOf: %+v", recs)
	}
}

func TestDirString(t *testing.T) {
	if DirRead.String() != "read" || DirWrite.String() != "write" || DirDeliver.String() != "deliver" {
		t.Error("Dir.String wrong")
	}
	if Dir(9).String() != "dir(9)" {
		t.Error("unknown dir string wrong")
	}
}

// TestDecodeNeverPanics fuzzes the decoder with mutated valid streams: any
// byte corruption must produce an error or a short result, never a panic.
func TestDecodeNeverPanics(t *testing.T) {
	enc := NewEncoder()
	ts := simtime.Time(0)
	for i := 0; i < 50; i++ {
		ts = ts.Add(100)
		ipids := []uint16{uint16(i), uint16(i * 3)}
		rec := BatchRecord{Comp: "fw1", Queue: "fw1.in", At: ts, Dir: Dir(i % 3), IPIDs: ipids}
		if rec.Dir == DirDeliver {
			rec.Tuples = []packet.FiveTuple{tuple(i), tuple(i + 1)}
		}
		enc.Append(&rec)
	}
	valid := enc.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), valid...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(3) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked on mutation: %v", r)
				}
			}()
			_, _ = Decode(mutated)
		}()
	}
}
