package collector

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"microscope/internal/simtime"
)

// Trace directory layout: deployment metadata as JSON next to the compact
// binary record stream, so a trace is portable between the collection host
// and wherever diagnosis runs.
const (
	metaFile    = "meta.json"
	recordsFile = "records.mst"
)

// metaJSON is the serialized form of Meta (rates in pps for readability).
type metaJSON struct {
	MaxBatch   int             `json:"max_batch"`
	Components []componentJSON `json:"components"`
	Edges      []Edge          `json:"edges"`
}

type componentJSON struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	PeakPPS float64 `json:"peak_pps"`
	Egress  bool    `json:"egress,omitempty"`
}

// WriteTrace persists a trace to a directory (created if missing).
func WriteTrace(dir string, tr *Trace) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("collector: create trace dir: %w", err)
	}
	mj := metaJSON{MaxBatch: tr.Meta.MaxBatch, Edges: tr.Meta.Edges}
	for _, c := range tr.Meta.Components {
		mj.Components = append(mj.Components, componentJSON{
			Name: c.Name, Kind: c.Kind, PeakPPS: c.PeakRate.PPS(), Egress: c.Egress,
		})
	}
	mb, err := json.MarshalIndent(&mj, "", "  ")
	if err != nil {
		return fmt.Errorf("collector: marshal meta: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), mb, 0o644); err != nil {
		return fmt.Errorf("collector: write meta: %w", err)
	}
	enc := NewEncoder()
	for i := range tr.Records {
		enc.Append(&tr.Records[i])
	}
	if err := os.WriteFile(filepath.Join(dir, recordsFile), enc.Bytes(), 0o644); err != nil {
		return fmt.Errorf("collector: write records: %w", err)
	}
	return nil
}

// ReadTrace loads a trace directory written by WriteTrace.
func ReadTrace(dir string) (*Trace, error) {
	mb, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("collector: read meta: %w", err)
	}
	var mj metaJSON
	if err := json.Unmarshal(mb, &mj); err != nil {
		return nil, fmt.Errorf("collector: parse meta: %w", err)
	}
	tr := &Trace{Meta: Meta{MaxBatch: mj.MaxBatch, Edges: mj.Edges}}
	for _, c := range mj.Components {
		tr.Meta.Components = append(tr.Meta.Components, ComponentMeta{
			Name: c.Name, Kind: c.Kind, PeakRate: simtime.PPS(c.PeakPPS), Egress: c.Egress,
		})
	}
	rb, err := os.ReadFile(filepath.Join(dir, recordsFile))
	if err != nil {
		return nil, fmt.Errorf("collector: read records: %w", err)
	}
	// Tolerant decode: a damaged record stream still yields every intact
	// record, with the loss accounted in the trace's Integrity so the
	// diagnosis can qualify its confidence.
	recs, st, err := DecodeStream(rb)
	if err != nil {
		return nil, fmt.Errorf("collector: decode records: %w", err)
	}
	tr.Records = recs
	tr.Integrity.DecodeSkipped = st.Skipped
	tr.Integrity.DecodeResyncs = st.Resyncs
	tr.Integrity.Resorted = st.Resorted
	return tr, nil
}
