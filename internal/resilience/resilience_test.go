package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"microscope/internal/leakcheck"
)

func TestLevelString(t *testing.T) {
	want := map[Level]string{
		Full: "full", NoPatterns: "no-patterns", VictimsOnly: "victims-only", Skipped: "skipped",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), s)
		}
	}
	if got := Level(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown level renders %q", got)
	}
}

func TestLadderDecide(t *testing.T) {
	lc := LadderConfig{
		SoftRecords: 100, HardRecords: 200, MaxRecords: 400,
		SoftBacklog: 2, HardBacklog: 4,
	}
	cases := []struct {
		records, backlog, mem int
		want                  Level
	}{
		{50, 0, 0, Full},
		{150, 0, 0, NoPatterns},
		{250, 0, 0, VictimsOnly},
		{500, 0, 0, Skipped},
		{50, 2, 0, NoPatterns},   // backlog escalates one step
		{50, 4, 0, VictimsOnly},  // two steps
		{150, 4, 0, Skipped},     // clamped at the top rung
		{50, 0, 1, NoPatterns},   // memory soft watermark
		{150, 2, 1, Skipped},     // combined pressure clamps
		{1 << 20, 0, 0, Skipped}, // absurd window always sheds
	}
	for _, c := range cases {
		if got := lc.Decide(c.records, c.backlog, c.mem); got != c.want {
			t.Errorf("Decide(%d, %d, %d) = %v, want %v", c.records, c.backlog, c.mem, got, c.want)
		}
	}
	// Zero config never degrades, whatever the pressure.
	var off LadderConfig
	if off.Enabled() {
		t.Error("zero ladder reports enabled")
	}
	if got := off.Decide(1<<30, 100, 0); got != Full {
		t.Errorf("disabled ladder degraded to %v", got)
	}
	// But memory escalation still applies when the watcher reports steps.
	if got := off.Decide(10, 0, 2); got != VictimsOnly {
		t.Errorf("mem steps on disabled ladder = %v, want victims-only", got)
	}
}

func TestAutoLadderScalesWithRing(t *testing.T) {
	lc := AutoLadder(8000)
	if lc.SoftRecords != 1000 || lc.HardRecords != 2000 || lc.MaxRecords != 4000 {
		t.Errorf("AutoLadder rungs: %+v", lc)
	}
	if !lc.Enabled() {
		t.Error("auto ladder disabled")
	}
	if AutoLadder(0).Enabled() {
		t.Error("AutoLadder(0) should be disabled")
	}
}

func TestShedPolicyParse(t *testing.T) {
	for s, want := range map[string]ShedPolicy{
		"drop-oldest": ShedDropOldest, "": ShedDropOldest, "oldest": ShedDropOldest,
		"reject-new": ShedRejectNew, "REJECT": ShedRejectNew,
	} {
		got, err := ParseShedPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseShedPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseShedPolicy("banana"); err == nil {
		t.Error("bad policy accepted")
	}
	if ShedDropOldest.String() != "drop-oldest" || ShedRejectNew.String() != "reject-new" {
		t.Error("policy strings changed")
	}
}

func TestRingBoundedAppendAndDrop(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 4; i++ {
		if !r.Append(i) {
			t.Fatalf("append %d refused below capacity", i)
		}
	}
	if !r.Full() || r.Occupancy() != 1 {
		t.Fatalf("ring should be full: len=%d occ=%v", r.Len(), r.Occupancy())
	}
	if r.Append(99) {
		t.Fatal("append succeeded on a full ring")
	}
	r.DropFront(2)
	if r.Len() != 2 || r.At(0) != 2 || r.At(1) != 3 {
		t.Fatalf("after DropFront: len=%d head=%v", r.Len(), r.At(0))
	}
	// Wrap-around: append reuses the freed slots.
	if !r.Append(4) || !r.Append(5) {
		t.Fatal("append refused after drop")
	}
	for i, want := range []int{2, 3, 4, 5} {
		if r.At(i) != want {
			t.Errorf("At(%d) = %d, want %d", i, r.At(i), want)
		}
	}
}

func TestRingUnboundedGrows(t *testing.T) {
	r := NewRing[int](0)
	const n = 10000
	for i := 0; i < n; i++ {
		if !r.Append(i) {
			t.Fatalf("unbounded ring refused append %d", i)
		}
	}
	if r.Len() != n || r.Full() || r.Occupancy() != 0 {
		t.Fatalf("unbounded ring state: len=%d", r.Len())
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		if r.At(i) != i {
			t.Errorf("At(%d) = %d", i, r.At(i))
		}
	}
}

func TestRingInsertKeepsOrder(t *testing.T) {
	r := NewRing[int](0)
	for _, v := range []int{10, 20, 40} {
		r.Append(v)
	}
	// Force a wrapped layout first: drop and refill.
	r.DropFront(1)
	r.Append(50) // contents: 20 40 50
	i := r.Search(func(v int) bool { return v > 30 })
	if i != 1 {
		t.Fatalf("Search = %d, want 1", i)
	}
	if !r.Insert(i, 30) {
		t.Fatal("insert refused")
	}
	got := r.CopyRange(nil, 0, r.Len())
	want := []int{20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after insert: %v, want %v", got, want)
		}
	}
	// Insert at the very front and very back.
	r.Insert(0, 5)
	r.Insert(r.Len(), 60)
	got = r.CopyRange(got[:0], 0, r.Len())
	want = []int{5, 20, 30, 40, 50, 60}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front/back insert: %v, want %v", got, want)
		}
	}
}

func TestRingInsertRespectsCapacity(t *testing.T) {
	r := NewRing[int](2)
	r.Append(1)
	r.Append(3)
	if r.Insert(1, 2) {
		t.Fatal("insert succeeded on a full bounded ring")
	}
}

func TestRingDropFrontReleasesSlots(t *testing.T) {
	r := NewRing[[]byte](4)
	for i := 0; i < 4; i++ {
		r.Append(make([]byte, 8))
	}
	r.DropFront(4)
	if r.Len() != 0 {
		t.Fatal("drop did not empty ring")
	}
	// The backing slots must have been zeroed (payloads released). Reach
	// into the representation deliberately: this is the memory-ceiling
	// guarantee.
	for i, s := range r.buf {
		if s != nil {
			t.Fatalf("slot %d still references its payload after DropFront", i)
		}
	}
}

func TestContainConvertsPanic(t *testing.T) {
	leakcheck.Check(t)
	err := Contain("stage:test", func() { panic("boom") })
	if err == nil {
		t.Fatal("panic not contained")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *PanicError", err)
	}
	if pe.Scope != "stage:test" || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Errorf("panic error: %+v", pe)
	}
	if !IsPanic(err) || IsPanic(errors.New("x")) || IsPanic(nil) {
		t.Error("IsPanic misclassifies")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("error text %q", err)
	}
	if err := Contain("ok", func() {}); err != nil {
		t.Errorf("clean fn returned %v", err)
	}
	// Wrapped once more (as the pipeline does), it still unwraps.
	if !IsPanic(fmt.Errorf("stage failed: %w", err2())) {
		t.Error("wrapped panic error lost its identity")
	}
}

func err2() error { return Contain("w", func() { panic(42) }) }

func TestRetryTransientThenSuccess(t *testing.T) {
	var waits []time.Duration
	p := RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Max: 8 * time.Millisecond,
		Seed: 7, Sleep: func(d time.Duration) { waits = append(waits, d) }}
	calls := 0
	err := p.Run(context.Background(), "read", func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("stall"))
		}
		return nil
	}, nil)
	if err != nil || calls != 3 || len(waits) != 2 {
		t.Fatalf("err=%v calls=%d waits=%v", err, calls, waits)
	}
	// Exponential shape with jitter: each wait sits within (1-J, 1]× its
	// nominal backoff and never exceeds the cap.
	for i, w := range waits {
		nominal := time.Millisecond << uint(i)
		if w > nominal || w < time.Duration(float64(nominal)*0.7) {
			t.Errorf("wait %d = %v outside jitter band of %v", i, w, nominal)
		}
	}
}

func TestRetryDeterministicSchedule(t *testing.T) {
	run := func() []time.Duration {
		var waits []time.Duration
		p := RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Seed: 42,
			Sleep: func(d time.Duration) { waits = append(waits, d) }}
		p.Run(context.Background(), "op", func() error { return Transient(errors.New("x")) }, nil)
		return waits
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("expected 3 backoffs, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", a, b)
		}
	}
}

func TestRetryPermanentErrorFailsFast(t *testing.T) {
	p := RetryPolicy{Sleep: func(time.Duration) { t.Fatal("slept on a permanent error") }}
	perm := errors.New("corrupt header")
	calls := 0
	err := p.Run(context.Background(), "decode", func() error { calls++; return perm }, nil)
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustionAndContext(t *testing.T) {
	retries := 0
	p := RetryPolicy{MaxAttempts: 3, Base: time.Microsecond, Sleep: func(time.Duration) {}}
	err := p.Run(context.Background(), "read", func() error { return Transient(errors.New("stall")) },
		func(int, time.Duration) { retries++ })
	if err == nil || !IsTransient(err) || retries != 2 {
		t.Fatalf("exhaustion: err=%v retries=%d", err, retries)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("exhaustion error %q lacks attempt count", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = p.Run(ctx, "read", func() error { t.Fatal("fn ran after cancel"); return nil }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: %v", err)
	}
}

func TestMemWatcherDisabled(t *testing.T) {
	var w MemWatcher
	if w.Enabled() || w.Steps() != 0 {
		t.Error("zero watcher should be off")
	}
	var nilw *MemWatcher
	if nilw.Enabled() || nilw.HeapBytes() != 0 {
		t.Error("nil watcher should be off")
	}
}

func TestMemWatcherWatermarks(t *testing.T) {
	// A 1-byte soft watermark is always exceeded; a huge hard watermark
	// never is: the watcher must report exactly one escalation step.
	w := &MemWatcher{SoftBytes: 1, HardBytes: 1 << 50, Every: 1}
	if got := w.Steps(); got != 1 {
		t.Fatalf("soft watermark steps = %d, want 1", got)
	}
	if w.HeapBytes() <= 0 {
		t.Error("heap sample not recorded")
	}
	w2 := &MemWatcher{SoftBytes: 1, HardBytes: 1, Every: 1}
	if got := w2.Steps(); got != 2 {
		t.Fatalf("hard watermark steps = %d, want 2", got)
	}
	// Sampling interval: with Every=1000 the second call reuses the
	// cached reading rather than re-sampling.
	w3 := &MemWatcher{SoftBytes: 1, Every: 1000}
	w3.Steps()
	h := w3.HeapBytes()
	w3.Steps()
	if w3.HeapBytes() != h {
		t.Error("watcher re-sampled inside its interval")
	}
}

func TestConfigEnabledAndAuto(t *testing.T) {
	var zero Config
	if zero.Enabled() {
		t.Error("zero config reports enabled")
	}
	c := Auto(1 << 16)
	if !c.Enabled() || !c.ContainPanics || c.RingCapacity != 1<<16 {
		t.Errorf("Auto config: %+v", c)
	}
	if !c.Ladder.Enabled() || c.Policy != ShedDropOldest {
		t.Errorf("Auto ladder/policy: %+v", c)
	}
	if (Config{WindowDeadline: time.Second}).Enabled() == false {
		t.Error("deadline alone should enable")
	}
}
