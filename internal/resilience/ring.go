package resilience

// Ring is a slice-backed circular buffer with an optional hard capacity.
// It is the bounded ingest stage's storage: index access is O(1), front
// drops are O(1) (with evicted slots zeroed so record payloads are
// released to the GC), and in-order inserts for late records shift only
// the tail they displace. Capacity 0 means unbounded — the ring grows like
// an ordinary slice, which is the pre-resilience behaviour.
//
// A Ring is not safe for concurrent use; its owner (the online monitor)
// is single-goroutine by contract.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
	// capLimit is the hard bound (0 = unbounded).
	capLimit int
}

// NewRing creates a ring bounded at capacity records (0 = unbounded).
// Storage is allocated on demand, so a large bound costs nothing until
// the backlog actually builds.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Ring[T]{capLimit: capacity}
}

// Len returns the number of buffered items.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the hard capacity (0 = unbounded).
func (r *Ring[T]) Cap() int { return r.capLimit }

// Full reports whether a bounded ring has no room left.
func (r *Ring[T]) Full() bool { return r.capLimit > 0 && r.n >= r.capLimit }

// Occupancy returns the fill fraction of a bounded ring (always 0 when
// unbounded) — the watermark signal backpressure keys off.
func (r *Ring[T]) Occupancy() float64 {
	if r.capLimit <= 0 {
		return 0
	}
	return float64(r.n) / float64(r.capLimit)
}

// At returns the i-th buffered item (0 = oldest). i must be in [0, Len()).
func (r *Ring[T]) At(i int) T {
	return r.buf[r.idx(i)]
}

func (r *Ring[T]) idx(i int) int {
	p := r.head + i
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	return p
}

// grow doubles the backing store (respecting the capacity bound) and
// linearizes the contents.
func (r *Ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap < 16 {
		newCap = 16
	}
	if r.capLimit > 0 && newCap > r.capLimit {
		newCap = r.capLimit
	}
	nb := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[r.idx(i)]
	}
	r.buf, r.head = nb, 0
}

// Append adds v at the back. It returns false — and buffers nothing —
// when a bounded ring is full; the caller applies its shed policy.
func (r *Ring[T]) Append(v T) bool {
	if r.Full() {
		return false
	}
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.idx(r.n)] = v
	r.n++
	return true
}

// Insert places v before position i (0 = front, Len() = back), shifting
// the tail one slot. It returns false when a bounded ring is full. Late
// records are rare, so the O(Len-i) shift is off the hot path.
func (r *Ring[T]) Insert(i int, v T) bool {
	if r.Full() {
		return false
	}
	if r.n == len(r.buf) {
		r.grow()
	}
	r.n++
	for j := r.n - 1; j > i; j-- {
		r.buf[r.idx(j)] = r.buf[r.idx(j-1)]
	}
	r.buf[r.idx(i)] = v
	return true
}

// DropFront discards the k oldest items, zeroing their slots so any
// payloads they referenced (record IPID/tuple slices) are released.
func (r *Ring[T]) DropFront(k int) {
	if k > r.n {
		k = r.n
	}
	var zero T
	for i := 0; i < k; i++ {
		r.buf[r.head] = zero
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
}

// Search returns the smallest index i in [0, Len()) for which pred(item i)
// is true, or Len() when none is — sort.Search over the ring's logical
// order. The contents must be partitioned with respect to pred (false...
// then true...), which time-ordered records are.
func (r *Ring[T]) Search(pred func(T) bool) int {
	lo, hi := 0, r.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pred(r.At(mid)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CopyRange appends items [from, to) to dst and returns it — the window
// extraction primitive. The returned slice shares nothing with the ring's
// storage beyond the item values themselves.
func (r *Ring[T]) CopyRange(dst []T, from, to int) []T {
	for i := from; i < to; i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}
