// Package chaostest soaks the online diagnosis path under injected
// overload, stalls, truncation, and panics, and asserts the resilience
// contract: the stream never dies, memory stays bounded, every loss is
// counted, and windows outside the blast radius produce byte-identical
// alerts to a fault-free run.
//
// The harness is deliberately deterministic: every fault is seeded,
// retry backoff sleeps are stubbed, and panic injection is keyed on
// window/victim indices — so a chaos run is reproducible bit-for-bit,
// for any worker count, and "run twice, compare everything" is itself
// one of the assertions.
package chaostest

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/faults"
	"microscope/internal/nfsim"
	"microscope/internal/obs"
	"microscope/internal/online"
	"microscope/internal/packet"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// Config sizes a soak.
type Config struct {
	// Windows is how many analysis windows the stream spans (default 1100).
	Windows int
	// Window is the analysis window length (default 500µs).
	Window simtime.Duration
	// Overlap carried between windows (default Window/5).
	Overlap simtime.Duration
	// RatePPS is the offered load (default 150_000 pps).
	RatePPS float64
	// Seed drives the traffic, the faults, and the retry jitter.
	Seed int64
	// Workers is the per-window diagnosis fan-out.
	Workers int
	// SegRecords is the encoded-transport segment size (default 2048).
	SegRecords int
	// Incremental routes the monitor through the retained streaming index
	// (online.Config.Incremental) instead of per-window rebuilds; the soak
	// contract is unchanged.
	Incremental bool
}

func (c *Config) setDefaults() {
	if c.Windows == 0 {
		c.Windows = 1100
	}
	if c.Window == 0 {
		c.Window = 500 * simtime.Microsecond
	}
	if c.Overlap == 0 {
		c.Overlap = c.Window / 5
	}
	if c.RatePPS == 0 {
		c.RatePPS = 150_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SegRecords == 0 {
		c.SegRecords = 2048
	}
}

// Stream is the generated input: a deployment trace plus the window
// geometry derived from it.
type Stream struct {
	Meta    collector.Meta
	Records []collector.BatchRecord
	// MidStart/MidEnd bound the chaos blast radius, as window indices:
	// faults are injected only into windows [MidStart, MidEnd).
	MidStart, MidEnd int
	cfg              Config
}

// BuildStream simulates a 2-NF chain long enough to span cfg.Windows
// analysis windows, with periodic interrupts at the downstream NF so real
// victims (and alerts) occur throughout the run — including outside the
// blast radius, where the byte-identical comparison needs signal.
func BuildStream(cfg Config) *Stream {
	cfg.setDefaults()
	col := collector.New(collector.Config{})
	// Queue depth 64: an interrupt's backlog queues (and yields latency
	// victims with real blame) instead of overflowing into drops.
	sim := nfsim.BuildChain(col, 64,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
	)
	dur := simtime.Duration(cfg.Windows) * cfg.Window
	iv := simtime.PPS(cfg.RatePPS).Interval()
	var ems []traffic.Emission
	i := 0
	for tt := simtime.Time(0); tt < simtime.Time(dur); tt = tt.Add(iv) {
		ems = append(ems, traffic.Emission{
			At: tt,
			Flow: packet.FiveTuple{
				SrcIP: packet.IPFromOctets(10, 0, 0, byte(i%50)), DstIP: packet.IPFromOctets(23, 0, 0, 1),
				SrcPort: uint16(1024 + i%50), DstPort: 80, Proto: packet.ProtoTCP,
			},
			Size: 64, Burst: -1,
		})
		i++
	}
	sim.LoadSchedule(&traffic.Schedule{Emissions: ems})
	// One interrupt every ~40 windows, placed mid-window so the episode
	// does not straddle a comparison-margin boundary.
	step := 40 * cfg.Window
	for at := simtime.Time(5 * cfg.Window / 2); at < simtime.Time(dur); at = at.Add(step) {
		sim.InjectInterrupt("fw1", at, simtime.Duration(4*cfg.Window/5), "chaos")
	}
	sim.Run(simtime.Time(dur) + simtime.Time(20*cfg.Window))
	tr := col.Trace(collector.MetaForChain(sim, []string{"nat1", "fw1"}))
	return &Stream{
		Meta:     tr.Meta,
		Records:  tr.Records,
		MidStart: cfg.Windows / 3,
		MidEnd:   2 * cfg.Windows / 3,
		cfg:      cfg,
	}
}

// WithWorkers returns a copy of the stream whose runs use n diagnosis
// workers; the simulated records are shared, not rebuilt.
func (s *Stream) WithWorkers(n int) *Stream {
	c := *s
	c.cfg.Workers = n
	return &c
}

// WithIncremental returns a copy of the stream whose runs use the
// incremental streaming path; the simulated records are shared.
func (s *Stream) WithIncremental() *Stream {
	c := *s
	c.cfg.Incremental = true
	return &c
}

// windowIndex maps a timestamp onto its analysis-window index.
func (s *Stream) windowIndex(at simtime.Time) int {
	return int(simtime.Duration(at) / s.cfg.Window)
}

// midSpan returns the blast radius as a time range [from, to).
func (s *Stream) midSpan() (from, to simtime.Time) {
	return simtime.Time(simtime.Duration(s.MidStart) * s.cfg.Window),
		simtime.Time(simtime.Duration(s.MidEnd) * s.cfg.Window)
}

// FlushCounts reproduces the monitor's per-window record count (the
// ladder's input): for window w, the records in (end(w-1)-Overlap, end(w)]
// — the window body plus the retained overlap tail.
func FlushCounts(recs []collector.BatchRecord, cfg Config) []int {
	cfg.setDefaults()
	counts := make([]int, cfg.Windows+2)
	for _, r := range recs {
		w := int(simtime.Duration(r.At) / cfg.Window)
		if w >= len(counts) {
			continue
		}
		counts[w]++
		// The overlap tail is re-counted by the next window's flush.
		nextStart := simtime.Duration(w+1) * cfg.Window
		if simtime.Duration(r.At) > nextStart-cfg.Overlap && w+1 < len(counts) {
			counts[w+1]++
		}
	}
	return counts
}

// Chaos describes the injected adversary for one run.
type Chaos struct {
	// RecordFaults corrupts the blast-radius records (drop/dup/reorder/
	// truncate) before encoding.
	RecordFaults faults.Config
	// Overload amplifies blast-radius windows: window w is duplicated
	// Overload[(w-MidStart)%len(Overload)]-fold, so a repeating pattern of
	// factors walks the ladder rungs deterministically. Empty = no
	// amplification beyond RecordFaults duplication.
	Overload []int
	// CorruptSegments applies byte-level damage to every encoded segment
	// wholly inside the blast radius whose index satisfies idx%3==0.
	CorruptSegments faults.StreamConfig
	// BadMagicSegment poisons one in-blast segment's header entirely, so
	// the source reports a transient decode failure and the segment is
	// lost whole.
	BadMagicSegment bool
	// StallEverySegments makes every n-th in-blast segment fail
	// transiently StallAttempts times before healing (0 = no stalls).
	StallEverySegments int
	// StallAttempts is how many consecutive failures each stall injects.
	// Set it >= the retry budget to force a counted chunk drop.
	StallAttempts int
	// QuarantineWindows panics at stage scope in every n-th blast-radius
	// window (0 = never): the whole window must be quarantined.
	QuarantineWindows int
	// VictimPanicWindows panics at victim scope (victims 0 and 3) in
	// every n-th blast-radius window (0 = never): only those victims may
	// be quarantined.
	VictimPanicWindows int
}

// DefaultChaos is the full adversary: every fault class at once.
func DefaultChaos(seed int64) Chaos {
	return Chaos{
		RecordFaults: faults.Config{
			Seed:         seed + 100,
			DropRate:     0.02,
			DupRate:      0.9, // inflates blast-radius windows past the ladder rungs
			TruncateRate: 0.02,
			ReorderRate:  0.05,
		},
		// Rung walk: with ~1.9x duplication already applied, amp 1 lands
		// past Soft, amp 4 past Hard (victims-only), amp 8 past Max
		// (skipped). Period 7 is coprime with both panic periods below, so
		// every fault class hits windows at every rung.
		Overload:           []int{1, 1, 4, 1, 1, 8, 1},
		CorruptSegments:    faults.StreamConfig{Seed: seed + 200, FlipRate: 0.0005, TruncateFrac: 0.97},
		BadMagicSegment:    true,
		StallEverySegments: 7,
		// Equal to the retry budget: each stall burns one whole retry
		// cycle and is counted as a dropped chunk before healing.
		StallAttempts:      3,
		QuarantineWindows:  11,
		VictimPanicWindows: 5,
	}
}

// Result is one monitored run's full observable output.
type Result struct {
	Alerts []online.Alert
	Stats  online.Stats
	// Fingerprints maps each alerting window's index to the concatenated
	// rendering of its alerts, in emission order.
	Fingerprints map[int]string
	// LastDegradation is the final ladder rung.
	LastDegradation resilience.Level
	// PeakHeap is the largest heap sample observed across the run.
	PeakHeap int64
	// Registry holds the run's metrics for exposure assertions.
	Registry *obs.Registry
	// Decode accumulates transport-decode damage.
	Decode collector.DecodeStats
	// Err is the drain loop's terminal error (nil on clean EOF).
	Err error
}

// Run drives the stream through a monitor. chaos may be nil for the
// fault-free baseline; the monitor configuration (ladder, containment,
// retry) is identical either way, so the only difference between a
// baseline and a chaos run is the adversary itself.
func (s *Stream) Run(chaos *Chaos) *Result {
	cfg := s.cfg
	reg := obs.New()

	// Ladder rungs from the fault-free geometry: no clean window may
	// degrade, and the blast-radius duplication must push past Soft.
	clean := FlushCounts(s.Records, cfg)
	soft := 0
	for w, n := range clean {
		if (w < s.MidStart || w >= s.MidEnd) && n > soft {
			soft = n
		}
	}
	ladder := resilience.LadderConfig{
		SoftRecords: soft + soft/10,
		HardRecords: 5 * soft,
		MaxRecords:  10 * soft,
	}

	records := s.Records
	var chaosHook func(string)
	var sourceFault func(int) error
	if chaos != nil {
		records = s.corruptRecords(chaos)
	}

	mcfg := online.Config{
		Window:   cfg.Window,
		Overlap:  cfg.Overlap,
		MinScore: 5,
		// Corrupt timestamps that survive decode resync may point a little
		// into the future; a tight plausibility bound caps how far any one
		// of them can drag the watermark (and hence how many genuine
		// post-corruption windows can be mistaken for late). The
		// comparison margin in CompareOutside must cover this many
		// windows.
		MaxLookahead: 8 * cfg.Window,
		// A 500us window holds only ~75 packets; the default 99th
		// percentile would select a single victim. 90 gives each interrupt
		// episode enough victims to clear MinScore.
		Diagnosis:   core.Config{VictimPercentile: 90},
		HoldOff:     1, // suppress only identical onsets: no cross-window state to diverge
		Workers:     cfg.Workers,
		Obs:         reg,
		Incremental: cfg.Incremental,
		Resilience: resilience.Config{
			Ladder:        ladder,
			ContainPanics: true,
			Retry: resilience.RetryPolicy{
				MaxAttempts: 3,
				Seed:        cfg.Seed,
				Sleep:       func(time.Duration) {}, // stubbed: soaks must not sleep
			},
		},
	}

	segments, segWindows := s.encode(records)
	if chaos != nil {
		s.corruptSegments(segments, segWindows, chaos)
		sourceFault = s.stallFault(segWindows, chaos)
		chaosHook = s.panicHook(chaos)
	}
	mcfg.ChaosHook = chaosHook
	mon := online.New(s.Meta, mcfg)

	res := &Result{Fingerprints: make(map[int]string), Registry: reg}
	src := &online.EncodedSource{Segments: segments, Fault: sourceFault}
	sampleHeap := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if h := int64(ms.HeapAlloc); h > res.PeakHeap {
			res.PeakHeap = h
		}
	}
	seen := 0
	//mslint:allow ctxflow the chaos harness is the root of its own run; soak cancellation is the test deadline
	res.Err = online.FeedSource(context.Background(), mon, src, func(a online.Alert) {
		res.Alerts = append(res.Alerts, a)
		w := s.windowIndex(a.WindowEnd) - 1 // WindowEnd is exclusive: end of window w is (w+1)*Window
		res.Fingerprints[w] += a.String() + "\n"
		if seen++; seen%16 == 0 {
			sampleHeap()
		}
	})
	sampleHeap()
	res.Stats = mon.Stats()
	res.LastDegradation = mon.LastDegradation()
	res.Decode = src.Decode
	return res
}

// corruptRecords applies the record-level adversary to the blast radius
// only, leaving records outside it untouched.
func (s *Stream) corruptRecords(chaos *Chaos) []collector.BatchRecord {
	if !chaos.RecordFaults.Enabled() && len(chaos.Overload) == 0 {
		return s.Records
	}
	from, to := s.midSpan()
	lo := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].At >= from })
	hi := sort.Search(len(s.Records), func(i int) bool { return s.Records[i].At >= to })
	midRecs := s.Records[lo:hi]
	if chaos.RecordFaults.Enabled() {
		mid := &collector.Trace{Meta: s.Meta, Records: midRecs}
		corrupted, _ := faults.Inject(mid, chaos.RecordFaults)
		midRecs = corrupted.Records
	}
	if len(chaos.Overload) > 0 {
		amped := make([]collector.BatchRecord, 0, 2*len(midRecs))
		for _, r := range midRecs {
			amp := 1
			if w := s.windowIndex(r.At); w >= s.MidStart && w < s.MidEnd {
				amp = chaos.Overload[(w-s.MidStart)%len(chaos.Overload)]
			}
			for k := 0; k < amp; k++ {
				amped = append(amped, r)
			}
		}
		midRecs = amped
	}
	out := make([]collector.BatchRecord, 0, len(s.Records)+len(midRecs)-(hi-lo))
	out = append(out, s.Records[:lo]...)
	out = append(out, midRecs...)
	out = append(out, s.Records[hi:]...)
	return out
}

// encode splits records into transport segments and notes each segment's
// window span [first, last].
func (s *Stream) encode(records []collector.BatchRecord) (segs [][]byte, segWindows [][2]int) {
	for i := 0; i < len(records); i += s.cfg.SegRecords {
		end := i + s.cfg.SegRecords
		if end > len(records) {
			end = len(records)
		}
		enc := collector.NewEncoder()
		for j := i; j < end; j++ {
			r := records[j]
			enc.Append(&r)
		}
		enc.Flush()
		segs = append(segs, enc.Bytes())
		segWindows = append(segWindows, [2]int{
			s.windowIndex(records[i].At), s.windowIndex(records[end-1].At),
		})
	}
	return segs, segWindows
}

// inBlast reports whether segment i lies wholly inside the blast radius.
func (s *Stream) inBlast(segWindows [][2]int, i int) bool {
	return segWindows[i][0] >= s.MidStart && segWindows[i][1] < s.MidEnd
}

// corruptSegments applies byte-level damage to in-blast segments.
func (s *Stream) corruptSegments(segs [][]byte, segWindows [][2]int, chaos *Chaos) {
	badMagicDone := false
	nth := 0
	for i := range segs {
		if !s.inBlast(segWindows, i) {
			continue
		}
		nth++
		if chaos.BadMagicSegment && !badMagicDone {
			segs[i][0] ^= 0xFF
			badMagicDone = true
			continue
		}
		if chaos.CorruptSegments.FlipRate > 0 && nth%3 == 0 {
			c := chaos.CorruptSegments
			c.Seed += int64(i)
			segs[i] = faults.InjectStream(segs[i], c)
		}
	}
}

// stallFault builds the transient-failure hook: every n-th in-blast
// segment fails StallAttempts times before healing.
func (s *Stream) stallFault(segWindows [][2]int, chaos *Chaos) func(int) error {
	if chaos.StallEverySegments <= 0 {
		return nil
	}
	fails := make(map[int]int)
	return func(seg int) error {
		if !s.inBlast(segWindows, seg) || seg%chaos.StallEverySegments != 0 {
			return nil
		}
		if fails[seg] >= chaos.StallAttempts {
			return nil
		}
		fails[seg]++
		return resilience.Transient(fmt.Errorf("injected stall on segment %d (attempt %d)", seg, fails[seg]))
	}
}

// panicHook builds the panic injector: keyed purely on window and victim
// indices, so injection is identical for every worker count and run.
func (s *Stream) panicHook(chaos *Chaos) func(string) {
	curWindow := -1
	return func(scope string) {
		switch {
		case strings.HasPrefix(scope, "window:"):
			curWindow, _ = strconv.Atoi(scope[len("window:"):])
		case scope == "stage:victims":
			if chaos.QuarantineWindows > 0 && s.inBlastWindow(curWindow) &&
				curWindow%chaos.QuarantineWindows == 0 {
				panic(fmt.Sprintf("chaos: injected stage panic in window %d", curWindow))
			}
		case strings.HasPrefix(scope, "victim:"):
			if chaos.VictimPanicWindows == 0 || !s.inBlastWindow(curWindow) ||
				curWindow%chaos.VictimPanicWindows != 0 {
				return
			}
			if v, _ := strconv.Atoi(scope[len("victim:"):]); v == 0 || v == 3 {
				panic(fmt.Sprintf("chaos: injected victim panic (window %d, victim %d)", curWindow, v))
			}
		}
	}
}

// inBlastWindow reports whether window w is inside the blast radius.
func (s *Stream) inBlastWindow(w int) bool {
	return w >= s.MidStart && w < s.MidEnd
}

// CompareOutside diffs two runs' alert fingerprints for every window
// outside the blast radius plus margin windows on each side, returning a
// description of each mismatch.
func CompareOutside(s *Stream, a, b *Result, margin int) []string {
	var diffs []string
	lo, hi := s.MidStart-margin, s.MidEnd+margin
	for w := 0; w < s.cfg.Windows+2; w++ {
		if w >= lo && w < hi {
			continue
		}
		if a.Fingerprints[w] != b.Fingerprints[w] {
			diffs = append(diffs, fmt.Sprintf("window %d:\n  a: %q\n  b: %q",
				w, a.Fingerprints[w], b.Fingerprints[w]))
		}
	}
	return diffs
}
