package chaostest

import (
	"reflect"
	"testing"

	"microscope/internal/collector"
	"microscope/internal/leakcheck"
	"microscope/internal/online"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
)

// soakWindows picks the soak size: the full ≥1000-window soak by default,
// a faster smoke under -short (make soak-smoke, pre-commit runs).
func soakWindows(t *testing.T) int {
	if testing.Short() {
		return 300
	}
	return 1100
}

// TestChaosSoak is the headline soak: ≥1000 windows under the full
// adversary — overload past the ladder rungs, stalled and truncated
// transport segments, a header-dead segment, stage panics, and victim
// panics — all confined to the middle third of the stream. The contract:
// the drain loop survives to EOF, every loss is counted and exposed via
// obs, memory stays bounded, and windows outside the blast radius (plus
// margin) alert byte-identically to a fault-free baseline run.
func TestChaosSoak(t *testing.T) {
	leakcheck.Check(t)
	cfg := Config{Windows: soakWindows(t), Workers: 8}
	s := BuildStream(cfg)

	base := s.Run(nil)
	if base.Err != nil {
		t.Fatalf("baseline run failed: %v", base.Err)
	}
	if base.Stats.Degraded != 0 || base.Stats.WindowsQuarantined != 0 || base.Stats.WindowsSkipped != 0 {
		t.Fatalf("baseline must run clean at Full: %+v", base.Stats)
	}
	// The margin must cover the worst single watermark jump the
	// plausibility guard allows (8 windows, see Run), plus boundary slop.
	const margin = 12
	outside := 0
	for w := range base.Fingerprints {
		if w < s.MidStart-margin || w >= s.MidEnd+margin {
			outside++
		}
	}
	if outside == 0 {
		t.Fatal("baseline raised no alerts outside the blast radius; the byte-identical comparison would be vacuous")
	}

	chaos := DefaultChaos(cfg.Seed)
	ch := s.Run(&chaos)
	if ch.Err != nil {
		t.Fatalf("chaos run did not survive to EOF: %v", ch.Err)
	}
	if ch.Stats.Windows < cfg.Windows {
		t.Fatalf("drove %d windows, want >= %d", ch.Stats.Windows, cfg.Windows)
	}

	// Every fault class must have actually fired and been counted.
	st := ch.Stats
	if st.Degraded == 0 {
		t.Errorf("overload never degraded a window: %+v", st)
	}
	if st.WindowsQuarantined == 0 {
		t.Errorf("stage panics never quarantined a window: %+v", st)
	}
	if st.ContainedPanics == 0 {
		t.Errorf("victim panics never contained: %+v", st)
	}
	if st.SourceRetries == 0 {
		t.Errorf("stalls never retried: %+v", st)
	}
	if st.ChunksDropped == 0 {
		t.Errorf("no chunk drop despite a stall outlasting the retry budget: %+v", st)
	}
	if ch.Decode.Skipped == 0 {
		t.Errorf("segment corruption never cost a record: %+v", ch.Decode)
	}
	if st.ImplausibleDropped == 0 {
		t.Errorf("no corrupt future timestamp was caught by the watermark guard: %+v", st)
	}

	// The counts are exposed through the metrics registry, not just Stats.
	for _, m := range []string{
		"microscope_resilience_windows_quarantined_total",
		"microscope_resilience_windows_skipped_total",
		"microscope_resilience_source_retries_total",
		"microscope_resilience_chunks_dropped_total",
		"microscope_diag_victim_panics_total",
	} {
		if v := ch.Registry.Counter(m).Value(); v == 0 {
			t.Errorf("metric %s not exposed (0)", m)
		}
	}

	// Memory ceiling: the monitor must not hoard the stream. 1 GiB is
	// generous headroom over the working set even under -race.
	const ceiling = 1 << 30
	if ch.PeakHeap >= ceiling {
		t.Errorf("peak heap %d exceeds ceiling %d", ch.PeakHeap, int64(ceiling))
	}

	// Healthy windows are byte-identical to the fault-free run.
	if diffs := CompareOutside(s, base, ch, margin); len(diffs) != 0 {
		t.Errorf("%d windows outside the blast radius diverged from baseline:", len(diffs))
		for i, d := range diffs {
			if i == 5 {
				t.Errorf("... and %d more", len(diffs)-5)
				break
			}
			t.Error(d)
		}
	}
}

// TestChaosSoakIncremental runs the soak through the incremental streaming
// path: same adversary, same contract. The stream survives to EOF, every
// fault class fires and is counted, memory stays bounded, and windows
// outside the blast radius alert byte-identically to a fault-free
// incremental baseline — carried segments, carried memo, chaos and all.
func TestChaosSoakIncremental(t *testing.T) {
	leakcheck.Check(t)
	cfg := Config{Windows: soakWindows(t), Workers: 8, Incremental: true}
	s := BuildStream(cfg)

	base := s.Run(nil)
	if base.Err != nil {
		t.Fatalf("incremental baseline failed: %v", base.Err)
	}
	if base.Stats.Degraded != 0 || base.Stats.WindowsQuarantined != 0 || base.Stats.WindowsSkipped != 0 {
		t.Fatalf("incremental baseline must run clean at Full: %+v", base.Stats)
	}
	const margin = 12
	outside := 0
	for w := range base.Fingerprints {
		if w < s.MidStart-margin || w >= s.MidEnd+margin {
			outside++
		}
	}
	if outside == 0 {
		t.Fatal("incremental baseline raised no alerts outside the blast radius")
	}

	chaos := DefaultChaos(cfg.Seed)
	ch := s.Run(&chaos)
	if ch.Err != nil {
		t.Fatalf("incremental chaos run did not survive to EOF: %v", ch.Err)
	}
	st := ch.Stats
	if st.Windows < cfg.Windows {
		t.Fatalf("drove %d windows, want >= %d", st.Windows, cfg.Windows)
	}
	if st.Degraded == 0 || st.WindowsQuarantined == 0 || st.ContainedPanics == 0 {
		t.Errorf("chaos classes did not all fire through the incremental path: %+v", st)
	}
	// The streaming gauges must be live: segments seal and evict under
	// chaos, and eviction keeps the retained set bounded.
	if v := ch.Registry.Counter("microscope_stream_evicted_segments_total").Value(); v == 0 {
		t.Error("stream never evicted a segment across the soak")
	}
	if v := ch.Registry.Gauge("microscope_stream_retained_segments").Value(); v > 8 {
		t.Errorf("retained segments %d at EOF — eviction fell behind", v)
	}
	const ceiling = 1 << 30
	if ch.PeakHeap >= ceiling {
		t.Errorf("peak heap %d exceeds ceiling %d", ch.PeakHeap, int64(ceiling))
	}
	if diffs := CompareOutside(s, base, ch, margin); len(diffs) != 0 {
		t.Errorf("%d windows outside the blast radius diverged from the incremental baseline:", len(diffs))
		for i, d := range diffs {
			if i == 5 {
				t.Errorf("... and %d more", len(diffs)-5)
				break
			}
			t.Error(d)
		}
	}
}

// TestChaosDeterminism: the same chaos run is bit-identical across worker
// counts and across repeated runs — faults, panics, degradation and all.
func TestChaosDeterminism(t *testing.T) {
	s := BuildStream(Config{Windows: 240})
	chaos := DefaultChaos(1)

	w1 := s.WithWorkers(1).Run(&chaos)
	w8 := s.WithWorkers(8).Run(&chaos)
	again := s.WithWorkers(8).Run(&chaos)
	for _, r := range []*Result{w1, w8, again} {
		if r.Err != nil {
			t.Fatalf("run failed: %v", r.Err)
		}
	}
	if !reflect.DeepEqual(w1.Stats, w8.Stats) {
		t.Errorf("stats diverge across worker counts:\n  w1: %+v\n  w8: %+v", w1.Stats, w8.Stats)
	}
	if !reflect.DeepEqual(w1.Fingerprints, w8.Fingerprints) {
		t.Error("alert fingerprints diverge across worker counts")
	}
	if !reflect.DeepEqual(w8.Stats, again.Stats) || !reflect.DeepEqual(w8.Fingerprints, again.Fingerprints) {
		t.Error("identical chaos runs diverged: the harness is not deterministic")
	}
	if w1.Stats.WindowsQuarantined == 0 || w1.Stats.ContainedPanics == 0 {
		t.Errorf("determinism check ran without chaos actually firing: %+v", w1.Stats)
	}

	// The incremental path carries state (segments, memo) across windows;
	// it must be exactly as deterministic across worker counts.
	si := s.WithIncremental()
	iw1 := si.WithWorkers(1).Run(&chaos)
	iw8 := si.WithWorkers(8).Run(&chaos)
	if iw1.Err != nil || iw8.Err != nil {
		t.Fatalf("incremental runs failed: %v / %v", iw1.Err, iw8.Err)
	}
	if !reflect.DeepEqual(iw1.Stats, iw8.Stats) {
		t.Errorf("incremental stats diverge across worker counts:\n  w1: %+v\n  w8: %+v", iw1.Stats, iw8.Stats)
	}
	if !reflect.DeepEqual(iw1.Fingerprints, iw8.Fingerprints) {
		t.Error("incremental alert fingerprints diverge across worker counts")
	}
}

// feedAll drives records through a monitor in transport-size chunks and
// returns the alerts.
func feedAll(m *online.Monitor, recs []collector.BatchRecord) []online.Alert {
	var out []online.Alert
	const chunk = 4096
	for i := 0; i < len(recs); i += chunk {
		end := i + chunk
		if end > len(recs) {
			end = len(recs)
		}
		out = append(out, m.Feed(recs[i:end])...)
	}
	return append(out, m.Flush()...)
}

// TestShedDropOldest: a ring half the size of one window forces constant
// shedding; the monitor must stay alive, bound its buffer, and count
// every shed window and record.
func TestShedDropOldest(t *testing.T) {
	cfg := Config{Windows: 40}
	s := BuildStream(cfg)
	peak := 0
	for _, n := range FlushCounts(s.Records, cfg) {
		if n > peak {
			peak = n
		}
	}
	cap := peak / 2
	m := online.New(s.Meta, online.Config{
		Window:  cfg.Window,
		Overlap: cfg.Overlap,
		Resilience: resilience.Config{
			RingCapacity: cap,
			Policy:       resilience.ShedDropOldest,
		},
	})
	feedAll(m, s.Records)
	st := m.Stats()
	if st.WindowsShed == 0 || st.RecordsShed == 0 {
		t.Fatalf("undersized ring never shed: %+v", st)
	}
	if m.Backlog() > cap {
		t.Fatalf("backlog %d exceeds ring capacity %d", m.Backlog(), cap)
	}
}

// TestShedRejectNew: under reject-new, arrivals are refused while the
// ring is full, no window is abandoned, and the buffer stays bounded.
func TestShedRejectNew(t *testing.T) {
	cfg := Config{Windows: 40}
	s := BuildStream(cfg)
	peak := 0
	for _, n := range FlushCounts(s.Records, cfg) {
		if n > peak {
			peak = n
		}
	}
	cap := peak / 2
	m := online.New(s.Meta, online.Config{
		Window:  cfg.Window,
		Overlap: cfg.Overlap,
		Resilience: resilience.Config{
			RingCapacity: cap,
			Policy:       resilience.ShedRejectNew,
		},
	})
	feedAll(m, s.Records)
	st := m.Stats()
	if st.RecordsShed == 0 {
		t.Fatalf("full ring never rejected an arrival: %+v", st)
	}
	if st.WindowsShed != 0 {
		t.Fatalf("reject-new abandoned whole windows: %+v", st)
	}
	if m.Backlog() > cap {
		t.Fatalf("backlog %d exceeds ring capacity %d", m.Backlog(), cap)
	}
}

// TestDeadlineSkipsWindows: an impossible per-window budget skips every
// non-empty window — counted, alert-free, stream alive.
func TestDeadlineSkipsWindows(t *testing.T) {
	cfg := Config{Windows: 20}
	s := BuildStream(cfg)
	m := online.New(s.Meta, online.Config{
		Window:     cfg.Window,
		Overlap:    cfg.Overlap,
		Resilience: resilience.Config{WindowDeadline: 1}, // 1ns: always blown
	})
	alerts := feedAll(m, s.Records)
	st := m.Stats()
	if len(alerts) != 0 {
		t.Fatalf("deadline-blown windows still alerted: %v", alerts)
	}
	if st.DeadlineExceeded == 0 || st.WindowsSkipped == 0 {
		t.Fatalf("blown deadlines not counted: %+v", st)
	}
	if m.LastDegradation() != resilience.Skipped {
		t.Fatalf("last degradation = %v, want skipped", m.LastDegradation())
	}
}

// TestMemoryWatermarkDegrades: a 1-byte soft watermark is always crossed,
// so every non-empty window must escalate at least one rung.
func TestMemoryWatermarkDegrades(t *testing.T) {
	cfg := Config{Windows: 20}
	s := BuildStream(cfg)
	m := online.New(s.Meta, online.Config{
		Window:     cfg.Window,
		Overlap:    cfg.Overlap,
		Resilience: resilience.Config{MemSoftBytes: 1},
	})
	feedAll(m, s.Records)
	st := m.Stats()
	if st.Degraded == 0 {
		t.Fatalf("crossed soft watermark never degraded: %+v", st)
	}
	if m.LastDegradation() < resilience.NoPatterns {
		t.Fatalf("last degradation = %v, want >= no-patterns", m.LastDegradation())
	}
}

// TestBacklogEscalates: an arrival gap followed by a far-future record
// makes the flush loop see whole queued windows behind the watermark;
// the backlog rungs must escalate the ladder.
func TestBacklogEscalates(t *testing.T) {
	w := simtime.Duration(100 * simtime.Microsecond)
	m := online.New(collector.Meta{MaxBatch: 32}, online.Config{
		Window:  w,
		Overlap: w / 5, // the default (20ms) would dwarf this window and retain everything
		Resilience: resilience.Config{
			Ladder:        resilience.LadderConfig{SoftBacklog: 2, HardBacklog: 4},
			ContainPanics: true,
		},
	})
	var recs []collector.BatchRecord
	for i := 0; i < 50; i++ {
		recs = append(recs, collector.BatchRecord{
			Comp: "nf1", At: simtime.Time(i) * 2, Dir: collector.DirRead, IPIDs: []uint16{uint16(i)},
		})
	}
	// The straggler five windows out: window 0 flushes with ~5 windows of
	// watermark lead.
	recs = append(recs, collector.BatchRecord{
		Comp: "nf1", At: simtime.Time(5 * w), Dir: collector.DirRead, IPIDs: []uint16{99},
	})
	m.Feed(recs)
	if m.Stats().Degraded == 0 {
		t.Fatalf("backlog never escalated: %+v", m.Stats())
	}
	if m.LastDegradation() == resilience.Full {
		t.Fatal("window 0 ran at full despite 5-window backlog")
	}
}
