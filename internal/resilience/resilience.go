// Package resilience keeps the online diagnosis path alive under
// conditions the offline tool never faces: sustained overload, stalled or
// lossy record streams, and bugs that panic halfway through a window. The
// paper's Microscope runs offline over a finished trace (§5); a monitor
// that is itself the outage is worse than no monitor, so the streaming
// shell wraps every window in four independent defenses:
//
//   - bounded ingest: a fixed-capacity record ring with watermark-based
//     backpressure and an explicit load-shedding policy (drop the oldest
//     un-diagnosed window vs reject new arrivals), every shed counted;
//   - a degradation ladder: each window runs at the cheapest rung the
//     current pressure allows — full diagnosis → skip AutoFocus patterns →
//     victims-only → window skipped — decided deterministically from the
//     window's record count, the ingest backlog, and the memory watermark,
//     and reported so operators see the system shedding rather than lying;
//   - crash containment: panic recovery at window, stage, and worker-task
//     granularity (Contain is the only sanctioned recover() site — the
//     mslint containment analyzer enforces this), quarantining the
//     offending window the way reconstruction quarantines ambiguous
//     journeys, while the stream stays alive;
//   - bounded retry: capped exponential backoff with deterministic jitter
//     for transient stream faults (a stalled dumper, a torn read).
//
// Determinism: ladder decisions from record counts and backlog are pure
// functions of the fed records, so a degraded window's output is
// byte-identical for any worker count. The wall-clock defenses — the
// per-window deadline and the heap watermark — are machine-dependent
// safety nets, disabled by default and excluded from that contract; when
// they fire the window is skipped and counted, never half-reported.
package resilience

import (
	"fmt"
	"strings"
	"time"
)

// Level is one rung of the degradation ladder. Higher levels shed more
// work; ordering is significant (a Level can be escalated by adding
// steps).
type Level uint8

const (
	// Full runs everything the caller asked for.
	Full Level = iota
	// NoPatterns skips the §4.4 AutoFocus pattern aggregation; per-victim
	// diagnoses still run.
	NoPatterns
	// VictimsOnly stops after victim selection: symptoms are still
	// surfaced and counted, causal diagnosis is shed.
	VictimsOnly
	// Skipped sheds the whole window: it is counted and reported, never
	// analysed.
	Skipped
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Full:
		return "full"
	case NoPatterns:
		return "no-patterns"
	case VictimsOnly:
		return "victims-only"
	case Skipped:
		return "skipped"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// escalate raises l by steps rungs, clamped at Skipped.
func (l Level) escalate(steps int) Level {
	v := int(l) + steps
	if v > int(Skipped) {
		v = int(Skipped)
	}
	return Level(v)
}

// ShedPolicy selects what a full ingest ring sacrifices.
type ShedPolicy uint8

const (
	// ShedDropOldest abandons the oldest un-diagnosed window to make room
	// for new records: fresh data wins, history loses. This is the default
	// — a monitor's value is in the present.
	ShedDropOldest ShedPolicy = iota
	// ShedRejectNew refuses new arrivals while the ring is full: queued
	// history wins, fresh data loses.
	ShedRejectNew
)

// String implements fmt.Stringer.
func (p ShedPolicy) String() string {
	switch p {
	case ShedRejectNew:
		return "reject-new"
	default:
		return "drop-oldest"
	}
}

// ParseShedPolicy parses the CLI spelling of a shed policy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch strings.TrimSpace(strings.ToLower(s)) {
	case "", "drop-oldest", "drop_oldest", "oldest":
		return ShedDropOldest, nil
	case "reject-new", "reject_new", "reject":
		return ShedRejectNew, nil
	default:
		return ShedDropOldest, fmt.Errorf("resilience: unknown shed policy %q (want drop-oldest or reject-new)", s)
	}
}

// LadderConfig sets the deterministic thresholds of the degradation
// ladder. Zero-valued fields disable their rung; a zero LadderConfig never
// degrades.
type LadderConfig struct {
	// SoftRecords: a window holding more records than this runs at
	// NoPatterns.
	SoftRecords int
	// HardRecords: above this, VictimsOnly.
	HardRecords int
	// MaxRecords: above this, the window is Skipped outright.
	MaxRecords int
	// SoftBacklog escalates the base rung by one step when at least this
	// many whole windows are queued behind the one being diagnosed.
	SoftBacklog int
	// HardBacklog escalates by two steps.
	HardBacklog int
}

// Enabled reports whether any rung can trigger.
func (c LadderConfig) Enabled() bool {
	return c.SoftRecords > 0 || c.HardRecords > 0 || c.MaxRecords > 0 ||
		c.SoftBacklog > 0 || c.HardBacklog > 0
}

// Decide picks the rung for one window from deterministic pressure
// signals: the window's record count, how many whole windows of backlog
// are queued behind it, and the memory-watcher escalation (0 = none,
// 1 = soft watermark crossed, 2 = hard). Given the same fed records the
// decision is identical on every machine and for every worker count;
// only memSteps (a wall-machine signal, usually 0) can vary.
func (c LadderConfig) Decide(records, backlogWindows int, memSteps int) Level {
	base := Full
	switch {
	case c.MaxRecords > 0 && records > c.MaxRecords:
		base = Skipped
	case c.HardRecords > 0 && records > c.HardRecords:
		base = VictimsOnly
	case c.SoftRecords > 0 && records > c.SoftRecords:
		base = NoPatterns
	}
	steps := memSteps
	switch {
	case c.HardBacklog > 0 && backlogWindows >= c.HardBacklog:
		steps += 2
	case c.SoftBacklog > 0 && backlogWindows >= c.SoftBacklog:
		steps++
	}
	return base.escalate(steps)
}

// AutoLadder derives a ladder from an ingest-ring capacity: the rungs are
// fractions of the ring, so degradation begins well before shedding does
// and the ladder scales with whatever bound the operator chose.
func AutoLadder(ringCapacity int) LadderConfig {
	if ringCapacity <= 0 {
		return LadderConfig{}
	}
	return LadderConfig{
		SoftRecords: ringCapacity / 8,
		HardRecords: ringCapacity / 4,
		MaxRecords:  ringCapacity / 2,
		SoftBacklog: 2,
		HardBacklog: 4,
	}
}

// Config bundles the overload defenses a streaming consumer (the online
// monitor, mslive) threads through its windows. The zero value disables
// everything — unbounded ingest, no degradation, panics propagate — which
// is the pre-resilience behaviour.
type Config struct {
	// RingCapacity bounds the ingest ring, in records (0 = unbounded).
	RingCapacity int
	// Policy selects what a full ring sheds.
	Policy ShedPolicy
	// Ladder sets the degradation thresholds (zero = never degrade).
	Ladder LadderConfig
	// WindowDeadline is the wall-clock budget for one window's diagnosis
	// (0 = none). A window that overruns is cut off via context
	// cancellation, counted, and reported as skipped — a machine-dependent
	// safety net outside the determinism contract.
	WindowDeadline time.Duration
	// MemSoftBytes and MemHardBytes are heap watermarks (0 = off): crossing
	// the soft watermark escalates the ladder one step, the hard watermark
	// two. Heap size is a wall-machine signal; see the package comment.
	MemSoftBytes int64
	MemHardBytes int64
	// ContainPanics converts panics inside a window's pipeline — per
	// stage and per worker task — into a quarantined window instead of a
	// dead process.
	ContainPanics bool
	// Retry shapes the backoff applied to transient stream-source faults.
	Retry RetryPolicy
}

// Enabled reports whether any defense is active.
func (c Config) Enabled() bool {
	return c.RingCapacity > 0 || c.Ladder.Enabled() || c.WindowDeadline > 0 ||
		c.MemSoftBytes > 0 || c.MemHardBytes > 0 || c.ContainPanics
}

// Auto returns a Config with every defense on, derived from a ring
// capacity: AutoLadder rungs, drop-oldest shedding, and panic containment.
// Deadline and memory watermarks stay off (they are wall-clock signals the
// operator must opt into).
func Auto(ringCapacity int) Config {
	return Config{
		RingCapacity:  ringCapacity,
		Policy:        ShedDropOldest,
		Ladder:        AutoLadder(ringCapacity),
		ContainPanics: true,
	}
}
