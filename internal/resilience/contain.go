package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError is a panic converted into a value by Contain: what panicked
// (the scope label), the recovered value, and the goroutine stack at the
// point of the panic. It satisfies errors.As so callers distinguish a
// contained crash from cancellation or I/O failure.
type PanicError struct {
	// Scope labels the containment boundary that caught the panic, e.g.
	// "stage:diagnose", "victim", or "window".
	Scope string
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured inside recover.
	Stack []byte
}

// Error implements error. The stack is not included — it is for logs and
// debugging, not for the one-line error chain.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Scope, e.Value)
}

// IsPanic reports whether err wraps a contained panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// Contain runs fn and converts a panic into a *PanicError instead of
// unwinding past the caller — the crash-containment boundary the online
// path wraps around every window, pipeline stage, and worker task. The
// offending unit is quarantined by its caller (counted, its output
// discarded) and the stream stays alive.
//
// This is the only sanctioned recover() site in the tree: the mslint
// containment analyzer rejects recover() anywhere outside this package,
// because a stray recover silently swallows bugs that should either crash
// loudly (offline tools) or be quarantined and counted (online path).
//
// A contained panic does NOT attempt to repair shared state the panicking
// code may have half-mutated; callers must only contain units whose
// failure leaves shared state consistent (per-window traces and stores are
// rebuilt from scratch each window; per-victim scratch is simply not
// returned to its pool).
func Contain(scope string, fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Scope: scope, Value: v, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}
