package resilience

import (
	"runtime"

	"microscope/internal/obs"
)

// MemWatcher samples the Go heap against soft/hard watermarks and turns
// the reading into ladder escalation steps. Heap size is a wall-machine
// signal — the same trace can sit at different heap sizes across runs —
// so the watcher is a safety net against the monitor itself becoming the
// memory hog, not part of the determinism contract; both watermarks
// default to off.
//
// ReadMemStats stops the world briefly, so samples are taken every Every
// calls (default 8 — once per few windows) and the last reading is reused
// in between.
type MemWatcher struct {
	// SoftBytes escalates the degradation ladder by one step when the
	// heap exceeds it (0 = off).
	SoftBytes int64
	// HardBytes escalates by two steps (0 = off).
	HardBytes int64
	// Every is the sampling interval in calls (default 8).
	Every int
	// Gauge, when non-nil, receives each heap sample.
	Gauge *obs.Gauge

	calls     int
	lastSteps int
	lastHeap  int64
}

// Enabled reports whether any watermark is set.
func (w *MemWatcher) Enabled() bool {
	return w != nil && (w.SoftBytes > 0 || w.HardBytes > 0)
}

// Steps returns the ladder escalation the current heap demands: 0 below
// the soft watermark, 1 between soft and hard, 2 at or beyond hard.
func (w *MemWatcher) Steps() int {
	if !w.Enabled() {
		return 0
	}
	every := w.Every
	if every <= 0 {
		every = 8
	}
	if w.calls%every == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.lastHeap = int64(ms.HeapAlloc)
		w.Gauge.Set(w.lastHeap)
		switch {
		case w.HardBytes > 0 && w.lastHeap >= w.HardBytes:
			w.lastSteps = 2
		case w.SoftBytes > 0 && w.lastHeap >= w.SoftBytes:
			w.lastSteps = 1
		default:
			w.lastSteps = 0
		}
	}
	w.calls++
	return w.lastSteps
}

// HeapBytes returns the most recent heap sample (0 before the first).
func (w *MemWatcher) HeapBytes() int64 {
	if w == nil {
		return 0
	}
	return w.lastHeap
}
