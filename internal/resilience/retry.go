package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// errTransient is the sentinel transient faults wrap: a stalled stream
// source, a torn read mid-frame — conditions where retrying after a short
// backoff is expected to succeed.
var errTransient = errors.New("transient")

// Transient marks err as retryable. Retry backs off and re-attempts
// operations whose error IsTransient; everything else fails immediately.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", errTransient, err)
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	return errors.Is(err, errTransient)
}

// RetryPolicy shapes the capped exponential backoff applied to transient
// stream faults. The zero value takes the documented defaults.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries, first included (default 4).
	MaxAttempts int
	// Base is the first backoff (default 1ms); each retry doubles it.
	Base time.Duration
	// Max caps the backoff growth (default 100ms).
	Max time.Duration
	// Jitter is the fraction of each backoff randomized (default 0.25).
	// The jitter stream is seeded, so a retry schedule is reproducible.
	Jitter float64
	// Seed drives the jitter (same seed, same schedule).
	Seed int64
	// Sleep is the delay function (nil = time.Sleep); tests inject a
	// recorder so retry schedules are asserted without real waiting.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 100 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.25
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff returns the delay before retry attempt (1-based: attempt 1 is
// the wait after the first failure), jittered by rng deterministically.
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.Base << uint(attempt-1)
	if d > p.Max || d <= 0 {
		d = p.Max
	}
	if p.Jitter > 0 {
		// Spread the final fraction of the delay uniformly so synchronized
		// retries against a shared source fan out.
		j := float64(d) * p.Jitter
		d = time.Duration(float64(d) - j + rng.Float64()*j)
	}
	return d
}

// Run invokes fn until it succeeds, fails permanently, exhausts
// MaxAttempts, or ctx is done. Only errors marked Transient are retried;
// the last error is returned (wrapped with the attempt count when the
// budget ran out). onRetry, when non-nil, observes each backoff — the
// monitor counts retries into its stats there.
func (p RetryPolicy) Run(ctx context.Context, op string, fn func() error, onRetry func(attempt int, wait time.Duration)) error {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed)) //mslint:allow nondet seeded local source: the jitter schedule is reproducible by construction
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%s: %w", op, cerr)
		}
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("%s: %d attempts exhausted: %w", op, attempt, err)
		}
		wait := p.backoff(attempt, rng)
		if onRetry != nil {
			onRetry(attempt, wait)
		}
		p.Sleep(wait)
	}
}
