package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microscope/internal/report"
)

func demoSeries() *report.Series {
	s := &report.Series{Name: "queue", XLabel: "time (ms)", YLabel: "packets"}
	for i := 0; i < 50; i++ {
		s.Add(float64(i)*0.1, float64((i*i)%40))
	}
	return s
}

func TestSVGWellFormed(t *testing.T) {
	out := SVG(Config{Title: "demo"}, demoSeries())
	for _, want := range []string{"<svg", "</svg>", "polyline", "demo", "time (ms)", "packets"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 {
		t.Error("multiple svg roots")
	}
}

func TestSVGScatterAndMultiSeries(t *testing.T) {
	a, b := demoSeries(), demoSeries()
	b.Name = "other"
	out := SVG(Config{Scatter: true}, a, b)
	if !strings.Contains(out, "<circle") {
		t.Error("scatter should use circles")
	}
	if !strings.Contains(out, "other") {
		t.Error("legend missing second series")
	}
	if strings.Contains(out, "polyline") {
		t.Error("scatter should not draw lines")
	}
}

func TestSVGLogY(t *testing.T) {
	s := &report.Series{Name: "lat", XLabel: "t", YLabel: "us"}
	s.Add(0, 1)
	s.Add(1, 10)
	s.Add(2, 1000)
	s.Add(3, 0) // must be skipped, not crash
	out := SVG(Config{LogY: true}, s)
	if !strings.Contains(out, "polyline") {
		t.Error("log chart missing data")
	}
}

func TestSVGEmpty(t *testing.T) {
	out := SVG(Config{}, &report.Series{Name: "empty"})
	if !strings.Contains(out, "no data") {
		t.Error("empty chart should say so")
	}
}

func TestSVGConstantSeries(t *testing.T) {
	s := &report.Series{Name: "flat"}
	s.Add(1, 5)
	s.Add(2, 5)
	out := SVG(Config{}, s)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("degenerate bounds leaked: %s", out)
	}
}

func TestWriteSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.svg")
	if err := WriteSVG(path, Config{Title: "f"}, demoSeries()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("file content wrong")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape: %q", escape(`a<b>&"c"`))
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M",
		1200:    "1.2k",
		42:      "42",
		0.25:    "0.25",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v): got %q want %q", v, got, want)
		}
	}
}
