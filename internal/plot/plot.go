// Package plot renders report.Series as standalone SVG line/scatter charts
// using only the standard library, so msbench can emit viewable versions of
// every paper figure next to the textual rows.
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"

	"microscope/internal/report"
)

// Config controls chart geometry.
type Config struct {
	Width, Height int
	Title         string
	// Scatter draws points instead of a connected line (e.g. Figure 1a).
	Scatter bool
	// LogY uses a log10 y-axis (useful for latency plots).
	LogY bool
}

func (c *Config) setDefaults() {
	if c.Width == 0 {
		c.Width = 640
	}
	if c.Height == 0 {
		c.Height = 400
	}
}

// palette holds the line colors, in series order.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}

const (
	marginL = 64
	marginR = 16
	marginT = 36
	marginB = 48
)

// SVG renders one or more series into a single chart.
func SVG(cfg Config, series ...*report.Series) string {
	cfg.setDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		cfg.Width, cfg.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", cfg.Width, cfg.Height)

	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			any = true
		}
	}
	if !any {
		b.WriteString(`<text x="20" y="20">no data</text></svg>`)
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := float64(cfg.Width - marginL - marginR)
	plotH := float64(cfg.Height - marginT - marginB)
	tx := func(x float64) float64 { return float64(marginL) + (x-minX)/(maxX-minX)*plotW }
	ty := func(y float64) float64 {
		if cfg.LogY {
			y = math.Log10(math.Max(y, math.Pow(10, minY)))
		}
		return float64(marginT) + plotH - (y-minY)/(maxY-minY)*plotH
	}

	// Axes, ticks, grid.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		px := tx(fx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px, marginT, px, float64(marginT)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px, float64(marginT)+plotH+16, fmtTick(fx))

		fy := minY + (maxY-minY)*float64(i)/5
		py := float64(marginT) + plotH - (fy-minY)/(maxY-minY)*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, float64(marginL)+plotW, py)
		label := fy
		if cfg.LogY {
			label = math.Pow(10, fy)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, fmtTick(label))
	}

	// Title and axis labels (from the first series).
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n",
			marginL, escape(cfg.Title))
	}
	if len(series) > 0 {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			float64(marginL)+plotW/2, cfg.Height-8, escape(series[0].XLabel))
		fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			float64(marginT)+plotH/2, float64(marginT)+plotH/2, escape(series[0].YLabel))
	}

	// Series.
	for si, s := range series {
		color := palette[si%len(palette)]
		if cfg.Scatter {
			for i := range s.X {
				if cfg.LogY && s.Y[i] <= 0 {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="%s"/>`+"\n",
					tx(s.X[i]), ty(s.Y[i]), color)
			}
		} else {
			var pts []string
			for i := range s.X {
				if cfg.LogY && s.Y[i] <= 0 {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[i]), ty(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend.
		ly := marginT + 14 + si*16
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			cfg.Width-marginR-150, ly-9, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			cfg.Width-marginR-136, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// WriteSVG renders the chart to a file.
func WriteSVG(path string, cfg Config, series ...*report.Series) error {
	return os.WriteFile(path, []byte(SVG(cfg, series...)), 0o644)
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.2gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
