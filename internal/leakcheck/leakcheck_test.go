package leakcheck

import (
	"testing"
	"time"
)

// TestDiffSeesNewGoroutine exercises the snapshot/diff machinery directly
// (arming Check with a real leak would fail the test by design).
func TestDiffSeesNewGoroutine(t *testing.T) {
	before := snapshot()
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	defer close(stop)

	leaked := diff(snapshot(), before)
	if len(leaked) != 1 {
		t.Fatalf("diff reported %d leaked goroutines, want 1:\n%v", len(leaked), leaked)
	}
}

// TestCheckToleratesExitingGoroutine: a goroutine that finishes within
// the grace window is not a leak.
func TestCheckToleratesExitingGoroutine(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Return while the goroutine is still alive; the cleanup's grace
	// retry must absorb it.
	_ = done
}

func TestGoroutineID(t *testing.T) {
	id, ok := goroutineID("goroutine 42 [running]:\nmain.main()")
	if !ok || id != "42" {
		t.Fatalf("goroutineID = %q, %v", id, ok)
	}
	if _, ok := goroutineID("not a stack"); ok {
		t.Fatal("accepted a non-stack")
	}
}
