// Package leakcheck is a test helper that mirrors the golifetime
// analyzer's static guarantee at runtime: a test that starts goroutines
// must end with them gone. Check snapshots the live goroutines when
// called and registers a cleanup that diffs a fresh snapshot against it,
// retrying over a grace period so goroutines that are mid-exit (a feed
// loop observing its closed channel, a drained hook runner) are not
// false positives. Anything still running after the grace period fails
// the test with its full stack.
//
// Usage, first line of a test whose code spawns goroutines:
//
//	leakcheck.Check(t)
//
// Goroutines are identified by ID, so everything alive before the test
// body (the test runner, timers, pre-existing pollers) is excluded by
// construction; only goroutines born during the test can be reported.
package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// grace bounds how long the cleanup waits for straggler goroutines to
// finish before declaring a leak.
const grace = 5 * time.Second

// Check arms the leak detector for the rest of the test.
func Check(t testing.TB) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace) //mslint:allow nondet test-only leak deadline, not diagnosis output
		for {
			leaked := diff(snapshot(), before)
			if len(leaked) == 0 {
				return
			}
			//mslint:allow nondet test-only leak deadline, not diagnosis output
			if time.Now().After(deadline) {
				t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n\n%s",
					len(leaked), strings.Join(leaked, "\n\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
