package leakcheck

import (
	"runtime"
	"sort"
	"strings"
)

// snapshot captures every live goroutine's stack, keyed by goroutine ID.
func snapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		if id, ok := goroutineID(g); ok {
			out[id] = g
		}
	}
	return out
}

// goroutineID extracts the N of a "goroutine N [state]:" header.
func goroutineID(stack string) (string, bool) {
	rest, ok := strings.CutPrefix(stack, "goroutine ")
	if !ok {
		return "", false
	}
	i := strings.IndexByte(rest, ' ')
	if i <= 0 {
		return "", false
	}
	return rest[:i], true
}

// diff returns the stacks present in after but not before, excluding
// runtime/testing infrastructure, sorted for deterministic output.
func diff(after, before map[string]string) []string {
	var leaked []string
	for id, g := range after {
		if _, existed := before[id]; existed {
			continue
		}
		if infrastructure(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Strings(leaked)
	return leaked
}

// infrastructure reports goroutines the runtime or test harness may start
// at any moment and that are not the test's to join.
func infrastructure(stack string) bool {
	for _, frag := range []string{
		"testing.(*T).Run(",      // a parent test blocked on subtests
		"testing.(*T).Parallel(", // a queued parallel test
		"runtime.ReadTrace(",
		"runtime/pprof.",
		"os/signal.signal_recv(",
		"os/signal.loop(",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}
