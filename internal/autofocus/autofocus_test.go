package autofocus

import (
	"strings"
	"testing"
	"testing/quick"

	"microscope/internal/packet"
)

func ft(srcLast byte, sport, dport uint16) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(100, 0, 0, srcLast),
		DstIP:   packet.IPFromOctets(32, 0, 0, 1),
		SrcPort: sport,
		DstPort: dport,
		Proto:   packet.ProtoTCP,
	}
}

func TestPortRange(t *testing.T) {
	r := PortRange{1024, 65535}
	if !r.Contains(2000) || r.Contains(80) {
		t.Error("Contains wrong")
	}
	if r.Any() {
		t.Error("registered range is not any")
	}
	if (PortRange{0, 65535}).String() != "*" {
		t.Error("any string")
	}
	if (PortRange{80, 80}).String() != "80" {
		t.Error("single string")
	}
	if r.String() != "1024-65535" {
		t.Error("range string")
	}
}

func TestFlowAggMatches(t *testing.T) {
	a := FlowAgg{
		SrcPrefix: packet.IPFromOctets(100, 0, 0, 0),
		SrcLen:    24,
		SrcPort:   PortRange{0, 65535},
		DstPort:   PortRange{6000, 6008},
		Proto:     -1,
	}
	if !a.Matches(ft(9, 2000, 6004)) {
		t.Error("should match")
	}
	if a.Matches(ft(9, 2000, 7000)) {
		t.Error("port outside range matched")
	}
	other := ft(9, 2000, 6004)
	other.SrcIP = packet.IPFromOctets(101, 0, 0, 9)
	if a.Matches(other) {
		t.Error("prefix mismatch matched")
	}
}

func TestFlowAggString(t *testing.T) {
	a := FlowAgg{
		SrcPrefix: packet.IPFromOctets(100, 0, 0, 1),
		SrcLen:    32,
		DstLen:    0,
		SrcPort:   PortRange{2004, 2004},
		DstPort:   PortRange{1024, 65535},
		Proto:     6,
	}
	got := a.String()
	if !strings.Contains(got, "100.0.0.1/32") || !strings.Contains(got, "*") ||
		!strings.Contains(got, "2004") || !strings.Contains(got, "1024-65535") {
		t.Errorf("String: %q", got)
	}
}

func TestNFAgg(t *testing.T) {
	if (NFAgg{Name: "fw2", Kind: "fw"}).String() != "fw2" {
		t.Error("instance string")
	}
	if (NFAgg{Kind: "fw"}).String() != "fw*" {
		t.Error("kind string")
	}
	if !(NFAgg{}).Any() || (NFAgg{}).String() != "*" {
		t.Error("any agg")
	}
}

func TestAggregateSingleHeavyFlow(t *testing.T) {
	// One flow carries 90% of weight: it must be reported as an exact
	// (most specific) pattern.
	items := []Item{
		{Flow: ft(1, 2004, 6004), NF: "fw2", Kind: "fw", Weight: 90},
	}
	for i := 0; i < 10; i++ {
		items = append(items, Item{Flow: ft(byte(50+i), uint16(3000+i*13), uint16(9000+i*7)), NF: "fw1", Kind: "fw", Weight: 1})
	}
	pats := Aggregate(items, Config{Threshold: 0.05})
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	top := pats[0]
	if top.Weight < 89.9 || top.Weight > 90.1 {
		t.Errorf("top weight: %v", top.Weight)
	}
	if top.Flow.SrcLen != 32 || top.Flow.SrcPort.Lo != 2004 || top.Flow.SrcPort.Hi != 2004 {
		t.Errorf("top pattern not exact: %v", top)
	}
	if top.NF.Name != "fw2" {
		t.Errorf("top NF: %v", top.NF)
	}
}

func TestAggregatePrefixRollup(t *testing.T) {
	// 64 flows inside 100.0.0.0/24, each 1% — individually below a 5%
	// threshold, together 64%: must roll up to (at most) the /24.
	var items []Item
	for i := 0; i < 64; i++ {
		items = append(items, Item{Flow: ft(byte(i), uint16(1024+i), uint16(7000+i)), NF: "fw1", Kind: "fw", Weight: 1})
	}
	// Background noise elsewhere.
	for i := 0; i < 36; i++ {
		f := ft(1, uint16(2000+i), uint16(8000+i))
		f.SrcIP = packet.IPFromOctets(9, byte(i), 0, 1)
		f.DstIP = packet.IPFromOctets(200, byte(i), 3, 4)
		items = append(items, Item{Flow: f, NF: "fw3", Kind: "fw", Weight: 1})
	}
	pats := Aggregate(items, Config{Threshold: 0.05})
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	found := false
	for _, p := range pats {
		if p.Flow.SrcLen >= 16 && p.Flow.SrcLen <= 24 &&
			p.Flow.SrcPrefix>>8 == packet.IPFromOctets(100, 0, 0, 0)>>8 && p.Weight >= 60 {
			found = true
		}
	}
	if !found {
		t.Errorf("no /24-ish rollup found: %v", pats)
	}
}

func TestAggregateNFTypeRollup(t *testing.T) {
	// Same flow spread across five firewall instances, each below
	// threshold: must report at the fw-type level.
	var items []Item
	for i := 0; i < 5; i++ {
		items = append(items, Item{
			Flow: ft(7, 4000, 5000), NF: "fw" + string(rune('1'+i)), Kind: "fw", Weight: 3,
		})
	}
	items = append(items, Item{Flow: ft(200, 6000, 7000), NF: "nat1", Kind: "nat", Weight: 85})
	pats := Aggregate(items, Config{Threshold: 0.10})
	var fwPat *Pattern
	for i := range pats {
		if pats[i].NF.Kind == "fw" && pats[i].NF.Name == "" {
			fwPat = &pats[i]
		}
	}
	if fwPat == nil {
		t.Fatalf("no fw-type rollup: %v", pats)
	}
	if fwPat.Weight < 14.9 {
		t.Errorf("fw rollup weight: %v", fwPat.Weight)
	}
}

func TestAggregateThresholdPrunes(t *testing.T) {
	var items []Item
	for i := 0; i < 100; i++ {
		f := ft(byte(i), uint16(1024+i*17), uint16(1024+i*31))
		f.SrcIP = uint32(i) * 2654435761 // spread everywhere
		f.DstIP = uint32(i)*40503 + 7
		items = append(items, Item{Flow: f, NF: "fw1", Kind: "fw", Weight: 1})
	}
	pats := Aggregate(items, Config{Threshold: 0.5})
	// Nothing except (possibly) a very general cluster can pass 50%.
	for _, p := range pats {
		if p.Flow.SrcLen == 32 {
			t.Errorf("specific pattern above 50%%: %v", p)
		}
	}
}

func TestAggregateWeightConservation(t *testing.T) {
	f := func(weightsRaw []uint8) bool {
		if len(weightsRaw) == 0 || len(weightsRaw) > 40 {
			return true
		}
		var items []Item
		var total float64
		for i, w := range weightsRaw {
			wt := float64(w%50) + 1
			total += wt
			items = append(items, Item{
				Flow: ft(byte(i), uint16(2000+i), uint16(6000+i%4)), NF: "fw1", Kind: "fw", Weight: wt,
			})
		}
		pats := Aggregate(items, Config{Threshold: 0.01})
		var sum float64
		for _, p := range pats {
			if p.Weight <= 0 {
				return false
			}
			sum += p.Weight
		}
		// Residual reporting never double counts.
		return sum <= total+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAggregateEmptyAndCaps(t *testing.T) {
	if Aggregate(nil, Config{}) != nil {
		t.Error("empty input should be nil")
	}
	var items []Item
	for i := 0; i < 20; i++ {
		items = append(items, Item{Flow: ft(byte(i), uint16(3000+i), 6000), NF: "fw1", Kind: "fw", Weight: 10})
	}
	pats := Aggregate(items, Config{Threshold: 0.01, MaxPatterns: 3})
	if len(pats) > 3 {
		t.Errorf("cap ignored: %d", len(pats))
	}
}

func TestAggregateDeterminism(t *testing.T) {
	var items []Item
	for i := 0; i < 30; i++ {
		items = append(items, Item{Flow: ft(byte(i%5), uint16(2000+i%3), uint16(6000+i%2)), NF: "fw1", Kind: "fw", Weight: float64(i%7) + 1})
	}
	a := Aggregate(items, Config{Threshold: 0.02})
	b := Aggregate(items, Config{Threshold: 0.02})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pattern %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMaskPrefix(t *testing.T) {
	ip := packet.IPFromOctets(192, 168, 55, 77)
	if got := maskPrefix(ip, 24); got != packet.IPFromOctets(192, 168, 55, 0) {
		t.Errorf("/24 mask: %s", packet.IPString(got))
	}
	if got := maskPrefix(ip, 0); got != 0 {
		t.Errorf("/0 mask: %d", got)
	}
	if got := maskPrefix(ip, 32); got != ip {
		t.Errorf("/32 mask changed ip")
	}
}

// TestCacheEquivalence: aggregation with a shared expansion cache must be
// byte-for-byte identical to aggregation without one, across repeated and
// overlapping item sets.
func TestCacheEquivalence(t *testing.T) {
	cache := NewCache()
	for round := 0; round < 5; round++ {
		var items []Item
		for i := 0; i < 40; i++ {
			items = append(items, Item{
				Flow:   ft(byte((i+round*7)%20), uint16(2000+i%6), uint16(6000+i%3)),
				NF:     []string{"fw1", "fw2", "nat1"}[i%3],
				Kind:   []string{"fw", "fw", "nat"}[i%3],
				Weight: float64(i%9) + 1,
			})
		}
		plain := Aggregate(items, Config{Threshold: 0.02})
		cached := Aggregate(items, Config{Threshold: 0.02, Cache: cache})
		if len(plain) != len(cached) {
			t.Fatalf("round %d: %d vs %d patterns", round, len(plain), len(cached))
		}
		for i := range plain {
			if plain[i] != cached[i] {
				t.Fatalf("round %d pattern %d: %v vs %v", round, i, plain[i], cached[i])
			}
		}
	}
}
