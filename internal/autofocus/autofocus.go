// Package autofocus implements the multidimensional hierarchical
// heavy-hitter clustering Microscope's pattern aggregation builds on
// (AutoFocus, Estan et al. [25]; paper §4.4).
//
// Items are weighted <five-tuple, NF> pairs. The algorithm reports the most
// specific aggregates — across source/destination prefix hierarchies, port
// ranges, protocol, and NF instance/type — whose residual weight (after
// consuming the weight already explained by more-specific reported
// aggregates) exceeds a threshold fraction of the total. Like the paper's
// implementation, port generalization uses single ports or the static
// registered/ephemeral ranges, and prefixes step through a fixed ladder;
// the paper notes the same limitation when discussing Figure 14.
package autofocus

import (
	"fmt"
	"sort"
	"sync"

	"microscope/internal/packet"
)

// Item is one weighted observation.
type Item struct {
	Flow packet.FiveTuple
	// NF is the component instance ("fw2", "source").
	NF string
	// Kind is the component type ("fw"), enabling instance→type rollup.
	Kind   string
	Weight float64
}

// PortRange is an inclusive port interval. Lo==0 && Hi==65535 means any.
type PortRange struct {
	Lo, Hi uint16
}

// Contains reports whether p falls inside the range.
func (r PortRange) Contains(p uint16) bool { return p >= r.Lo && p <= r.Hi }

// Any reports whether the range covers all ports.
func (r PortRange) Any() bool { return r.Lo == 0 && r.Hi == 65535 }

// String renders the range as the paper's listings do.
func (r PortRange) String() string {
	if r.Any() {
		return "*"
	}
	if r.Lo == r.Hi {
		return fmt.Sprintf("%d", r.Lo)
	}
	return fmt.Sprintf("%d-%d", r.Lo, r.Hi)
}

// FlowAgg is a flow aggregate: prefixes, port ranges, and a protocol set
// (single protocol or any).
type FlowAgg struct {
	SrcPrefix uint32
	SrcLen    uint8
	DstPrefix uint32
	DstLen    uint8
	SrcPort   PortRange
	DstPort   PortRange
	Proto     int16 // -1 = any
}

// Matches reports whether a concrete tuple falls inside the aggregate.
func (a FlowAgg) Matches(ft packet.FiveTuple) bool {
	if a.SrcLen > 0 && ft.SrcIP>>(32-a.SrcLen) != a.SrcPrefix>>(32-a.SrcLen) {
		return false
	}
	if a.DstLen > 0 && ft.DstIP>>(32-a.DstLen) != a.DstPrefix>>(32-a.DstLen) {
		return false
	}
	if !a.SrcPort.Contains(ft.SrcPort) || !a.DstPort.Contains(ft.DstPort) {
		return false
	}
	if a.Proto >= 0 && uint8(a.Proto) != ft.Proto {
		return false
	}
	return true
}

// String renders "srcPrefix dstPrefix proto sport dport" like Figure 14.
func (a FlowAgg) String() string {
	return fmt.Sprintf("%s %s %s %s %s",
		prefixString(a.SrcPrefix, a.SrcLen), prefixString(a.DstPrefix, a.DstLen),
		protoString(a.Proto), a.SrcPort, a.DstPort)
}

func prefixString(p uint32, l uint8) string {
	if l == 0 {
		return "*"
	}
	return fmt.Sprintf("%s/%d", packet.IPString(maskPrefix(p, l)), l)
}

func protoString(p int16) string {
	if p < 0 {
		return "*"
	}
	return fmt.Sprintf("%d", p)
}

func maskPrefix(ip uint32, l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ip &^ (1<<(32-uint32(l)) - 1)
}

// NFAgg is an NF aggregate: a specific instance, all instances of a type,
// or any component.
type NFAgg struct {
	Name string // instance, "" when aggregated
	Kind string // type, "" when fully general
}

// Any reports whether the aggregate covers every component.
func (a NFAgg) Any() bool { return a.Name == "" && a.Kind == "" }

// String implements fmt.Stringer.
func (a NFAgg) String() string {
	switch {
	case a.Name != "":
		return a.Name
	case a.Kind != "":
		return a.Kind + "*"
	default:
		return "*"
	}
}

// Pattern is one reported aggregate.
type Pattern struct {
	Flow FlowAgg
	NF   NFAgg
	// Weight is the residual weight this pattern explains (not counting
	// weight already attributed to more specific reported patterns).
	Weight float64
	// Leaves is how many distinct exact items contributed.
	Leaves int
}

// String implements fmt.Stringer.
func (p Pattern) String() string {
	return fmt.Sprintf("%s %s: %.1f", p.Flow, p.NF, p.Weight)
}

// prefix generalization ladders (most→least specific).
var prefixLens = [...]uint8{32, 24, 16, 8, 0}

// portRangesFor returns the generalization ladder of a concrete port:
// exact, its static side of the registered/ephemeral split, any.
func portRangesFor(p uint16) [3]PortRange {
	static := PortRange{1024, 65535}
	if p < 1024 {
		static = PortRange{0, 1023}
	}
	return [3]PortRange{{p, p}, static, {0, 65535}}
}

// Config tunes aggregation.
type Config struct {
	// Threshold is the fraction of total weight an aggregate must
	// explain to be reported (the paper's th, default 0.01).
	Threshold float64
	// MaxPatterns caps the report size (0 = unlimited).
	MaxPatterns int
	// Cache memoizes leaf lattice expansions across Aggregate calls.
	// Callers that aggregate many overlapping item sets (the two-phase
	// pattern pipeline does) should share one.
	Cache *Cache
	// Scratch, when non-nil, is a caller-owned workspace reused across
	// calls instead of a pool round-trip per call. A worker that issues
	// many Aggregate calls (the pattern pipeline's per-group fan-outs)
	// should hold one for its whole run. Never share one Scratch between
	// concurrent calls.
	Scratch *Scratch
}

// Cache memoizes the generalization lattice of leaves across calls. It is
// safe for concurrent use: the parallel pattern pipeline shares one cache
// across simultaneous Aggregate calls. Entries are pure functions of the
// key, so a lost race at worst recomputes a value, never corrupts one.
type Cache struct {
	mu sync.RWMutex
	m  map[cacheKey][]genAgg
}

type cacheKey struct {
	flow packet.FiveTuple
	nf   string
	kind string
}

// NewCache creates an empty expansion cache.
func NewCache() *Cache { return &Cache{m: make(map[cacheKey][]genAgg)} }

func (c *Cache) expansions(lf *leaf) []genAgg {
	k := cacheKey{flow: lf.flow, nf: lf.nf, kind: lf.kind}
	c.mu.RLock()
	g, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return g
	}
	g = generalizations(lf, nil)
	c.mu.Lock()
	if prev, ok := c.m[k]; ok {
		g = prev // keep the published slice so all callers share one
	} else {
		c.m[k] = g
	}
	c.mu.Unlock()
	return g
}

func (c *Config) setDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
}

// leaf is a grouped exact item.
type leaf struct {
	flow     packet.FiveTuple
	nf, kind string
	weight   float64
	consumed float64
}

type aggKey struct {
	flow FlowAgg
	nf   NFAgg
}

type leafKey struct {
	flow packet.FiveTuple
	nf   string
}

// clusterInfo is one lattice cell with members stored as an [off, off+n)
// span of the scratch arena.
type clusterInfo struct {
	key        aggKey
	generality int
	total      float64
	off, n     int32
}

// aggScratch holds the per-call workspace of Aggregate. The maps and
// slices are reused across calls (via aggPool), so a steady stream of
// aggregations — the two-phase pattern pipeline issues thousands —
// allocates only on high-water-mark growth.
type aggScratch struct {
	leafIdx  map[leafKey]int32
	leaves   []leaf
	index    map[aggKey]int32
	clusters []clusterInfo
	// arena backs all member lists; cursor tracks per-cluster fill.
	arena  []int32
	cursor []int32
	// exps caches per-leaf lattice expansions within the call (shared
	// Cache slices); genBuf serves the uncached path.
	exps   [][]genAgg
	genBuf []genAgg
}

// Scratch is an exported handle on the Aggregate workspace, for callers
// that want one long-lived workspace per worker instead of per-call pool
// traffic (see Config.Scratch).
type Scratch struct {
	s aggScratch
}

var aggPool = sync.Pool{New: func() any {
	return &Scratch{s: aggScratch{
		leafIdx: make(map[leafKey]int32),
		index:   make(map[aggKey]int32),
	}}
}}

// GetScratch takes a workspace from the shared pool. Ownership transfers to
// the caller until PutScratch; each Aggregate call resets it before use.
func GetScratch() *Scratch {
	//mslint:allow poolreset ownership transfers to the caller across many Aggregate calls; Aggregate resets before each use and PutScratch returns it
	return aggPool.Get().(*Scratch)
}

// PutScratch returns a workspace to the pool.
func PutScratch(s *Scratch) { aggPool.Put(s) }

func (sc *aggScratch) reset() {
	clear(sc.leafIdx)
	clear(sc.index)
	sc.leaves = sc.leaves[:0]
	sc.clusters = sc.clusters[:0]
	sc.exps = sc.exps[:0]
}

// Aggregate runs the hierarchical heavy-hitter search and returns patterns
// sorted by descending residual weight (most significant first), most
// specific first among equals.
func Aggregate(items []Item, cfg Config) []Pattern {
	cfg.setDefaults()
	if len(items) == 0 {
		return nil
	}
	scr := cfg.Scratch
	if scr == nil {
		//mslint:allow poolreset reset happens below via sc.reset() on the inner aggScratch
		scr = aggPool.Get().(*Scratch)
		defer aggPool.Put(scr)
	}
	sc := &scr.s
	sc.reset()

	// Group identical observations into leaves.
	var total float64
	for _, it := range items {
		total += it.Weight
		k := leafKey{it.Flow, it.NF}
		if i, ok := sc.leafIdx[k]; ok {
			sc.leaves[i].weight += it.Weight
			continue
		}
		sc.leafIdx[k] = int32(len(sc.leaves))
		sc.leaves = append(sc.leaves, leaf{flow: it.Flow, nf: it.NF, kind: it.Kind, weight: it.Weight})
	}
	if total <= 0 {
		return nil
	}
	minW := cfg.Threshold * total
	leaves := sc.leaves

	// Pass 1: enumerate every aggregate each leaf belongs to, counting
	// members per cell so the membership arena is sized exactly.
	membership := 0
	for li := range leaves {
		lf := &leaves[li]
		var exp []genAgg
		if cfg.Cache != nil {
			exp = cfg.Cache.expansions(lf)
			sc.exps = append(sc.exps, exp)
		} else {
			sc.genBuf = generalizations(lf, sc.genBuf[:0])
			exp = sc.genBuf
		}
		membership += len(exp)
		for _, agg := range exp {
			ci, ok := sc.index[agg.key]
			if !ok {
				ci = int32(len(sc.clusters))
				sc.index[agg.key] = ci
				sc.clusters = append(sc.clusters, clusterInfo{key: agg.key, generality: agg.generality})
			}
			sc.clusters[ci].n++
			sc.clusters[ci].total += lf.weight
		}
	}

	// Pass 2: lay member lists out in one flat arena. Fill order matches
	// pass 1 (leaf order within each cell), so reporting below walks
	// members in the same order the old per-cluster appends produced.
	if cap(sc.arena) < membership {
		sc.arena = make([]int32, membership)
	}
	arena := sc.arena[:membership]
	if cap(sc.cursor) < len(sc.clusters) {
		sc.cursor = make([]int32, len(sc.clusters))
	}
	cursor := sc.cursor[:len(sc.clusters)]
	off := int32(0)
	for ci := range sc.clusters {
		sc.clusters[ci].off = off
		cursor[ci] = off
		off += sc.clusters[ci].n
	}
	for li := range leaves {
		var exp []genAgg
		if cfg.Cache != nil {
			exp = sc.exps[li]
		} else {
			sc.genBuf = generalizations(&leaves[li], sc.genBuf[:0])
			exp = sc.genBuf
		}
		for _, agg := range exp {
			ci := sc.index[agg.key]
			arena[cursor[ci]] = int32(li)
			cursor[ci]++
		}
	}

	// Prune clusters that can never be reported: residual weight never
	// exceeds total member weight, so total < minW is a safe exact
	// filter — and it shrinks the sort set by orders of magnitude on
	// realistic inputs.
	kept := sc.clusters[:0]
	for i := range sc.clusters {
		if sc.clusters[i].total >= minW {
			kept = append(kept, sc.clusters[i])
		}
	}
	clusters := kept

	// Order clusters most-specific first; deterministic tiebreak.
	sort.Slice(clusters, func(i, j int) bool {
		if clusters[i].generality != clusters[j].generality {
			return clusters[i].generality < clusters[j].generality
		}
		return aggKeyLess(clusters[i].key, clusters[j].key)
	})

	// Greedy residual reporting: a cluster is reported when its
	// unconsumed member weight crosses the threshold; reporting consumes
	// that weight so ancestors only count what remains.
	var out []Pattern
	for i := range clusters {
		ci := &clusters[i]
		members := arena[ci.off : ci.off+ci.n]
		var residual float64
		for _, li := range members {
			residual += leaves[li].weight - leaves[li].consumed
		}
		if residual < minW {
			continue
		}
		contributing := 0
		for _, li := range members {
			if leaves[li].weight > leaves[li].consumed {
				contributing++
			}
			leaves[li].consumed = leaves[li].weight
		}
		out = append(out, Pattern{Flow: ci.key.flow, NF: ci.key.nf, Weight: residual, Leaves: contributing})
	}
	// Total order: weight desc, then the canonical aggregate-key order, so
	// the ranking never depends on the (already deterministic) cluster
	// traversal order above.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return aggKeyLess(aggKey{flow: out[i].Flow, nf: out[i].NF}, aggKey{flow: out[j].Flow, nf: out[j].NF})
	})
	if cfg.MaxPatterns > 0 && len(out) > cfg.MaxPatterns {
		out = out[:cfg.MaxPatterns]
	}
	return out
}

type genAgg struct {
	key        aggKey
	generality int
}

// generalizations appends the aggregate lattice cells of a leaf to dst.
func generalizations(lf *leaf, dst []genAgg) []genAgg {
	srcPorts := portRangesFor(lf.flow.SrcPort)
	dstPorts := portRangesFor(lf.flow.DstPort)
	nfs := [...]NFAgg{{Name: lf.nf, Kind: lf.kind}, {Kind: lf.kind}, {}}
	protos := [...]int16{int16(lf.flow.Proto), -1}

	out := dst
	for si, sl := range prefixLens {
		for di, dl := range prefixLens {
			for spi, sp := range srcPorts {
				for dpi, dp := range dstPorts {
					for pi, pr := range protos {
						for ni, nf := range nfs {
							out = append(out, genAgg{
								key: aggKey{
									flow: FlowAgg{
										SrcPrefix: maskPrefix(lf.flow.SrcIP, sl),
										SrcLen:    sl,
										DstPrefix: maskPrefix(lf.flow.DstIP, dl),
										DstLen:    dl,
										SrcPort:   sp,
										DstPort:   dp,
										Proto:     pr,
									},
									nf: nf,
								},
								generality: si + di + spi + dpi + pi + ni,
							})
						}
					}
				}
			}
		}
	}
	return out
}

func aggKeyLess(a, b aggKey) bool {
	af, bf := a.flow, b.flow
	switch {
	case af.SrcPrefix != bf.SrcPrefix:
		return af.SrcPrefix < bf.SrcPrefix
	case af.SrcLen != bf.SrcLen:
		return af.SrcLen > bf.SrcLen
	case af.DstPrefix != bf.DstPrefix:
		return af.DstPrefix < bf.DstPrefix
	case af.DstLen != bf.DstLen:
		return af.DstLen > bf.DstLen
	case af.SrcPort != bf.SrcPort:
		return af.SrcPort.Lo < bf.SrcPort.Lo || (af.SrcPort.Lo == bf.SrcPort.Lo && af.SrcPort.Hi < bf.SrcPort.Hi)
	case af.DstPort != bf.DstPort:
		return af.DstPort.Lo < bf.DstPort.Lo || (af.DstPort.Lo == bf.DstPort.Lo && af.DstPort.Hi < bf.DstPort.Hi)
	case af.Proto != bf.Proto:
		return af.Proto < bf.Proto
	case a.nf.Name != b.nf.Name:
		return a.nf.Name < b.nf.Name
	default:
		return a.nf.Kind < b.nf.Kind
	}
}
