package simtime

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1500)
	if got := tm.Add(500); got != 2000 {
		t.Errorf("Add: got %d, want 2000", got)
	}
	if got := tm.Sub(Time(500)); got != 1000 {
		t.Errorf("Sub: got %d, want 1000", got)
	}
	if !tm.Before(2000) || tm.Before(1000) {
		t.Error("Before misbehaves")
	}
	if !tm.After(1000) || tm.After(2000) {
		t.Error("After misbehaves")
	}
}

func TestUnitConversions(t *testing.T) {
	tm := Time(2_500_000) // 2.5 ms
	if got := tm.Micros(); got != 2500 {
		t.Errorf("Micros: got %v, want 2500", got)
	}
	if got := tm.Millis(); got != 2.5 {
		t.Errorf("Millis: got %v, want 2.5", got)
	}
	if got := Time(Second).Seconds(); got != 1 {
		t.Errorf("Seconds: got %v, want 1", got)
	}
	if got := FromMicros(3.5); got != 3500 {
		t.Errorf("FromMicros: got %d, want 3500", got)
	}
	if got := FromSeconds(0.001); got != Duration(Millisecond) {
		t.Errorf("FromSeconds: got %d, want 1ms", got)
	}
}

func TestRateInterval(t *testing.T) {
	r := MPPS(1) // 1 packet per microsecond
	if got := r.Interval(); got != Duration(Microsecond) {
		t.Errorf("Interval: got %v, want 1us", got)
	}
	if got := PPS(0).Interval(); got != Duration(Never) {
		t.Errorf("zero rate interval: got %v, want Never", got)
	}
	if got := Rate(-5).Interval(); got != Duration(Never) {
		t.Errorf("negative rate interval: got %v, want Never", got)
	}
}

func TestRatePackets(t *testing.T) {
	r := MPPS(2)
	if got := r.Packets(Duration(Millisecond)); got != 2000 {
		t.Errorf("Packets: got %d, want 2000", got)
	}
	if got := r.Packets(-1); got != 0 {
		t.Errorf("Packets negative duration: got %d, want 0", got)
	}
	if got := r.PacketsF(Duration(500 * Microsecond)); got != 1000 {
		t.Errorf("PacketsF: got %v, want 1000", got)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if MinDur(3, 5) != 3 || MaxDur(3, 5) != 5 {
		t.Error("MinDur/MaxDur wrong")
	}
}

func TestStrings(t *testing.T) {
	if got := Time(1500).String(); got != "1.500us" {
		t.Errorf("Time.String: got %q", got)
	}
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String: got %q", got)
	}
	if got := MPPS(1.2).String(); got != "1.200Mpps" {
		t.Errorf("Rate.String: got %q", got)
	}
	if got := PPS(500).String(); got != "500pps" {
		t.Errorf("Rate.String small: got %q", got)
	}
}

func TestRateIntervalRoundTrip(t *testing.T) {
	// Property: for the rates NFs run at (<= 10 Mpps, i.e. intervals of
	// 100ns or more), Interval() * rate ≈ 1 second. Above that the 1ns
	// quantization alone exceeds 1%.
	f := func(mpps uint8) bool {
		r := MPPS(float64(mpps%10) + 0.1)
		iv := r.Interval()
		total := float64(iv) * r.PPS()
		return total > 0.99*float64(Second) && total < 1.01*float64(Second)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(base int32, delta int32) bool {
		tm := Time(base)
		d := Duration(delta)
		return tm.Add(d).Sub(tm) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
