// Package simtime provides the simulated clock used throughout the
// repository. All timestamps are integer nanoseconds since the start of a
// simulation run, which keeps the event engine deterministic and free of
// floating-point drift, and makes microsecond-scale reasoning (the paper's
// operating regime) exact.
package simtime

import (
	"fmt"
	"time"
)

// Time is a simulated timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a simulated time span in nanoseconds.
type Duration int64

// Common durations, mirroring the time package so that call sites read
// naturally (e.g. 500*simtime.Microsecond).
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Zero is the simulation epoch.
const Zero Time = 0

// Never is a sentinel far in the future, used for "no deadline".
const Never Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the timestamp as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the timestamp in microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the timestamp in milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Std converts t to a time.Duration offset (for formatting only).
func (t Time) Std() time.Duration { return time.Duration(t) }

// String renders the timestamp with microsecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.3fus", t.Micros())
}

// Seconds returns the duration as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration in microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns the duration in milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// String renders the duration with microsecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Micros()) }

// FromSeconds converts fractional seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// FromMicros converts fractional microseconds to a Duration.
func FromMicros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinDur returns the smaller of a and b.
func MinDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the larger of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Rate describes a packet rate and converts between packets/second and the
// per-packet service interval used by the event engine.
type Rate float64

// PPS constructs a Rate from packets per second.
func PPS(pps float64) Rate { return Rate(pps) }

// MPPS constructs a Rate from millions of packets per second.
func MPPS(mpps float64) Rate { return Rate(mpps * 1e6) }

// Interval returns the per-packet service time at this rate. A zero or
// negative rate yields Never-like huge interval to make misconfiguration
// loud rather than divide-by-zero quiet.
func (r Rate) Interval() Duration {
	if r <= 0 {
		return Duration(Never)
	}
	return Duration(float64(Second)/float64(r) + 0.5)
}

// PPS returns the rate in packets per second.
func (r Rate) PPS() float64 { return float64(r) }

// Packets returns how many packets this rate processes in d, rounded down.
func (r Rate) Packets(d Duration) int64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	return int64(float64(r) * d.Seconds())
}

// PacketsF returns the fractional packet count this rate processes in d.
func (r Rate) PacketsF(d Duration) float64 {
	if d <= 0 || r <= 0 {
		return 0
	}
	return float64(r) * d.Seconds()
}

// String renders the rate in Mpps when large, pps otherwise.
func (r Rate) String() string {
	if r >= 1e6 {
		return fmt.Sprintf("%.3fMpps", float64(r)/1e6)
	}
	return fmt.Sprintf("%.0fpps", float64(r))
}
