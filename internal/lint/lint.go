// Package lint assembles Microscope's static-analysis suite: custom
// analyzers that reject whole classes of determinism, layout and
// observability regressions at `make check` time, before any trace is
// replayed. See DESIGN.md §"Static analysis" for the invariant each
// analyzer protects.
package lint

import (
	"microscope/internal/lint/analysis"
	"microscope/internal/lint/compid"
	"microscope/internal/lint/containment"
	"microscope/internal/lint/ctxflow"
	"microscope/internal/lint/determinism"
	"microscope/internal/lint/epochstamp"
	"microscope/internal/lint/golifetime"
	"microscope/internal/lint/lockorder"
	"microscope/internal/lint/obssafe"
	"microscope/internal/lint/poolreset"
	"microscope/internal/lint/sorttotal"
	"microscope/internal/lint/specconfig"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		compid.Analyzer,
		containment.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		epochstamp.Analyzer,
		golifetime.Analyzer,
		lockorder.Analyzer,
		obssafe.Analyzer,
		poolreset.Analyzer,
		sorttotal.Analyzer,
		specconfig.Analyzer,
	}
}
