// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) for Microscope's in-tree lint suite. The container this repo
// builds in is hermetic — no module proxy — so the x/tools framework is
// re-implemented here on the standard library (go/ast, go/types) instead
// of vendored. Analyzers written against this API follow the upstream
// shape: a Run function receives a type-checked package via *Pass and
// reports position-anchored diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"microscope/internal/lint/callgraph"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mslint:allow comments. Lower-case, no spaces.
	Name string
	// Aliases are extra names accepted in //mslint:allow comments
	// (e.g. "nondet" for the determinism analyzer).
	Aliases []string
	// Doc is a one-paragraph description: the invariant protected and
	// why it matters.
	Doc string
	// NeedsProgram marks an interprocedural analyzer: the driver builds
	// one callgraph.Program over every loaded package (summaries
	// propagated to fixpoint) and shares it across the per-package
	// passes via Pass.Prog.
	NeedsProgram bool
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program call graph, set when the analyzer
	// declares NeedsProgram. It spans every package of the driver run,
	// so interprocedural facts (a callee three packages away blocks, a
	// channel is closed by another package) resolve; per-package
	// fixtures see a single-package program.
	Prog *callgraph.Program

	// Report receives each diagnostic. The driver installs a collector
	// here; analyzers call Reportf instead of using it directly.
	Report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// ImportsPathSuffix reports whether the package directly imports a package
// whose import path is path or ends with "/"+path. Suffix matching lets
// analyzer gates ("polices packages that can see tracestore") work for
// both the real module paths and analysistest fixtures.
func (p *Pass) ImportsPathSuffix(path string) bool {
	if p.Pkg == nil {
		return false
	}
	for _, imp := range p.Pkg.Imports() {
		ip := imp.Path()
		if ip == path || strings.HasSuffix(ip, "/"+path) {
			return true
		}
	}
	return false
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Position token.Position
	Message  string
}

// String renders the conventional "file:line:col: message (analyzer)"
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// CalleeFunc resolves the called function or method of call, or nil when
// the callee is not a static function (e.g. a call through a func value
// that cannot be traced to a declaration, or a type conversion).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(fun.Sel)
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function (or method —
// any func object) named name declared in the package with import path
// pkgPath.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// NamedFrom reports whether t (after dereferencing one pointer level) is
// the named type name declared in a package whose path is pkgPath or ends
// with "/"+pkgPath.
func NamedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	ip := obj.Pkg().Path()
	return ip == pkgPath || strings.HasSuffix(ip, "/"+pkgPath)
}
