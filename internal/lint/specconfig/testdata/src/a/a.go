// Package a is the specconfig analyzer fixture: library code reaching
// for the command line or the environment instead of explicit config.
package a

import (
	"flag"
	"os"
)

// Config is how a library package should take its knobs.
type Config struct {
	Threshold float64
	TraceDir  string
}

var threshold = flag.Float64("threshold", 0.01, "nope") // want `flag\.Float64 in library package`

func parseArgs() {
	fs := flag.NewFlagSet("lib", flag.ContinueOnError) // want `flag\.NewFlagSet in library package`
	dir := fs.String("dir", "", "nope")                // want `flag\.String in library package`
	fs.Parse(os.Args[1:])                              // want `flag\.Parse in library package`
	_, _ = dir, threshold
}

func fromEnv() Config {
	c := Config{TraceDir: os.Getenv("MS_TRACE_DIR")} // want `os\.Getenv in library package`
	if v, ok := os.LookupEnv("MS_THRESHOLD"); ok {   // want `os\.LookupEnv in library package`
		_ = v
	}
	for range os.Environ() { // want `os\.Environ in library package`
	}
	_ = os.ExpandEnv("$HOME/trace") // want `os\.ExpandEnv in library package`
	return c
}

//mslint:allow specconfig test-only escape hatch documented in the helper
var debugEnv = os.Getenv("MS_DEBUG")

// Plain os use that is not environment state stays legal.
func fileIO(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return f.Close()
}
