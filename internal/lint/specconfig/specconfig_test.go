package specconfig_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/specconfig"
)

func TestSpecConfig(t *testing.T) {
	analysistest.Run(t, specconfig.Analyzer, "a")
}
