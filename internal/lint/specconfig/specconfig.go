// Package specconfig enforces the configuration-boundary contract that
// the declarative pipeline spec introduced: library packages are
// configured by data (spec documents, Options, Config structs), never by
// ambient process state. Only binaries under cmd/ parse the command line
// and the environment; an internal package that reaches for flag.* or
// os.Getenv acquires configuration the serving tier cannot express in a
// tenant spec, cannot validate, and cannot isolate between tenants.
//
// The analyzer flags, in every non-main package:
//   - any call into the flag package (flag.String, flag.Parse,
//     flag.NewFlagSet, FlagSet methods, ...);
//   - environment reads: os.Getenv, os.LookupEnv, os.Environ,
//     os.ExpandEnv.
//
// Genuine exceptions (a test helper gated on an env toggle, say) carry
// an //mslint:allow specconfig annotation with a reason.
package specconfig

import (
	"go/ast"

	"microscope/internal/lint/analysis"
)

// Analyzer is the configuration-boundary checker.
var Analyzer = &analysis.Analyzer{
	Name: "specconfig",
	Doc: "flags flag.* and os.Getenv use outside cmd/ binaries; library " +
		"packages are configured through specs/Options, not ambient process state",
	Run: run,
}

// envFuncs are the os functions that read ambient environment state.
var envFuncs = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
	"ExpandEnv": true,
}

func run(pass *analysis.Pass) error {
	// Binaries own the process boundary: they parse flags and the
	// environment and hand the result to libraries as explicit config.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	if !pass.ImportsPathSuffix("flag") && !pass.ImportsPathSuffix("os") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "flag":
				pass.Reportf(call.Pos(),
					"flag.%s in library package %s: only cmd/ binaries parse the command line; take the value via a spec or Config field", fn.Name(), pass.Pkg.Path())
			case "os":
				if envFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"os.%s in library package %s: only cmd/ binaries read the environment; take the value via a spec or Config field", fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
