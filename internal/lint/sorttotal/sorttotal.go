// Package sorttotal flags sort.Slice calls whose less function is not a
// total order. sort.Slice is unstable: elements that compare equal keep
// the order they arrived in, and in Microscope arrival order varies with
// the worker count, so a comparator with ties yields different — equally
// "sorted" — outputs for Workers=1 vs 8. PR 2 audited every comparator to
// a total order; this analyzer keeps it that way.
//
// A less function is accepted when it:
//   - has a tie-break chain (any if statement or || / && composition),
//   - delegates to a named comparator (return f(...)),
//   - compares whole slice elements of basic type (equal elements are
//     indistinguishable, so tie order cannot be observed), or
//   - compares a projection whose name marks it unique (id, idx, index,
//     seq, key).
//
// sort.SliceStable is exempt: stability itself makes tie order
// deterministic given deterministic input order. Float projections are
// still flagged under sort.Slice since x < y is not a total order in the
// presence of NaN and float ties are common (scores).
package sorttotal

import (
	"go/ast"
	"go/types"
	"regexp"

	"microscope/internal/lint/analysis"
)

// Analyzer is the total-order comparator checker.
var Analyzer = &analysis.Analyzer{
	Name: "sorttotal",
	Doc: "flags sort.Slice comparators without a tie-break chain: unstable sort " +
		"plus ties makes output depend on arrival order (worker count)",
	Run: run,
}

// uniqueName matches projection names conventionally unique within the
// sorted slice (map keys, dense indices).
var uniqueName = regexp.MustCompile(`(?i)^(id|ids|idx|index|seq|key|keys)$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if !analysis.IsPkgFunc(fn, "sort", "Slice") || len(call.Args) != 2 {
				return true
			}
			less, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkLess(pass, call.Args[0], less)
			return true
		})
	}
	return nil
}

// checkLess inspects a func-literal comparator passed to sort.Slice.
func checkLess(pass *analysis.Pass, slice ast.Expr, less *ast.FuncLit) {
	// Any multi-statement body, if statement, or boolean composition is
	// taken as a tie-break chain.
	if len(less.Body.List) != 1 {
		return
	}
	ret, ok := less.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok {
		// return someLess(a, b): delegated comparator, assumed total.
		return
	}
	switch cmp.Op.String() {
	case "<", ">", "<=", ">=":
	default:
		return // ||, &&, ==: composed or not an order at all
	}

	// Comparing the whole element (xs[i] < xs[j]) of basic type: ties
	// are identical values, so any tie order is observationally equal.
	if isWholeElement(cmp.X) && isWholeElement(cmp.Y) {
		return
	}

	if t := pass.TypeOf(cmp.X); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			pass.Reportf(cmp.Pos(),
				"sort.Slice comparator orders by a single float key: ties (and NaN) make unstable sort output depend on input order; add an equality branch and a tie-break chain")
			return
		}
	}
	if name := projectionName(cmp.X); name != "" && uniqueName.MatchString(name) {
		return
	}
	pass.Reportf(cmp.Pos(),
		"sort.Slice comparator orders by a single key: if the key is not unique, unstable sort output depends on input order; add a tie-break chain, use sort.SliceStable, or annotate why the key is unique")
}

// isWholeElement reports whether e is a plain index expression xs[i] of
// basic element type: the comparison then sees the entire element.
func isWholeElement(e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	_, isIdent := ast.Unparen(ix.X).(*ast.Ident)
	if !isIdent {
		// Allow one selector level (s.ids[i]) too.
		_, isSel := ast.Unparen(ix.X).(*ast.SelectorExpr)
		if !isSel {
			return false
		}
	}
	_, isIdx := ast.Unparen(ix.Index).(*ast.Ident)
	return isIdx
}

// projectionName extracts the final selector name of a compared
// projection like xs[i].Score or keys[i].comp — or "" when the expression
// has no selector (calls, arithmetic, ...).
func projectionName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return projectionName(e.X)
	}
	return ""
}
