package sorttotal_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/sorttotal"
)

func TestSortTotal(t *testing.T) {
	analysistest.Run(t, sorttotal.Analyzer, "a")
}
