// Package a is the sorttotal analyzer fixture: comparators with and
// without total orders.
package a

import "sort"

type el struct {
	Score float64
	Name  string
	ID    int
}

func badFloat(xs []el) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Score > xs[j].Score }) // want `single float key`
}

func badSingle(xs []el) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Name < xs[j].Name }) // want `single key`
}

func okChain(xs []el) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return xs[i].Name < xs[j].Name
	})
}

func okStable(xs []el) {
	// Stability makes tie order deterministic given deterministic input.
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].Score > xs[j].Score })
}

func okWholeElement(xs []int) {
	// Equal elements are indistinguishable; tie order is unobservable.
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func okUniqueKey(xs []el) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].ID < xs[j].ID })
}

func lessEl(a, b el) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Name < b.Name
}

func okDelegated(xs []el) {
	sort.Slice(xs, func(i, j int) bool { return lessEl(xs[i], xs[j]) })
}

func okAllowed(xs []el) {
	//mslint:allow sorttotal fixture: Name is unique by construction here
	sort.Slice(xs, func(i, j int) bool { return xs[i].Name < xs[j].Name })
}
