// Fixture for lockorder: a seeded two-mutex deadlock (a/b acquired in
// both orders), locks held across channel ops, Waits, dynamic callbacks,
// blocking callees, re-entrant helpers — and the non-blocking shapes that
// must stay silent.
package a

import "sync"

type S struct {
	a    sync.Mutex
	b    sync.Mutex
	mu   sync.Mutex
	hook func()
	ch   chan int
	wg   sync.WaitGroup
}

// lockAB and lockBA together seed the classic AB/BA deadlock.
func (s *S) lockAB() {
	s.a.Lock()
	s.b.Lock() // want `lock order cycle: S\.b acquired while S\.a is held`
	s.b.Unlock()
	s.a.Unlock()
}

func (s *S) lockBA() {
	s.b.Lock()
	s.a.Lock() // want `lock order cycle: S\.a acquired while S\.b is held`
	s.a.Unlock()
	s.b.Unlock()
}

// nestedCycle closes the same cycle across a call: the callee acquires b
// while the caller holds a.
func (s *S) acquireB() {
	s.b.Lock()
	s.b.Unlock()
}

func (s *S) nestedCycle() {
	s.a.Lock()
	s.acquireB() // want `lock order cycle: call to a\.S\.acquireB acquires S\.b while S\.a is held`
	s.a.Unlock()
}

func (s *S) sendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want `lock S\.mu held across channel send`
	s.mu.Unlock()
}

func (s *S) waitHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait() // want `lock S\.mu held across sync\.WaitGroup\.Wait`
}

func (s *S) callbackHeld() {
	s.mu.Lock()
	s.hook() // want `lock S\.mu held across dynamic call s\.hook`
	s.mu.Unlock()
}

func (s *S) recvOne() int {
	return <-s.ch
}

func (s *S) callBlockingHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recvOne() // want `lock S\.mu held across call to a\.S\.recvOne, which may block`
}

func (s *S) lockMu() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) reenter() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lockMu() // want `possible self-deadlock: call to a\.S\.lockMu re-acquires S\.mu`
}

// tryEnqueue is non-blocking under the lock: select with default. Silent.
func (s *S) tryEnqueue(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// branchRelease unlocks on every branch before blocking. Silent: the
// held-set merge sees the lock released on all fall-through paths.
func (s *S) branchRelease(v int) {
	s.mu.Lock()
	if v > 0 {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.ch <- v
}

// single holds one lock over pure computation. Silent.
func (s *S) single() int {
	s.a.Lock()
	defer s.a.Unlock()
	return 1
}
