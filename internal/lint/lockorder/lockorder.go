// Package lockorder derives a global mutex-acquisition order graph from
// the call-graph summaries and reports order inversions (potential
// deadlocks) plus any lock held across an operation that can stall it:
// a channel op, a Wait, a dynamic hook/callback invocation, or a callee
// that may block.
//
// Lock identity is the lockdep-style class abstraction from
// callgraph.memberKey: every instance of a struct type shares one lock
// class, so an A→B order in one function and B→A in another collide even
// when the concrete instances differ. That is deliberate — instance-level
// reasoning is out of reach without SSA — and it means a reported cycle is
// "these two classes are acquired in both orders somewhere", which is the
// invariant worth keeping even when today's instances happen to be
// disjoint.
package lockorder

import (
	"microscope/internal/lint/analysis"
	"microscope/internal/lint/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:    "lockorder",
	Aliases: []string{"deadlock"},
	Doc: "report mutex acquisition-order cycles and locks held across " +
		"blocking operations, Waits, or dynamic callbacks — the deadlock " +
		"shapes a single-function analyzer cannot see",
	NeedsProgram: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	prog := pass.Prog
	g := prog.Cache("lockorder.graph", func() any { return buildGraph(prog) }).(*graph)
	for _, n := range prog.PkgNodes(pass.Pkg) {
		s := &n.Summary
		for _, e := range s.OrderEdges {
			if g.reaches(e.To, e.From) {
				pass.Reportf(e.Site,
					"lock order cycle: %s acquired while %s is held, and the opposite order occurs elsewhere",
					prog.KeyName(e.To), prog.KeyName(e.From))
			}
		}
		for _, hb := range s.HeldBlocks {
			pass.Reportf(hb.Site, "%s held across %s", lockNoun(prog, hb.Held), hb.Op)
		}
		for _, hc := range s.HeldCalls {
			if hc.Callback {
				pass.Reportf(hc.Site,
					"%s held across dynamic call %s (a callback may block or re-enter the lock)",
					lockNoun(prog, hc.Held), hc.Desc)
				continue
			}
			if hc.Callee == nil {
				continue
			}
			cs := &hc.Callee.Summary
			for _, from := range hc.Held {
				for _, to := range cs.Acquires {
					if to == from {
						pass.Reportf(hc.Site,
							"possible self-deadlock: call to %s re-acquires %s, already held",
							hc.Desc, prog.KeyName(to))
						continue
					}
					if g.reaches(to, from) {
						pass.Reportf(hc.Site,
							"lock order cycle: call to %s acquires %s while %s is held, and the opposite order occurs elsewhere",
							hc.Desc, prog.KeyName(to), prog.KeyName(from))
					}
				}
			}
			if cs.Blocking {
				pass.Reportf(hc.Site, "%s held across call to %s, which may block",
					lockNoun(prog, hc.Held), hc.Desc)
			}
		}
	}
	return nil
}

func lockNoun(prog *callgraph.Program, held []string) string {
	if len(held) == 1 {
		return "lock " + prog.KeyName(held[0])
	}
	return "locks " + prog.KeyNames(held)
}

// graph is the program-wide acquired-while-held relation over lock keys:
// an edge From→To for every site where To is acquired with From held,
// whether in one body (OrderEdges) or across a call (a held call whose
// callee transitively acquires To).
type graph struct {
	succ map[string][]string
}

func buildGraph(prog *callgraph.Program) *graph {
	g := &graph{succ: map[string][]string{}}
	seen := map[[2]string]bool{}
	add := func(from, to string) {
		if from == to || seen[[2]string{from, to}] {
			return
		}
		seen[[2]string{from, to}] = true
		g.succ[from] = append(g.succ[from], to)
	}
	for _, n := range prog.Nodes() {
		for _, e := range n.Summary.OrderEdges {
			add(e.From, e.To)
		}
		for _, hc := range n.Summary.HeldCalls {
			if hc.Callee == nil {
				continue
			}
			for _, from := range hc.Held {
				for _, to := range hc.Callee.Summary.Acquires {
					add(from, to)
				}
			}
		}
	}
	return g
}

// reaches reports whether to is reachable from from over order edges.
func (g *graph) reaches(from, to string) bool {
	if from == to {
		return true
	}
	visited := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.succ[cur] {
			if next == to {
				return true
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}
