package lockorder_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "a")
}
