// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the in-tree framework.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ and are plain Go
// packages (they must type-check; they may import the standard library
// and module packages such as microscope/internal/obs). A line expecting
// diagnostics carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// with one quoted or backquoted regexp per expected diagnostic on that
// line. Diagnostics produced by the driver itself (malformed
// //mslint:allow comments, analyzer name "mslint") participate in
// matching too, so fixtures can cover the suppression path end to end.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"microscope/internal/lint/analysis"
	"microscope/internal/lint/driver"
	"microscope/internal/lint/loader"
)

// wantRx extracts the quoted regexps of a want comment.
var wantRx = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkg> relative to the test's directory, applies
// the analyzer, and reports every mismatch between produced diagnostics
// and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	p, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := driver.RunPackage(p, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants, err := collectWants(p)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		key := posKey{filepath.Base(d.Position.Filename), d.Position.Line}
		exps := wants[key]
		found := false
		for _, e := range exps {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", d.Position, d.Message, d.Analyzer)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.raw)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

func collectWants(p *loader.Package) (map[posKey][]*expectation, error) {
	wants := map[posKey][]*expectation{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := posKey{filepath.Base(pos.Filename), pos.Line}
				for _, m := range wantRx.FindAllStringSubmatch(body, -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants[key] = append(wants[key], &expectation{rx: rx, raw: raw})
				}
			}
		}
	}
	return wants, nil
}
