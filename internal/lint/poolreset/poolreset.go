// Package poolreset checks sync.Pool discipline in the pooled-scratch
// pattern PR 3 introduced: every value taken with Get must be (a) reset —
// before use or on the way back in — and (b) returned with Put in the
// same function (directly, deferred, or via a put-helper that owns both
// steps). A Get without a Put leaks warm scratch and silently degrades
// the pool to plain allocation; a Get without a reset lets one victim's
// diagnosis read another's leftover accumulators, which is both wrong and
// nondeterministic under pool reuse.
//
// Accepted reset evidence for a value v: v.reset()/v.Reset() calls,
// clear(v.f), truncating re-slices v.f = v.f[:0] (including through
// append(v.f[:0], ...)), or passing v to a helper whose name starts with
// put/free/release/recycle (reset-on-put). Put evidence: pool.Put(v) —
// possibly deferred — or the same put-helper call.
package poolreset

import (
	"go/ast"
	"go/types"
	"regexp"

	"microscope/internal/lint/analysis"
)

// Analyzer is the pooled-scratch discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolreset",
	Doc: "flags sync.Pool.Get values that are never reset or never Put back " +
		"in the same function",
	Run: run,
}

var putHelper = regexp.MustCompile(`(?i)^(put|free|release|recycle)`)
var resetName = regexp.MustCompile(`(?i)reset`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc inspects one function body for Get sites bound directly in it
// (nested func literals are their own functions).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			call := unwrapGet(pass, rhs)
			if call == nil {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(call.Pos(), "sync.Pool.Get result must be bound to a variable so reset and Put can be verified")
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			hasPut, hasReset := evidence(pass, body, obj)
			switch {
			case !hasPut && !hasReset:
				pass.Reportf(call.Pos(), "pooled value %s is neither reset nor Put back: reset its state and return it to the pool on every path", id.Name)
			case !hasPut:
				pass.Reportf(call.Pos(), "pooled value %s is never Put back to the pool in this function: the pool degrades to plain allocation", id.Name)
			case !hasReset:
				pass.Reportf(call.Pos(), "pooled value %s is never reset: recycled scratch leaks state between uses", id.Name)
			}
		}
	})
	// An unbound Get used as an expression (e.g. use(p.Get().(*T)))
	// can never be Put back.
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolGet(pass, call) {
			return
		}
		if !boundByParent(body, call) {
			pass.Reportf(call.Pos(), "sync.Pool.Get result must be bound to a variable so reset and Put can be verified")
		}
	})
}

// evidence scans the whole function body (nested literals included, so
// deferred closures count) for Put and reset proof about obj.
func evidence(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (hasPut, hasReset bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, _ := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			switch {
			case sel != nil && sel.Sel.Name == "Put" && isPool(pass, sel.X) && argRefs(pass, n, obj):
				hasPut = true
			case sel != nil && resetName.MatchString(sel.Sel.Name) && refersTo(pass, sel.X, obj):
				hasReset = true
			case sel != nil && sel.Sel.Name == "Clear" && refersTo(pass, sel.X, obj):
				hasReset = true
			default:
				if name := calleeName(n); name != "" && argRefs(pass, n, obj) {
					if putHelper.MatchString(name) {
						hasPut, hasReset = true, true // reset-on-put helper
					} else if resetName.MatchString(name) {
						hasReset = true
					}
				}
				// clear(v.f)
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "clear" && argRefs(pass, n, obj) {
					hasReset = true
				}
			}
		case *ast.AssignStmt:
			// v.f = v.f[:0] or v.f = append(v.f[:0], ...): truncating
			// re-slice of the pooled value's own field.
			for _, lhs := range n.Lhs {
				if fieldOf(pass, lhs, obj) {
					if truncates(pass, n, obj) {
						hasReset = true
					}
				}
			}
		}
		return true
	})
	return hasPut, hasReset
}

// truncates reports whether the assignment's RHSes contain a [:0]-style
// re-slice of a field of obj.
func truncates(pass *analysis.Pass, as *ast.AssignStmt, obj types.Object) bool {
	found := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			sl, ok := n.(*ast.SliceExpr)
			if !ok {
				return true
			}
			if fieldOf(pass, sl.X, obj) && isZero(sl.High) {
				found = true
			}
			return !found
		})
	}
	return found
}

func isZero(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// fieldOf reports whether e is obj or a selector chain rooted at obj.
func fieldOf(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.ObjectOf(x) == obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

func refersTo(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	return fieldOf(pass, e, obj)
}

func argRefs(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if fieldOf(pass, a, obj) {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// unwrapGet returns the pool Get call when rhs is pool.Get() or
// pool.Get().(*T), else nil.
func unwrapGet(pass *analysis.Pass, rhs ast.Expr) *ast.CallExpr {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || !isPoolGet(pass, call) {
		return nil
	}
	return call
}

func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	return isPool(pass, sel.X)
}

func isPool(pass *analysis.Pass, e ast.Expr) bool {
	return analysis.NamedFrom(pass.TypeOf(e), "sync", "Pool")
}

// boundByParent reports whether the Get call is the (possibly
// type-asserted) RHS of an assignment somewhere in body.
func boundByParent(body *ast.BlockStmt, call *ast.CallExpr) bool {
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			e := ast.Unparen(rhs)
			if ta, ok := e.(*ast.TypeAssertExpr); ok {
				e = ast.Unparen(ta.X)
			}
			if e == call {
				bound = true
			}
		}
		return !bound
	})
	return bound
}

// walkShallow visits every node in body without descending into nested
// function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
