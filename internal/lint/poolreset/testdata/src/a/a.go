// Package a is the poolreset analyzer fixture: sync.Pool scratch with
// and without reset/Put discipline.
package a

import "sync"

type scratch struct {
	buf []byte
	n   int
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) reset() {
	s.buf = s.buf[:0]
	s.n = 0
}

func putScratch(s *scratch) {
	s.reset()
	pool.Put(s)
}

func okResetThenDeferPut() {
	s := pool.Get().(*scratch)
	s.reset()
	defer pool.Put(s)
	s.n++
}

func okTruncatingReslice() {
	s := pool.Get().(*scratch)
	s.buf = s.buf[:0]
	s.buf = append(s.buf, 1)
	pool.Put(s)
}

func okDeferredClosure() {
	s := pool.Get().(*scratch)
	defer func() {
		s.reset()
		pool.Put(s)
	}()
	s.n++
}

func okPutHelper() {
	s := pool.Get().(*scratch)
	defer putScratch(s)
	s.n++
}

func badNeither() {
	s := pool.Get().(*scratch) // want `neither reset nor Put back`
	s.n++
}

func badNoPut() {
	s := pool.Get().(*scratch) // want `never Put back to the pool`
	s.reset()
	s.n = 1
}

func badNoReset() {
	s := pool.Get().(*scratch) // want `never reset: recycled scratch leaks state`
	s.n++
	pool.Put(s)
}

func badUnbound() {
	use(pool.Get().(*scratch)) // want `must be bound to a variable`
}

func use(s *scratch) { _ = s }

func allowedHandoff() {
	//mslint:allow poolreset fixture: ownership transfers to the caller
	s := pool.Get().(*scratch)
	s.reset()
	use(s)
}
