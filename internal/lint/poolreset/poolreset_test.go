package poolreset_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/poolreset"
)

func TestPoolReset(t *testing.T) {
	analysistest.Run(t, poolreset.Analyzer, "a")
}
