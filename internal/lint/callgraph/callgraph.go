// Package callgraph is the whole-program layer under mslint's
// interprocedural analyzers (lockorder, golifetime, ctxflow). It builds a
// call graph over every package the loader parsed from source — function
// declarations plus every function literal, linked by static calls, go
// spawns, defers, literal-argument edges, and conservative interface
// dispatch — and attaches a per-function Summary (locks acquired and held
// at call sites, blocking channel operations, goroutines spawned, context
// cancellation signals received, channels closed) propagated to a fixpoint
// across the edges.
//
// Like the rest of internal/lint it is stdlib-only (go/ast + go/types); no
// SSA, no x/tools. The abstractions are deliberately coarse and the
// direction of every approximation is chosen per use: properties that
// *suppress* findings (a reachable ctx.Done() select, WaitGroup
// accounting) are over-approximated, properties that *produce* findings
// (lock-order edges, blocking ops under a lock) come only from shapes the
// walker can prove, so a finding is worth reading. The known soundness
// caveats are documented in DESIGN.md §13:
//
//   - Function identity is keyed by (package path, receiver type name,
//     name) strings, not object pointers: the loader type-checks each root
//     package from source while its importers see export data, so the same
//     function is represented by distinct types.Func objects. String keys
//     unify them.
//   - Interface dispatch is conservative: a call through a module-internal
//     interface method grows edges to every loaded concrete method with
//     the same name and compatible signature. Calls through stdlib
//     interfaces (io.Writer, context.Context, ...) grow no edges.
//   - Lock and channel identity is go/types field identity (all instances
//     of a struct type share one lock class, as in kernel lockdep), which
//     both enables cross-function order checking and conflates distinct
//     instances of the same type.
//   - Reflection and unresolved function values are invisible; analyzers
//     treat an unresolved callee as "unknown", never as "safe".
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"microscope/internal/lint/loader"
)

// EdgeKind classifies how control may flow from caller to callee.
type EdgeKind int

const (
	// KindCall is an ordinary static call.
	KindCall EdgeKind = iota
	// KindGo is a go-statement spawn: the callee runs concurrently, so
	// blocking does not propagate back across this edge.
	KindGo
	// KindDefer is a deferred call (runs at function exit).
	KindDefer
	// KindFuncArg marks a function literal that appears inside this
	// function (as a call argument, composite literal field, return
	// value, ...): the enclosing function may cause it to run, so
	// summary bits flow across the edge conservatively.
	KindFuncArg
	// KindDynamic is a conservative interface-dispatch edge to one
	// possible implementer.
	KindDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindGo:
		return "go"
	case KindDefer:
		return "defer"
	case KindFuncArg:
		return "funcarg"
	case KindDynamic:
		return "dynamic"
	}
	return "unknown"
}

// Edge is one caller→callee link.
type Edge struct {
	Kind   EdgeKind
	Site   token.Pos
	Callee *Node
}

// Spawn records one go statement in a function body.
type Spawn struct {
	Site token.Pos
	// Callee is the spawned function when the walker could resolve it (a
	// function literal, a static function or method, a method value, or a
	// local variable bound to one of those); nil when the goroutine runs
	// through a dynamic function value.
	Callee *Node
	// Desc renders the spawned expression for diagnostics.
	Desc string
}

// Node is one function in the program: a declared function or method, or
// a function literal.
type Node struct {
	// Key is the stable cross-package identity (see package doc).
	Key string
	// Name is the human-readable form used in diagnostics.
	Name string
	Pkg  *loader.Package
	// Decl is set for declared functions, Lit for literals.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Sig  *types.Signature
	Body *ast.BlockStmt

	Calls  []Edge
	Spawns []Spawn

	Summary Summary
}

// Pos is the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// Program is the whole-program view shared by every analyzer pass of one
// driver run.
type Program struct {
	Fset *token.FileSet
	// nodes in deterministic construction order (packages sorted by
	// import path, files and declarations in source order, literals in
	// walk order).
	nodes  []*Node
	byKey  map[string]*Node
	byPkg  map[*types.Package][]*Node
	closed map[string]bool // channel keys some loaded function closes
	// keyNames maps member keys (locks, channels) to short display names
	// for diagnostics.
	keyNames map[string]string

	// methodsByName indexes loaded concrete methods for conservative
	// interface dispatch.
	methodsByName map[string][]*Node

	cacheMu sync.Mutex
	cache   map[string]any
}

// Nodes returns every function in deterministic order.
func (p *Program) Nodes() []*Node { return p.nodes }

// PkgNodes returns the functions declared in pkg (including literals
// nested in them), in deterministic order.
func (p *Program) PkgNodes(pkg *types.Package) []*Node { return p.byPkg[pkg] }

// NodeByFunc resolves a types.Func (from any type-checking universe of
// this load) to its node, or nil when its body was not loaded from
// source.
func (p *Program) NodeByFunc(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return p.byKey[funcKey(fn)]
}

// NodeByKey resolves a node by its stable key, or nil.
func (p *Program) NodeByKey(key string) *Node { return p.byKey[key] }

// ChanCloses reports whether some loaded function closes the channel
// identified by key.
func (p *Program) ChanCloses(key string) bool { return p.closed[key] }

// KeyName renders a lock/channel member key for diagnostics.
func (p *Program) KeyName(key string) string {
	if n, ok := p.keyNames[key]; ok {
		return n
	}
	return key
}

// KeyNames renders a list of member keys for diagnostics.
func (p *Program) KeyNames(keys []string) string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = p.KeyName(k)
	}
	return strings.Join(out, ", ")
}

// Cache memoizes whole-program computations (e.g. lockorder's global
// order graph) across the per-package analyzer passes of one run.
func (p *Program) Cache(key string, build func() any) any {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if v, ok := p.cache[key]; ok {
		return v
	}
	//mslint:allow lockorder single-flight memoization: build must run under the lock, and builders only read the immutable program
	v := build()
	p.cache[key] = v
	return v
}

// Build constructs the program over the loaded packages and computes
// every summary to fixpoint.
func Build(pkgs []*loader.Package) *Program {
	p := &Program{
		byKey:         map[string]*Node{},
		byPkg:         map[*types.Package][]*Node{},
		closed:        map[string]bool{},
		keyNames:      map[string]string{},
		methodsByName: map[string][]*Node{},
		cache:         map[string]any{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	// Pass 1: a node per declared function, so cross-package calls
	// resolve regardless of processing order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{
					Key:  funcKey(fn),
					Name: prettyName(fn),
					Pkg:  pkg,
					Decl: fd,
					Sig:  fn.Type().(*types.Signature),
					Body: fd.Body,
				}
				if prev := p.byKey[n.Key]; prev != nil {
					// Build-tag twins or redeclaration: keep the first,
					// deterministically.
					continue
				}
				p.addNode(n)
				if recv := n.Sig.Recv(); recv != nil {
					if _, isIface := recv.Type().Underlying().(*types.Interface); !isIface {
						p.methodsByName[fn.Name()] = append(p.methodsByName[fn.Name()], n)
					}
				}
			}
		}
	}
	// Pass 2: walk every declared body, creating literal nodes and edges
	// and collecting direct summary facts.
	for _, n := range append([]*Node(nil), p.nodes...) {
		w := &fnWalker{prog: p, pkg: n.Pkg, node: n, bindings: map[types.Object]*Node{}}
		w.walkBody()
	}
	// Pass 3: propagate summaries to fixpoint.
	p.computeSummaries()
	return p
}

func (p *Program) addNode(n *Node) {
	p.nodes = append(p.nodes, n)
	p.byKey[n.Key] = n
	p.byPkg[n.Pkg.Types] = append(p.byPkg[n.Pkg.Types], n)
}

// funcKey derives the stable identity of a declared function or method.
// The loader type-checks each root package from source while importers of
// that package read export data, so the same function appears as distinct
// *types.Func objects; this string form unifies them.
func funcKey(fn *types.Func) string {
	path := "_"
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return path + "." + recvTypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	return path + "." + fn.Name()
}

func prettyName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = shortPath(fn.Pkg().Path()) + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + recvTypeName(sig.Recv().Type()) + "." + fn.Name()
	}
	return pkg + fn.Name()
}

// shortPath trims the module prefix for readable diagnostics.
func shortPath(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func recvTypeName(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return "interface"
	}
	return t.String()
}

// isStdlibPath reports whether an import path is standard library (no dot
// in the first path element, the usual go/build heuristic).
func isStdlibPath(path string) bool {
	first := path
	if i := strings.Index(path, "/"); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".") && !strings.HasPrefix(path, "testdata")
}

// implementers resolves a call through a module-internal interface method
// to every loaded concrete method with the same name and a compatible
// signature (parameter/result shapes compared as fully-qualified strings,
// receiver excluded — types.Identical is unusable across the loader's
// per-package type-checking universes).
func (p *Program) implementers(iface *types.Func) []*Node {
	want := signatureShape(iface.Type().(*types.Signature))
	var out []*Node
	for _, cand := range p.methodsByName[iface.Name()] {
		if signatureShape(cand.Sig) == want {
			out = append(out, cand)
		}
	}
	return out
}

// signatureShape renders a signature's parameters and results with full
// package-path qualification, ignoring the receiver, so structurally
// identical methods from different type-check universes compare equal.
func signatureShape(sig *types.Signature) string {
	qual := func(pkg *types.Package) string { return pkg.Path() }
	var b strings.Builder
	tuple := func(t *types.Tuple) {
		b.WriteByte('(')
		for i := 0; i < t.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(types.TypeString(t.At(i).Type(), qual))
		}
		b.WriteByte(')')
	}
	tuple(sig.Params())
	tuple(sig.Results())
	if sig.Variadic() {
		b.WriteString("...")
	}
	return b.String()
}

// exprString renders a short form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.FuncLit:
		return "func literal"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	}
	return fmt.Sprintf("%T", e)
}

// sortedKeys returns the keys of a string-keyed set in sorted order (map
// iteration order must never reach diagnostics).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
