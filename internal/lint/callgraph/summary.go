// Per-function summaries: one body walk collects the direct facts each
// interprocedural analyzer consumes — lock acquisition order, blocking
// channel operations performed while a lock is held, goroutine spawns,
// cancellation signals received, channels closed — and a fixpoint pass
// propagates the transitive bits (Blocking, TermSignal, WGDone,
// UnboundedLoop, Acquires) across call edges.
//
// The walker tracks the held-lock set in statement order: straight-line
// Lock/Unlock pairs update it in place, nested control flow (branches,
// loops, select clauses) is walked with a copy and the fall-through set is
// the union of the branch exit sets — a branch ending in `return` does not
// fall through and contributes nothing, and non-exhaustive branching (an
// `if` without `else`, a `switch`/`select` body that may not run) keeps
// the incoming set too. So `if cond { mu.Unlock(); return }` leaves the
// lock held afterwards, while a select whose every clause unlocks releases
// it. `defer mu.Unlock()` keeps the lock in the held set for the rest of
// the body, which is exactly the window the order and held-across checks
// care about.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"microscope/internal/lint/loader"
)

// Summary is one function's analysis facts. The Held*/Order/Recv fields
// are direct (this body only); the boolean/set fields are transitive
// after Build returns.
type Summary struct {
	// Blocking: the function may block on a channel operation, a select
	// without default, a range over a channel, or sync.WaitGroup.Wait /
	// sync.Cond.Wait — directly or via a (non-go) callee.
	Blocking bool
	// TermSignal: the function receives from ctx.Done() or from a
	// channel some loaded function closes — a provable termination path
	// for a goroutine running it.
	TermSignal bool
	// WGDone: the function calls sync.WaitGroup.Done, i.e. it is
	// accounted to a WaitGroup join.
	WGDone bool
	// UnboundedLoop: the function contains a loop with no structural
	// bound (`for {}`, `for cond {}`, or a range over a channel).
	// Three-clause counting loops and ranges over data are treated as
	// bounded — a deliberate under-approximation so golifetime findings
	// stay high-signal.
	UnboundedLoop bool
	// Acquires is the set of lock keys the function may acquire,
	// directly or via callees, sorted.
	Acquires []string

	// Direct records, for lockorder:
	OrderEdges []OrderEdge
	HeldCalls  []HeldCall
	HeldBlocks []HeldBlock

	// Direct signal facts, resolved against the global close set:
	RecvCtxDone bool
	RecvChans   []string
	ClosesChans []string

	acquiresSet map[string]bool
}

// OrderEdge records "To acquired while From was held" at Site (the
// acquisition of To).
type OrderEdge struct {
	From, To string
	Site     token.Pos
}

// HeldCall records a call made while at least one lock was held.
type HeldCall struct {
	Site token.Pos
	Held []string
	// Callee is the resolved target; nil means the call went through a
	// dynamic function value (a callback or hook).
	Callee *Node
	// Desc renders the call for diagnostics.
	Desc string
	// Callback marks a call through a func-typed value (field, param,
	// variable) that could not be resolved statically.
	Callback bool
}

// HeldBlock records a direct blocking operation performed while at least
// one lock was held.
type HeldBlock struct {
	Site token.Pos
	Held []string
	Op   string
}

// held is the ordered set of lock keys currently held during the walk.
type held struct {
	keys []string
}

func (h *held) copyOf() *held { return &held{keys: append([]string(nil), h.keys...)} }

func (h *held) add(k string) {
	for _, have := range h.keys {
		if have == k {
			return
		}
	}
	h.keys = append(h.keys, k)
}

func (h *held) remove(k string) {
	for i, have := range h.keys {
		if have == k {
			h.keys = append(h.keys[:i], h.keys[i+1:]...)
			return
		}
	}
}

func (h *held) snapshot() []string { return append([]string(nil), h.keys...) }

// fnWalker walks one function body, collecting direct summary facts and
// creating nodes for nested function literals.
type fnWalker struct {
	prog *Program
	pkg  *loader.Package
	node *Node
	// bindings maps local variables to the function value they were
	// assigned (a literal, a static function, or a method value), so
	// `f := t.run; go f()` resolves.
	bindings map[types.Object]*Node
	litN     int
}

func (w *fnWalker) walkBody() {
	if w.node.Body == nil {
		return
	}
	h := &held{}
	w.stmts(w.node.Body.List, h)
}

func (w *fnWalker) stmts(list []ast.Stmt, h *held) {
	for _, s := range list {
		w.stmt(s, h)
	}
}

func (w *fnWalker) stmt(s ast.Stmt, h *held) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(st.X, h)
	case *ast.SendStmt:
		w.expr(st.Chan, h)
		w.expr(st.Value, h)
		w.blockingOp(st.Arrow, "channel send", h)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs, h)
		}
		for _, lhs := range st.Lhs {
			w.expr(lhs, h)
		}
		w.captureBindings(st.Lhs, st.Rhs)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, h)
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.captureBindings(lhs, vs.Values)
			}
		}
	case *ast.GoStmt:
		w.goStmt(st, h)
	case *ast.DeferStmt:
		w.deferStmt(st, h)
	case *ast.SelectStmt:
		w.selectStmt(st, h)
	case *ast.RangeStmt:
		w.expr(st.X, h)
		if t := w.pkg.Info.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.node.Summary.UnboundedLoop = true
				w.recvFrom(st.X)
				w.blockingOp(st.For, "range over channel", h)
			}
		}
		body := h.copyOf()
		w.stmts(st.Body.List, body)
		w.mergeExits(h, true, branchExit(body, st.Body.List))
	case *ast.ForStmt:
		w.stmt(st.Init, h)
		// `for {}` and `for cond {}` have no structural bound; the
		// classic three-clause counting loop is treated as bounded.
		if !isThreeClause(st) {
			w.node.Summary.UnboundedLoop = true
		}
		if st.Cond != nil {
			w.expr(st.Cond, h)
		}
		body := h.copyOf()
		w.stmts(st.Body.List, body)
		w.stmt(st.Post, body)
		w.mergeExits(h, true, branchExit(body, st.Body.List))
	case *ast.IfStmt:
		w.stmt(st.Init, h)
		w.expr(st.Cond, h)
		then := h.copyOf()
		w.stmts(st.Body.List, then)
		exits := []*held{branchExit(then, st.Body.List)}
		if st.Else != nil {
			els := h.copyOf()
			w.stmt(st.Else, els)
			elseList := []ast.Stmt{st.Else}
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				elseList = blk.List
			}
			exits = append(exits, branchExit(els, elseList))
		}
		w.mergeExits(h, st.Else == nil, exits...)
	case *ast.SwitchStmt:
		w.stmt(st.Init, h)
		if st.Tag != nil {
			w.expr(st.Tag, h)
		}
		exhaustive := false
		var exits []*held
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				exhaustive = true
			}
			branch := h.copyOf()
			for _, e := range cc.List {
				w.expr(e, branch)
			}
			w.stmts(cc.Body, branch)
			exits = append(exits, branchExit(branch, cc.Body))
		}
		w.mergeExits(h, !exhaustive, exits...)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, h)
		w.stmt(st.Assign, h)
		exhaustive := false
		var exits []*held
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				exhaustive = true
			}
			branch := h.copyOf()
			w.stmts(cc.Body, branch)
			exits = append(exits, branchExit(branch, cc.Body))
		}
		w.mergeExits(h, !exhaustive, exits...)
	case *ast.BlockStmt:
		w.stmts(st.List, h)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, h)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, h)
		}
	case *ast.IncDecStmt:
		w.expr(st.X, h)
	}
}

// isThreeClause reports the classic bounded counting loop
// `for i := 0; i < n; i++`.
func isThreeClause(st *ast.ForStmt) bool {
	return st.Init != nil && st.Cond != nil && st.Post != nil
}

// branchExit converts a walked branch copy into its fall-through exit
// set: nil when the branch ends in a return and so never falls through.
func branchExit(b *held, list []ast.Stmt) *held {
	if len(list) > 0 {
		if _, ok := list[len(list)-1].(*ast.ReturnStmt); ok {
			return nil
		}
	}
	return b
}

// mergeExits replaces h with the union of the surviving branch exit sets;
// withOriginal additionally keeps h's incoming keys (non-exhaustive
// branching — the statement may not run any branch). When every branch
// returns and the branching was exhaustive, h is left unchanged: the code
// after it is unreachable.
func (w *fnWalker) mergeExits(h *held, withOriginal bool, exits ...*held) {
	merged := &held{}
	if withOriginal {
		for _, k := range h.keys {
			merged.add(k)
		}
	}
	any := withOriginal
	for _, e := range exits {
		if e == nil {
			continue
		}
		any = true
		for _, k := range e.keys {
			merged.add(k)
		}
	}
	if !any {
		return
	}
	h.keys = merged.keys
}

// selectStmt: a select without a default commits to blocking; the comm
// clauses still contribute their signal receives either way.
func (w *fnWalker) selectStmt(st *ast.SelectStmt, h *held) {
	hasDefault := false
	for _, c := range st.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.blockingOp(st.Select, "select", h)
	}
	var exits []*held
	for _, c := range st.Body.List {
		cc := c.(*ast.CommClause)
		branch := h.copyOf()
		switch comm := cc.Comm.(type) {
		case nil:
		case *ast.SendStmt:
			w.expr(comm.Chan, branch)
			w.expr(comm.Value, branch)
		case *ast.ExprStmt:
			w.commRecv(comm.X, branch)
		case *ast.AssignStmt:
			for _, rhs := range comm.Rhs {
				w.commRecv(rhs, branch)
			}
		}
		w.stmts(cc.Body, branch)
		exits = append(exits, branchExit(branch, cc.Body))
	}
	// A select executes exactly one clause (or blocks forever), so the
	// merge is exhaustive.
	w.mergeExits(h, false, exits...)
}

// commRecv handles the `<-ch` of a select comm clause without counting it
// as an independent blocking op (the select already did).
func (w *fnWalker) commRecv(e ast.Expr, h *held) {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		w.recvFrom(u.X)
		w.expr(u.X, h)
		return
	}
	w.expr(e, h)
}

func (w *fnWalker) goStmt(st *ast.GoStmt, h *held) {
	callee, desc := w.resolveFuncValue(st.Call.Fun)
	if callee != nil {
		w.node.Calls = append(w.node.Calls, Edge{Kind: KindGo, Site: st.Go, Callee: callee})
	}
	w.node.Spawns = append(w.node.Spawns, Spawn{Site: st.Go, Callee: callee, Desc: desc})
	for _, a := range st.Call.Args {
		w.expr(a, h)
	}
	if _, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); !ok {
		w.exprShallow(st.Call.Fun, h)
	}
}

func (w *fnWalker) deferStmt(st *ast.DeferStmt, h *held) {
	call := st.Call
	if key, op := w.lockOp(call); key != "" {
		// `defer mu.Unlock()` releases at return: the lock stays in the
		// held set for the remainder of the body, which is the window the
		// checks care about. A (rare) `defer mu.Lock()` is ignored.
		_ = op
		for _, a := range call.Args {
			w.expr(a, h)
		}
		return
	}
	if w.closeCall(call) {
		return
	}
	if w.syncCall(call, st.Defer, &held{}) {
		return
	}
	if callee, _ := w.resolveFuncValue(call.Fun); callee != nil {
		w.node.Calls = append(w.node.Calls, Edge{Kind: KindDefer, Site: st.Defer, Callee: callee})
	}
	for _, a := range call.Args {
		w.expr(a, h)
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); !ok {
		w.exprShallow(call.Fun, h)
	}
}

// captureBindings records `f := <func value>` so later `f()` / `go f()`
// resolve. Only whole-identifier single assignments are tracked.
func (w *fnWalker) captureBindings(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pkg.Info.Defs[id]
		if obj == nil {
			obj = w.pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if target, _ := w.resolveFuncValue(rhs[i]); target != nil {
			w.bindings[obj] = target
		}
	}
}

// resolveFuncValue resolves an expression used as a function value: a
// literal (creating its node), a static function or method (including a
// method value), or a bound local variable. Returns nil for anything
// dynamic.
func (w *fnWalker) resolveFuncValue(e ast.Expr) (*Node, string) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.FuncLit:
		return w.litNode(x), "func literal"
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[x]; obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				return w.prog.NodeByFunc(fn), x.Name
			}
			if n := w.bindings[obj]; n != nil {
				return n, x.Name
			}
		}
		return nil, x.Name
	case *ast.SelectorExpr:
		if fn, ok := w.pkg.Info.Uses[x.Sel].(*types.Func); ok {
			return w.prog.NodeByFunc(fn), exprString(x)
		}
		return nil, exprString(x)
	}
	return nil, exprString(e)
}

// litNode creates (once) the node for a function literal and walks its
// body with a fresh held set; the parent gets a KindFuncArg edge so the
// literal's summary flows into the parent's transitive bits.
func (w *fnWalker) litNode(lit *ast.FuncLit) *Node {
	w.litN++
	sig, _ := w.pkg.Info.TypeOf(lit).(*types.Signature)
	n := &Node{
		Key:  w.node.Key + "$" + itoa(w.litN),
		Name: w.node.Name + "$" + itoa(w.litN),
		Pkg:  w.pkg,
		Lit:  lit,
		Sig:  sig,
		Body: lit.Body,
	}
	w.prog.addNode(n)
	child := &fnWalker{prog: w.prog, pkg: w.pkg, node: n, bindings: w.bindings}
	child.walkBody()
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// expr walks an expression, dispatching calls, receives, and literals.
func (w *fnWalker) expr(e ast.Expr, h *held) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(x, h)
	case *ast.FuncLit:
		n := w.litNode(x)
		w.node.Calls = append(w.node.Calls, Edge{Kind: KindFuncArg, Site: x.Pos(), Callee: n})
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			w.recvFrom(x.X)
			w.blockingOp(x.OpPos, "channel receive", h)
		}
		w.expr(x.X, h)
	case *ast.ParenExpr:
		w.expr(x.X, h)
	case *ast.SelectorExpr:
		w.expr(x.X, h)
	case *ast.BinaryExpr:
		w.expr(x.X, h)
		w.expr(x.Y, h)
	case *ast.IndexExpr:
		w.expr(x.X, h)
		w.expr(x.Index, h)
	case *ast.IndexListExpr:
		w.expr(x.X, h)
	case *ast.SliceExpr:
		w.expr(x.X, h)
		w.expr(x.Low, h)
		w.expr(x.High, h)
		w.expr(x.Max, h)
	case *ast.StarExpr:
		w.expr(x.X, h)
	case *ast.TypeAssertExpr:
		w.expr(x.X, h)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.expr(el, h)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Value, h)
	}
}

// exprShallow walks only the receiver chain of a call target (for go/defer
// targets whose call itself was handled specially).
func (w *fnWalker) exprShallow(e ast.Expr, h *held) {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		w.expr(sel.X, h)
	}
}

// call is the central dispatcher: close(), Lock/Unlock family, sync
// Wait/Done, static calls, interface dispatch, literal invocation, bound
// locals, and dynamic callbacks.
func (w *fnWalker) call(call *ast.CallExpr, h *held) {
	if w.closeCall(call) {
		return
	}
	if key, op := w.lockOp(call); key != "" {
		if op == "lock" {
			for _, from := range h.keys {
				w.node.Summary.OrderEdges = append(w.node.Summary.OrderEdges,
					OrderEdge{From: from, To: key, Site: call.Pos()})
			}
			h.add(key)
			if w.node.Summary.acquiresSet == nil {
				w.node.Summary.acquiresSet = map[string]bool{}
			}
			w.node.Summary.acquiresSet[key] = true
		} else {
			h.remove(key)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.expr(sel.X, h)
		}
		return
	}
	if w.syncCall(call, call.Pos(), h) {
		return
	}

	fun := ast.Unparen(call.Fun)
	var staticFn *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		obj := w.pkg.Info.Uses[f]
		switch o := obj.(type) {
		case *types.Func:
			staticFn = o
		case *types.Builtin, *types.TypeName:
			w.walkArgs(call, h)
			return
		default:
			if o != nil {
				if bound := w.bindings[o]; bound != nil {
					w.addCall(bound, call.Pos(), h, f.Name)
					w.walkArgs(call, h)
					return
				}
				if _, isVar := o.(*types.Var); isVar {
					w.dynamicCall(call.Pos(), h, f.Name)
					w.walkArgs(call, h)
					return
				}
			}
			w.walkArgs(call, h)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := w.pkg.Info.Uses[f.Sel].(*types.Func); ok {
			staticFn = fn
		} else if v, ok := w.pkg.Info.Uses[f.Sel].(*types.Var); ok {
			// Call through a func-typed field: a hook/callback.
			_ = v
			w.dynamicCall(call.Pos(), h, exprString(f))
			w.expr(f.X, h)
			w.walkArgs(call, h)
			return
		}
		w.expr(f.X, h)
	case *ast.FuncLit:
		n := w.litNode(f)
		w.addCall(n, call.Pos(), h, "func literal")
		w.walkArgs(call, h)
		return
	default:
		// Conversion or computed function value.
		w.expr(fun, h)
		w.walkArgs(call, h)
		return
	}

	if staticFn == nil {
		w.walkArgs(call, h)
		return
	}
	if recv := recvOf(staticFn); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			// Interface dispatch: conservative edges to loaded
			// implementers, but only for module-internal interfaces —
			// stdlib interfaces (io.Writer, context.Context, ...) would
			// drag in every same-named method.
			if staticFn.Pkg() != nil && !isStdlibPath(staticFn.Pkg().Path()) {
				for _, impl := range w.prog.implementers(staticFn) {
					w.node.Calls = append(w.node.Calls, Edge{Kind: KindDynamic, Site: call.Pos(), Callee: impl})
				}
			}
			w.walkArgs(call, h)
			return
		}
	}
	if n := w.prog.NodeByFunc(staticFn); n != nil {
		w.addCall(n, call.Pos(), h, prettyName(staticFn))
	}
	w.walkArgs(call, h)
}

func (w *fnWalker) walkArgs(call *ast.CallExpr, h *held) {
	for _, a := range call.Args {
		w.expr(a, h)
	}
}

func (w *fnWalker) addCall(callee *Node, site token.Pos, h *held, desc string) {
	w.node.Calls = append(w.node.Calls, Edge{Kind: KindCall, Site: site, Callee: callee})
	if len(h.keys) > 0 {
		w.node.Summary.HeldCalls = append(w.node.Summary.HeldCalls, HeldCall{
			Site: site, Held: h.snapshot(), Callee: callee, Desc: desc,
		})
	}
}

func (w *fnWalker) dynamicCall(site token.Pos, h *held, desc string) {
	if len(h.keys) > 0 {
		w.node.Summary.HeldCalls = append(w.node.Summary.HeldCalls, HeldCall{
			Site: site, Held: h.snapshot(), Desc: desc, Callback: true,
		})
	}
}

func (w *fnWalker) blockingOp(site token.Pos, op string, h *held) {
	w.node.Summary.Blocking = true
	if len(h.keys) > 0 {
		w.node.Summary.HeldBlocks = append(w.node.Summary.HeldBlocks, HeldBlock{
			Site: site, Held: h.snapshot(), Op: op,
		})
	}
}

// recvFrom records the identity of a received-from channel, including the
// ctx.Done() shape.
func (w *fnWalker) recvFrom(ch ast.Expr) {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				w.node.Summary.RecvCtxDone = true
				return
			}
		}
		return
	}
	if key, ok := w.memberKey(ch); ok {
		w.node.Summary.RecvChans = append(w.node.Summary.RecvChans, key)
	}
}

// closeCall records close(ch) and reports whether call was one.
func (w *fnWalker) closeCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	if _, builtin := w.pkg.Info.Uses[id].(*types.Builtin); !builtin {
		return false
	}
	if len(call.Args) == 1 {
		if key, ok := w.memberKey(call.Args[0]); ok {
			w.node.Summary.ClosesChans = append(w.node.Summary.ClosesChans, key)
		}
	}
	return true
}

// lockOp classifies a call as a sync mutex acquire/release and returns
// the lock key. TryLock is ignored: it cannot deadlock.
func (w *fnWalker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", ""
	}
	k, ok := w.memberKey(sel.X)
	if !ok {
		return "", ""
	}
	return k, op
}

// syncCall handles the remaining sync-package shapes: WaitGroup.Wait and
// Cond.Wait block; WaitGroup.Done accounts the goroutine.
func (w *fnWalker) syncCall(call *ast.CallExpr, site token.Pos, h *held) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Wait":
		w.blockingOp(site, "sync."+recvTypeName(recvOf(fn).Type())+".Wait", h)
		w.expr(sel.X, h)
		return true
	case "Done":
		if recvTypeName(recvOf(fn).Type()) == "WaitGroup" {
			w.node.Summary.WGDone = true
		}
		w.expr(sel.X, h)
		return true
	}
	return false
}

func recvOf(fn *types.Func) *types.Var {
	if sig, ok := fn.Type().(*types.Signature); ok {
		return sig.Recv()
	}
	return nil
}

// memberKey derives a stable identity for a mutex or channel operand:
//   - a struct field (s.mu, t.in): "pkgpath.RecvType.field" — field
//     identity, shared by every instance of the type (the lockdep-style
//     lock-class abstraction);
//   - a package-level var: "pkgpath.name";
//   - a local of a named non-sync struct type (an embedded mutex locked
//     through its owner, `s.Lock()`): "pkgpath.Type" — type identity, so
//     two methods locking the same receiver type agree;
//   - any other local (e.g. `var mu sync.Mutex`): keyed by declaration
//     position, unique per variable.
func (w *fnWalker) memberKey(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		v, ok := w.pkg.Info.Uses[x.Sel].(*types.Var)
		if !ok {
			return "", false
		}
		pkgPath := "_"
		if v.Pkg() != nil {
			pkgPath = v.Pkg().Path()
		}
		if v.IsField() {
			recv := recvTypeName(w.pkg.Info.TypeOf(x.X))
			return w.noteName(pkgPath+"."+recv+"."+v.Name(), recv+"."+v.Name()), true
		}
		return w.noteName(pkgPath+"."+v.Name(), shortPath(pkgPath)+"."+v.Name()), true
	case *ast.Ident:
		v, ok := w.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			if dv, ok := w.pkg.Info.Defs[x].(*types.Var); ok {
				v = dv
			} else {
				return "", false
			}
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return w.noteName(v.Pkg().Path()+"."+v.Name(), shortPath(v.Pkg().Path())+"."+v.Name()), true
		}
		t := types.Unalias(v.Type())
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return w.noteName(named.Obj().Pkg().Path()+"."+named.Obj().Name(), named.Obj().Name()), true
			}
		}
		return w.noteName("local:"+itoa(int(v.Pos())), v.Name()), true
	}
	return "", false
}

// noteName records the display name for a member key and returns the key.
func (w *fnWalker) noteName(key, name string) string {
	if _, ok := w.prog.keyNames[key]; !ok {
		w.prog.keyNames[key] = name
	}
	return key
}

// computeSummaries resolves signal receives against the global close set
// and propagates the transitive bits across call edges to fixpoint.
func (p *Program) computeSummaries() {
	for _, n := range p.nodes {
		for _, c := range n.Summary.ClosesChans {
			p.closed[c] = true
		}
	}
	for _, n := range p.nodes {
		s := &n.Summary
		if s.RecvCtxDone {
			s.TermSignal = true
		}
		for _, c := range s.RecvChans {
			if p.closed[c] {
				s.TermSignal = true
			}
		}
		if s.acquiresSet == nil {
			s.acquiresSet = map[string]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.nodes {
			s := &n.Summary
			for _, e := range n.Calls {
				if e.Callee == nil || e.Kind == KindGo {
					continue
				}
				cs := &e.Callee.Summary
				if cs.Blocking && !s.Blocking {
					s.Blocking = true
					changed = true
				}
				if cs.TermSignal && !s.TermSignal {
					s.TermSignal = true
					changed = true
				}
				if cs.WGDone && !s.WGDone {
					s.WGDone = true
					changed = true
				}
				if cs.UnboundedLoop && !s.UnboundedLoop {
					s.UnboundedLoop = true
					changed = true
				}
				for k := range cs.acquiresSet {
					if !s.acquiresSet[k] {
						s.acquiresSet[k] = true
						changed = true
					}
				}
			}
		}
	}
	for _, n := range p.nodes {
		n.Summary.Acquires = sortedKeys(n.Summary.acquiresSet)
	}
}
