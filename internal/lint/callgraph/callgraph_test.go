package callgraph_test

import (
	"testing"

	"microscope/internal/lint/callgraph"
	"microscope/internal/lint/loader"
)

func buildShapes(t *testing.T) *callgraph.Program {
	t.Helper()
	p, err := loader.LoadDir("testdata/src/shapes")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return callgraph.Build([]*loader.Package{p})
}

func node(t *testing.T, prog *callgraph.Program, key string) *callgraph.Node {
	t.Helper()
	n := prog.NodeByKey(key)
	if n == nil {
		t.Fatalf("no node %q", key)
	}
	return n
}

func edgesTo(n *callgraph.Node, kind callgraph.EdgeKind) []string {
	var out []string
	for _, e := range n.Calls {
		if e.Kind == kind && e.Callee != nil {
			out = append(out, e.Callee.Key)
		}
	}
	return out
}

func TestClosurePassedToPool(t *testing.T) {
	prog := buildShapes(t)
	use := node(t, prog, "testdata/shapes.UseDo")

	if got := edgesTo(use, callgraph.KindCall); len(got) != 1 || got[0] != "testdata/shapes.Do" {
		t.Fatalf("UseDo call edges = %v, want [testdata/shapes.Do]", got)
	}
	// The closure argument becomes a literal node linked by a funcarg
	// edge, so its summary flows into UseDo.
	if got := edgesTo(use, callgraph.KindFuncArg); len(got) != 1 || got[0] != "testdata/shapes.UseDo$1" {
		t.Fatalf("UseDo funcarg edges = %v, want [testdata/shapes.UseDo$1]", got)
	}

	do := node(t, prog, "testdata/shapes.Do")
	if !do.Summary.Blocking {
		t.Error("Do should be Blocking: it calls wg.Wait")
	}
	worker := node(t, prog, "testdata/shapes.Do$1")
	if !worker.Summary.WGDone {
		t.Error("Do's worker literal should be WGDone-accounted")
	}
	if len(do.Spawns) != 1 || do.Spawns[0].Callee != worker {
		t.Fatalf("Do spawns = %+v, want one spawn of its worker literal", do.Spawns)
	}
}

func TestInterfaceDispatchConservative(t *testing.T) {
	prog := buildShapes(t)
	disp := node(t, prog, "testdata/shapes.Dispatch")

	got := edgesTo(disp, callgraph.KindDynamic)
	want := map[string]bool{
		"testdata/shapes.Fast.Step": true,
		"testdata/shapes.Slow.Step": true,
	}
	if len(got) != len(want) {
		t.Fatalf("Dispatch dynamic edges = %v, want both implementers", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("unexpected dynamic edge to %q", k)
		}
	}
	// Slow.Step blocks on a channel receive; conservative dispatch must
	// propagate that to the call site's function.
	if !disp.Summary.Blocking {
		t.Error("Dispatch should be Blocking via the Slow.Step implementer")
	}
}

func TestMethodValueBindingAndSpawn(t *testing.T) {
	prog := buildShapes(t)
	mv := node(t, prog, "testdata/shapes.MethodValue")
	bump := node(t, prog, "testdata/shapes.T.bump")

	if got := edgesTo(mv, callgraph.KindCall); len(got) != 1 || got[0] != bump.Key {
		t.Fatalf("MethodValue call edges = %v, want [%s]", got, bump.Key)
	}
	if len(mv.Spawns) != 1 || mv.Spawns[0].Callee != bump {
		t.Fatalf("MethodValue spawns = %+v, want resolved go f() -> T.bump", mv.Spawns)
	}
	if len(bump.Summary.Acquires) != 1 || bump.Summary.Acquires[0] != "testdata/shapes.T.mu" {
		t.Fatalf("T.bump acquires = %v, want [testdata/shapes.T.mu]", bump.Summary.Acquires)
	}
	// Acquisition propagates over the call edge but not the go edge alone;
	// the call edge is present here, so MethodValue acquires it too.
	if len(mv.Summary.Acquires) != 1 || mv.Summary.Acquires[0] != "testdata/shapes.T.mu" {
		t.Fatalf("MethodValue acquires = %v, want [testdata/shapes.T.mu]", mv.Summary.Acquires)
	}
}

func TestOrderEdgeExtraction(t *testing.T) {
	prog := buildShapes(t)
	both := node(t, prog, "testdata/shapes.L.both")

	es := both.Summary.OrderEdges
	if len(es) != 1 {
		t.Fatalf("L.both order edges = %+v, want exactly one", es)
	}
	if es[0].From != "testdata/shapes.L.a" || es[0].To != "testdata/shapes.L.b" {
		t.Fatalf("order edge = %s -> %s, want L.a -> L.b", es[0].From, es[0].To)
	}
	if name := prog.KeyName(es[0].From); name != "L.a" {
		t.Fatalf("display name for %s = %q, want L.a", es[0].From, name)
	}
}
