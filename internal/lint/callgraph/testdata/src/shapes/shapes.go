// Fixture exercising the call-graph shapes the serve/pipeline code
// actually uses: closures handed to a par.Do-style pool, interface
// dispatch, method values (called and spawned), and lock order capture.
package shapes

import "sync"

// Do mirrors internal/par.Do: the worker literal is WaitGroup-accounted
// and invokes the caller's closure through a dynamic parameter.
func Do(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			f(i)
		}()
	}
	wg.Wait()
}

func UseDo(items []int) int {
	sum := 0
	Do(len(items), func(i int) {
		sum += items[i]
	})
	return sum
}

type runner interface{ Step(int) int }

type Fast struct{}

func (Fast) Step(x int) int { return x }

type Slow struct{ c chan int }

func (s Slow) Step(x int) int { return x + <-s.c }

func Dispatch(r runner, x int) int { return r.Step(x) }

type T struct {
	mu sync.Mutex
	n  int
}

func (t *T) bump() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}

func MethodValue(t *T) {
	f := t.bump
	f()
	go f()
}

type L struct{ a, b sync.Mutex }

func (l *L) both() {
	l.a.Lock()
	l.b.Lock()
	l.b.Unlock()
	l.a.Unlock()
}
