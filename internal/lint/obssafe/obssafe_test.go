package obssafe_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/obssafe"
)

func TestObsSafe(t *testing.T) {
	analysistest.Run(t, obssafe.Analyzer, "a")
}
