// Package obssafe enforces the nil-safe-handle contract of internal/obs.
// Every obs handle (*Counter, *Gauge, *Histogram, *Tracer) is nil-safe: a
// nil receiver makes every method a no-op, which is what lets
// instrumented hot paths call through handles unconditionally. Outside
// internal/obs the analyzer flags:
//   - nil comparisons on handle values — branching on enablement
//     reintroduces the pattern the contract removes, and the branch body
//     tends to grow unguarded dereferences (perf-motivated exceptions
//     that guard an expensive operand like time.Now carry annotations);
//   - dereferencing a handle (*h) — panics when observability is off;
//   - declaring non-pointer handle or Registry values — handles embed
//     atomics and mutexes, so a value copy tears state.
//
// *Registry nil checks are exempt: resolution time (obs.Or) is exactly
// where "is observability on" is decided.
package obssafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"microscope/internal/lint/analysis"
)

// Analyzer is the obs-handle contract checker.
var Analyzer = &analysis.Analyzer{
	Name: "obssafe",
	Doc: "flags nil comparisons, dereferences and value copies of obs handles " +
		"outside internal/obs; handles are nil-safe and must be called through",
	Run: run,
}

// handleNames are the nil-safe handle types.
var handleNames = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Tracer":    true,
}

// valueNames additionally forbids value-typed Registry declarations.
var valueNames = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Tracer":    true,
	"Registry":  true,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	if !pass.ImportsPathSuffix("internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		// Selector expressions that are the operand of a pointer type
		// (*obs.Counter) are the correct spelling, not a value copy; a
		// TypeSpec RHS (type Registry = obs.Registry) is a re-export,
		// not a declaration of copyable state.
		pointerInner := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StarExpr:
				pointerInner[ast.Unparen(n.X)] = true
			case *ast.TypeSpec:
				pointerInner[ast.Unparen(n.Type)] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkNilCompare(pass, n)
			case *ast.StarExpr:
				checkDeref(pass, n)
			case *ast.SelectorExpr:
				if !pointerInner[n] {
					checkValueType(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkNilCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for i, side := range []ast.Expr{be.X, be.Y} {
		other := be.Y
		if i == 1 {
			other = be.X
		}
		if !isNil(pass, other) {
			continue
		}
		if name := obsHandle(pass.TypeOf(side)); name != "" && handleNames[name] {
			pass.Reportf(be.Pos(),
				"nil check on *obs.%s: handles are nil-safe, call through them unconditionally (annotate if the branch guards an expensive operand)", name)
			return
		}
	}
}

func checkDeref(pass *analysis.Pass, se *ast.StarExpr) {
	tv, ok := pass.TypesInfo.Types[se]
	if !ok || !tv.IsValue() {
		return // *obs.Counter as a type is the correct spelling
	}
	if name := obsHandle(pass.TypeOf(se.X)); name != "" && handleNames[name] {
		pass.Reportf(se.Pos(),
			"dereference of *obs.%s: panics when observability is disabled (nil handle); use the handle's methods", name)
	}
}

// checkValueType flags a selector used as a bare (non-pointer) obs handle
// type: value declarations copy the handle's atomics.
func checkValueType(pass *analysis.Pass, sel *ast.SelectorExpr) {
	tv, ok := pass.TypesInfo.Types[sel]
	if !ok || !tv.IsType() {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if name := obsHandle(tv.Type); name != "" && valueNames[name] {
		pass.Reportf(sel.Pos(),
			"value-typed obs.%s declaration: handles embed atomics/mutexes and must be held as *obs.%s", name, name)
	}
}

// isNil reports whether e is the predeclared nil.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// obsHandle returns the obs type name when t (possibly behind one
// pointer) is a named type from internal/obs, else "".
func obsHandle(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return ""
	}
	return obj.Name()
}
