// Package a is the obssafe analyzer fixture: nil checks, dereferences
// and value copies of nil-safe obs handles.
package a

import "microscope/internal/obs"

// Registry re-exports are not copyable-state declarations.
type Registry = obs.Registry

type metrics struct {
	hits *obs.Counter
	q    *obs.Gauge
}

var leakedCounter obs.Counter // want `value-typed obs\.Counter declaration`

var leakedRegistry obs.Registry // want `value-typed obs\.Registry declaration`

func nilCheck(c *obs.Counter) {
	if c != nil { // want `nil check on \*obs\.Counter`
		c.Inc()
	}
}

func deref(h *obs.Histogram) {
	_ = *h // want `dereference of \*obs\.Histogram`
}

func callThrough(c *obs.Counter, g *obs.Gauge) {
	c.Add(1)
	g.Set(2)
}

func resolve(r *obs.Registry) *obs.Registry {
	if r == nil { // ok: Registry nil checks are the resolution point
		return obs.Default()
	}
	return r
}

func allowedGuard(c *obs.Counter) {
	//mslint:allow obssafe fixture: the branch guards an expensive operand
	if c != nil {
		c.Inc()
	}
}
