// Package ctxflow keeps cancellation threaded end to end. Two rules:
//
//  1. Library packages must not mint fresh context roots —
//     context.Background() / context.TODO() belong to main and to tests;
//     anywhere else they silently detach the callee from the caller's
//     deadline and the drain/shutdown machinery built on it.
//  2. A function that receives a ctx must forward it: passing a fresh
//     Background()/TODO() directly to a blocking callee that accepts a
//     context drops the caller's cancellation exactly where it matters.
//     This rule also runs in package main, where rule 1 does not.
//
// Rule 2 only fires when the callee's call-graph summary proves it may
// block — a Background handed to a constructor is not a finding.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"microscope/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:    "ctxflow",
	Aliases: []string{"ctx"},
	Doc: "no context.Background()/TODO() in library packages; a function " +
		"that receives a ctx must forward it to blocking callees instead of " +
		"minting a fresh root",
	NeedsProgram: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	reported := map[token.Pos]bool{}

	// Rule 1: fresh context roots in library code.
	if !isMain {
		for _, f := range pass.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeFunc(pass.TypesInfo, call)
				if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
					reported[call.Pos()] = true
					pass.Reportf(call.Pos(),
						"context.%s() in a library package: accept a ctx from the caller so cancellation reaches this path",
						fn.Name())
				}
				return true
			})
		}
	}

	// Rule 2: a ctx-receiving function minting a root for a blocking
	// callee. Each literal is its own node, so nested literals are skipped
	// here and visited on their own turn (a literal's closure over the
	// parent's ctx param still counts: hasCtxParam checks the node chain's
	// own signature only, which is the contract — the literal received no
	// ctx of its own, but flagging it would re-report the parent's site).
	for _, n := range pass.Prog.PkgNodes(pass.Pkg) {
		if n.Body == nil || n.Sig == nil || !hasCtxParam(n.Sig) {
			continue
		}
		ast.Inspect(n.Body, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok && lit.Body != n.Body {
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			cn := pass.Prog.NodeByFunc(callee)
			if cn == nil || !cn.Summary.Blocking {
				return true
			}
			for _, arg := range call.Args {
				root, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				fn := analysis.CalleeFunc(pass.TypesInfo, root)
				if !analysis.IsPkgFunc(fn, "context", "Background") && !analysis.IsPkgFunc(fn, "context", "TODO") {
					continue
				}
				if reported[root.Pos()] {
					continue
				}
				reported[root.Pos()] = true
				pass.Reportf(root.Pos(),
					"%s receives a ctx but passes context.%s() to blocking callee %s: forward the ctx so cancellation propagates",
					n.Name, fn.Name(), cn.Name)
			}
			return true
		})
	}
	return nil
}

// hasCtxParam reports whether the signature takes a context.Context.
func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if analysis.NamedFrom(params.At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}
