// Fixture for ctxflow rule 2 in package main: rule 1 is off (main owns
// its roots), but a function that received a ctx still must not mint a
// fresh root for a blocking callee.
package main

import "context"

func recv(ctx context.Context, c chan int) int {
	select {
	case v := <-c:
		return v
	case <-ctx.Done():
		return 0
	}
}

func handle(ctx context.Context, c chan int) int {
	return recv(context.Background(), c) // want `m\.handle receives a ctx but passes context\.Background\(\) to blocking callee m\.recv`
}

func main() {
	ctx := context.Background() // ok: main owns the process root
	c := make(chan int, 1)
	c <- 1
	_ = handle(ctx, c)
	_ = recv(ctx, c)
}
