// Fixture for ctxflow rule 1: fresh context roots in a library package
// are findings wherever they appear; forwarding a received ctx is silent.
package a

import "context"

func recv(ctx context.Context, c chan int) int {
	select {
	case v := <-c:
		return v
	case <-ctx.Done():
		return 0
	}
}

func Bad(c chan int) int {
	return recv(context.Background(), c) // want `context\.Background\(\) in a library package`
}

func Todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) in a library package`
}

// Forward receives a ctx and forwards it. Silent.
func Forward(ctx context.Context, c chan int) int {
	return recv(ctx, c)
}

// Drop receives a ctx but mints a root for a blocking callee; in a
// library package rule 1 already owns the site and rule 2 dedupes.
func Drop(ctx context.Context, c chan int) int {
	return recv(context.Background(), c) // want `context\.Background\(\) in a library package`
}

// Allowed demonstrates the suppression path end to end.
func Allowed(c chan int) int {
	//mslint:allow ctxflow fixture exercises the allow path
	return recv(context.Background(), c)
}
