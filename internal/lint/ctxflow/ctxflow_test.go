package ctxflow_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/ctxflow"
)

func TestLibraryPackage(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "a")
}

func TestMainPackage(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "m")
}
