// Package containment enforces the panic-containment boundary of the
// online path: recover() is permitted only inside internal/resilience,
// whose Contain is the single sanctioned recovery site. A stray recover
// anywhere else silently swallows bugs that should either crash loudly
// (offline tools) or be quarantined and counted (online path) — it hides
// the failure from the resilience counters, skips the quarantine
// bookkeeping, and leaves half-mutated shared state in play.
//
// The analyzer flags every use of the builtin recover in any package
// other than internal/resilience (the spec requires builtins to be
// called, so flagging the resolved identifier covers every position a
// recover can appear in). An identifier named recover that resolves to
// a local declaration is not the builtin and passes.
// Test files are outside the loader's file set, so test helpers that
// assert "this must panic" via recover are unaffected.
package containment

import (
	"go/ast"
	"go/types"
	"strings"

	"microscope/internal/lint/analysis"
)

// Analyzer is the recover()-containment checker.
var Analyzer = &analysis.Analyzer{
	Name:    "containment",
	Aliases: []string{"recover"},
	Doc: "flags recover() outside internal/resilience; resilience.Contain " +
		"is the only sanctioned recovery site",
	Run: run,
}

// sanctioned reports whether pkgPath is the resilience package itself.
// Suffix matching mirrors analysis.ImportsPathSuffix so analysistest
// fixtures (import path "testdata/resilience") exercise the exemption.
func sanctioned(pkgPath string) bool {
	return pkgPath == "microscope/internal/resilience" ||
		strings.HasSuffix(pkgPath, "/resilience")
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && sanctioned(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != "recover" {
				return true
			}
			if _, builtin := pass.ObjectOf(id).(*types.Builtin); !builtin {
				return true // shadowed: resolves to a local declaration
			}
			pass.Reportf(id.Pos(), "recover() outside internal/resilience: wrap the unit in resilience.Contain so the panic is quarantined and counted instead of silently swallowed")
			return true
		})
	}
	return nil
}
