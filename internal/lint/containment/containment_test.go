package containment_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/containment"
)

func TestContainment(t *testing.T) {
	analysistest.Run(t, containment.Analyzer, "a")
}

func TestContainmentExemptsResiliencePackage(t *testing.T) {
	analysistest.Run(t, containment.Analyzer, "resilience")
}
