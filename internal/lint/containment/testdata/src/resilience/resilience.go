// Package resilience stands in for microscope/internal/resilience: the
// one package where recover() is sanctioned. The analyzer must produce
// no diagnostics here.
package resilience

// contain mirrors the real Contain: the sanctioned recovery site.
func contain(fn func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = asError(v)
		}
	}()
	fn()
	return nil
}

type panicErr struct{ v any }

func (e *panicErr) Error() string { return "contained panic" }

func asError(v any) error { return &panicErr{v: v} }
