// Package a is the containment analyzer fixture: recover() in every
// disguise outside the resilience package, plus the shapes that must
// pass (shadowed identifiers, sanctioned suppressions).
package a

import "fmt"

// Direct deferred recover — the classic stray swallow.
func badDeferredRecover() {
	defer func() {
		if r := recover(); r != nil { // want `recover\(\) outside internal/resilience`
			fmt.Println("swallowed", r)
		}
	}()
}

// Bare call outside a defer (a no-op at runtime, still a violation).
func badBareRecover() {
	recover() // want `recover\(\) outside internal/resilience`
}

// A local function named recover shadows the builtin: not a recovery
// site, no diagnostic.
func okShadowed() {
	recover := func() any { return nil }
	if recover() != nil {
		fmt.Println("not the builtin")
	}
}

// A suppression names the analyzer (or its "recover" alias) and states
// why; the driver honours it.
func okSuppressed() {
	defer func() {
		_ = recover() //mslint:allow containment fixture: demonstrates the escape hatch
	}()
}
