package compid_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/compid"
)

func TestCompIDPoliced(t *testing.T) {
	analysistest.Run(t, compid.Analyzer, "core")
}

func TestCompIDUnpolicedPackageIsExempt(t *testing.T) {
	analysistest.Run(t, compid.Analyzer, "report")
}
