// Package compid polices the CompID discipline: hot-path diagnosis
// packages key state by dense interned tracestore.CompID handles, never
// by component-name strings. PR 3's columnar layout exists because
// map[string] lookups and string compares dominated the diagnosis
// profile; this analyzer stops them from creeping back.
//
// It applies only where the discipline holds — packages named core,
// patterns, autofocus, pipeline, tracestore or online that can see the
// CompID accessors (import tracestore, or are tracestore itself) — and
// flags:
//   - any map[string] type (state, fields, make, literals), and
//   - string ==/!= where an operand is a CompName(...) call (resolve the
//     name then compare defeats the interner; compare the CompIDs).
//
// Cold-path exceptions (report label maps, keys that are byte-encoded
// CompID sequences, the interner itself) carry //mslint:allow compid
// annotations with their reasons.
package compid

import (
	"go/ast"
	"go/token"
	"go/types"

	"microscope/internal/lint/analysis"
)

// Analyzer is the CompID-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "compid",
	Doc: "flags map[string] state and component-name string comparisons in " +
		"hot-path packages that have CompID accessors available",
	Run: run,
}

// policed names the packages under the CompID discipline.
var policed = map[string]bool{
	"core":       true,
	"patterns":   true,
	"autofocus":  true,
	"pipeline":   true,
	"tracestore": true,
	"online":     true,
}

func run(pass *analysis.Pass) error {
	if !policed[pass.Pkg.Name()] {
		return nil
	}
	if pass.Pkg.Name() != "tracestore" && !pass.ImportsPathSuffix("internal/tracestore") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.MapType:
				if keyIsString(pass, n) {
					pass.Reportf(n.Pos(),
						"map[string]-keyed state in a CompID package: key by tracestore.CompID (dense int32) instead, or annotate why a string key is required")
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if isCompNameCall(pass, side) {
						pass.Reportf(n.Pos(),
							"string comparison on a resolved component name: compare CompIDs instead of CompName(...) results")
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

func keyIsString(pass *analysis.Pass, mt *ast.MapType) bool {
	t := pass.TypeOf(mt.Key)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

// isCompNameCall reports whether e is a call to a function or method
// named CompName (the tracestore reverse-interning accessor and its
// mirrors on views/stores).
func isCompNameCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == "CompName"
}
