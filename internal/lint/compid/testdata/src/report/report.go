// Package report is the compid negative fixture: the same constructs
// as the core fixture in a package that is not under the CompID
// discipline produce no diagnostics.
package report

import "microscope/internal/tracestore"

type table struct {
	rows map[string]int
}

func render(st *tracestore.Store, id tracestore.CompID, name string) bool {
	return st.CompName(id) == name
}
