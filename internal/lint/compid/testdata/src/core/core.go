// Package core is the compid positive fixture: a policed package name
// with the CompID accessors in scope.
package core

import "microscope/internal/tracestore"

type perComp struct {
	byName map[string]int // want `map\[string\]-keyed state in a CompID package`
	byID   map[tracestore.CompID]int
}

func matchByName(st *tracestore.Store, id tracestore.CompID, name string) bool {
	return st.CompName(id) == name // want `string comparison on a resolved component name`
}

func matchByID(a, b tracestore.CompID) bool {
	return a == b
}

//mslint:allow compid fixture: cold-path report labels, built once per run
func labelTable() map[string]string {
	return map[string]string{"nat1": "NAT"} //mslint:allow compid fixture: cold-path report labels, built once per run
}
