package driver_test

import (
	"go/ast"
	"strings"
	"testing"

	"microscope/internal/lint/analysis"
	"microscope/internal/lint/driver"
	"microscope/internal/lint/loader"
)

// dummy reports one diagnostic per function declaration, giving every
// fixture function a predictable finding to suppress (or not).
var dummy = &analysis.Analyzer{
	Name:    "dummy",
	Aliases: []string{"dum"},
	Doc:     "reports every function declaration",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s declared", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppressionAndMetaDiagnostics(t *testing.T) {
	p, err := loader.LoadDir("testdata/src/meta")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(p, []*analysis.Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}

	byMessage := map[string]string{} // message fragment -> analyzer
	for _, d := range diags {
		byMessage[d.Message] = d.Analyzer
	}

	// Findings without a valid allow survive.
	for _, fn := range []string{"plain", "bare", "unknown"} {
		if byMessage["func "+fn+" declared"] != "dummy" {
			t.Errorf("expected surviving dummy diagnostic for %s; got %v", fn, diags)
		}
	}
	// Standalone and trailing allows suppress.
	for _, fn := range []string{"standalone", "trailing"} {
		if _, ok := byMessage["func "+fn+" declared"]; ok {
			t.Errorf("allow comment did not suppress the %s diagnostic", fn)
		}
	}
	// Malformed allows are reported under the meta analyzer name.
	var sawBare, sawUnknown bool
	for _, d := range diags {
		if d.Analyzer != driver.MetaName {
			continue
		}
		if strings.Contains(d.Message, "has no reason") {
			sawBare = true
		}
		if strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			sawUnknown = true
		}
	}
	if !sawBare {
		t.Errorf("bare allow comment produced no meta diagnostic: %v", diags)
	}
	if !sawUnknown {
		t.Errorf("unknown-analyzer allow produced no meta diagnostic: %v", diags)
	}

	if want := 5; len(diags) != want {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), want, diags)
	}
}

func TestAliasSuppresses(t *testing.T) {
	p, err := loader.LoadDir("testdata/src/meta")
	if err != nil {
		t.Fatal(err)
	}
	alias := &analysis.Analyzer{
		Name:    "dum2",
		Aliases: []string{"dummy"}, // fixture allows say "dummy"
		Doc:     dummy.Doc,
		Run:     dummy.Run,
	}
	diags, err := driver.RunPackage(p, []*analysis.Analyzer{alias})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "func standalone") || strings.Contains(d.Message, "func trailing") {
			t.Errorf("alias grant did not suppress: %s", d.Message)
		}
	}
}
