// Package meta is the driver fixture: every function declaration is
// reported by a dummy analyzer, and allow comments in each position and
// each malformed shape exercise the suppression path.
package meta

func plain() {}

//mslint:allow dummy fixture: standalone allow on the line above
func standalone() {}

func trailing() {} //mslint:allow dummy fixture: trailing allow on the same line

//mslint:allow dummy
func bare() {}

//mslint:allow nosuch fixture: names an analyzer that does not exist
func unknown() {}
