// Package driver runs lint analyzers over loaded packages and applies the
// repo's suppression convention:
//
//	//mslint:allow <analyzer>[,<analyzer>...] <reason>
//
// An allow comment suppresses matching diagnostics on its own line and on
// the line immediately below it (so it works both as a trailing comment
// and as a standalone comment above the flagged statement). The reason
// text is mandatory: an allow comment without one, or one naming an
// unknown analyzer, is itself reported as a diagnostic (analyzer
// "mslint") and cannot be suppressed.
package driver

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"microscope/internal/lint/analysis"
	"microscope/internal/lint/callgraph"
	"microscope/internal/lint/loader"
)

// MetaName is the pseudo-analyzer name under which the driver reports
// malformed allow comments.
const MetaName = "mslint"

// Run executes every analyzer over every package and returns the
// surviving diagnostics sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	// Interprocedural analyzers share one whole-program call graph so
	// summaries resolve across package boundaries (a blocking callee
	// three packages away, a channel closed by another package). Built
	// once, reused by every per-package pass.
	var prog *callgraph.Program
	if needsProgram(analyzers) {
		prog = callgraph.Build(pkgs)
	}
	var all []analysis.Diagnostic
	for _, p := range pkgs {
		ds, err := runPackage(p, analyzers, prog)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// RunPackage executes the analyzers over one package, filtering
// diagnostics through the package's allow comments. Interprocedural
// analyzers see a single-package program (analysistest fixtures are
// self-contained, so that is the whole program).
func RunPackage(p *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var prog *callgraph.Program
	if needsProgram(analyzers) {
		prog = callgraph.Build([]*loader.Package{p})
	}
	return runPackage(p, analyzers, prog)
}

func needsProgram(analyzers []*analysis.Analyzer) bool {
	for _, a := range analyzers {
		if a.NeedsProgram {
			return true
		}
	}
	return false
}

func runPackage(p *loader.Package, analyzers []*analysis.Analyzer, prog *callgraph.Program) ([]analysis.Diagnostic, error) {
	names := map[string]string{} // accepted token -> canonical name
	for _, a := range analyzers {
		names[a.Name] = a.Name
		for _, al := range a.Aliases {
			names[al] = a.Name
		}
	}
	allows, metaDiags := scanAllows(p, names)

	var out []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
		}
		if a.NeedsProgram {
			pass.Prog = prog
		}
		var raw []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { raw = append(raw, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, p.ImportPath, err)
		}
		for _, d := range raw {
			if !allows.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	return append(out, metaDiags...), nil
}

// allowKey locates one allow grant: a (file, line) pair authorising one
// canonical analyzer name.
type allowKey struct {
	file string
	line int
	name string
}

type allowSet map[allowKey]bool

func (s allowSet) suppressed(d analysis.Diagnostic) bool {
	return s[allowKey{d.Position.Filename, d.Position.Line, d.Analyzer}] ||
		s[allowKey{d.Position.Filename, d.Position.Line - 1, d.Analyzer}]
}

// scanAllows walks every comment in the package, recording allow grants
// and reporting malformed allow comments.
func scanAllows(p *loader.Package, names map[string]string) (allowSet, []analysis.Diagnostic) {
	grants := allowSet{}
	var meta []analysis.Diagnostic
	metaDiag := func(pos token.Pos, format string, args ...any) {
		meta = append(meta, analysis.Diagnostic{
			Analyzer: MetaName,
			Pos:      pos,
			Position: p.Fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//mslint:allow")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					metaDiag(c.Pos(), "mslint:allow comment names no analyzer")
					continue
				}
				if len(fields) < 2 {
					metaDiag(c.Pos(), "mslint:allow %s has no reason; state why the finding is intentional", fields[0])
					continue
				}
				for _, tok := range strings.Split(fields[0], ",") {
					canon, known := names[tok]
					if !known {
						metaDiag(c.Pos(), "mslint:allow names unknown analyzer %q", tok)
						continue
					}
					grants[allowKey{pos.Filename, pos.Line, canon}] = true
				}
			}
		}
	}
	return grants, meta
}
