// Package golifetime requires every goroutine spawned in a library
// package to have a provable termination path. The call-graph summary of
// the spawned function (transitive, so the signal may live in a callee)
// must show one of:
//
//   - a receive from ctx.Done() or from a channel some loaded function
//     closes (TermSignal),
//   - accounting to a sync.WaitGroup join (WGDone), or
//   - no structurally unbounded loop at all — straight-line goroutines
//     and bounded counting loops terminate on their own.
//
// Goroutines spawned through a dynamic function value the walker cannot
// resolve are findings too: "unknown" is never "safe". Package main is
// exempt — a process's top-level loops live exactly as long as the
// process — as are test files.
package golifetime

import (
	"strings"

	"microscope/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:    "golifetime",
	Aliases: []string{"goroutine"},
	Doc: "every go statement in a library package must spawn a function " +
		"with a provable termination path (ctx.Done()/close-signal select, " +
		"WaitGroup accounting, or no unbounded loop)",
	NeedsProgram: true,
	Run:          run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, n := range pass.Prog.PkgNodes(pass.Pkg) {
		for _, sp := range n.Spawns {
			if strings.HasSuffix(pass.Fset.Position(sp.Site).Filename, "_test.go") {
				continue
			}
			if sp.Callee == nil {
				pass.Reportf(sp.Site,
					"goroutine spawned through dynamic value %s: termination cannot be verified; spawn a static function or document with an allow",
					sp.Desc)
				continue
			}
			s := &sp.Callee.Summary
			if s.TermSignal || s.WGDone || !s.UnboundedLoop {
				continue
			}
			pass.Reportf(sp.Site,
				"goroutine %s has no provable termination path: it loops without selecting on ctx.Done() or a closed-signal channel and is not accounted to a WaitGroup",
				sp.Desc)
		}
	}
	return nil
}
