package golifetime_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/golifetime"
)

func TestGoLifetime(t *testing.T) {
	analysistest.Run(t, golifetime.Analyzer, "a")
}
