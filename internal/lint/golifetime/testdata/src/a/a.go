// Fixture for golifetime: goroutines with provable termination paths
// (close-signal select, ctx.Done(), closed-channel range, WaitGroup
// accounting, straight-line bodies) stay silent; unbounded loops with no
// signal and dynamic spawns are findings.
package a

import (
	"context"
	"sync"
)

type W struct {
	stop chan struct{}
	data chan int
	wg   sync.WaitGroup
}

// loop selects on a close signal that Close delivers: provable.
func (w *W) loop() {
	for {
		select {
		case <-w.stop:
			return
		case v := <-w.data:
			_ = v
		}
	}
}

func (w *W) Start() {
	go w.loop() // ok: selects on w.stop, closed in Close
}

func (w *W) Close() { close(w.stop) }

// drain ranges over a channel CloseData closes; resolved through a
// method-value binding.
func (w *W) drain() {
	for range w.data {
	}
}

func (w *W) StartDrain() {
	d := w.drain
	go d() // ok: w.data is closed in CloseData
}

func (w *W) CloseData() { close(w.data) }

func ctxWorker(ctx context.Context, in chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			_ = v
		}
	}
}

func StartCtx(ctx context.Context, in chan int) {
	go ctxWorker(ctx, in) // ok: selects on ctx.Done()
}

func StartLit(ctx context.Context, in chan int) {
	go func() { // ok: the literal selects on ctx.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

func (w *W) StartPool() {
	for i := 0; i < 4; i++ {
		w.wg.Add(1)
		go func() { // ok: accounted to w.wg
			defer w.wg.Done()
			for range w.data {
			}
		}()
	}
	w.wg.Wait()
}

func oneshot(c chan int) {
	go func() { c <- 1 }() // ok: straight-line body, no unbounded loop
}

func spin() {
	for {
	}
}

func StartSpin() {
	go spin() // want `goroutine spin has no provable termination path`
}

type B struct{ in chan int }

// pump ranges over a channel nothing in this program ever closes.
func (b *B) pump() {
	for v := range b.in {
		_ = v
	}
}

func (b *B) StartPump() {
	go b.pump() // want `goroutine b\.pump has no provable termination path`
}

func Run(f func()) {
	go f() // want `goroutine spawned through dynamic value f`
}
