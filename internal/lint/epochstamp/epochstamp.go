// Package epochstamp checks free-list recycling discipline in the
// epoch-stamped shell pattern the streaming trace index introduced: a
// shell popped off a free list (a slice field or variable whose name
// contains "free") carries the previous occupant's buffers and epoch, so
// it must be visibly re-stamped in the same function before it escapes —
// otherwise readers holding the old epoch alias the recycled memory and
// stale segment state leaks into a new window.
//
// Accepted stamp evidence for a popped shell v: v.reset(...)/v.Reset(...)
// calls (tracestore's Segment.reset(epoch) is the canonical form), any
// call whose name contains "reset" or "stamp" taking v as receiver or
// argument, or a direct assignment to an epoch-like field of v
// (v.epoch/v.gen/v.generation/v.version = ...).
package epochstamp

import (
	"go/ast"
	"go/types"
	"regexp"

	"microscope/internal/lint/analysis"
)

// Analyzer is the free-list epoch-stamp discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "epochstamp",
	Doc: "flags values popped from a free list that escape without a reset " +
		"or epoch-stamp call",
	Run: run,
}

var freeName = regexp.MustCompile(`(?i)free`)
var stampName = regexp.MustCompile(`(?i)reset|stamp`)
var epochField = regexp.MustCompile(`(?i)^(epoch|gen|generation|version)$`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc inspects one function body for free-list pops bound directly
// in it (nested func literals are their own functions).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			if !isFreePop(rhs) || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(rhs.Pos(), "free-list pop must be bound to a variable so the epoch stamp can be verified")
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if !stamped(pass, body, obj) {
				pass.Reportf(rhs.Pos(), "recycled shell %s escapes without a reset or epoch stamp: stale state and the old epoch survive reuse", id.Name)
			}
		}
	})
}

// isFreePop reports whether rhs indexes into a container whose name
// contains "free" (s.free[n-1], freeShells[i], ...). Re-slices
// (s.free[:n-1], the truncation half of a pop) are not pops.
func isFreePop(rhs ast.Expr) bool {
	ix, ok := ast.Unparen(rhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	switch x := ast.Unparen(ix.X).(type) {
	case *ast.Ident:
		return freeName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return freeName.MatchString(x.Sel.Name)
	}
	return false
}

// stamped scans the whole function body (nested literals included, so a
// deferred stamp counts) for re-stamp proof about obj.
func stamped(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.reset(...) / v.Restamp(...): stamp method on the shell.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				stampName.MatchString(sel.Sel.Name) && rootedAt(pass, sel.X, obj) {
				found = true
			}
			// resetShell(v) / stamp(v, e): stamp helper taking the shell.
			if name := calleeName(n); name != "" && stampName.MatchString(name) && argRefs(pass, n, obj) {
				found = true
			}
		case *ast.AssignStmt:
			// v.epoch = ...: direct epoch-field restamp.
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok &&
					epochField.MatchString(sel.Sel.Name) && rootedAt(pass, sel.X, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rootedAt reports whether e is obj or a selector/index chain rooted at obj.
func rootedAt(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.ObjectOf(x) == obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

func argRefs(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if rootedAt(pass, a, obj) {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// walkShallow visits every node in body without descending into nested
// function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
