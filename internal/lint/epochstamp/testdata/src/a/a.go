// Package a is the epochstamp analyzer fixture: free-list shells
// recycled with and without a visible re-stamp.
package a

type shell struct {
	epoch   uint64
	records []int
}

func (g *shell) reset(epoch uint64) {
	g.epoch = epoch
	g.records = g.records[:0]
}

type stream struct {
	free  []*shell
	epoch uint64
}

// okResetMethod is the sanctioned pattern: pop, then reset(epoch).
func (s *stream) okResetMethod() *shell {
	var g *shell
	if n := len(s.free); n > 0 {
		g = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		g = &shell{}
	}
	s.epoch++
	g.reset(s.epoch)
	return g
}

// okDirectEpochField stamps the epoch field by hand.
func (s *stream) okDirectEpochField() *shell {
	g := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.epoch++
	g.epoch = s.epoch
	g.records = g.records[:0]
	return g
}

func restamp(g *shell, epoch uint64) {
	g.reset(epoch)
}

// okStampHelper routes the shell through a stamp helper.
func (s *stream) okStampHelper() *shell {
	g := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	restamp(g, s.epoch+1)
	return g
}

// okDeferredStamp stamps in a deferred closure: still this function.
func (s *stream) okDeferredStamp() *shell {
	g := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	defer func() { g.reset(s.epoch) }()
	return g
}

// badNoStamp hands out a recycled shell still carrying the previous
// occupant's epoch and buffers.
func (s *stream) badNoStamp() *shell {
	g := s.free[len(s.free)-1] // want `recycled shell g escapes without a reset or epoch stamp`
	s.free = s.free[:len(s.free)-1]
	return g
}

// badPartialScrub truncates a buffer but never restamps the epoch: old
// readers still match the recycled shell.
func (s *stream) badPartialScrub() *shell {
	g := s.free[len(s.free)-1] // want `recycled shell g escapes without a reset or epoch stamp`
	s.free = s.free[:len(s.free)-1]
	g.records = g.records[:0]
	return g
}

// badUnbound discards the popped shell without binding it, so no stamp
// can ever be verified.
func (s *stream) badUnbound() {
	_ = s.free[len(s.free)-1] // want `free-list pop must be bound to a variable`
}

// okNotAFreeList: ordinary slice indexing is none of our business.
func pick(shells []*shell) *shell {
	g := shells[len(shells)-1]
	return g
}
