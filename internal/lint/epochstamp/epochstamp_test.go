package epochstamp_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/epochstamp"
)

func TestEpochStamp(t *testing.T) {
	analysistest.Run(t, epochstamp.Analyzer, "a")
}
