// Package a is the determinism analyzer fixture: wall-clock reads,
// global rand draws, and order-sensitive map iteration.
package a

import (
	"math/rand"
	"sort"
	"time"
)

var sink []string
var last time.Time

func wallClock() {
	last = time.Now() // want `time\.Now reads the wall clock`
}

func wallElapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(6) // want `rand\.Intn draws from the global source`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // ok: draws from an explicit source
}

func newSource() *rand.Rand {
	return rand.New(rand.NewSource(7)) // ok: constructors draw nothing
}

func mapAppend(m map[string]int) {
	for k := range m {
		sink = append(sink, k) // want `append to a slice declared outside the loop`
	}
}

func mapAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: deterministically sorted below
	}
	sort.Strings(keys)
	return keys
}

func sliceAppend(xs []string) []string {
	var out []string
	for _, x := range xs { // ok: slice iteration is ordered
		out = append(out, x)
	}
	return out
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send`
	}
}

func argMax(m map[string]float64) string {
	best, bestScore := "", 0.0
	for k, v := range m {
		if v > bestScore { // want `comparison-guarded selection`
			best, bestScore = k, v
		}
	}
	return best
}

func pureMax(m map[int]int) int {
	maxK := 0
	for k := range m {
		if k > maxK {
			maxK = k // ok: running max over the compared variable itself
		}
	}
	return maxK
}

func allowed() {
	last = time.Now() //mslint:allow determinism fixture: wall-clock banner only
}

func allowedAlias() {
	last = time.Now() //mslint:allow nondet fixture: wall-clock banner only
}

func allowedStandalone(m map[string]int) {
	for k := range m {
		//mslint:allow determinism fixture: order genuinely does not matter here
		sink = append(sink, k)
	}
}
