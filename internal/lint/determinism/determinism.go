// Package determinism flags sources of run-to-run nondeterminism:
// wall-clock reads, draws from the global math/rand source, and map
// iteration whose order leaks into results. Microscope guarantees
// byte-identical diagnosis output for any worker count (DESIGN.md
// "Pipeline architecture"); all three constructs break that guarantee
// silently, surviving every test until a scheduler or hash-seed change
// exposes them.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"microscope/internal/lint/analysis"
)

// Analyzer is the determinism checker. The "nondet" alias is accepted in
// //mslint:allow comments.
var Analyzer = &analysis.Analyzer{
	Name:    "determinism",
	Aliases: []string{"nondet"},
	Doc: "flags time.Now/time.Since, global math/rand draws, and map iteration " +
		"that accumulates or selects results without a following deterministic sort",
	Run: run,
}

// sortName matches callee names that establish a deterministic order
// (sort.Slice, sort.Strings, slices.Sort, local sortFoo helpers...).
var sortName = regexp.MustCompile(`(?i)sort`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BlockStmt:
				checkBlock(pass, n)
			case *ast.CaseClause:
				checkStmts(pass, n.Body)
			case *ast.CommClause:
				checkStmts(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock and global-source randomness calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; diagnosis output must not depend on it (derive timing from the trace, or annotate why this is observability-only)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws use the shared global source; constructors
		// (New, NewSource, ...) and methods on an explicitly seeded
		// *rand.Rand are fine.
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !isConstructor(fn.Name()) {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global source; use a seeded *rand.Rand so replays are reproducible",
				fn.Name())
		}
	}
}

func isConstructor(name string) bool {
	return len(name) >= 3 && name[:3] == "New"
}

// checkBlock scans a statement list for map-range loops whose body
// accumulates results, requiring a later sibling sort over the
// accumulated value.
func checkBlock(pass *analysis.Pass, b *ast.BlockStmt) { checkStmts(pass, b.List) }

func checkStmts(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rng, ok := s.(*ast.RangeStmt)
		if !ok || !rangesOverMap(pass, rng) {
			continue
		}
		for _, acc := range accumulations(pass, rng) {
			if acc.obj != nil && sortedLater(pass, stmts[i+1:], acc.obj) {
				continue
			}
			pass.Reportf(acc.pos, "%s inside map iteration: order is random per run; %s", acc.what, acc.fix)
		}
	}
}

func rangesOverMap(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// accumulation is one order-sensitive effect found in a map-range body.
type accumulation struct {
	pos  token.Pos
	what string
	fix  string
	// obj is the accumulated variable when a later sort can discharge
	// the finding; nil means no sort can help (sends, selections).
	obj types.Object
}

// accumulations finds appends to outer slices, channel sends, and
// comparison-guarded selections (argmax/argmin) in the loop body.
func accumulations(pass *analysis.Pass, rng *ast.RangeStmt) []accumulation {
	var out []accumulation
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			loopVars[pass.ObjectOf(id)] = true
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			out = append(out, accumulation{
				pos:  n.Pos(),
				what: "channel send",
				fix:  "collect into a slice, sort, then send",
			})
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(id)
				if obj != nil && obj.Pos() < rng.Pos() {
					out = append(out, accumulation{
						pos:  n.Pos(),
						what: "append to a slice declared outside the loop",
						fix:  "sort the slice afterwards (a sibling sort call discharges this)",
						obj:  obj,
					})
				}
			}
		case *ast.IfStmt:
			condVars := comparedLoopVars(pass, n.Cond, loopVars)
			if len(condVars) > 0 && assignsUncomparedLoopVar(pass, n.Body, rng, loopVars, condVars) {
				out = append(out, accumulation{
					pos:  n.Pos(),
					what: "comparison-guarded selection (argmax over map values)",
					fix:  "iterate sorted keys or add a total tie-break on the key",
				})
				return false
			}
		}
		return true
	})
	return out
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// comparedLoopVars collects the loop variables that appear inside an
// order comparison (< > <= >=) of cond.
func comparedLoopVars(pass *analysis.Pass, cond ast.Expr, loopVars map[types.Object]bool) map[types.Object]bool {
	found := map[types.Object]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && loopVars[pass.ObjectOf(id)] {
					found[pass.ObjectOf(id)] = true
				}
				return true
			})
		}
		return true
	})
	return found
}

// assignsUncomparedLoopVar reports whether body assigns to a variable
// declared before the range statement a value derived from a loop
// variable that the guarding comparison does not constrain. A pure
// running max (`if v > best { best = v }`) only copies compared
// variables and is order-independent; copying the *other* loop variable
// (`if v > best { bestKey = k }`) ties the result to iteration order
// among equal values.
func assignsUncomparedLoopVar(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, loopVars, condVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok == token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil || obj.Pos() >= rng.Pos() {
				continue
			}
			ast.Inspect(as.Rhs[i], func(m ast.Node) bool {
				if rid, ok := m.(*ast.Ident); ok {
					if robj := pass.ObjectOf(rid); loopVars[robj] && !condVars[robj] {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sortedLater reports whether a statement after the loop calls a sort-ish
// function with the accumulated variable among its arguments.
func sortedLater(pass *analysis.Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !calleeNameMatches(call, sortName) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func calleeNameMatches(call *ast.CallExpr, rx *regexp.Regexp) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return rx.MatchString(fun.Name)
	case *ast.SelectorExpr:
		// Match the method/func name or the package qualifier, so both
		// sort.Strings and slices.SortFunc qualify.
		if rx.MatchString(fun.Sel.Name) {
			return true
		}
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return rx.MatchString(id.Name)
		}
	}
	return false
}
