package determinism_test

import (
	"testing"

	"microscope/internal/lint/analysistest"
	"microscope/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "a")
}
