// Package loader type-checks Go packages for the lint suite without
// golang.org/x/tools. It shells out to `go list -deps -export` to learn
// package layout and to obtain compiled export data from the build cache,
// parses the target packages' sources, and type-checks them with the
// standard library's gc importer reading that export data. This mirrors
// what x/tools' go/packages does in LoadAllSyntax mode for the root
// packages, at a fraction of the machinery.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -deps -export -json` over args and decodes the
// stream of package objects.
func goList(args []string) ([]listPkg, error) {
	cmdArgs := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, args...)
	cmd := exec.Command("go", cmdArgs...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer by reading gc export data files
// located via go list. It wraps the stdlib gc importer's lookup mode.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeInfo allocates a fully-populated types.Info.
func typeInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load parses and type-checks the packages matching the go list patterns
// (e.g. "./...", "microscope/..."). Only non-test files of the matched
// packages are loaded; their dependencies are consumed as compiled export
// data from the build cache.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var roots []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, root := range roots {
		if len(root.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, root.ImportPath, root.Name, root.Dir, absJoin(root.Dir, root.GoFiles))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	//mslint:allow sorttotal import paths are unique within one go list invocation
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir —
// analysistest fixtures live outside the module's package graph, so dir's
// imports are resolved with a dedicated go list call. The package's
// import path is synthesized as "testdata/<dirname>".
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	// Pre-parse to learn the import set, then fetch export data for it.
	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := map[string]bool{}
	name := ""
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		name = af.Name.Name
		for _, spec := range af.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil && p != "unsafe" {
				importSet[p] = true
			}
		}
		asts = append(asts, af)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return checkParsed(fset, imp, "testdata/"+filepath.Base(dir), name, dir, asts)
}

func absJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func check(fset *token.FileSet, imp types.Importer, importPath, name, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	return checkParsed(fset, imp, importPath, name, dir, asts)
}

func checkParsed(fset *token.FileSet, imp types.Importer, importPath, name, dir string, asts []*ast.File) (*Package, error) {
	info := typeInfo()
	var tcErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if len(tcErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, tcErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       name,
		Dir:        dir,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
	}, nil
}
