// Package faults is a deterministic, seedable corruptor for collected
// traces and encoded record streams. Production collectors lose records to
// ring overruns, truncate them on crashes, deliver them late across cores,
// duplicate them on retransmit paths, and timestamp them with skewed
// clocks; this package reproduces those fault models on demand so every
// downstream consumer (decode, reconstruction, diagnosis, online
// monitoring) can be measured under telemetry imperfection instead of
// assuming it away.
//
// All randomness flows from Config.Seed, so a fault pattern is exactly
// reproducible: same trace + same config = same corruption.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"microscope/internal/collector"
	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// Skew models one component's broken clock: a fixed offset plus linear
// drift applied to every record timestamp of that component.
type Skew struct {
	// Offset shifts every timestamp.
	Offset simtime.Duration
	// DriftPPM grows the shift linearly with time: +1 PPM adds 1 µs per
	// second of trace time.
	DriftPPM float64
}

// Config selects the fault models to apply. Zero-valued fields are
// disabled; a zero Config is the identity.
type Config struct {
	// Seed drives all randomness (same seed, same faults).
	Seed int64

	// DropRate drops each record independently with this probability
	// (uniform record loss).
	DropRate float64
	// BurstDropRate starts a drop burst at each record with this
	// probability; the burst then swallows a geometric run of records
	// with mean BurstLen (bursty loss: a ring overrun eats neighbours).
	BurstDropRate float64
	// BurstLen is the mean burst length (default 4).
	BurstLen int
	// TruncateRate truncates each record's batch tail with this
	// probability (partial record salvage after a crash).
	TruncateRate float64
	// DupRate re-emits each record once, slightly later, with this
	// probability (duplicate IPIDs downstream).
	DupRate float64
	// ReorderRate delays each record's position in the stream with this
	// probability, modelling late arrival at the dumper.
	ReorderRate float64
	// ReorderDelay is how late a reordered record lands (default 50 µs).
	ReorderDelay simtime.Duration
	// SkewComps applies per-component clock skew/drift.
	SkewComps map[string]Skew
}

func (c *Config) setDefaults() {
	if c.BurstLen <= 0 {
		c.BurstLen = 4
	}
	if c.ReorderDelay <= 0 {
		c.ReorderDelay = 50 * simtime.Microsecond
	}
}

// Enabled reports whether any fault model is active.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.BurstDropRate > 0 || c.TruncateRate > 0 ||
		c.DupRate > 0 || c.ReorderRate > 0 || len(c.SkewComps) > 0
}

// Stats counts what the corruptor did.
type Stats struct {
	Input      int // records in
	Dropped    int // records removed (uniform + bursty)
	Truncated  int // records with a shortened batch
	Duplicated int // records re-emitted
	Reordered  int // records moved later in the stream
	Skewed     int // records with shifted timestamps
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("faults: %d records in, %d dropped, %d truncated, %d duplicated, %d reordered, %d skewed",
		s.Input, s.Dropped, s.Truncated, s.Duplicated, s.Reordered, s.Skewed)
}

// streamEntry pairs a record with its (possibly perturbed) stream position
// key, so reordering is expressible without touching timestamps.
type streamEntry struct {
	rec collector.BatchRecord
	pos simtime.Time // stream-order key, not the record timestamp
	seq int          // tiebreak: original index, keeps the shuffle stable
}

// Inject applies the configured fault models to a trace, returning a
// corrupted copy and fault accounting. The input is never modified. The
// returned trace's Integrity reflects the injected damage, exactly as a
// trace decoded from a damaged stream would.
func Inject(tr *collector.Trace, cfg Config) (*collector.Trace, Stats) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var st Stats
	st.Input = len(tr.Records)

	entries := make([]streamEntry, 0, len(tr.Records))
	burstLeft := 0
	for i := range tr.Records {
		r := tr.Records[i] // copy; slices shared until truncation
		if burstLeft > 0 {
			burstLeft--
			st.Dropped++
			continue
		}
		if cfg.BurstDropRate > 0 && rng.Float64() < cfg.BurstDropRate {
			// Geometric burst with the configured mean: this record
			// plus a run of followers.
			burstLeft = geometric(rng, cfg.BurstLen)
			st.Dropped++
			continue
		}
		if cfg.DropRate > 0 && rng.Float64() < cfg.DropRate {
			st.Dropped++
			continue
		}
		if cfg.TruncateRate > 0 && len(r.IPIDs) > 1 && rng.Float64() < cfg.TruncateRate {
			keep := 1 + rng.Intn(len(r.IPIDs)-1)
			r.IPIDs = append([]uint16(nil), r.IPIDs[:keep]...)
			if r.Tuples != nil {
				r.Tuples = append([]packet.FiveTuple(nil), r.Tuples[:keep]...)
			}
			st.Truncated++
		}
		if sk, ok := cfg.SkewComps[r.Comp]; ok {
			shift := sk.Offset + simtime.Duration(float64(r.At)*sk.DriftPPM/1e6)
			r.At = r.At.Add(shift)
			st.Skewed++
		}
		pos := r.At
		if cfg.ReorderRate > 0 && rng.Float64() < cfg.ReorderRate {
			pos = pos.Add(cfg.ReorderDelay)
			st.Reordered++
		}
		entries = append(entries, streamEntry{rec: r, pos: pos, seq: len(entries)})
		if cfg.DupRate > 0 && rng.Float64() < cfg.DupRate {
			dup := r
			dup.IPIDs = append([]uint16(nil), r.IPIDs...)
			if r.Tuples != nil {
				dup.Tuples = append([]packet.FiveTuple(nil), r.Tuples...)
			}
			entries = append(entries, streamEntry{rec: dup, pos: pos.Add(cfg.ReorderDelay), seq: len(entries)})
			st.Duplicated++
		}
	}

	// Order by perturbed stream position: reordered and duplicated
	// records land late while keeping their original timestamps.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].pos != entries[j].pos {
			return entries[i].pos < entries[j].pos
		}
		return entries[i].seq < entries[j].seq
	})

	out := &collector.Trace{Meta: tr.Meta, Integrity: tr.Integrity}
	out.Records = make([]collector.BatchRecord, len(entries))
	for i := range entries {
		out.Records[i] = entries[i].rec
	}
	out.Integrity.DroppedRecords += st.Dropped
	out.Integrity.TruncatedRecords += st.Truncated
	return out, st
}

// geometric samples a geometric run length with the given mean (≥ 0).
func geometric(rng *rand.Rand, mean int) int {
	n := 0
	p := 1.0 / float64(mean)
	for rng.Float64() > p {
		n++
	}
	return n
}

// StreamConfig selects byte-level faults for an encoded record stream.
type StreamConfig struct {
	// Seed drives all randomness.
	Seed int64
	// FlipRate flips each bit independently with this probability.
	FlipRate float64
	// TruncateFrac cuts the stream to this fraction of its length
	// (0 or ≥1 disables).
	TruncateFrac float64
}

// InjectStream corrupts an encoded byte stream (for decode-path testing).
func InjectStream(data []byte, cfg StreamConfig) []byte {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := append([]byte(nil), data...)
	if cfg.TruncateFrac > 0 && cfg.TruncateFrac < 1 {
		out = out[:int(float64(len(out))*cfg.TruncateFrac)]
	}
	if cfg.FlipRate > 0 {
		// Never corrupt the magic: a lost header is total loss, which
		// is a different (trivial) failure mode.
		for i := 4; i < len(out); i++ {
			for b := 0; b < 8; b++ {
				if rng.Float64() < cfg.FlipRate {
					out[i] ^= 1 << b
				}
			}
		}
	}
	return out
}

// ParseSpec parses the CLI fault specification: a comma-separated list of
// key=value pairs, e.g.
//
//	drop=0.05,seed=7,dup=0.01,reorder=0.02,skew=fw2:300us:50
//
// Keys: seed, drop, burst, burstlen, trunc, dup, reorder, delay (duration),
// skew=<comp>:<offset>[:<driftppm>] (repeatable with '+': skew=a:1ms+b:2ms).
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("faults: bad spec entry %q (want key=value)", kv)
		}
		key, val := parts[0], parts[1]
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.DropRate, err = parseRate(val)
		case "burst":
			cfg.BurstDropRate, err = parseRate(val)
		case "burstlen":
			cfg.BurstLen, err = strconv.Atoi(val)
		case "trunc":
			cfg.TruncateRate, err = parseRate(val)
		case "dup":
			cfg.DupRate, err = parseRate(val)
		case "reorder":
			cfg.ReorderRate, err = parseRate(val)
		case "delay":
			cfg.ReorderDelay, err = parseDuration(val)
		case "skew":
			for _, one := range strings.Split(val, "+") {
				comp, sk, serr := parseSkew(one)
				if serr != nil {
					return cfg, serr
				}
				if cfg.SkewComps == nil {
					cfg.SkewComps = make(map[string]Skew)
				}
				cfg.SkewComps[comp] = sk
			}
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: bad value for %s: %w", key, err)
		}
	}
	return cfg, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate %v out of [0,1]", v)
	}
	return v, nil
}

func parseDuration(s string) (simtime.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return simtime.Duration(d.Nanoseconds()), nil
}

func parseSkew(s string) (string, Skew, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return "", Skew{}, fmt.Errorf("faults: skew must be <comp>:<offset>[:<driftppm>], got %q", s)
	}
	off, err := parseDuration(parts[1])
	if err != nil {
		return "", Skew{}, fmt.Errorf("faults: bad skew offset %q: %w", parts[1], err)
	}
	sk := Skew{Offset: off}
	if len(parts) == 3 {
		if sk.DriftPPM, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return "", Skew{}, fmt.Errorf("faults: bad skew drift %q: %w", parts[2], err)
		}
	}
	return parts[0], sk, nil
}
