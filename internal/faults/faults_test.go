package faults

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/packet"
	"microscope/internal/simtime"
)

// makeTrace builds a synthetic trace with n records across two components.
func makeTrace(n int) *collector.Trace {
	tr := &collector.Trace{Meta: collector.Meta{MaxBatch: 32}}
	ts := simtime.Time(0)
	for i := 0; i < n; i++ {
		ts = ts.Add(100)
		rec := collector.BatchRecord{
			Comp:  []string{"nat1", "fw1"}[i%2],
			Queue: "fw1.in",
			At:    ts,
			Dir:   collector.Dir(i % 3),
			IPIDs: []uint16{uint16(i), uint16(i + 1), uint16(i + 2), uint16(i + 3)},
		}
		if rec.Dir == collector.DirDeliver {
			rec.Tuples = make([]packet.FiveTuple, len(rec.IPIDs))
			for j := range rec.Tuples {
				rec.Tuples[j] = packet.FiveTuple{SrcIP: uint32(i), SrcPort: uint16(j), Proto: packet.ProtoTCP}
			}
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func TestInjectIdentity(t *testing.T) {
	tr := makeTrace(50)
	out, st := Inject(tr, Config{Seed: 1})
	if len(out.Records) != 50 || st.Dropped != 0 || st.Truncated != 0 {
		t.Fatalf("identity config mutated trace: %+v", st)
	}
	for i := range out.Records {
		if out.Records[i].At != tr.Records[i].At || out.Records[i].Comp != tr.Records[i].Comp {
			t.Fatalf("record %d changed", i)
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	tr := makeTrace(500)
	cfg := Config{Seed: 42, DropRate: 0.1, TruncateRate: 0.05, DupRate: 0.05, ReorderRate: 0.1}
	a, sa := Inject(tr, cfg)
	b, sb := Inject(tr, cfg)
	if sa != sb || len(a.Records) != len(b.Records) {
		t.Fatalf("same seed diverged: %+v vs %+v", sa, sb)
	}
	for i := range a.Records {
		if a.Records[i].At != b.Records[i].At || a.Records[i].Comp != b.Records[i].Comp {
			t.Fatalf("record %d differs between runs", i)
		}
	}
	c, sc := Inject(tr, Config{Seed: 43, DropRate: 0.1, TruncateRate: 0.05, DupRate: 0.05, ReorderRate: 0.1})
	if sc.Dropped == sa.Dropped && len(c.Records) == len(a.Records) && sc.Truncated == sa.Truncated {
		t.Log("different seeds produced identical shape (possible but unlikely)")
	}
}

func TestInjectUniformDrop(t *testing.T) {
	tr := makeTrace(2000)
	out, st := Inject(tr, Config{Seed: 7, DropRate: 0.05})
	if st.Dropped == 0 {
		t.Fatal("nothing dropped at 5%")
	}
	frac := float64(st.Dropped) / float64(st.Input)
	if frac < 0.02 || frac > 0.09 {
		t.Errorf("drop fraction %v far from 0.05", frac)
	}
	if len(out.Records)+st.Dropped != st.Input {
		t.Errorf("accounting: %d + %d != %d", len(out.Records), st.Dropped, st.Input)
	}
	if out.Integrity.DroppedRecords != st.Dropped {
		t.Errorf("integrity not updated: %+v", out.Integrity)
	}
	if tr.Integrity.DroppedRecords != 0 {
		t.Error("input trace mutated")
	}
}

func TestInjectBurstyDrop(t *testing.T) {
	tr := makeTrace(2000)
	out, st := Inject(tr, Config{Seed: 7, BurstDropRate: 0.01, BurstLen: 6})
	if st.Dropped == 0 {
		t.Fatal("no bursts at 1%")
	}
	// Bursty loss removes runs: the number of gaps in the survivor
	// sequence should be well below the dropped count.
	if len(out.Records)+st.Dropped != st.Input {
		t.Errorf("accounting: %d + %d != %d", len(out.Records), st.Dropped, st.Input)
	}
}

func TestInjectTruncation(t *testing.T) {
	tr := makeTrace(500)
	out, st := Inject(tr, Config{Seed: 3, TruncateRate: 0.5})
	if st.Truncated == 0 {
		t.Fatal("nothing truncated")
	}
	for i := range out.Records {
		r := &out.Records[i]
		if len(r.IPIDs) == 0 {
			t.Fatal("truncation produced empty record")
		}
		if r.Dir == collector.DirDeliver && len(r.Tuples) != len(r.IPIDs) {
			t.Fatalf("record %d tuples not truncated in step: %d vs %d", i, len(r.Tuples), len(r.IPIDs))
		}
	}
	if out.Integrity.TruncatedRecords != st.Truncated {
		t.Errorf("integrity not updated: %+v", out.Integrity)
	}
}

func TestInjectDuplicates(t *testing.T) {
	tr := makeTrace(500)
	out, st := Inject(tr, Config{Seed: 5, DupRate: 0.1})
	if st.Duplicated == 0 {
		t.Fatal("nothing duplicated")
	}
	if len(out.Records) != st.Input+st.Duplicated {
		t.Errorf("dup accounting: %d records for %d in + %d dup", len(out.Records), st.Input, st.Duplicated)
	}
}

func TestInjectReorderKeepsTimestamps(t *testing.T) {
	tr := makeTrace(500)
	out, st := Inject(tr, Config{Seed: 5, ReorderRate: 0.2})
	if st.Reordered == 0 {
		t.Fatal("nothing reordered")
	}
	// Stream order must be perturbed but the multiset of timestamps
	// preserved.
	outOfOrder := 0
	for i := 1; i < len(out.Records); i++ {
		if out.Records[i].At < out.Records[i-1].At {
			outOfOrder++
		}
	}
	if outOfOrder == 0 {
		t.Error("reorder produced a still-sorted stream")
	}
}

func TestInjectSkew(t *testing.T) {
	tr := makeTrace(100)
	off := 300 * simtime.Microsecond
	out, st := Inject(tr, Config{Seed: 1, SkewComps: map[string]Skew{"fw1": {Offset: off}}})
	if st.Skewed == 0 {
		t.Fatal("nothing skewed")
	}
	// Every fw1 record shifts by the offset; nat1 records keep their
	// original timestamps.
	fw, nat := 0, 0
	orig := make(map[simtime.Time]int)
	for i := range tr.Records {
		if tr.Records[i].Comp == "nat1" {
			orig[tr.Records[i].At]++
		}
	}
	for i := range out.Records {
		switch out.Records[i].Comp {
		case "fw1":
			fw++
		case "nat1":
			if orig[out.Records[i].At] == 0 {
				t.Fatal("nat1 timestamp changed under fw1 skew")
			}
			nat++
		}
	}
	if fw == 0 || nat == 0 {
		t.Fatal("lost components")
	}
	// Drift grows with time.
	out2, _ := Inject(tr, Config{Seed: 1, SkewComps: map[string]Skew{"fw1": {DriftPPM: 1e5}}})
	var firstShift, lastShift simtime.Duration
	seen := 0
	for i := range tr.Records {
		if tr.Records[i].Comp != "fw1" {
			continue
		}
		// Records keep relative order per component under pure skew.
		shift := findShift(t, out2, tr.Records[i].IPIDs[0], tr.Records[i].At)
		if seen == 0 {
			firstShift = shift
		}
		lastShift = shift
		seen++
	}
	if seen == 0 || lastShift <= firstShift {
		t.Errorf("drift not increasing: first %v last %v", firstShift, lastShift)
	}
}

func findShift(t *testing.T, tr *collector.Trace, ipid uint16, origAt simtime.Time) simtime.Duration {
	t.Helper()
	for i := range tr.Records {
		if tr.Records[i].Comp == "fw1" && len(tr.Records[i].IPIDs) > 0 && tr.Records[i].IPIDs[0] == ipid {
			return tr.Records[i].At.Sub(origAt)
		}
	}
	t.Fatalf("record with ipid %d vanished", ipid)
	return 0
}

func TestInjectStream(t *testing.T) {
	enc := collector.NewEncoder()
	ts := simtime.Time(0)
	for i := 0; i < 100; i++ {
		ts = ts.Add(100)
		enc.Append(&collector.BatchRecord{Comp: "a", At: ts, Dir: collector.DirRead, IPIDs: []uint16{uint16(i)}})
	}
	valid := enc.Bytes()
	mutated := InjectStream(valid, StreamConfig{Seed: 9, FlipRate: 0.001})
	recs, st, err := collector.DecodeStream(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped == 0 {
		t.Skip("flips happened to be harmless at this seed")
	}
	if len(recs) == 0 {
		t.Error("decode salvaged nothing")
	}
	again := InjectStream(valid, StreamConfig{Seed: 9, FlipRate: 0.001})
	if string(again) != string(mutated) {
		t.Error("stream corruption not deterministic")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("drop=0.05,seed=7,dup=0.01,reorder=0.02,delay=100us,skew=fw2:300us:50+nat1:1ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.DropRate != 0.05 || cfg.DupRate != 0.01 || cfg.ReorderRate != 0.02 {
		t.Errorf("parsed config wrong: %+v", cfg)
	}
	if cfg.ReorderDelay != 100*simtime.Microsecond {
		t.Errorf("delay: %v", cfg.ReorderDelay)
	}
	if sk := cfg.SkewComps["fw2"]; sk.Offset != 300*simtime.Microsecond || sk.DriftPPM != 50 {
		t.Errorf("fw2 skew: %+v", sk)
	}
	if sk := cfg.SkewComps["nat1"]; sk.Offset != simtime.Duration(simtime.Millisecond) {
		t.Errorf("nat1 skew: %+v", sk)
	}
	if !cfg.Enabled() {
		t.Error("enabled config reported disabled")
	}
	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Error("empty spec must be identity")
	}
	for _, bad := range []string{"drop=2", "nope=1", "drop", "skew=fw2", "delay=xyz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
