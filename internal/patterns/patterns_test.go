package patterns

import (
	"strings"
	"testing"

	"microscope/internal/autofocus"
	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

func trigTuple(sport, dport uint16) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(100, 0, 0, 1),
		DstIP:   packet.IPFromOctets(32, 0, 0, 1),
		SrcPort: sport,
		DstPort: dport,
		Proto:   packet.ProtoTCP,
	}
}

func bgTuple(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(10, 3, byte(i>>8), byte(i)),
		DstIP:   packet.IPFromOctets(23, 7, byte(i), 9),
		SrcPort: uint16(10000 + i),
		DstPort: uint16(20000 + i),
		Proto:   packet.ProtoUDP,
	}
}

func TestAggregateSyntheticRelations(t *testing.T) {
	// Bug-triggering flows at fw2 hurt victims at fw2 — the §6.4 shape.
	var rels []Relation
	for i := 0; i < 9; i++ {
		for v := 0; v < 20; v++ {
			rels = append(rels, Relation{
				CulpritFlow:    trigTuple(uint16(2000+i), uint16(6000+i)),
				CulpritHasFlow: true,
				CulpritNF:      "fw2",
				CulpritKind:    "fw",
				VictimFlow:     bgTuple(v),
				VictimHasFlow:  true,
				VictimNF:       "fw2",
				VictimKind:     "fw",
				Score:          5,
			})
		}
	}
	// Background noise relations.
	for i := 0; i < 50; i++ {
		rels = append(rels, Relation{
			CulpritFlow:    bgTuple(1000 + i),
			CulpritHasFlow: true,
			CulpritNF:      "source",
			CulpritKind:    "source",
			VictimFlow:     bgTuple(2000 + i),
			VictimHasFlow:  true,
			VictimNF:       "vpn1",
			VictimKind:     "vpn",
			Score:          0.5,
		})
	}
	pats := Aggregate(rels, Config{Threshold: 0.01})
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	// The dominant pattern must implicate fw2 with culprit flows from
	// 100.0.0.1.
	top := pats[0]
	if top.CulpritNF.String() != "fw2" {
		t.Errorf("top culprit NF: %v", top.CulpritNF)
	}
	if top.CulpritFlow.SrcLen == 0 ||
		top.CulpritFlow.SrcPrefix>>(32-top.CulpritFlow.SrcLen) !=
			packet.IPFromOctets(100, 0, 0, 1)>>(32-top.CulpritFlow.SrcLen) {
		t.Errorf("top culprit flow does not cover 100.0.0.1: %v", top.CulpritFlow)
	}
	// Aggregation must compress: far fewer patterns than relations.
	if len(pats) >= len(rels)/2 {
		t.Errorf("no compression: %d patterns for %d relations", len(pats), len(rels))
	}
}

func TestAggregateEmpty(t *testing.T) {
	if Aggregate(nil, Config{}) != nil {
		t.Error("nil relations should aggregate to nil")
	}
}

func TestAggregateUnknownFlows(t *testing.T) {
	rels := []Relation{
		{CulpritNF: "nat1", CulpritKind: "nat", VictimNF: "vpn1", VictimKind: "vpn", Score: 10},
		{CulpritNF: "nat1", CulpritKind: "nat", VictimNF: "vpn1", VictimKind: "vpn", Score: 10},
	}
	pats := Aggregate(rels, Config{Threshold: 0.01})
	if len(pats) == 0 {
		t.Fatal("unknown flows should still aggregate by NF")
	}
	if pats[0].CulpritNF.String() != "nat1" {
		t.Errorf("culprit NF: %v", pats[0].CulpritNF)
	}
}

func TestRenderFormat(t *testing.T) {
	pats := []Pattern{{
		CulpritFlow: autofocus.FlowAgg{
			SrcPrefix: packet.IPFromOctets(100, 0, 0, 1), SrcLen: 32,
			SrcPort: autofocus.PortRange{Lo: 2004, Hi: 2004},
			DstPort: autofocus.PortRange{Lo: 6004, Hi: 6004},
			Proto:   6,
		},
		CulpritNF: autofocus.NFAgg{Name: "fw2", Kind: "fw"},
		VictimFlow: autofocus.FlowAgg{
			SrcPort: autofocus.PortRange{Lo: 0, Hi: 65535},
			DstPort: autofocus.PortRange{Lo: 1024, Hi: 65535},
			Proto:   -1,
		},
		VictimNF: autofocus.NFAgg{Name: "fw2", Kind: "fw"},
		Score:    42,
	}}
	got := Render(pats)
	if !strings.Contains(got, "=>") || !strings.Contains(got, "100.0.0.1/32") || !strings.Contains(got, "fw2") {
		t.Errorf("Render: %q", got)
	}
}

// TestEndToEndBugPatterns is the §6.4 experiment in miniature: inject a
// firewall bug triggered by specific flows, diagnose, aggregate, and find
// the trigger flows among the top culprit patterns.
func TestEndToEndBugPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scenario test; skipped in -short mode")
	}
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 61,
		nfsim.ChainSpec{Name: "fw2", Kind: "fw", Rate: simtime.MPPS(0.8)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.8)},
	)
	trigger := trigTuple(2004, 6004)
	sim.InjectBug("fw2", &nfsim.SlowPath{
		Match: func(ft packet.FiveTuple) bool {
			return ft.SrcIP == packet.IPFromOctets(100, 0, 0, 1) &&
				ft.SrcPort >= 2000 && ft.SrcPort <= 2008
		},
		Rate: simtime.PPS(20_000),
	}, "bug")

	// Background traffic spreads across many distinct flows, as a real
	// trace does — individually negligible, so they roll up to wide
	// aggregates while the trigger flows stay sharp.
	iv := simtime.MPPS(0.4).Interval()
	var ems []traffic.Emission
	for i := 0; i < 2500; i++ {
		ems = append(ems, traffic.Emission{
			At: simtime.Time(simtime.Duration(i) * iv), Flow: bgTuple(i % 601), Size: 64, Burst: -1,
		})
	}
	sched := &traffic.Schedule{Emissions: ems}
	sched.InjectFlow(trigger, simtime.Time(simtime.Millisecond), 50, simtime.Duration(5*simtime.Microsecond), 64)
	sched.InjectFlow(trigTuple(2006, 6006), simtime.Time(3*simtime.Millisecond), 50, simtime.Duration(5*simtime.Microsecond), 64)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(200 * simtime.Millisecond))

	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"fw2", "vpn1"})))
	st.Reconstruct()
	diags := core.NewEngine(core.Config{}).Diagnose(st)
	if len(diags) == 0 {
		t.Fatal("no diagnoses")
	}
	rels := RelationsFromDiagnoses(st, diags, Config{})
	if len(rels) == 0 {
		t.Fatal("no relations")
	}
	pats := Aggregate(rels, Config{Threshold: 0.01})
	if len(pats) == 0 {
		t.Fatal("no patterns")
	}
	// Some reported culprit aggregate must pinpoint the trigger flows at
	// fw2 with a specific source (the paper's Figure 14 shows 4 of 80
	// patterns containing the bug-triggering flows). A fully general
	// aggregate does not count.
	found := false
	for _, p := range pats {
		nfOK := p.CulpritNF.Name == "fw2" || (p.CulpritNF.Name == "" && p.CulpritNF.Kind == "fw")
		if nfOK && p.CulpritFlow.SrcLen >= 24 && p.CulpritFlow.Matches(trigger) {
			found = true
			break
		}
	}
	if !found {
		limit := len(pats)
		if limit > 15 {
			limit = 15
		}
		t.Errorf("trigger flow not pinpointed by any culprit pattern; top:\n%s", Render(pats[:limit]))
	}
	// Compression: the report should be far smaller than the relation set.
	if len(pats) > len(rels)/4 {
		t.Errorf("poor compression: %d patterns from %d relations", len(pats), len(rels))
	}
}

func TestRelationsFromDiagnosesShares(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 3, nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	iv := simtime.MPPS(0.2).Interval()
	var ems []traffic.Emission
	for i := 0; i < 100; i++ {
		ems = append(ems, traffic.Emission{At: simtime.Time(simtime.Duration(i) * iv), Flow: bgTuple(i % 3), Size: 64, Burst: -1})
	}
	sim.LoadSchedule(&traffic.Schedule{Emissions: ems})
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	store := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"fw1"})))
	store.Reconstruct()

	diags := []core.Diagnosis{{
		Victim: core.Victim{Journey: 0, Comp: "fw1", Tuple: bgTuple(9), HasTuple: true},
		Causes: []core.Cause{{
			Comp: "fw1", Kind: core.CulpritLocalProcessing, Score: 12,
			CulpritJourneys: []int{0, 1, 2},
		}},
	}}
	rels := RelationsFromDiagnoses(store, diags, Config{})
	if len(rels) != 3 {
		t.Fatalf("relations: got %d", len(rels))
	}
	var sum float64
	for _, r := range rels {
		sum += r.Score
		if r.CulpritNF != "fw1" || r.VictimNF != "fw1" {
			t.Error("NFs wrong")
		}
		if r.CulpritKind != "fw" {
			t.Errorf("kind: %q", r.CulpritKind)
		}
	}
	if sum < 11.99 || sum > 12.01 {
		t.Errorf("score conservation: %v", sum)
	}
}

func TestRelationsSubsampling(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 3, nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(1)})
	iv := simtime.MPPS(0.3).Interval()
	var ems []traffic.Emission
	for i := 0; i < 1200; i++ {
		ems = append(ems, traffic.Emission{At: simtime.Time(simtime.Duration(i) * iv), Flow: bgTuple(i % 5), Size: 64, Burst: -1})
	}
	sim.LoadSchedule(&traffic.Schedule{Emissions: ems})
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	store := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"fw1"})))
	store.Reconstruct()

	many := make([]int, 1000)
	for i := range many {
		many[i] = i
	}
	diags := []core.Diagnosis{{
		Victim: core.Victim{Journey: 0, Comp: "fw1"},
		Causes: []core.Cause{{Comp: "fw1", Kind: core.CulpritLocalProcessing, Score: 100, CulpritJourneys: many}},
	}}
	rels := RelationsFromDiagnoses(store, diags, Config{MaxCulpritsPerCause: 64})
	if len(rels) > 64 {
		t.Errorf("subsampling failed: %d relations", len(rels))
	}
	var sum float64
	for _, r := range rels {
		sum += r.Score
	}
	// Score conservation within the sampled set (each share is
	// score/len(sampled) — hmm, shares use the sampled count).
	if sum < 99 || sum > 101 {
		t.Errorf("score sum: %v", sum)
	}
}
