// Package patterns implements Microscope's causal-pattern aggregation
// (paper §4.4): packet-level causal relations
//
//	<culprit packets, culprit NF> → <victim packet, victim NF>: score
//
// are aggregated into a ranked list of
//
//	<culprit flow aggregate, culprit NF set> → <victim flow aggregate,
//	victim NF set>: score
//
// using the two-phase decoupling the paper describes: first AutoFocus over
// the victim dimensions per culprit group, then AutoFocus over the culprit
// dimensions across the intermediate aggregates. The decoupling is what
// keeps the many-dimension search tractable.
package patterns

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"microscope/internal/autofocus"
	"microscope/internal/core"
	"microscope/internal/obs"
	"microscope/internal/packet"
	"microscope/internal/par"
	"microscope/internal/tracestore"
)

// Relation is one packet-level causal relation, the §4.4 input.
type Relation struct {
	CulpritFlow packet.FiveTuple
	// CulpritHasFlow is false when the culprit packet never reached
	// egress, so its five-tuple is unknown (§5 records tuples only at
	// the end of the graph).
	CulpritHasFlow bool
	CulpritNF      string
	CulpritKind    string

	VictimFlow    packet.FiveTuple
	VictimHasFlow bool
	VictimNF      string
	VictimKind    string

	Score float64
}

// Pattern is one aggregated causal pattern.
type Pattern struct {
	CulpritFlow autofocus.FlowAgg
	CulpritNF   autofocus.NFAgg
	VictimFlow  autofocus.FlowAgg
	VictimNF    autofocus.NFAgg
	Score       float64
}

// String renders the Figure 14 row format:
// "<culprit 5-tuple> <culprit location> => <victim 5-tuple> <victim location>".
func (p Pattern) String() string {
	return fmt.Sprintf("%s %s => %s %s : %.1f",
		p.CulpritFlow, p.CulpritNF, p.VictimFlow, p.VictimNF, p.Score)
}

// Config tunes aggregation.
type Config struct {
	// Threshold is the significance fraction th (default 0.01, the
	// paper's evaluation setting). Higher values yield fewer, coarser
	// patterns.
	Threshold float64
	// Phase1Threshold is the per-culprit-group victim aggregation
	// threshold (default 0.05).
	Phase1Threshold float64
	// MaxPatterns caps the final report (0 = unlimited).
	MaxPatterns int
	// MaxCulpritsPerCause bounds how many culprit packets one cause
	// contributes relation shares to (default 256), keeping the input
	// size linear in diagnoses.
	MaxCulpritsPerCause int
	// Workers bounds the per-group AutoFocus fan-out in both phases
	// (0 = GOMAXPROCS, 1 = sequential). Output is identical for any
	// value: groups are independent and results merge in group order.
	Workers int
	// Obs receives aggregation metrics (relations in, patterns out, phase
	// group counts and latencies). nil falls back to the process default.
	Obs *obs.Registry
}

func (c *Config) setDefaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.01
	}
	if c.Phase1Threshold == 0 {
		c.Phase1Threshold = 0.05
	}
	if c.MaxCulpritsPerCause == 0 {
		c.MaxCulpritsPerCause = 256
	}
}

// RelationsFromDiagnoses explodes per-victim diagnoses into packet-level
// causal relations: each cause's score is split evenly across its culprit
// packets (the PreSet packets at the culprit NF).
func RelationsFromDiagnoses(st *tracestore.Store, diags []core.Diagnosis, cfg Config) []Relation {
	cfg.setDefaults()
	var out []Relation
	for di := range diags {
		d := &diags[di]
		for ci := range d.Causes {
			c := &d.Causes[ci]
			culprits := c.CulpritJourneys
			if len(culprits) > cfg.MaxCulpritsPerCause {
				// Deterministic random subsample. A stride sample
				// would alias against periodic arrival patterns
				// (e.g. every third packet belonging to one flow)
				// and silently drop whole flows.
				rng := rand.New(rand.NewSource(int64(len(culprits))*2654435761 + 12345))
				perm := rng.Perm(len(culprits))[:cfg.MaxCulpritsPerCause]
				sort.Ints(perm)
				sampled := make([]int, len(perm))
				for i, p := range perm {
					sampled[i] = culprits[p]
				}
				culprits = sampled
			}
			if len(culprits) == 0 {
				// Keep the relation with an unknown culprit flow.
				out = append(out, Relation{
					CulpritNF:     c.Comp,
					CulpritKind:   st.KindOf(c.Comp),
					VictimFlow:    d.Victim.Tuple,
					VictimHasFlow: d.Victim.HasTuple,
					VictimNF:      d.Victim.Comp,
					VictimKind:    st.KindOf(d.Victim.Comp),
					Score:         c.Score,
				})
				continue
			}
			share := c.Score / float64(len(culprits))
			for _, jIdx := range culprits {
				if jIdx < 0 || jIdx >= len(st.Journeys) {
					continue
				}
				j := &st.Journeys[jIdx]
				out = append(out, Relation{
					CulpritFlow:    j.Tuple,
					CulpritHasFlow: j.HasTuple,
					CulpritNF:      c.Comp,
					CulpritKind:    st.KindOf(c.Comp),
					VictimFlow:     d.Victim.Tuple,
					VictimHasFlow:  d.Victim.HasTuple,
					VictimNF:       d.Victim.Comp,
					VictimKind:     st.KindOf(d.Victim.Comp),
					Score:          share,
				})
			}
		}
	}
	return out
}

// victimAggKey identifies an intermediate victim aggregate.
type victimAggKey struct {
	flow autofocus.FlowAgg
	nf   autofocus.NFAgg
}

// culpritKey identifies an exact culprit <packet flow, NF> group.
type culpritKey struct {
	flow packet.FiveTuple
	has  bool
	nf   string
}

// Aggregate runs the two-phase aggregation and returns the ranked patterns.
func Aggregate(rels []Relation, cfg Config) []Pattern {
	//mslint:allow ctxflow non-ctx convenience wrapper; cancellable path is AggregateContext
	out, _ := AggregateContext(context.Background(), rels, cfg)
	return out
}

// AggregateContext is Aggregate with cooperative cancellation: each phase's
// AutoFocus fan-out checks ctx between groups, and a cancelled context
// returns nil patterns with ctx's error. With a background context the
// output is identical to Aggregate.
func AggregateContext(ctx context.Context, rels []Relation, cfg Config) ([]Pattern, error) {
	cfg.setDefaults()
	if len(rels) == 0 {
		return nil, ctx.Err()
	}
	reg := obs.Or(cfg.Obs)
	phaseNS := func(phase string, began time.Time) {
		if reg == nil {
			return
		}
		//mslint:allow nondet phase latency sample for obs histograms, never in the pattern output
		reg.Histogram("microscope_patterns_phase_ns{phase=\"" + phase + "\"}").Observe(time.Since(began))
	}
	var phaseStart time.Time
	if reg != nil {
		reg.Counter("microscope_patterns_relations_total").Add(int64(len(rels)))
		phaseStart = time.Now() //mslint:allow nondet phase latency sample for obs histograms, never in the pattern output
	}
	var grand float64
	for i := range rels {
		grand += rels[i].Score
	}

	// Shared lattice caches: victims repeat across culprit groups and
	// culprit leaves repeat across victim-aggregate groups.
	victimCache := autofocus.NewCache()
	culpritCache := autofocus.NewCache()

	// Phase 1: group by exact culprit <packet flow, NF>; aggregate the
	// victim dimensions within each group.
	type culpritGroup struct {
		kind  string
		items []autofocus.Item
	}
	groups := make(map[culpritKey]*culpritGroup)
	var order []culpritKey
	for i := range rels {
		r := &rels[i]
		k := culpritKey{flow: r.CulpritFlow, has: r.CulpritHasFlow, nf: r.CulpritNF}
		g := groups[k]
		if g == nil {
			g = &culpritGroup{kind: r.CulpritKind}
			groups[k] = g
			order = append(order, k)
		}
		vf := r.VictimFlow
		if !r.VictimHasFlow {
			vf = packet.FiveTuple{} // aggregates to * buckets naturally
		}
		g.items = append(g.items, autofocus.Item{
			Flow:   vf,
			NF:     r.VictimNF,
			Kind:   r.VictimKind,
			Weight: r.Score,
		})
	}
	sort.Slice(order, func(i, j int) bool { return culpritKeyLess(order[i], order[j]) })

	// Phase 1 fan-out: each culprit group's victim-dimension AutoFocus is
	// independent; results land in group-order slots so the phase-2
	// assembly below sees exactly the sequential order. Each worker holds
	// one AutoFocus scratch for its whole share of the groups instead of a
	// pool round-trip per group.
	phase1 := make([][]autofocus.Pattern, len(order))
	scratches := acquireScratches(par.Workers(cfg.Workers, len(order)))
	err := par.DoWorkersCtx(ctx, len(order), cfg.Workers, func(worker, gi int) {
		g := groups[order[gi]]
		phase1[gi] = autofocus.Aggregate(g.items, autofocus.Config{
			Threshold: cfg.Phase1Threshold, Cache: victimCache, Scratch: scratches[worker],
		})
	})
	releaseScratches(scratches)
	if err != nil {
		return nil, err
	}
	if reg != nil {
		reg.Counter("microscope_patterns_groups_total{phase=\"victims\"}").Add(int64(len(order)))
		phaseNS("victims", phaseStart)
		phaseStart = time.Now() //mslint:allow nondet phase latency sample for obs histograms, never in the pattern output
	}

	// Phase 2 input: per victim aggregate, the culprit-side items.
	phase2 := make(map[victimAggKey][]autofocus.Item)
	var vaOrder []victimAggKey
	for gi, ck := range order {
		g := groups[ck]
		for _, va := range phase1[gi] {
			vk := victimAggKey{flow: va.Flow, nf: va.NF}
			if _, seen := phase2[vk]; !seen {
				vaOrder = append(vaOrder, vk)
			}
			cf := ck.flow
			if !ck.has {
				cf = packet.FiveTuple{}
			}
			phase2[vk] = append(phase2[vk], autofocus.Item{
				Flow:   cf,
				NF:     ck.nf,
				Kind:   g.kind,
				Weight: va.Weight,
			})
		}
	}

	// Phase 2 fan-out: aggregate culprit dimensions per victim aggregate;
	// apply the global significance threshold. Same slot-merge and
	// per-worker-scratch discipline as phase 1.
	phase2Out := make([][]autofocus.Pattern, len(vaOrder))
	scratches = acquireScratches(par.Workers(cfg.Workers, len(vaOrder)))
	err = par.DoWorkersCtx(ctx, len(vaOrder), cfg.Workers, func(worker, vi int) {
		items := phase2[vaOrder[vi]]
		var groupW float64
		for i := range items {
			groupW += items[i].Weight
		}
		if groupW <= 0 {
			return
		}
		// Local threshold chosen so the reported weight is significant
		// globally: w >= th * grand.
		local := cfg.Threshold * grand / groupW
		if local > 1 {
			return // group too light to ever matter
		}
		phase2Out[vi] = autofocus.Aggregate(items, autofocus.Config{
			Threshold: local, Cache: culpritCache, Scratch: scratches[worker],
		})
	})
	releaseScratches(scratches)
	if err != nil {
		return nil, err
	}
	var out []Pattern
	for vi, vk := range vaOrder {
		for _, ca := range phase2Out[vi] {
			out = append(out, Pattern{
				CulpritFlow: ca.Flow,
				CulpritNF:   ca.NF,
				VictimFlow:  vk.flow,
				VictimNF:    vk.nf,
				Score:       ca.Weight,
			})
		}
	}
	// Total order: score desc, then the rendered pattern text — cheap,
	// unique per pattern, and independent of assembly order.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].String() < out[j].String()
	})
	if cfg.MaxPatterns > 0 && len(out) > cfg.MaxPatterns {
		out = out[:cfg.MaxPatterns]
	}
	if reg != nil {
		reg.Counter("microscope_patterns_groups_total{phase=\"culprits\"}").Add(int64(len(vaOrder)))
		reg.Counter("microscope_patterns_emitted_total").Add(int64(len(out)))
		phaseNS("culprits", phaseStart)
	}
	return out, nil
}

// acquireScratches takes one AutoFocus workspace per worker of a fan-out.
func acquireScratches(workers int) []*autofocus.Scratch {
	out := make([]*autofocus.Scratch, workers)
	for i := range out {
		out[i] = autofocus.GetScratch()
	}
	return out
}

func releaseScratches(ss []*autofocus.Scratch) {
	for _, s := range ss {
		autofocus.PutScratch(s)
	}
}

func culpritKeyLess(a, b culpritKey) bool {
	if a.nf != b.nf {
		return a.nf < b.nf
	}
	if a.flow.SrcIP != b.flow.SrcIP {
		return a.flow.SrcIP < b.flow.SrcIP
	}
	if a.flow.DstIP != b.flow.DstIP {
		return a.flow.DstIP < b.flow.DstIP
	}
	if a.flow.SrcPort != b.flow.SrcPort {
		return a.flow.SrcPort < b.flow.SrcPort
	}
	if a.flow.DstPort != b.flow.DstPort {
		return a.flow.DstPort < b.flow.DstPort
	}
	if a.flow.Proto != b.flow.Proto {
		return a.flow.Proto < b.flow.Proto
	}
	return !a.has && b.has
}

// Render formats patterns as a Figure 14 style listing.
func Render(pats []Pattern) string {
	var b strings.Builder
	for _, p := range pats {
		fmt.Fprintln(&b, p.String())
	}
	return b.String()
}
