package htmlreport

import (
	"strings"
	"testing"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/patterns"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

func buildInput(t *testing.T) Input {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 5,
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.5)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.6)},
	)
	iv := simtime.MPPS(0.3).Interval()
	var ems []traffic.Emission
	for i := 0; i < 1200; i++ {
		ems = append(ems, traffic.Emission{
			At: simtime.Time(simtime.Duration(i) * iv),
			Flow: packet.FiveTuple{
				SrcIP: packet.IPFromOctets(10, 0, 0, byte(i%37)), DstIP: packet.IPFromOctets(23, 0, 0, 1),
				SrcPort: uint16(1024 + i%37), DstPort: 80, Proto: packet.ProtoTCP,
			},
			Size: 64, Burst: -1,
		})
	}
	sched := &traffic.Schedule{Emissions: ems}
	sched.InjectBurst(traffic.BurstSpec{ID: 1, At: simtime.Time(simtime.Millisecond), Flow: ems[0].Flow, Count: 400})
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(100 * simtime.Millisecond))
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"fw1", "vpn1"})))
	st.Reconstruct()

	eng := core.NewEngine(core.Config{MaxVictims: 50})
	diags := eng.Diagnose(st)
	pcfg := patterns.Config{}
	pats := patterns.Aggregate(patterns.RelationsFromDiagnoses(st, diags, pcfg), pcfg)
	in := Input{Store: st, Diagnoses: diags, Patterns: pats}
	if len(diags) > 0 {
		in.Explanation = eng.Explain(st, diags[0].Victim)
	}
	return in
}

func TestRenderCompletePage(t *testing.T) {
	in := buildInput(t)
	page := Render(in)
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>",
		"Top culprits", "Causal patterns", "Causal tree", "queue occupancy",
		"<svg", "fw1", "source",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Balanced structure.
	if strings.Count(page, "<table>") != strings.Count(page, "</table>") {
		t.Error("unbalanced tables")
	}
	if strings.Count(page, "<svg") != strings.Count(page, "</svg>") {
		t.Error("unbalanced svg")
	}
}

func TestRenderEscapesContent(t *testing.T) {
	in := buildInput(t)
	in.Title = `<script>alert("x")</script>`
	page := Render(in)
	if strings.Contains(page, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(page, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestRenderWithoutOptionalParts(t *testing.T) {
	in := buildInput(t)
	in.Explanation = nil
	in.Patterns = nil
	page := Render(in)
	if strings.Contains(page, "Causal tree") {
		t.Error("tree section without explanation")
	}
	if strings.Contains(page, "Causal patterns") {
		t.Error("patterns section without patterns")
	}
}
