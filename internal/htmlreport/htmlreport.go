// Package htmlreport renders a complete diagnosis into a single
// self-contained HTML page: run summary, ranked culprits, causal patterns,
// the causal tree of the worst victim, and reconstructed queue-occupancy
// charts per NF — the artifact an operator attaches to an incident ticket.
package htmlreport

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"microscope/internal/core"
	"microscope/internal/patterns"
	"microscope/internal/plot"
	"microscope/internal/report"
	"microscope/internal/simtime"
	"microscope/internal/tracestore"
)

// Input bundles everything the page renders.
type Input struct {
	Store     *tracestore.Store
	Diagnoses []core.Diagnosis
	Patterns  []patterns.Pattern
	// Explanation is the causal tree of the headline victim (optional).
	Explanation *core.Explanation
	// Title heads the page.
	Title string
	// QueueChartStep samples reconstructed queue lengths at this
	// interval for the per-NF charts (default 100 µs).
	QueueChartStep simtime.Duration
	// MaxPatterns caps the pattern listing (default 20).
	MaxPatterns int
}

func (in *Input) setDefaults() {
	if in.Title == "" {
		in.Title = "Microscope diagnosis report"
	}
	if in.QueueChartStep == 0 {
		in.QueueChartStep = 100 * simtime.Microsecond
	}
	if in.MaxPatterns == 0 {
		in.MaxPatterns = 20
	}
}

// Render produces the HTML page.
func Render(in Input) string {
	in.setDefaults()
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(in.Title))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #f0f0f0; }
pre { background: #f8f8f8; padding: 1em; overflow-x: auto; }
h2 { border-bottom: 1px solid #ddd; padding-bottom: 4px; }
.charts { display: flex; flex-wrap: wrap; gap: 1em; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(in.Title))

	// Summary.
	delivered, lost := 0, 0
	for i := range in.Store.Journeys {
		if in.Store.Journeys[i].Delivered {
			delivered++
		} else {
			lost++
		}
	}
	fmt.Fprintf(&b, "<p>%d packets reconstructed (%d delivered, %d incomplete); %d victims diagnosed; %d causal patterns.</p>\n",
		len(in.Store.Journeys), delivered, lost, len(in.Diagnoses), len(in.Patterns))

	// Top culprits.
	b.WriteString("<h2>Top culprits</h2>\n<table><tr><th>component</th><th>kind</th><th>score</th><th>onset</th></tr>\n")
	for _, c := range topCauses(in.Diagnoses, 10) {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%.1f</td><td>%v</td></tr>\n",
			html.EscapeString(c.Comp), c.Kind, c.Score, c.At)
	}
	b.WriteString("</table>\n")

	// Worst victims. Flow labels come from the store's flow index, which
	// caches each tuple's formatted form, so this table costs no
	// per-row formatting for known flows.
	if len(in.Diagnoses) > 0 {
		fi := in.Store.FlowIndex()
		b.WriteString("<h2>Worst victims</h2>\n<table><tr><th>#</th><th>kind</th><th>component</th><th>flow</th><th>arrival</th><th>queue delay</th></tr>\n")
		limit := len(in.Diagnoses)
		if limit > 10 {
			limit = 10
		}
		for i, d := range in.Diagnoses[:limit] {
			flow := "?"
			if d.Victim.HasTuple {
				flow = fi.Label(d.Victim.Tuple)
			}
			fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%v</td><td>%v</td></tr>\n",
				i+1, d.Victim.Kind, html.EscapeString(d.Victim.Comp),
				html.EscapeString(flow), d.Victim.ArriveAt, d.Victim.QueueDelay)
		}
		b.WriteString("</table>\n")
	}

	// Patterns.
	if len(in.Patterns) > 0 {
		b.WriteString("<h2>Causal patterns (culprit &rarr; victim)</h2>\n<table><tr><th>culprit flows</th><th>culprit NF</th><th>victim flows</th><th>victim NF</th><th>score</th></tr>\n")
		limit := len(in.Patterns)
		if limit > in.MaxPatterns {
			limit = in.MaxPatterns
		}
		for _, p := range in.Patterns[:limit] {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.1f</td></tr>\n",
				html.EscapeString(p.CulpritFlow.String()), html.EscapeString(p.CulpritNF.String()),
				html.EscapeString(p.VictimFlow.String()), html.EscapeString(p.VictimNF.String()), p.Score)
		}
		b.WriteString("</table>\n")
	}

	// Headline victim's causal tree.
	if in.Explanation != nil {
		b.WriteString("<h2>Causal tree of the worst victim</h2>\n<pre>")
		b.WriteString(html.EscapeString(in.Explanation.Render()))
		b.WriteString("</pre>\n")
	}

	// Per-NF queue charts from the reconstructed trace.
	b.WriteString("<h2>Reconstructed queue occupancy</h2>\n<div class=\"charts\">\n")
	for _, comp := range chartComponents(in.Store) {
		s := queueSeries(in.Store, comp, in.QueueChartStep)
		if s.Len() == 0 {
			continue
		}
		b.WriteString(plot.SVG(plot.Config{Width: 420, Height: 240, Title: comp + " queue"}, s))
	}
	b.WriteString("</div>\n</body></html>\n")
	return b.String()
}

// chartComponents lists NFs in deterministic order (source excluded).
func chartComponents(st *tracestore.Store) []string {
	var out []string
	for _, name := range st.Components() {
		if st.KindOf(name) == "source" {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// queueSeries samples the reconstructed queue length over the trace span.
func queueSeries(st *tracestore.Store, comp string, step simtime.Duration) *report.Series {
	v := st.View(comp)
	s := &report.Series{Name: comp, XLabel: "time (ms)", YLabel: "packets"}
	if v == nil || len(v.Arrivals) == 0 {
		return s
	}
	start := v.Arrivals[0].At
	end := v.Arrivals[len(v.Arrivals)-1].At
	for t := start; t <= end; t = t.Add(step) {
		s.Add(t.Millis(), float64(st.QueueLenAt(comp, t)))
	}
	return s
}

// topCauses merges causes across diagnoses (same logic as the public
// Report.TopCauses, duplicated to keep this package internal-only).
func topCauses(diags []core.Diagnosis, limit int) []core.Cause {
	type key struct {
		comp string
		kind core.CulpritKind
	}
	acc := make(map[key]*core.Cause)
	var order []key
	for i := range diags {
		for _, c := range diags[i].Causes {
			k := key{c.Comp, c.Kind}
			e := acc[k]
			if e == nil {
				cc := c
				cc.CulpritJourneys = nil
				acc[k] = &cc
				order = append(order, k)
				continue
			}
			e.Score += c.Score
			if c.At < e.At {
				e.At = c.At
			}
		}
	}
	out := make([]core.Cause, 0, len(order))
	for _, k := range order {
		out = append(out, *acc[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
