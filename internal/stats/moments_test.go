package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMomentsMergeExact: merging per-chunk summaries is bit-identical to
// one sequential scan, for any chunking and any merge order — the property
// the streaming index's equivalence contract rests on.
func TestMomentsMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]int64, 10_000)
	for i := range samples {
		// Mix of magnitudes, including corrupt-timestamp-sized deltas whose
		// squares exceed int64.
		switch i % 5 {
		case 0:
			samples[i] = rng.Int63n(1000)
		case 1:
			samples[i] = -rng.Int63n(1000)
		case 2:
			samples[i] = rng.Int63n(1 << 40)
		default:
			samples[i] = rng.Int63n(1 << 32)
		}
	}
	var seq Moments
	for _, d := range samples {
		seq.Add(d)
	}

	for _, chunks := range []int{1, 2, 7, 64, 1000} {
		parts := make([]Moments, chunks)
		for i, d := range samples {
			parts[i%chunks].Add(d)
		}
		// Merge in a scrambled order: addition is commutative.
		order := rng.Perm(chunks)
		var merged Moments
		for _, ci := range order {
			merged.Merge(parts[ci])
		}
		if merged != seq {
			t.Fatalf("chunks=%d: merged %+v != sequential %+v", chunks, merged, seq)
		}
		if merged.Mean() != seq.Mean() || merged.StdDev() != seq.StdDev() {
			t.Fatalf("chunks=%d: query-time stats differ", chunks)
		}
	}
}

// TestMomentsMatchesWelford: on ordinary data the exact moments agree with
// the streaming Welford accumulator to floating-point tolerance.
func TestMomentsMatchesWelford(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var m Moments
	var w Welford
	for i := 0; i < 5000; i++ {
		d := rng.Int63n(1_000_000)
		m.Add(d)
		w.Add(float64(d))
	}
	if m.N() != 5000 {
		t.Fatalf("n = %d", m.N())
	}
	if relDiff(m.Mean(), w.Mean()) > 1e-12 {
		t.Fatalf("mean: moments %v, welford %v", m.Mean(), w.Mean())
	}
	if relDiff(m.StdDev(), w.StdDev()) > 1e-9 {
		t.Fatalf("stddev: moments %v, welford %v", m.StdDev(), w.StdDev())
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	return d / s
}

// TestMomentsAbnormal mirrors Welford.Abnormal's decision shape.
func TestMomentsAbnormal(t *testing.T) {
	var m Moments
	if m.Abnormal(100, 3, 1) {
		t.Error("empty distribution flagged abnormal")
	}
	for i := 0; i < 10; i++ {
		m.Add(50)
	}
	if m.Abnormal(1000, 3, 20) {
		t.Error("below minSamples must never flag")
	}
	// Zero variance: anything strictly above the mean is abnormal.
	if !m.Abnormal(51, 3, 10) || m.Abnormal(50, 3, 10) {
		t.Error("degenerate-distribution decision shape wrong")
	}
	var v Moments
	for i := int64(0); i < 100; i++ {
		v.Add(i % 10)
	}
	mean, sd := v.Mean(), v.StdDev()
	if v.Abnormal(mean+2*sd, 3, 10) {
		t.Error("2 sigma flagged at k=3")
	}
	if !v.Abnormal(mean+4*sd, 3, 10) {
		t.Error("4 sigma not flagged at k=3")
	}
}

// TestMomentsHugeSquares: squares past int64 range accumulate exactly in
// the 128-bit sum instead of overflowing.
func TestMomentsHugeSquares(t *testing.T) {
	var a, b Moments
	const big = int64(1) << 62 // square is 2^124: far past 64 bits
	a.Add(big)
	a.Add(-big)
	b.Add(-big)
	b.Add(big)
	if a != b {
		t.Fatalf("sign/order changed the accumulation: %+v vs %+v", a, b)
	}
	if a.sum != 0 || a.sqHi == 0 {
		t.Fatalf("128-bit square lost: %+v", a)
	}
	// n=2, sum=0 → variance is sq/2; must be finite and huge.
	if sd := a.StdDev(); math.IsNaN(sd) || sd <= float64(big)/2 {
		t.Fatalf("stddev degenerate: %v", sd)
	}
}
