// Package stats provides the small statistical toolkit the diagnosis
// pipeline and the evaluation harness need: percentiles, running
// mean/stddev histories (for the §4.1 "one standard deviation beyond recent
// history" abnormality test), empirical CDFs, and rank curves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already-sorted slice, allocating
// nothing. Useful when many percentiles are taken from one dataset.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// Abnormal reports whether x lies more than k standard deviations above the
// running mean. This is the §4.1 abnormality test (k = 1 in the paper).
// With fewer than minSamples observations nothing is abnormal, preventing
// cold-start false positives.
func (w *Welford) Abnormal(x, k float64, minSamples int64) bool {
	if w.n < minSamples {
		return false
	}
	sd := w.StdDev()
	if sd == 0 {
		return x > w.mean
	}
	return x > w.mean+k*sd
}

// History is a bounded sliding window of samples supporting the
// "recent history" abnormality test of §4.1, where old behaviour should age
// out rather than dominate the baseline forever.
type History struct {
	buf  []float64
	next int
	full bool
}

// NewHistory returns a window holding up to n samples. n must be positive.
func NewHistory(n int) *History {
	if n <= 0 {
		panic("stats: history size must be positive")
	}
	return &History{buf: make([]float64, n)}
}

// Add appends a sample, evicting the oldest when full.
func (h *History) Add(x float64) {
	h.buf[h.next] = x
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
		h.full = true
	}
}

// Len returns the number of stored samples.
func (h *History) Len() int {
	if h.full {
		return len(h.buf)
	}
	return h.next
}

// Samples returns a copy of the stored samples in arbitrary order.
func (h *History) Samples() []float64 {
	out := make([]float64, h.Len())
	copy(out, h.buf[:h.Len()])
	return out
}

// MeanStdDev returns the mean and population stddev of the window.
func (h *History) MeanStdDev() (mean, sd float64) {
	n := h.Len()
	if n == 0 {
		return 0, 0
	}
	xs := h.buf[:n]
	return Mean(xs), StdDev(xs)
}

// Abnormal reports whether x exceeds the window mean by more than k
// standard deviations. Fewer than minSamples samples → never abnormal.
func (h *History) Abnormal(x, k float64, minSamples int) bool {
	if h.Len() < minSamples {
		return false
	}
	mean, sd := h.MeanStdDev()
	if sd == 0 {
		return x > mean
	}
	return x > mean+k*sd
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction in (0, 1]
}

// CDF computes the empirical CDF of xs. The result has one point per
// distinct value, in increasing order.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: sorted[i], F: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by CDF) at x.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid].X <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return cdf[lo-1].F
}

// RankCurve summarizes a list of per-victim ranks into the paper's
// Figure 11/12 form: for each cumulative fraction of victims (sorted by
// rank), the rank needed to cover them. Entry i of the result is the rank
// of the (i+1)-th best-ranked victim.
func RankCurve(ranks []int) []int {
	out := make([]int, len(ranks))
	copy(out, ranks)
	sort.Ints(out)
	return out
}

// FractionAtRank returns the fraction of victims whose rank is <= r.
func FractionAtRank(ranks []int, r int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	n := 0
	for _, x := range ranks {
		if x <= r && x > 0 {
			n++
		}
	}
	return float64(n) / float64(len(ranks))
}

// Histogram counts xs into nbins equal-width bins over [lo, hi). Values
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}

// FormatPct renders a fraction as a percentage string like "89.7%".
func FormatPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
