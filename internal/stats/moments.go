package stats

import (
	"math"
	"math/bits"
)

// Moments accumulates integer samples as exact raw moments: count, sum,
// and a 128-bit sum of squares. Unlike Welford, whose running mean makes
// the result depend on fold order, integer moment accumulation is
// associative and commutative (128-bit modular addition), so merging
// per-epoch partial summaries yields bit-identical statistics to a single
// sequential scan in any order — the property the incremental streaming
// index's equivalence contract rests on. Queue delays are nanosecond
// int64s, so no precision is lost going in; Mean/StdDev convert to
// float64 only at query time, identically on every path.
type Moments struct {
	n   int64
	sum int64
	// 128-bit sum of d*d, split hi/lo. Each square is computed exactly
	// via bits.Mul64, so even absurd corrupt-timestamp deltas accumulate
	// deterministically instead of overflowing int64 mid-sum.
	sqHi uint64
	sqLo uint64
}

// Add folds one integer sample in.
func (m *Moments) Add(d int64) {
	m.n++
	m.sum += d
	a := uint64(d)
	if d < 0 {
		a = uint64(-d)
	}
	hi, lo := bits.Mul64(a, a)
	var carry uint64
	m.sqLo, carry = bits.Add64(m.sqLo, lo, 0)
	m.sqHi, _ = bits.Add64(m.sqHi, hi, carry)
}

// Merge folds another summary in. Merge(a); Merge(b) equals adding every
// sample of a then every sample of b, exactly.
func (m *Moments) Merge(o Moments) {
	m.n += o.n
	m.sum += o.sum
	var carry uint64
	m.sqLo, carry = bits.Add64(m.sqLo, o.sqLo, 0)
	m.sqHi, _ = bits.Add64(m.sqHi, o.sqHi, carry)
}

// N returns the sample count.
func (m *Moments) N() int64 { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return float64(m.sum) / float64(m.n)
}

// StdDev returns the population standard deviation, matching
// Welford.StdDev's semantics (0 when n < 2).
func (m *Moments) StdDev() float64 {
	if m.n < 2 {
		return 0
	}
	sq := float64(m.sqHi)*0x1p64 + float64(m.sqLo)
	mean := float64(m.sum) / float64(m.n)
	v := (sq - float64(m.sum)*mean) / float64(m.n)
	if v < 0 {
		v = 0 // cancellation guard; exact moments can round below zero
	}
	return math.Sqrt(v)
}

// Abnormal reports whether x lies more than k standard deviations above
// the mean, with Welford.Abnormal's exact decision shape: below
// minSamples nothing is abnormal, and a degenerate (zero-variance)
// distribution flags anything strictly above the mean.
func (m *Moments) Abnormal(x float64, k float64, minSamples int64) bool {
	if m.n < minSamples {
		return false
	}
	sd := m.StdDev()
	if sd == 0 {
		return x > m.Mean()
	}
	return x > m.Mean()+k*sd
}
