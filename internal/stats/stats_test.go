package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v): got %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile: got %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean: got %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev: got %v, want 2", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		w.Add(x)
		xs = append(xs, x)
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("Welford sd %v vs batch %v", w.StdDev(), StdDev(xs))
	}
	if w.N() != 1000 {
		t.Errorf("N: got %d", w.N())
	}
}

func TestWelfordAbnormal(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(10 + float64(i%3)) // mean ~11, sd ~0.8
	}
	if w.Abnormal(11, 1, 10) {
		t.Error("11 should not be abnormal")
	}
	if !w.Abnormal(20, 1, 10) {
		t.Error("20 should be abnormal")
	}
	var cold Welford
	cold.Add(1)
	if cold.Abnormal(100, 1, 10) {
		t.Error("cold-start should suppress abnormality")
	}
}

func TestHistoryWindowEviction(t *testing.T) {
	h := NewHistory(3)
	for _, x := range []float64{1, 2, 3} {
		h.Add(x)
	}
	if h.Len() != 3 {
		t.Fatalf("Len: got %d", h.Len())
	}
	h.Add(100) // evicts 1
	mean, _ := h.MeanStdDev()
	if mean != (2+3+100)/3.0 {
		t.Errorf("windowed mean: got %v", mean)
	}
	samples := h.Samples()
	sort.Float64s(samples)
	if samples[0] != 2 || samples[2] != 100 {
		t.Errorf("Samples: got %v", samples)
	}
}

func TestHistoryAbnormal(t *testing.T) {
	h := NewHistory(50)
	for i := 0; i < 50; i++ {
		h.Add(100)
	}
	// Zero stddev: anything above the mean is abnormal.
	if !h.Abnormal(101, 1, 10) {
		t.Error("101 above constant 100 should be abnormal")
	}
	if h.Abnormal(100, 1, 10) {
		t.Error("exactly the mean is not abnormal")
	}
}

func TestNewHistoryPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistory(0) should panic")
		}
	}()
	NewHistory(0)
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 2, 2, 4})
	if len(cdf) != 3 {
		t.Fatalf("distinct points: got %d", len(cdf))
	}
	if cdf[0].X != 1 || cdf[0].F != 0.25 {
		t.Errorf("point 0: %+v", cdf[0])
	}
	if cdf[1].X != 2 || cdf[1].F != 0.75 {
		t.Errorf("point 1: %+v", cdf[1])
	}
	if cdf[2].X != 4 || cdf[2].F != 1 {
		t.Errorf("point 2: %+v", cdf[2])
	}
	if got := CDFAt(cdf, 0.5); got != 0 {
		t.Errorf("CDFAt below min: got %v", got)
	}
	if got := CDFAt(cdf, 2); got != 0.75 {
		t.Errorf("CDFAt(2): got %v", got)
	}
	if got := CDFAt(cdf, 100); got != 1 {
		t.Errorf("CDFAt above max: got %v", got)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		cdf := CDF(xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X <= cdf[i-1].X || cdf[i].F <= cdf[i-1].F {
				return false
			}
		}
		return cdf[len(cdf)-1].F == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankCurveAndFraction(t *testing.T) {
	ranks := []int{1, 3, 1, 2, 10}
	curve := RankCurve(ranks)
	want := []int{1, 1, 2, 3, 10}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve: got %v", curve)
		}
	}
	if got := FractionAtRank(ranks, 1); got != 0.4 {
		t.Errorf("FractionAtRank(1): got %v", got)
	}
	if got := FractionAtRank(ranks, 3); got != 0.8 {
		t.Errorf("FractionAtRank(3): got %v", got)
	}
	if got := FractionAtRank(nil, 1); got != 0 {
		t.Errorf("empty: got %v", got)
	}
	// Rank 0 means "not found" and never counts.
	if got := FractionAtRank([]int{0, 1}, 5); got != 0.5 {
		t.Errorf("unfound ranks counted: got %v", got)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 100}, 0, 10, 10)
	// 0 and clamped -5 land in bin 0; 9.9 and clamped 100 in bin 9.
	if bins[0] != 2 || bins[1] != 1 || bins[2] != 1 || bins[3] != 1 || bins[9] != 2 {
		t.Errorf("histogram: got %v", bins)
	}
}

func TestHistogramClamping(t *testing.T) {
	bins := Histogram([]float64{-1, 11}, 0, 10, 5)
	if bins[0] != 1 || bins[4] != 1 {
		t.Errorf("clamping: got %v", bins)
	}
	if Histogram(nil, 0, 10, 0) != nil {
		t.Error("zero bins should be nil")
	}
	if Histogram(nil, 10, 0, 5) != nil {
		t.Error("inverted range should be nil")
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.897); got != "89.7%" {
		t.Errorf("FormatPct: got %q", got)
	}
}
