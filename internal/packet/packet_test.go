package packet

import (
	"testing"
	"testing/quick"

	"microscope/internal/simtime"
)

func sampleTuple() FiveTuple {
	return FiveTuple{
		SrcIP:   IPFromOctets(10, 1, 2, 3),
		DstIP:   IPFromOctets(23, 4, 5, 6),
		SrcPort: 1234,
		DstPort: 80,
		Proto:   ProtoTCP,
	}
}

func TestIPRoundTrip(t *testing.T) {
	ip := IPFromOctets(192, 168, 7, 42)
	if got := IPString(ip); got != "192.168.7.42" {
		t.Errorf("IPString: got %q", got)
	}
}

func TestFiveTupleString(t *testing.T) {
	got := sampleTuple().String()
	want := "10.1.2.3:1234 > 23.4.5.6:80/6"
	if got != want {
		t.Errorf("String: got %q, want %q", got, want)
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	a := sampleTuple()
	b := sampleTuple()
	if a.Hash() != b.Hash() {
		t.Error("equal tuples must hash equal")
	}
	b.SrcPort++
	if a.Hash() == b.Hash() {
		t.Error("port change should change hash")
	}
	c := a
	c.DstIP ^= 1
	if a.Hash() == c.Hash() {
		t.Error("IP change should change hash")
	}
}

func TestHashSpreads(t *testing.T) {
	// Property: hashing many distinct tuples into 4 buckets should not
	// leave any bucket empty (flow-level load balancing sanity).
	buckets := make([]int, 4)
	ft := sampleTuple()
	for i := 0; i < 4096; i++ {
		ft.SrcPort = uint16(i)
		ft.SrcIP = IPFromOctets(10, byte(i>>8), byte(i), 1)
		buckets[ft.Hash()%4]++
	}
	for i, n := range buckets {
		if n == 0 {
			t.Errorf("bucket %d empty", i)
		}
		if n < 512 { // expect ~1024 each; catch pathological skew
			t.Errorf("bucket %d badly underfilled: %d", i, n)
		}
	}
}

func TestHashEqualityProperty(t *testing.T) {
	f := func(s, d uint32, sp, dp uint16, proto uint8) bool {
		a := FiveTuple{s, d, sp, dp, proto}
		b := FiveTuple{s, d, sp, dp, proto}
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHops(t *testing.T) {
	p := &Packet{CreatedAt: 100}
	if p.LastHop() != nil {
		t.Error("empty packet should have nil LastHop")
	}
	if p.Latency() != 0 {
		t.Error("empty packet latency should be 0")
	}
	p.Hops = append(p.Hops,
		Hop{Node: "nat1", EnqueueAt: 110, DequeueAt: 120, DepartAt: 150},
		Hop{Node: "fw2", EnqueueAt: 150, DequeueAt: 200, DepartAt: 260},
	)
	if got := p.LastHop().Node; got != "fw2" {
		t.Errorf("LastHop: got %q", got)
	}
	if h := p.HopAt("nat1"); h == nil || h.DepartAt != 150 {
		t.Error("HopAt(nat1) wrong")
	}
	if p.HopAt("vpn1") != nil {
		t.Error("HopAt(unknown) should be nil")
	}
	if got := p.Latency(); got != 160 {
		t.Errorf("Latency: got %v, want 160", got)
	}
	if got := p.QueueDelayAt("fw2"); got != 50 {
		t.Errorf("QueueDelayAt: got %v, want 50", got)
	}
	if got := p.QueueDelayAt("none"); got != -1 {
		t.Errorf("QueueDelayAt(missing): got %v, want -1", got)
	}
	path := p.Path()
	if len(path) != 2 || path[0] != "nat1" || path[1] != "fw2" {
		t.Errorf("Path: got %v", path)
	}
}

func TestQueueDelayUsesSimtime(t *testing.T) {
	p := &Packet{}
	p.Hops = append(p.Hops, Hop{Node: "x", EnqueueAt: simtime.Time(0), DequeueAt: simtime.Time(simtime.Millisecond)})
	if got := p.QueueDelayAt("x").Millis(); got != 1 {
		t.Errorf("delay: got %v ms, want 1", got)
	}
}
