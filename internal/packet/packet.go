// Package packet defines the packet model shared by the traffic generator,
// the NF simulator, the runtime collector, and the diagnosis engine.
//
// A packet carries a five-tuple and an IPID, exactly the fields Microscope's
// collector is allowed to observe (paper Table 1). The simulator additionally
// threads a globally unique ID through each packet; that ID is ground truth
// used only by tests and by the evaluation harness to score diagnosis
// accuracy — the diagnosis pipeline itself never reads it.
package packet

import (
	"fmt"

	"microscope/internal/simtime"
)

// Proto numbers for the protocols the workload generator emits.
const (
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoICMP uint8 = 1
)

// FiveTuple identifies a flow. IPv4 addresses are stored as uint32 in host
// order so that prefix aggregation is cheap bit arithmetic.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the tuple in the src -> dst form used by the paper's
// pattern listings.
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d > %s:%d/%d",
		IPString(ft.SrcIP), ft.SrcPort, IPString(ft.DstIP), ft.DstPort, ft.Proto)
}

// Less imposes the canonical total order on tuples (field-by-field), shared
// by every sort that must be reproducible across runs and worker counts.
func (ft FiveTuple) Less(o FiveTuple) bool {
	if ft.SrcIP != o.SrcIP {
		return ft.SrcIP < o.SrcIP
	}
	if ft.DstIP != o.DstIP {
		return ft.DstIP < o.DstIP
	}
	if ft.SrcPort != o.SrcPort {
		return ft.SrcPort < o.SrcPort
	}
	if ft.DstPort != o.DstPort {
		return ft.DstPort < o.DstPort
	}
	return ft.Proto < o.Proto
}

// Hash returns a stable non-cryptographic hash of the tuple, used for
// flow-level load balancing (the paper's NFV entry point hashes header
// fields). FNV-1a over the 13 tuple bytes.
func (ft FiveTuple) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(byte(ft.SrcIP >> 24))
	mix(byte(ft.SrcIP >> 16))
	mix(byte(ft.SrcIP >> 8))
	mix(byte(ft.SrcIP))
	mix(byte(ft.DstIP >> 24))
	mix(byte(ft.DstIP >> 16))
	mix(byte(ft.DstIP >> 8))
	mix(byte(ft.DstIP))
	mix(byte(ft.SrcPort >> 8))
	mix(byte(ft.SrcPort))
	mix(byte(ft.DstPort >> 8))
	mix(byte(ft.DstPort))
	mix(ft.Proto)
	// FNV-1a avalanches poorly in the low bits, which are exactly what
	// modulo-n load balancing consumes; run the splitmix64 finalizer to
	// spread the entropy.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// IPString formats a host-order uint32 IPv4 address in dotted quad.
func IPString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IPFromOctets builds a host-order uint32 IPv4 address.
func IPFromOctets(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// ID is the simulator-global unique packet identifier (ground truth only).
type ID uint64

// Packet is a unit of work flowing through the simulated NF DAG.
//
// Packets are allocated once at the source and passed by pointer through
// queues; NFs never copy them. The per-hop history (Hops) is ground truth
// recorded by the simulator for evaluation and tests; the Microscope
// collector produces its own, much more limited, record stream.
type Packet struct {
	ID   ID
	Flow FiveTuple
	IPID uint16 // 16-bit IP identification field; wraps, may collide
	Size int    // bytes on the wire

	// CreatedAt is the time the traffic source emitted the packet.
	CreatedAt simtime.Time

	// Hops is the ground-truth journey: one entry per component traversed.
	Hops []Hop

	// Burst marks packets belonging to an injected traffic burst
	// (evaluation ground truth).
	Burst int32 // injection id, -1 if none

	// Dropped records where the packet was dropped, or "" if delivered.
	Dropped string
}

// Hop is one ground-truth traversal record.
type Hop struct {
	Node      string       // component name
	EnqueueAt simtime.Time // when the packet entered the component's input queue
	DequeueAt simtime.Time // when the component read it from the queue
	DepartAt  simtime.Time // when the component finished and emitted it
}

// LastHop returns the final hop record, or nil if the packet has none.
func (p *Packet) LastHop() *Hop {
	if len(p.Hops) == 0 {
		return nil
	}
	return &p.Hops[len(p.Hops)-1]
}

// HopAt returns the hop record at the named node, or nil.
func (p *Packet) HopAt(node string) *Hop {
	for i := range p.Hops {
		if p.Hops[i].Node == node {
			return &p.Hops[i]
		}
	}
	return nil
}

// Latency returns the end-to-end latency of a delivered packet: emission to
// final departure. It returns 0 for packets with no hops.
func (p *Packet) Latency() simtime.Duration {
	lh := p.LastHop()
	if lh == nil {
		return 0
	}
	return lh.DepartAt.Sub(p.CreatedAt)
}

// QueueDelayAt returns the time the packet spent waiting in the input queue
// of the named node, or -1 if the packet never traversed it.
func (p *Packet) QueueDelayAt(node string) simtime.Duration {
	h := p.HopAt(node)
	if h == nil {
		return -1
	}
	return h.DequeueAt.Sub(h.EnqueueAt)
}

// Path returns the ordered list of component names the packet traversed.
func (p *Packet) Path() []string {
	out := make([]string, len(p.Hops))
	for i := range p.Hops {
		out[i] = p.Hops[i].Node
	}
	return out
}
