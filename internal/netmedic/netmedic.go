// Package netmedic implements the state-of-the-art baseline the paper
// compares against (§6.1): NetMedic [36] adapted to NFV.
//
// Following the paper's adaptation: components are the NFs plus the traffic
// source, edges are the links of the deployment DAG, and per component we
// monitor the variables NF performance depends on — input rate, processing
// rate, and queue occupancy — in fixed time windows (10 ms by default, the
// size the paper found best). A component is abnormal in a window when a
// variable deviates from its per-run history by more than one standard
// deviation. Causes for a victim are ranked by the product of the
// culprit's abnormality in the victim's window and the strength of the
// historical co-abnormality along the dependency path to the victim —
// NetMedic's time-based correlation. Every component receives a rank, as
// the paper notes ("NetMedic still gives it a rank because it gives every
// possible culprit a rank").
//
// The known failure modes the paper demonstrates fall out naturally: an
// impact that propagates with a delay longer than the window cannot
// correlate, and a burst inflates the local processing-rate variable,
// misleading the ranking toward the victim NF itself.
package netmedic

import (
	"math"
	"sort"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/simtime"
	"microscope/internal/stats"
	"microscope/internal/tracestore"
)

// Config tunes the baseline.
type Config struct {
	// Window is the correlation window size (default 10ms, §6.1).
	Window simtime.Duration
	// AbnormalZ is the z-score beyond which a variable is abnormal
	// (default 1, matching the one-standard-deviation test).
	AbnormalZ float64
}

func (c *Config) setDefaults() {
	if c.Window == 0 {
		c.Window = 10 * simtime.Millisecond
	}
	if c.AbnormalZ == 0 {
		c.AbnormalZ = 1
	}
}

// RankedComp is one ranked culprit candidate.
type RankedComp struct {
	Comp  string
	Score float64
}

// Result is the ranked diagnosis for one victim.
type Result struct {
	Victim core.Victim
	Ranked []RankedComp
}

// RankOf returns the 1-based rank of comp, or 0.
func (r *Result) RankOf(comp string) int {
	for i := range r.Ranked {
		if r.Ranked[i].Comp == comp {
			return i + 1
		}
	}
	return 0
}

// Engine precomputes windowed state from a trace and answers victim
// queries.
type Engine struct {
	cfg    Config
	st     *tracestore.Store
	comps  []string
	kindOf map[string]string

	nWin   int
	window simtime.Duration
	// vars[comp][win] = variable vector.
	vars map[string][]stateVec
	// z[comp][win] = max abnormality z-score across variables.
	z map[string][]float64
	// edgeW[from][to] = historical co-abnormality strength.
	edgeW map[string]map[string]float64
	// upstream adjacency.
	ups map[string][]string
}

// stateVec is the per-window monitored state of one component.
type stateVec struct {
	inRate   float64 // packets entering the component's queue per window
	procRate float64 // packets dequeued per window
	queueLen float64 // queue length at window end
	queueMax float64 // max queue occupancy polled within the window
}

// queuePollsPerWindow is how many intra-window occupancy polls feed
// queueMax, mirroring a monitoring agent sampling ring occupancy.
const queuePollsPerWindow = 16

// New builds the windowed model from a reconstructed trace store.
func New(st *tracestore.Store, cfg Config) *Engine {
	cfg.setDefaults()
	e := &Engine{
		cfg:    cfg,
		st:     st,
		window: cfg.Window,
		kindOf: make(map[string]string),
		vars:   make(map[string][]stateVec),
		z:      make(map[string][]float64),
		edgeW:  make(map[string]map[string]float64),
		ups:    make(map[string][]string),
	}
	// Trace horizon.
	var end simtime.Time
	for i := range st.Trace.Records {
		if at := st.Trace.Records[i].At; at > end {
			end = at
		}
	}
	e.nWin = int(end/simtime.Time(cfg.Window)) + 1
	for _, cm := range st.Trace.Meta.Components {
		e.comps = append(e.comps, cm.Name)
		e.kindOf[cm.Name] = cm.Kind
		e.ups[cm.Name] = st.Trace.Meta.Upstreams(cm.Name)
	}
	e.computeVars()
	e.computeAbnormality()
	e.computeEdgeWeights()
	return e
}

func (e *Engine) winOf(t simtime.Time) int {
	w := int(t / simtime.Time(e.window))
	if w < 0 {
		w = 0
	}
	if w >= e.nWin {
		w = e.nWin - 1
	}
	return w
}

// computeVars fills per-window monitored variables from the record stream.
// The source's "processing rate" is its emission rate.
func (e *Engine) computeVars() {
	for _, c := range e.comps {
		e.vars[c] = make([]stateVec, e.nWin)
	}
	for i := range e.st.Trace.Records {
		r := &e.st.Trace.Records[i]
		w := e.winOf(r.At)
		switch r.Dir {
		case collector.DirRead:
			if vs := e.vars[r.Comp]; vs != nil {
				vs[w].procRate += float64(len(r.IPIDs))
			}
		case collector.DirWrite:
			// Input to the destination queue; output of the writer.
			if vs := e.vars[r.Comp]; vs != nil && r.Comp == collector.SourceName {
				vs[w].procRate += float64(len(r.IPIDs))
			}
			dest := r.Queue
			if n := len(dest); n > 3 && dest[n-3:] == ".in" {
				dest = dest[:n-3]
			}
			if vs := e.vars[dest]; vs != nil {
				vs[w].inRate += float64(len(r.IPIDs))
			}
		case collector.DirDeliver:
			if vs := e.vars[r.Comp]; vs != nil {
				vs[w].procRate += float64(len(r.IPIDs))
			}
		}
	}
	// Queue occupancy via the store's reconstruction: end-of-window
	// length plus an intra-window max from periodic polls.
	for _, c := range e.comps {
		vs := e.vars[c]
		step := simtime.Duration(e.window) / queuePollsPerWindow
		if step < 1 {
			step = 1
		}
		for w := 0; w < e.nWin; w++ {
			start := simtime.Time(w) * simtime.Time(e.window)
			end := start.Add(simtime.Duration(e.window))
			vs[w].queueLen = float64(e.st.QueueLenAt(c, end-1))
			maxQ := 0
			for t := start; t < end; t = t.Add(step) {
				if q := e.st.QueueLenAt(c, t); q > maxQ {
					maxQ = q
				}
			}
			vs[w].queueMax = float64(maxQ)
		}
	}
}

// computeAbnormality turns variables into per-window max z-scores.
func (e *Engine) computeAbnormality() {
	for _, c := range e.comps {
		vs := e.vars[c]
		var in, proc, ql, qm stats.Welford
		for w := range vs {
			in.Add(vs[w].inRate)
			proc.Add(vs[w].procRate)
			ql.Add(vs[w].queueLen)
			qm.Add(vs[w].queueMax)
		}
		zs := make([]float64, e.nWin)
		for w := range vs {
			z := zscore(vs[w].inRate, &in)
			if v := zscore(vs[w].procRate, &proc); v > z {
				z = v
			}
			if v := zscore(vs[w].queueLen, &ql); v > z {
				z = v
			}
			if v := zscore(vs[w].queueMax, &qm); v > z {
				z = v
			}
			zs[w] = z
		}
		e.z[c] = zs
	}
}

// zscore measures absolute deviation in standard deviations, capped so a
// single extreme window cannot dominate every ranking.
func zscore(x float64, w *stats.Welford) float64 {
	sd := w.StdDev()
	if sd == 0 {
		if x != w.Mean() {
			return 2
		}
		return 0
	}
	z := math.Abs(x-w.Mean()) / sd
	if z > 10 {
		z = 10
	}
	return z
}

// computeEdgeWeights estimates how strongly abnormality at an upstream
// component co-occurs with abnormality at its downstream within the same
// window — NetMedic's history-based dependency strength.
func (e *Engine) computeEdgeWeights() {
	for _, d := range e.comps {
		for _, u := range e.ups[d] {
			both, upAb := 0, 0
			for w := 0; w < e.nWin; w++ {
				if e.z[u][w] >= e.cfg.AbnormalZ {
					upAb++
					if e.z[d][w] >= e.cfg.AbnormalZ {
						both++
					}
				}
			}
			wgt := 0.1 // weak prior: dependencies exist even without history
			if upAb > 0 {
				wgt = math.Max(0.1, float64(both)/float64(upAb))
			}
			m := e.edgeW[u]
			if m == nil {
				m = make(map[string]float64)
				e.edgeW[u] = m
			}
			m[d] = wgt
		}
	}
}

// pathWeight returns the max-product dependency weight from comp to the
// victim component across the DAG (1 for the victim itself, 0 if no path).
func (e *Engine) pathWeight(from, to string) float64 {
	if from == to {
		return 1
	}
	memo := make(map[string]float64)
	var walk func(string) float64
	walk = func(c string) float64 {
		if c == from {
			return 1
		}
		if v, ok := memo[c]; ok {
			return v
		}
		memo[c] = 0 // cycle guard (the graph is a DAG, but be safe)
		best := 0.0
		for _, u := range e.ups[c] {
			w := walk(u)
			if w <= 0 {
				continue
			}
			ew := 0.1
			if m := e.edgeW[u]; m != nil {
				if v, ok := m[c]; ok {
					ew = v
				}
			}
			if p := w * ew; p > best {
				best = p
			}
		}
		memo[c] = best
		return best
	}
	return walk(to)
}

// Diagnose ranks culprit components for each victim: abnormality in the
// victim's time window, discounted by dependency-path strength.
func (e *Engine) Diagnose(victims []core.Victim) []Result {
	out := make([]Result, 0, len(victims))
	for _, v := range victims {
		w := e.winOf(v.ArriveAt)
		ranked := make([]RankedComp, 0, len(e.comps))
		for _, c := range e.comps {
			pw := e.pathWeight(c, v.Comp)
			score := e.z[c][w] * pw
			// Every component gets a rank; unreachable or quiet
			// ones sink with epsilon scores.
			if score <= 0 {
				score = 1e-9 * e.z[c][w]
			}
			ranked = append(ranked, RankedComp{Comp: c, Score: score})
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			if ranked[i].Score != ranked[j].Score {
				return ranked[i].Score > ranked[j].Score
			}
			return ranked[i].Comp < ranked[j].Comp
		})
		out = append(out, Result{Victim: v, Ranked: ranked})
	}
	return out
}
