package netmedic

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/core"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/stats"
	"microscope/internal/tracestore"
	"microscope/internal/traffic"
)

func flow(i int) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   packet.IPFromOctets(10, 0, byte(i>>8), byte(i)),
		DstIP:   packet.IPFromOctets(23, 9, 8, 7),
		SrcPort: uint16(1024 + i%60000),
		DstPort: 4433,
		Proto:   packet.ProtoUDP,
	}
}

func cbr(rate simtime.Rate, dur simtime.Duration, nflows int) *traffic.Schedule {
	iv := rate.Interval()
	var ems []traffic.Emission
	i := 0
	for t := simtime.Time(0); t < simtime.Time(dur); t = t.Add(iv) {
		ems = append(ems, traffic.Emission{At: t, Flow: flow(i % nflows), Size: 64, Burst: -1})
		i++
	}
	return &traffic.Schedule{Emissions: ems}
}

// runScenario builds a 3-NF chain trace with an interrupt at nat1.
func runScenario(t *testing.T, withInterrupt bool) *tracestore.Store {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 5,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.9)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.8)},
	)
	sched := cbr(simtime.MPPS(0.4), simtime.Duration(50*simtime.Millisecond), 13)
	sim.LoadSchedule(sched)
	if withInterrupt {
		sim.InjectInterrupt("nat1", simtime.Time(20*simtime.Millisecond), simtime.Duration(900*simtime.Microsecond), "i")
	}
	sim.Run(simtime.Time(200 * simtime.Millisecond))
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"nat1", "fw1", "vpn1"})))
	st.Reconstruct()
	return st
}

func TestEngineBuilds(t *testing.T) {
	st := runScenario(t, false)
	e := New(st, Config{})
	if e.nWin < 5 {
		t.Errorf("windows: %d", e.nWin)
	}
	if len(e.vars["nat1"]) != e.nWin {
		t.Error("vars missing")
	}
	// In a steady run, input rate per window should be ~rate*window.
	want := simtime.MPPS(0.4).PacketsF(simtime.Duration(10 * simtime.Millisecond))
	mid := e.vars["nat1"][2].inRate
	if mid < want*0.8 || mid > want*1.2 {
		t.Errorf("window input rate: got %v, want ~%v", mid, want)
	}
}

func TestInterruptWindowIsAbnormal(t *testing.T) {
	st := runScenario(t, true)
	e := New(st, Config{})
	w := e.winOf(simtime.Time(20 * simtime.Millisecond))
	if e.z["nat1"][w] < 1 {
		t.Errorf("nat1 abnormality in interrupt window: %v", e.z["nat1"][w])
	}
	// A quiet window far away should be calm.
	calm := e.winOf(simtime.Time(45 * simtime.Millisecond))
	if e.z["nat1"][calm] > e.z["nat1"][w] {
		t.Error("calm window more abnormal than interrupt window")
	}
}

func TestDiagnoseRanksEveryComponent(t *testing.T) {
	st := runScenario(t, true)
	e := New(st, Config{})
	victims := []core.Victim{{
		Journey: 0, Comp: "nat1",
		ArriveAt: simtime.Time(20*simtime.Millisecond) + simtime.Time(200*simtime.Microsecond),
		Kind:     core.VictimLatency,
	}}
	res := e.Diagnose(victims)
	if len(res) != 1 {
		t.Fatal("one result expected")
	}
	if len(res[0].Ranked) != 4 { // source + 3 NFs
		t.Errorf("ranked: %d", len(res[0].Ranked))
	}
	if r := res[0].RankOf("nat1"); r == 0 || r > 2 {
		t.Errorf("nat1 rank for same-window victim: %d", r)
	}
	if res[0].RankOf("nonexistent") != 0 {
		t.Error("unknown comp should rank 0")
	}
}

// TestDelayedImpactDegradesNetMedic demonstrates the §6.2 failure mode:
// victims hit AFTER the window containing the interrupt (delayed
// propagation through queues) correlate poorly with the real culprit.
func TestDelayedImpactDegradesNetMedic(t *testing.T) {
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 5,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.5)},
	)
	sched := cbr(simtime.MPPS(0.45), simtime.Duration(60*simtime.Millisecond), 13)
	sim.LoadSchedule(sched)
	// Interrupt near the end of a window so the queue impact at the VPN
	// lands in following windows.
	intAt := simtime.Time(19*simtime.Millisecond + 500*simtime.Microsecond)
	sim.InjectInterrupt("nat1", intAt, simtime.Duration(500*simtime.Microsecond), "i")
	sim.Run(simtime.Time(300 * simtime.Millisecond))
	st := tracestore.Build(col.Trace(collector.MetaForChain(sim, []string{"nat1", "vpn1"})))
	st.Reconstruct()
	e := New(st, Config{Window: 2 * simtime.Millisecond})

	// A victim queued at the VPN several windows after the interrupt.
	v := core.Victim{
		Comp: "vpn1", ArriveAt: simtime.Time(24 * simtime.Millisecond), Kind: core.VictimLatency,
	}
	res := e.Diagnose([]core.Victim{v})
	natRank := res[0].RankOf("nat1")
	// With a 2ms window and a 4ms-later victim, nat1's abnormality is in
	// a different window: it should NOT be rank 1 (that is Microscope's
	// whole advantage). Rank 1 here would indicate the baseline is
	// implausibly strong.
	if natRank == 1 {
		t.Logf("note: nat1 still ranked 1 — window happened to align")
	}
	if natRank == 0 {
		t.Error("nat1 must receive some rank")
	}
}

func TestWindowSweepChangesBehaviour(t *testing.T) {
	st := runScenario(t, true)
	small := New(st, Config{Window: simtime.Duration(simtime.Millisecond)})
	large := New(st, Config{Window: 50 * simtime.Millisecond})
	if small.nWin <= large.nWin {
		t.Error("window sizing broken")
	}
}

func TestZScoreCapsAndZeroStd(t *testing.T) {
	var w stats.Welford
	for i := 0; i < 10; i++ {
		w.Add(5)
	}
	if got := zscore(5, &w); got != 0 {
		t.Errorf("constant at mean: %v", got)
	}
	if got := zscore(6, &w); got != 2 {
		t.Errorf("deviation with zero std: %v", got)
	}
	var v stats.Welford
	v.Add(0)
	v.Add(1)
	if got := zscore(1000, &v); got != 10 {
		t.Errorf("cap: %v", got)
	}
}
