package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"microscope/internal/obs"
	"microscope/internal/resilience"
	"microscope/internal/spec"
)

// DefaultMaxTenants bounds how many tenants one server hosts unless the
// operator raises it.
const DefaultMaxTenants = 64

// ErrTenantNotFound is returned for operations on unknown tenant IDs.
var ErrTenantNotFound = errors.New("serve: no such tenant")

// ErrDraining is returned when the server is shutting down.
var ErrDraining = errors.New("serve: server draining")

// ServerConfig tunes the serving tier.
type ServerConfig struct {
	// MaxTenants bounds concurrent tenants (default DefaultMaxTenants).
	MaxTenants int
	// Obs is the server-level registry (tenant counts, API counters);
	// per-tenant metrics live in each tenant's own labeled registry.
	// nil creates a fresh one.
	Obs *obs.Registry

	// hookEnv is injected by tests to fake webhook/exec transports.
	hookEnv hookEnv
}

// Server hosts many concurrent tenants behind one HTTP API. All methods
// are safe for concurrent use.
type Server struct {
	cfg ServerConfig
	reg *obs.Registry

	gTenants *obs.Gauge
	cCreated *obs.Counter
	cDeleted *obs.Counter

	mu       sync.RWMutex
	tenants  map[string]*Tenant
	draining bool
}

// NewServer creates an empty serving tier.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Obs,
		tenants:  make(map[string]*Tenant),
		gTenants: cfg.Obs.Gauge("microscope_serve_tenants"),
		cCreated: cfg.Obs.Counter("microscope_serve_tenants_created_total"),
		cDeleted: cfg.Obs.Counter("microscope_serve_tenants_deleted_total"),
	}
	return s
}

// Create registers a new tenant from a spec. The spec is validated and
// resolved here; it must carry a topology. Fails if the ID is taken —
// use Update to replace a live tenant's pipeline.
func (s *Server) Create(id string, sp *spec.PipelineSpec) (*Tenant, error) {
	if id == "" {
		return nil, errors.New("serve: tenant id must not be empty")
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rs := sp.Resolved()
	if rs.Topology == nil {
		return nil, fmt.Errorf("serve: tenant %q: spec.topology is required by the serving tier", id)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if _, ok := s.tenants[id]; ok {
		return nil, fmt.Errorf("serve: tenant %q already exists (PUT to replace)", id)
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, fmt.Errorf("serve: tenant limit %d reached", s.cfg.MaxTenants)
	}
	t, err := newTenant(id, rs, s.cfg.hookEnv)
	if err != nil {
		return nil, err
	}
	s.tenants[id] = t
	s.gTenants.Set(int64(len(s.tenants)))
	s.cCreated.Inc()
	return t, nil
}

// Update replaces a tenant's pipeline with a new spec: the old pipeline
// drains fully (final window flushed, hooks quiesced), then a fresh one
// starts. A spec change restarts the stream — stream state is a function
// of the spec, so splicing a new spec into retained state would break
// the determinism contract. Creates the tenant if absent.
func (s *Server) Update(ctx context.Context, id string, sp *spec.PipelineSpec) (*Tenant, bool, error) {
	s.mu.Lock()
	old, existed := s.tenants[id]
	if existed {
		delete(s.tenants, id)
		s.gTenants.Set(int64(len(s.tenants)))
	}
	s.mu.Unlock()
	if existed {
		if err := old.drain(ctx); err != nil {
			return nil, true, err
		}
	}
	t, err := s.Create(id, sp)
	return t, existed, err
}

// Get returns a live tenant.
func (s *Server) Get(id string) (*Tenant, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	return t, ok
}

// Delete drains and removes a tenant.
func (s *Server) Delete(ctx context.Context, id string) error {
	s.mu.Lock()
	t, ok := s.tenants[id]
	if ok {
		delete(s.tenants, id)
		s.gTenants.Set(int64(len(s.tenants)))
	}
	s.mu.Unlock()
	if !ok {
		return ErrTenantNotFound
	}
	s.cDeleted.Inc()
	return t.drain(ctx)
}

// snapshot returns the live tenants in ID order.
func (s *Server) snapshot() []*Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ts := make([]*Tenant, len(ids))
	for i, id := range ids {
		ts[i] = s.tenants[id]
	}
	return ts
}

// List snapshots every tenant's status, sorted by ID.
func (s *Server) List() []TenantStatus {
	ts := s.snapshot()
	out := make([]TenantStatus, len(ts))
	for i, t := range ts {
		out[i] = t.Status()
	}
	return out
}

// Shutdown drains every tenant concurrently: each feed queue empties,
// each final partial window flushes, each hook runner quiesces. New
// tenant creation and ingest are rejected from the first moment. The
// HTTP server should close only after Shutdown returns, so in-flight
// diagnosis is never truncated.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	ts := s.snapshot()

	errc := make(chan error, len(ts))
	for _, t := range ts {
		go func(t *Tenant) {
			// A panicking drain must still report to the join: without
			// containment the send is skipped and Shutdown hangs forever
			// waiting for this tenant's slot.
			var err error
			if perr := resilience.Contain("drain:"+t.ID, func() { err = t.drain(ctx) }); perr != nil {
				err = perr
			}
			errc <- err
		}(t)
	}
	var firstErr error
	for range ts {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// WriteMetrics writes the global Prometheus exposition: the server's own
// registry followed by every tenant's labeled registry, so one scrape
// sees every tenant's series side by side.
func (s *Server) WriteMetrics(w io.Writer) error {
	if err := s.reg.WritePrometheus(w); err != nil {
		return err
	}
	for _, t := range s.snapshot() {
		if err := t.Reg.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// Healthz aggregates liveness: degraded when draining or when any
// tenant's latest window reports degraded trace health.
func (s *Server) Healthz() (bool, string) {
	if s.Draining() {
		return false, "draining"
	}
	ts := s.snapshot()
	degraded := 0
	for _, t := range ts {
		if h, ok := t.Health(); ok && h.Degraded() {
			degraded++
		}
	}
	if degraded > 0 {
		return false, fmt.Sprintf("%d/%d tenants degraded", degraded, len(ts))
	}
	return true, fmt.Sprintf("ok: %d tenants", len(ts))
}
