package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"microscope/internal/collector"
	"microscope/internal/leakcheck"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/spec"
	"microscope/internal/traffic"
)

// chainTrace simulates a 2-NF chain with the given seed and interrupt
// times and returns the collected trace. Distinct seeds produce distinct
// flows, so tenants built from different seeds have genuinely different
// workloads.
func chainTrace(t testing.TB, seed int64, interrupts []simtime.Time) *collector.Trace {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, seed,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
	)
	iv := simtime.MPPS(0.4).Interval()
	var ems []traffic.Emission
	i := 0
	for tt := simtime.Time(0); tt < simtime.Time(500*simtime.Millisecond); tt = tt.Add(iv) {
		ems = append(ems, traffic.Emission{
			At: tt,
			Flow: packet.FiveTuple{
				SrcIP:   packet.IPFromOctets(10, byte(seed), 0, byte(i%50)),
				DstIP:   packet.IPFromOctets(23, 0, 0, 1),
				SrcPort: uint16(1024 + i%50), DstPort: 80, Proto: packet.ProtoTCP,
			},
			Size: 64, Burst: -1,
		})
		i++
	}
	sim.LoadSchedule(&traffic.Schedule{Emissions: ems})
	for _, at := range interrupts {
		sim.InjectInterrupt("fw1", at, 900*simtime.Microsecond, "serve")
	}
	sim.Run(simtime.Time(600 * simtime.Millisecond))
	return col.Trace(collector.MetaForChain(sim, []string{"nat1", "fw1"}))
}

// tenantSpec builds a valid spec whose topology matches chainTrace's
// deployment; mod customizes it.
func tenantSpec(tr *collector.Trace, mod func(*spec.PipelineSpec)) *spec.PipelineSpec {
	s := &spec.PipelineSpec{
		Version:  spec.Version,
		Topology: spec.FromMeta(tr.Meta),
	}
	if mod != nil {
		mod(s)
	}
	return s
}

// feedAll pushes a trace into a tenant in chunks, backing off on
// backpressure exactly like a well-behaved HTTP client would on 429.
func feedAll(t testing.TB, tn *Tenant, recs []collector.BatchRecord, chunk int) {
	t.Helper()
	for i := 0; i < len(recs); i += chunk {
		end := i + chunk
		if end > len(recs) {
			end = len(recs)
		}
		for {
			err := tn.Enqueue(recs[i:end])
			if err == nil {
				break
			}
			if errors.Is(err, ErrBackpressure) {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			t.Fatalf("enqueue: %v", err)
		}
	}
}

// TestServeHTTPLifecycle drives the full tenant lifecycle over real HTTP:
// create from a spec document, ingest JSON records, flush, read reports
// and alerts, scrape metrics, update, delete.
func TestServeHTTPLifecycle(t *testing.T) {
	tr := chainTrace(t, 3, []simtime.Time{simtime.Time(150 * simtime.Millisecond)})
	srv := NewServer(ServerConfig{})
	hs := httptest.NewServer(Handler(srv))
	defer hs.Close()
	client := hs.Client()

	sp := tenantSpec(tr, func(s *spec.PipelineSpec) { s.Tenant = "acme" })
	body, err := sp.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Create via POST /tenants (id from spec.tenant).
	resp := doReq(t, client, http.MethodPost, hs.URL+"/tenants", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %s: %s", resp.Status, readBody(t, resp))
	}
	// Duplicate create is rejected.
	resp = doReq(t, client, http.MethodPost, hs.URL+"/tenants", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate create: %s", resp.Status)
	}
	// Invalid spec gets a field-path error.
	resp = doReq(t, client, http.MethodPut, hs.URL+"/tenants/bad", []byte(`{"diagnosis":{"victim_percentile":120}}`))
	if b := readBody(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(b, "diagnosis.victim_percentile") {
		t.Fatalf("invalid spec: %s: %s", resp.Status, b)
	}

	// Ingest the trace as JSON chunks.
	const chunk = 20000
	for i := 0; i < len(tr.Records); i += chunk {
		end := i + chunk
		if end > len(tr.Records) {
			end = len(tr.Records)
		}
		rb, err := json.Marshal(tr.Records[i:end])
		if err != nil {
			t.Fatal(err)
		}
		for {
			resp = doReq(t, client, http.MethodPost, hs.URL+"/tenants/acme/records", rb)
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Fatal("429 without Retry-After")
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest: %s: %s", resp.Status, readBody(t, resp))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp = doReq(t, client, http.MethodPost, hs.URL+"/tenants/acme/flush", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("flush: %s", resp.Status)
	}

	// Latest report.
	resp = doReq(t, client, http.MethodGet, hs.URL+"/tenants/acme/report", nil)
	var rep WindowReport
	mustDecode(t, resp, http.StatusOK, &rep)
	if rep.Fingerprint == "" || rep.Degradation != "full" {
		t.Fatalf("report: %+v", rep)
	}
	// Windowed reports.
	resp = doReq(t, client, http.MethodGet, hs.URL+"/tenants/acme/reports?n=3", nil)
	var reps []WindowReport
	mustDecode(t, resp, http.StatusOK, &reps)
	if len(reps) == 0 || len(reps) > 3 {
		t.Fatalf("reports: %d", len(reps))
	}
	// Alerts: the interrupt must have surfaced.
	resp = doReq(t, client, http.MethodGet, hs.URL+"/tenants/acme/alerts", nil)
	var alerts []alertJSON
	mustDecode(t, resp, http.StatusOK, &alerts)
	if len(alerts) == 0 || alerts[0].Comp != "fw1" {
		t.Fatalf("alerts: %+v", alerts)
	}

	// Per-tenant metrics carry the tenant label; the global scrape has
	// both server and tenant series.
	if b := readBody(t, doReq(t, client, http.MethodGet, hs.URL+"/tenants/acme/metrics", nil)); !strings.Contains(b, `microscope_monitor_records_total{tenant="acme"}`) {
		t.Fatalf("tenant metrics missing labeled series:\n%s", b)
	}
	if b := readBody(t, doReq(t, client, http.MethodGet, hs.URL+"/metrics", nil)); !strings.Contains(b, "microscope_serve_tenants 1") ||
		!strings.Contains(b, `{tenant="acme"}`) {
		t.Fatalf("global metrics incomplete:\n%s", b)
	}
	if b := readBody(t, doReq(t, client, http.MethodGet, hs.URL+"/healthz", nil)); !strings.Contains(b, "1 tenants") {
		t.Fatalf("healthz: %s", b)
	}

	// Status endpoint reflects the ingest.
	resp = doReq(t, client, http.MethodGet, hs.URL+"/tenants/acme", nil)
	var st struct {
		TenantStatus
		Spec *spec.PipelineSpec `json:"spec"`
	}
	mustDecode(t, resp, http.StatusOK, &st)
	if st.Stats.Records != len(tr.Records) || st.Spec == nil {
		t.Fatalf("status: records=%d (want %d) spec=%v", st.Stats.Records, len(tr.Records), st.Spec != nil)
	}

	// Update replaces the pipeline (200, not 201) and resets its stats.
	resp = doReq(t, client, http.MethodPut, hs.URL+"/tenants/acme", body)
	var st2 TenantStatus
	mustDecode(t, resp, http.StatusOK, &st2)
	if st2.Stats.Records != 0 {
		t.Fatalf("update did not restart the pipeline: %+v", st2.Stats)
	}

	// Delete, then 404.
	resp = doReq(t, client, http.MethodDelete, hs.URL+"/tenants/acme", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %s", resp.Status)
	}
	resp = doReq(t, client, http.MethodGet, hs.URL+"/tenants/acme/report", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-delete report: %s", resp.Status)
	}
}

// TestServeBinaryIngest checks the streaming-body path: the collector's
// binary framing posted as application/octet-stream.
func TestServeBinaryIngest(t *testing.T) {
	tr := chainTrace(t, 5, nil)
	srv := NewServer(ServerConfig{})
	tn, err := srv.Create("bin", tenantSpec(tr, nil))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(Handler(srv))
	defer hs.Close()

	enc := collector.NewEncoder()
	for i := range tr.Records {
		enc.Append(&tr.Records[i])
	}
	enc.Flush()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/tenants/bin/records", bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		Accepted int `json:"accepted"`
	}
	mustDecode(t, resp, http.StatusAccepted, &acc)
	if acc.Accepted != len(tr.Records) {
		t.Fatalf("accepted %d of %d", acc.Accepted, len(tr.Records))
	}
	if err := tn.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.LatestReport(); !ok {
		t.Fatal("no report after binary ingest + flush")
	}
}

// TestBackpressure: a stalled tenant queue answers ErrBackpressure (429
// over HTTP with Retry-After), and releases once drained.
func TestBackpressure(t *testing.T) {
	tr := chainTrace(t, 7, nil)
	srv := NewServer(ServerConfig{})
	tn, err := srv.Create("slow", tenantSpec(tr, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Stall the feed goroutine, then fill the queue to the brim.
	barrier := make(chan struct{})
	tn.in <- feedMsg{barrier: barrier}
	for len(tn.in) > 0 { // wait until the feed goroutine is parked on the barrier
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < feedQueueCap; i++ {
		if err := tn.Enqueue(tr.Records[:1]); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := tn.Enqueue(tr.Records[:1]); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("over-full enqueue = %v, want ErrBackpressure", err)
	}

	hs := httptest.NewServer(Handler(srv))
	defer hs.Close()
	rb, _ := json.Marshal(tr.Records[:1])
	resp := doReq(t, hs.Client(), http.MethodPost, hs.URL+"/tenants/slow/records", rb)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("want 429 + Retry-After, got %s", resp.Status)
	}

	close(barrier)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := tn.Enqueue(tr.Records[:1]); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after release")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeRejectsSpecWithoutTopology: the serving tier cannot
// reconstruct without spec'd metadata.
func TestServeRejectsSpecWithoutTopology(t *testing.T) {
	srv := NewServer(ServerConfig{})
	if _, err := srv.Create("x", &spec.PipelineSpec{}); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("err = %v", err)
	}
	if _, err := srv.Create("", tenantSpec(chainTrace(t, 1, nil), nil)); err == nil {
		t.Fatal("empty tenant id accepted")
	}
}

// TestTenantLimit: the server bounds concurrent tenants.
func TestTenantLimit(t *testing.T) {
	leakcheck.Check(t)
	tr := chainTrace(t, 9, nil)
	srv := NewServer(ServerConfig{MaxTenants: 2})
	for i := 0; i < 2; i++ {
		if _, err := srv.Create(fmt.Sprintf("t%d", i), tenantSpec(tr, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.Create("t2", tenantSpec(tr, nil)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func doReq(t testing.TB, c *http.Client, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mustDecode(t testing.TB, resp *http.Response, wantCode int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s (want %d): %s", resp.Status, wantCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownSurvivesDrainPanic: a tenant whose drain panics must not
// hang the shutdown join — the panic is contained and reported, and the
// healthy tenants still drain to completion.
func TestShutdownSurvivesDrainPanic(t *testing.T) {
	leakcheck.Check(t)
	tr := chainTrace(t, 11, nil)
	srv := NewServer(ServerConfig{})
	bad, err := srv.Create("bad", tenantSpec(tr, nil))
	if err != nil {
		t.Fatal(err)
	}
	good, err := srv.Create("good", tenantSpec(tr, nil))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, good, tr.Records, 512)
	bad.drainHook = func() { panic("drain boom") }

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()
	select {
	case err := <-done:
		if err == nil || !resilience.IsPanic(err) {
			t.Fatalf("Shutdown error = %v, want the contained drain panic", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Shutdown hung on a panicking tenant drain")
	}
	if err := good.drain(context.Background()); err != nil {
		t.Fatalf("healthy tenant not drained after Shutdown: %v", err)
	}
	// Release the panicking tenant's feed goroutine so the test itself
	// leaks nothing.
	bad.drainHook = nil
	if err := bad.drain(context.Background()); err != nil {
		t.Fatalf("cleanup drain: %v", err)
	}
}
