// HTTP surface of the serving tier. Routes (Go 1.22 method patterns):
//
//	GET    /healthz                  aggregate liveness (503 when degraded/draining)
//	GET    /metrics                  global exposition: server + every tenant
//	GET    /tenants                  list tenant statuses
//	POST   /tenants                  create tenant (spec body; id = spec.tenant)
//	PUT    /tenants/{id}             create or replace tenant (spec body)
//	GET    /tenants/{id}             tenant status + resolved spec
//	DELETE /tenants/{id}             drain and remove tenant
//	POST   /tenants/{id}/records     ingest: JSON array of records, or the
//	                                 collector's binary stream framing as
//	                                 application/octet-stream (chunked
//	                                 bodies stream fine)
//	POST   /tenants/{id}/flush       flush the pending partial window
//	GET    /tenants/{id}/report      latest window report (404 before first)
//	GET    /tenants/{id}/reports?n=N retained window reports
//	GET    /tenants/{id}/alerts      retained alerts
//	GET    /tenants/{id}/metrics     this tenant's exposition only
//	GET    /tenants/{id}/healthz     this tenant's trace-quality liveness
//	GET    /debug/pprof/...          the standard Go profiling endpoints
//	                                 (mutex/block carry data when the
//	                                 daemon runs with -contention-profile)
//
// Backpressure contract: when a tenant's ingest queue is full the POST
// returns 429 with a Retry-After header — the PR-6 bounded-ingest
// behaviour surfaced to HTTP clients instead of unbounded buffering.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"microscope/internal/collector"
	"microscope/internal/online"
	"microscope/internal/spec"
)

// maxBodyBytes bounds any request body (specs and record batches).
const maxBodyBytes = 64 << 20

// alertJSON is the wire form of an alert.
type alertJSON struct {
	WindowEnd int64   `json:"window_end_ns"`
	Comp      string  `json:"comp"`
	Kind      string  `json:"kind"`
	Score     float64 `json:"score"`
	Victims   int     `json:"victims"`
	Onset     int64   `json:"onset_ns"`
	Health    string  `json:"health"`
}

func alertsJSON(alerts []online.Alert) []alertJSON {
	out := make([]alertJSON, len(alerts))
	for i, a := range alerts {
		out[i] = alertJSON{
			WindowEnd: int64(a.WindowEnd),
			Comp:      a.Comp,
			Kind:      a.Kind.String(),
			Score:     a.Score,
			Victims:   a.Victims,
			Onset:     int64(a.Onset),
			Health:    a.Health.String(),
		}
	}
	return out
}

// Handler builds the serving tier's HTTP API around s.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, detail := s.Healthz()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, detail)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})

	mux.HandleFunc("POST /tenants", func(w http.ResponseWriter, r *http.Request) {
		sp, err := readSpec(w, r)
		if err != nil {
			return
		}
		if sp.Tenant == "" {
			http.Error(w, "spec.tenant must name the tenant for POST /tenants (or PUT /tenants/{id})", http.StatusBadRequest)
			return
		}
		t, err := s.Create(sp.Tenant, sp)
		if err != nil {
			writeServeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, t.Status())
	})

	mux.HandleFunc("PUT /tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		sp, err := readSpec(w, r)
		if err != nil {
			return
		}
		t, existed, err := s.Update(r.Context(), r.PathValue("id"), sp)
		if err != nil {
			writeServeError(w, err)
			return
		}
		code := http.StatusCreated
		if existed {
			code = http.StatusOK
		}
		writeJSON(w, code, t.Status())
	})

	mux.HandleFunc("GET /tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			TenantStatus
			Spec *spec.PipelineSpec `json:"spec"`
		}{t.Status(), t.Spec})
	})

	mux.HandleFunc("DELETE /tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		switch err := s.Delete(r.Context(), r.PathValue("id")); {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrTenantNotFound):
			http.Error(w, err.Error(), http.StatusNotFound)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("POST /tenants/{id}/records", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		recs, stats, err := readRecords(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := t.Enqueue(recs); err != nil {
			writeServeError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, struct {
			Accepted int `json:"accepted"`
			Resyncs  int `json:"decode_resyncs,omitempty"`
		}{len(recs), stats.Resyncs})
	})

	mux.HandleFunc("POST /tenants/{id}/flush", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		if err := t.Flush(r.Context()); err != nil {
			writeServeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /tenants/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		rep, ok := t.LatestReport()
		if !ok {
			http.Error(w, "no window diagnosed yet", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("GET /tenants/{id}/reports", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, http.StatusOK, t.Reports(n))
	})

	mux.HandleFunc("GET /tenants/{id}/alerts", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, alertsJSON(t.Alerts()))
	})

	mux.HandleFunc("GET /tenants/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.Reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	mux.HandleFunc("GET /tenants/{id}/healthz", func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such tenant", http.StatusNotFound)
			return
		}
		h, seen := t.Health()
		if !seen {
			fmt.Fprintln(w, "no window diagnosed yet")
			return
		}
		if h.Degraded() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, h.String())
	})

	return mux
}

// readSpec decodes a spec body, writing the HTTP error itself on failure.
func readSpec(w http.ResponseWriter, r *http.Request) (*spec.PipelineSpec, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, err
	}
	sp, err := spec.Parse(body)
	if err != nil {
		// Field-path validation errors are the API's contract: the client
		// learns exactly which knob is wrong.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, err
	}
	return sp, nil
}

// readRecords decodes an ingest body: the collector's binary stream
// framing for application/octet-stream (resilient to torn frames), JSON
// array otherwise.
func readRecords(r *http.Request) ([]collector.BatchRecord, collector.DecodeStats, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return nil, collector.DecodeStats{}, err
	}
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		return collector.DecodeStream(body)
	}
	var recs []collector.BatchRecord
	if err := json.Unmarshal(body, &recs); err != nil {
		return nil, collector.DecodeStats{}, fmt.Errorf("records body: %w", err)
	}
	return recs, collector.DecodeStats{}, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeServeError maps the serving tier's sentinel errors onto status
// codes; everything else is a 400 (the errors are caller mistakes:
// duplicate tenant, invalid spec, missing topology).
func writeServeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBackpressure):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrStopped), errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrTenantNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}
