package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"microscope/internal/leakcheck"
	"microscope/internal/obs"
	"microscope/internal/online"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/spec"
)

func testAlert(score float64) online.Alert {
	return online.Alert{
		WindowEnd: simtime.Time(100 * simtime.Millisecond),
		Comp:      "fw1",
		Score:     score,
		Victims:   7,
		Onset:     simtime.Time(42 * simtime.Millisecond),
	}
}

// runnerHarness wires a hookRunner to fake transports and a fake clock.
type runnerHarness struct {
	mu     sync.Mutex
	posts  []string // delivered payloads
	execs  [][]string
	fail   int // fail this many deliveries before succeeding
	failed int
	sleeps []time.Duration
	now    time.Time
	reg    *obs.Registry
	r      *hookRunner
}

func newRunnerHarness(t *testing.T, hooks []spec.HookSpec, retry resilience.RetryPolicy) *runnerHarness {
	t.Helper()
	h := &runnerHarness{reg: obs.New(), now: time.Unix(1000, 0)}
	env := hookEnv{
		post: func(_ context.Context, url string, body []byte) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.failed < h.fail {
				h.failed++
				return errors.New("receiver down")
			}
			h.posts = append(h.posts, string(body))
			return nil
		},
		run: func(_ context.Context, argv []string, body []byte) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.execs = append(h.execs, append([]string{string(body)}, argv...))
			return nil
		},
		now: func() time.Time {
			h.mu.Lock()
			defer h.mu.Unlock()
			return h.now
		},
		sleep: func(d time.Duration) {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.sleeps = append(h.sleeps, d)
		},
	}
	h.r = newHookRunner("acme", hooks, retry, h.reg, env)
	t.Cleanup(func() { h.r.quiesce(context.Background()) })
	return h
}

func (h *runnerHarness) deliverAndWait(t *testing.T, alerts []online.Alert) {
	t.Helper()
	h.r.fire(alerts)
	if err := h.r.quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func (h *runnerHarness) counter(name string) int64 { return h.reg.Counter(name).Value() }

// TestHookDeliveryAndPayload: a webhook fires once per qualifying alert
// with the full payload; a below-threshold alert is filtered.
func TestHookDeliveryAndPayload(t *testing.T) {
	h := newRunnerHarness(t, []spec.HookSpec{
		{Name: "pager", Type: "webhook", URL: "http://pager/hook", MinScore: 500},
	}, resilience.RetryPolicy{})
	h.deliverAndWait(t, []online.Alert{testAlert(900), testAlert(100)})

	if len(h.posts) != 1 {
		t.Fatalf("%d deliveries, want 1 (MinScore must filter)", len(h.posts))
	}
	var p HookPayload
	if err := json.Unmarshal([]byte(h.posts[0]), &p); err != nil {
		t.Fatal(err)
	}
	if p.Tenant != "acme" || p.Hook != "pager" || p.Comp != "fw1" || p.Score != 900 || p.Victims != 7 {
		t.Fatalf("payload: %+v", p)
	}
	if got := h.counter("microscope_hooks_fired_total"); got != 1 {
		t.Fatalf("fired counter = %d", got)
	}
}

// TestHookRetryBackoff: transient failures are retried with backoff and
// the delivery ultimately succeeds without counting as a hook failure.
func TestHookRetryBackoff(t *testing.T) {
	h := newRunnerHarness(t, []spec.HookSpec{
		{Name: "flaky", Type: "webhook", URL: "http://flaky/hook"},
	}, resilience.RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Seed: 1})
	h.fail = 2
	h.deliverAndWait(t, []online.Alert{testAlert(900)})

	if len(h.posts) != 1 {
		t.Fatalf("%d successful deliveries, want 1", len(h.posts))
	}
	if len(h.sleeps) != 2 {
		t.Fatalf("%d backoff sleeps, want 2 (two transient failures)", len(h.sleeps))
	}
	if h.sleeps[1] <= h.sleeps[0] {
		t.Fatalf("backoff did not grow: %v", h.sleeps)
	}
	if got := h.counter("microscope_hooks_failed_total"); got != 0 {
		t.Fatalf("failed counter = %d after a recovered delivery", got)
	}
}

// TestHookBreaker: maxFailures exhausted deliveries open the breaker
// (subsequent alerts are counted, not attempted); after the cooldown a
// half-open probe goes out, and its success closes the breaker again.
func TestHookBreaker(t *testing.T) {
	hook := spec.HookSpec{
		Name: "dead", Type: "webhook", URL: "http://dead/hook",
		MaxFailures: 2,
		Cooldown:    spec.Duration(30 * time.Second),
	}
	// MaxAttempts 1: no in-delivery retries, so each alert is one attempt.
	h := newRunnerHarness(t, []spec.HookSpec{hook}, resilience.RetryPolicy{MaxAttempts: 1})
	h.fail = 1 << 30 // receiver stays down

	h.r.fire([]online.Alert{testAlert(900), testAlert(901)}) // opens the breaker
	h.r.fire([]online.Alert{testAlert(902)})                 // breaker short-circuits
	// Wait for the queue to drain without closing it: poll the counters.
	waitFor(t, func() bool {
		return h.counter("microscope_hooks_breaker_open_total") == 1
	}, "breaker never short-circuited")
	if got := h.counter("microscope_hooks_failed_total"); got != 2 {
		t.Fatalf("failed counter = %d, want 2", got)
	}
	h.mu.Lock()
	attempted := h.failed
	h.mu.Unlock()
	if attempted != 2 {
		t.Fatalf("receiver saw %d attempts, want 2 (third alert must not reach it)", attempted)
	}

	// Cooldown elapses and the receiver recovers: the half-open probe
	// succeeds and closes the breaker.
	h.mu.Lock()
	h.now = h.now.Add(31 * time.Second)
	h.fail = h.failed // stop failing
	h.mu.Unlock()
	h.deliverAndWait(t, []online.Alert{testAlert(903)})
	if len(h.posts) != 1 {
		t.Fatalf("half-open probe: %d deliveries, want 1", len(h.posts))
	}
	if got := h.counter("microscope_hooks_fired_total"); got != 1 {
		t.Fatalf("fired counter = %d", got)
	}
}

// TestHookExecAndFanout: an exec hook gets the payload on stdin, and
// multiple hooks each see every qualifying alert.
func TestHookExecAndFanout(t *testing.T) {
	h := newRunnerHarness(t, []spec.HookSpec{
		{Name: "web", Type: "webhook", URL: "http://a/hook"},
		{Name: "script", Type: "exec", Command: []string{"/usr/bin/remediate", "--tenant", "acme"}},
	}, resilience.RetryPolicy{})
	h.deliverAndWait(t, []online.Alert{testAlert(900)})

	if len(h.posts) != 1 || len(h.execs) != 1 {
		t.Fatalf("posts=%d execs=%d, want 1 each", len(h.posts), len(h.execs))
	}
	if h.execs[0][1] != "/usr/bin/remediate" {
		t.Fatalf("exec argv: %v", h.execs[0][1:])
	}
	var p HookPayload
	if err := json.Unmarshal([]byte(h.execs[0][0]), &p); err != nil {
		t.Fatalf("exec stdin is not the JSON payload: %v", err)
	}
	if p.Hook != "script" {
		t.Fatalf("exec payload hook = %q", p.Hook)
	}
}

// TestHookPanicContained: a panicking transport is contained, counted as
// a failure, and the runner keeps delivering to other hooks.
func TestHookPanicContained(t *testing.T) {
	reg := obs.New()
	var delivered []string
	var mu sync.Mutex
	env := hookEnv{
		post: func(_ context.Context, url string, body []byte) error {
			if url == "http://boom/hook" {
				panic("transport bug")
			}
			mu.Lock()
			delivered = append(delivered, url)
			mu.Unlock()
			return nil
		},
		sleep: func(time.Duration) {},
	}
	r := newHookRunner("acme", []spec.HookSpec{
		{Name: "boom", Type: "webhook", URL: "http://boom/hook"},
		{Name: "ok", Type: "webhook", URL: "http://ok/hook"},
	}, resilience.RetryPolicy{MaxAttempts: 1}, reg, env)
	r.fire([]online.Alert{testAlert(900)})
	if err := r.quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}

	if len(delivered) != 1 || delivered[0] != "http://ok/hook" {
		t.Fatalf("healthy hook deliveries: %v", delivered)
	}
	if got := reg.Counter("microscope_hooks_failed_total").Value(); got != 1 {
		t.Fatalf("failed counter = %d, want 1 (the contained panic)", got)
	}
}

// TestHookOverflowDrops: a flooded hook queue drops batches instead of
// blocking the caller.
func TestHookOverflowDrops(t *testing.T) {
	reg := obs.New()
	block := make(chan struct{})
	env := hookEnv{
		post: func(context.Context, string, []byte) error {
			<-block
			return nil
		},
		sleep: func(time.Duration) {},
	}
	r := newHookRunner("acme", []spec.HookSpec{
		{Name: "slow", Type: "webhook", URL: "http://slow/hook"},
	}, resilience.RetryPolicy{MaxAttempts: 1}, reg, env)
	// One batch in flight + hookQueueCap queued; everything beyond drops.
	for i := 0; i < hookQueueCap+16; i++ {
		r.fire([]online.Alert{testAlert(900)})
	}
	waitFor(t, func() bool {
		return reg.Counter("microscope_hooks_dropped_total").Value() > 0
	}, "overflow never dropped")
	close(block)
	if err := r.quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHookEndToEnd: a tenant whose trace contains a fault delivers the
// resulting alerts through its spec'd webhook — the full path from
// ingest through diagnosis to remediation.
func TestHookEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	var mu sync.Mutex
	var payloads []HookPayload
	env := hookEnv{
		post: func(_ context.Context, url string, body []byte) error {
			var p HookPayload
			if err := json.Unmarshal(body, &p); err != nil {
				return err
			}
			mu.Lock()
			payloads = append(payloads, p)
			mu.Unlock()
			return nil
		},
		sleep: func(time.Duration) {},
	}
	tr := chainTrace(t, 3, []simtime.Time{simtime.Time(150 * simtime.Millisecond)})
	sp := tenantSpec(tr, func(s *spec.PipelineSpec) {
		s.Tenant = "hooked"
		s.Hooks = []spec.HookSpec{{Name: "pager", Type: "webhook", URL: "http://pager/hook"}}
	})
	srv := NewServer(ServerConfig{hookEnv: env})
	tn, err := srv.Create("hooked", sp)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, tn, tr.Records, 20000)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(payloads) == 0 {
		t.Fatal("fault produced no hook deliveries")
	}
	if p := payloads[0]; p.Tenant != "hooked" || p.Hook != "pager" || p.Comp != "fw1" {
		t.Fatalf("payload: %+v", p)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}
