// Multi-tenant isolation: the serving tier's core promise is that
// co-residency is invisible in the output. A tenant's reports must be
// byte-identical (by window fingerprint) whether it runs alone on an
// idle server or beside seven noisy neighbours, whether its engine uses
// one worker or eight, and whether or not a neighbour is drowning in
// overload and panicking hooks.
package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"microscope/internal/collector"
	"microscope/internal/leakcheck"
	"microscope/internal/simtime"
	"microscope/internal/spec"
)

const isolationTenants = 8

// tenantWorkload is one tenant's deterministic input: its own seed
// (distinct flows), its own interrupt schedule, and spec knobs that
// differ per tenant so the pipelines are genuinely heterogeneous.
type tenantWorkload struct {
	id    string
	trace *collector.Trace
	spec  *spec.PipelineSpec
}

func isolationWorkloads(t testing.TB) []tenantWorkload {
	t.Helper()
	out := make([]tenantWorkload, isolationTenants)
	for i := range out {
		seed := int64(100 + i)
		var ints []simtime.Time
		// Half the tenants see a fault; stagger onsets so windows differ.
		if i%2 == 0 {
			ints = []simtime.Time{simtime.Time(int64(100+30*i) * int64(simtime.Millisecond))}
		}
		tr := chainTrace(t, seed, ints)
		sp := tenantSpec(tr, func(s *spec.PipelineSpec) {
			s.Tenant = fmt.Sprintf("tenant-%d", i)
			// Vary the engine knobs per tenant so specs are distinct.
			s.Diagnosis.VictimPercentile = 99 + float64(i%3)*0.4
			s.Diagnosis.MaxVictims = 150 + 25*i
			s.Stream.Slide = spec.Duration(int64(50 * simtime.Millisecond))
			s.Stream.Overlap = spec.Duration(int64(10 * simtime.Millisecond))
		})
		out[i] = tenantWorkload{id: sp.Tenant, trace: tr, spec: sp}
	}
	return out
}

// withWorkers clones a workload's spec with a different engine width —
// the fingerprints must not depend on it.
func (w tenantWorkload) withWorkers(n int) *spec.PipelineSpec {
	s := w.spec.Clone()
	s.Diagnosis.Workers = n
	return s
}

// soloFingerprints runs one workload alone on a fresh server and
// returns its window fingerprints in order.
func soloFingerprints(t testing.TB, w tenantWorkload) []string {
	t.Helper()
	srv := NewServer(ServerConfig{})
	tn, err := srv.Create(w.id, w.withWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, tn, w.trace.Records, 5000)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	return fingerprints(tn)
}

func fingerprints(tn *Tenant) []string {
	reps := tn.Reports(0)
	fps := make([]string, len(reps))
	for i, r := range reps {
		fps[i] = r.Fingerprint
	}
	return fps
}

// TestMultiTenantIsolation: 8 tenants with distinct seeds and specs fed
// concurrently produce, window for window, the same fingerprints each
// produced running solo — and solo runs use Workers=1 while the shared
// server runs Workers=8, so the identity also covers the parallel
// engine. Run under -race this doubles as the data-race gate for the
// serving tier.
func TestMultiTenantIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant soak")
	}
	leakcheck.Check(t)
	work := isolationWorkloads(t)

	want := make([][]string, isolationTenants)
	for i, w := range work {
		want[i] = soloFingerprints(t, w)
		if len(want[i]) == 0 {
			t.Fatalf("tenant %s: solo run produced no windows", w.id)
		}
	}

	srv := NewServer(ServerConfig{})
	tenants := make([]*Tenant, isolationTenants)
	for i, w := range work {
		tn, err := srv.Create(w.id, w.withWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = tn
	}
	var wg sync.WaitGroup
	for i, w := range work {
		wg.Add(1)
		go func(tn *Tenant, recs []collector.BatchRecord) {
			defer wg.Done()
			feedAll(t, tn, recs, 5000)
		}(tenants[i], w.trace.Records)
	}
	wg.Wait()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := range work {
		got := fingerprints(tenants[i])
		if len(got) != len(want[i]) {
			t.Fatalf("tenant %s: %d windows concurrent vs %d solo", work[i].id, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Errorf("tenant %s window %d: fingerprint diverged between solo and concurrent runs", work[i].id, j)
			}
		}
	}
}

// TestChaosTenantDoesNotLeak: one tenant is set up to suffer — a tiny
// ingest ring that sheds constantly, a panicking webhook transport —
// while a healthy tenant runs beside it. The healthy tenant's window
// fingerprints must equal its solo baseline exactly, and the server must
// survive the hook panics.
func TestChaosTenantDoesNotLeak(t *testing.T) {
	healthy := tenantWorkload{
		trace: chainTrace(t, 42, []simtime.Time{simtime.Time(150 * simtime.Millisecond)}),
	}
	healthy.spec = tenantSpec(healthy.trace, func(s *spec.PipelineSpec) { s.Tenant = "healthy" })
	healthy.id = "healthy"
	want := soloFingerprints(t, healthy)

	env := hookEnv{
		post: func(ctx context.Context, url string, body []byte) error {
			panic("chaos transport")
		},
	}
	srv := NewServer(ServerConfig{hookEnv: env})
	chaosTrace := chainTrace(t, 43, []simtime.Time{
		simtime.Time(100 * simtime.Millisecond),
		simtime.Time(200 * simtime.Millisecond),
		simtime.Time(300 * simtime.Millisecond),
	})
	chaosSpec := tenantSpec(chaosTrace, func(s *spec.PipelineSpec) {
		s.Tenant = "chaos"
		s.Resilience.RingCapacity = 64 // tiny: constant shedding
		s.Resilience.ShedPolicy = "drop-oldest"
		s.Hooks = []spec.HookSpec{{Name: "boom", Type: "webhook", URL: "http://unreachable.invalid/hook"}}
	})
	chaos, err := srv.Create("chaos", chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := srv.Create("healthy", healthy.spec)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		feedAll(t, tn, healthy.trace.Records, 5000)
	}()
	go func() {
		defer wg.Done()
		// The chaos tenant's ingest may shed; just keep pushing.
		for i := 0; i < len(chaosTrace.Records); i += 2000 {
			end := i + 2000
			if end > len(chaosTrace.Records) {
				end = len(chaosTrace.Records)
			}
			for chaos.Enqueue(chaosTrace.Records[i:end]) != nil {
			}
		}
	}()
	wg.Wait()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	got := fingerprints(tn)
	if len(got) != len(want) {
		t.Fatalf("healthy tenant: %d windows beside chaos vs %d solo", len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Errorf("healthy tenant window %d: fingerprint diverged beside chaos neighbour", j)
		}
	}
	// The chaos tenant itself must have survived (drained without
	// wedging) and its panicking hooks must be visible in its metrics.
	st := chaos.Status()
	if st.Stats.Windows == 0 && st.Stats.RecordsShed == 0 {
		t.Error("chaos tenant neither diagnosed nor shed anything — overload never happened")
	}
	if v := chaos.Reg.Counter("microscope_hooks_failed_total").Value(); st.Stats.Alerts > 0 && v == 0 {
		t.Errorf("chaos tenant: %d alerts but no failed hook deliveries recorded", st.Stats.Alerts)
	}
}

// TestTenantMemoryBudget: a tenant with a spec'd memory budget keeps its
// retained stream bytes under that budget throughout a sustained feed.
func TestTenantMemoryBudget(t *testing.T) {
	tr := chainTrace(t, 77, []simtime.Time{simtime.Time(150 * simtime.Millisecond)})
	const budget = 8 << 20
	sp := tenantSpec(tr, func(s *spec.PipelineSpec) {
		s.Tenant = "capped"
		s.Resilience.RingCapacity = 4096
		s.Resilience.MaxMemBytes = budget
	})
	srv := NewServer(ServerConfig{})
	tn, err := srv.Create("capped", sp)
	if err != nil {
		t.Fatal(err)
	}
	peak := int64(0)
	for i := 0; i < len(tr.Records); i += 2000 {
		end := i + 2000
		if end > len(tr.Records) {
			end = len(tr.Records)
		}
		for tn.Enqueue(tr.Records[i:end]) != nil {
		}
		// Synchronize with the feed goroutine so the retained-bytes gauge
		// reflects everything enqueued so far, then sample.
		if err := tn.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
		if v := tn.Status().RetainedBytes; v > peak {
			peak = v
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := tn.Status(); st.MemBudgetBytes != budget {
		t.Fatalf("status budget = %d, want %d", st.MemBudgetBytes, budget)
	}
	if peak > budget {
		t.Fatalf("retained bytes peaked at %d, over the %d budget", peak, budget)
	}
	if peak == 0 {
		t.Fatal("retained-bytes gauge never moved; budget check is vacuous")
	}
}

// TestShutdownUnderLoad: Server.Shutdown while feeders are mid-flight
// must (a) process every record that was accepted, (b) flush the final
// partial window, and (c) reject ingest that arrives after the drain.
func TestShutdownUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	tr := chainTrace(t, 55, []simtime.Time{simtime.Time(150 * simtime.Millisecond)})
	srv := NewServer(ServerConfig{})
	const n = 4
	tenants := make([]*Tenant, n)
	accepted := make([]int, n)
	for i := 0; i < n; i++ {
		tn, err := srv.Create(fmt.Sprintf("load-%d", i), tenantSpec(tr, nil))
		if err != nil {
			t.Fatal(err)
		}
		tenants[i] = tn
	}

	var wg sync.WaitGroup
	started := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn := tenants[i]
			for off := 0; off < len(tr.Records); off += 1000 {
				end := off + 1000
				if end > len(tr.Records) {
					end = len(tr.Records)
				}
				err := tn.Enqueue(tr.Records[off:end])
				if err != nil {
					// Backpressure: retry; stopped: shutdown won the race.
					if err == ErrBackpressure {
						off -= 1000
						continue
					}
					return
				}
				accepted[i] += end - off
				if off == 0 {
					select {
					case started <- struct{}{}:
					default:
					}
				}
			}
		}(i)
	}
	<-started // at least one feeder is mid-flight
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, tn := range tenants {
		st := tn.Status()
		if st.Stats.Records != accepted[i] {
			t.Errorf("tenant %d: accepted %d records but processed %d", i, accepted[i], st.Stats.Records)
		}
		if accepted[i] > 0 && st.Stats.Windows == 0 {
			t.Errorf("tenant %d: accepted %d records but flushed no windows on drain", i, accepted[i])
		}
		if err := tn.Enqueue(tr.Records[:1]); err != ErrStopped {
			t.Errorf("tenant %d: post-drain enqueue = %v, want ErrStopped", i, err)
		}
	}
	if _, err := srv.Create("late", tenantSpec(tr, nil)); err != ErrDraining {
		t.Errorf("post-shutdown create = %v, want ErrDraining", err)
	}
}
