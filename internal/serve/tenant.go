// Package serve is the multi-tenant serving tier: one process hosts many
// concurrent diagnosis deployments ("tenants"), each a fully
// self-contained pipeline described by a declarative spec.PipelineSpec
// and owning its own incremental stream state, bounded ingest, metrics
// namespace, and remediation hooks.
//
// Tenant isolation is the load-bearing property. Each tenant's records
// are consumed by a dedicated feed goroutine (the online monitor is
// single-threaded by contract), all shared package state in the pipeline
// is either immutable or pooled, and per-tenant registries are labeled —
// so N tenants running concurrently produce windows byte-identical
// (Result.Fingerprint) to each tenant running alone, even while another
// tenant is shedding, degraded, or containing panics.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"microscope/internal/collector"
	"microscope/internal/obs"
	"microscope/internal/online"
	"microscope/internal/pipeline"
	"microscope/internal/resilience"
	"microscope/internal/simtime"
	"microscope/internal/spec"
	"microscope/internal/tracestore"
)

// feedQueueCap bounds each tenant's ingest chunk queue. The queue is the
// HTTP-to-feed handoff; the real record bound is the monitor's resilience
// ring. A full queue is backpressure (HTTP 429), not silent buffering.
const feedQueueCap = 64

// Bounded retention of per-tenant outputs served over HTTP.
const (
	maxRetainedReports = 256
	maxRetainedAlerts  = 1024
)

// ErrBackpressure is returned by Enqueue when the tenant's ingest queue
// is full (or its ring is rejecting): the client should back off and
// retry. The HTTP layer maps it to 429 + Retry-After.
var ErrBackpressure = errors.New("serve: tenant ingest backlogged")

// ErrStopped is returned when records arrive for a tenant that is
// draining or deleted.
var ErrStopped = errors.New("serve: tenant stopped")

// WindowReport is the retained summary of one diagnosed window: enough
// for an operator to read the outcome, plus the fingerprint hash that
// anchors the multi-tenant determinism contract (byte-identical to the
// same spec run in isolation).
type WindowReport struct {
	// End is the flush boundary that produced the report.
	End simtime.Time `json:"end"`
	// Fingerprint is the SHA-256 of the window Result's canonical
	// fingerprint (the byte-exact diagnosis output).
	Fingerprint string `json:"fingerprint"`
	// Degradation is the rung the window ran at.
	Degradation string `json:"degradation"`
	// Victims / Diagnoses / Patterns count the window's findings.
	Victims   int `json:"victims"`
	Diagnoses int `json:"diagnoses"`
	Patterns  int `json:"patterns"`
	// Health is the window's trace-quality one-liner.
	Health string `json:"health"`
}

// TenantStatus is the HTTP-visible state of one tenant.
type TenantStatus struct {
	ID string `json:"id"`
	// Draining reports whether the tenant is shutting down.
	Draining bool `json:"draining,omitempty"`
	// Windows etc. mirror the monitor's cumulative stats.
	Stats online.Stats `json:"stats"`
	// QueuedChunks is the current depth of the ingest handoff queue.
	QueuedChunks int `json:"queued_chunks"`
	// Reports is how many window reports are retained.
	Reports int `json:"reports"`
	// Alerts is how many alerts are retained.
	Alerts int `json:"alerts"`
	// RetainedBytes is the incremental index's retained segment memory —
	// the dominant per-tenant footprint, compared against the spec's
	// max_mem_bytes budget.
	RetainedBytes int64 `json:"retained_bytes"`
	// MemBudgetBytes echoes the spec's budget (0 = unbounded).
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
}

// feedMsg is one unit of work for a tenant's feed goroutine: a record
// chunk, an explicit flush barrier, or both. done (when non-nil) is
// closed after the message is fully processed.
type feedMsg struct {
	recs  []collector.BatchRecord
	flush bool
	done  chan struct{}
	// barrier, when non-nil, stalls the feed goroutine until it closes —
	// tests use it to fill the queue deterministically. Never set in
	// production paths.
	barrier chan struct{}
}

// Tenant is one hosted deployment. All mutable state is either owned by
// the feed goroutine (monitor, stream) or guarded by mu (the snapshots
// the HTTP handlers read).
type Tenant struct {
	ID   string
	Spec *spec.PipelineSpec // resolved
	Reg  *obs.Registry      // labeled tenant=<ID>

	mon   *online.Monitor
	hooks *hookRunner
	in    chan feedMsg
	done  chan struct{} // feed goroutine exited

	// drainHook, when non-nil, runs at the top of drain — tests use it to
	// inject a drain-time panic. Never set in production paths.
	drainHook func()

	budget int64 // spec max_mem_bytes

	mu        sync.Mutex
	stopped   bool
	queued    int
	reports   []WindowReport
	alerts    []online.Alert
	health    tracestore.Health
	hasHealth bool
	// stats / degradation are snapshots the feed goroutine publishes
	// after each message — the monitor itself must never be read from an
	// HTTP goroutine (it is single-threaded by contract).
	stats       online.Stats
	degradation resilience.Level
}

// newTenant builds a tenant from a resolved spec and starts its feed
// goroutine. The spec must carry a topology (validated by the server).
func newTenant(id string, rs *spec.PipelineSpec, hookEnv hookEnv) (*Tenant, error) {
	meta, ok := rs.Meta()
	if !ok {
		return nil, fmt.Errorf("serve: tenant %q: spec has no topology (the serving tier reconstructs from spec'd metadata)", id)
	}
	reg := obs.NewLabeled("tenant", id)
	t := &Tenant{
		ID:     id,
		Spec:   rs,
		Reg:    reg,
		in:     make(chan feedMsg, feedQueueCap),
		done:   make(chan struct{}),
		budget: rs.Resilience.MaxMemBytes,
	}
	t.hooks = newHookRunner(id, rs.Hooks, rs.RetryPolicy(), reg, hookEnv)

	mcfg := rs.MonitorConfig(reg)
	// The serving tier is always-on: a tenant panic must quarantine a
	// window, never kill the process hosting every other tenant.
	mcfg.Resilience.ContainPanics = true
	mcfg.OnWindow = t.onWindow
	t.mon = online.New(meta, mcfg)
	go t.feedLoop()
	return t, nil
}

// onWindow runs on the feed goroutine for every diagnosed window and
// retains its report summary.
func (t *Tenant) onWindow(end simtime.Time, res *pipeline.Result) {
	sum := sha256.Sum256([]byte(res.Fingerprint()))
	rep := WindowReport{
		End:         end,
		Fingerprint: hex.EncodeToString(sum[:]),
		Degradation: res.Degradation.String(),
		Victims:     len(res.Victims),
		Diagnoses:   len(res.Diagnoses),
		Patterns:    len(res.Patterns),
		Health:      res.Health.String(),
	}
	t.mu.Lock()
	t.reports = append(t.reports, rep)
	if len(t.reports) > maxRetainedReports {
		t.reports = append(t.reports[:0], t.reports[len(t.reports)-maxRetainedReports:]...)
	}
	t.health, t.hasHealth = res.Health, true
	t.mu.Unlock()
}

// feedLoop is the tenant's single consumer: the online monitor is not
// goroutine-safe, so every record and every flush flows through here in
// arrival order — which is what keeps a tenant's output deterministic
// regardless of how many HTTP clients (or other tenants) are active.
func (t *Tenant) feedLoop() {
	defer close(t.done)
	for msg := range t.in {
		if msg.barrier != nil {
			<-msg.barrier
		}
		if len(msg.recs) > 0 {
			alerts := t.mon.Feed(msg.recs)
			t.noteAlerts(alerts)
		}
		if msg.flush {
			t.noteAlerts(t.mon.Flush())
		}
		t.mu.Lock()
		t.queued--
		t.stats = t.mon.Stats()
		t.degradation = t.mon.LastDegradation()
		t.mu.Unlock()
		if msg.done != nil {
			close(msg.done)
		}
	}
	// Drain: the final partial window flushes so no ingested record is
	// silently lost on shutdown.
	t.noteAlerts(t.mon.Flush())
	t.mu.Lock()
	t.stats = t.mon.Stats()
	t.degradation = t.mon.LastDegradation()
	t.mu.Unlock()
}

// noteAlerts retains alerts and fires remediation hooks.
func (t *Tenant) noteAlerts(alerts []online.Alert) {
	if len(alerts) == 0 {
		return
	}
	t.mu.Lock()
	t.alerts = append(t.alerts, alerts...)
	if len(t.alerts) > maxRetainedAlerts {
		t.alerts = append(t.alerts[:0], t.alerts[len(t.alerts)-maxRetainedAlerts:]...)
	}
	t.mu.Unlock()
	t.hooks.fire(alerts)
}

// Enqueue hands a record chunk to the feed goroutine without blocking.
// A full queue is ErrBackpressure (HTTP 429); a draining tenant is
// ErrStopped (HTTP 409). The caller must not retain recs.
func (t *Tenant) Enqueue(recs []collector.BatchRecord) error {
	if len(recs) == 0 {
		return nil
	}
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return ErrStopped
	}
	select {
	case t.in <- feedMsg{recs: recs}:
		t.queued++
		t.mu.Unlock()
		return nil
	default:
		t.mu.Unlock()
		return ErrBackpressure
	}
}

// Flush requests an end-of-stream flush of the pending partial window
// and waits for it (bounded by ctx). Used by the smoke flow and tests;
// a live deployment's windows flush on watermark progress alone.
func (t *Tenant) Flush(ctx context.Context) error {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return ErrStopped
	}
	done := make(chan struct{})
	select {
	case t.in <- feedMsg{flush: true, done: done}:
		t.queued++
		t.mu.Unlock()
	default:
		t.mu.Unlock()
		return ErrBackpressure
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain stops ingest, lets the feed goroutine finish the queue and flush
// the final window, and quiesces the hook runner. Safe to call twice.
func (t *Tenant) drain(ctx context.Context) error {
	if t.drainHook != nil {
		t.drainHook()
	}
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		<-t.done
		return t.hooks.quiesce(ctx)
	}
	t.stopped = true
	t.mu.Unlock()
	close(t.in)
	select {
	case <-t.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return t.hooks.quiesce(ctx)
}

// Status snapshots the tenant's HTTP-visible state.
func (t *Tenant) Status() TenantStatus {
	t.mu.Lock()
	st := TenantStatus{
		ID:             t.ID,
		Draining:       t.stopped,
		QueuedChunks:   t.queued,
		Reports:        len(t.reports),
		Alerts:         len(t.alerts),
		MemBudgetBytes: t.budget,
		Stats:          t.stats,
	}
	t.mu.Unlock()
	// The gauge comes from the tenant's own registry, goroutine-safe by
	// construction.
	st.RetainedBytes = t.Reg.Gauge("microscope_stream_retained_bytes").Value()
	return st
}

// Reports returns up to n retained window reports, newest last (n <= 0 =
// all retained).
func (t *Tenant) Reports(n int) []WindowReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	reps := t.reports
	if n > 0 && len(reps) > n {
		reps = reps[len(reps)-n:]
	}
	return append([]WindowReport(nil), reps...)
}

// LatestReport returns the most recent window report.
func (t *Tenant) LatestReport() (WindowReport, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.reports) == 0 {
		return WindowReport{}, false
	}
	return t.reports[len(t.reports)-1], true
}

// Alerts returns the retained alerts, oldest first.
func (t *Tenant) Alerts() []online.Alert {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]online.Alert(nil), t.alerts...)
}

// Health returns the latest diagnosed window's trace quality.
func (t *Tenant) Health() (tracestore.Health, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.health, t.hasHealth
}

// Degradation returns the rung the most recent window ran at.
func (t *Tenant) Degradation() resilience.Level {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.degradation
}
