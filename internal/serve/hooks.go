// Remediation hooks: when a tenant's diagnosis surfaces ranked culprits,
// the serving tier notifies the outside world — a webhook POST or an
// exec'd command per hook — with capped-backoff retries and a per-hook
// circuit breaker so a dead receiver can never stall or destabilize the
// tenant's diagnosis path.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"time"

	"microscope/internal/obs"
	"microscope/internal/online"
	"microscope/internal/resilience"
	"microscope/internal/spec"
)

// hookQueueCap bounds the alert batches queued for delivery. Hooks are
// side effects outside the determinism contract; under a flood the
// oldest undelivered batches are dropped and counted, never the
// diagnosis.
const hookQueueCap = 128

// HookPayload is the JSON body a hook receives: the tenant plus the
// alert, with simulated-time fields in nanoseconds.
type HookPayload struct {
	Tenant    string  `json:"tenant"`
	Hook      string  `json:"hook"`
	WindowEnd int64   `json:"window_end_ns"`
	Comp      string  `json:"comp"`
	Kind      string  `json:"kind"`
	Score     float64 `json:"score"`
	Victims   int     `json:"victims"`
	Onset     int64   `json:"onset_ns"`
	Health    string  `json:"health"`
}

// hookEnv is the runner's interface to the world, injectable so tests
// exercise retries, breakers, and panics without sockets or processes.
type hookEnv struct {
	// post delivers a webhook body (nil = real HTTP POST).
	post func(ctx context.Context, url string, body []byte) error
	// run executes an argv with body on stdin (nil = real os/exec).
	run func(ctx context.Context, argv []string, body []byte) error
	// now drives breaker cooldowns (nil = time.Now).
	now func() time.Time
	// sleep overrides the retry backoff sleep (nil = real sleep).
	sleep func(time.Duration)
}

func (e hookEnv) withDefaults() hookEnv {
	if e.post == nil {
		e.post = httpPost
	}
	if e.run == nil {
		e.run = execRun
	}
	if e.now == nil {
		e.now = time.Now
	}
	return e
}

func httpPost(ctx context.Context, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("webhook status %s", resp.Status)
	}
	return nil
}

func execRun(ctx context.Context, argv []string, body []byte) error {
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stdin = bytes.NewReader(body)
	return cmd.Run()
}

// breaker is a per-hook circuit breaker: maxFailures consecutive failed
// deliveries open it for cooldown; a success closes it.
type breaker struct {
	fails     int
	openUntil time.Time
}

// hookRunner delivers alert batches for one tenant on its own goroutine.
type hookRunner struct {
	tenant string
	hooks  []spec.HookSpec
	retry  resilience.RetryPolicy
	env    hookEnv

	queue chan []online.Alert
	done  chan struct{}

	// ctx is the root under every delivery attempt and retry sleep;
	// quiesce cancels it when its own deadline expires, so an in-flight
	// retry aborts instead of outliving the tenant's drain.
	ctx    context.Context
	cancel context.CancelFunc

	breakers []breaker // parallel to hooks; owned by the runner goroutine

	cFired   *obs.Counter
	cFailed  *obs.Counter
	cDropped *obs.Counter
	cBroken  *obs.Counter
}

func newHookRunner(tenant string, hooks []spec.HookSpec, retry resilience.RetryPolicy, reg *obs.Registry, env hookEnv) *hookRunner {
	//mslint:allow ctxflow the runner root spans the tenant's lifetime, not a request; quiesce cancels it on drain timeout
	ctx, cancel := context.WithCancel(context.Background())
	r := &hookRunner{
		tenant:   tenant,
		hooks:    hooks,
		retry:    retry,
		env:      env.withDefaults(),
		queue:    make(chan []online.Alert, hookQueueCap),
		done:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
		breakers: make([]breaker, len(hooks)),
		cFired:   reg.Counter("microscope_hooks_fired_total"),
		cFailed:  reg.Counter("microscope_hooks_failed_total"),
		cDropped: reg.Counter("microscope_hooks_dropped_total"),
		cBroken:  reg.Counter("microscope_hooks_breaker_open_total"),
	}
	if r.retry.Sleep == nil {
		r.retry.Sleep = env.sleep
	}
	go r.loop()
	return r
}

// fire enqueues a batch for delivery without ever blocking the feed
// goroutine: a full queue drops the batch and counts it.
func (r *hookRunner) fire(alerts []online.Alert) {
	if len(r.hooks) == 0 || len(alerts) == 0 {
		return
	}
	batch := append([]online.Alert(nil), alerts...)
	select {
	case r.queue <- batch:
	default:
		r.cDropped.Add(int64(len(batch)))
	}
}

// quiesce stops intake and waits (bounded by ctx) for queued deliveries
// to finish.
func (r *hookRunner) quiesce(ctx context.Context) error {
	select {
	case <-r.done:
		r.cancel()
		return nil // already quiesced
	default:
	}
	close(r.queue)
	select {
	case <-r.done:
		r.cancel()
		return nil
	case <-ctx.Done():
		// Drain deadline passed: abort the in-flight delivery and fail the
		// remaining queue fast rather than let retries outlive the tenant.
		r.cancel()
		return ctx.Err()
	}
}

func (r *hookRunner) loop() {
	defer close(r.done)
	for batch := range r.queue {
		for _, a := range batch {
			for i := range r.hooks {
				r.deliver(i, a)
			}
		}
	}
}

// deliver runs one hook for one alert: breaker check, payload render,
// capped-backoff retries, containment. A panicking hook (an exec'd
// command cannot panic, but an injected test transport can — and so can
// payload rendering on a poisoned alert) is contained and counted as a
// failure; the tenant's diagnosis never sees it.
func (r *hookRunner) deliver(i int, a online.Alert) {
	h := r.hooks[i]
	if a.Score < h.MinScore {
		return
	}
	b := &r.breakers[i]
	if b.fails >= maxFailures(h) {
		if r.env.now().Before(b.openUntil) {
			r.cBroken.Inc()
			return
		}
		// Cooldown over: half-open, allow one probe delivery.
		b.fails = maxFailures(h) - 1
	}
	payload, err := json.Marshal(HookPayload{
		Tenant:    r.tenant,
		Hook:      h.Name,
		WindowEnd: int64(a.WindowEnd),
		Comp:      a.Comp,
		Kind:      a.Kind.String(),
		Score:     a.Score,
		Victims:   a.Victims,
		Onset:     int64(a.Onset),
		Health:    a.Health.String(),
	})
	if err != nil {
		r.noteFailure(b, h)
		return
	}
	timeout := h.Timeout.Std()
	if timeout <= 0 {
		timeout = spec.DefaultHookTimeout
	}
	attempt := func() error {
		ctx, cancel := context.WithTimeout(r.ctx, timeout)
		defer cancel()
		if h.Type == "exec" {
			return r.env.run(ctx, h.Command, payload)
		}
		return r.env.post(ctx, h.URL, payload)
	}
	var dErr error
	if perr := resilience.Contain("hook:"+h.Name, func() {
		// Every delivery error is transient from the retry policy's view:
		// the receiver may simply not be up yet. The breaker, not the
		// retry loop, handles receivers that stay down.
		dErr = r.retry.Run(r.ctx, "hook "+h.Name, func() error {
			if derr := attempt(); derr != nil {
				return resilience.Transient(derr)
			}
			return nil
		}, nil)
	}); perr != nil {
		dErr = perr
	}
	if dErr != nil {
		r.noteFailure(b, h)
		return
	}
	b.fails = 0
	r.cFired.Inc()
}

func (r *hookRunner) noteFailure(b *breaker, h spec.HookSpec) {
	r.cFailed.Inc()
	b.fails++
	if b.fails >= maxFailures(h) {
		cd := h.Cooldown.Std()
		if cd <= 0 {
			cd = spec.DefaultHookCooldown
		}
		b.openUntil = r.env.now().Add(cd)
	}
}

func maxFailures(h spec.HookSpec) int {
	if h.MaxFailures > 0 {
		return h.MaxFailures
	}
	return spec.DefaultHookMaxFailures
}
