package perfsight

import (
	"strings"
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/packet"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

func cbr(rate simtime.Rate, dur simtime.Duration) *traffic.Schedule {
	iv := rate.Interval()
	var ems []traffic.Emission
	ft := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	i := 0
	for t := simtime.Time(0); t < simtime.Time(dur); t = t.Add(iv) {
		f := ft
		f.SrcPort = uint16(1000 + i%50)
		ems = append(ems, traffic.Emission{At: t, Flow: f, Size: 64, Burst: -1})
		i++
	}
	return &traffic.Schedule{Emissions: ems}
}

// persistentTrace: an undersized NF drops constantly — PerfSight's home turf.
func persistentTrace(t *testing.T) *collector.Trace {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.New(col)
	sim.AddNF(nfsim.NFConfig{Name: "nat1", Kind: "nat", PeakRate: simtime.MPPS(1), Seed: 1})
	sim.AddNF(nfsim.NFConfig{Name: "fw1", Kind: "fw", PeakRate: simtime.MPPS(0.2), QueueCap: 128, Seed: 2})
	sim.ConnectSource(func(*packet.Packet) int { return 0 }, "nat1")
	sim.Connect("nat1", func(*packet.Packet) int { return 0 }, "fw1")
	sim.Connect("fw1", func(*packet.Packet) int { return nfsim.Egress })
	sim.LoadSchedule(cbr(simtime.MPPS(0.4), 20*simtime.Millisecond))
	sim.Run(simtime.Time(200 * simtime.Millisecond))
	meta := collector.Meta{
		MaxBatch: nfsim.DefaultMaxBatch,
		Components: []collector.ComponentMeta{
			{Name: "source", Kind: "source"},
			{Name: "nat1", Kind: "nat", PeakRate: simtime.MPPS(1)},
			{Name: "fw1", Kind: "fw", PeakRate: simtime.MPPS(0.2), Egress: true},
		},
		Edges: []collector.Edge{{From: "source", To: "nat1"}, {From: "nat1", To: "fw1"}},
	}
	return col.Trace(meta)
}

// transientTrace: a healthy chain with one interrupt — tail latency, no
// sustained loss.
func transientTrace(t *testing.T) *collector.Trace {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 7,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.8)},
	)
	sim.LoadSchedule(cbr(simtime.MPPS(0.4), 20*simtime.Millisecond))
	sim.InjectInterrupt("fw1", simtime.Time(5*simtime.Millisecond), 900*simtime.Microsecond, "x")
	sim.Run(simtime.Time(200 * simtime.Millisecond))
	return col.Trace(collector.MetaForChain(sim, []string{"nat1", "fw1"}))
}

func TestPerfSightFindsPersistentBottleneck(t *testing.T) {
	res := Diagnose(persistentTrace(t), Config{})
	bns := res.Bottlenecks()
	if len(bns) == 0 {
		t.Fatalf("no bottlenecks found:\n%s", res.Render())
	}
	// The loss surfaces at the element whose transmit counters show the
	// deficit (nat1's tx drops into fw1's full ring) and/or fw1's
	// saturation; either way the undersized stage must top the list.
	top := bns[0]
	if top.Comp != "nat1" && top.Comp != "fw1" {
		t.Errorf("top bottleneck: %s\n%s", top.Comp, res.Render())
	}
	if top.Reason == "" {
		t.Error("no reason")
	}
	// fw1 must show saturation.
	for _, e := range res.Elements {
		if e.Comp == "fw1" && e.Utilization < 0.9 {
			t.Errorf("fw1 utilization %.2f, expected saturated", e.Utilization)
		}
	}
}

func TestPerfSightMissesTransientProblem(t *testing.T) {
	// The §8 claim: a 900us interrupt that creates tail latency leaves no
	// persistent counter evidence.
	res := Diagnose(transientTrace(t), Config{})
	if n := len(res.Bottlenecks()); n != 0 {
		t.Errorf("PerfSight flagged %d bottlenecks on a transient-only trace:\n%s", n, res.Render())
	}
}

func TestPerfSightRender(t *testing.T) {
	res := Diagnose(persistentTrace(t), Config{})
	out := res.Render()
	for _, want := range []string{"element", "throughput", "BOTTLENECK"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPerfSightConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.LossRatio != 0.001 || c.Utilization != 0.9 {
		t.Errorf("defaults: %+v", c)
	}
}
