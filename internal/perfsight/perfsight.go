// Package perfsight implements a PerfSight-style diagnoser [53], the
// second related system the paper positions against (§8): it identifies
// PERSISTENT bottlenecks on a software dataplane from aggregate packet
// drops and throughput counters. The paper's point — reproduced by the
// experiments here — is that such whole-run counters identify a constantly
// undersized element well, but say nothing about tail latency and
// transient drops, which need Microscope's queuing-period analysis.
package perfsight

import (
	"fmt"
	"sort"
	"strings"

	"microscope/internal/collector"
	"microscope/internal/simtime"
)

// Config tunes bottleneck detection.
type Config struct {
	// LossRatio flags components losing at least this fraction of their
	// input over the run (default 0.001).
	LossRatio float64
	// Utilization flags components processing at or above this fraction
	// of their peak rate over the run (default 0.9).
	Utilization float64
}

func (c *Config) setDefaults() {
	if c.LossRatio == 0 {
		c.LossRatio = 0.001
	}
	if c.Utilization == 0 {
		c.Utilization = 0.9
	}
}

// ElementReport is the per-NF aggregate view PerfSight works from.
type ElementReport struct {
	Comp string
	// In / Out are total packets entering the element's queue and
	// leaving the element over the run.
	In, Out int
	// Lost is In - Out - resident (counted at trace end).
	Lost int
	// Throughput is the achieved processing rate over the active span.
	Throughput simtime.Rate
	// Utilization is Throughput / peak rate.
	Utilization float64
	// Bottleneck marks elements the diagnosis flags.
	Bottleneck bool
	// Reason explains the flag ("loss", "saturation", "").
	Reason string
}

// Result is the ranked bottleneck report.
type Result struct {
	Elements []ElementReport
}

// Bottlenecks returns the flagged elements, most severe first.
func (r *Result) Bottlenecks() []ElementReport {
	var out []ElementReport
	for _, e := range r.Elements {
		if e.Bottleneck {
			out = append(out, e)
		}
	}
	return out
}

// Render prints the element table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %12s %6s %s\n",
		"element", "in", "out", "lost", "throughput", "util", "verdict")
	for _, e := range r.Elements {
		verdict := "-"
		if e.Bottleneck {
			verdict = "BOTTLENECK (" + e.Reason + ")"
		}
		fmt.Fprintf(&b, "%-8s %10d %10d %8d %12s %5.0f%% %s\n",
			e.Comp, e.In, e.Out, e.Lost, e.Throughput, e.Utilization*100, verdict)
	}
	return b.String()
}

// Diagnose runs the PerfSight-style analysis over a collected trace: pure
// whole-run counters, no queuing information.
func Diagnose(tr *collector.Trace, cfg Config) *Result {
	cfg.setDefaults()
	type agg struct {
		in, out           int
		firstIn, lastIn   simtime.Time
		firstOut, lastOut simtime.Time
		seenIn, seenOut   bool
	}
	byComp := make(map[string]*agg)
	get := func(name string) *agg {
		a := byComp[name]
		if a == nil {
			a = &agg{}
			byComp[name] = a
		}
		return a
	}
	for i := range tr.Records {
		r := &tr.Records[i]
		n := len(r.IPIDs)
		switch r.Dir {
		case collector.DirWrite:
			dest := strings.TrimSuffix(r.Queue, ".in")
			a := get(dest)
			a.in += n
			if !a.seenIn {
				a.firstIn, a.seenIn = r.At, true
			}
			a.lastIn = r.At
		case collector.DirRead:
			// Reads are dequeues; outputs are counted at write/deliver.
		case collector.DirDeliver:
			a := get(r.Comp)
			a.out += n
			if !a.seenOut {
				a.firstOut, a.seenOut = r.At, true
			}
			a.lastOut = r.At
		}
		if r.Dir == collector.DirWrite {
			// A write is also the writing component's output.
			a := get(r.Comp)
			a.out += n
			if !a.seenOut {
				a.firstOut, a.seenOut = r.At, true
			}
			a.lastOut = r.At
		}
	}

	res := &Result{}
	for _, cm := range tr.Meta.Components {
		if cm.Kind == "source" {
			continue
		}
		a := byComp[cm.Name]
		if a == nil {
			continue
		}
		e := ElementReport{Comp: cm.Name, In: a.in, Out: a.out}
		e.Lost = a.in - a.out
		if e.Lost < 0 {
			e.Lost = 0
		}
		if a.seenOut && a.lastOut > a.firstOut {
			span := a.lastOut.Sub(a.firstOut)
			e.Throughput = simtime.Rate(float64(a.out) / span.Seconds())
		}
		if cm.PeakRate > 0 {
			e.Utilization = float64(e.Throughput) / float64(cm.PeakRate)
		}
		lossRatio := 0.0
		if a.in > 0 {
			lossRatio = float64(e.Lost) / float64(a.in)
		}
		switch {
		case lossRatio >= cfg.LossRatio:
			e.Bottleneck, e.Reason = true, "loss"
		case e.Utilization >= cfg.Utilization:
			e.Bottleneck, e.Reason = true, "saturation"
		}
		res.Elements = append(res.Elements, e)
	}
	sort.Slice(res.Elements, func(i, j int) bool {
		a, b := res.Elements[i], res.Elements[j]
		la, lb := float64(a.Lost)/maxi(a.In), float64(b.Lost)/maxi(b.In)
		if la != lb {
			return la > lb
		}
		if a.Utilization != b.Utilization {
			return a.Utilization > b.Utilization
		}
		return a.Comp < b.Comp
	})
	return res
}

func maxi(n int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(n)
}
