package tracestore

import (
	"testing"

	"microscope/internal/collector"
	"microscope/internal/nfsim"
	"microscope/internal/simtime"
	"microscope/internal/traffic"
)

// chainTrace runs a 3-NF chain and returns the collected trace.
func chainTrace(t *testing.T) *collector.Trace {
	t.Helper()
	col := collector.New(collector.Config{})
	sim := nfsim.BuildChain(col, 3,
		nfsim.ChainSpec{Name: "nat1", Kind: "nat", Rate: simtime.MPPS(1)},
		nfsim.ChainSpec{Name: "fw1", Kind: "fw", Rate: simtime.MPPS(0.9)},
		nfsim.ChainSpec{Name: "vpn1", Kind: "vpn", Rate: simtime.MPPS(0.8)},
	)
	sched := cbr(simtime.MPPS(0.3), simtime.Duration(3*simtime.Millisecond), 7)
	sim.LoadSchedule(sched)
	sim.Run(simtime.Time(50 * simtime.Millisecond))
	return col.Trace(collector.MetaForChain(sim, []string{"nat1", "fw1", "vpn1"}))
}

func TestAlignClocksRecoversOffsets(t *testing.T) {
	tr := chainTrace(t)
	// Skew fw1 by +300us and vpn1 by -150us, as two unsynchronized
	// machines would be.
	skewed := SkewTrace(tr, "fw1", 300*simtime.Microsecond)
	skewed = SkewTrace(skewed, "vpn1", -150*simtime.Microsecond)

	offsets, fixed := AlignClocks(skewed)
	tol := simtime.Duration(20 * simtime.Microsecond)
	check := func(comp string, want simtime.Duration) {
		t.Helper()
		got := offsets[comp]
		if got < want-tol || got > want+tol {
			t.Errorf("%s offset: got %v, want ~%v", comp, got, want)
		}
	}
	check("nat1", 0)
	check("fw1", 300*simtime.Microsecond)
	check("vpn1", -150*simtime.Microsecond)

	// The corrected trace must reconstruct as well as the original.
	st := Build(fixed)
	st.Reconstruct()
	delivered := 0
	for i := range st.Journeys {
		if st.Journeys[i].Delivered {
			delivered++
		}
	}
	if delivered < len(st.Journeys)*9/10 {
		t.Errorf("corrected trace reconstructs poorly: %d of %d delivered", delivered, len(st.Journeys))
	}
	if st.ReconStats().Unmatched > len(st.Journeys)/50 {
		t.Errorf("unmatched after correction: %+v", st.ReconStats())
	}
}

func TestSkewBreaksReconstructionAlignmentRepairs(t *testing.T) {
	tr := chainTrace(t)
	// A large negative skew puts fw1's reads BEFORE the upstream writes:
	// causality inverts and reconstruction must degrade.
	skewed := SkewTrace(tr, "fw1", -2*simtime.Millisecond)
	// Building directly would violate the encoder's time ordering only
	// at encode time; Build consumes records as-is.
	stBad := Build(skewed)
	stBad.Reconstruct()
	badDelivered := 0
	for i := range stBad.Journeys {
		if stBad.Journeys[i].Delivered {
			badDelivered++
		}
	}

	_, fixed := AlignClocks(skewed)
	stGood := Build(fixed)
	stGood.Reconstruct()
	goodDelivered := 0
	for i := range stGood.Journeys {
		if stGood.Journeys[i].Delivered {
			goodDelivered++
		}
	}
	if goodDelivered <= badDelivered {
		t.Errorf("alignment did not help: %d -> %d delivered", badDelivered, goodDelivered)
	}
	if goodDelivered < len(stGood.Journeys)*9/10 {
		t.Errorf("post-alignment reconstruction weak: %d of %d", goodDelivered, len(stGood.Journeys))
	}
}

func TestAlignClocksNoSkewIsStable(t *testing.T) {
	tr := chainTrace(t)
	offsets, _ := AlignClocks(tr)
	tol := simtime.Duration(20 * simtime.Microsecond)
	for comp, off := range offsets {
		if off > tol || off < -tol {
			t.Errorf("%s: spurious offset %v on a synchronized trace", comp, off)
		}
	}
}

func TestAlignClocksDAG(t *testing.T) {
	// Multi-upstream destination: two NFs feed one VPN; skew one upstream.
	col := collector.New(collector.Config{})
	topo := nfsim.BuildEvalTopology(col, nfsim.EvalTopologyConfig{Seed: 9})
	mix := traffic.NewMix(traffic.MixConfig{Flows: 256, Seed: 10})
	sched := traffic.Generate(mix, traffic.ScheduleConfig{
		Rate: simtime.MPPS(0.8), Duration: 3 * simtime.Millisecond, Seed: 11,
	})
	topo.Sim.LoadSchedule(sched)
	topo.Sim.Run(simtime.Time(50 * simtime.Millisecond))
	tr := col.Trace(collector.MetaFor(topo))

	skewed := SkewTrace(tr, "vpn1", 250*simtime.Microsecond)
	offsets, _ := AlignClocks(skewed)
	got := offsets["vpn1"]
	// vpn1 has many upstreams (firewalls + monitors); the nearest-read
	// estimator is coarser, so allow a wider tolerance.
	if got < 150*simtime.Microsecond || got > 350*simtime.Microsecond {
		t.Errorf("vpn1 offset: got %v, want ~250us", got)
	}
}
